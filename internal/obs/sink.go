package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// countingTracer wraps a sink and counts emitted events per kind as
// trace_events_total{kind=...} in the metrics registry. Counters are
// resolved once up front so emission stays map-lookup-free.
type countingTracer struct {
	tr     Tracer
	counts map[Kind]*metrics.Counter
}

func (c *countingTracer) Emit(ev Event) {
	c.counts[ev.Kind].Inc() // nil counter (unknown kind) no-ops
	c.tr.Emit(ev)
}

// tracerWithCounts attaches per-kind event counters to tr; with a nil
// registry the sink is returned unwrapped.
func tracerWithCounts(tr Tracer, reg *metrics.Registry) Tracer {
	if reg == nil {
		return tr
	}
	counts := make(map[Kind]*metrics.Counter, len(Kinds))
	for _, k := range Kinds {
		counts[k] = reg.Counter("trace_events_total", metrics.L("kind", string(k)))
	}
	return &countingTracer{tr: tr, counts: counts}
}

// Buffer is an in-memory Tracer: a bounded ring of the most recent
// events, safe for concurrent use. It backs rtccheck -explain, which
// replays the buffered chain after analysis. MaxEvents bounds memory;
// beyond it the oldest events are discarded (Dropped reports how
// many). The zero value with NewBuffer's default cap suits one
// capture.
type Buffer struct {
	mu      sync.Mutex
	max     int
	events  []Event
	start   int // ring start when full
	dropped int
}

// DefaultBufferCap bounds an explain buffer: enough for every stream
// of a matrix capture at default sampling.
const DefaultBufferCap = 1 << 16

// NewBuffer builds a Buffer holding at most max events (<=0 selects
// DefaultBufferCap).
func NewBuffer(max int) *Buffer {
	if max <= 0 {
		max = DefaultBufferCap
	}
	return &Buffer{max: max}
}

// Emit implements Tracer.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) < b.max {
		b.events = append(b.events, ev)
		return
	}
	b.events[b.start] = ev
	b.start = (b.start + 1) % b.max
	b.dropped++
}

// Events returns a copy of the buffered events, oldest first.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Dropped reports how many events the cap discarded.
func (b *Buffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// JSONLWriter is a Tracer exporting one JSON object per line, the
// -trace-out wire format. Writes are buffered; call Flush before the
// underlying writer is closed. Safe for concurrent use.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w as a JSONL trace exporter.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit implements Tracer. Encoding errors are sticky and surfaced by
// Flush.
func (j *JSONLWriter) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush drains the buffer and reports the first error encountered.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Tee fans one event stream out to several sinks (e.g. -trace-out and
// -explain together). Nil sinks are skipped.
func Tee(sinks ...Tracer) Tracer {
	var live []Tracer
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

func (t teeTracer) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// ReadJSONL decodes an exported trace. Decoding is strict — unknown
// fields are schema violations — so rtctrace -lint doubles as a wire
// schema check. Errors carry the 1-based line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line, err)
	}
	return events, nil
}
