package natsim

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
)

// FuzzImpair drives the impairment stage with arbitrary profiles and
// datagram mixes, pinning its safety contract: it never panics, never
// fabricates or edits payload bytes (every output payload is byte-
// identical to the input datagram it came from), delivers each input
// at most twice, keeps its accounting conserved, keeps output sorted,
// and is a pure function of (profile, seed, input).
func FuzzImpair(f *testing.F) {
	f.Add(uint64(1), []byte{}, uint8(10))
	f.Add(uint64(42), []byte{5, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(50))
	f.Add(uint64(7), []byte{0, 128, 77, 200, 30, 64, 5, 90, 3, 2}, uint8(80))
	f.Add(uint64(31337), []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255}, uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, cfg []byte, n uint8) {
		knob := func(i int) float64 {
			if i < len(cfg) {
				return float64(cfg[i]) / 256
			}
			return 0
		}
		p := Profile{
			Loss:         knob(0) * 0.9,
			GoodBad:      knob(1) * 0.5,
			BadGood:      knob(2) * 0.5,
			BadLoss:      knob(3),
			Jitter:       time.Duration(knob(4)*50) * time.Millisecond,
			Reorder:      knob(5) * 0.5,
			ReorderDelay: time.Duration(knob(6)*20) * time.Millisecond,
			Dup:          knob(7) * 0.5,
			DupDelay:     time.Duration(knob(8)*10) * time.Millisecond,
			Rebind:       int(knob(9) * 4),
		}

		start := time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC)
		src := netip.MustParseAddrPort("192.168.1.10:50000")
		dst := netip.MustParseAddrPort("203.0.113.10:8801")
		in := make([]Datagram, int(n))
		for i := range in {
			payload := make([]byte, 4+i%7)
			binary.BigEndian.PutUint32(payload, uint32(i))
			d := Datagram{
				// Some timestamps collide (i/3) to exercise the stable
				// sort; spacing is sub-millisecond to force reordering.
				At:      start.Add(time.Duration(i/3) * 300 * time.Microsecond),
				Src:     src,
				Dst:     dst,
				Proto:   layers.IPProtocolUDP,
				Payload: payload,
			}
			if i%5 == 4 {
				d.Proto = layers.IPProtocolTCP
				d.TCPFlags = layers.TCPAck
			}
			in[i] = d
		}

		out, st := p.ImpairWithStats(seed, in)

		if st.In != len(in) || st.Out != len(out) {
			t.Fatalf("stats counts wrong: st=%+v len(in)=%d len(out)=%d", st, len(in), len(out))
		}
		if st.Out != st.In-st.Dropped+st.Duplicated {
			t.Fatalf("conservation violated: %+v", st)
		}
		count := make(map[uint32]int)
		for i, d := range out {
			if i > 0 && d.At.Before(out[i-1].At) {
				t.Fatalf("output not time-sorted at %d", i)
			}
			if len(d.Payload) < 4 {
				t.Fatalf("fabricated short payload: %x", d.Payload)
			}
			idx := binary.BigEndian.Uint32(d.Payload)
			if int(idx) >= len(in) {
				t.Fatalf("fabricated index %d", idx)
			}
			orig := in[idx]
			if !bytes.Equal(d.Payload, orig.Payload) {
				t.Fatalf("payload bytes edited for index %d", idx)
			}
			if d.Proto != orig.Proto || d.Src.Addr() != orig.Src.Addr() || d.Dst.Addr() != orig.Dst.Addr() {
				t.Fatalf("datagram identity changed for index %d", idx)
			}
			count[idx]++
			if count[idx] > 2 {
				t.Fatalf("index %d delivered %d times", idx, count[idx])
			}
		}

		out2, st2 := p.ImpairWithStats(seed, in)
		if st != st2 || !reflect.DeepEqual(out, out2) {
			t.Fatal("same (profile, seed, input) produced different outputs")
		}
	})
}
