package stun

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that arbitrary bytes never panic the decoder, that
// successful decodes re-encode losslessly at the structural level, and
// that declared lengths never exceed the input.
func FuzzDecode(f *testing.F) {
	m := &Message{Type: TypeBindingRequest, TransactionID: [12]byte{1, 2, 3}}
	m.Add(AttrUsername, []byte("user:pass"))
	AddFingerprint(m)
	f.Add(m.Raw)
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x21, 0x12, 0xa4, 0x42})
	f.Add(bytes.Repeat([]byte{0}, 64))

	// Corpus entries mirroring the deviant STUN shapes the appsim
	// emulators emit (§5.2): Zoom's classic RFC 3489 messages with
	// undefined attributes, FaceTime's 0x8007-bearing Binding Requests,
	// and Meet's GOOG-PING expansion types.
	zoomClassic := &Message{Type: TypeBindingRequest, Classic: true, TransactionID: [12]byte{9, 9, 9}}
	zoomClassic.Add(AttrType(0x0101), []byte("12345678901234567890"))
	f.Add(zoomClassic.Encode())
	zoomSSR := &Message{Type: TypeSharedSecretRequest, Classic: true, TransactionID: [12]byte{8, 8}}
	zoomSSR.Add(AttrType(0x0103), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(zoomSSR.Encode())
	ft := &Message{Type: TypeBindingRequest, TransactionID: [12]byte{7, 7, 7}}
	ft.Add(AttrType(0x8007), []byte{0, 0, 0, 9})
	f.Add(ft.Encode())
	googPing := &Message{Type: MessageType(0x0200), TransactionID: [12]byte{6, 6, 6}}
	f.Add(googPing.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		if msg.DecodedLen() > len(data) {
			t.Fatalf("DecodedLen %d > input %d", msg.DecodedLen(), len(data))
		}
		re := msg.Encode()
		// Re-decoding the re-encoding must succeed and agree on type,
		// txid and attribute count.
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if msg2.Type != msg.Type || msg2.TransactionID != msg.TransactionID ||
			len(msg2.Attributes) != len(msg.Attributes) {
			t.Fatal("re-encode not stable")
		}
	})
}

func FuzzDecodeChannelData(f *testing.F) {
	f.Add([]byte{0x40, 0x00, 0x00, 0x02, 0xaa, 0xbb})
	f.Fuzz(func(t *testing.T, data []byte) {
		cd, err := DecodeChannelData(data)
		if err != nil {
			return
		}
		if cd.DecodedLen() > len(data) {
			t.Fatalf("DecodedLen %d > input %d", cd.DecodedLen(), len(data))
		}
		re := cd.Encode()
		cd2, err := DecodeChannelData(re)
		if err != nil || cd2.ChannelNumber != cd.ChannelNumber || !bytes.Equal(cd2.Data, cd.Data) {
			t.Fatal("channeldata round trip unstable")
		}
	})
}
