package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/flow"
)

// The golden differential suite pins the analysis output of the
// pre-registry engine: the fixtures under testdata/golden were generated
// by the hardcoded-dispatch pipeline before the protocol registry
// existed, and every analysis mode — batch, streaming with 1 and N
// workers, and idle-eviction — must keep reproducing them byte for
// byte. Regenerate (only for a deliberate, reviewed behaviour change)
// with:
//
//	RTCC_UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenMatrix
var goldenSeeds = []uint64{3, 17}

var goldenNetworks = []appsim.Network{appsim.WiFiP2P, appsim.WiFiRelay, appsim.Cellular}

// goldenAnalysis is the deterministic, version-stable serialization of a
// CaptureAnalysis. Maps keyed by structs or integers are flattened to
// string-keyed maps (encoding/json sorts those) or sorted slices.
type goldenAnalysis struct {
	Label        string             `json:"label"`
	Bytes        int                `json:"bytes"`
	DecodeErrors int                `json:"decode_errors"`
	Filter       goldenFilter       `json:"filter"`
	Datagrams    map[string]int     `json:"datagrams"`
	Protocols    map[string]*gProto `json:"protocols"`
	Types        []gType            `json:"types"`
	Violations   map[string]int     `json:"violations"`
	Findings     []gFinding         `json:"findings"`
	SSRCs        []uint32           `json:"ssrcs"`
}

type goldenFilter struct {
	RawUDP    gCounts `json:"raw_udp"`
	RawTCP    gCounts `json:"raw_tcp"`
	Stage1UDP gCounts `json:"stage1_udp"`
	Stage1TCP gCounts `json:"stage1_tcp"`
	Stage2UDP gCounts `json:"stage2_udp"`
	Stage2TCP gCounts `json:"stage2_tcp"`
	RTCUDP    gCounts `json:"rtc_udp"`
	RTCTCP    gCounts `json:"rtc_tcp"`
	Removed   int     `json:"removed"`
}

type gCounts struct {
	Streams, Packets, Bytes int
}

type gProto struct {
	Messages, Compliant, Bytes int
}

type gType struct {
	Proto        string         `json:"proto"`
	Label        string         `json:"label"`
	Total        int            `json:"total"`
	NonCompliant int            `json:"non_compliant"`
	Reasons      map[string]int `json:"reasons,omitempty"`
}

type gFinding struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Count  int    `json:"count"`
}

func toCounts(c flow.Counts) gCounts { return gCounts{c.Streams, c.Packets, c.Bytes} }

// encodeGolden flattens one analysis into canonical JSON.
func encodeGolden(ca *CaptureAnalysis) []byte {
	g := goldenAnalysis{
		Label:        ca.Label,
		Bytes:        ca.Bytes,
		DecodeErrors: ca.DecodeErrors,
		Datagrams:    map[string]int{},
		Protocols:    map[string]*gProto{},
		Violations:   map[string]int{},
	}
	f := ca.Filter
	g.Filter = goldenFilter{
		RawUDP: toCounts(f.RawUDP), RawTCP: toCounts(f.RawTCP),
		Stage1UDP: toCounts(f.Stage1UDP), Stage1TCP: toCounts(f.Stage1TCP),
		Stage2UDP: toCounts(f.Stage2UDP), Stage2TCP: toCounts(f.Stage2TCP),
		RTCUDP: toCounts(f.RTCUDP), RTCTCP: toCounts(f.RTCTCP),
		Removed: len(f.Removed),
	}
	for class, n := range ca.Stats.Datagrams {
		g.Datagrams[class.String()] = n
	}
	for fam, ps := range ca.Stats.ByProtocol {
		g.Protocols[fam.String()] = &gProto{ps.Messages, ps.Compliant, ps.Bytes}
	}
	for key, ts := range ca.Stats.Types {
		gt := gType{
			Proto: key.Protocol.String(), Label: key.Label,
			Total: ts.Total, NonCompliant: ts.NonCompliant,
		}
		if len(ts.Reasons) > 0 {
			gt.Reasons = ts.Reasons
		}
		g.Types = append(g.Types, gt)
	}
	sort.Slice(g.Types, func(i, j int) bool {
		if g.Types[i].Proto != g.Types[j].Proto {
			return g.Types[i].Proto < g.Types[j].Proto
		}
		return g.Types[i].Label < g.Types[j].Label
	})
	for crit, n := range ca.Stats.Violations {
		g.Violations[crit.String()] = n
	}
	for _, fi := range ca.Findings {
		g.Findings = append(g.Findings, gFinding{fi.Kind, fi.Detail, fi.Count})
	}
	for ssrc := range ca.RTPSSRCs {
		g.SSRCs = append(g.SSRCs, ssrc)
	}
	sort.Slice(g.SSRCs, func(i, j int) bool { return g.SSRCs[i] < g.SSRCs[j] })
	out, err := json.MarshalIndent(&g, "", " ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

func goldenPath(app appsim.App, network appsim.Network, seed uint64) string {
	return filepath.Join("testdata", "golden",
		fmt.Sprintf("%s_%s_%d.json", app, network, seed))
}

// TestGoldenMatrix checks every analysis mode against the pre-refactor
// fixtures over the app × network × seed matrix.
func TestGoldenMatrix(t *testing.T) {
	update := os.Getenv("RTCC_UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	apps := appsim.Apps
	if testing.Short() {
		apps = apps[:2]
	}
	for _, app := range apps {
		for _, network := range goldenNetworks {
			for _, seed := range goldenSeeds {
				name := fmt.Sprintf("%s/%s/%d", app, network, seed)
				t.Run(name, func(t *testing.T) {
					cap := streamingCapture(t, app, network, seed)
					path := goldenPath(app, network, seed)

					batch, err := BatchAnalyzeCapture(cap.Input(), Options{Workers: 1})
					if err != nil {
						t.Fatal(err)
					}
					got := encodeGolden(batch)
					if update {
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing fixture (run with RTCC_UPDATE_GOLDEN=1): %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("batch output diverged from golden fixture %s:\ngot:\n%s", path, diffHint(want, got))
					}

					// The remaining modes must match the same fixture.
					for _, mode := range []struct {
						name string
						run  func() (*CaptureAnalysis, error)
					}{
						{"streaming-1", func() (*CaptureAnalysis, error) {
							return AnalyzeCapture(cap.Input(), Options{Workers: 1})
						}},
						{"streaming-8", func() (*CaptureAnalysis, error) {
							return AnalyzeCapture(cap.Input(), Options{Workers: 8})
						}},
						{"evict-idle", func() (*CaptureAnalysis, error) {
							raw := capturePCAPBytes(t, cap)
							return AnalyzePCAP(bytes.NewReader(raw), string(cap.Config.App),
								cap.CallStart, cap.CallEnd, Options{Workers: 1, EvictIdle: 500 * time.Millisecond})
						}},
						{"pooled-batched", func() (*CaptureAnalysis, error) {
							// The single-pass reader: batched FeedBatch over
							// pooled buffers, with poison-on-release armed so
							// any use of a released payload corrupts the
							// output instead of passing silently.
							defer bufpool.EnablePoison(bufpool.EnablePoison(true))
							raw := capturePCAPBytes(t, cap)
							return AnalyzePCAP(bytes.NewReader(raw), string(cap.Config.App),
								cap.CallStart, cap.CallEnd, Options{Workers: 1})
						}},
					} {
						ca, err := mode.run()
						if err != nil {
							t.Fatalf("%s: %v", mode.name, err)
						}
						if enc := encodeGolden(ca); !bytes.Equal(enc, want) {
							t.Errorf("%s output diverged from golden fixture %s:\n%s", mode.name, path, diffHint(want, enc))
						}
					}
				})
			}
		}
	}
}

// diffHint returns the first differing line of two fixture encodings.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}
