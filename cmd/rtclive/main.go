// Command rtclive moves captures over the network: `replay` streams a
// pcap file to a remote collector with original (scaled) timing, and
// `collect` receives such a stream, optionally analyzing it on the fly
// and/or writing it back out as a pcap file.
//
// Usage:
//
//	rtclive collect -listen :9898 -out received.pcap -analyze
//	rtclive replay  -pcap traces/000_zoom_wi-fi-p2p.pcap -to host:9898 -speed 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/live"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "replay":
		err = runReplay(os.Args[2:])
	case "collect":
		err = runCollect(os.Args[2:])
	case "-version", "--version", "version":
		cmdutil.PrintVersion(os.Stdout, "rtclive")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtclive:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rtclive replay  -pcap FILE -to HOST:PORT [-speed N] [-metrics-addr ADDR]
  rtclive collect -listen ADDR [-out FILE] [-analyze] [-max N] [-idle DUR] [-metrics-addr ADDR] [-trace-out FILE]
  rtclive -version`)
	os.Exit(2)
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	pcapPath := fs.String("pcap", "", "pcap file to replay")
	to := fs.String("to", "", "collector address host:port")
	speed := fs.Float64("speed", 10, "time compression factor (<=0: no pacing)")
	metAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	fs.Parse(args)
	if *pcapPath == "" || *to == "" {
		return fmt.Errorf("replay requires -pcap and -to")
	}
	_, stopMetrics, err := cmdutil.ServeMetrics("rtclive", *metAddr)
	if err != nil {
		return err
	}
	defer stopMetrics()

	f, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	frames, err := r.ReadAll()
	if err != nil {
		return err
	}

	exp, err := live.Dial(*to)
	if err != nil {
		return err
	}
	defer exp.Close()
	exp.Speed = *speed
	if *speed <= 0 {
		exp.Speed = live.SpeedInstant
	}

	begin := time.Now()
	if err := exp.Replay(context.Background(), frames); err != nil {
		return err
	}
	fmt.Printf("replayed %d frames to %s in %v\n", len(frames), *to, time.Since(begin).Round(time.Millisecond))
	return nil
}

func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	listen := fs.String("listen", ":9898", "UDP listen address")
	out := fs.String("out", "", "write the received frames to this pcap file")
	analyze := fs.Bool("analyze", false, "run the compliance pipeline on the received capture")
	workers := fs.Int("workers", 0, "analysis worker count (0 = one per CPU, 1 = serial)")
	maxFrames := fs.Int("max", 0, "stop after this many frames (0 = until idle)")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without frames")
	evict := fs.Duration("evict", 0, "finalize streams idle this long to bound analysis memory (0 = off)")
	shards := fs.Int("shards", 1, "ingest shard count for the streaming analysis (>1 spreads flows across N cores)")
	reorder := fs.Int("reorder", 256, "reorder-buffer depth for the streaming analysis")
	metAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "export the analysis decision trace as JSONL to this file (requires -analyze)")
	fs.Parse(args)

	reg, stopMetrics, err := cmdutil.ServeMetrics("rtclive", *metAddr)
	if err != nil {
		return err
	}
	defer stopMetrics()

	col, err := live.Listen(*listen)
	if err != nil {
		return err
	}
	defer col.Close()
	col.IdleTimeout = *idle
	col.Metrics = reg
	fmt.Printf("collecting on %s (idle timeout %v)...\n", col.Addr(), *idle)

	// The analysis shares the offline pipeline's streaming Analyzer: the
	// call window defaults to the received span, frames are analyzed as
	// they arrive (through a small reorder buffer that undoes UDP
	// reordering on the mirror path), and nothing requires holding the
	// whole capture — unless -out needs the frames for the pcap file.
	var analyzer core.FrameSink
	var sharded *rtcc.ShardedAnalyzer
	var jsonl *obs.JSONLWriter
	var traceFile *os.File
	if *traceOut != "" && !*analyze {
		return fmt.Errorf("-trace-out requires -analyze")
	}
	if *traceOut != "" && *shards > 1 {
		return fmt.Errorf("-trace-out cannot be combined with -shards > 1 (shard workers would interleave the trace)")
	}
	if *analyze {
		opts := rtcc.Options{Workers: *workers, Metrics: reg}
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return err
			}
			jsonl = obs.NewJSONLWriter(traceFile)
			opts.Tracer = jsonl
		}
		acfg := core.AnalyzerConfig{
			Label:               "live",
			LinkType:            pcap.LinkTypeRaw,
			DefaultWindowToSpan: true,
			FramesStable:        true, // each decapsulated frame is freshly allocated
			EvictIdle:           *evict,
		}
		if *shards > 1 {
			// Live ingest prefers shedding to stalling: a stalled
			// producer drops mirror packets upstream invisibly, while the
			// Drop policy counts every datagram it sheds.
			sharded, err = rtcc.NewShardedAnalyzer(acfg, opts, rtcc.ShardConfig{
				Shards: *shards, Policy: rtcc.ShardDrop,
			})
			analyzer = sharded
		} else {
			analyzer, err = core.NewAnalyzer(acfg, opts)
		}
		if err != nil {
			return err
		}
	}

	received := 0
	if *out == "" {
		// Pure streaming: no capture buffer at all. Frames emitted by
		// the reorder buffer are fed to the analyzer in small batches,
		// amortizing the per-feed bookkeeping (each frame is freshly
		// allocated, so batching retains nothing extra).
		feed := func(pkt pcap.Packet) error { return nil }
		var batcher *feedBatcher
		if analyzer != nil {
			batcher = newFeedBatcher(analyzer)
			feed = batcher.push
		}
		rb := live.NewReorderBuffer(*reorder, feed)
		received, err = col.Stream(context.Background(), *maxFrames, rb.Push)
		if err != nil {
			return err
		}
		if err := rb.Flush(); err != nil {
			return err
		}
		if batcher != nil {
			if err := batcher.flush(); err != nil {
				return err
			}
		}
	} else {
		frames, err := col.Collect(context.Background(), *maxFrames)
		if err != nil {
			return err
		}
		received = len(frames)
		// Restore capture order so the pcap file and the analysis see
		// the original stream.
		live.SortByTimestamp(frames)
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		w := pcap.NewWriter(f, pcap.LinkTypeRaw)
		for _, fr := range frames {
			if err := w.WritePacket(fr); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
		if analyzer != nil {
			batcher := newFeedBatcher(analyzer)
			for _, fr := range frames {
				if err := batcher.push(fr); err != nil {
					return err
				}
			}
			if err := batcher.flush(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("received %d frames (%d decode errors, %d dropped, %d reordered)\n",
		received, col.DecodeErrors, col.Dropped, col.Reordered)
	if received == 0 || analyzer == nil {
		return flushTrace(jsonl, traceFile, *traceOut)
	}

	ca, err := analyzer.Close()
	if err != nil {
		return err
	}
	if sharded != nil {
		st := sharded.Stats()
		if st.Dropped > 0 {
			fmt.Printf("ingest: %d datagrams dropped under back-pressure (%d analyzed on %d shards)\n",
				st.Dropped, st.Analyzed, len(st.Shards))
		}
	}
	if err := flushTrace(jsonl, traceFile, *traceOut); err != nil {
		return err
	}
	if ca.DecodeErrors > 0 {
		fmt.Printf("decode errors: %d undecodable frames in the analysis\n", ca.DecodeErrors)
	}
	if ratio, ok := ca.Stats.VolumeCompliance(); ok {
		fmt.Printf("volume compliance: %.2f%%\n", 100*ratio)
	}
	c, t := ca.Stats.TypeCompliance(dpi.ProtoUnknown)
	fmt.Printf("message types: %d/%d compliant\n", c, t)
	for _, fd := range ca.Findings {
		fmt.Printf("finding: %s: %s\n", fd.Kind, fd.Detail)
	}
	return nil
}

// feedBatcher accumulates frames into fixed-size batches for
// FrameSink.FeedBatch, amortizing per-feed bookkeeping on the live
// path. The sink is either a serial Analyzer or the sharded tier; the
// batcher cannot tell the difference.
type feedBatcher struct {
	a     core.FrameSink
	batch []core.Datagram
}

func newFeedBatcher(a core.FrameSink) *feedBatcher {
	return &feedBatcher{a: a, batch: make([]core.Datagram, 0, 64)}
}

func (b *feedBatcher) push(pkt pcap.Packet) error {
	b.batch = append(b.batch, core.Datagram{Timestamp: pkt.Timestamp, Frame: pkt.Data})
	if len(b.batch) == cap(b.batch) {
		return b.flush()
	}
	return nil
}

func (b *feedBatcher) flush() error {
	if len(b.batch) == 0 {
		return nil
	}
	err := b.a.FeedBatch(b.batch)
	b.batch = b.batch[:0]
	return err
}

// flushTrace finishes the -trace-out export; a nil writer is a no-op.
func flushTrace(jsonl *obs.JSONLWriter, f *os.File, path string) error {
	if jsonl == nil {
		return nil
	}
	if err := jsonl.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s\n", path)
	return nil
}
