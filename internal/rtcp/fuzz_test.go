package rtcp

import "testing"

// FuzzDecodeCompound checks panic-freedom and span accounting for the
// compound walker.
func FuzzDecodeCompound(f *testing.F) {
	f.Add(EncodeSR(&SenderReport{SSRC: 1, Info: SenderInfo{NTPTimestamp: 1}}))
	f.Add(Compound(
		EncodeRR(&ReceiverReport{SSRC: 2}),
		EncodeBye(&Bye{SSRCs: []uint32{2}}),
	))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, trailing, err := DecodeCompound(data)
		if err != nil {
			return
		}
		total := len(trailing)
		for _, p := range pkts {
			if p.Header.ByteLen() != len(p.Raw) {
				t.Fatal("raw length disagrees with header")
			}
			total += p.Header.ByteLen()
		}
		if total != len(data) {
			t.Fatalf("span accounting: %d != %d", total, len(data))
		}
	})
}
