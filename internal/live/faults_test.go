package live

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// TestLoopbackFaultInjection replays a generated capture over real UDP
// with three injected faults — one pair of adjacent frames swapped, one
// truncated datagram, one skipped sequence number — and asserts that
// the collector's counters attribute each fault exactly, and that after
// restoring capture order the analysis equals the offline path.
func TestLoopbackFaultInjection(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.Discord, Network: appsim.WiFiRelay, Seed: 21,
		Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
		MediaRate: 10, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()
	if len(frames) < 20 {
		t.Fatalf("capture too small for fault injection: %d frames", len(frames))
	}

	reg := metrics.NewRegistry()
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.IdleTimeout = time.Second
	col.Metrics = reg

	conn, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The exporter would assign seq i+1 to frame i; we skip one value at
	// skipAt so the collector sees a gap while every real frame arrives.
	skipAt := 3 * len(frames) / 4
	seqOf := func(i int) uint32 {
		if i < skipAt {
			return uint32(i + 1)
		}
		return uint32(i + 2)
	}
	// Swap one adjacent pair with distinct timestamps (so a stable sort
	// by timestamp restores the exact original order), before skipAt.
	swap := -1
	for i := 1; i+1 < skipAt; i++ {
		if !frames[i].Timestamp.Equal(frames[i+1].Timestamp) {
			swap = i
			break
		}
	}
	if swap < 0 {
		t.Fatal("no adjacent frames with distinct timestamps")
	}
	order := make([]int, len(frames))
	for i := range order {
		order[i] = i
	}
	order[swap], order[swap+1] = order[swap+1], order[swap]

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	type result struct {
		frames []pcap.Packet
		err    error
	}
	done := make(chan result, 1)
	go func() {
		got, err := col.Collect(ctx, len(frames))
		done <- result{got, err}
	}()

	for n, i := range order {
		if n == len(frames)/2 {
			// One truncated datagram mid-stream: a valid header cut short.
			wire := Encapsulate(9999, frames[i])
			if _, err := conn.Write(wire[:10]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Write(Encapsulate(seqOf(i), frames[i])); err != nil {
			t.Fatal(err)
		}
		// Light pacing keeps the loopback path in order and lossless so
		// the counter assertions below can be exact.
		if n%32 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	got := res.frames
	if len(got) != len(frames) {
		t.Fatalf("collected %d of %d frames", len(got), len(frames))
	}

	if col.DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d, want 1 (one truncated datagram)", col.DecodeErrors)
	}
	if col.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1 (one swapped pair)", col.Reordered)
	}
	if col.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (one skipped sequence number)", col.Dropped)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["live_frames_received_total"]; n != uint64(len(frames)) {
		t.Errorf("live_frames_received_total = %d, want %d", n, len(frames))
	}
	if n := snap.Counters["live_decode_errors_total"]; n != 1 {
		t.Errorf("live_decode_errors_total = %d, want 1", n)
	}
	if n := snap.Counters["live_frames_reordered_total"]; n != 1 {
		t.Errorf("live_frames_reordered_total = %d, want 1", n)
	}
	if n := snap.Gauges["live_frames_dropped"]; n != 1 {
		t.Errorf("live_frames_dropped = %d, want 1", n)
	}

	// Restoring capture order must reproduce the original frame sequence
	// byte for byte: the swapped pair had distinct timestamps and every
	// other frame arrived in send order, which a stable sort preserves.
	// The encapsulation header carries microseconds, so expectations are
	// the originals truncated to what survives the wire.
	expected := make([]pcap.Packet, len(frames))
	for i, f := range frames {
		f.Timestamp = f.Timestamp.Truncate(time.Microsecond)
		expected[i] = f
	}
	SortByTimestamp(got)
	for i := range got {
		if !got[i].Timestamp.Equal(expected[i].Timestamp) || !bytes.Equal(got[i].Data, expected[i].Data) {
			t.Fatalf("frame %d differs after timestamp sort", i)
		}
	}

	live, err := core.AnalyzeCapture(core.CaptureInput{
		Label: "cap", LinkType: pcap.LinkTypeRaw, Packets: got,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, core.Options{SkipFindings: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.AnalyzeCapture(core.CaptureInput{
		Label: "cap", LinkType: pcap.LinkTypeRaw, Packets: expected,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, core.Options{SkipFindings: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, direct) {
		t.Error("live analysis differs from offline analysis after order restoration")
	}
}
