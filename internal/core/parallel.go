package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the effective worker count for an analysis run:
// Options.Workers when positive, otherwise one worker per available CPU.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed runs fn(0), fn(1), ..., fn(n-1) on up to workers
// goroutines. With one worker (or one item) it degenerates to the plain
// serial loop, including its stop-at-first-error behaviour. With more
// workers every index runs to completion and the reported error is the
// one with the lowest index, so the error a caller sees is independent
// of goroutine scheduling and matches what the serial path would have
// returned.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
