package obs

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Pipeline is the capture-scoped emission context. The analyzer creates
// one per capture via New and emits capture-level decisions (filter
// verdicts, lifecycle events, findings) through it directly; per-stream
// decisions go through child Spans from StreamSpan.
//
// A nil *Pipeline no-ops every method, so call sites thread it through
// unguarded exactly like a nil *metrics.Registry. Pipeline methods are
// not safe for concurrent use: the analyzer only emits from
// deterministic single-goroutine points (Feed, the Close fold).
type Pipeline struct {
	tr       Tracer
	label    string
	span     string // capture span ID
	seq      uint64
	sampling Sampling
}

// New builds a Pipeline emitting to tr, labelled label (typically the
// app name or capture path; it seeds all span IDs). A nil tr yields a
// nil Pipeline. The capture-begin event is emitted immediately.
func New(tr Tracer, label string, s Sampling, reg *metrics.Registry) *Pipeline {
	if tr == nil {
		return nil
	}
	p := &Pipeline{
		tr:       tracerWithCounts(tr, reg),
		label:    label,
		span:     SpanID(label, ""),
		sampling: s.withDefaults(),
	}
	p.emit(Event{Kind: KindCaptureBegin, App: label})
	return p
}

// emit stamps the capture span identity and sequence and forwards to
// the sink.
func (p *Pipeline) emit(ev Event) {
	ev.Span = p.span
	ev.Seq = p.seq
	p.seq++
	p.tr.Emit(ev)
}

// StreamAdmitted records that the filter pipeline admitted a stream as
// provisional RTC traffic.
func (p *Pipeline) StreamAdmitted(stream string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStreamAdmitted, Stream: stream})
}

// StreamFiltered records that a filter rule removed a stream, naming
// the stage (1 or 2) and rule that fired.
func (p *Pipeline) StreamFiltered(stream string, stage int, rule, detail string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStreamFiltered, Stream: stream, Stage: stage, Rule: rule, Detail: detail})
}

// StreamEvicted records an idle-eviction chunk finalization of a
// stream during streaming analysis.
func (p *Pipeline) StreamEvicted(stream string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStreamEvicted, Stream: stream})
}

// StreamReclassified records a Close-time reconciliation: a stream
// admitted provisionally during Feed that the full-capture filter run
// removed.
func (p *Pipeline) StreamReclassified(stream string, stage int, rule string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStreamReclassified, Stream: stream, Stage: stage, Rule: rule})
}

// FindingEmitted records a behavioural finding (§5.3) surfacing in the
// capture's report.
func (p *Pipeline) FindingEmitted(kind, detail string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindFindingEmitted, Rule: kind, Detail: detail})
}

// CaptureEnd closes the capture span. detail summarizes the run (frame
// and error counts).
func (p *Pipeline) CaptureEnd(detail string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindCaptureEnd, App: p.label, Detail: detail})
}

// StreamSpan derives the child span for one stream. The span buffers
// its events under the head/tail sampling policy until Flush; it is
// single-goroutine (each stream is inspected by exactly one worker).
// A nil Pipeline yields a nil Span, which no-ops.
func (p *Pipeline) StreamSpan(stream string) *Span {
	if p == nil {
		return nil
	}
	return &Span{
		p:      p,
		id:     SpanID(p.label, stream),
		stream: stream,
		s:      p.sampling,
	}
}

// Span buffers the decision trace of one stream. Events are recorded
// with per-span sequence numbers, sampled head/tail, and handed to the
// parent pipeline's sink on Flush — which the analyzer calls only at
// deterministic points, making the exported order independent of
// worker scheduling. Failing verdicts are always kept.
type Span struct {
	p      *Pipeline
	id     string
	stream string
	s      Sampling

	seq      uint64  // next per-span sequence number
	dgram    int     // current 1-based datagram ordinal
	headUsed int     // head budget consumed over the span's lifetime
	head     []Event // first s.Head events
	tail     []Event // ring of the most recent s.Tail overflow events
	tailPos  int
	kept     []Event // forced-keep events (failing verdicts) past the head
	dropped  int
}

// BeginDatagram advances the span to the next datagram of the stream.
// Subsequent Probe/Extraction/Verdict events carry its ordinal.
func (sp *Span) BeginDatagram() {
	if sp == nil {
		return
	}
	sp.dgram++
}

// Probe records one Algorithm 1 step at offset: outcome OutcomeMatch
// with the matching protocol name, or OutcomeShift when no prober
// accepted the byte and the cursor advanced.
func (sp *Span) Probe(offset int, first byte, protoName, outcome string) {
	if sp == nil {
		return
	}
	sp.record(Event{
		Kind: KindProbeAttempt, Dgram: sp.dgram, Offset: offset,
		First: hexByte(first), Proto: protoName, Outcome: outcome,
	}, false)
}

// Extraction records the datagram's classification after extraction:
// class (standard / proprietary header / fully proprietary) and the
// number of standard messages extracted.
func (sp *Span) Extraction(class string, messages int) {
	if sp == nil {
		return
	}
	sp.record(Event{Kind: KindExtraction, Dgram: sp.dgram, Class: class, Messages: messages}, false)
}

// Verdict records one five-criterion compliance judgment. criterion 0
// is compliant; 1-5 name the failing criterion, and failing verdicts
// bypass sampling so every non-compliance is explainable. window holds
// the message bytes (truncated for the trace).
func (sp *Span) Verdict(dgram int, ts time.Time, protoName, msgType string, criterion int, reason string, offset int, window []byte) {
	if sp == nil {
		return
	}
	sp.record(Event{
		Kind: KindCriterionVerdict, Dgram: dgram, TS: fmtTS(ts),
		Proto: protoName, MsgType: msgType,
		Criterion: criterion, Reason: reason,
		Offset: offset, Bytes: hexBytes(window, 24),
	}, criterion > 0)
}

// record assigns the next per-span seq and applies the sampling policy:
// head budget first, then forced-keep or the tail ring.
func (sp *Span) record(ev Event, force bool) {
	ev.Span = sp.id
	ev.Parent = sp.p.span
	ev.Stream = sp.stream
	ev.Seq = sp.seq
	sp.seq++
	if sp.headUsed < sp.s.Head {
		sp.headUsed++
		sp.head = append(sp.head, ev)
		return
	}
	if force {
		sp.kept = append(sp.kept, ev)
		return
	}
	if len(sp.tail) < sp.s.Tail {
		sp.tail = append(sp.tail, ev)
		return
	}
	sp.tail[sp.tailPos] = ev
	sp.tailPos = (sp.tailPos + 1) % sp.s.Tail
	sp.dropped++
}

// Flush emits the buffered events in sequence order — head, then the
// forced-keeps and tail ring merged by seq — followed by a truncated
// marker when sampling dropped events. The analyzer calls Flush only
// from deterministic points (eviction during Feed, the Close fold); a
// span may flush more than once (per eviction chunk), and buffers
// reset so events are never emitted twice. The head budget is not
// reset: it spans the stream's lifetime, not one chunk.
func (sp *Span) Flush() {
	if sp == nil {
		return
	}
	for _, ev := range sp.head {
		sp.p.tr.Emit(ev)
	}
	// Linearize the ring oldest-first.
	tail := make([]Event, 0, len(sp.tail))
	tail = append(tail, sp.tail[sp.tailPos:]...)
	tail = append(tail, sp.tail[:sp.tailPos]...)
	// Merge forced-keeps with the tail by seq (both are individually
	// ordered; forced events may predate or interleave the ring).
	ki, ti := 0, 0
	for ki < len(sp.kept) || ti < len(tail) {
		if ti >= len(tail) || (ki < len(sp.kept) && sp.kept[ki].Seq < tail[ti].Seq) {
			sp.p.tr.Emit(sp.kept[ki])
			ki++
		} else {
			sp.p.tr.Emit(tail[ti])
			ti++
		}
	}
	if sp.dropped > 0 {
		sp.p.tr.Emit(Event{
			Kind: KindTruncated, Span: sp.id, Parent: sp.p.span,
			Stream: sp.stream, Seq: sp.seq, Dropped: sp.dropped,
		})
		sp.seq++
	}
	sp.head = sp.head[:0]
	sp.kept = nil
	sp.tail = nil
	sp.tailPos = 0
	sp.dropped = 0
}
