package core

import (
	"encoding/binary"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// The hot-path allocation budget: every stage of the pooled, batched
// datagram lifecycle — decode, flow grouping, DPI (both passes),
// compliance checking, and the assembled FeedBatch path — must run at
// zero allocations per packet in steady state. A regression in any
// stage fails here before it shows up in a benchmark.

// hotRTPFrame builds a raw-IPv4 UDP frame carrying one extension-free,
// CSRC-free RTP packet (the shape the zero-alloc decode path handles
// without growing per-packet storage).
func hotRTPFrame(src, dst netip.Addr, srcPort, dstPort uint16, ssrc uint32, seq uint16) []byte {
	p := rtp.Packet{
		Version:        2,
		PayloadType:    111,
		SequenceNumber: seq,
		Timestamp:      uint32(seq) * 960,
		SSRC:           ssrc,
	}
	p.Payload = make([]byte, 160)
	for i := range p.Payload {
		p.Payload[i] = 0x5a
	}
	return layers.EncodeUDPv4(src, dst, srcPort, dstPort, p.Encode())
}

// patchSeq rewrites the RTP sequence number (and matching media
// timestamp) inside an encoded frame in place: 20 bytes IPv4 + 8 UDP
// puts the RTP header at offset 28. Decoding ignores the UDP checksum,
// so no fixup is needed.
func patchSeq(frame []byte, seq uint16) {
	const rtpOff = 20 + 8
	binary.BigEndian.PutUint16(frame[rtpOff+2:], seq)
	binary.BigEndian.PutUint32(frame[rtpOff+4:], uint32(seq)*960)
}

var (
	hotSrc = netip.MustParseAddr("10.0.0.1")
	hotDst = netip.MustParseAddr("203.0.113.7")
	hotAlt = netip.MustParseAddr("203.0.113.8")
)

// TestHotPathAllocs pins each pipeline stage, then the whole pooled
// FeedBatch path, to 0 allocs/op.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; allocation counts are not stable")
	}

	t.Run("decode", func(t *testing.T) {
		frame := hotRTPFrame(hotSrc, hotDst, 50000, 4444, 0xbeef, 1)
		var pkt layers.Packet
		allocs := testing.AllocsPerRun(500, func() {
			if err := layers.DecodeInto(&pkt, pcap.LinkTypeRaw, frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("DecodeInto allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("flow-add", func(t *testing.T) {
		table := flow.NewTable()
		frame := hotRTPFrame(hotSrc, hotDst, 50000, 4444, 0xbeef, 1)
		var pkt layers.Packet
		if err := layers.DecodeInto(&pkt, pcap.LinkTypeRaw, frame); err != nil {
			t.Fatal(err)
		}
		ts := time.Unix(1700000000, 0)
		s, ok := table.AddPacket(ts, &pkt, false)
		if !ok {
			t.Fatal("AddPacket rejected the probe packet")
		}
		src := flow.Endpoint{Addr: hotSrc, Port: 50000}
		dst := flow.Endpoint{Addr: hotDst, Port: 4444}
		dir := flow.DirAToB
		if s.Key.A != src {
			dir = flow.DirBToA
		}
		// Warm both the record slice and the 3-tuple memo, then measure
		// the pool-mode steady state: records retained, then truncated
		// as the analyzer's drop path does.
		table.AddToStream(s, ts, dir, src, dst, pkt.Payload, 0, true)
		s.Packets = s.Packets[:0]
		allocs := testing.AllocsPerRun(500, func() {
			ts = ts.Add(time.Millisecond)
			table.AddToStream(s, ts, dir, src, dst, pkt.Payload, 0, true)
			s.Packets = s.Packets[:0]
		})
		if allocs != 0 {
			t.Errorf("AddToStream allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("dpi-two-pass", func(t *testing.T) {
		engine := Options{}.engine()
		si := engine.NewStreamInspector()
		const chunk = 16
		payloads := make([][]byte, chunk)
		for i := range payloads {
			frame := hotRTPFrame(hotSrc, hotDst, 50000, 4444, 0xbeef, uint16(i))
			payloads[i] = frame[28:] // UDP payload view
		}
		seq := uint16(0)
		feedChunk := func() {
			for i := range payloads {
				// payloads[i] starts at the RTP header, so the sequence
				// number and media timestamp sit at offsets 2 and 4.
				binary.BigEndian.PutUint16(payloads[i][2:], seq)
				binary.BigEndian.PutUint32(payloads[i][4:], uint32(seq)*960)
				seq++
				si.Feed(payloads[i])
			}
			if got := si.Finalize(); len(got) != chunk {
				t.Fatalf("Finalize returned %d results, want %d", len(got), chunk)
			}
		}
		// Warm-up validates the SSRC and sizes the arenas/slabs.
		for i := 0; i < 4; i++ {
			feedChunk()
		}
		allocs := testing.AllocsPerRun(200, feedChunk)
		if allocs != 0 {
			t.Errorf("StreamInspector chunk (feed %d + finalize) allocates %.1f/op, want 0", chunk, allocs)
		}
	})

	t.Run("compliance-check", func(t *testing.T) {
		engine := Options{}.engine()
		si := engine.NewStreamInspector()
		var payloads [][]byte
		for i := 0; i < 4; i++ {
			frame := hotRTPFrame(hotSrc, hotDst, 50000, 4444, 0xbeef, uint16(i))
			payloads = append(payloads, frame[28:])
			si.Feed(frame[28:])
		}
		results := si.Finalize()
		msgIdx := -1
		for i := len(results) - 1; i >= 0; i-- {
			if len(results[i].Messages) > 0 {
				msgIdx = i
				break
			}
		}
		if msgIdx < 0 {
			t.Fatal("no validated RTP message to check")
		}
		m := results[msgIdx].Messages[0]
		session := compliance.NewChecker().NewSession()
		ts := time.Unix(1700000000, 0)
		session.Check(m, ts) // warm the per-session scratch and stats keys
		allocs := testing.AllocsPerRun(500, func() {
			ts = ts.Add(time.Millisecond)
			if out := session.Check(m, ts); len(out) == 0 {
				t.Fatal("Check returned no verdicts")
			}
		})
		if allocs != 0 {
			t.Errorf("Session.Check allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("feedbatch-end-to-end", func(t *testing.T) {
		defer bufpool.EnablePoison(bufpool.EnablePoison(true))
		a, err := NewAnalyzer(AnalyzerConfig{
			Label:     "hotpath",
			LinkType:  pcap.LinkTypeRaw,
			CallStart: time.Unix(1700000000, 0),
			CallEnd:   time.Unix(1700000000, 0).Add(time.Hour),
			EvictIdle: time.Millisecond,
			Pool:      bufpool.Global(),
		}, Options{SkipFindings: true})
		if err != nil {
			t.Fatal(err)
		}
		// Two streams alternate batches with gaps above EvictIdle, so
		// each batch finalizes the other stream's chunk and recycles its
		// arena — the steady state the pool exists for.
		const batchLen = 64
		mkBatch := func(dst netip.Addr, ssrc uint32) []Datagram {
			b := make([]Datagram, batchLen)
			for i := range b {
				b[i].Frame = hotRTPFrame(hotSrc, dst, 50000, 4444, ssrc, 0)
			}
			return b
		}
		batches := [2][]Datagram{mkBatch(hotDst, 0xbeef), mkBatch(hotAlt, 0xcafe)}
		seqs := [2]uint16{}
		ts := time.Unix(1700000000, 0).Add(time.Second)
		turn := 0
		feed := func() {
			b := batches[turn]
			for i := range b {
				patchSeq(b[i].Frame, seqs[turn])
				seqs[turn]++
				ts = ts.Add(50 * time.Microsecond)
				b[i].Timestamp = ts
			}
			ts = ts.Add(5 * time.Millisecond) // idle the stream past EvictIdle
			if err := a.FeedBatch(b); err != nil {
				t.Fatal(err)
			}
			turn = 1 - turn
		}
		// Warm-up: create both streams, validate SSRCs, run several
		// eviction/wake cycles to size every arena and scratch buffer.
		for i := 0; i < 12; i++ {
			feed()
		}
		allocs := testing.AllocsPerRun(100, feed)
		if perPkt := allocs / batchLen; perPkt != 0 {
			t.Errorf("pooled FeedBatch allocates %.3f/packet (%.1f/batch), want 0", perPkt, allocs)
		}
		if _, err := a.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFeedBatchPoisonHammer drives 16 per-shard analyzers concurrently
// through the pooled FeedBatch path with poison-on-release armed, all
// sharing the process-wide buffer pool. Any retention of a released
// buffer — by another analyzer or a later chunk of the same one — is
// poisoned to 0xDB and surfaces as a divergence from the serial
// reference. Run under -race to also catch unsynchronized access.
func TestFeedBatchPoisonHammer(t *testing.T) {
	defer bufpool.EnablePoison(bufpool.EnablePoison(true))
	capt := streamingCapture(t, appsim.Zoom, appsim.WiFiRelay, 7)
	frames := capt.Frames()

	ref := analyzePooledBatched(t, frames, capt.CallStart, capt.CallEnd)

	const goroutines = 16
	var wg sync.WaitGroup
	analyses := make([]*CaptureAnalysis, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("goroutine %d panicked: %v", g, r)
				}
			}()
			analyses[g] = analyzePooledBatchedErr(frames, capt.CallStart, capt.CallEnd, &errs[g])
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(analyses[g], ref) {
			t.Errorf("goroutine %d: pooled analysis differs from serial reference (buffer reuse corruption?)", g)
		}
	}
}

func analyzePooledBatched(t *testing.T, frames []pcap.Packet, start, end time.Time) *CaptureAnalysis {
	t.Helper()
	var err error
	ca := analyzePooledBatchedErr(frames, start, end, &err)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

// analyzePooledBatchedErr runs one pooled, batched analysis over frames
// copied through a reused ring (mimicking the pcap reader's buffer
// reuse, which is what makes retention bugs observable).
func analyzePooledBatchedErr(frames []pcap.Packet, start, end time.Time, errp *error) *CaptureAnalysis {
	a, err := NewAnalyzer(AnalyzerConfig{
		Label:     "hammer",
		LinkType:  pcap.LinkTypeRaw,
		CallStart: start,
		CallEnd:   end,
		Pool:      bufpool.Global(),
	}, Options{Workers: 1})
	if err != nil {
		*errp = err
		return nil
	}
	ring := newFrameRing()
	for _, fr := range frames {
		slot := ring.slot()
		*slot = append((*slot)[:0], fr.Data...)
		if ring.add(fr.Timestamp, *slot) {
			if err := ring.flush(a); err != nil {
				*errp = err
				return nil
			}
		}
	}
	if err := ring.flush(a); err != nil {
		*errp = err
		return nil
	}
	ca, err := a.Close()
	if err != nil {
		*errp = err
		return nil
	}
	return ca
}
