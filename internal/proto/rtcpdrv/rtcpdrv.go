// Package rtcpdrv registers the RTCP protocol with the wire-protocol
// registry: the RFC 5761 demux-range prober with trailer plausibility
// and unassigned-type SSRC cross-validation, the per-packet compliance
// judges (including SRTCP trailer semantics), and the findings observer
// reporting trailer bytes and feedback evidence.
package rtcpdrv

import (
	"encoding/binary"
	"strconv"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
)

func init() {
	proto.Register(handler{})
}

// Precedence orders RTCP after the STUN family's strong fingerprints
// but before QUIC: the 192-223 packet-type range is carved out of the
// RTP space by RFC 5761 and must win against the RTP prober.
const Precedence = 30

type handler struct{}

func (handler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.RTCP,
		Name:        "RTCP",
		Slug:        "rtcp",
		Family:      proto.RTCP,
		Order:       3,
		Fingerprint: "version 2 + RFC 5761 packet type 192-223, compound walk with plausible (S)RTCP trailer",
		Fuzz:        "./internal/rtcp:FuzzDecodeCompound",
	}
}

func (handler) Probers() []proto.Prober {
	return []proto.Prober{{
		Precedence: Precedence,
		Pass1:      true,
		// Version bits 2 in the top two bit positions.
		First:    func(b byte) bool { return b>>6 == 2 },
		Probe:    proto.ConsumeProbe(Match),
		Validate: Match,
	}}
}

// Match matches an RTCP compound region: version 2 and packet type
// 192-223 per the RFC 5761 demultiplexing range, with the paper's
// cross-validation heuristic: the sender SSRC of unassigned packet
// types must match a known RTP stream, and the trailing bytes must form
// a plausible trailer (nothing, a small proprietary suffix, or an SRTCP
// index with or without the auth tag). Exported for the RTP driver's
// strong-second-candidate scan.
func Match(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if !rtcp.LooksLikeHeader(b) {
		return proto.Message{}, false
	}
	// The DPI probes every candidate offset of every datagram, so
	// rejections (the common case inside RTP payloads and proprietary
	// headers) must not allocate: replay the rejection rules over the
	// raw bytes first and decode only survivors.
	if !scanCompound(b, st) {
		return proto.Message{}, false
	}
	pkts, trailing, err := rtcp.DecodeCompound(b)
	if err != nil || len(pkts) == 0 {
		return proto.Message{}, false
	}
	length := 0
	for _, p := range pkts {
		length += p.Header.ByteLen()
	}
	switch len(trailing) {
	case 0, 1, 2, 3, 4, 14:
	default:
		return proto.Message{}, false
	}
	for _, p := range pkts {
		// Every real RTCP packet carries at least the header plus one
		// SSRC word.
		if p.Header.ByteLen() < 8 {
			return proto.Message{}, false
		}
		if rtcp.Defined(p.Header.Type) {
			continue
		}
		// Unassigned type: require SSRC support from the stream's
		// validated RTP state ("cross validated sender SSRC with known
		// RTP streams", §4.1.1). Permissive single-datagram mode has no
		// validated set and accepts the candidate.
		if st.ValidatedSSRC == nil {
			continue
		}
		ssrc, ok := p.SenderSSRC()
		if !ok || !st.ValidatedSSRC[ssrc] {
			return proto.Message{}, false
		}
	}
	return proto.Message{
		Protocol:     proto.RTCP,
		Length:       length + len(trailing),
		RTCP:         pkts,
		RTCPTrailing: trailing,
	}, true
}

// scanCompound is Match's allocation-free pre-filter: it walks the
// compound region exactly as DecodeCompound does and applies every
// rejection rule — minimum packet length, the trailer-length whitelist,
// and the unassigned-type SSRC cross-validation — on the raw bytes. It
// may only reject; a true verdict is always confirmed by the full
// decode, so the two cannot drift apart silently.
func scanCompound(b []byte, st *proto.StreamState) bool {
	off := 0
	for {
		// Match's LooksLikeHeader gate (and DecodeCompound's, for later
		// packets) guarantees the declared length fits in b.
		blen := 4 * (int(uint16(b[off+2])<<8|uint16(b[off+3])) + 1)
		if blen < 8 {
			return false
		}
		if !rtcp.Defined(rtcp.PacketType(b[off+1])) && st.ValidatedSSRC != nil {
			// Unassigned type: the sender SSRC (first body word, after
			// padding removal) must match a validated RTP stream.
			body := b[off+4 : off+blen]
			if b[off]&0x20 != 0 && len(body) > 0 {
				if pad := int(body[len(body)-1]); pad > 0 && pad <= len(body) {
					body = body[:len(body)-pad]
				}
			}
			if len(body) < 4 {
				return false
			}
			if !st.ValidatedSSRC[binary.BigEndian.Uint32(body[:4])] {
				return false
			}
		}
		off += blen
		if off+rtcp.HeaderLen > len(b) || !rtcp.LooksLikeHeader(b[off:]) {
			break
		}
	}
	switch len(b) - off {
	case 0, 1, 2, 3, 4, 14:
		return true
	}
	return false
}

// trailerKind classifies the bytes following an RTCP compound region.
type trailerKind int

const (
	trailerNone trailerKind = iota
	// trailerSRTCP is a full RFC 3711 trailer: 4-byte E-flag+index plus
	// the 10-byte authentication tag.
	trailerSRTCP
	// trailerSRTCPNoAuth is the E-flag+index alone — the Google Meet
	// relay-mode violation (RFC 3711 requires the auth tag).
	trailerSRTCPNoAuth
	// trailerUnknown is anything else (Discord's counter+direction
	// bytes).
	trailerUnknown
)

func classifyTrailer(trailing []byte) trailerKind {
	switch len(trailing) {
	case 0:
		return trailerNone
	case srtp.SRTCPIndexLen:
		return trailerSRTCPNoAuth
	case srtp.SRTCPIndexLen + srtp.AuthTagLen:
		return trailerSRTCP
	default:
		return trailerUnknown
	}
}

// session is RTCP's per-stream criterion-5 state: the last SRTCP index
// observed per sender SSRC, for the monotonicity check.
type session struct {
	srtcpLastIx map[uint32]uint32
}

func sess(s *proto.Session) *session {
	if v := s.Slot(proto.RTCP); v != nil {
		return v.(*session)
	}
	st := &session{srtcpLastIx: make(map[uint32]uint32)}
	s.SetSlot(proto.RTCP, st)
	return st
}

// Comply applies the five criteria to each RTCP packet in a compound
// region. Encrypted (SRTCP) regions skip body-content checks — the
// paper can only judge what is in the clear — and are judged on header
// and trailer structure.
// typeLabels precomputes the packet-type labels so judging a compound
// region does not allocate a fresh number string per packet.
var typeLabels = func() (t [256]string) {
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return
}()

func (handler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	st := sess(s)
	kind := classifyTrailer(m.RTCPTrailing)
	encrypted := kind != trailerNone
	base := len(dst)
	for _, p := range m.RTCP {
		c := proto.Checked{
			Protocol:  proto.RTCP,
			Type:      proto.TypeKey{Protocol: proto.RTCP, Label: typeLabels[uint8(p.Header.Type)]},
			Bytes:     p.Header.ByteLen(),
			Timestamp: ts,
		}
		c.Verdict = st.rtcpVerdict(p, kind, encrypted, m.RTCPTrailing)
		dst = append(dst, c)
	}
	// Spread the trailer bytes across the region's packets for volume
	// accounting.
	if len(dst) > base {
		dst[len(dst)-1].Bytes += len(m.RTCPTrailing)
	}
	return dst
}

func (st *session) rtcpVerdict(p *rtcp.Packet, kind trailerKind, encrypted bool, trailing []byte) proto.Verdict {
	// Criterion 1: packet type must be assigned.
	if !rtcp.Defined(p.Header.Type) {
		return proto.Fail(proto.CritMessageType, "RTCP packet type %d is not assigned", uint8(p.Header.Type))
	}

	// Criterion 2: header fields. Version 2 is guaranteed structurally;
	// the count field must be consistent with the body for plaintext
	// packets.
	if !encrypted && !p.ParseOK {
		return proto.Fail(proto.CritHeader, "%v body does not match its count/length fields", p.Header.Type)
	}

	// Criteria 3 and 4 for plaintext bodies: item and block types.
	if !encrypted {
		if v := rtcpBodyChecks(p); !v.Compliant {
			return v
		}
	}

	// Criterion 5: trailer structure and SRTCP index behaviour.
	switch kind {
	case trailerUnknown:
		// The Discord case: a proprietary counter/direction trailer is
		// not part of any RTCP or SRTCP specification.
		return proto.Fail(proto.CritSemantics, "%v followed by undefined trailing bytes (not an SRTCP trailer)", p.Header.Type)
	case trailerSRTCPNoAuth:
		// The Google Meet relay-mode case.
		return proto.Fail(proto.CritSemantics, "SRTCP message carries E-flag and index but no authentication tag (RFC 3711 requires one)")
	case trailerSRTCP:
		// Verify the E-flag/index word and per-SSRC index monotonicity.
		// The E-flag may legitimately be clear (authenticated-only
		// SRTCP), so only the index is validated.
		_, index, okk := srtcpIndexWord(trailing)
		if !okk {
			return proto.Fail(proto.CritSemantics, "SRTCP trailer too short for index word")
		}
		if ssrc, has := p.SenderSSRC(); has {
			if last, seen := st.srtcpLastIx[ssrc]; seen && index <= last {
				return proto.Fail(proto.CritSemantics, "SRTCP index %d does not increase (last %d) for SSRC %#x", index, last, ssrc)
			}
			st.srtcpLastIx[ssrc] = index
		}
	}
	return proto.Ok()
}

// rtcpBodyChecks validates plaintext type-specific contents: SDES item
// types, XR block types, feedback FMT values, and cross-validates
// feedback SSRCs against observed RTP streams.
func rtcpBodyChecks(p *rtcp.Packet) proto.Verdict {
	switch p.Header.Type {
	case rtcp.TypeSDES:
		for _, ch := range p.SDES.Chunks {
			for _, it := range ch.Items {
				if it.Type > rtcp.SDESPriv {
					return proto.Fail(proto.CritAttrType, "SDES item type %d is not assigned", it.Type)
				}
			}
		}
	case rtcp.TypeXR:
		for _, blk := range p.XR.Blocks {
			// RFC 3611 blocks 1-7 plus widely registered 8-14.
			if blk.BlockType == 0 || blk.BlockType > 14 {
				return proto.Fail(proto.CritAttrType, "XR block type %d is not assigned", blk.BlockType)
			}
		}
	case rtcp.TypeRTPFB:
		switch p.FB.FMT {
		case rtcp.FBNack, 3, 4, 5, 8, rtcp.FBTWCC:
		default:
			return proto.Fail(proto.CritAttrType, "RTPFB FMT %d is not assigned", p.FB.FMT)
		}
		// Criterion 4 for feedback: the FCI must parse per its format.
		switch p.FB.FMT {
		case rtcp.FBNack:
			if _, err := rtcp.DecodeNackFCI(p.FB.FCI); err != nil {
				return proto.Fail(proto.CritAttrValue, "Generic NACK FCI malformed: %v", err)
			}
		case rtcp.FBTWCC:
			if _, err := rtcp.DecodeTWCCFCI(p.FB.FCI); err != nil {
				return proto.Fail(proto.CritAttrValue, "transport-wide feedback FCI malformed: %v", err)
			}
		}
	case rtcp.TypePSFB:
		switch p.FB.FMT {
		case rtcp.FBPLI, rtcp.FBSLI, rtcp.FBRPSI, rtcp.FBFIR, 5, 6, rtcp.FBAFB:
		default:
			return proto.Fail(proto.CritAttrType, "PSFB FMT %d is not assigned", p.FB.FMT)
		}
		switch p.FB.FMT {
		case rtcp.FBPLI:
			// RFC 4585 §6.3.1: PLI carries no FCI.
			if len(p.FB.FCI) != 0 {
				return proto.Fail(proto.CritAttrValue, "PLI carries %d FCI bytes; RFC 4585 defines none", len(p.FB.FCI))
			}
		case rtcp.FBFIR:
			// RFC 5104 §4.3.1: FIR entries are 8 bytes each.
			if len(p.FB.FCI) == 0 || len(p.FB.FCI)%8 != 0 {
				return proto.Fail(proto.CritAttrValue, "FIR FCI length %d is not a multiple of 8", len(p.FB.FCI))
			}
		case rtcp.FBAFB:
			// Application layer feedback: when it carries the REMB
			// identifier, the REMB structure must hold.
			if len(p.FB.FCI) >= 4 && string(p.FB.FCI[:4]) == "REMB" {
				if _, err := rtcp.DecodeREMBFCI(p.FB.FCI); err != nil {
					return proto.Fail(proto.CritAttrValue, "REMB FCI malformed: %v", err)
				}
			}
		}
	case rtcp.TypeSenderReport:
		if p.SR.Info.NTPTimestamp == 0 {
			return proto.Fail(proto.CritAttrValue, "sender report carries a zero NTP timestamp")
		}
	}
	return proto.Ok()
}

// srtcpIndexWord extracts the E-flag and index from an SRTCP trailer.
func srtcpIndexWord(trailing []byte) (eflag bool, index uint32, ok bool) {
	if len(trailing) < srtp.SRTCPIndexLen {
		return false, 0, false
	}
	w := binary.BigEndian.Uint32(trailing[:4])
	return w&(1<<31) != 0, w & 0x7fffffff, true
}

// Observe reports the behavioural-findings evidence an RTCP message
// carries: a short proprietary trailer's final byte (the
// direction-correlation finding) and feedback submessage counts with
// zero sender SSRCs (the Discord zero-SSRC finding).
func (handler) Observe(m proto.Message, o *proto.Observation) {
	if n := len(m.RTCPTrailing); n > 0 && n < 4 {
		o.TrailerByte = m.RTCPTrailing[n-1]
		o.HasTrailerByte = true
	}
	for _, p := range m.RTCP {
		if p.Header.Type == rtcp.TypeRTPFB || p.Header.Type == rtcp.TypePSFB {
			o.FeedbackMessages++
			if ssrc, ok := p.SenderSSRC(); ok && ssrc == 0 {
				o.ZeroSSRCFeedback++
			}
		}
	}
}
