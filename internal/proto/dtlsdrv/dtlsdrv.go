// Package dtlsdrv registers DTLS with the wire-protocol registry — the
// extensibility proof of the registry design: a record-layer prober
// over the tlsinspect parser and handshake-sequence semantic checks,
// added without touching any engine code.
package dtlsdrv

import (
	"fmt"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

func init() {
	proto.Register(handler{})
}

// Precedence orders DTLS between QUIC and the weak probers. Its RFC
// 7983 first-byte slice (20-63) cannot collide with STUN, ChannelData,
// RTCP, or RTP fingerprints, but the record-chain walk is cheaper than
// the classic-STUN and RTP validations and so runs before them.
const Precedence = 45

type handler struct{}

func (handler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.DTLS,
		Name:        "DTLS",
		Slug:        "dtls",
		Family:      proto.DTLS,
		Order:       5,
		Fingerprint: "RFC 7983 first byte 20-23 + DTLS version word, record chain consuming the datagram with plausible epochs",
		Fuzz:        "./internal/proto/dtlsdrv:FuzzDTLSProbe",
	}
}

func (handler) Probers() []proto.Prober {
	return []proto.Prober{{
		Precedence: Precedence,
		Pass1:      true,
		// RFC 7983 allocates 20-63 to DTLS; assigned content types all
		// fall inside it.
		First:    func(b byte) bool { return b >= 20 && b <= 63 },
		Probe:    proto.ConsumeProbe(Match),
		Validate: Match,
	}}
}

// maxPlausibleEpoch bounds record epochs: a DTLS-SRTP association
// rekeys a handful of times at most, while random payload bytes draw
// uniform 16-bit epochs.
const maxPlausibleEpoch = 8

// Match matches a DTLS record chain. The fingerprint is strict — an
// assigned content type, a DTLS version word, and length fields that
// walk the chain to consume the candidate exactly (DTLS records fill
// their datagram) — so encrypted media and proprietary headers never
// masquerade as DTLS.
func Match(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if !tlsinspect.DTLSLooksLikeRecord(b) {
		return proto.Message{}, false
	}
	recs, consumed, err := tlsinspect.ParseDTLSRecords(b)
	if err != nil || consumed != len(b) {
		return proto.Message{}, false
	}
	for i := range recs {
		r := &recs[i]
		if r.Epoch > maxPlausibleEpoch {
			return proto.Message{}, false
		}
		// Plaintext handshake fragments must carry a well-formed
		// handshake header with an assigned message type.
		if r.ContentType == tlsinspect.DTLSTypeHandshake && r.Epoch == 0 {
			h, err := tlsinspect.ParseDTLSHandshake(r.Fragment)
			if err != nil || !tlsinspect.DTLSDefinedHandshakeType(h.Type) {
				return proto.Message{}, false
			}
		}
	}
	return proto.Message{Protocol: proto.DTLS, Length: consumed, Body: recs}, true
}

// session is DTLS's per-stream handshake-progress state for the
// criterion-5 sequence checks.
type session struct {
	sawClientHello bool
	sawServerHello bool
	sawCCS         bool
}

func sess(s *proto.Session) *session {
	if v := s.Slot(proto.DTLS); v != nil {
		return v.(*session)
	}
	st := &session{}
	s.SetSlot(proto.DTLS, st)
	return st
}

func dtlsHandshakeName(t uint8) string {
	switch t {
	case 0:
		return "HelloRequest"
	case tlsinspect.DTLSHandshakeClientHello:
		return "ClientHello"
	case tlsinspect.DTLSHandshakeServerHello:
		return "ServerHello"
	case tlsinspect.DTLSHandshakeHelloVerifyRequest:
		return "HelloVerifyRequest"
	case tlsinspect.DTLSHandshakeCertificate:
		return "Certificate"
	case tlsinspect.DTLSHandshakeServerKeyExchange:
		return "ServerKeyExchange"
	case tlsinspect.DTLSHandshakeCertificateRequest:
		return "CertificateRequest"
	case tlsinspect.DTLSHandshakeServerHelloDone:
		return "ServerHelloDone"
	case tlsinspect.DTLSHandshakeCertificateVerify:
		return "CertificateVerify"
	case tlsinspect.DTLSHandshakeClientKeyExchange:
		return "ClientKeyExchange"
	case tlsinspect.DTLSHandshakeFinished:
		return "Finished"
	}
	return fmt.Sprintf("handshake type %d", t)
}

// Comply applies the five criteria to each record in a DTLS chain.
// Encrypted fragments (epoch > 0) are judged on record structure and
// the handshake-sequence rules only.
func (handler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	recs, _ := m.Body.([]tlsinspect.DTLSRecord)
	st := sess(s)
	for i := range recs {
		r := &recs[i]
		c := proto.Checked{
			Protocol:  proto.DTLS,
			Type:      proto.TypeKey{Protocol: proto.DTLS, Label: recordLabel(r)},
			Bytes:     r.ByteLen(),
			Timestamp: ts,
		}
		c.Verdict = st.recordVerdict(r)
		dst = append(dst, c)
	}
	return dst
}

func recordLabel(r *tlsinspect.DTLSRecord) string {
	switch r.ContentType {
	case tlsinspect.DTLSTypeChangeCipherSpec:
		return "change cipher spec"
	case tlsinspect.DTLSTypeAlert:
		return "alert"
	case tlsinspect.DTLSTypeApplicationData:
		return "application data"
	case tlsinspect.DTLSTypeHandshake:
		if r.Epoch > 0 {
			return "handshake (encrypted)"
		}
		if h, err := tlsinspect.ParseDTLSHandshake(r.Fragment); err == nil {
			return "handshake " + dtlsHandshakeName(h.Type)
		}
		return "handshake (malformed)"
	}
	return fmt.Sprintf("content type %d", r.ContentType)
}

func (st *session) recordVerdict(r *tlsinspect.DTLSRecord) proto.Verdict {
	// Criterion 1: content type must be assigned (structurally
	// guaranteed by the prober; re-checked for messages judged without
	// extraction, as in unit tests) and plaintext handshake message
	// types must be defined.
	if !tlsinspect.DTLSDefinedContentType(r.ContentType) {
		return proto.Fail(proto.CritMessageType, "DTLS content type %d is not assigned", r.ContentType)
	}

	// Criterion 2: header fields. The version word is established by
	// the prober; epoch use must match the content type — application
	// data is always encrypted, so epoch 0 is a protocol violation.
	if !tlsinspect.DTLSDefinedVersion(r.Version) {
		return proto.Fail(proto.CritHeader, "DTLS version %#04x is not published", r.Version)
	}
	if r.ContentType == tlsinspect.DTLSTypeApplicationData && r.Epoch == 0 {
		return proto.Fail(proto.CritHeader, "application data record in epoch 0 (before any cipher change)")
	}

	if r.ContentType == tlsinspect.DTLSTypeHandshake && r.Epoch == 0 {
		h, err := tlsinspect.ParseDTLSHandshake(r.Fragment)
		if err != nil {
			return proto.Fail(proto.CritHeader, "handshake header malformed: %v", err)
		}
		if !tlsinspect.DTLSDefinedHandshakeType(h.Type) {
			return proto.Fail(proto.CritMessageType, "DTLS handshake type %d is not assigned", h.Type)
		}
		// Criteria 3-4: hello bodies must hold their declared TLV
		// structure (cookie, cipher-suite list, extensions).
		if v := helloBodyChecks(h); !v.Compliant {
			return v
		}
		// Criterion 5: handshake-sequence integrity across the stream.
		switch h.Type {
		case tlsinspect.DTLSHandshakeClientHello:
			st.sawClientHello = true
		case tlsinspect.DTLSHandshakeServerHello:
			if !st.sawClientHello {
				return proto.Fail(proto.CritSemantics, "ServerHello with no preceding ClientHello on this stream")
			}
			st.sawServerHello = true
		case tlsinspect.DTLSHandshakeHelloVerifyRequest:
			if !st.sawClientHello {
				return proto.Fail(proto.CritSemantics, "HelloVerifyRequest with no preceding ClientHello on this stream")
			}
		}
	}

	switch r.ContentType {
	case tlsinspect.DTLSTypeChangeCipherSpec:
		// Criterion 5: a cipher change only follows a hello exchange.
		if !st.sawClientHello {
			return proto.Fail(proto.CritSemantics, "ChangeCipherSpec before any handshake flight")
		}
		st.sawCCS = true
	case tlsinspect.DTLSTypeApplicationData:
		// Criterion 5: application data requires a completed handshake
		// (DTLS-SRTP associations never skip the cipher change).
		if !st.sawCCS {
			return proto.Fail(proto.CritSemantics, "application data before ChangeCipherSpec completed the handshake")
		}
	}
	return proto.Ok()
}

// helloBodyChecks validates the TLV structure of plaintext ClientHello
// and ServerHello bodies: criterion 3 for truncated structure, 4 for
// value-level violations.
func helloBodyChecks(h tlsinspect.DTLSHandshake) proto.Verdict {
	if h.Type != tlsinspect.DTLSHandshakeClientHello {
		return proto.Ok()
	}
	b := h.Body
	// client_version(2) random(32) session_id cookie cipher_suites
	// compression extensions.
	if len(b) < 2+32+1 {
		return proto.Fail(proto.CritAttrType, "ClientHello body truncated at %d bytes", len(b))
	}
	i := 2 + 32
	sidLen := int(b[i])
	i += 1 + sidLen
	if i >= len(b) {
		return proto.Fail(proto.CritAttrType, "ClientHello truncated inside session_id")
	}
	cookieLen := int(b[i])
	i += 1 + cookieLen
	if i+2 > len(b) {
		return proto.Fail(proto.CritAttrType, "ClientHello truncated inside cookie")
	}
	csLen := int(b[i])<<8 | int(b[i+1])
	if csLen == 0 || csLen%2 != 0 {
		return proto.Fail(proto.CritAttrValue, "ClientHello cipher-suite list length %d is not a nonzero even number", csLen)
	}
	i += 2 + csLen
	if i >= len(b) {
		return proto.Fail(proto.CritAttrType, "ClientHello truncated inside cipher suites")
	}
	cmLen := int(b[i])
	if cmLen == 0 {
		return proto.Fail(proto.CritAttrValue, "ClientHello offers no compression methods (null is mandatory)")
	}
	return proto.Ok()
}
