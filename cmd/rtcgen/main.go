// Command rtcgen generates synthetic RTC experiment captures as pcap
// files, reproducing the paper's 6-application × 3-network matrix (or a
// subset). Alongside the pcaps it writes a manifest.json recording each
// capture's annotated call window, which rtccheck consumes.
//
// Usage:
//
//	rtcgen -out traces/ -runs 2 -duration 30s
//	rtcgen -out traces/ -app Zoom -network wifi-relay -duration 60s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/cmdutil"
)

type manifestEntry struct {
	File      string    `json:"file"`
	App       string    `json:"app"`
	Network   string    `json:"network"`
	Mode      string    `json:"mode"`
	Seed      uint64    `json:"seed"`
	CallStart time.Time `json:"call_start"`
	CallEnd   time.Time `json:"call_end"`
	Packets   int       `json:"packets"`
	// Impairment accounting, present when any impairment knob is set.
	Impair     string `json:"impair,omitempty"`
	Dropped    int    `json:"dropped,omitempty"`
	Duplicated int    `json:"duplicated,omitempty"`
	Reordered  int    `json:"reordered,omitempty"`
	Rebound    int    `json:"rebound,omitempty"`
}

func parseNetwork(s string) (rtcc.Network, error) {
	switch strings.ToLower(s) {
	case "wifi-p2p", "wifip2p":
		return rtcc.WiFiP2P, nil
	case "wifi-relay", "wifirelay":
		return rtcc.WiFiRelay, nil
	case "cellular", "cell":
		return rtcc.Cellular, nil
	}
	return 0, fmt.Errorf("unknown network %q (wifi-p2p, wifi-relay, cellular)", s)
}

func parseApp(s string) (rtcc.App, error) {
	for _, a := range rtcc.Apps {
		if strings.EqualFold(string(a), s) || strings.EqualFold(strings.ReplaceAll(string(a), " ", ""), s) {
			return a, nil
		}
	}
	return "", fmt.Errorf("unknown app %q", s)
}

// genFlags holds rtcgen's flag surface (pinned by the golden surface
// test).
type genFlags struct {
	fs                       *flag.FlagSet
	outDir, appFlag, netFlag *string
	runs                     *int
	duration, prePost        *time.Duration
	rate                     *int
	seed                     *uint64
	background, dtls         *bool
	impair                   *string
	loss                     *float64
	jitter                   *time.Duration
	reorder, dup             *float64
	rebind                   *int
	burst                    *bool
	bitrateVar               *float64
	version                  *bool
}

func newFlags() *genFlags {
	fs := flag.NewFlagSet("rtcgen", flag.ExitOnError)
	return &genFlags{
		fs:         fs,
		outDir:     fs.String("out", "traces", "output directory"),
		appFlag:    fs.String("app", "", "restrict to one application (default: all six)"),
		netFlag:    fs.String("network", "", "restrict to one network configuration (default: all three)"),
		runs:       fs.Int("runs", 1, "repetitions per app × network cell"),
		duration:   fs.Duration("duration", 30*time.Second, "call duration (paper: 5m)"),
		prePost:    fs.Duration("prepost", 10*time.Second, "pre-call and post-call capture length (paper: 60s)"),
		rate:       fs.Int("rate", 25, "media packets per second per stream"),
		seed:       fs.Uint64("seed", 1, "base seed"),
		background: fs.Bool("background", true, "include unrelated background traffic"),
		dtls:       fs.Bool("dtls", false, "emit a standards-compliant DTLS-SRTP handshake on the media stream"),
		impair:     fs.String("impair", "", "named impairment profile (clean, loss2, burst5, jitter30, dup3, rebind2)"),
		loss:       fs.Float64("loss", 0, "i.i.d. UDP loss probability [0,1)"),
		jitter:     fs.Duration("jitter", 0, "uniform per-datagram queueing delay bound"),
		reorder:    fs.Float64("reorder", 0, "probability of a late-spike reordering a datagram"),
		dup:        fs.Float64("dup", 0, "probability of duplicating a datagram"),
		rebind:     fs.Int("rebind", 0, "number of mid-call NAT rebinding events"),
		burst:      fs.Bool("burst", false, "frame-granular video bursting with bit-rate variance"),
		bitrateVar: fs.Float64("bitrate-var", 0, "encoder bit-rate variance fraction with -burst (default 0.25)"),
		version:    cmdutil.VersionFlag(fs),
	}
}

func main() {
	f := newFlags()
	f.fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	var (
		outDir     = f.outDir
		appFlag    = f.appFlag
		netFlag    = f.netFlag
		runs       = f.runs
		duration   = f.duration
		prePost    = f.prePost
		rate       = f.rate
		seed       = f.seed
		background = f.background
		dtls       = f.dtls
		impair     = f.impair
		loss       = f.loss
		jitter     = f.jitter
		reorder    = f.reorder
		dup        = f.dup
		rebind     = f.rebind
		burst      = f.burst
		bitrateVar = f.bitrateVar
		version    = f.version
	)

	if *version {
		cmdutil.PrintVersion(os.Stdout, "rtcgen")
		return
	}

	profile, err := impairProfile(*impair, *loss, *jitter, *reorder, *dup, *rebind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtcgen:", err)
		os.Exit(1)
	}
	cfg := genConfig{
		outDir: *outDir, appFlag: *appFlag, netFlag: *netFlag,
		runs: *runs, duration: *duration, prePost: *prePost,
		rate: *rate, seed: *seed, background: *background, dtls: *dtls,
		impair: profile, burst: *burst, bitrateVar: *bitrateVar,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rtcgen:", err)
		os.Exit(1)
	}
}

// impairProfile composes the impairment profile from the named base (if
// any) with the individual knob overrides.
func impairProfile(name string, loss float64, jitter time.Duration, reorder, dup float64, rebind int) (rtcc.ImpairProfile, error) {
	var p rtcc.ImpairProfile
	if name != "" {
		base, ok := rtcc.ImpairProfileByName(name)
		if !ok {
			return p, fmt.Errorf("unknown impairment profile %q", name)
		}
		p = base
	}
	if loss > 0 {
		p.Loss = loss
	}
	if jitter > 0 {
		p.Jitter = jitter
	}
	if reorder > 0 {
		p.Reorder = reorder
	}
	if dup > 0 {
		p.Dup = dup
	}
	if rebind > 0 {
		p.Rebind = rebind
	}
	if p.Active() && p.Name == "" {
		p.Name = "custom"
	}
	return p, nil
}

type genConfig struct {
	outDir, appFlag, netFlag string
	runs                     int
	duration, prePost        time.Duration
	rate                     int
	seed                     uint64
	background, dtls         bool
	impair                   rtcc.ImpairProfile
	burst                    bool
	bitrateVar               float64
}

func run(c genConfig) error {
	outDir, appFlag, netFlag := c.outDir, c.appFlag, c.netFlag
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	opts := rtcc.MatrixOptions{
		Runs:         c.runs,
		CallDuration: c.duration,
		PrePost:      c.prePost,
		MediaRate:    c.rate,
		Start:        time.Now().UTC().Truncate(time.Second),
		BaseSeed:     c.seed,
		Background:   c.background,
		DTLS:         c.dtls,
		Impair:       c.impair,
		Burst:        c.burst,
		BitrateVar:   c.bitrateVar,
	}
	if appFlag != "" {
		app, err := parseApp(appFlag)
		if err != nil {
			return err
		}
		opts.Apps = []rtcc.App{app}
	}
	configs := rtcc.Matrix(opts)
	if netFlag != "" {
		network, err := parseNetwork(netFlag)
		if err != nil {
			return err
		}
		var filtered []rtcc.CaptureConfig
		for _, c := range configs {
			if c.Network == network {
				filtered = append(filtered, c)
			}
		}
		configs = filtered
	}

	var manifest []manifestEntry
	for i, cfg := range configs {
		cap, err := rtcc.GenerateCapture(cfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%03d_%s_%s.pcap", i,
			strings.ReplaceAll(strings.ToLower(string(cfg.App)), " ", ""),
			strings.ReplaceAll(strings.ToLower(cfg.Network.String()), " ", "-"))
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := cap.WritePCAP(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		entry := manifestEntry{
			File:      name,
			App:       string(cfg.App),
			Network:   cfg.Network.String(),
			Mode:      cap.Mode.String(),
			Seed:      cfg.Seed,
			CallStart: cap.CallStart,
			CallEnd:   cap.CallEnd,
			Packets:   len(cap.Events),
		}
		if cfg.Impair.Active() {
			entry.Impair = cfg.Impair.Label()
			entry.Dropped = cap.Impair.Dropped
			entry.Duplicated = cap.Impair.Duplicated
			entry.Reordered = cap.Impair.Reordered
			entry.Rebound = cap.Impair.Rebound
		}
		manifest = append(manifest, entry)
		fmt.Printf("wrote %s (%d packets, mode %s)\n", path, len(cap.Events), cap.Mode)
	}

	mf, err := os.Create(filepath.Join(outDir, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d captures)\n", filepath.Join(outDir, "manifest.json"), len(manifest))
	return nil
}
