// Package flow groups captured packets into transport-layer streams.
//
// The paper's filtering pipeline (§3.2) operates on streams: packets are
// grouped by their 5-tuple (source IP, source port, destination IP,
// destination port, transport protocol), with the two directions of a
// conversation belonging to one stream, as in Wireshark's stream
// numbering. The package also maintains the destination-side 3-tuple
// index that the stage-2 "3-tuple timing filter" needs.
package flow

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
)

// Endpoint is one side of a transport conversation.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

func (e Endpoint) String() string {
	return netip.AddrPortFrom(e.Addr, e.Port).String()
}

// less orders endpoints for canonicalization.
func (e Endpoint) less(o Endpoint) bool {
	if c := e.Addr.Compare(o.Addr); c != 0 {
		return c < 0
	}
	return e.Port < o.Port
}

// Key identifies a bidirectional stream: A and B are the canonical
// (sorted) endpoints.
type Key struct {
	Proto layers.IPProtocol
	A, B  Endpoint
}

func (k Key) String() string {
	return fmt.Sprintf("%s %s <-> %s", k.Proto, k.A, k.B)
}

// KeyFor builds the canonical key for a packet from src to dst.
func KeyFor(proto layers.IPProtocol, src, dst Endpoint) Key {
	if dst.less(src) {
		src, dst = dst, src
	}
	return Key{Proto: proto, A: src, B: dst}
}

// Direction is a packet's orientation relative to the canonical key.
type Direction uint8

// Direction values.
const (
	DirAToB Direction = iota
	DirBToA
)

// Packet is one packet assigned to a stream.
type Packet struct {
	Timestamp time.Time
	Dir       Direction
	// Src and Dst are the actual packet endpoints (not canonicalized).
	Src, Dst Endpoint
	// Payload is the transport payload.
	Payload []byte
	// TCPFlags preserves the TCP flag byte for TCP segments (0 for UDP).
	TCPFlags uint8
}

// Stream is a bidirectional transport conversation.
//
// The summary fields (FirstSeen, LastSeen, Bytes, NPackets, DstTuples)
// are maintained on every add, independently of whether the per-packet
// records are retained: the streaming analyzer drops Packets for
// streams it no longer needs payloads from, and the filter judges the
// stream from the summaries alone.
type Stream struct {
	Key       Key
	Packets   []Packet
	FirstSeen time.Time
	LastSeen  time.Time
	Bytes     int
	// NPackets counts every packet ever added, including ones whose
	// records were not retained.
	NPackets int
	// DstTuples lists the distinct destination 3-tuples of the stream's
	// packets, in first-occurrence order.
	DstTuples []ThreeTuple

	// ttMemo/spMemo memoize the destination 3-tuple and its table span
	// per direction: a stream's destination tuple is constant within a
	// direction, so after the first packet each way the per-packet
	// 3-tuple map lookup and DstTuples scan collapse to one comparison.
	ttMemo [2]ThreeTuple
	spMemo [2]*Span
}

// Span returns the stream's active time span.
func (s *Stream) Span() (first, last time.Time) { return s.FirstSeen, s.LastSeen }

// ThreeTuple is a destination-side (address, port, protocol) triple.
type ThreeTuple struct {
	Proto layers.IPProtocol
	Addr  netip.Addr
	Port  uint16
}

func (t ThreeTuple) String() string {
	return fmt.Sprintf("%s -> %s", t.Proto, netip.AddrPortFrom(t.Addr, t.Port))
}

// Span records the first and last time something was observed.
type Span struct {
	First, Last time.Time
}

// Extend widens the span to include ts.
func (s *Span) Extend(ts time.Time) {
	if s.First.IsZero() || ts.Before(s.First) {
		s.First = ts
	}
	if ts.After(s.Last) {
		s.Last = ts
	}
}

// Table accumulates packets into streams.
type Table struct {
	streams map[Key]*Stream
	order   []Key
	// threeTuples tracks when each destination 3-tuple was observed.
	threeTuples map[ThreeTuple]*Span
}

// NewTable returns an empty stream table.
func NewTable() *Table {
	return &Table{
		streams:     make(map[Key]*Stream),
		threeTuples: make(map[ThreeTuple]*Span),
	}
}

// Add assigns a decoded packet to its stream. Packets without a
// transport layer are ignored and reported as false.
func (t *Table) Add(ts time.Time, pkt *layers.Packet) bool {
	_, ok := t.AddPacket(ts, pkt, true)
	return ok
}

// AddPacket assigns a decoded packet to its stream and returns the
// stream. When keep is false the per-packet record is not appended —
// only the stream and 3-tuple summaries advance — which is how the
// streaming analyzer keeps resident memory independent of stream
// length for streams whose payloads it no longer needs. Packets
// without a transport layer are ignored and reported as (nil, false).
func (t *Table) AddPacket(ts time.Time, pkt *layers.Packet, keep bool) (*Stream, bool) {
	proto, srcPort, dstPort := pkt.Transport()
	if proto == 0 {
		return nil, false
	}
	src := Endpoint{Addr: pkt.Src(), Port: srcPort}
	dst := Endpoint{Addr: pkt.Dst(), Port: dstPort}
	key := KeyFor(proto, src, dst)
	s, ok := t.streams[key]
	if !ok {
		s = &Stream{Key: key, FirstSeen: ts, LastSeen: ts}
		t.streams[key] = s
		t.order = append(t.order, key)
	}
	dir := DirAToB
	if key.A != src {
		dir = DirBToA
	}
	var flags uint8
	if pkt.TCP != nil {
		flags = pkt.TCP.Flags
	}
	t.AddToStream(s, ts, dir, src, dst, pkt.Payload, flags, keep)
	return s, true
}

// AddToStream appends a packet directly to an already-resolved stream,
// skipping the key canonicalization and stream-map lookup of AddPacket.
// It is the batched analyzer's fast path for runs of packets on the
// same stream: the caller guarantees s came from this table and that
// (dir, src, dst) are consistent with s.Key.
func (t *Table) AddToStream(s *Stream, ts time.Time, dir Direction, src, dst Endpoint, payload []byte, tcpFlags uint8, keep bool) {
	if keep {
		s.Packets = append(s.Packets, Packet{
			Timestamp: ts,
			Dir:       dir,
			Src:       src,
			Dst:       dst,
			Payload:   payload,
			TCPFlags:  tcpFlags,
		})
	}
	if ts.Before(s.FirstSeen) {
		s.FirstSeen = ts
	}
	if ts.After(s.LastSeen) {
		s.LastSeen = ts
	}
	s.Bytes += len(payload)
	s.NPackets++

	tt := ThreeTuple{Proto: s.Key.Proto, Addr: dst.Addr, Port: dst.Port}
	if sp := s.spMemo[dir]; sp != nil && s.ttMemo[dir] == tt {
		sp.Extend(ts)
		return
	}
	seen := false
	for _, have := range s.DstTuples {
		if have == tt {
			seen = true
			break
		}
	}
	if !seen {
		s.DstTuples = append(s.DstTuples, tt)
	}
	sp, ok := t.threeTuples[tt]
	if !ok {
		sp = &Span{}
		t.threeTuples[tt] = sp
	}
	sp.Extend(ts)
	s.ttMemo[dir] = tt
	s.spMemo[dir] = sp
}

// AbsorbSpans widens this table's destination-3-tuple spans with every
// span recorded in src, creating entries as needed. It is the first
// half of a cross-table merge: spans union commutatively (Extend is a
// min/max fold), so absorbing shard tables in any order yields exactly
// the span a single table fed every packet would hold.
func (t *Table) AbsorbSpans(src *Table) {
	for tt, sp := range src.threeTuples {
		dst, ok := t.threeTuples[tt]
		if !ok {
			dst = &Span{}
			t.threeTuples[tt] = dst
		}
		dst.Extend(sp.First)
		dst.Extend(sp.Last)
	}
}

// AbsorbStream adopts a stream built by another table, appending it to
// this table's insertion order. The caller controls the order of
// AbsorbStream calls and must replay the original first-seen order
// when the merged table needs to match a serially-built one. A key
// already present is an error: the sharded router guarantees each flow
// is owned by exactly one shard, so a duplicate means misrouting.
//
// The stream's per-direction span memos are re-pointed at this table's
// (absorbed, unioned) spans: the shard-local spans they referenced may
// cover only one shard's packets, and the filter — and any structural
// comparison against a serially-built table — must see the union.
// Call AbsorbSpans for every source table before absorbing streams.
func (t *Table) AbsorbStream(s *Stream) error {
	if _, ok := t.streams[s.Key]; ok {
		return fmt.Errorf("flow: duplicate stream %v in table merge", s.Key)
	}
	t.streams[s.Key] = s
	t.order = append(t.order, s.Key)
	for dir := range s.spMemo {
		if s.spMemo[dir] == nil {
			continue
		}
		if sp, ok := t.threeTuples[s.ttMemo[dir]]; ok {
			s.spMemo[dir] = sp
		}
	}
	return nil
}

// Streams returns all streams in first-seen insertion order.
func (t *Table) Streams() []*Stream {
	out := make([]*Stream, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, t.streams[k])
	}
	return out
}

// Get returns the stream for key, or nil.
func (t *Table) Get(key Key) *Stream { return t.streams[key] }

// Len reports the number of streams.
func (t *Table) Len() int { return len(t.streams) }

// PacketCount reports the total packets across all streams, including
// packets whose records were not retained.
func (t *Table) PacketCount() int {
	n := 0
	for _, s := range t.streams {
		n += s.NPackets
	}
	return n
}

// ThreeTupleSpan returns the observation span for a destination
// 3-tuple, and false if never seen.
func (t *Table) ThreeTupleSpan(tt ThreeTuple) (Span, bool) {
	sp, ok := t.threeTuples[tt]
	if !ok {
		return Span{}, false
	}
	return *sp, true
}

// ThreeTuples returns all observed destination 3-tuples in a stable
// order.
func (t *Table) ThreeTuples() []ThreeTuple {
	out := make([]ThreeTuple, 0, len(t.threeTuples))
	for tt := range t.threeTuples {
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if c := a.Addr.Compare(b.Addr); c != 0 {
			return c < 0
		}
		return a.Port < b.Port
	})
	return out
}

// Counts summarizes a set of streams for reporting.
type Counts struct {
	Streams int
	Packets int
	Bytes   int
}

// Count tallies streams and packets. It uses the NPackets summary, so
// streams whose per-packet records were dropped still count fully.
func Count(streams []*Stream) Counts {
	var c Counts
	c.Streams = len(streams)
	for _, s := range streams {
		c.Packets += s.NPackets
		c.Bytes += s.Bytes
	}
	return c
}
