package natsim

import (
	"net/netip"
	"testing"
)

var (
	pubA   = netip.MustParseAddr("198.51.100.1")
	pubB   = netip.MustParseAddr("198.51.100.2")
	privA  = netip.MustParseAddrPort("192.168.1.10:5000")
	privB  = netip.MustParseAddrPort("10.0.0.20:6000")
	stunSv = netip.MustParseAddrPort("203.0.113.1:3478")
)

func TestEndpointIndependentMappingReusesPort(t *testing.T) {
	n := NewNAT(pubA, EndpointIndependent, EndpointIndependent)
	m1 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:53"))
	m2 := n.Outbound(privA, netip.MustParseAddrPort("8.8.8.8:443"))
	if m1.Port() != m2.Port() {
		t.Errorf("EIM should reuse port: %v vs %v", m1, m2)
	}
	if m1.Addr() != pubA {
		t.Errorf("mapped addr = %v", m1.Addr())
	}
}

func TestSymmetricMappingAllocatesPerDestination(t *testing.T) {
	n := NewNAT(pubA, AddressAndPortDependent, AddressAndPortDependent)
	m1 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:53"))
	m2 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:54"))
	m3 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:53"))
	if m1.Port() == m2.Port() {
		t.Error("symmetric NAT reused port across destinations")
	}
	if m1.Port() != m3.Port() {
		t.Error("symmetric NAT mapping not stable for same destination")
	}
}

func TestAddressDependentMapping(t *testing.T) {
	n := NewNAT(pubA, AddressDependent, AddressDependent)
	m1 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:53"))
	m2 := n.Outbound(privA, netip.MustParseAddrPort("1.1.1.1:9999"))
	m3 := n.Outbound(privA, netip.MustParseAddrPort("2.2.2.2:53"))
	if m1.Port() != m2.Port() {
		t.Error("ADM should reuse port for same remote address")
	}
	if m1.Port() == m3.Port() {
		t.Error("ADM should allocate new port for new remote address")
	}
}

func TestFiltering(t *testing.T) {
	remote := netip.MustParseAddrPort("1.1.1.1:53")
	otherPort := netip.MustParseAddrPort("1.1.1.1:54")
	otherAddr := netip.MustParseAddrPort("2.2.2.2:53")

	cases := []struct {
		name      string
		filtering Behavior
		fromSame  bool
		fromPort  bool
		fromAddr  bool
	}{
		{"endpoint-independent", EndpointIndependent, true, true, true},
		{"address-dependent", AddressDependent, true, true, false},
		{"address-and-port-dependent", AddressAndPortDependent, true, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNAT(pubA, EndpointIndependent, tc.filtering)
			m := n.Outbound(privA, remote)
			if got := n.InboundAllowed(m.Port(), remote); got != tc.fromSame {
				t.Errorf("from same remote = %v, want %v", got, tc.fromSame)
			}
			if got := n.InboundAllowed(m.Port(), otherPort); got != tc.fromPort {
				t.Errorf("from other port = %v, want %v", got, tc.fromPort)
			}
			if got := n.InboundAllowed(m.Port(), otherAddr); got != tc.fromAddr {
				t.Errorf("from other addr = %v, want %v", got, tc.fromAddr)
			}
		})
	}
}

func TestInboundToUnknownPortBlocked(t *testing.T) {
	n := NewNAT(pubA, EndpointIndependent, EndpointIndependent)
	if n.InboundAllowed(12345, stunSv) {
		t.Error("inbound to unallocated port allowed")
	}
}

func TestBlockInboundUDP(t *testing.T) {
	n := NewNAT(pubA, EndpointIndependent, EndpointIndependent)
	n.BlockInboundUDP = true
	remote := netip.MustParseAddrPort("1.1.1.1:53")
	m := n.Outbound(privA, remote)
	if n.InboundAllowed(m.Port(), remote) {
		t.Error("firewall toggle did not block inbound")
	}
}

func TestHolePunchConeCone(t *testing.T) {
	a := &Client{Internal: privA, NAT: NewNAT(pubA, EndpointIndependent, EndpointIndependent)}
	b := &Client{Internal: privB, NAT: NewNAT(pubB, EndpointIndependent, EndpointIndependent)}
	if !HolePunch(a, b, stunSv) {
		t.Error("cone-cone hole punch should succeed")
	}
}

func TestHolePunchSymmetricSymmetricFails(t *testing.T) {
	a := &Client{Internal: privA, NAT: NewNAT(pubA, AddressAndPortDependent, AddressAndPortDependent)}
	b := &Client{Internal: privB, NAT: NewNAT(pubB, AddressAndPortDependent, AddressAndPortDependent)}
	if HolePunch(a, b, stunSv) {
		t.Error("symmetric-symmetric hole punch should fail")
	}
}

func TestHolePunchSymmetricWithRestrictedConeFails(t *testing.T) {
	// Symmetric + port-restricted cone: the cone side sends to the
	// candidate port, but the symmetric side allocated a different port
	// toward the peer, so the cone's probes go to a dead port, and the
	// symmetric side's probes come from an unexpected source port.
	a := &Client{Internal: privA, NAT: NewNAT(pubA, AddressAndPortDependent, AddressAndPortDependent)}
	b := &Client{Internal: privB, NAT: NewNAT(pubB, EndpointIndependent, AddressAndPortDependent)}
	if HolePunch(a, b, stunSv) {
		t.Error("symmetric vs port-restricted cone should fail")
	}
}

func TestHolePunchSymmetricWithFullConeSucceeds(t *testing.T) {
	// Full-cone filtering admits any source once the port is open, so a
	// single symmetric peer still connects.
	a := &Client{Internal: privA, NAT: NewNAT(pubA, AddressAndPortDependent, AddressAndPortDependent)}
	b := &Client{Internal: privB, NAT: NewNAT(pubB, EndpointIndependent, EndpointIndependent)}
	if !HolePunch(a, b, stunSv) {
		t.Error("symmetric vs full cone should succeed")
	}
}

func TestHolePunchFirewallBlocked(t *testing.T) {
	na := NewNAT(pubA, EndpointIndependent, EndpointIndependent)
	na.BlockInboundUDP = true
	a := &Client{Internal: privA, NAT: na}
	b := &Client{Internal: privB, NAT: NewNAT(pubB, EndpointIndependent, EndpointIndependent)}
	if HolePunch(a, b, stunSv) {
		t.Error("hole punch should fail when one side blocks inbound UDP")
	}
}

func TestHolePunchNoNAT(t *testing.T) {
	a := &Client{Internal: netip.MustParseAddrPort("198.51.100.9:5000")}
	b := &Client{Internal: netip.MustParseAddrPort("198.51.100.10:5000")}
	if !HolePunch(a, b, stunSv) {
		t.Error("two public hosts should always connect")
	}
}

func TestRelayAllocate(t *testing.T) {
	r := NewRelay(netip.MustParseAddr("203.0.113.50"))
	if r.ListenAddr().Port() != 3478 {
		t.Errorf("listen = %v", r.ListenAddr())
	}
	c1 := netip.MustParseAddrPort("198.51.100.1:40000")
	c2 := netip.MustParseAddrPort("198.51.100.2:40000")
	r1 := r.Allocate(c1)
	r1again := r.Allocate(c1)
	r2 := r.Allocate(c2)
	if r1 != r1again {
		t.Error("Allocate not idempotent")
	}
	if r1 == r2 {
		t.Error("distinct clients share a relayed address")
	}
	if r1.Addr() != r.Addr {
		t.Errorf("relayed addr = %v", r1)
	}
	if r.Allocations() != 2 {
		t.Errorf("allocations = %d", r.Allocations())
	}
}

func TestBehaviorString(t *testing.T) {
	if EndpointIndependent.String() != "endpoint-independent" ||
		AddressDependent.String() != "address-dependent" ||
		AddressAndPortDependent.String() != "address-and-port-dependent" {
		t.Error("behaviour names wrong")
	}
	if Behavior(9).String() != "Behavior(9)" {
		t.Error("unknown behaviour name wrong")
	}
}
