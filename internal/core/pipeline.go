// Package core wires the measurement framework together: packet
// decoding, stream grouping, the two-stage unrelated-traffic filter,
// DPI message extraction, five-criterion compliance checking, and
// aggregation into the paper's metrics. It is the engine behind the
// public rtcc API, the command-line tools, and the benchmarks.
package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/filterpipe"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/qoe"
	"github.com/rtc-compliance/rtcc/internal/report"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Options configures an analysis run.
type Options struct {
	// MaxOffset is the DPI's k parameter; zero selects the paper's 200.
	MaxOffset int
	// WindowSlack is forwarded to the filter; zero selects the default.
	WindowSlack time.Duration
	// SNIBlocklist overrides the default blocklist when non-nil.
	SNIBlocklist []string
	// SkipFindings disables the behavioural-findings detectors.
	SkipFindings bool
	// Workers bounds the analysis worker pool. RunMatrix fans capture
	// generation and analysis out over this many goroutines, and
	// AnalyzeCapture (when called directly) inspects streams in
	// parallel. Zero selects one worker per CPU; 1 selects the serial
	// path. Results are identical for every worker count: partial
	// results are folded back in deterministic input order.
	Workers int
	// Metrics, when non-nil, receives pipeline instrumentation:
	// per-stage packet counts, drop reasons, DPI classification and
	// latency, per-criterion compliance verdicts, and worker-pool
	// timing. Nil disables collection at zero hot-path cost, and
	// collection never changes analysis output: counters are atomic
	// order-independent sums, identical for serial and parallel runs.
	Metrics *metrics.Registry
	// KeepPayloads makes AnalyzePCAP retain per-packet payload records
	// in the result (as AnalyzeCapture always does). Off by default:
	// the streaming reader then holds payload bytes only for
	// provisionally-RTC UDP streams until DPI consumes them. Turn it on
	// when the caller reads Filter.RTC[i].Packets afterwards.
	KeepPayloads bool
	// EvictIdle bounds AnalyzePCAP's resident memory: streams idle
	// longer than this are finalized mid-capture and their buffers
	// released (see AnalyzerConfig.EvictIdle for the trade-off). Zero
	// keeps the strict single-finalization behavior.
	EvictIdle time.Duration
	// Registry selects the protocol-driver set the whole pipeline —
	// DPI extraction, compliance judging, findings observation — runs
	// against. Nil selects the default registry (every driver linked
	// into the binary).
	Registry *proto.Registry
	// Tracer, when non-nil, receives the capture's decision trace:
	// per-stream filter verdicts, Algorithm 1 probe steps, datagram
	// classifications, five-criterion compliance verdicts, lifecycle
	// events, and findings (see internal/obs). Nil (the default)
	// disables tracing at zero hot-path cost, exactly like Metrics,
	// and tracing never changes analysis output. Trace emission
	// happens only at deterministic pipeline points, so the event
	// stream is byte-identical for every worker count. RunMatrix does
	// not trace (its captures are analyzed concurrently and would
	// interleave on one sink); trace single captures.
	Tracer obs.Tracer
	// TraceSampling bounds each stream span's event retention (zero
	// selects the defaults; see obs.Sampling). Failing verdicts always
	// bypass sampling.
	TraceSampling obs.Sampling
	// QoE, when non-nil, runs the header-free QoE estimator over every
	// final-RTC UDP stream (frame rate, bitrate, inter-frame gap
	// jitter, stall heuristic from datagram sizes and timings only; see
	// internal/qoe) and attaches the features to the result. Nil (the
	// default) disables estimation at zero hot-path cost, exactly like
	// Metrics, and estimation never changes analysis output. Features
	// are a pure function of each stream's datagram sequence in capture
	// order, so they are byte-identical for every worker and shard
	// count.
	QoE *qoe.Config
}

func (o Options) engine() *dpi.Engine {
	e := dpi.NewEngine()
	if o.MaxOffset > 0 {
		e.MaxOffset = o.MaxOffset
	}
	e.Metrics = o.Metrics
	e.Registry = o.Registry
	return e
}

// CaptureInput is one capture to analyze. It is an alias of
// trace.Input so generated captures convert via Capture.Input() with no
// per-caller construction.
type CaptureInput = trace.Input

// CaptureAnalysis is the result of analyzing one capture.
type CaptureAnalysis struct {
	Label  string
	Filter *filterpipe.Result
	// Stats holds the message and datagram statistics for this capture.
	Stats *report.AppStats
	// Findings lists the behavioural findings detected (§5.3).
	Findings []Finding
	// RTPSSRCs is the set of RTP SSRCs observed, for cross-call
	// analyses like Zoom's fixed-SSRC finding.
	RTPSSRCs map[uint32]bool
	// Bytes is the total raw capture volume (transport payload bytes).
	Bytes int
	// DecodeErrors counts frames that could not be decoded into
	// transport packets (truncated or corrupt captures contain them).
	DecodeErrors int
	// QoE holds the header-free QoE features per RTC stream plus the
	// media-stream summary. Nil unless Options.QoE enabled estimation.
	QoE *qoe.Capture
}

// AnalyzeCapture runs the full pipeline over one in-memory capture by
// feeding the streaming Analyzer frame by frame. The frames are
// referenced, not copied, and per-packet records are retained, so the
// result is identical to the historical batch pipeline (which
// BatchAnalyzeCapture preserves as the differential-test reference).
func AnalyzeCapture(in CaptureInput, opts Options) (*CaptureAnalysis, error) {
	a, err := NewAnalyzer(AnalyzerConfig{
		Label:        in.Label,
		LinkType:     in.LinkType,
		CallStart:    in.CallStart,
		CallEnd:      in.CallEnd,
		KeepPayloads: true,
		FramesStable: true,
	}, opts)
	if err != nil {
		return nil, err
	}
	for _, p := range in.Packets {
		if err := a.Feed(p.Timestamp, p.Data); err != nil {
			return nil, err
		}
	}
	return a.Close()
}

// BatchAnalyzeCapture is the original whole-capture pipeline: buffer
// everything, then filter, inspect, and check. It is retained as the
// reference implementation the streaming Analyzer is differentially
// tested against, and as the baseline for the memory benchmarks.
func BatchAnalyzeCapture(in CaptureInput, opts Options) (*CaptureAnalysis, error) {
	if in.CallEnd.Before(in.CallStart) {
		return nil, errors.New("core: call window end precedes start")
	}
	table := flow.NewTable()
	decodeErrs := 0
	var pkt layers.Packet // decode scratch, reused across frames
	for _, p := range in.Packets {
		err := layers.DecodeInto(&pkt, in.LinkType, p.Data)
		if err != nil {
			// Tolerate unparseable frames (the paper's captures contain
			// them too); count and continue.
			decodeErrs++
			continue
		}
		table.Add(p.Timestamp, &pkt)
	}
	if table.Len() == 0 && len(in.Packets) > 0 {
		return nil, fmt.Errorf("core: no decodable transport packets (%d frames, %d decode errors)", len(in.Packets), decodeErrs)
	}

	cm := newCaptureMetrics(opts.Metrics, in.Label)
	cm.captures.Inc()
	cm.frames.Add(uint64(len(in.Packets)))
	cm.decodeErrors.Add(uint64(decodeErrs))
	cm.packets.Add(uint64(len(in.Packets) - decodeErrs))
	cm.workers.Set(int64(opts.workers()))

	fres := filterpipe.Run(table, filterpipe.Config{
		CallStart:    in.CallStart,
		CallEnd:      in.CallEnd,
		WindowSlack:  opts.WindowSlack,
		SNIBlocklist: opts.SNIBlocklist,
		Metrics:      opts.Metrics,
	})

	ca := &CaptureAnalysis{
		Label:        in.Label,
		Filter:       fres,
		Stats:        report.NewAppStats(in.Label),
		RTPSSRCs:     make(map[uint32]bool),
		DecodeErrors: decodeErrs,
	}
	for _, s := range table.Streams() {
		ca.Bytes += s.Bytes
	}

	// The compliance analysis covers UDP RTC streams only (§3.3: TCP
	// volume is negligible and carries signaling, not media). Every
	// piece of per-stream state — the DPI stream context, the
	// compliance session, the findings evidence — is independent
	// between streams, so streams fan out over the worker pool; the
	// per-stream partial results are folded back in stream order, which
	// makes the output identical to the serial path for any worker
	// count.
	var udp []*flow.Stream
	for _, s := range fres.RTC {
		if s.Key.Proto == layers.IPProtocolUDP {
			udp = append(udp, s)
		}
	}
	cm.rtcStreams.Add(uint64(len(udp)))
	partials := make([]*streamPartial, len(udp))
	forEachIndexed(len(udp), opts.workers(), func(i int) error {
		start := cm.streamSeconds.Start()
		partials[i] = analyzeStream(udp[i], opts)
		cm.streamSeconds.ObserveSince(start)
		return nil
	})

	foldStart := cm.foldSeconds.Start()
	foldPartials(ca, partials, opts.SkipFindings)
	cm.foldSeconds.ObserveSince(foldStart)
	return ca, nil
}

// foldPartials folds per-stream partial results into the capture
// analysis in slice order — the deterministic RTC stream order — by
// merging stats, SSRC sets, and findings evidence, then flushing each
// stream's trace span (a no-op when tracing is off). The workers that
// produced the partials only buffered; this fold is the single
// deterministic export and merge point every pipeline shares: Close,
// the batch reference path, and (through finalize) the cross-shard
// MergeAnalyzers.
func foldPartials(ca *CaptureAnalysis, partials []*streamPartial, skipFindings bool) {
	var fctx findingsContext
	for _, p := range partials {
		mergeStats(ca.Stats, p.stats)
		for ssrc := range p.ssrcs {
			ca.RTPSSRCs[ssrc] = true
		}
		fctx.merge(&p.fctx)
		p.span.Flush()
		if p.qoe != nil {
			if ca.QoE == nil {
				ca.QoE = &qoe.Capture{}
			}
			ca.QoE.Streams = append(ca.QoE.Streams, p.qoe.Features(p.key))
		}
	}
	if ca.QoE != nil {
		ca.QoE.Summary = qoe.Summarize(ca.QoE.Streams)
	}
	if !skipFindings {
		ca.Findings = fctx.findings()
	}
}

// streamPartial is the analysis outcome of one RTC stream, produced by
// one worker and merged into the capture result.
type streamPartial struct {
	stats *report.AppStats
	fctx  findingsContext
	ssrcs map[uint32]bool

	// span receives the stream's verdict trace (nil when tracing is
	// off). dgramBase numbers datagrams cumulatively across chunked
	// finalizations; curDgram and curPayload hand the Session.Trace
	// hook its datagram context while consume iterates.
	span       *obs.Span
	dgramBase  int
	curDgram   int
	curPayload []byte

	// obs is scratch for Registry.Observe: passing the address of a
	// stack local would force a heap allocation per consume call.
	obs proto.Observation

	// qoe accumulates the stream's header-free QoE evidence (nil when
	// estimation is off); key names the stream in the feature vector.
	// The accumulator folds records in arrival order and carries no
	// per-chunk state, so chunked finalization and cross-shard merges
	// leave the features identical to a serial single-chunk run.
	qoe *qoe.Stream
	key string
}

func newStreamPartial(span *obs.Span, key string, qcfg *qoe.Config) *streamPartial {
	p := &streamPartial{
		stats: report.NewAppStats(""),
		ssrcs: make(map[uint32]bool),
		span:  span,
		key:   key,
	}
	if qcfg != nil {
		p.qoe = qoe.NewStream(*qcfg)
	}
	return p
}

// consume folds one chunk of DPI results — index-aligned with the
// packet records they came from — into the partial: datagram classes,
// compliance verdicts, observed SSRCs, and findings evidence. Both the
// batch path (one chunk per stream) and the streaming analyzer's
// chunked finalization go through here.
func (p *streamPartial) consume(recs []flow.Packet, results []dpi.Result, session *compliance.Session, skipFindings bool) {
	reg := session.Checker().Registry()
	p.fctx.reg = reg
	if p.span != nil && session.Trace == nil {
		session.Trace = p.traceVerdict
	}
	o := &p.obs
	for i, r := range results {
		p.curDgram = p.dgramBase + i + 1
		p.curPayload = recs[i].Payload
		if p.qoe != nil {
			p.qoe.Observe(recs[i].Timestamp, len(recs[i].Payload))
		}
		p.stats.AddDatagram(r.Class)
		for _, m := range r.Messages {
			for _, c := range session.Check(m, recs[i].Timestamp) {
				p.stats.AddChecked(c)
			}
			reg.Observe(m, o)
			if o.HasSSRC {
				p.ssrcs[o.SSRC] = true
			}
		}
	}
	p.dgramBase += len(results)
	p.curPayload = nil
	if !skipFindings {
		p.fctx.scanStream(recs, results)
	}
}

// traceVerdict is the Session.Trace hook: it forwards every judged
// message's verdicts to the stream span with the datagram context the
// consume loop maintains, including the message's own bytes so a
// failing criterion can be shown against the wire data.
func (p *streamPartial) traceVerdict(m proto.Message, ts time.Time, out []proto.Checked) {
	name := m.Protocol.String()
	if meta, ok := p.fctx.reg.Meta(m.Protocol); ok {
		name = meta.Name
	}
	var window []byte
	if end := m.Offset + m.Length; m.Offset >= 0 && end <= len(p.curPayload) {
		window = p.curPayload[m.Offset:end]
	}
	for _, c := range out {
		p.span.Verdict(p.curDgram, ts, name, c.Type.Label,
			int(c.Verdict.Failed), c.Verdict.Reason, m.Offset, window)
	}
}

// analyzeStream runs DPI extraction and compliance checking over one
// UDP RTC stream with fresh per-stream state: its own engine, checker,
// session, and findings evidence. The compliance Checker's only
// cross-stream field is write-only during checking, so a per-stream
// checker yields verdicts identical to a capture-shared one.
func analyzeStream(s *flow.Stream, opts Options) *streamPartial {
	engine := opts.engine()
	checker := compliance.NewCheckerWith(opts.Registry)
	checker.SetMetrics(opts.Metrics)
	p := newStreamPartial(nil, s.Key.String(), opts.QoE)
	payloads := make([][]byte, len(s.Packets))
	for i, pkt := range s.Packets {
		payloads[i] = pkt.Payload
	}
	results := engine.InspectStream(payloads)
	p.consume(s.Packets, results, checker.NewSession(), opts.SkipFindings)
	return p
}

// feedBatchSize is how many records AnalyzePCAP accumulates before
// handing them to Analyzer.FeedBatch. Each pending record needs its own
// frame buffer (the ring below), so the batch size bounds the reader's
// resident frame memory at batch × max-frame-size.
const feedBatchSize = 64

// frameRing holds one reusable frame buffer per batch slot plus the
// pending batch itself. Frames read into a slot stay valid until the
// batch is flushed — FeedBatch copies payload bytes out (into pooled
// arenas) before returning, after which the slots are reused.
type frameRing struct {
	bufs  [feedBatchSize][]byte
	batch []Datagram
}

func newFrameRing() *frameRing {
	return &frameRing{batch: make([]Datagram, 0, feedBatchSize)}
}

// slot returns the buffer pointer for the next record to be read into.
func (fr *frameRing) slot() *[]byte { return &fr.bufs[len(fr.batch)] }

// add appends a record read into the current slot and reports whether
// the batch is full and must be flushed.
func (fr *frameRing) add(ts time.Time, frame []byte) bool {
	fr.batch = append(fr.batch, Datagram{Timestamp: ts, Frame: frame})
	return len(fr.batch) == feedBatchSize
}

// flush feeds the pending batch (a no-op when empty) and resets it.
func (fr *frameRing) flush(sink FrameSink) error {
	if len(fr.batch) == 0 {
		return nil
	}
	err := sink.FeedBatch(fr.batch)
	fr.batch = fr.batch[:0]
	return err
}

// FrameSink consumes timestamped frames in batches and produces the
// capture analysis when closed. The streaming Analyzer and the sharded
// ingest tier (internal/ingest) both implement it, which is what lets
// every capture reader — file, live socket, benchmark — swap one
// concurrency story for the other without touching the reading loop.
// FeedBatch must copy whatever it retains before returning (unless the
// sink was configured with stable frames), exactly like
// Analyzer.FeedBatch.
type FrameSink interface {
	FeedBatch([]Datagram) error
	Close() (*CaptureAnalysis, error)
}

// StreamCapture reads a capture stream — classic pcap or pcapng,
// detected from the leading magic — and feeds it incrementally through
// a FrameSink: records are decoded into a small ring of reusable frame
// buffers and delivered in batches, so memory holds per-stream state
// instead of the whole file. The sink is created by open once the
// capture's link type is known (for pcapng, from the first packet,
// matching the historical ReadAll behavior for single-interface
// files). Returns the sink's Close result.
func StreamCapture(r io.Reader, open func(pcap.LinkType) (FrameSink, error)) (*CaptureAnalysis, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: read capture header: %w", err)
	}
	ring := newFrameRing()
	var sink FrameSink
	if pcap.IsPCAPNG(head) {
		ngr, err := pcap.NewNGReader(br)
		if err != nil {
			return nil, err
		}
		for {
			pkt, linkType, err := ngr.ReadPacketInto(ring.slot())
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if sink == nil {
				if sink, err = open(linkType); err != nil {
					return nil, err
				}
			}
			if ring.add(pkt.Timestamp, pkt.Data) {
				if err := ring.flush(sink); err != nil {
					return nil, err
				}
			}
		}
		if sink == nil {
			if sink, err = open(ngr.LinkType()); err != nil {
				return nil, err
			}
		}
	} else {
		pr, err := pcap.NewReader(br)
		if err != nil {
			return nil, err
		}
		if sink, err = open(pr.LinkType()); err != nil {
			return nil, err
		}
		for {
			pkt, err := pr.ReadPacketInto(ring.slot())
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if ring.add(pkt.Timestamp, pkt.Data) {
				if err := ring.flush(sink); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := ring.flush(sink); err != nil {
		return nil, err
	}
	return sink.Close()
}

// AnalyzePCAP analyzes a capture stream with one streaming Analyzer
// through StreamCapture. Unless KeepPayloads is set, retained payload
// bytes live in pooled buffers (internal/bufpool) that return to the
// process-wide pool as streams are filtered out, evicted, or
// finalized. A zero callStart defaults the call window to the
// capture's span.
func AnalyzePCAP(r io.Reader, label string, callStart, callEnd time.Time, opts Options) (*CaptureAnalysis, error) {
	cfg := AnalyzerConfig{
		Label:               label,
		CallStart:           callStart,
		CallEnd:             callEnd,
		DefaultWindowToSpan: true,
		KeepPayloads:        opts.KeepPayloads,
		EvictIdle:           opts.EvictIdle,
	}
	if !opts.KeepPayloads {
		cfg.Pool = bufpool.Global()
	}
	return StreamCapture(r, func(lt pcap.LinkType) (FrameSink, error) {
		cfg.LinkType = lt
		return NewAnalyzer(cfg, opts)
	})
}

// BatchAnalyzePCAP is the original read-everything-then-analyze path,
// retained as the baseline for the streaming memory benchmarks.
func BatchAnalyzePCAP(r io.Reader, label string, callStart, callEnd time.Time, opts Options) (*CaptureAnalysis, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: read capture header: %w", err)
	}
	var pkts []pcap.Packet
	var linkType pcap.LinkType
	if pcap.IsPCAPNG(head) {
		ngr, err := pcap.NewNGReader(br)
		if err != nil {
			return nil, err
		}
		pkts, linkType, err = ngr.ReadAll()
		if err != nil {
			return nil, err
		}
	} else {
		pr, err := pcap.NewReader(br)
		if err != nil {
			return nil, err
		}
		linkType = pr.LinkType()
		pkts, err = pr.ReadAll()
		if err != nil {
			return nil, err
		}
	}
	in := CaptureInput{
		Label:     label,
		LinkType:  linkType,
		Packets:   pkts,
		CallStart: callStart,
		CallEnd:   callEnd,
	}
	// Default the window to the capture span when not annotated.
	if callStart.IsZero() && len(pkts) > 0 {
		in.CallStart = pkts[0].Timestamp
		in.CallEnd = pkts[len(pkts)-1].Timestamp
	}
	return BatchAnalyzeCapture(in, opts)
}

// MatrixAnalysis aggregates a whole experiment matrix.
type MatrixAnalysis struct {
	// Aggregate holds per-app statistics for the report tables.
	Aggregate *report.Aggregate
	// Table1 holds the filter accounting per app.
	Table1 []report.Table1Row
	// Findings lists deduplicated behavioural findings across captures.
	Findings []Finding
	// Captures counts analyzed calls.
	Captures int
}

// RunMatrix generates the experiment matrix and analyzes every capture.
// Capture generation and analysis fan out over Options.Workers
// goroutines (each capture is independent); the per-capture results are
// folded into the aggregate in deterministic config order, so the
// output is byte-identical to a serial (Workers=1) run.
func RunMatrix(mopts trace.MatrixOptions, opts Options) (*MatrixAnalysis, error) {
	configs := trace.Matrix(mopts)

	// When the matrix-level pool is active, each worker owns a whole
	// capture; the per-capture stream pool is disabled so the total
	// concurrency stays bounded by the one pool.
	workers := opts.workers()
	capOpts := opts
	if workers > 1 {
		capOpts.Workers = 1
	}
	// Matrix captures are analyzed concurrently; their event streams
	// would interleave nondeterministically on one sink, so the matrix
	// never traces. Analyze a single capture to trace it.
	capOpts.Tracer = nil
	mm := newMatrixMetrics(opts.Metrics)
	mm.workers.Set(int64(workers))
	analyses := make([]*CaptureAnalysis, len(configs))
	err := forEachIndexed(len(configs), workers, func(i int) error {
		captures, latency := mm.capture(configs[i])
		start := latency.Start()
		cap, err := trace.Generate(configs[i])
		if err != nil {
			return err
		}
		if configs[i].Impair.Active() {
			cap.Impair.Publish(opts.Metrics, configs[i].Impair.Label())
		}
		ca, err := AnalyzeCapture(cap.Input(), capOpts)
		if err != nil {
			return err
		}
		latency.ObserveSince(start)
		captures.Inc()
		analyses[i] = ca
		return nil
	})
	if err != nil {
		return nil, err
	}

	ma := &MatrixAnalysis{Aggregate: report.NewAggregateWith(opts.Registry)}
	rows := make(map[string]*report.Table1Row)
	var rowOrder []string
	// Cross-call SSRC sets per app+network for the Zoom finding.
	ssrcSets := make(map[string][]map[uint32]bool)
	var allFindings []Finding

	for i, cfg := range configs {
		ca := analyses[i]
		ma.Captures++

		// Fold stats into the aggregate.
		app := ma.Aggregate.App(string(cfg.App))
		mergeStats(app, ca.Stats)

		// Table 1 accounting.
		row, ok := rows[string(cfg.App)]
		if !ok {
			row = &report.Table1Row{App: string(cfg.App)}
			rows[string(cfg.App)] = row
			rowOrder = append(rowOrder, string(cfg.App))
		}
		addCounts(row, ca)

		key := fmt.Sprintf("%s/%s", cfg.App, cfg.Network)
		ssrcSets[key] = append(ssrcSets[key], ca.RTPSSRCs)
		for _, f := range ca.Findings {
			f.App = string(cfg.App)
			allFindings = append(allFindings, f)
		}
	}
	for _, name := range rowOrder {
		ma.Table1 = append(ma.Table1, *rows[name])
	}
	allFindings = append(allFindings, detectSSRCReuse(ssrcSets)...)
	ma.Findings = dedupFindings(allFindings)
	return ma, nil
}

func mergeStats(dst, src *report.AppStats) {
	for fam, ps := range src.ByProtocol {
		d := dst.ByProtocol[fam]
		if d == nil {
			d = &report.ProtoStat{}
			dst.ByProtocol[fam] = d
		}
		d.Messages += ps.Messages
		d.Compliant += ps.Compliant
		d.Bytes += ps.Bytes
	}
	for key, ts := range src.Types {
		d := dst.Types[key]
		if d == nil {
			d = &report.TypeStat{Reasons: make(map[string]int)}
			dst.Types[key] = d
		}
		d.Total += ts.Total
		d.NonCompliant += ts.NonCompliant
		for r, n := range ts.Reasons {
			d.Reasons[r] += n
		}
	}
	for class, n := range src.Datagrams {
		dst.Datagrams[class] += n
	}
	for crit, n := range src.Violations {
		dst.Violations[crit] += n
	}
}

func addCounts(row *report.Table1Row, ca *CaptureAnalysis) {
	f := ca.Filter
	row.VolumeBytes += ca.Bytes
	addC := func(dst *flow.Counts, src flow.Counts) {
		dst.Streams += src.Streams
		dst.Packets += src.Packets
		dst.Bytes += src.Bytes
	}
	addC(&row.RawUDP, f.RawUDP)
	addC(&row.RawTCP, f.RawTCP)
	addC(&row.Stage1UDP, f.Stage1UDP)
	addC(&row.Stage1TCP, f.Stage1TCP)
	addC(&row.Stage2UDP, f.Stage2UDP)
	addC(&row.Stage2TCP, f.Stage2TCP)
	addC(&row.RTCUDP, f.RTCUDP)
	addC(&row.RTCTCP, f.RTCTCP)
}
