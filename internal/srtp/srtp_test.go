package srtp

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 3711 Appendix B.3 key-derivation test vectors.
func TestKeyDerivationRFC3711Vectors(t *testing.T) {
	masterKey := mustHex(t, "E1F97A0D3E018BE0D64FA32C06DE4139")
	masterSalt := mustHex(t, "0EC675AD498AFEEBB6960B3AABE6")
	c, err := NewContext(masterKey, masterSalt)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(c.srtpEncKey); got != "c61e7a93744f39ee10734afe3ff7a087" {
		t.Errorf("cipher key = %s", got)
	}
	if got := hex.EncodeToString(c.srtpSalt); got != "30cbbc08863d8c85d49db34a9ae1" {
		t.Errorf("cipher salt = %s", got)
	}
	if got := hex.EncodeToString(c.srtpAuthKey); got != "cebe321f6ff7716b6fd4ab49af256a156d38baa4" {
		t.Errorf("auth key = %s", got)
	}
}

func TestNewContextRejectsBadSizes(t *testing.T) {
	if _, err := NewContext(make([]byte, 15), make([]byte, 14)); err == nil {
		t.Error("15-byte key accepted")
	}
	if _, err := NewContext(make([]byte, 16), make([]byte, 13)); err == nil {
		t.Error("13-byte salt accepted")
	}
}

func testContext(t *testing.T) *Context {
	t.Helper()
	key := bytes.Repeat([]byte{0x2b}, MasterKeyLen)
	salt := bytes.Repeat([]byte{0x7e}, MasterSaltLen)
	c, err := NewContext(key, salt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRTPPayloadEncryptionIsInvolution(t *testing.T) {
	c := testContext(t)
	payload := []byte("some opus media payload bytes here")
	enc := append([]byte(nil), payload...)
	c.EncryptRTPPayload(enc, 0x1234, 77)
	if bytes.Equal(enc, payload) {
		t.Fatal("encryption did not change payload")
	}
	c.EncryptRTPPayload(enc, 0x1234, 77)
	if !bytes.Equal(enc, payload) {
		t.Fatal("double encryption is not identity")
	}
}

func TestRTPPayloadKeystreamDependsOnSSRCAndIndex(t *testing.T) {
	c := testContext(t)
	p1 := make([]byte, 16)
	p2 := make([]byte, 16)
	p3 := make([]byte, 16)
	c.EncryptRTPPayload(p1, 1, 10)
	c.EncryptRTPPayload(p2, 2, 10)
	c.EncryptRTPPayload(p3, 1, 11)
	if bytes.Equal(p1, p2) {
		t.Error("keystream identical across SSRCs")
	}
	if bytes.Equal(p1, p3) {
		t.Error("keystream identical across indexes")
	}
}

func TestRTPAuthTag(t *testing.T) {
	c := testContext(t)
	tag := c.RTPAuthTag([]byte("header+payload"), 3)
	if len(tag) != AuthTagLen {
		t.Fatalf("tag len = %d", len(tag))
	}
	tag2 := c.RTPAuthTag([]byte("header+payload"), 4)
	if bytes.Equal(tag, tag2) {
		t.Error("tag does not depend on ROC")
	}
}

func rtcpPlain() []byte {
	// A minimal RTCP RR: header + SSRC + nothing.
	return []byte{0x80, 201, 0x00, 0x01, 0x01, 0x02, 0x03, 0x04}
}

func TestSRTCPRoundTrip(t *testing.T) {
	c := testContext(t)
	plain := rtcpPlain()
	prot, err := c.ProtectRTCP(plain, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(prot) != len(plain)+SRTCPIndexLen+AuthTagLen {
		t.Fatalf("protected len = %d", len(prot))
	}
	// First 8 bytes stay in the clear.
	if !bytes.Equal(prot[:8], plain[:8]) {
		t.Error("header/SSRC not in the clear")
	}
	got, index, err := c.UnprotectRTCP(prot)
	if err != nil {
		t.Fatal(err)
	}
	if index != 42 {
		t.Errorf("index = %d", index)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("plaintext mismatch: %x vs %x", got, plain)
	}
}

func TestSRTCPBodyActuallyEncrypted(t *testing.T) {
	c := testContext(t)
	plain := append(rtcpPlain(), []byte("sensitive report contents....")...)
	// Keep it a valid length; ProtectRTCP doesn't care about RTCP length
	// fields, only the 8-byte prefix.
	prot, err := c.ProtectRTCP(plain, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(prot, []byte("sensitive")) {
		t.Error("body not encrypted")
	}
}

func TestSRTCPAuthFailures(t *testing.T) {
	c := testContext(t)
	prot, err := c.ProtectRTCP(rtcpPlain(), 7, false)
	if err != nil {
		t.Fatal(err)
	}
	// Bit flip anywhere breaks the tag.
	for _, pos := range []int{0, 5, len(prot) - 1} {
		bad := append([]byte(nil), prot...)
		bad[pos] ^= 0x01
		if _, _, err := c.UnprotectRTCP(bad); !errors.Is(err, ErrAuthFail) {
			t.Errorf("flip at %d: err = %v, want ErrAuthFail", pos, err)
		}
	}
	// Wrong key fails.
	other, _ := NewContext(bytes.Repeat([]byte{9}, 16), bytes.Repeat([]byte{8}, 14))
	if _, _, err := other.UnprotectRTCP(prot); !errors.Is(err, ErrAuthFail) {
		t.Errorf("wrong key: err = %v", err)
	}
}

func TestSRTCPOmitAuthTag(t *testing.T) {
	c := testContext(t)
	plain := rtcpPlain()
	prot, err := c.ProtectRTCP(plain, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prot) != len(plain)+SRTCPIndexLen {
		t.Fatalf("tagless len = %d, want %d", len(prot), len(plain)+SRTCPIndexLen)
	}
	// A tagless packet must fail verification — that is the point of the
	// Google Meet case.
	if _, _, err := c.UnprotectRTCP(prot); err == nil {
		t.Error("tagless packet verified")
	}
}

func TestProtectRejectsShortPacket(t *testing.T) {
	c := testContext(t)
	if _, err := c.ProtectRTCP([]byte{1, 2, 3}, 0, false); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := c.UnprotectRTCP(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v", err)
	}
}

// Property: protect→unprotect is the identity for arbitrary bodies and
// indexes.
func TestQuickSRTCPIdentity(t *testing.T) {
	c := testContext(t)
	f := func(body []byte, index uint32) bool {
		plain := append(rtcpPlain(), body...)
		prot, err := c.ProtectRTCP(plain, index, false)
		if err != nil {
			return false
		}
		got, gotIdx, err := c.UnprotectRTCP(prot)
		return err == nil && gotIdx == index&0x7fffffff && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the SRTP keystream is deterministic — same inputs, same
// output — so captures are reproducible across runs.
func TestQuickKeystreamDeterministic(t *testing.T) {
	c := testContext(t)
	f := func(ssrc uint32, index uint16, n uint8) bool {
		a := make([]byte, int(n)+1)
		b := make([]byte, int(n)+1)
		c.EncryptRTPPayload(a, ssrc, uint64(index))
		c.EncryptRTPPayload(b, ssrc, uint64(index))
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
