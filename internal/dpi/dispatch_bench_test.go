package dpi

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// dispatchCorpus builds a representative datagram mix: standard
// messages of every family, a proprietary-header datagram, and a
// fully-proprietary filler (the probe path's worst case — every offset
// is tried against every prober and nothing matches).
func dispatchCorpus() [][]byte {
	r := ice.NewRand(42)
	var corpus [][]byte

	corpus = append(corpus, ice.ServerBindingRequest(r).Raw)

	inner := rtpPacket(9, 1, bytes.Repeat([]byte{0xAB}, 120))
	cd := &stun.ChannelData{ChannelNumber: 0x4001, Data: inner}
	corpus = append(corpus, cd.Encode())

	for seq := uint16(2); seq < 10; seq++ {
		corpus = append(corpus, rtpPacket(9, seq, bytes.Repeat([]byte{0xCD}, 160)))
	}

	comp := rtcp.Compound(
		rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 9, Info: rtcp.SenderInfo{NTPTimestamp: 1}}),
		rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: 9, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "x@y"}}}}}),
	)
	corpus = append(corpus, comp)

	// Zoom-style proprietary header before an RTP message.
	hdr := append([]byte{0x05, 0x10, 0x00, 0x01}, rtpPacket(9, 10, bytes.Repeat([]byte{0xEF}, 140))...)
	corpus = append(corpus, hdr)

	// Fully proprietary filler: 1000 bytes, no match at any offset.
	corpus = append(corpus, bytes.Repeat([]byte{0x01}, 1000))
	return corpus
}

// summarize flattens an inspection for parity comparison.
func summarize(results []Result) string {
	var b bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&b, "%d:", r.Class)
		for _, m := range r.Messages {
			fmt.Fprintf(&b, "%d@%d+%d,", m.Protocol, m.Offset, m.Length)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// TestDispatchParityWithBaseline proves the registry dispatch extracts
// exactly what the frozen pre-registry chain did, datagram for
// datagram, over the representative corpus.
func TestDispatchParityWithBaseline(t *testing.T) {
	corpus := dispatchCorpus()

	e := NewEngine()
	ctx := NewStreamContext()
	var got []Result
	for _, p := range corpus {
		got = append(got, e.Inspect(p, ctx))
	}

	be := &baselineEngine{MaxOffset: 200}
	bctx := newBaselineContext()
	var want []Result
	for _, p := range corpus {
		want = append(want, be.Inspect(p, bctx))
	}

	if g, w := summarize(got), summarize(want); g != w {
		t.Fatalf("registry dispatch diverged from frozen baseline:\nregistry: %s\nbaseline: %s", g, w)
	}
}

// TestProbePathAllocationFree pins the zero-allocation guarantee of the
// registry probe path: scanning a fully proprietary datagram — 1000
// offsets, every prober tried and rejected at each — must not allocate.
func TestProbePathAllocationFree(t *testing.T) {
	filler := bytes.Repeat([]byte{0x01}, 1000)
	e := NewEngine()
	ctx := NewStreamContext()
	e.Inspect(filler, ctx) // warm per-stream state
	if avg := testing.AllocsPerRun(100, func() {
		e.Inspect(filler, ctx)
	}); avg != 0 {
		t.Errorf("probe path allocates: %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkDispatchRegistry measures the registry-driven Inspect over
// the mixed corpus. Compare against BenchmarkDispatchBaseline:
//
//	go test ./internal/dpi -run=^$ -bench=BenchmarkDispatch -benchmem
func BenchmarkDispatchRegistry(b *testing.B) {
	corpus := dispatchCorpus()
	e := NewEngine()
	ctx := NewStreamContext()
	for _, p := range corpus {
		e.Inspect(p, ctx)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range corpus {
			e.Inspect(p, ctx)
		}
	}
}

// BenchmarkDispatchBaseline measures the frozen pre-registry hardcoded
// chain over the same corpus.
func BenchmarkDispatchBaseline(b *testing.B) {
	corpus := dispatchCorpus()
	e := &baselineEngine{MaxOffset: 200}
	ctx := newBaselineContext()
	for _, p := range corpus {
		e.Inspect(p, ctx)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range corpus {
			e.Inspect(p, ctx)
		}
	}
}

// BenchmarkDispatchProbeMiss isolates the probe path: a fully
// proprietary datagram where every offset misses. This is the
// allocation-free path the registry must not regress.
func BenchmarkDispatchProbeMiss(b *testing.B) {
	filler := bytes.Repeat([]byte{0x01}, 1000)
	e := NewEngine()
	ctx := NewStreamContext()
	e.Inspect(filler, ctx)
	b.ReportAllocs()
	b.SetBytes(int64(len(filler)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Inspect(filler, ctx)
	}
}
