package tlsinspect

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndExtract(t *testing.T) {
	names := []string{
		"oauth2.googleapis.com",
		"web.facebook.com",
		"a.b.c.d.example",
		"x",
	}
	for _, name := range names {
		rec := BuildClientHello(name, [32]byte{1, 2, 3})
		got, err := SNI(rec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != name {
			t.Errorf("SNI = %q, want %q", got, name)
		}
	}
}

func TestSNIWithTrailingData(t *testing.T) {
	rec := BuildClientHello("host.example", [32]byte{})
	rec = append(rec, []byte("subsequent handshake bytes")...)
	got, err := SNI(rec)
	if err != nil || got != "host.example" {
		t.Errorf("SNI = %q, %v", got, err)
	}
}

func TestNotClientHello(t *testing.T) {
	cases := [][]byte{
		[]byte("GET / HTTP/1.1\r\n"),
		{23, 3, 3, 0, 5, 1, 2, 3, 4, 5}, // application data record
		{22, 4, 0, 0, 1, 0},             // bad version
		{22, 3, 3, 0, 4, 2, 0, 0, 0},    // ServerHello
	}
	for i, b := range cases {
		if _, err := SNI(b); !errors.Is(err, ErrNotClientHello) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestTruncated(t *testing.T) {
	rec := BuildClientHello("host.example", [32]byte{})
	for _, cut := range []int{3, 6, 20, len(rec) - 1} {
		if _, err := SNI(rec[:cut]); err == nil {
			t.Errorf("cut at %d accepted", cut)
		}
	}
}

func TestNoSNIExtension(t *testing.T) {
	rec := BuildClientHello("host.example", [32]byte{})
	// Rewrite the extension type to something else (ALPN = 16).
	// The extension type is the first 2 bytes of the extensions block;
	// find it by scanning for the known offset: record(5) + hstype(1) +
	// len(3) + ver(2) + random(32) + sess(1) + cslen(2) + cs(4) +
	// cmlen(1) + cm(1) + extlen(2) = 54.
	rec[54+1] = 16
	if _, err := SNI(rec); !errors.Is(err, ErrNoSNI) {
		t.Errorf("err = %v, want ErrNoSNI", err)
	}
}

func TestLongHostName(t *testing.T) {
	name := strings.Repeat("sub.", 50) + "example.com"
	got, err := SNI(BuildClientHello(name, [32]byte{}))
	if err != nil || got != name {
		t.Errorf("long name: %q, %v", got, err)
	}
}

// Property: build→extract identity for arbitrary host names without
// NULs.
func TestQuickIdentity(t *testing.T) {
	f := func(nameBytes []byte, random [32]byte) bool {
		if len(nameBytes) == 0 || len(nameBytes) > 200 {
			return true
		}
		name := strings.Map(func(r rune) rune {
			if r < 33 || r > 126 {
				return 'a'
			}
			return r
		}, string(nameBytes))
		got, err := SNI(BuildClientHello(name, random))
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SNI never panics on arbitrary bytes.
func TestQuickNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = SNI(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
