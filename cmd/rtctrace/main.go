// Command rtctrace reads a decision trace exported by `rtccheck
// -trace-out` (or `rtclive collect -trace-out`) and answers
// why-questions about the run offline: why a stream was filtered, why
// a message failed compliance, which probe offsets the DPI tried.
//
// Usage:
//
//	rtctrace -in trace.jsonl                       # summary
//	rtctrace -in trace.jsonl -explain "Zoom//0x0c01"
//	rtctrace -in trace.jsonl -lint                 # validate the export
//	rtccheck -pcap call.pcap -trace-out /dev/stdout | rtctrace -lint
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	"github.com/rtc-compliance/rtcc/internal/obs"
)

// newFlags registers rtctrace's flag surface (pinned by the golden
// surface test).
func newFlags() (fs *flag.FlagSet, in, explain *string, lint, version *bool) {
	fs = flag.NewFlagSet("rtctrace", flag.ExitOnError)
	in = fs.String("in", "", "trace JSONL file to read (default: stdin)")
	explain = fs.String("explain", "", `explain decisions matching "<app>/<stream>/<msgtype>" (each part an optional substring)`)
	lint = fs.Bool("lint", false, "validate the trace against the event schema and exit non-zero on problems")
	version = cmdutil.VersionFlag(fs)
	return
}

func main() {
	fs, in, explain, lint, version := newFlags()
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *version {
		cmdutil.PrintVersion(os.Stdout, "rtctrace")
		return
	}
	if err := run(*in, *explain, *lint); err != nil {
		fmt.Fprintln(os.Stderr, "rtctrace:", err)
		os.Exit(1)
	}
}

func run(in, explain string, lint bool) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		return err
	}
	if lint {
		problems := obs.Lint(events)
		if len(problems) == 0 {
			fmt.Printf("ok: %d events, no problems\n", len(events))
			return nil
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		return fmt.Errorf("%d problems", len(problems))
	}
	if explain != "" {
		fmt.Print(obs.Explain(events, obs.ParseQuery(explain)))
		return nil
	}
	fmt.Print(obs.Summary(events))
	return nil
}
