package metrics

import (
	"math"
	"testing"
	"time"
)

func snapOf(bounds []float64, obs ...float64) HistogramSnapshot {
	h := newHistogram(bounds)
	for _, v := range obs {
		h.Observe(v)
	}
	return h.snapshot()
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	tests := []struct {
		v    float64
		want int // bucket index
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0}, // exactly on a bound: inclusive upper
		{0.0011, 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.2, 3}, // overflow
		{1e9, 3},
	}
	for _, tt := range tests {
		before := h.counts[tt.want].Load()
		h.Observe(tt.v)
		if got := h.counts[tt.want].Load(); got != before+1 {
			t.Errorf("Observe(%g): bucket %d not incremented", tt.v, tt.want)
		}
	}
	if h.Count() != uint64(len(tests)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(tests))
	}
}

// TestQuantileBoundaries pins the interpolation math at bucket
// boundaries with hand-computed expectations.
func TestQuantileBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.002, 0.004}
	tests := []struct {
		name string
		obs  []float64
		q    float64
		want float64
	}{
		// Two observations in (0, 1ms], two in (1ms, 2ms]. p50 rank =
		// 2 falls exactly at the first bucket's upper bound.
		{"exact boundary", []float64{0.0005, 0.001, 0.0015, 0.002}, 0.50, 0.001},
		// p25 rank = 1: halfway through the first bucket (0 → 1ms).
		{"first bucket interpolates from zero", []float64{0.0005, 0.001, 0.0015, 0.002}, 0.25, 0.0005},
		// p99 rank = 3.96: (3.96-2)/2 of the way through (1ms, 2ms].
		{"interpolation inside bucket", []float64{0.0005, 0.001, 0.0015, 0.002}, 0.99, 0.001 + 0.001*1.96/2},
		// p100 consumes the last occupied bucket entirely.
		{"q=1 reaches bucket top", []float64{0.0005, 0.001, 0.0015, 0.002}, 1.0, 0.002},
		// All mass in one bucket: uniform interpolation across it.
		{"single bucket median", []float64{0.003, 0.003, 0.003, 0.003}, 0.50, 0.002 + 0.002*0.5},
		// Overflow bucket cannot be interpolated: report last bound.
		{"overflow reports last bound", []float64{5, 6, 7}, 0.99, 0.004},
		// Empty histogram.
		{"empty", nil, 0.5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := snapOf(bounds, tt.obs...)
			if got := s.Quantile(tt.q); !approx(got, tt.want) {
				t.Errorf("Quantile(%g) = %g, want %g (buckets %+v)", tt.q, got, tt.want, s.Buckets)
			}
		})
	}
}

func TestQuantileSkipsEmptyBuckets(t *testing.T) {
	// Mass only in the third bucket (2ms, 4ms]; every quantile must
	// land inside it.
	s := snapOf([]float64{0.001, 0.002, 0.004}, 0.003, 0.003, 0.004, 0.004)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got <= 0.002 || got > 0.004 {
			t.Errorf("Quantile(%g) = %g, want within (0.002, 0.004]", q, got)
		}
	}
}

func TestSnapshotQuantilesPrecomputed(t *testing.T) {
	s := snapOf([]float64{0.001, 0.002, 0.004}, 0.0005, 0.001, 0.0015, 0.002)
	if !approx(s.P50, s.Quantile(0.50)) || !approx(s.P95, s.Quantile(0.95)) || !approx(s.P99, s.Quantile(0.99)) {
		t.Errorf("precomputed quantiles diverge from Quantile(): %+v", s)
	}
	if s.Count != 4 {
		t.Errorf("Count = %d", s.Count)
	}
	// The sum is stored in nanosecond fixed point; allow a few ns of
	// truncation error.
	if math.Abs(s.SumSeconds-0.005) > 1e-8 {
		t.Errorf("SumSeconds = %g, want 0.005", s.SumSeconds)
	}
}

func TestObserveDurationAndSince(t *testing.T) {
	h := newHistogram(nil)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("ObserveDuration did not record")
	}
	start := h.Start()
	if start.IsZero() {
		t.Fatal("Start() on live histogram returned zero time")
	}
	h.ObserveSince(start)
	if h.Count() != 2 {
		t.Error("ObserveSince did not record")
	}
	h.ObserveSince(time.Time{}) // zero start: no-op
	if h.Count() != 2 {
		t.Error("ObserveSince recorded a zero start")
	}
}

func TestDefaultBucketsSorted(t *testing.T) {
	for i := 1; i < len(DefaultLatencyBuckets); i++ {
		if DefaultLatencyBuckets[i] <= DefaultLatencyBuckets[i-1] {
			t.Fatalf("DefaultLatencyBuckets not strictly increasing at %d", i)
		}
	}
}
