// Criterion-5 (cross-message) judge tests under adverse delivery: for
// every family in the default registry, wire-level message sequences
// are fed through a Session in capture order, reordered, and
// duplicated, pinning which verdicts must stay stable and which
// CritSemantics drift is the correct reading of the disturbed stream.
// These are the protocol-level contracts behind the impairment matrix
// in internal/core: reordering and duplication may only ever surface
// criterion-5 violations, never invent per-message (criteria 1-4) ones.
package proto_test

import (
	"encoding/binary"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// crit5Vector exercises one family's criterion-5 state machine. Each
// scenario receives a fresh Session and StreamState (permissive
// single-datagram mode), so cross-scenario state never leaks.
type crit5Vector struct {
	run func(t *testing.T)
}

var crit5Base = time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC)

// judgeSeq validates each payload against the registered probers and
// feeds the extracted messages through one session in order, returning
// the flattened verdicts.
func judgeSeq(t *testing.T, payloads [][]byte) []proto.Checked {
	t.Helper()
	st := &proto.StreamState{}
	s := proto.NewChecker(nil).NewSession()
	var out []proto.Checked
	for i, b := range payloads {
		m, ok := validateOne(st, b)
		if !ok {
			t.Fatalf("payload %d (% x…) matched no registered prober", i, b[:min(len(b), 8)])
		}
		out = append(out, s.Check(m, crit5Base.Add(time.Duration(i)*20*time.Millisecond))...)
	}
	return out
}

func validateOne(st *proto.StreamState, b []byte) (proto.Message, bool) {
	for _, p := range proto.Default().ProbersFor(b[0]) {
		if m, ok := p.Validate(proto.Candidate{Payload: b}, st); ok {
			return m, true
		}
	}
	return proto.Message{}, false
}

// permute returns the payloads in the given index order.
func permute(payloads [][]byte, order []int) [][]byte {
	out := make([][]byte, 0, len(order))
	for _, i := range order {
		out = append(out, payloads[i])
	}
	return out
}

// duplicate delivers every payload twice, back to back.
func duplicate(payloads [][]byte) [][]byte {
	out := make([][]byte, 0, 2*len(payloads))
	for _, p := range payloads {
		out = append(out, p, p)
	}
	return out
}

func allCompliant(t *testing.T, out []proto.Checked) {
	t.Helper()
	for _, c := range out {
		if !c.Verdict.Compliant {
			t.Errorf("%v: unexpected violation (criterion %d): %s",
				c.Type, c.Verdict.Failed, c.Verdict.Reason)
		}
	}
}

// semanticsDriftOnly asserts every violation in out fails criterion 5
// and returns how many did. Disturbed delivery must never manufacture
// per-message violations: those judge bytes the sender emitted, which
// reordering and duplication do not edit.
func semanticsDriftOnly(t *testing.T, out []proto.Checked) int {
	t.Helper()
	drift := 0
	for _, c := range out {
		if c.Verdict.Compliant {
			continue
		}
		if c.Verdict.Failed != proto.CritSemantics {
			t.Errorf("%v: criterion %d violation under disturbed delivery: %s",
				c.Type, c.Verdict.Failed, c.Verdict.Reason)
			continue
		}
		drift++
	}
	return drift
}

// --- STUN/TURN family ---

func stunPayload(typ stun.MessageType, txid [12]byte, attrs func(*stun.Message)) []byte {
	m := &stun.Message{Type: typ, TransactionID: txid}
	if attrs != nil {
		attrs(m)
	}
	return m.Encode()
}

func stunTURNVector(t *testing.T) {
	txA := [12]byte{0xde, 0xad, 0xbe, 0xef, 0x13, 0x37, 0x5a, 0x21, 0x90, 0x44, 0xc2, 0x7e}
	txB := [12]byte{0x4f, 0x91, 0x02, 0xe8, 0xaa, 0x03, 0x6d, 0xf0, 0x1b, 0xc5, 0x38, 0x62}
	txBind := [12]byte{0x77, 0x2c, 0x19, 0x84, 0xfe, 0x60, 0x0b, 0xd3, 0x49, 0x8a, 0x25, 0x1c}
	bindReqA := stunPayload(stun.TypeBindingRequest, txA, nil)
	bindOkA := stunPayload(stun.TypeBindingSuccess, txA, nil)
	bindReqB := stunPayload(stun.TypeBindingRequest, txB, nil)
	bindOkB := stunPayload(stun.TypeBindingSuccess, txB, nil)
	chanBind := stunPayload(stun.TypeChannelBindRequest, txBind, func(m *stun.Message) {
		m.Add(stun.AttrChannelNumber, stun.EncodeChannelNumber(0x4000))
	})
	chanData := (&stun.ChannelData{ChannelNumber: 0x4000, Data: make([]byte, 24)}).Encode()

	t.Run("binding-in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, [][]byte{bindReqA, bindOkA, bindReqB, bindOkB}))
	})
	t.Run("binding-reordered", func(t *testing.T) {
		// Responses overtaking their requests: transaction IDs are
		// random, so pairing is order-free and the verdicts hold.
		allCompliant(t, judgeSeq(t, [][]byte{bindOkA, bindReqA, bindOkB, bindReqB}))
	})
	t.Run("binding-duplicated", func(t *testing.T) {
		// A duplicated request stays far below the repeated-request
		// threshold; duplicated responses are idempotent.
		allCompliant(t, judgeSeq(t, duplicate([][]byte{bindReqA, bindOkA, bindReqB, bindOkB})))
	})
	t.Run("channeldata-in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, [][]byte{chanBind, chanData, chanData}))
	})
	t.Run("channeldata-reordered", func(t *testing.T) {
		// ChannelData overtaking its ChannelBind is the documented
		// criterion-5 drift: data on a channel never bound on this
		// stream. Only the early frame drifts; post-bind frames hold.
		out := judgeSeq(t, [][]byte{chanData, chanBind, chanData})
		if got := semanticsDriftOnly(t, out); got != 1 {
			t.Errorf("drifted verdicts = %d, want exactly the pre-bind ChannelData", got)
		}
	})
}

// --- RTP family ---

func rtpVector(t *testing.T) {
	payloads := make([][]byte, 0, 6)
	for i := 0; i < 6; i++ {
		p := &rtp.Packet{
			Version:        2,
			PayloadType:    111,
			SequenceNumber: uint16(4000 + i),
			Timestamp:      uint32(90000 + 960*i),
			SSRC:           0x5566aabb,
			Payload:        make([]byte, 40),
		}
		payloads = append(payloads, p.Encode())
	}
	t.Run("in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, payloads))
	})
	t.Run("reordered", func(t *testing.T) {
		// RTP's compliance judge carries no cross-message criterion:
		// sequence displacement is the transport's problem, not a
		// protocol violation, so verdicts are permutation-invariant.
		allCompliant(t, judgeSeq(t, permute(payloads, []int{1, 0, 3, 2, 5, 4})))
	})
	t.Run("duplicated", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, duplicate(payloads)))
	})
}

// --- RTCP family ---

// srtcpSR builds an SRTCP-protected sender report: a plaintext-framed
// SR followed by the full RFC 3711 trailer (E-flag + 31-bit index word
// plus the 10-byte auth tag).
func srtcpSR(ssrc uint32, index uint32) []byte {
	sr := rtcp.EncodeSR(&rtcp.SenderReport{
		SSRC: ssrc,
		Info: rtcp.SenderInfo{NTPTimestamp: 0x83aa7e80_00000000, RTPTimestamp: 90000},
	})
	trailer := make([]byte, srtp.SRTCPIndexLen+srtp.AuthTagLen)
	binary.BigEndian.PutUint32(trailer, 1<<31|index)
	for i := srtp.SRTCPIndexLen; i < len(trailer); i++ {
		trailer[i] = byte(0xa0 + i)
	}
	return append(sr, trailer...)
}

func rtcpVector(t *testing.T) {
	plain := rtcp.Compound(
		rtcp.EncodeSR(&rtcp.SenderReport{
			SSRC: 0x11223344,
			Info: rtcp.SenderInfo{NTPTimestamp: 0x83aa7e80_00000000, RTPTimestamp: 48000},
		}),
		rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{
			SSRC:  0x11223344,
			Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "user@host"}},
		}}}),
	)
	t.Run("plain-compound-stable", func(t *testing.T) {
		// A plaintext compound holds no cross-message state: verdicts
		// are identical in order, reordered, and duplicated.
		allCompliant(t, judgeSeq(t, [][]byte{plain, plain, plain}))
	})

	srtcp := [][]byte{srtcpSR(0x778899aa, 1), srtcpSR(0x778899aa, 2), srtcpSR(0x778899aa, 3)}
	t.Run("srtcp-in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, srtcp))
	})
	t.Run("srtcp-reordered", func(t *testing.T) {
		// Index 3 overtaking 1 and 2 breaks per-SSRC monotonicity for
		// the stragglers — the correct criterion-5 reading of a
		// reordered SRTCP stream.
		out := judgeSeq(t, permute(srtcp, []int{2, 0, 1}))
		if got := semanticsDriftOnly(t, out); got != 2 {
			t.Errorf("drifted verdicts = %d, want the 2 overtaken reports", got)
		}
	})
	t.Run("srtcp-duplicated", func(t *testing.T) {
		// Every second copy replays an already-seen index: duplication
		// drifts exactly one verdict per original message.
		out := judgeSeq(t, duplicate(srtcp))
		if got := semanticsDriftOnly(t, out); got != len(srtcp) {
			t.Errorf("drifted verdicts = %d, want %d (one per duplicate)", got, len(srtcp))
		}
	})
}

// --- QUIC family ---

func quicVector(t *testing.T) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12}
	payloads := [][]byte{
		quicwire.BuildLong(quicwire.TypeInitial, quicwire.Version1, dcid, scid, nil, make([]byte, 24)),
		quicwire.BuildLong(quicwire.TypeHandshake, quicwire.Version1, dcid, scid, nil, make([]byte, 20)),
		quicwire.BuildLong(quicwire.TypeHandshake, quicwire.Version1, dcid, scid, nil, make([]byte, 16)),
	}
	t.Run("in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, payloads))
	})
	t.Run("reordered", func(t *testing.T) {
		// Long headers carry their connection IDs, so consistency
		// checks are order-free.
		allCompliant(t, judgeSeq(t, permute(payloads, []int{2, 0, 1})))
	})
	t.Run("duplicated", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, duplicate(payloads)))
	})
}

// --- DTLS family ---

func dtlsVector(t *testing.T) {
	var random [32]byte
	for i := range random {
		random[i] = byte(7 * i)
	}
	ch := tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeHandshake, tlsinspect.VersionDTLS12, 0, 0,
		tlsinspect.BuildDTLSHandshake(tlsinspect.DTLSHandshakeClientHello, 0,
			tlsinspect.BuildDTLSClientHelloBody(random, nil)))
	sh := tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeHandshake, tlsinspect.VersionDTLS12, 0, 1,
		tlsinspect.BuildDTLSHandshake(tlsinspect.DTLSHandshakeServerHello, 0,
			tlsinspect.BuildDTLSServerHelloBody(random)))

	t.Run("in-order", func(t *testing.T) {
		allCompliant(t, judgeSeq(t, [][]byte{ch, sh}))
	})
	t.Run("reordered", func(t *testing.T) {
		// ServerHello overtaking the ClientHello is the handshake-
		// sequence drift case: the early record fails criterion 5, and
		// the flight recovers once the ClientHello lands.
		out := judgeSeq(t, [][]byte{sh, ch, sh})
		if got := semanticsDriftOnly(t, out); got != 1 {
			t.Errorf("drifted verdicts = %d, want exactly the early ServerHello", got)
		}
	})
	t.Run("duplicated", func(t *testing.T) {
		// Duplicated hellos are idempotent: handshake progress is a
		// latch, not a counter.
		allCompliant(t, judgeSeq(t, duplicate([][]byte{ch, sh})))
	})
}

// crit5Vectors maps every registered protocol family to its
// adverse-delivery vector. TestCrit5FamilyCoverage fails when a newly
// registered family has no entry, so criterion-5 behaviour under
// reordering and duplication is pinned as part of registering.
var crit5Vectors = map[proto.ID]crit5Vector{
	proto.STUN: {run: stunTURNVector},
	proto.RTP:  {run: rtpVector},
	proto.RTCP: {run: rtcpVector},
	proto.QUIC: {run: quicVector},
	proto.DTLS: {run: dtlsVector},
}

func TestCrit5FamilyCoverage(t *testing.T) {
	fams := proto.Default().Families()
	if len(fams) == 0 {
		t.Fatal("default registry has no families")
	}
	for _, fam := range fams {
		if _, ok := crit5Vectors[fam]; !ok {
			t.Errorf("family %v is registered but has no criterion-5 adverse-delivery vector", fam)
		}
	}
}

func TestCrit5UnderAdverseDelivery(t *testing.T) {
	for _, m := range proto.Default().Metas() {
		if m.ID != m.Family {
			continue // folded protocols are covered by their family vector
		}
		v, ok := crit5Vectors[m.Family]
		if !ok {
			continue // reported by TestCrit5FamilyCoverage
		}
		t.Run(m.Name, v.run)
	}
}
