package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// StreamInspector runs Algorithm 1 over the datagrams of one transport
// stream incrementally. Feed buffers the payload; Finalize runs pass 1
// (the registered probers' stream-level scans) as one batched sweep
// over everything buffered since the previous Finalize, then pass 2
// over the same chunk, and releases the payload references, so a
// caller that finalizes periodically never holds payload bytes past
// the DPI stage.
//
// Running pass 1 at the chunk boundary instead of per Feed changes no
// output: pass 2 of a chunk consults the validated-SSRC evidence as of
// the chunk's end, and whether that evidence was tallied datagram by
// datagram as each arrived or in one sweep over the buffered chunk,
// the sightings happen in the same stream order over the same bytes.
// What it changes is cost shape: the ingestion path does per-packet
// bookkeeping only, and the two scan passes run back to back over
// payloads that are still warm in cache.
//
// RTP is the one target protocol whose header pattern is weak (any
// version-2 first byte passes), so candidate extraction alone produces
// false positives inside proprietary headers and encrypted payloads.
// The paper's protocol-specific validation resolves this with
// cross-packet heuristics: "valid SSRC ... continuous sequence number
// within the same stream". The two-pass design implements that
// literally:
//
//   - Pass 1 runs every registered Pass1 prober at every
//     not-yet-consumed offset of every datagram: strong-signature
//     probers consume their span, weak-signature probers (the RTP
//     driver) tally per-SSRC validation evidence into the scan state;
//   - an SSRC is validated when it appears at least twice with at least
//     one sequence-continuous, timestamp-plausible adjacent pair;
//   - Pass 2 re-scans each datagram, accepting strongly-signatured
//     protocols immediately and RTP only for validated SSRCs in
//     sequence order.
//
// Because pass 2 of a datagram consults the validated-SSRC set, a
// single Finalize over the whole stream reproduces the batch
// InspectStream exactly; chunked finalization uses the set as known at
// each chunk boundary (the streaming analyzer's eviction path), which
// is identical unless an SSRC first validates only in a later chunk.
type StreamInspector struct {
	e   *Engine
	m   engineMetrics
	reg *proto.Registry
	// scan is the pass-1 state, persistent across Feeds: the probers'
	// scratch stream state plus the validated-SSRC evidence.
	scan *proto.ScanState
	// ctx is the pass-2 context, persistent across Finalize calls so a
	// resumed (fed-again) stream continues its sequence state.
	ctx *StreamContext
	// payloads buffers datagrams fed since the last Finalize. The
	// backing array is reused across chunks (references are cleared at
	// Finalize so released pool buffers are not pinned).
	payloads [][]byte
	// results is the reused Finalize output buffer; each Finalize
	// overwrites the previous chunk's results, which the pipeline has
	// consumed by then (DESIGN.md §14).
	results []Result
	// drainedAttempts tracks how many shift attempts have already been
	// recorded, so chunked Finalize calls add only the delta.
	drainedAttempts int
	// span, when non-nil, receives the stream's decision trace during
	// pass 2 (pass 1 only tallies evidence and produces no decisions).
	span *obs.Span
}

// SetSpan attaches a decision-trace span; pass 2 of every subsequent
// Finalize emits probe and extraction events into it. A nil span (the
// default) keeps inspection trace-free.
func (si *StreamInspector) SetSpan(sp *obs.Span) { si.span = sp }

// NewStreamInspector returns an inspector with empty per-stream state.
func (e *Engine) NewStreamInspector() *StreamInspector {
	return &StreamInspector{
		e:    e,
		m:    e.metricsHandles(),
		reg:  e.registry(),
		scan: proto.NewScanState(),
	}
}

// Feed buffers one datagram payload for the next Finalize. The payload
// is retained by reference until then; both scan passes run over the
// buffered chunk at Finalize.
func (si *StreamInspector) Feed(payload []byte) {
	si.payloads = append(si.payloads, payload)
}

// scanOne advances pass 1 over one buffered payload.
func (si *StreamInspector) scanOne(payload []byte) {
	limit := si.e.MaxOffset
	if limit <= 0 {
		limit = 200
	}
	i := 0
	for i < len(payload) && i <= limit {
		// Strong-signature probers consume their span so their
		// payloads (e.g. a ChannelData body) are not scanned here;
		// weak-signature probers tally evidence without consuming, so
		// candidate headers advance by one byte because they are not
		// yet trusted. The registry's first-byte table skips probers
		// whose wire format cannot start with this byte, and the
		// bitmap check settles no-prober bytes with a single load.
		if !si.reg.Pass1Possible(payload[i]) {
			i++
			continue
		}
		c := proto.Candidate{Payload: payload, Offset: i}
		consumed := 0
		probers := si.reg.Pass1ProbersFor(payload[i])
		for k := range probers {
			p := &probers[k]
			if c2, ok := p.Probe(c, si.scan); ok {
				consumed = c2.Length
				break
			}
		}
		if consumed > 0 {
			i += consumed
		} else {
			i++
		}
	}
}

// Pending reports how many fed datagrams await Finalize.
func (si *StreamInspector) Pending() int { return len(si.payloads) }

// Finalize runs pass 2 over the buffered datagrams with the
// validated-SSRC set as currently known, records the per-datagram
// metrics, releases the payload buffer, and returns one Result per
// buffered datagram in feed order. The inspector remains usable: later
// Feeds start a new chunk that continues the same stream state.
//
// The returned slice (and the message storage behind it) is a
// per-inspector scratch buffer, valid only until the next Finalize on
// the same inspector; the pipeline consumes each chunk's results
// before feeding the next (DESIGN.md §14).
func (si *StreamInspector) Finalize() []Result {
	if si.ctx == nil {
		si.ctx = NewStreamContext()
	}
	// A new epoch recycles the per-stream message and packet arenas:
	// everything extracted in the previous chunk has been consumed.
	si.ctx.State.Epoch++
	si.ctx.Span = si.span
	// Pass 1: one batched sweep over the chunk, tallying validation
	// evidence in feed order before any pass-2 decision is made.
	for _, p := range si.payloads {
		si.scanOne(p)
	}
	si.ctx.State.ValidatedSSRC = si.scan.ValidatedSSRC
	out := si.results[:0]
	for _, p := range si.payloads {
		start := si.m.latency.Start()
		r := si.e.Inspect(p, si.ctx)
		si.m.latency.ObserveSince(start)
		si.m.classes[r.Class].Inc()
		for _, msg := range r.Messages {
			if int(msg.Protocol) < len(si.m.messages) {
				si.m.messages[msg.Protocol].Inc()
			}
		}
		out = append(out, r)
	}
	si.m.attempts.Add(uint64(si.ctx.shiftAttempts - si.drainedAttempts))
	si.drainedAttempts = si.ctx.shiftAttempts
	// Drop the payload references (the buffers may return to a pool)
	// but keep the backing array for the next chunk.
	clear(si.payloads)
	si.payloads = si.payloads[:0]
	si.results = out
	return out
}

// InspectStream runs Algorithm 1 over all datagrams of one transport
// stream, in capture order, with full two-stage validation: a
// StreamInspector fed every payload and finalized once, which makes the
// batch and streaming paths the same code by construction.
//
// Single-datagram Inspect remains available for stateless use, but the
// pipeline always uses InspectStream or a StreamInspector.
func (e *Engine) InspectStream(payloads [][]byte) []Result {
	si := e.NewStreamInspector()
	for _, p := range payloads {
		si.Feed(p)
	}
	return si.Finalize()
}
