// Package protoall links every protocol driver into the default
// registry. Binaries and test packages blank-import it; engine packages
// (dpi, compliance, report, core) never do — they see protocols only
// through the registry they are handed, which is what keeps a protocol
// addition a leaf-package change.
package protoall

import (
	_ "github.com/rtc-compliance/rtcc/internal/proto/dtlsdrv"
	_ "github.com/rtc-compliance/rtcc/internal/proto/quicdrv"
	_ "github.com/rtc-compliance/rtcc/internal/proto/rtcpdrv"
	_ "github.com/rtc-compliance/rtcc/internal/proto/rtpdrv"
	_ "github.com/rtc-compliance/rtcc/internal/proto/stundrv"
)
