package dpi

import (
	"bytes"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// FuzzInspect checks the engine's structural invariants on arbitrary
// datagrams: no panics, non-overlapping in-bounds message spans, and
// classification consistency.
func FuzzInspect(f *testing.F) {
	f.Add([]byte{0x80, 0x60, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0xaa})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x21, 0x12, 0xa4, 0x42})

	// Corpus entries mirroring the proprietary-header shapes the appsim
	// emulators emit (§5.2/§5.3), so the fuzzer starts from the wire
	// formats the pipeline actually has to classify.
	media := (&rtp.Packet{PayloadType: 111, SequenceNumber: 7, Timestamp: 960, SSRC: 0x1000C01,
		Payload: bytes.Repeat([]byte{0x5a}, 64)}).Encode()
	// Zoom: direction byte, 0x10, constant 4-byte media ID, opaque SFU
	// words, media-section type (15 = audio RTP), opaque trailer, then
	// the RTP message.
	zoomHdr := []byte{0x00, 0x10, 0x01, 0x00, 0x0C, 0x01, 1, 3, 5, 7, 9, 11, 13, 15, 15, 2, 4, 6, 8, 10, 12, 14, 16}
	f.Add(append(append([]byte(nil), zoomHdr...), media...))
	// Zoom filler: a large datagram of one repeated byte (bandwidth
	// probing; fully proprietary).
	f.Add(bytes.Repeat([]byte{0xab}, 1000))
	// FaceTime: 0x6000 magic, 2-byte length of the remainder, opaque
	// bytes, then the wrapped RTP message (with an undefined extension
	// profile, as FaceTime sends).
	ftMedia := (&rtp.Packet{PayloadType: 104, SequenceNumber: 9, Timestamp: 1920, SSRC: 0xfeed,
		Extension: &rtp.Extension{Profile: 0x8001, Elements: []rtp.ExtensionElement{{ID: 1, Payload: []byte{1, 2}}}},
		Payload:   bytes.Repeat([]byte{0x33}, 48)}).Encode()
	ft := []byte{0x60, 0x00, byte((4 + len(ftMedia)) >> 8), byte(4 + len(ftMedia)), 0xaa, 0xbb, 0xcc, 0xdd}
	f.Add(append(ft, ftMedia...))
	// FaceTime cellular keepalive: 36 bytes starting 0xDEADBEEFCAFE with
	// two trailing 4-byte counters.
	ka := make([]byte, 36)
	copy(ka, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE})
	ka[31], ka[35] = 3, 7
	f.Add(ka)
	// Meet: relay video inside a TURN ChannelData frame.
	cd := append([]byte{0x40, 0x01, byte(len(media) >> 8), byte(len(media))}, media...)
	f.Add(cd)
	// Meet: SRTCP with only the 4-byte E-flag+index trailer, missing the
	// RFC 3711 auth tag (the paper's headline RTCP violation).
	sr := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 0x1000C01, Info: rtcp.SenderInfo{NTPTimestamp: 1}})
	f.Add(append(append([]byte(nil), sr...), 0x80, 0x00, 0x00, 0x2a))
	e := NewEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		res := e.Inspect(data, nil)
		end := 0
		for _, m := range res.Messages {
			if m.Offset < end || m.Length <= 0 || m.Offset+m.Length > len(data) {
				t.Fatalf("bad span %d+%d (prev end %d, len %d)", m.Offset, m.Length, end, len(data))
			}
			end = m.Offset + m.Length
		}
		switch res.Class {
		case ClassStandard:
			if len(res.Messages) == 0 || res.Messages[0].Offset != 0 {
				t.Fatal("standard class without offset-0 message")
			}
		case ClassFullyProprietary:
			if len(res.Messages) != 0 {
				t.Fatal("fully proprietary with messages")
			}
		}
		// The strict baseline must never find more than... anything; it
		// just must not panic.
		StrictEngine{}.Inspect(data)
	})
}
