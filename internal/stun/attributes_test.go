package stun

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestMappedAddressRoundTrip(t *testing.T) {
	cases := []netip.AddrPort{
		netip.MustParseAddrPort("192.0.2.1:3478"),
		netip.MustParseAddrPort("[2001:db8::42]:50000"),
		netip.MustParseAddrPort("10.0.0.255:1"),
	}
	for _, ap := range cases {
		v := EncodeMappedAddress(ap)
		got, err := DecodeMappedAddress(v)
		if err != nil {
			t.Fatalf("%v: %v", ap, err)
		}
		if got.Addr != ap.Addr().Unmap() || got.Port != ap.Port() {
			t.Errorf("round trip %v -> %v:%d", ap, got.Addr, got.Port)
		}
		wantFam := FamilyIPv4
		if ap.Addr().Is6() {
			wantFam = FamilyIPv6
		}
		if got.Family != wantFam {
			t.Errorf("%v family = %d", ap, got.Family)
		}
	}
}

func TestXORAddressRoundTrip(t *testing.T) {
	id := txid(0x42)
	cases := []netip.AddrPort{
		netip.MustParseAddrPort("203.0.113.9:49152"),
		netip.MustParseAddrPort("[2001:db8:1234::9]:65535"),
	}
	for _, ap := range cases {
		v := EncodeXORAddress(ap, id)
		got, err := DecodeXORAddress(v, id)
		if err != nil {
			t.Fatalf("%v: %v", ap, err)
		}
		if got.Addr != ap.Addr().Unmap() || got.Port != ap.Port() {
			t.Errorf("round trip %v -> %v:%d", ap, got.Addr, got.Port)
		}
	}
}

func TestXORAddressActuallyXORs(t *testing.T) {
	ap := netip.MustParseAddrPort("192.0.2.1:3478")
	v := EncodeXORAddress(ap, txid(0))
	plain := EncodeMappedAddress(ap)
	if bytes.Equal(v[4:8], plain[4:8]) {
		t.Error("XOR address equals plain address; no XOR applied")
	}
}

func TestDecodeAddressBadFamily(t *testing.T) {
	v := []byte{0x00, 0x00, 0x0d, 0x96, 192, 0, 2, 1}
	if _, err := DecodeMappedAddress(v); err == nil {
		t.Error("family 0x00 accepted")
	}
	got, _ := DecodeMappedAddress(v)
	if got.Family != 0x00 {
		t.Errorf("family should be reported even on error, got %d", got.Family)
	}
	if _, err := DecodeXORAddress(v, txid(0)); err == nil {
		t.Error("XOR family 0x00 accepted")
	}
}

func TestDecodeAddressTruncated(t *testing.T) {
	if _, err := DecodeMappedAddress([]byte{0, FamilyIPv4, 1}); err == nil {
		t.Error("truncated v4 accepted")
	}
	if _, err := DecodeXORAddress([]byte{0, FamilyIPv6, 0, 1, 2, 3}, txid(0)); err == nil {
		t.Error("truncated v6 accepted")
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	e := ErrorCode{Code: 438, Reason: "Stale Nonce"}
	got, err := DecodeErrorCode(EncodeErrorCode(e))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeErrorCode([]byte{1, 2}); err == nil {
		t.Error("short ERROR-CODE accepted")
	}
}

func TestChannelNumberRoundTrip(t *testing.T) {
	v := EncodeChannelNumber(0x4abc)
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
	ch, err := DecodeChannelNumber(v)
	if err != nil || ch != 0x4abc {
		t.Errorf("round trip = %#x, %v", ch, err)
	}
	if _, err := DecodeChannelNumber([]byte{0x40, 0x00}); err == nil {
		t.Error("2-byte CHANNEL-NUMBER accepted (FaceTime case must be detectable upstream)")
	}
}

func TestRequestedTransport(t *testing.T) {
	v := EncodeRequestedTransport(17)
	if !bytes.Equal(v, []byte{17, 0, 0, 0}) {
		t.Errorf("value = %v", v)
	}
}

func TestFingerprint(t *testing.T) {
	m := &Message{Type: TypeBindingRequest, TransactionID: txid(0x10)}
	m.Add(AttrSoftware, []byte("rtcc test agent"))
	AddFingerprint(m)
	got, err := Decode(m.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyFingerprint(got) {
		t.Error("fingerprint did not verify")
	}
	// Corrupt one payload byte: fingerprint must fail.
	bad := append([]byte{}, m.Raw...)
	bad[HeaderLen+5] ^= 0xff
	gotBad, err := Decode(bad)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyFingerprint(gotBad) {
		t.Error("fingerprint verified corrupted message")
	}
	// A message without a fingerprint cannot verify.
	m2 := &Message{Type: TypeBindingRequest}
	m2.Encode()
	if VerifyFingerprint(m2) {
		t.Error("verified message without fingerprint")
	}
}

func TestMessageIntegrity(t *testing.T) {
	key := []byte("secret-key")
	m := &Message{Type: TypeAllocateRequest, TransactionID: txid(0x33)}
	m.Add(AttrUsername, []byte("user"))
	AddMessageIntegrity(m, key)
	got, err := Decode(m.Raw)
	if err != nil {
		t.Fatal(err)
	}
	mi := got.Get(AttrMessageIntegrity)
	if mi == nil || len(mi.Value) != 20 {
		t.Fatal("MESSAGE-INTEGRITY missing or wrong length")
	}
	want := MessageIntegrity(got.Raw[:len(got.Raw)-24], key)
	if !bytes.Equal(mi.Value, want) {
		t.Error("MESSAGE-INTEGRITY value incorrect")
	}
}

// Property: XOR address decode(encode(x)) == x for random v4 addresses,
// ports, and transaction IDs.
func TestQuickXORAddressIdentity(t *testing.T) {
	f := func(a4 [4]byte, port uint16, id [12]byte) bool {
		ap := netip.AddrPortFrom(netip.AddrFrom4(a4), port)
		got, err := DecodeXORAddress(EncodeXORAddress(ap, id), id)
		return err == nil && got.Addr == ap.Addr() && got.Port == port
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryDefinedMessageTypes(t *testing.T) {
	defined := []MessageType{
		TypeBindingRequest, TypeBindingSuccess, TypeBindingError,
		TypeSharedSecretRequest, TypeAllocateRequest, TypeAllocateSuccess,
		TypeAllocateError, TypeRefreshRequest, TypeRefreshSuccess,
		TypeSendIndication, TypeDataIndication, TypeCreatePermissionReq,
		TypeChannelBindRequest, TypeChannelBindSuccess,
		MessageType(0x0200), MessageType(0x0300), // GOOG-PING
	}
	for _, mt := range defined {
		if _, ok := DefinedMessageType(mt); !ok {
			t.Errorf("%v should be defined", mt)
		}
	}
	undefined := []MessageType{0x0800, 0x0801, 0x0802, 0x0805, 0x0032}
	for _, mt := range undefined {
		if spec, ok := DefinedMessageType(mt); ok {
			t.Errorf("%v should be undefined, got %s", mt, spec)
		}
	}
}

func TestRegistryDefinedAttrs(t *testing.T) {
	if spec, ok := DefinedAttr(AttrXORMappedAddress); !ok || spec != SpecRFC5389 {
		t.Errorf("XOR-MAPPED-ADDRESS: %v %v", spec, ok)
	}
	for _, a := range []AttrType{0x4000, 0x4003, 0x4004, 0x8007, 0x8008, 0x0101, 0x0103} {
		if _, ok := DefinedAttr(a); ok {
			t.Errorf("%#04x should be undefined", uint16(a))
		}
	}
}

func TestAttrLenValid(t *testing.T) {
	cases := []struct {
		a    AttrType
		n    int
		want bool
	}{
		{AttrChannelNumber, 4, true},
		{AttrChannelNumber, 2, false},
		{AttrReservationToken, 8, true},
		{AttrReservationToken, 9, false},
		{AttrFingerprint, 4, true},
		{AttrMessageIntegrity, 20, true},
		{AttrMessageIntegrity, 16, false},
		{AttrUsername, 100, true},
		{AttrUsername, 600, false},
		{AttrData, 10000, true},         // unbounded
		{AttrType(0x4003), 1, true},     // unknown: no length rule
		{AttrAlternateServer, 8, true},  // v4 form
		{AttrAlternateServer, 20, true}, // v6 form
		{AttrAlternateServer, 21, false},
	}
	for _, tc := range cases {
		if got := AttrLenValid(tc.a, tc.n); got != tc.want {
			t.Errorf("AttrLenValid(%v, %d) = %v, want %v", tc.a, tc.n, got, tc.want)
		}
	}
}

func TestComprehensionRequired(t *testing.T) {
	if !ComprehensionRequired(AttrXORMappedAddress) {
		t.Error("0x0020 should be comprehension-required")
	}
	if ComprehensionRequired(AttrSoftware) {
		t.Error("0x8022 should be comprehension-optional")
	}
}

func TestDataIndicationAllowedSet(t *testing.T) {
	if !AllowedInDataIndication(AttrXORPeerAddress) || !AllowedInDataIndication(AttrData) {
		t.Error("core Data indication attributes rejected")
	}
	if AllowedInDataIndication(AttrChannelNumber) {
		t.Error("CHANNEL-NUMBER must not be allowed in Data indications (FaceTime case)")
	}
}

func TestRequestOnlyAttrs(t *testing.T) {
	if !RequestOnly(AttrPriority) || !RequestOnly(AttrUseCandidate) {
		t.Error("ICE request attributes should be request-only")
	}
	if RequestOnly(AttrXORMappedAddress) {
		t.Error("XOR-MAPPED-ADDRESS is not request-only")
	}
}

func TestAddressBearing(t *testing.T) {
	if !AddressBearing(AttrAlternateServer) {
		t.Error("ALTERNATE-SERVER carries an address")
	}
	if AddressBearing(AttrData) {
		t.Error("DATA does not carry an address")
	}
}
