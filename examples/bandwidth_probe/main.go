// Bandwidth probe detector: reproduce the paper's §5.3 analysis of
// Zoom's filler messages and FaceTime's cellular keepalives directly
// from captured bytes.
//
// Zoom transmits fully proprietary 1000-byte datagrams of one repeated
// byte in ramping bursts at stream start — almost certainly bandwidth
// probing. FaceTime sends fixed 36-byte 0xDEADBEEFCAFE datagrams at a
// steady 20 packets per second on cellular calls — almost certainly
// proprietary connectivity checks. This example extracts both patterns
// and prints their rate profiles over time.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
)

func main() {
	probeZoom()
	fmt.Println()
	probeFaceTime()
}

// rateProfile buckets matching packet timestamps into 500 ms bins and
// renders packets/second as an ASCII sparkline.
func rateProfile(times []time.Time, start time.Time, dur time.Duration) string {
	const bin = 500 * time.Millisecond
	bins := make([]int, int(dur/bin)+1)
	for _, ts := range times {
		i := int(ts.Sub(start) / bin)
		if i >= 0 && i < len(bins) {
			bins[i]++
		}
	}
	var b strings.Builder
	for _, n := range bins {
		pps := n * int(time.Second/bin)
		switch {
		case pps == 0:
			b.WriteByte('.')
		case pps < 20:
			b.WriteByte('-')
		case pps < 60:
			b.WriteByte('=')
		case pps < 150:
			b.WriteByte('#')
		default:
			b.WriteByte('@')
		}
	}
	return b.String()
}

func probeZoom() {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.Zoom, Network: rtcc.WiFiRelay, Seed: 11,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: 20 * time.Second, PrePost: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	var fillerTimes []time.Time
	fillerBytes := 0
	for _, ev := range cap.Events {
		if len(ev.Payload) < 800 {
			continue
		}
		uniform := true
		for _, x := range ev.Payload[1:] {
			if x != ev.Payload[0] {
				uniform = false
				break
			}
		}
		if uniform {
			fillerTimes = append(fillerTimes, ev.At)
			fillerBytes += len(ev.Payload)
		}
	}
	fmt.Printf("Zoom filler messages: %d datagrams, %d bytes (%.1f%% of call volume)\n",
		len(fillerTimes), fillerBytes, pct(fillerBytes, totalBytes(cap)))
	fmt.Printf("rate profile (500ms bins, . - = # @ ):\n  %s\n",
		rateProfile(fillerTimes, cap.CallStart, cap.Config.CallDuration))
	fmt.Println("  ^ the ramping burst at stream start is the §5.3 bandwidth probe")
}

func probeFaceTime() {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.FaceTime, Network: rtcc.Cellular, Seed: 11,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: 20 * time.Second, PrePost: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	magic := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE}
	var kaTimes []time.Time
	var lastC1 uint32
	monotonic := true
	for _, ev := range cap.Events {
		if len(ev.Payload) != 36 || !bytes.HasPrefix(ev.Payload, magic) {
			continue
		}
		kaTimes = append(kaTimes, ev.At)
		c1 := uint32(ev.Payload[28])<<24 | uint32(ev.Payload[29])<<16 | uint32(ev.Payload[30])<<8 | uint32(ev.Payload[31])
		if c1 <= lastC1 {
			monotonic = false
		}
		lastC1 = c1
	}
	rate := float64(len(kaTimes)) / cap.Config.CallDuration.Seconds()
	fmt.Printf("FaceTime cellular keepalives: %d datagrams at %.1f pkt/s (paper: 20 pkt/s)\n",
		len(kaTimes), rate)
	fmt.Printf("trailing counters strictly increasing: %v\n", monotonic)
	fmt.Printf("rate profile:\n  %s\n", rateProfile(kaTimes, cap.CallStart, cap.Config.CallDuration))
	fmt.Println("  ^ the flat line is the §5.3 proprietary connectivity check")
}

func totalBytes(cap *rtcc.Capture) int {
	n := 0
	for _, ev := range cap.Events {
		n += len(ev.Payload)
	}
	return n
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
