package cmdutil

import (
	"flag"
	"fmt"
	"sort"
	"strings"
)

// The flag helpers below register the knobs shared across the cmd/
// binaries — one canonical name, default, and help string per knob, so
// a new shared flag (or a wording fix) lands here once instead of in
// six main.go files. Binaries register only the helpers they support;
// the per-binary golden flag-surface tests pin the result.

// WorkersFlag registers -workers.
func WorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "analysis worker count (0 = one per CPU, 1 = serial)")
}

// ShardsFlag registers -shards.
func ShardsFlag(fs *flag.FlagSet) *int {
	return fs.Int("shards", 1, "ingest shard count (>1 spreads flows across N shards; identical output)")
}

// MetricsAddrFlag registers -metrics-addr.
func MetricsAddrFlag(fs *flag.FlagSet) *string {
	return fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
}

// TraceOutFlag registers -trace-out. note, when non-empty, extends the
// help text with a binary-specific requirement.
func TraceOutFlag(fs *flag.FlagSet, note string) *string {
	usage := "export the decision trace as JSONL (one event per line) to this file"
	if note != "" {
		usage += " " + note
	}
	return fs.String("trace-out", "", usage)
}

// VersionFlag registers -version.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and exit")
}

// ConfigFlag registers -config, the declarative pipeline config file.
func ConfigFlag(fs *flag.FlagSet) *string {
	return fs.String("config", "", "pipeline config file (JSON or YAML); explicitly-set flags override its keys")
}

// Explicit reports which flags were set on the command line — the
// predicate behind defaults < config file < explicit flags precedence.
// Call after fs.Parse.
func Explicit(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// FlagSurface renders the flag set as one "name\tdefault\tusage" line
// per flag, sorted by name — the stable text the golden surface tests
// compare, so an accidental rename, default change, or deletion fails
// a test instead of breaking users.
func FlagSurface(fs *flag.FlagSet) string {
	var lines []string
	fs.VisitAll(func(f *flag.Flag) {
		lines = append(lines, fmt.Sprintf("%s\t%q\t%s", f.Name, f.DefValue, f.Usage))
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
