// Package bytesutil provides bounds-checked big-endian readers and
// writers used by every wire codec in this repository.
//
// The protocols analyzed here (STUN, TURN, RTP, RTCP, QUIC, TLS) are all
// big-endian on the wire, and nearly every parsing bug in a DPI engine is
// an unchecked read past the end of a truncated datagram. Reader
// centralizes the bounds checks so codecs can be written as straight-line
// field reads and inspect a single error at the end.
package bytesutil

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned (wrapped) whenever a read would pass the end
// of the input or a write would pass the end of a fixed-size output.
var ErrShortBuffer = errors.New("bytesutil: short buffer")

// Reader is a bounds-checked cursor over a byte slice. All multi-byte
// reads are big-endian (network order). The first failed read latches an
// error; subsequent reads return zero values so callers can issue a whole
// sequence of reads and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
	// short* record the first failed read; the detailed error is built
	// lazily in Err, so DPI probe paths — which fail constantly and
	// discard the error — never pay for its construction.
	short     bool
	shortNeed int
	shortOff  int
}

// NewReader returns a Reader positioned at the start of buf. The Reader
// does not copy buf; callers must not mutate it during reading.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err reports the first error encountered by any read, or nil.
func (r *Reader) Err() error {
	if r.err == nil && r.short {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortBuffer, r.shortNeed, r.shortOff, len(r.buf))
	}
	return r.err
}

// Failed reports whether any read has failed, without constructing the
// detailed error Err returns. Probe-style callers that only branch on
// failure should prefer it.
func (r *Reader) Failed() bool { return r.err != nil || r.short }

// Offset reports the current cursor position in bytes from the start.
func (r *Reader) Offset() int { return r.off }

// Remaining reports how many unread bytes are left.
func (r *Reader) Remaining() int {
	if r.off >= len(r.buf) {
		return 0
	}
	return len(r.buf) - r.off
}

// Len reports the total length of the underlying buffer.
func (r *Reader) Len() int { return len(r.buf) }

func (r *Reader) fail(n int) {
	if r.err == nil && !r.short {
		r.short, r.shortNeed, r.shortOff = true, n, r.off
	}
}

func (r *Reader) take(n int) []byte {
	if r.Failed() {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint16 reads a big-endian 16-bit value.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint24 reads a big-endian 24-bit value into the low bits of a uint32.
func (r *Reader) Uint24() uint32 {
	b := r.take(3)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}

// Uint32 reads a big-endian 32-bit value.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian 64-bit value.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes reads n bytes and returns them as a sub-slice of the input
// (no copy). Returns nil after an error.
func (r *Reader) Bytes(n int) []byte { return r.take(n) }

// BytesCopy reads n bytes and returns a fresh copy, safe to retain.
func (r *Reader) BytesCopy(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Skip advances the cursor n bytes.
func (r *Reader) Skip(n int) { r.take(n) }

// Peek returns n bytes at the cursor without advancing. It does not latch
// an error; it returns nil if fewer than n bytes remain.
func (r *Reader) Peek(n int) []byte {
	if r.Failed() || n < 0 || r.Remaining() < n {
		return nil
	}
	return r.buf[r.off : r.off+n]
}

// Rest returns all unread bytes without advancing the cursor.
func (r *Reader) Rest() []byte {
	if r.Failed() {
		return nil
	}
	return r.buf[r.off:]
}

// Writer builds a byte slice with big-endian multi-byte values. It grows
// as needed and never errors.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity hint n.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated buffer. The Writer retains ownership;
// further writes may reallocate, so callers should not write after Bytes
// unless they re-fetch it.
func (w *Writer) Bytes() []byte { return w.buf }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 appends a big-endian 16-bit value.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// Uint24 appends the low 24 bits of v big-endian.
func (w *Writer) Uint24(v uint32) {
	w.buf = append(w.buf, byte(v>>16), byte(v>>8), byte(v))
}

// Uint32 appends a big-endian 32-bit value.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a big-endian 64-bit value.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Write appends b.
func (w *Writer) Write(b []byte) { w.buf = append(w.buf, b...) }

// Zero appends n zero bytes.
func (w *Writer) Zero(n int) {
	w.buf = append(w.buf, make([]byte, n)...)
}

// SetUint16 overwrites a big-endian 16-bit value at offset off, which
// must already be within the written region.
func (w *Writer) SetUint16(off int, v uint16) {
	binary.BigEndian.PutUint16(w.buf[off:], v)
}

// SetUint32 overwrites a big-endian 32-bit value at offset off.
func (w *Writer) SetUint32(off int, v uint32) {
	binary.BigEndian.PutUint32(w.buf[off:], v)
}

// Pad appends zero bytes until the length is a multiple of align.
// align must be a power of two greater than zero.
func (w *Writer) Pad(align int) {
	for len(w.buf)%align != 0 {
		w.buf = append(w.buf, 0)
	}
}
