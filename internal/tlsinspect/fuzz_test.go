package tlsinspect

import "testing"

// FuzzSNI checks panic-freedom of the ClientHello walker.
func FuzzSNI(f *testing.F) {
	f.Add(BuildClientHello("example.com", [32]byte{}))
	f.Add([]byte{22, 3, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, err := SNI(data)
		if err == nil && len(name) > len(data) {
			t.Fatal("sni longer than input")
		}
	})
}
