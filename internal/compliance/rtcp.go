package compliance

import (
	"encoding/binary"
	"strconv"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
)

// trailerKind classifies the bytes following an RTCP compound region.
type trailerKind int

const (
	trailerNone trailerKind = iota
	// trailerSRTCP is a full RFC 3711 trailer: 4-byte E-flag+index plus
	// the 10-byte authentication tag.
	trailerSRTCP
	// trailerSRTCPNoAuth is the E-flag+index alone — the Google Meet
	// relay-mode violation (RFC 3711 requires the auth tag).
	trailerSRTCPNoAuth
	// trailerUnknown is anything else (Discord's counter+direction
	// bytes).
	trailerUnknown
)

func classifyTrailer(trailing []byte) trailerKind {
	switch len(trailing) {
	case 0:
		return trailerNone
	case srtp.SRTCPIndexLen:
		return trailerSRTCPNoAuth
	case srtp.SRTCPIndexLen + srtp.AuthTagLen:
		return trailerSRTCP
	default:
		return trailerUnknown
	}
}

// checkRTCP applies the five criteria to each RTCP packet in a compound
// region. Encrypted (SRTCP) regions skip body-content checks — the
// paper can only judge what is in the clear — and are judged on header
// and trailer structure.
func (s *Session) checkRTCP(m dpi.Message, ts time.Time) []Checked {
	kind := classifyTrailer(m.RTCPTrailing)
	encrypted := kind != trailerNone
	out := make([]Checked, 0, len(m.RTCP))
	for _, p := range m.RTCP {
		c := Checked{
			Protocol:  dpi.ProtoRTCP,
			Type:      TypeKey{Protocol: dpi.ProtoRTCP, Label: strconv.Itoa(int(p.Header.Type))},
			Bytes:     p.Header.ByteLen(),
			Timestamp: ts,
		}
		c.Verdict = s.rtcpVerdict(p, kind, encrypted, m.RTCPTrailing)
		out = append(out, c)
	}
	// Spread the trailer bytes across the region's packets for volume
	// accounting.
	if len(out) > 0 {
		out[len(out)-1].Bytes += len(m.RTCPTrailing)
	}
	return out
}

func (s *Session) rtcpVerdict(p *rtcp.Packet, kind trailerKind, encrypted bool, trailing []byte) Verdict {
	// Criterion 1: packet type must be assigned.
	if !rtcp.Defined(p.Header.Type) {
		return fail(CritMessageType, "RTCP packet type %d is not assigned", uint8(p.Header.Type))
	}

	// Criterion 2: header fields. Version 2 is guaranteed structurally;
	// the count field must be consistent with the body for plaintext
	// packets.
	if !encrypted && !p.ParseOK {
		return fail(CritHeader, "%v body does not match its count/length fields", p.Header.Type)
	}

	// Criteria 3 and 4 for plaintext bodies: item and block types.
	if !encrypted {
		if v := rtcpBodyChecks(p); !v.Compliant {
			return v
		}
	}

	// Criterion 5: trailer structure and SRTCP index behaviour.
	switch kind {
	case trailerUnknown:
		// The Discord case: a proprietary counter/direction trailer is
		// not part of any RTCP or SRTCP specification.
		return fail(CritSemantics, "%v followed by undefined trailing bytes (not an SRTCP trailer)", p.Header.Type)
	case trailerSRTCPNoAuth:
		// The Google Meet relay-mode case.
		return fail(CritSemantics, "SRTCP message carries E-flag and index but no authentication tag (RFC 3711 requires one)")
	case trailerSRTCP:
		// Verify the E-flag/index word and per-SSRC index monotonicity.
		// The E-flag may legitimately be clear (authenticated-only
		// SRTCP), so only the index is validated.
		_, index, okk := srtcpIndexWord(trailing)
		if !okk {
			return fail(CritSemantics, "SRTCP trailer too short for index word")
		}
		if ssrc, has := p.SenderSSRC(); has {
			if last, seen := s.srtcpLastIx[ssrc]; seen && index <= last {
				return fail(CritSemantics, "SRTCP index %d does not increase (last %d) for SSRC %#x", index, last, ssrc)
			}
			s.srtcpLastIx[ssrc] = index
		}
	}
	return ok()
}

// rtcpBodyChecks validates plaintext type-specific contents: SDES item
// types, XR block types, feedback FMT values, and cross-validates
// feedback SSRCs against observed RTP streams.
func rtcpBodyChecks(p *rtcp.Packet) Verdict {
	switch p.Header.Type {
	case rtcp.TypeSDES:
		for _, ch := range p.SDES.Chunks {
			for _, it := range ch.Items {
				if it.Type > rtcp.SDESPriv {
					return fail(CritAttrType, "SDES item type %d is not assigned", it.Type)
				}
			}
		}
	case rtcp.TypeXR:
		for _, blk := range p.XR.Blocks {
			// RFC 3611 blocks 1-7 plus widely registered 8-14.
			if blk.BlockType == 0 || blk.BlockType > 14 {
				return fail(CritAttrType, "XR block type %d is not assigned", blk.BlockType)
			}
		}
	case rtcp.TypeRTPFB:
		switch p.FB.FMT {
		case rtcp.FBNack, 3, 4, 5, 8, rtcp.FBTWCC:
		default:
			return fail(CritAttrType, "RTPFB FMT %d is not assigned", p.FB.FMT)
		}
		// Criterion 4 for feedback: the FCI must parse per its format.
		switch p.FB.FMT {
		case rtcp.FBNack:
			if _, err := rtcp.DecodeNackFCI(p.FB.FCI); err != nil {
				return fail(CritAttrValue, "Generic NACK FCI malformed: %v", err)
			}
		case rtcp.FBTWCC:
			if _, err := rtcp.DecodeTWCCFCI(p.FB.FCI); err != nil {
				return fail(CritAttrValue, "transport-wide feedback FCI malformed: %v", err)
			}
		}
	case rtcp.TypePSFB:
		switch p.FB.FMT {
		case rtcp.FBPLI, rtcp.FBSLI, rtcp.FBRPSI, rtcp.FBFIR, 5, 6, rtcp.FBAFB:
		default:
			return fail(CritAttrType, "PSFB FMT %d is not assigned", p.FB.FMT)
		}
		switch p.FB.FMT {
		case rtcp.FBPLI:
			// RFC 4585 §6.3.1: PLI carries no FCI.
			if len(p.FB.FCI) != 0 {
				return fail(CritAttrValue, "PLI carries %d FCI bytes; RFC 4585 defines none", len(p.FB.FCI))
			}
		case rtcp.FBFIR:
			// RFC 5104 §4.3.1: FIR entries are 8 bytes each.
			if len(p.FB.FCI) == 0 || len(p.FB.FCI)%8 != 0 {
				return fail(CritAttrValue, "FIR FCI length %d is not a multiple of 8", len(p.FB.FCI))
			}
		case rtcp.FBAFB:
			// Application layer feedback: when it carries the REMB
			// identifier, the REMB structure must hold.
			if len(p.FB.FCI) >= 4 && string(p.FB.FCI[:4]) == "REMB" {
				if _, err := rtcp.DecodeREMBFCI(p.FB.FCI); err != nil {
					return fail(CritAttrValue, "REMB FCI malformed: %v", err)
				}
			}
		}
	case rtcp.TypeSenderReport:
		if p.SR.Info.NTPTimestamp == 0 {
			return fail(CritAttrValue, "sender report carries a zero NTP timestamp")
		}
	}
	return ok()
}

// srtcpIndexWord extracts the E-flag and index from an SRTCP trailer.
func srtcpIndexWord(trailing []byte) (eflag bool, index uint32, ok bool) {
	if len(trailing) < srtp.SRTCPIndexLen {
		return false, 0, false
	}
	w := binary.BigEndian.Uint32(trailing[:4])
	return w&(1<<31) != 0, w & 0x7fffffff, true
}
