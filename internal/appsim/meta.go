package appsim

import (
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// WhatsApp and Messenger share Meta's WebRTC-derived stack and most of
// the paper's observed deviations (§5.2.1):
//
//   - undefined STUN message types 0x0800-0x0805: sixteen consecutive
//     0x0801 (500-byte, attribute 0x4004 of zeros) / 0x0802 (40-byte)
//     pairs within ~2.2 ms before the callee joins, sharing transaction
//     IDs, both carrying attribute 0x4003 = 0xFF;
//   - 0x0800 messages at call termination (4 for WhatsApp, 6 for
//     Messenger) carrying undefined attribute 0x4000 plus the standard
//     XOR-RELAYED-ADDRESS;
//   - undefined attributes in Binding and Allocate exchanges that make
//     0x0003, 0x0101, 0x0103 (and Messenger's 0x0001) non-compliant;
//   - compliant RTP (five payload types each) and compliant RTCP;
//   - on cellular, relay for the first 30 seconds then P2P.
type metaProfile struct {
	app               App
	burstPairs        int
	teardown0800      int
	extraUndefTypes   []stun.MessageType // WhatsApp's 0x0803-0x0805
	bindingReqUndef   bool               // Messenger: undefined attr in 0x0001
	rtpPayloads       []uint8
	rtcpEvery         int // emit RTCP once per this many media packets
	rtcpTypes         []rtcp.PacketType
	fullTURNLifecycle bool // Messenger exercises the whole TURN suite
	propEvery         int  // fully proprietary datagram cadence
}

var whatsAppProfile = metaProfile{
	app:             WhatsApp,
	burstPairs:      16,
	teardown0800:    4,
	extraUndefTypes: []stun.MessageType{0x0803, 0x0804, 0x0805},
	rtpPayloads:     []uint8{97, 103, 105, 106, 120},
	rtcpEvery:       97, // ≈1.0% of messages (coprime to stream count)
	rtcpTypes:       []rtcp.PacketType{rtcp.TypeSenderReport, rtcp.TypeSDES, rtcp.TypeRTPFB, rtcp.TypePSFB},
	propEvery:       250, // ≈0.4%
}

var messengerProfile = metaProfile{
	app:               Messenger,
	burstPairs:        16,
	teardown0800:      6,
	bindingReqUndef:   true,
	rtpPayloads:       []uint8{97, 98, 101, 126, 127},
	rtcpEvery:         9, // ≈9.9% of messages
	rtcpTypes:         []rtcp.PacketType{rtcp.TypeSenderReport, rtcp.TypeReceiverReport, rtcp.TypeRTPFB, rtcp.TypePSFB},
	fullTURNLifecycle: true,
	propEvery:         77, // ≈1.3%
}

func generateWhatsApp(e *env)  { generateMeta(e, whatsAppProfile) }
func generateMessenger(e *env) { generateMeta(e, messengerProfile) }

// switchPoint returns when a relay→P2P call flips to the direct path.
func switchPoint(cfg CallConfig) time.Duration {
	sw := 30 * time.Second
	if cfg.Duration < 2*sw {
		sw = cfg.Duration / 3
	}
	return sw
}

func generateMeta(e *env, p metaProfile) {
	cfg := e.cfg
	caller := netip.AddrPortFrom(e.callerLocal, 50020)
	callee := netip.AddrPortFrom(e.calleeAddr, 50022)
	server := netip.AddrPortFrom(e.serverAddr, 3478)
	end := cfg.Start.Add(cfg.Duration)

	// Determine the relay window.
	var relayUntil time.Time
	switch e.mode {
	case ModeRelay:
		relayUntil = end
	case ModeRelayThenP2P:
		relayUntil = cfg.Start.Add(switchPoint(cfg))
	default:
		relayUntil = cfg.Start // pure P2P
	}

	// --- Call setup STUN. ---
	setup := cfg.Start.Add(50 * time.Millisecond)

	// Compliant Binding Request; Messenger adds an undefined attribute.
	bindTx := e.rng.TxID()
	bind := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: bindTx}
	bind.Add(stun.AttrUsername, []byte("caller:callee"))
	bind.Add(stun.AttrPriority, []byte{0x6e, 0, 0x1e, 0xff})
	bind.Add(stun.AttrICEControlling, e.rng.Bytes(8))
	if p.bindingReqUndef {
		bind.Add(stun.AttrType(0x4005), e.rng.Bytes(4))
	}
	stun.AddFingerprint(bind)
	e.push(setup, caller, server, bind.Encode())

	// Binding Success Response with an undefined attribute (both apps'
	// 0x0101 is non-compliant).
	bresp := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: bindTx}
	bresp.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 40020), bindTx))
	bresp.Add(stun.AttrType(0x4002), e.rng.Bytes(12))
	e.push(setup.Add(25*time.Millisecond), server, caller, bresp.Encode())

	// Allocate Request with an undefined attribute; Success likewise.
	allocTx := e.rng.TxID()
	alloc := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: allocTx}
	alloc.Add(stun.AttrRequestedTranspt, stun.EncodeRequestedTransport(17))
	alloc.Add(stun.AttrType(0x4001), e.rng.Bytes(8))
	e.push(setup.Add(40*time.Millisecond), caller, server, alloc.Encode())

	relayed := e.relay.Allocate(netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 40020))
	aresp := &stun.Message{Type: stun.TypeAllocateSuccess, TransactionID: allocTx}
	aresp.Add(stun.AttrXORRelayedAddress, stun.EncodeXORAddress(relayed, allocTx))
	aresp.Add(stun.AttrLifetime, []byte{0, 0, 2, 0x58})
	aresp.Add(stun.AttrType(0x4002), e.rng.Bytes(12))
	e.push(setup.Add(70*time.Millisecond), server, caller, aresp.Encode())

	// Messenger exercises the full compliant TURN lifecycle on top.
	if p.fullTURNLifecycle {
		creds := ice.TURNCredentials{Username: "msgr", Realm: "facebook.com", Nonce: "n0nce", Password: "pw"}
		at := setup.Add(100 * time.Millisecond)
		seq := ice.TURNAllocation(e.rng, creds, relayed,
			netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 40020),
			callee, 0x4000)
		// Skip the Allocate pieces (already emitted, non-compliantly);
		// keep Refresh/CreatePermission/ChannelBind/etc.
		for _, ex := range seq[4:] {
			src, dst := caller, server
			if !ex.FromClient {
				src, dst = server, caller
			}
			e.push(at, src, dst, ex.Msg.Encode())
			at = at.Add(20 * time.Millisecond)
		}
		// A Refresh pair, a CreatePermission stale-nonce error (0x0118),
		// an Allocate error (0x0113), and Send/Data indications.
		for _, ex := range ice.RefreshExchange(e.rng, creds) {
			src, dst := caller, server
			if !ex.FromClient {
				src, dst = server, caller
			}
			e.push(at, src, dst, ex.Msg.Encode())
			at = at.Add(20 * time.Millisecond)
		}
		permErr := &stun.Message{Type: stun.TypeCreatePermissionErr, TransactionID: e.rng.TxID()}
		permErr.Add(stun.AttrErrorCode, stun.EncodeErrorCode(stun.ErrorCode{Code: 438, Reason: "Stale Nonce"}))
		permErr.Add(stun.AttrNonce, []byte("fresh-nonce"))
		e.push(at, server, caller, permErr.Encode())
		at = at.Add(20 * time.Millisecond)
		allocErr := &stun.Message{Type: stun.TypeAllocateError, TransactionID: e.rng.TxID()}
		allocErr.Add(stun.AttrErrorCode, stun.EncodeErrorCode(stun.ErrorCode{Code: 437, Reason: "Allocation Mismatch"}))
		e.push(at, server, caller, allocErr.Encode())
		at = at.Add(20 * time.Millisecond)
		si := ice.SendIndication(e.rng, callee, e.rng.Bytes(48))
		e.push(at, caller, server, si.Encode())
		di := ice.DataIndication(e.rng, callee, e.rng.Bytes(48), nil)
		e.push(at.Add(15*time.Millisecond), server, caller, di.Encode())
		// Compliant ChannelData on the bound channel.
		for i := 0; i < 4; i++ {
			cd := &stun.ChannelData{ChannelNumber: 0x4000, Data: e.rng.Bytes(120)}
			e.push(at.Add(time.Duration(30+i*10)*time.Millisecond), caller, server, cd.Encode())
		}
	}

	// --- Periodic connectivity checks through the call. For WhatsApp
	// these Binding Requests are its one compliant STUN type and its
	// dominant STUN volume; responses (0x0101, non-compliant for both
	// apps) come back only occasionally. ---
	checks := int(cfg.Duration / (500 * time.Millisecond))
	if checks < 4 {
		checks = 4
	}
	for i := 0; i < checks; i++ {
		ts := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(checks+1))
		req := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: e.rng.TxID()}
		req.Add(stun.AttrUsername, []byte("caller:callee"))
		req.Add(stun.AttrPriority, []byte{0x6e, 0, 0x1e, 0xff})
		if p.bindingReqUndef {
			req.Add(stun.AttrType(0x4005), e.rng.Bytes(4))
		}
		stun.AddFingerprint(req)
		e.push(ts, caller, server, req.Encode())
		if i%4 == 0 {
			resp := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: req.TransactionID}
			resp.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 40020), req.TransactionID))
			resp.Add(stun.AttrType(0x4002), e.rng.Bytes(12))
			e.push(ts.Add(15*time.Millisecond), server, caller, resp.Encode())
		}
	}

	// --- The 0x0801/0x0802 burst before the callee joins (§5.2.1). ---
	burstAt := cfg.Start.Add(300 * time.Millisecond)
	for i := 0; i < p.burstPairs; i++ {
		tx := e.rng.TxID()
		m801 := &stun.Message{Type: stun.MessageType(0x0801), TransactionID: tx}
		m801.Add(stun.AttrType(0x4003), []byte{0xff})
		// Pad the message to exactly 500 bytes with the zero-filled
		// 0x4004 attribute: 20 header + 8 (0x4003 TLV) + 4 = 468 value.
		m801.Add(stun.AttrType(0x4004), make([]byte, 468))
		raw := m801.Encode()
		e.push(burstAt, caller, server, raw)

		m802 := &stun.Message{Type: stun.MessageType(0x0802), TransactionID: tx}
		m802.Add(stun.AttrType(0x4003), []byte{0xff})
		// 40 bytes total: 20 header + 8 + a 12-byte filler attribute.
		m802.Add(stun.AttrType(0x4003), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
		e.push(burstAt.Add(70*time.Microsecond), server, caller, m802.Encode())
		burstAt = burstAt.Add(140 * time.Microsecond) // ~2.2 ms total
	}

	// WhatsApp's other undefined types 0x0803-0x0805.
	for i, t := range p.extraUndefTypes {
		m := &stun.Message{Type: t, TransactionID: e.rng.TxID()}
		m.Add(stun.AttrType(0x4003), []byte{0xff})
		at := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(len(p.extraUndefTypes)+1))
		e.push(at, caller, server, m.Encode())
	}

	// --- Media. ---
	streams := []struct {
		ms  *mediaStream
		out bool
	}{
		{newMediaStream(e.rng, e.rng.Uint32(), p.rtpPayloads[0], 960), true},
		{newMediaStream(e.rng, e.rng.Uint32(), p.rtpPayloads[0], 3000), true},
		{newMediaStream(e.rng, e.rng.Uint32(), p.rtpPayloads[0], 960), false},
		{newMediaStream(e.rng, e.rng.Uint32(), p.rtpPayloads[0], 3000), false},
	}
	rate := cfg.rate()
	interval := time.Second / time.Duration(rate)
	tick := 0
	ptIdx := 0
	rtcpIdx := 0
	for at := cfg.Start.Add(400 * time.Millisecond); at.Before(end); at = at.Add(interval) {
		relayNow := at.Before(relayUntil)
		peer := callee
		if relayNow {
			peer = server
		}
		for i := range streams {
			st := &streams[i]
			tick++
			src, dst := caller, peer
			if !st.out {
				src, dst = peer, caller
			}
			if tick%p.rtcpEvery == 0 {
				payload := metaRTCP(e, p, &rtcpIdx, st.ms, at, tick)
				e.push(at.Add(e.jitter(3)), src, dst, payload)
				continue
			}
			st.ms.pt = p.rtpPayloads[ptIdx%len(p.rtpPayloads)]
			ptIdx++
			size := 90
			video := i%2 == 1
			if video {
				size = e.mediaSize(at, true, 500+e.rng.IntN(500))
			}
			e.push(e.mediaAt(at, video, 3), src, dst, st.ms.next(size, nil, false).Encode())

			if tick%p.propEvery == 0 {
				e.push(at.Add(e.jitter(4)), src, dst, append([]byte{0x2f, 0x01}, e.rng.Bytes(30)...))
			}
		}
	}

	// --- Teardown: undefined 0x0800 messages to the TURN servers. ---
	for i := 0; i < p.teardown0800; i++ {
		m := &stun.Message{Type: stun.MessageType(0x0800), TransactionID: e.rng.TxID()}
		m.Add(stun.AttrType(0x4000), e.rng.Bytes(4))
		m.Add(stun.AttrXORRelayedAddress, stun.EncodeXORAddress(netip.AddrPortFrom(e.serverAddr, 49152), m.TransactionID))
		at := end.Add(-time.Duration(p.teardown0800-i) * 30 * time.Millisecond)
		e.push(at, caller, server, m.Encode())
	}
}

// twccFCI builds a small valid transport-wide congestion control
// feedback FCI reflecting the stream's recent packets.
func twccFCI(e *env, ms *mediaStream) []byte {
	n := 4 + e.rng.IntN(12)
	fb := rtcp.TWCCFeedback{
		BaseSequence:    ms.seq - uint16(n),
		PacketCount:     uint16(n),
		ReferenceTimeMS: 64 * int64(e.rng.IntN(1000)),
		FeedbackCount:   uint8(e.rng.IntN(256)),
	}
	for i := 0; i < n; i++ {
		if e.rng.IntN(20) == 0 {
			fb.Statuses = append(fb.Statuses, rtcp.TWCCNotReceived)
			continue
		}
		fb.Statuses = append(fb.Statuses, rtcp.TWCCSmallDelta)
		fb.DeltasUS = append(fb.DeltasUS, 250*int64(e.rng.IntN(80)))
	}
	fci, err := rtcp.EncodeTWCCFCI(fb)
	if err != nil {
		panic("appsim: twcc: " + err.Error())
	}
	return fci
}

// metaRTCP builds a compliant plaintext RTCP compound, cycling through
// the profile's observed packet types.
func metaRTCP(e *env, p metaProfile, idx *int, ms *mediaStream, at time.Time, tick int) []byte {
	t := p.rtcpTypes[*idx%len(p.rtcpTypes)]
	*idx++
	switch t {
	case rtcp.TypeSenderReport:
		sr := rtcp.EncodeSR(&rtcp.SenderReport{
			SSRC: ms.ssrc,
			Info: rtcp.SenderInfo{NTPTimestamp: ntpTime(at), RTPTimestamp: ms.ts, PacketCount: uint32(tick), OctetCount: uint32(tick) * 400},
		})
		// Only compound with SDES when the app's observed type set
		// includes it (WhatsApp shows 202, Messenger does not).
		for _, rt := range p.rtcpTypes {
			if rt == rtcp.TypeSDES {
				sdes := rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: ms.ssrc, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "meta@rtc"}}}}})
				return rtcp.Compound(sr, sdes)
			}
		}
		return sr
	case rtcp.TypeReceiverReport:
		return rtcp.EncodeRR(&rtcp.ReceiverReport{SSRC: ms.ssrc, Reports: []rtcp.ReportBlock{{SSRC: ms.ssrc + 1, HighestSeq: uint32(ms.seq), Jitter: 20}}})
	case rtcp.TypeSDES:
		return rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: ms.ssrc, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "meta@rtc"}}}}})
	case rtcp.TypeRTPFB:
		return rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{
			FMT: rtcp.FBTWCC, SenderSSRC: ms.ssrc, MediaSSRC: ms.ssrc + 1,
			FCI: twccFCI(e, ms),
		})
	default: // PSFB: alternate PLI and REMB
		if *idx%2 == 0 {
			return rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBPLI, SenderSSRC: ms.ssrc, MediaSSRC: ms.ssrc + 1})
		}
		fci, err := rtcp.EncodeREMBFCI(rtcp.REMB{BitrateBPS: 800_000 + uint64(e.rng.IntN(2_000_000)), SSRCs: []uint32{ms.ssrc + 1}})
		if err != nil {
			panic("appsim: remb: " + err.Error())
		}
		return rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBAFB, SenderSSRC: ms.ssrc, MediaSSRC: 0, FCI: fci})
	}
}
