package stun

import (
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// Address families in (XOR-)address attributes (RFC 8489 §14.1).
const (
	FamilyIPv4 uint8 = 0x01
	FamilyIPv6 uint8 = 0x02
)

// AddrPort pairs an IP address and port, decoded from an address-bearing
// attribute.
type AddrPort struct {
	Family uint8
	Addr   netip.Addr
	Port   uint16
}

// EncodeMappedAddress encodes a plain (non-XOR) address attribute value.
func EncodeMappedAddress(ap netip.AddrPort) []byte {
	addr := ap.Addr().Unmap()
	w := bytesutil.NewWriter(20)
	w.Uint8(0)
	if addr.Is4() {
		w.Uint8(FamilyIPv4)
		w.Uint16(ap.Port())
		a4 := addr.As4()
		w.Write(a4[:])
	} else {
		w.Uint8(FamilyIPv6)
		w.Uint16(ap.Port())
		a16 := addr.As16()
		w.Write(a16[:])
	}
	return w.Bytes()
}

// DecodeMappedAddress decodes a plain address attribute value.
func DecodeMappedAddress(v []byte) (AddrPort, error) {
	r := bytesutil.NewReader(v)
	r.Skip(1)
	fam := r.Uint8()
	port := r.Uint16()
	var addr netip.Addr
	switch fam {
	case FamilyIPv4:
		b := r.Bytes(4)
		if b != nil {
			addr = netip.AddrFrom4([4]byte(b))
		}
	case FamilyIPv6:
		b := r.Bytes(16)
		if b != nil {
			addr = netip.AddrFrom16([16]byte(b))
		}
	default:
		return AddrPort{Family: fam}, fmt.Errorf("stun: address family %#02x", fam)
	}
	if err := r.Err(); err != nil {
		return AddrPort{Family: fam}, err
	}
	return AddrPort{Family: fam, Addr: addr, Port: port}, nil
}

// EncodeXORAddress encodes an XOR-MAPPED/PEER/RELAYED-ADDRESS value for a
// message with the given transaction ID (RFC 8489 §14.2).
func EncodeXORAddress(ap netip.AddrPort, txID [12]byte) []byte {
	addr := ap.Addr().Unmap()
	w := bytesutil.NewWriter(20)
	w.Uint8(0)
	xport := ap.Port() ^ uint16(MagicCookie>>16)
	if addr.Is4() {
		w.Uint8(FamilyIPv4)
		w.Uint16(xport)
		a4 := addr.As4()
		x := binary.BigEndian.Uint32(a4[:]) ^ MagicCookie
		w.Uint32(x)
	} else {
		w.Uint8(FamilyIPv6)
		w.Uint16(xport)
		a16 := addr.As16()
		var mask [16]byte
		binary.BigEndian.PutUint32(mask[0:4], MagicCookie)
		copy(mask[4:], txID[:])
		for i := range a16 {
			a16[i] ^= mask[i]
		}
		w.Write(a16[:])
	}
	return w.Bytes()
}

// DecodeXORAddress decodes an XOR address attribute value.
func DecodeXORAddress(v []byte, txID [12]byte) (AddrPort, error) {
	r := bytesutil.NewReader(v)
	r.Skip(1)
	fam := r.Uint8()
	xport := r.Uint16()
	port := xport ^ uint16(MagicCookie>>16)
	var addr netip.Addr
	switch fam {
	case FamilyIPv4:
		b := r.Bytes(4)
		if b != nil {
			var a4 [4]byte
			binary.BigEndian.PutUint32(a4[:], binary.BigEndian.Uint32(b)^MagicCookie)
			addr = netip.AddrFrom4(a4)
		}
	case FamilyIPv6:
		b := r.Bytes(16)
		if b != nil {
			var a16, mask [16]byte
			binary.BigEndian.PutUint32(mask[0:4], MagicCookie)
			copy(mask[4:], txID[:])
			copy(a16[:], b)
			for i := range a16 {
				a16[i] ^= mask[i]
			}
			addr = netip.AddrFrom16(a16)
		}
	default:
		return AddrPort{Family: fam}, fmt.Errorf("stun: address family %#02x", fam)
	}
	if err := r.Err(); err != nil {
		return AddrPort{Family: fam}, err
	}
	return AddrPort{Family: fam, Addr: addr, Port: port}, nil
}

// ErrorCode is a decoded ERROR-CODE attribute value (RFC 8489 §14.8).
type ErrorCode struct {
	Code   int // e.g. 401
	Reason string
}

// EncodeErrorCode encodes an ERROR-CODE attribute value.
func EncodeErrorCode(e ErrorCode) []byte {
	w := bytesutil.NewWriter(4 + len(e.Reason))
	w.Uint16(0)
	w.Uint8(uint8(e.Code / 100))
	w.Uint8(uint8(e.Code % 100))
	w.Write([]byte(e.Reason))
	return w.Bytes()
}

// DecodeErrorCode decodes an ERROR-CODE attribute value.
func DecodeErrorCode(v []byte) (ErrorCode, error) {
	r := bytesutil.NewReader(v)
	r.Skip(2)
	class := r.Uint8()
	number := r.Uint8()
	if err := r.Err(); err != nil {
		return ErrorCode{}, err
	}
	return ErrorCode{Code: int(class)*100 + int(number), Reason: string(r.Rest())}, nil
}

// EncodeChannelNumber encodes the CHANNEL-NUMBER attribute value: 2-byte
// channel number plus RFFU zeros, total 4 bytes (RFC 8656 §18.1).
func EncodeChannelNumber(ch uint16) []byte {
	var v [4]byte
	binary.BigEndian.PutUint16(v[0:2], ch)
	return v[:]
}

// DecodeChannelNumber decodes a CHANNEL-NUMBER attribute value.
func DecodeChannelNumber(v []byte) (uint16, error) {
	if len(v) != 4 {
		return 0, fmt.Errorf("stun: CHANNEL-NUMBER value is %d bytes, want 4", len(v))
	}
	return binary.BigEndian.Uint16(v[0:2]), nil
}

// EncodeRequestedTransport encodes REQUESTED-TRANSPORT (protocol 17=UDP).
func EncodeRequestedTransport(proto uint8) []byte {
	return []byte{proto, 0, 0, 0}
}

// fingerprintXOR is XORed into the CRC-32 per RFC 8489 §14.7.
const fingerprintXOR = 0x5354554e

// Fingerprint computes the FINGERPRINT attribute value over msg, where
// msg is the full encoded message up to but not including the
// FINGERPRINT attribute itself (with the header length already counting
// the fingerprint attribute).
func Fingerprint(msg []byte) uint32 {
	return crc32.ChecksumIEEE(msg) ^ fingerprintXOR
}

// AddFingerprint appends a correct FINGERPRINT attribute to m and
// re-encodes it.
func AddFingerprint(m *Message) {
	// Encode with a placeholder so the header length covers the
	// fingerprint attribute, as the RFC requires.
	m.Add(AttrFingerprint, make([]byte, 4))
	raw := m.Encode()
	fp := Fingerprint(raw[:len(raw)-8])
	binary.BigEndian.PutUint32(m.Attributes[len(m.Attributes)-1].Value, fp)
	m.Encode()
}

// VerifyFingerprint checks a decoded message's FINGERPRINT attribute.
// It returns true when no fingerprint is present only if require is
// false.
func VerifyFingerprint(m *Message) bool {
	a := m.Get(AttrFingerprint)
	if a == nil || len(a.Value) != 4 {
		return false
	}
	raw := m.Raw
	// FINGERPRINT must be the last attribute; find its offset from the
	// end: 4 value + 4 TLV header.
	if len(raw) < 8 {
		return false
	}
	want := Fingerprint(raw[:len(raw)-8])
	return binary.BigEndian.Uint32(a.Value) == want
}

// MessageIntegrity computes the HMAC-SHA1 MESSAGE-INTEGRITY value over
// msg (the encoded message up to but not including the
// MESSAGE-INTEGRITY attribute) with the given key.
func MessageIntegrity(msg, key []byte) []byte {
	mac := hmac.New(sha1.New, key)
	mac.Write(msg)
	return mac.Sum(nil)
}

// AddMessageIntegrity appends a MESSAGE-INTEGRITY attribute computed
// with key and re-encodes m.
func AddMessageIntegrity(m *Message, key []byte) {
	m.Add(AttrMessageIntegrity, make([]byte, sha1.Size))
	raw := m.Encode()
	mi := MessageIntegrity(raw[:len(raw)-sha1.Size-4], key)
	copy(m.Attributes[len(m.Attributes)-1].Value, mi)
	m.Encode()
}
