//go:build race

package bufpool

// Under the race detector sync.Pool deliberately drops a random
// fraction of Puts, so exact steady-state pooling assertions cannot
// hold there.
const raceEnabled = true
