// Command rtcbench measures the analyzer's hot-path throughput over
// the internal/bench scenario matrix — every ingestion mode
// (per-packet Feed, pooled FeedBatch, buffered batch) over the relay,
// P2P, and media-heavy synthetic captures — and writes or checks a
// machine-readable baseline.
//
// Usage:
//
//	rtcbench                                  # print the matrix
//	rtcbench -out BENCH_hotpath.json          # write a baseline
//	rtcbench -baseline BENCH_hotpath.json     # regression gate (CI)
//
// With -baseline, rtcbench exits non-zero when any scenario regresses
// against the committed baseline: ingest time more than 15% slower,
// or allocations up beyond measurement jitter. Each scenario runs
// best-of-N repetitions (-reps) so a noisy neighbor on the CI machine
// reads as a slow repetition that gets discarded, not a regression;
// scenarios that still look regressed are re-measured (up to twice,
// at double the repetition budget) before the gate fails, because
// interference is one-sided — only a real regression survives every
// retry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/rtc-compliance/rtcc/internal/bench"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)

// nsTolerance is the relative ingest-time slowdown tolerated before a
// scenario counts as regressed. 15% sits well above run-to-run jitter
// once best-of-N has discarded interference, and well below the ~2x
// cost of reintroducing a per-packet heap allocation.
const nsTolerance = 0.15

// allocTolerance absorbs allocation-count jitter from runtime
// internals (map growth, pool refill timing) without letting a real
// per-packet allocation through: even one alloc per packet moves
// allocs/op by thousands on these captures.
const allocTolerance = 0.02
const allocSlack = 64

func main() {
	var (
		out      = flag.String("out", "", "write results as JSON to this file")
		baseline = flag.String("baseline", "", "compare against this baseline JSON and exit 1 on regression")
		reps     = flag.Int("reps", 3, "repetitions per scenario; the fastest is kept")
		minIters = flag.Int("miniters", 3, "minimum iterations per repetition")
		// 200ms of accumulated ingest per repetition: ingest per
		// iteration runs 0.5-9ms across the matrix, so every cell still
		// gets tens of iterations while the full best-of-3 matrix —
		// whose wall clock is dominated by the untimed Close between
		// iterations — finishes in a couple of minutes instead of ten.
		minTime = flag.Duration("mintime", 200*time.Millisecond, "minimum measured ingest time per repetition")
	)
	flag.Parse()

	var results []bench.Result
	scenarioByName := make(map[string]bench.Scenario)
	for _, sc := range bench.Scenarios() {
		scenarioByName[sc.Name] = sc
		p, err := bench.Prepare(sc)
		if err != nil {
			fatalf("prepare %s: %v", sc.Name, err)
		}
		res, err := bench.MeasureBest(p, *reps, *minIters, *minTime)
		if err != nil {
			fatalf("measure %s: %v", sc.Name, err)
		}
		results = append(results, res)
	}
	printTable(results)

	if *out != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatalf("encode: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(results))
	}

	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		// Wall-clock interference is one-sided: a busy neighbor only
		// ever makes a repetition slower. So before declaring a
		// regression, re-measure just the suspect scenarios with an
		// escalated repetition budget — a real regression survives
		// every retry, a noise spike does not.
		regressed := compare(results, base)
		for retry := 0; len(regressed) > 0 && retry < 2; retry++ {
			fmt.Printf("re-measuring %d suspect scenario(s) with %d reps\n",
				len(regressed), *reps*2)
			var again []bench.Result
			for _, r := range regressed {
				p, err := bench.Prepare(scenarioByName[r.Name])
				if err != nil {
					fatalf("prepare %s: %v", r.Name, err)
				}
				res, err := bench.MeasureBest(p, *reps*2, *minIters, *minTime)
				if err != nil {
					fatalf("measure %s: %v", r.Name, err)
				}
				again = append(again, res)
			}
			regressed = compare(again, base)
		}
		if len(regressed) > 0 {
			fatalf("%d scenario(s) regressed against %s", len(regressed), *baseline)
		}
		fmt.Printf("no regression against %s\n", *baseline)
	}
}

func readBaseline(path string) (map[string]bench.Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []bench.Result
	if err := json.Unmarshal(buf, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]bench.Result, len(list))
	for _, r := range list {
		out[r.Name] = r
	}
	return out, nil
}

// compare returns the scenarios that regressed. A missing baseline
// entry is informational, not a failure: new scenarios enter the
// baseline on the next -out run.
func compare(results []bench.Result, base map[string]bench.Result) []bench.Result {
	var regressed []bench.Result
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("  %-24s no baseline entry (new scenario)\n", r.Name)
			continue
		}
		bad := false
		if r.NsPerOp > b.NsPerOp*(1+nsTolerance) {
			fmt.Printf("REGRESSION %-24s ingest %.2fms vs baseline %.2fms (>%.0f%% slower)\n",
				r.Name, r.NsPerOp/1e6, b.NsPerOp/1e6, nsTolerance*100)
			bad = true
		}
		if r.AllocsPerOp > b.AllocsPerOp*(1+allocTolerance)+allocSlack {
			fmt.Printf("REGRESSION %-24s allocs/op %.0f vs baseline %.0f\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
			bad = true
		}
		if bad {
			regressed = append(regressed, r)
		}
	}
	return regressed
}

func printTable(results []bench.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tpackets\tingest ms/op\tpkts/sec\tB/op\tallocs/op")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.0f\t%.0f\n",
			r.Name, r.Packets, r.NsPerOp/1e6, r.PktsPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	w.Flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtcbench: "+format+"\n", args...)
	os.Exit(1)
}
