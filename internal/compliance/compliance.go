// Package compliance applies the paper's five-criterion compliance
// model (§4.2). Every message extracted by the DPI engine is checked,
// in order, against:
//
//  1. Message Type Definition — is the type defined in any published
//     revision of the protocol's specification?
//  2. Header Field Validity — do the remaining header fields conform?
//  3. Attribute Type Validity — is every TLV attribute (or header
//     extension, for RTP) a defined type?
//  4. Attribute Value Validity — do defined attributes carry values of
//     the right shape, in message types where they are allowed?
//  5. Syntax and Semantic Integrity — cross-field and cross-message
//     behaviour: transaction pairing, Allocate ping-pong patterns,
//     unbound ChannelData channels, SRTCP trailer structure, repeated
//     same-transaction requests without responses.
//
// Evaluation is strictly sequential: the first failed criterion
// classifies the message as non-compliant and later criteria are not
// evaluated (the paper's cascading-error rule).
//
// The per-protocol judges live in the protocol drivers under
// internal/proto; this package wraps the registry's checker with the
// pipeline's metrics instrumentation. The model types (Criterion,
// Verdict, TypeKey, Checked, Session) are the registry's own.
package compliance

import (
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// Criterion numbers the five checks.
type Criterion = proto.Criterion

// The five criteria, in evaluation order.
const (
	CritNone        = proto.CritNone // compliant
	CritMessageType = proto.CritMessageType
	CritHeader      = proto.CritHeader
	CritAttrType    = proto.CritAttrType
	CritAttrValue   = proto.CritAttrValue
	CritSemantics   = proto.CritSemantics
)

// Verdict is the compliance outcome for one message.
type Verdict = proto.Verdict

// TypeKey identifies a message type for the message-type-based metric:
// the protocol family plus the label the paper's tables use (hex STUN
// type, RTP payload type number, RTCP packet type number, QUIC header
// kind, DTLS record kind, or "ChannelData").
type TypeKey = proto.TypeKey

// Checked pairs one message with its verdict.
type Checked = proto.Checked

// Session holds per-stream state for criterion 5. Create one per
// transport stream and feed it messages in capture order via Check.
// Its Trace hook, when set, observes every judged message with its
// verdicts — the decision-trace layer attaches per-stream reason
// reporting there.
type Session = proto.Session

// Checker holds call-scoped state shared across all streams of one
// analyzed capture, dispatching every judged message to its registered
// protocol driver and counting verdicts into the metrics registry.
type Checker struct {
	inner   *proto.Checker
	metrics *checkerMetrics
}

// NewChecker returns a checker for one call capture, judging against
// the default protocol registry.
func NewChecker() *Checker { return NewCheckerWith(nil) }

// NewCheckerWith returns a checker judging against the given registry
// (nil selects the default registry).
func NewCheckerWith(reg *proto.Registry) *Checker {
	c := &Checker{inner: proto.NewChecker(reg)}
	c.inner.Record = c.record
	return c
}

// Proto returns the underlying registry checker (protocol drivers hang
// their capture-scoped state off its slots).
func (c *Checker) Proto() *proto.Checker { return c.inner }

// NewSession returns a per-stream session.
func (c *Checker) NewSession() *Session { return c.inner.NewSession() }

// checkerMetrics holds the per-criterion verdict counters, indexed by
// Criterion (fail[CritNone] stays nil).
type checkerMetrics struct {
	pass *metrics.Counter
	fail [CritSemantics + 1]*metrics.Counter
}

// critSlug maps a criterion to its metric label value.
func critSlug(c Criterion) string {
	switch c {
	case CritMessageType:
		return "message_type"
	case CritHeader:
		return "header"
	case CritAttrType:
		return "attr_type"
	case CritAttrValue:
		return "attr_value"
	case CritSemantics:
		return "semantics"
	}
	return "unknown"
}

// SetMetrics attaches a registry: every verdict the checker's sessions
// produce is counted as compliance_pass_total or
// compliance_fail_total{criterion=...}. A nil registry (the default)
// disables counting at zero cost.
func (c *Checker) SetMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	cm := &checkerMetrics{pass: r.Counter("compliance_pass_total")}
	for crit := CritMessageType; crit <= CritSemantics; crit++ {
		cm.fail[crit] = r.Counter("compliance_fail_total", metrics.L("criterion", critSlug(crit)))
	}
	c.metrics = cm
}

// record counts the verdicts of one Check call.
func (c *Checker) record(out []Checked) {
	if c.metrics == nil {
		return
	}
	for _, ch := range out {
		if ch.Verdict.Compliant {
			c.metrics.pass.Inc()
		} else if int(ch.Verdict.Failed) < len(c.metrics.fail) {
			c.metrics.fail[ch.Verdict.Failed].Inc()
		}
	}
}
