package pipeline

import (
	"fmt"
	"strconv"
	"strings"
)

// parseYAML reads the YAML subset config files use: nested mappings by
// indentation, scalar values, and # comments. Sequences, anchors, flow
// style, multi-document streams, and multi-line scalars are out of
// scope — a pipeline config is a small tree of named scalars, and a
// hand-rolled 100-line reader keeps the module dependency-free. The
// result is a plain map tree that round-trips through encoding/json
// onto Config, which is where strict unknown-key checking happens.
func parseYAML(data []byte) (map[string]any, error) {
	root := map[string]any{}
	// Stack of open mappings with the indent of their keys; the root's
	// keys sit at indent 0.
	type frame struct {
		indent int
		m      map[string]any
	}
	stack := []frame{{0, root}}

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		lineno := i + 1
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed (indent with spaces)", lineno)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		content := strings.TrimSpace(line)
		if strings.HasPrefix(content, "- ") || content == "-" {
			return nil, fmt.Errorf("line %d: sequences are not supported in pipeline configs", lineno)
		}
		key, rest, ok := strings.Cut(content, ":")
		if !ok || key == "" {
			return nil, fmt.Errorf("line %d: expected \"key: value\" or \"key:\"", lineno)
		}
		key = strings.TrimSpace(unquote(key))
		rest = strings.TrimSpace(rest)

		// Resolve which open mapping this line's indent addresses. A
		// just-opened mapping carries indent -1 until its first key
		// fixes the child indent (any depth beyond the parent's); a
		// shallower line closes it (possibly empty) and the ones above.
		for {
			top := &stack[len(stack)-1]
			if top.indent == -1 {
				if parent := stack[len(stack)-2].indent; indent > parent {
					top.indent = indent
					break
				}
				stack = stack[:len(stack)-1] // the mapping stayed empty
				continue
			}
			if len(stack) > 1 && indent < top.indent {
				stack = stack[:len(stack)-1]
				continue
			}
			break
		}
		top := stack[len(stack)-1]
		if indent != top.indent {
			return nil, fmt.Errorf("line %d: bad indentation %d (open mapping is at %d)", lineno, indent, top.indent)
		}
		if _, dup := top.m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", lineno, key)
		}
		if rest == "" {
			// "key:" opens a nested mapping.
			child := map[string]any{}
			top.m[key] = child
			stack = append(stack, frame{-1, child})
			continue
		}
		top.m[key] = scalar(rest)
	}
	return root, nil
}

// stripComment removes a trailing # comment that is outside quotes.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i, r := range line {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble {
				// A comment starts the line or follows whitespace.
				if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
					return line[:i]
				}
			}
		}
	}
	return line
}

// scalar types a YAML scalar: quoted strings stay strings; otherwise
// bool, integer, and float forms are recognized, everything else is a
// bare string (which is how durations like 30s arrive).
func scalar(s string) any {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		return unquote(s)
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// unquote strips one level of matched single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
