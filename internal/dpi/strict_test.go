package dpi

import (
	"bytes"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

func TestStrictMatchesCompliantTraffic(t *testing.T) {
	e := StrictEngine{}
	r := ice.NewRand(1)

	// Defined STUN at offset zero.
	msg := ice.ServerBindingRequest(r)
	if res := e.Inspect(msg.Raw); res.Class != ClassStandard || res.Messages[0].Protocol != ProtoSTUN {
		t.Errorf("stun: %+v", res)
	}
	// Static-payload-type RTP.
	p := &rtp.Packet{PayloadType: 0, SequenceNumber: 1, SSRC: 5, Payload: []byte("pcmu")}
	if res := e.Inspect(p.Encode()); res.Class != ClassStandard || res.Messages[0].Protocol != ProtoRTP {
		t.Errorf("rtp pt0: %+v", res)
	}
	// Clean RTCP compound.
	sr := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 1, Info: rtcp.SenderInfo{NTPTimestamp: 1}})
	if res := e.Inspect(sr); res.Class != ClassStandard || res.Messages[0].Protocol != ProtoRTCP {
		t.Errorf("rtcp: %+v", res)
	}
	// ChannelData.
	cd := &stun.ChannelData{ChannelNumber: 0x4001, Data: bytes.Repeat([]byte{1}, 20)}
	if res := e.Inspect(cd.Encode()); res.Class != ClassStandard || res.Messages[0].Protocol != ProtoChannelData {
		t.Errorf("channeldata: %+v", res)
	}
}

// The baseline's two blind spots, which motivate the paper's custom DPI
// (§4.1): proprietary headers and non-compliant messages.
func TestStrictBlindSpots(t *testing.T) {
	e := StrictEngine{}

	// 1. A perfectly valid RTP message behind a Zoom-style header is
	// invisible to the baseline but found by the custom engine.
	inner := (&rtp.Packet{PayloadType: 0, SequenceNumber: 9, SSRC: 7, Payload: []byte("media")}).Encode()
	wrapped := append([]byte{0x04, 0x10, 0xaa, 0xbb, 0xcc, 0xdd, 0x0f, 0x01, 0x03, 0x05, 0x07, 0x09, 0x0b, 0x0d, 0x0f, 0x11, 0x13, 0x15, 0x17, 0x19, 0x1b, 0x1d, 0x1f, 0x21}, inner...)
	if res := e.Inspect(wrapped); res.Class != ClassFullyProprietary {
		t.Errorf("baseline saw through the proprietary header: %+v", res)
	}
	if res := NewEngine().Inspect(wrapped, nil); res.Class != ClassProprietaryHeader {
		t.Errorf("custom engine missed the wrapped RTP: %+v", res)
	}

	// 2. An undefined STUN type (WhatsApp's 0x0801) is rejected by the
	// baseline but surfaced by the custom engine.
	m := &stun.Message{Type: stun.MessageType(0x0801), TransactionID: [12]byte{1}}
	m.Add(stun.AttrType(0x4003), []byte{0xff})
	raw := m.Encode()
	if res := e.Inspect(raw); res.Class != ClassFullyProprietary {
		t.Errorf("baseline accepted undefined STUN type: %+v", res)
	}
	if res := NewEngine().Inspect(raw, nil); res.Class != ClassStandard {
		t.Errorf("custom engine missed undefined STUN type: %+v", res)
	}

	// 3. Dynamic payload types (every studied app's media) are rejected
	// by the Peafowl whitelist.
	dyn := (&rtp.Packet{PayloadType: 111, SequenceNumber: 1, SSRC: 5, Payload: []byte("opus")}).Encode()
	if res := e.Inspect(dyn); res.Class != ClassFullyProprietary {
		t.Errorf("baseline accepted dynamic payload type: %+v", res)
	}

	// 4. RTCP with a proprietary trailer (Discord) fails the strict
	// clean-compound requirement.
	sr := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 1, Info: rtcp.SenderInfo{NTPTimestamp: 1}})
	trailered := append(sr, 0x00, 0x01, 0x80)
	if res := e.Inspect(trailered); res.Class != ClassFullyProprietary {
		t.Errorf("baseline accepted trailered RTCP: %+v", res)
	}
}

func TestStrictInspectStream(t *testing.T) {
	e := StrictEngine{}
	payloads := [][]byte{
		(&rtp.Packet{PayloadType: 0, SSRC: 1, Payload: []byte("x")}).Encode(),
		bytes.Repeat([]byte{0x01}, 100),
	}
	res := e.InspectStream(payloads)
	if len(res) != 2 || res[0].Class != ClassStandard || res[1].Class != ClassFullyProprietary {
		t.Errorf("stream results: %+v", res)
	}
}

func TestStrictNeverPanics(t *testing.T) {
	e := StrictEngine{}
	inputs := [][]byte{nil, {0}, {0x80}, bytes.Repeat([]byte{0xff}, 1500)}
	for _, in := range inputs {
		_ = e.Inspect(in)
	}
}

// The adaptive offset bound must preserve recall on streams whose
// header depth has stabilized, while capping the scan depth.
func TestAdaptiveOffsetPreservesRecall(t *testing.T) {
	mk := func(seq uint16, depth int) []byte {
		inner := (&rtp.Packet{PayloadType: 96, SequenceNumber: seq, Timestamp: uint32(seq) * 960, SSRC: 0x42, Payload: []byte("media")}).Encode()
		return append(bytes.Repeat([]byte{0x01}, depth), inner...)
	}
	var payloads [][]byte
	for seq := uint16(0); seq < 40; seq++ {
		payloads = append(payloads, mk(seq, 30))
	}
	// A filler datagram that the adaptive engine should scan cheaply.
	payloads = append(payloads, bytes.Repeat([]byte{0x02}, 1000))

	strictEngine := &Engine{MaxOffset: 200}
	adaptiveEngine := &Engine{MaxOffset: 200, Adaptive: true}
	base := 0
	for _, r := range strictEngine.InspectStream(payloads) {
		base += len(r.Messages)
	}
	adapt := 0
	for _, r := range adaptiveEngine.InspectStream(payloads) {
		adapt += len(r.Messages)
	}
	if base != adapt {
		t.Errorf("adaptive recall %d != full recall %d", adapt, base)
	}
	if base != 40 {
		t.Errorf("expected 40 messages, got %d", base)
	}
}
