// Package buildinfo surfaces the binary's build identity — module
// version, VCS revision, and Go toolchain — from the information the
// linker embeds (runtime/debug.ReadBuildInfo). Exported traces and
// metrics carry it so measurement artifacts are attributable to the
// exact commit that produced them.
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"
)

// Info is the build identity of the running binary. Fields are empty
// when the binary was built without the corresponding metadata (e.g.
// `go run` outside a VCS checkout).
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string
	// Revision is the VCS commit hash, with "+dirty" appended when the
	// working tree had uncommitted changes.
	Revision string
	// Time is the commit timestamp (RFC 3339).
	Time string
	// Go is the toolchain version the binary was built with.
	Go string
}

// read is swappable for tests.
var read = debug.ReadBuildInfo

// Get assembles the build identity from the embedded build info.
func Get() Info {
	bi, ok := read()
	if !ok {
		return Info{}
	}
	info := Info{Version: bi.Main.Version, Go: bi.GoVersion}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && info.Revision != "" {
		info.Revision += "+dirty"
	}
	return info
}

// Map renders the identity as a string map, the shape published as the
// build_info expvar.
func (i Info) Map() map[string]string {
	return map[string]string{
		"version":  i.Version,
		"revision": i.Revision,
		"time":     i.Time,
		"go":       i.Go,
	}
}

// String renders the identity on one line, e.g.
// "(devel) rev 1a2b3c4d (2026-08-06T10:00:00Z) go1.24.1".
func (i Info) String() string {
	s := i.Version
	if s == "" {
		s = "unknown"
	}
	if i.Revision != "" {
		s += " rev " + i.Revision
	}
	if i.Time != "" {
		s += " (" + i.Time + ")"
	}
	if i.Go != "" {
		s += " " + i.Go
	}
	return s
}

// Print writes the standard -version output for a binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s\n", binary, Get())
}
