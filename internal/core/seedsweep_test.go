package core

import (
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Seed-robustness: the Table 3 cells must hold for any seed, not just
// the one the main test uses. Run with -run SeedSweep -count 1; skipped
// in -short mode.
func TestTypeComplianceSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, base := range []uint64{7, 31337, 999999, 424242} {
		ma, err := RunMatrix(trace.MatrixOptions{
			Runs: 1, CallDuration: 8 * time.Second, PrePost: 10 * time.Second,
			MediaRate: 15, Start: t0, BaseSeed: base, Background: true,
		}, Options{SkipFindings: true})
		if err != nil {
			t.Fatal(err)
		}
		check := func(app appsim.App, fam dpi.Protocol, wc, wt int) {
			c, tot := ma.Aggregate.App(string(app)).TypeCompliance(fam)
			if c != wc || tot != wt {
				comp, non := ma.Aggregate.App(string(app)).TypesOf(fam)
				t.Errorf("seed %d: %s %s = %d/%d, want %d/%d (compliant %v, non %v)",
					base, app, fam, c, tot, wc, wt, comp, non)
			}
		}
		check(appsim.Zoom, dpi.ProtoSTUN, 0, 2)
		check(appsim.Zoom, dpi.ProtoRTCP, 2, 2)
		check(appsim.FaceTime, dpi.ProtoSTUN, 0, 4)
		check(appsim.FaceTime, dpi.ProtoRTP, 0, 5)
		check(appsim.FaceTime, dpi.ProtoQUIC, 4, 4)
		check(appsim.WhatsApp, dpi.ProtoSTUN, 1, 10)
		check(appsim.WhatsApp, dpi.ProtoRTCP, 4, 4)
		check(appsim.Messenger, dpi.ProtoSTUN, 11, 18)
		check(appsim.Discord, dpi.ProtoRTP, 0, 4)
		check(appsim.Discord, dpi.ProtoRTCP, 0, 5)
		check(appsim.GoogleMeet, dpi.ProtoSTUN, 15, 16)
		check(appsim.GoogleMeet, dpi.ProtoRTP, 11, 11)
		check(appsim.GoogleMeet, dpi.ProtoRTCP, 0, 7)
	}
}

// TestAggregateInvariantsSeedSweep sweeps a wider seed set through the
// full matrix and asserts the structural invariants that must hold for
// any seed: every compliance fraction lies in [0,1], and the Table 1
// filter accounting is conservative — the surviving stream/packet/byte
// counts are monotonically non-increasing through raw → stage 1 →
// stage 2 → RTC (stage columns record removals, so survivors after each
// stage are raw minus the cumulative removals, and nothing may go
// negative or reappear).
func TestAggregateInvariantsSeedSweep(t *testing.T) {
	seeds := []uint64{3, 17, 99, 1234, 20250806, 55555, 777777, 13579, 24680}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, base := range seeds {
		ma, err := RunMatrix(trace.MatrixOptions{
			Runs: 1, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
			MediaRate: 10, Start: t0, BaseSeed: base, Background: true,
		}, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", base, err)
		}
		if ma.Captures != 6*3 {
			t.Errorf("seed %d: captures = %d, want 18", base, ma.Captures)
		}
		for _, app := range ma.Aggregate.Apps() {
			if r, ok := app.VolumeCompliance(); ok && (r < 0 || r > 1) {
				t.Errorf("seed %d: %s volume compliance %.4f outside [0,1]", base, app.App, r)
			}
			for fam, ps := range app.ByProtocol {
				if ps.Compliant < 0 || ps.Compliant > ps.Messages {
					t.Errorf("seed %d: %s %v compliant %d of %d messages", base, app.App, fam, ps.Compliant, ps.Messages)
				}
			}
			c, tot := app.TypeCompliance(dpi.ProtoUnknown)
			if c < 0 || c > tot {
				t.Errorf("seed %d: %s type compliance %d/%d", base, app.App, c, tot)
			}
		}
		if len(ma.Table1) != 6 {
			t.Errorf("seed %d: %d Table 1 rows", base, len(ma.Table1))
		}
		for _, row := range ma.Table1 {
			checkStageMonotone(t, base, row.App+" UDP", row.RawUDP, row.Stage1UDP, row.Stage2UDP, row.RTCUDP)
			checkStageMonotone(t, base, row.App+" TCP", row.RawTCP, row.Stage1TCP, row.Stage2TCP, row.RTCTCP)
		}
	}
}

// checkStageMonotone verifies raw ≥ after-stage1 ≥ after-stage2 = RTC
// for streams, packets, and bytes, where the stage columns count
// removals.
func checkStageMonotone(t *testing.T, seed uint64, label string, raw, stage1, stage2, rtc flow.Counts) {
	t.Helper()
	dims := []struct {
		name                   string
		raw, st1, st2, survive int
	}{
		{"streams", raw.Streams, stage1.Streams, stage2.Streams, rtc.Streams},
		{"packets", raw.Packets, stage1.Packets, stage2.Packets, rtc.Packets},
		{"bytes", raw.Bytes, stage1.Bytes, stage2.Bytes, rtc.Bytes},
	}
	for _, d := range dims {
		after1 := d.raw - d.st1
		after2 := after1 - d.st2
		if d.raw < after1 || after1 < after2 || after2 < 0 {
			t.Errorf("seed %d: %s %s not monotone: raw %d, after stage1 %d, after stage2 %d",
				seed, label, d.name, d.raw, after1, after2)
		}
		if after2 != d.survive {
			t.Errorf("seed %d: %s %s not conserved: raw %d - removed (%d+%d) = %d, but RTC = %d",
				seed, label, d.name, d.raw, d.st1, d.st2, after2, d.survive)
		}
	}
}
