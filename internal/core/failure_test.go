package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// failureCapture builds a small capture for corruption experiments.
func failureCapture(t *testing.T, seed uint64) *trace.Capture {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.WhatsApp, Network: appsim.WiFiRelay, Seed: seed,
		Start: t0, CallDuration: 5 * time.Second, PrePost: 6 * time.Second,
		MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

// The pipeline must survive arbitrary corruption of individual frames:
// no panics, and the untouched traffic still analyzed.
func TestCorruptedFramesTolerated(t *testing.T) {
	cap := failureCapture(t, 101)
	frames := cap.Frames()
	rng := rand.New(rand.NewPCG(1, 2))
	// Corrupt 10% of frames: random byte flips anywhere in the frame.
	for i := range frames {
		if rng.IntN(10) != 0 {
			continue
		}
		data := append([]byte(nil), frames[i].Data...)
		for j := 0; j < 4 && len(data) > 0; j++ {
			data[rng.IntN(len(data))] ^= byte(1 + rng.IntN(255))
		}
		frames[i].Data = data
	}
	ca, err := AnalyzeCapture(CaptureInput{
		Label: "corrupted", LinkType: pcap.LinkTypeRaw, Packets: frames,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Filter.RTC) == 0 {
		t.Error("corruption wiped out all RTC streams")
	}
	// The bulk of messages still checks out.
	if r, ok := ca.Stats.VolumeCompliance(); !ok || r < 0.5 {
		t.Errorf("volume compliance after corruption = %v, %v", r, ok)
	}
}

// Truncating frames (as a small snaplen would) must not panic anywhere
// in the stack.
func TestTruncatedFramesTolerated(t *testing.T) {
	cap := failureCapture(t, 102)
	frames := cap.Frames()
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range frames {
		if rng.IntN(5) == 0 && len(frames[i].Data) > 4 {
			cut := 1 + rng.IntN(len(frames[i].Data)-1)
			frames[i].Data = frames[i].Data[:cut]
			frames[i].OrigLen = cut
		}
	}
	if _, err := AnalyzeCapture(CaptureInput{
		Label: "truncated", LinkType: pcap.LinkTypeRaw, Packets: frames,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{}); err != nil {
		t.Fatal(err)
	}
}

// Mild packet reordering (network jitter) must not change the verdict
// substantially: type compliance is identical, volume compliance within
// a small tolerance (sequence-window effects only).
func TestReorderingTolerated(t *testing.T) {
	cap := failureCapture(t, 103)
	base, err := AnalyzeCapture(CaptureInput{
		Label: "base", LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()
	// Swap adjacent frames in 10% of positions.
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i+1 < len(frames); i++ {
		if rng.IntN(10) == 0 {
			frames[i], frames[i+1] = frames[i+1], frames[i]
			frames[i].Timestamp, frames[i+1].Timestamp = frames[i+1].Timestamp, frames[i].Timestamp
		}
	}
	re, err := AnalyzeCapture(CaptureInput{
		Label: "reordered", LinkType: pcap.LinkTypeRaw, Packets: frames,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, bt := base.Stats.TypeCompliance(0)
	rc, rt := re.Stats.TypeCompliance(0)
	if bc != rc || bt != rt {
		t.Errorf("type compliance changed under reordering: %d/%d vs %d/%d", bc, bt, rc, rt)
	}
	rb, _ := base.Stats.VolumeCompliance()
	rr, _ := re.Stats.VolumeCompliance()
	if rr < rb-0.02 || rr > rb+0.02 {
		t.Errorf("volume compliance drifted: %.4f vs %.4f", rb, rr)
	}
}

// Dropping packets (loss) must not break stream-level validation: the
// DPI's sequence window tolerates gaps.
func TestPacketLossTolerated(t *testing.T) {
	cap := failureCapture(t, 104)
	base, err := AnalyzeCapture(CaptureInput{
		Label: "base", LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var kept []pcap.Packet
	rng := rand.New(rand.NewPCG(7, 8))
	for _, f := range cap.Frames() {
		if rng.IntN(10) == 0 { // 10% loss
			continue
		}
		kept = append(kept, f)
	}
	lossy, err := AnalyzeCapture(CaptureInput{
		Label: "lossy", LinkType: pcap.LinkTypeRaw, Packets: kept,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := base.Stats.VolumeCompliance()
	rl, _ := lossy.Stats.VolumeCompliance()
	if rl < rb-0.05 {
		t.Errorf("volume compliance collapsed under loss: %.4f vs %.4f", rb, rl)
	}
}

// A pcap stream that is cut off mid-record must error cleanly, not
// panic or hang.
func TestTruncatedPCAPStream(t *testing.T) {
	cap := failureCapture(t, 105)
	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()*2/3]
	if _, err := AnalyzePCAP(bytes.NewReader(cut), "cut", cap.CallStart, cap.CallEnd, Options{}); err == nil {
		t.Error("truncated pcap accepted silently")
	}
	// Garbage header.
	if _, err := AnalyzePCAP(bytes.NewReader([]byte("not a pcap file at all......")), "junk", time.Time{}, time.Time{}, Options{}); err == nil {
		t.Error("junk pcap accepted")
	}
}

// An empty capture analyzes to an empty result without error.
func TestEmptyCapture(t *testing.T) {
	ca, err := AnalyzeCapture(CaptureInput{
		Label: "empty", LinkType: pcap.LinkTypeRaw,
		CallStart: t0, CallEnd: t0.Add(time.Second),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Filter.RTC) != 0 {
		t.Error("streams from empty capture")
	}
	if _, ok := ca.Stats.VolumeCompliance(); ok {
		t.Error("compliance ratio from empty capture")
	}
}
