package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/natsim"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// The impairment differential matrix answers "are compliance verdicts
// stable under adverse networks?" for every app × impairment profile ×
// seed cell:
//
//   - batch and streaming analyzers must agree byte-for-byte on
//     impaired traffic, exactly as they do on clean traffic;
//   - verdict-stability invariants must hold against the same app's
//     clean analysis (no protocol families or criterion 1-4 violation
//     classes appearing out of thin air);
//   - the full impaired analysis is pinned by golden fixtures under
//     testdata/impair, so any legitimate drift (duplication tripping
//     SRTCP replay checks, loss shifting type mixes) is explicit in
//     review diffs and documented in EXPERIMENTS.md §"Impairment".
//
// Regenerate fixtures (deliberate, reviewed changes only) with:
//
//	RTCC_UPDATE_GOLDEN=1 go test ./internal/core -run TestImpairMatrixDifferential
var impairSeeds = []uint64{3, 17, 42, 101}

// impairFixtureSeeds is the subset pinned by golden fixtures (matching
// goldenSeeds, so clean and impaired fixtures cover the same calls).
var impairFixtureSeeds = []uint64{3, 17}

// impairCapture generates one (possibly impaired) capture with
// frame-granular video bursting — the traffic shape that stresses the
// filter and the cross-message checks hardest.
func impairCapture(t testing.TB, app appsim.App, p natsim.Profile, seed uint64) *trace.Capture {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: appsim.WiFiRelay, Seed: seed,
		Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
		MediaRate: 10, Background: false, Burst: true, Impair: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

func impairFixturePath(app appsim.App, profile string, seed uint64) string {
	return filepath.Join("testdata", "impair",
		fmt.Sprintf("%s_%s_%d.json", strings.ReplaceAll(string(app), " ", ""), profile, seed))
}

// critSet collects the distinct criteria violated in an analysis.
func critSet(ca *CaptureAnalysis) map[compliance.Criterion]bool {
	out := make(map[compliance.Criterion]bool)
	for crit, n := range ca.Stats.Violations {
		if n > 0 {
			out[crit] = true
		}
	}
	return out
}

// TestImpairMatrixDifferential sweeps 6 apps × 6 profiles (clean + 5
// adverse) × 4 seeds. -short reduces to the CI smoke matrix of 2 apps
// × 3 profiles × 2 seeds.
func TestImpairMatrixDifferential(t *testing.T) {
	update := os.Getenv("RTCC_UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "impair"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	apps := appsim.Apps
	profiles := natsim.StandardProfiles()
	seeds := impairSeeds
	if testing.Short() {
		apps = apps[:2]
		profiles = profiles[:3] // clean, loss2, burst5
		seeds = seeds[:2]
	}
	for _, app := range apps {
		for _, seed := range seeds {
			// Clean baseline for the stability invariants, analyzed once.
			cleanCA, err := BatchAnalyzeCapture(impairCapture(t, app, natsim.Profile{}, seed).Input(), Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s seed %d clean: %v", app, seed, err)
			}
			cleanCrits := critSet(cleanCA)
			for _, p := range profiles {
				p := p
				t.Run(fmt.Sprintf("%s/%s/%d", app, p.Name, seed), func(t *testing.T) {
					capt := impairCapture(t, app, p, seed)
					in := capt.Input()
					batch, err := BatchAnalyzeCapture(in, Options{Workers: 1})
					if err != nil {
						t.Fatal(err)
					}
					got := encodeGolden(batch)

					// Batch and streaming must agree on impaired traffic,
					// serial and pooled.
					for _, workers := range []int{1, 8} {
						streaming, err := AnalyzeCapture(in, Options{Workers: workers})
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if enc := encodeGolden(streaming); !bytes.Equal(enc, got) {
							t.Fatalf("streaming (workers=%d) diverged from batch on impaired traffic:\n%s",
								workers, diffHint(got, enc))
						}
					}

					// The pooled, batched single-pass reader must agree
					// byte-for-byte on impaired traffic too; poison armed
					// so a use-after-release shows up as divergence.
					func() {
						defer bufpool.EnablePoison(bufpool.EnablePoison(true))
						raw := capturePCAPBytes(t, capt)
						pooled, err := AnalyzePCAP(bytes.NewReader(raw), in.Label,
							in.CallStart, in.CallEnd, Options{Workers: 1})
						if err != nil {
							t.Fatalf("pooled-batched: %v", err)
						}
						if enc := encodeGolden(pooled); !bytes.Equal(enc, got) {
							t.Fatalf("pooled-batched reader diverged from batch on impaired traffic:\n%s",
								diffHint(got, enc))
						}
					}()

					// Stability invariant 1: impairment never conjures a
					// protocol family the clean call did not carry.
					for fam := range batch.Stats.ByProtocol {
						if _, ok := cleanCA.Stats.ByProtocol[fam]; !ok {
							t.Errorf("family %s appeared only under impairment", fam)
						}
					}
					// Stability invariant 2: dropping, delaying, duplicating,
					// or re-addressing datagrams can break cross-message
					// (criterion 5) expectations — legitimate drift — but must
					// never create a new class of per-message violation
					// (criteria 1-4): those judge bytes the generator emitted,
					// which impairment never edits.
					for crit := range critSet(batch) {
						if crit != compliance.CritSemantics && !cleanCrits[crit] {
							t.Errorf("criterion %v violations appeared only under impairment", crit)
						}
					}
					// Stability invariant 3: the call must remain analyzable —
					// the RTP volume can shrink under loss but not collapse.
					if clean := cleanCA.Stats.ByProtocol[dpi.ProtoRTP]; clean != nil {
						imp := batch.Stats.ByProtocol[dpi.ProtoRTP]
						if imp == nil || imp.Messages < clean.Messages/3 {
							t.Errorf("RTP volume collapsed under impairment: clean %d, impaired %v",
								clean.Messages, imp)
						}
					}

					// Pin the full analysis for the fixture seeds.
					pinned := false
					for _, fs := range impairFixtureSeeds {
						if fs == seed {
							pinned = true
						}
					}
					if !pinned {
						return
					}
					path := impairFixturePath(app, p.Name, seed)
					if update {
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing fixture (run with RTCC_UPDATE_GOLDEN=1): %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("impaired analysis diverged from fixture %s:\n%s", path, diffHint(want, got))
					}
				})
			}
		}
	}
}

// TestImpairRaceHammer extends the PR 5 determinism harness to
// impaired traffic: 16 goroutines analyze the same impaired capture
// concurrently — each with its own JSONL trace sink, all sharing one
// metrics registry — and every result and exported trace must be
// byte-identical to the serial reference. A final run pushes the same
// input through one shared 16-worker analyzer fold. Run under -race.
func TestImpairRaceHammer(t *testing.T) {
	seeds := determinismSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	profile, _ := natsim.ProfileByName("jitter30")
	for _, seed := range seeds {
		in := impairCapture(t, appsim.GoogleMeet, profile, seed).Input()

		ref, err := AnalyzeCapture(in, Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refTrace := impairTraceJSONL(t, in, 1, nil)
		if len(refTrace) == 0 {
			t.Fatalf("seed %d: empty reference trace", seed)
		}

		const goroutines = 16
		reg := metrics.NewRegistry()
		var wg sync.WaitGroup
		analyses := make([]*CaptureAnalysis, goroutines)
		traces := make([][]byte, goroutines)
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var buf bytes.Buffer
				w := obs.NewJSONLWriter(&buf)
				ca, err := AnalyzeCapture(in, Options{Workers: 1, Metrics: reg, Tracer: w})
				if err != nil {
					errs[g] = err
					return
				}
				if err := w.Flush(); err != nil {
					errs[g] = err
					return
				}
				analyses[g] = ca
				traces[g] = buf.Bytes()
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			if errs[g] != nil {
				t.Fatalf("seed %d goroutine %d: %v", seed, g, errs[g])
			}
			if !reflect.DeepEqual(analyses[g], ref) {
				t.Errorf("seed %d goroutine %d: analysis differs from serial reference", seed, g)
			}
			if !bytes.Equal(traces[g], refTrace) {
				t.Errorf("seed %d goroutine %d: trace export differs from serial reference", seed, g)
			}
		}

		// Shared fold: one analyzer, 16 workers.
		pooled, err := AnalyzeCapture(in, Options{Workers: goroutines, Metrics: reg})
		if err != nil {
			t.Fatalf("seed %d pooled: %v", seed, err)
		}
		if !reflect.DeepEqual(pooled, ref) {
			t.Errorf("seed %d: 16-worker fold differs from serial reference", seed)
		}
	}
}

func impairTraceJSONL(t *testing.T, in CaptureInput, workers int, reg *metrics.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	if _, err := AnalyzeCapture(in, Options{Workers: workers, Metrics: reg, Tracer: w}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunMatrixPublishesImpairStats checks the pipeline surfaces
// per-profile impairment accounting in the metrics registry.
func TestRunMatrixPublishesImpairStats(t *testing.T) {
	p, _ := natsim.ProfileByName("loss2")
	reg := metrics.NewRegistry()
	_, err := RunMatrix(trace.MatrixOptions{
		Runs: 1, CallDuration: time.Second, PrePost: time.Second,
		MediaRate: 8, Start: t0, BaseSeed: 5,
		Apps: []appsim.App{appsim.Discord}, Impair: p,
	}, Options{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	l := metrics.L("profile", "loss2")
	if got := reg.Counter("natsim_impair_in_total", l).Value(); got == 0 {
		t.Fatal("no impairment input accounting published")
	}
	if got := reg.Counter("natsim_impair_dropped_total", l).Value(); got == 0 {
		t.Fatal("2% loss over a full matrix dropped nothing")
	}
}
