package proto

import (
	"testing"
	"time"
)

// fakeHandler is a minimal registrable handler for registry mechanics
// tests, independent of the real drivers.
type fakeHandler struct {
	meta    Meta
	probers []Prober
}

func (h fakeHandler) Meta() Meta                                    { return h.meta }
func (h fakeHandler) Probers() []Prober                             { return h.probers }
func (h fakeHandler) Comply(dst []Checked, _ Message, _ time.Time, _ *Session) []Checked {
	return dst
}

func noopValidate(c Candidate, st *StreamState) (Message, bool) { return Message{}, false }

func TestRegisterSortsProbersAndFillsIDs(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeHandler{
		meta: Meta{ID: RTP, Name: "b", Order: 2},
		probers: []Prober{
			{Precedence: 60, Validate: noopValidate},
		},
	})
	r.Register(fakeHandler{
		meta: Meta{ID: STUN, Name: "a", Order: 1},
		probers: []Prober{
			{Precedence: 50, Validate: noopValidate},
			{Precedence: 10, Validate: noopValidate},
		},
	})
	ps := r.Probers()
	if len(ps) != 3 {
		t.Fatalf("probers = %d, want 3", len(ps))
	}
	wantPrec := []int{10, 50, 60}
	wantID := []ID{STUN, STUN, RTP}
	for i := range ps {
		if ps[i].Precedence != wantPrec[i] || ps[i].ID != wantID[i] {
			t.Errorf("prober %d = id %d prec %d, want id %d prec %d",
				i, ps[i].ID, ps[i].Precedence, wantID[i], wantPrec[i])
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Register(fakeHandler{meta: Meta{ID: RTP, Name: "rtp"}})
	mustPanic("duplicate ID", func() {
		r.Register(fakeHandler{meta: Meta{ID: RTP, Name: "again"}})
	})
	mustPanic("unknown ID", func() {
		r.Register(fakeHandler{meta: Meta{ID: Unknown, Name: "zero"}})
	})
	mustPanic("out-of-range ID", func() {
		r.Register(fakeHandler{meta: Meta{ID: MaxIDs, Name: "high"}})
	})
}

func TestFamilyDefaultsToSelf(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeHandler{meta: Meta{ID: QUIC, Name: "quic"}})
	m, ok := r.Meta(QUIC)
	if !ok || m.Family != QUIC {
		t.Errorf("family = %v, want %v", m.Family, QUIC)
	}
}

func TestMetasSortByOrderThenID(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeHandler{meta: Meta{ID: DTLS, Name: "d", Order: 5}})
	r.Register(fakeHandler{meta: Meta{ID: ChannelData, Name: "cd", Family: STUN, Order: 1}})
	r.Register(fakeHandler{meta: Meta{ID: STUN, Name: "s", Order: 1}})
	r.Register(fakeHandler{meta: Meta{ID: RTP, Name: "r", Order: 2}})
	var got []ID
	for _, m := range r.Metas() {
		got = append(got, m.ID)
	}
	want := []ID{STUN, ChannelData, RTP, DTLS}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("metas order = %v, want %v", got, want)
		}
	}
	fams := r.Families()
	wantFams := []ID{STUN, RTP, DTLS}
	if len(fams) != len(wantFams) {
		t.Fatalf("families = %v, want %v", fams, wantFams)
	}
	for i := range wantFams {
		if fams[i] != wantFams[i] {
			t.Fatalf("families = %v, want %v", fams, wantFams)
		}
	}
}

func TestFirstByteTables(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeHandler{
		meta: Meta{ID: STUN, Name: "gated"},
		probers: []Prober{{
			Precedence: 10,
			Pass1:      true,
			First:      func(b byte) bool { return b < 0x40 },
			Probe:      ConsumeProbe(noopValidate),
			Validate:   noopValidate,
		}},
	})
	r.Register(fakeHandler{
		meta: Meta{ID: RTP, Name: "ungated"},
		probers: []Prober{{
			Precedence: 60,
			Validate:   noopValidate,
		}},
	})
	// A nil First admits every byte; a gate restricts its prober to its
	// slice of the first-byte space.
	if got := len(r.ProbersFor(0x00)); got != 2 {
		t.Errorf("ProbersFor(0x00) = %d probers, want 2", got)
	}
	if got := r.ProbersFor(0x80); len(got) != 1 || got[0].ID != RTP {
		t.Errorf("ProbersFor(0x80) = %v, want just the ungated prober", got)
	}
	// Pass-1 tables only list probers with Pass1 set and a Probe.
	if got := len(r.Pass1ProbersFor(0x00)); got != 1 {
		t.Errorf("Pass1ProbersFor(0x00) = %d probers, want 1", got)
	}
	if got := len(r.Pass1ProbersFor(0x80)); got != 0 {
		t.Errorf("Pass1ProbersFor(0x80) = %d probers, want 0", got)
	}
	// Admitted probers keep precedence order.
	ps := r.ProbersFor(0x10)
	if len(ps) != 2 || ps[0].Precedence != 10 || ps[1].Precedence != 60 {
		t.Errorf("ProbersFor(0x10) out of precedence order: %v", ps)
	}
}

func TestWithoutDropsHandlerAndRebuildsTables(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeHandler{
		meta:    Meta{ID: STUN, Name: "s", Order: 1},
		probers: []Prober{{Precedence: 10, Validate: noopValidate}},
	})
	r.Register(fakeHandler{
		meta:    Meta{ID: DTLS, Name: "d", Order: 5},
		probers: []Prober{{Precedence: 45, First: func(b byte) bool { return b >= 20 && b <= 63 }, Validate: noopValidate}},
	})
	sub := r.Without(DTLS)
	if sub.Handler(DTLS) != nil {
		t.Error("Without kept the dropped handler")
	}
	if sub.Handler(STUN) == nil {
		t.Error("Without dropped a kept handler")
	}
	for _, p := range sub.ProbersFor(22) {
		if p.ID == DTLS {
			t.Error("Without left the dropped protocol in the first-byte table")
		}
	}
	// The original registry is untouched.
	if r.Handler(DTLS) == nil || len(r.ProbersFor(22)) != 2 {
		t.Error("Without mutated the source registry")
	}
}

func TestIDStringFallback(t *testing.T) {
	if got := ID(MaxIDs - 1).String(); got != "unknown" {
		t.Errorf("unregistered ID String() = %q, want %q", got, "unknown")
	}
	if got := ID(MaxIDs - 1).Family(); got != ID(MaxIDs-1) {
		t.Errorf("unregistered ID Family() = %v, want itself", got)
	}
}
