package appsim

import (
	"math"
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// Zoom wire behaviour (paper §5.2.1, §5.3):
//
//   - every RTP/RTCP datagram sits behind a 24-39 byte proprietary
//     header: a direction byte (0x00 client→server, 0x04 server→client;
//     0x01/0x05 when a type-7 wrapper is present), an SFU section with a
//     constant 4-byte media ID per stream, and a media-section type byte
//     (15 audio RTP, 16 video RTP, 33-35 RTCP, 7 wrapper);
//   - ~20% of datagrams are fully proprietary, 53% of those being
//     1000-byte filler messages of one repeated byte, sent in ramping
//     bursts at stream start (bandwidth probing);
//   - SSRCs come from a fixed per-network-configuration set and never
//     change across calls;
//   - 0.21% of RTP datagrams carry two RTP messages (payload type 110,
//     7-byte first payload, shared SSRC and timestamp);
//   - STUN is the classic RFC 3489 variant with undefined attribute
//     0x0101 in Binding Requests and 0x0103 in the server's Shared
//     Secret Requests, observed mid-call only in Wi-Fi P2P mode.
const (
	zoomDirToServer    = 0x00
	zoomDirFromServer  = 0x04
	zoomDirToServer7   = 0x01
	zoomDirFromServer7 = 0x05

	zoomTypeAudio   = 15
	zoomTypeVideo   = 16
	zoomTypeRTCP    = 33
	zoomTypeWrapper = 7
)

// zoomSSRCs returns the fixed SSRC set for a network configuration
// (§5.2.2: Zoom does not randomize SSRC values across calls).
func zoomSSRCs(n Network) [4]uint32 {
	switch n {
	case Cellular:
		return [4]uint32{0x1001401, 0x1001402, 0x1000401, 0x1000402}
	case WiFiP2P:
		return [4]uint32{0x1000801, 0x1000802, 0x1000401, 0x1000402}
	default: // Wi-Fi relay
		return [4]uint32{0x1000C01, 0x1000C02, 0x1000401, 0x1000402}
	}
}

// zoomRTPPayloadTypes is the observed payload-type set (Table 5).
var zoomRTPPayloadTypes = func() []uint8 {
	pts := []uint8{0, 3, 4, 5, 10, 12, 13, 19, 20, 25, 33, 35, 38, 41, 45, 46, 49, 59, 68, 69, 74, 75, 82, 83, 89, 92, 93, 95, 98, 99}
	for pt := uint8(102); pt <= 121; pt++ {
		pts = append(pts, pt)
	}
	return append(pts, 123, 126, 127)
}()

// zoomHeader builds the proprietary header. The header length varies
// 24-39 bytes; wrapped packets carry the type-7 byte plus the inner
// media type.
func zoomHeader(e *env, dirByte byte, mediaType byte, mediaID uint32, wrap bool) []byte {
	h := make([]byte, 0, 39)
	h = append(h, dirByte, 0x10)
	h = append(h, byte(mediaID>>24), byte(mediaID>>16), byte(mediaID>>8), byte(mediaID))
	// Opaque SFU fields (timestamps, flags). Drawn from the seeded rng;
	// kept odd-valued in the length-like positions so they can never
	// satisfy a classic-STUN exact-length parse.
	h = append(h, e.rng.Bytes(8)...)
	if wrap {
		h = append(h, zoomTypeWrapper)
		h = append(h, e.rng.Bytes(4)...)
	}
	h = append(h, mediaType)
	// Trailing opaque media-section fields; vary the total length.
	h = append(h, e.rng.Bytes(9+e.rng.IntN(7))...)
	return h
}

func generateZoom(e *env) {
	cfg := e.cfg
	ssrcs := zoomSSRCs(cfg.Network)
	relayPhase := e.mode == ModeRelay

	peerAddr := e.peer(relayPhase)
	basePeerPort := uint16(8801)
	if !relayPhase {
		basePeerPort = 50002
	}
	// Each media stream rides its own 5-tuple, as the paper observed
	// ("a 4-byte field that remains constant for each RTP transport
	// stream (defined by 5-tuple) within a call").
	callerFor := func(i int) netip.AddrPort { return netip.AddrPortFrom(e.callerLocal, 50000+uint16(i)) }
	peerFor := func(i int) netip.AddrPort { return netip.AddrPortFrom(peerAddr, basePeerPort+uint16(i)) }
	caller, peer := callerFor(0), peerFor(0)

	dirOut, dirIn := byte(zoomDirToServer), byte(zoomDirFromServer)
	dirOut7, dirIn7 := byte(zoomDirToServer7), byte(zoomDirFromServer7)

	// Four media streams: caller audio/video out, callee audio/video in.
	type zstream struct {
		ms      *mediaStream
		mediaID uint32
		tuple   int
		out     bool
		video   bool
	}
	// Two bidirectional transport streams: one for audio, one for
	// video. The proprietary header's 4-byte media ID is constant per
	// 5-tuple (§5.3), shared by both directions.
	streams := make([]zstream, 4)
	for i, ssrc := range ssrcs {
		video := i%2 == 1
		tsStep := uint32(960)
		if video {
			tsStep = 3000
		}
		tuple := i % 2 // 0 = audio tuple, 1 = video tuple
		streams[i] = zstream{
			ms:      newMediaStream(e.rng, ssrc, 99, tsStep),
			mediaID: 0xA0000000 | uint32(tuple+1)<<8 | uint32(cfg.Seed&0xff),
			tuple:   tuple,
			out:     i < 2,
			video:   video,
		}
	}

	rate := cfg.rate()
	interval := time.Second / time.Duration(rate)
	end := cfg.Start.Add(cfg.Duration)

	mediaCount := 0
	ptIdx := 0
	rtcpEvery := 71 // ≈1.1% of media messages; coprime to stream count
	fillerEvery := 0

	// Pre-compute filler schedule: fully proprietary ≈ 20% of messages,
	// 53% of which are 1000-byte fillers in a ramping burst at stream
	// start, the rest opaque control datagrams spread across the call.
	totalMedia := 4 * rate * int(cfg.Duration/time.Second)
	fillerTarget := totalMedia * 20 / 79 * 53 / 100
	otherPropTarget := totalMedia*20/79 - fillerTarget
	if otherPropTarget > 0 {
		fillerEvery = totalMedia / otherPropTarget
	}

	// Filler burst: ramp over the first fifth of the call on the first
	// outgoing media stream's 5-tuple.
	burstDur := cfg.Duration / 5
	if fillerTarget > 0 && burstDur > 0 {
		fb := byte(0x01)
		if e.rng.IntN(2) == 1 {
			fb = 0x02
		}
		for i := 0; i < fillerTarget; i++ {
			// Square-root time mapping: inter-packet spacing shrinks as
			// the burst progresses, emulating the 0→500 pkt/s ramp.
			frac := float64(i) / float64(fillerTarget)
			at := cfg.Start.Add(time.Duration(math.Sqrt(frac) * float64(burstDur)))
			payload := make([]byte, 1000)
			for j := range payload {
				payload[j] = fb
			}
			e.push(at.Add(e.jitter(2)), caller, peer, payload)
		}
	}

	tick := 0
	for at := cfg.Start; at.Before(end); at = at.Add(interval) {
		for si := range streams {
			st := &streams[si]
			tick++
			src, dst := callerFor(st.tuple), peerFor(st.tuple)
			dOut, dOut7 := dirOut, dirOut7
			if !st.out {
				src, dst = dst, src
				dOut, dOut7 = dirIn, dirIn7
			}
			// Occasionally emit RTCP instead of media.
			if tick%rtcpEvery == 0 {
				sr := rtcp.EncodeSR(&rtcp.SenderReport{
					SSRC: st.ms.ssrc,
					Info: rtcp.SenderInfo{
						NTPTimestamp: ntpTime(at),
						RTPTimestamp: st.ms.ts,
						PacketCount:  uint32(mediaCount),
						OctetCount:   uint32(mediaCount * 600),
					},
				})
				sdes := rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{
					SSRC:  st.ms.ssrc,
					Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "zoom-client"}},
				}}})
				payload := append(zoomHeader(e, dOut, zoomTypeRTCP, st.mediaID, false), rtcp.Compound(sr, sdes)...)
				e.push(at.Add(e.jitter(3)), src, dst, payload)
				continue
			}

			mediaCount++
			pt := zoomRTPPayloadTypes[ptIdx%len(zoomRTPPayloadTypes)]
			ptIdx++
			st.ms.pt = pt
			size := 120
			mType := byte(zoomTypeAudio)
			if st.video {
				size = e.mediaSize(at, true, 700+e.rng.IntN(300))
				mType = zoomTypeVideo
			}

			// 0.21% of RTP datagrams carry two RTP messages (§5.3).
			if mediaCount%480 == 50 {
				st.ms.pt = 110
				first := st.ms.next(7, nil, false)
				second := st.ms.next(size, nil, false)
				second.Timestamp = first.Timestamp // shared timestamp
				payload := append(zoomHeader(e, dOut, mType, st.mediaID, false), first.Encode()...)
				payload = append(payload, second.Encode()...)
				e.push(e.mediaAt(at, st.video, 3), src, dst, payload)
				continue
			}

			// 6.9% of relay/cellular media packets use the type-7
			// wrapper with the 0x01/0x05 direction bytes (§5.3).
			wrap := relayPhase && tick%14 == 0
			dir := dOut
			if wrap {
				dir = dOut7
			}
			pkt := st.ms.next(size, nil, false)
			payload := append(zoomHeader(e, dir, mType, st.mediaID, wrap), pkt.Encode()...)
			e.push(e.mediaAt(at, st.video, 3), src, dst, payload)

			// Other fully proprietary control datagrams.
			if fillerEvery > 0 && tick%fillerEvery == 0 {
				ctrl := append([]byte{0xAA, 0x55}, e.rng.Bytes(46)...)
				e.push(at.Add(e.jitter(4)), src, dst, ctrl)
			}
		}
	}

	// Mid-call STUN occurs only in Wi-Fi P2P mode (§4.1.3): classic RFC
	// 3489 Binding Requests with undefined attribute 0x0101, and Shared
	// Secret Requests from the server with undefined attribute 0x0103.
	if cfg.Network == WiFiP2P {
		stunSrc := netip.AddrPortFrom(e.callerLocal, 54000)
		stunDst := netip.AddrPortFrom(e.stunAddr, 3478)
		n := 3
		for i := 0; i < n; i++ {
			at := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(n+1))
			req := &stun.Message{
				Type:          stun.TypeBindingRequest,
				Classic:       true,
				CookieWord:    e.rng.Uint32(),
				TransactionID: e.rng.TxID(),
			}
			req.Add(stun.AttrType(0x0101), []byte("12345678901234567890"))
			e.push(at, stunSrc, stunDst, req.Encode())

			ssr := &stun.Message{
				Type:          stun.TypeSharedSecretRequest,
				Classic:       true,
				CookieWord:    e.rng.Uint32(),
				TransactionID: e.rng.TxID(),
			}
			ssr.Add(stun.AttrType(0x0103), e.rng.Bytes(8))
			e.push(at.Add(40*time.Millisecond), stunDst, stunSrc, ssr.Encode())
		}
	}
}
