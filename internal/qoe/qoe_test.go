package qoe

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// feedFrames feeds n frames of pkts packets each: packets within a
// frame are 1ms apart, frame starts are interval apart.
func feedFrames(s *Stream, n, pkts, size int, interval time.Duration) {
	for f := 0; f < n; f++ {
		start := t0.Add(time.Duration(f) * interval)
		for p := 0; p < pkts; p++ {
			s.Observe(start.Add(time.Duration(p)*time.Millisecond), size)
		}
	}
}

func TestFrameSegmentation(t *testing.T) {
	s := NewStream(Config{})
	// 30 frames at ~33ms spacing, 3 packets each: burst gaps (1ms) stay
	// under the 10ms default, frame gaps (31ms) exceed it.
	feedFrames(s, 30, 3, 1200, 33*time.Millisecond)
	f := s.Features("k")
	if f.Frames != 30 {
		t.Fatalf("frames = %d, want 30", f.Frames)
	}
	if f.Packets != 90 || f.Bytes != 90*1200 {
		t.Fatalf("packets/bytes = %d/%d", f.Packets, f.Bytes)
	}
	// Span = 29 frame intervals + 2ms trailing burst.
	wantDur := (29*33 + 2) * time.Millisecond
	if f.Seconds != round3(wantDur.Seconds()) {
		t.Fatalf("seconds = %v, want %v", f.Seconds, round3(wantDur.Seconds()))
	}
	wantRate := round3(30 / wantDur.Seconds())
	if f.FrameRate != wantRate {
		t.Fatalf("frame rate = %v, want %v", f.FrameRate, wantRate)
	}
	wantKbps := round3(float64(90*1200) * 8 / wantDur.Seconds() / 1000)
	if f.BitrateKbps != wantKbps {
		t.Fatalf("bitrate = %v, want %v", f.BitrateKbps, wantKbps)
	}
	// Perfectly periodic frames: zero gap jitter, no stalls.
	if f.GapJitterMs != 0 {
		t.Fatalf("gap jitter = %v, want 0", f.GapJitterMs)
	}
	if f.Stalls != 0 || f.StallSeconds != 0 || f.LongestStallSeconds != 0 {
		t.Fatalf("stalls = %d/%v/%v, want none", f.Stalls, f.StallSeconds, f.LongestStallSeconds)
	}
	if !f.Media {
		t.Fatal("90 packets over ~1s should pass the media gate")
	}
}

func TestStallDetection(t *testing.T) {
	s := NewStream(Config{})
	// 10 frames at 33ms, then a 500ms freeze, then 10 more.
	feedFrames(s, 10, 3, 1000, 33*time.Millisecond)
	freeze := t0.Add(9*33*time.Millisecond + 500*time.Millisecond)
	for f := 0; f < 10; f++ {
		start := freeze.Add(time.Duration(f) * 33 * time.Millisecond)
		for p := 0; p < 3; p++ {
			s.Observe(start.Add(time.Duration(p)*time.Millisecond), 1000)
		}
	}
	f := s.Features("k")
	if f.Frames != 20 {
		t.Fatalf("frames = %d, want 20", f.Frames)
	}
	if f.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", f.Stalls)
	}
	if f.StallSeconds != 0.5 || f.LongestStallSeconds != 0.5 {
		t.Fatalf("stall seconds = %v/%v, want 0.5", f.StallSeconds, f.LongestStallSeconds)
	}
	if f.GapJitterMs == 0 {
		t.Fatal("the freeze must register as gap jitter")
	}
}

func TestGapJitter(t *testing.T) {
	s := NewStream(Config{})
	// Alternating 20ms/40ms frame gaps: every successive gap pair
	// differs by 20ms, so the mean absolute deviation is exactly 20ms.
	ts := t0
	s.Observe(ts, 500)
	for i := 0; i < 20; i++ {
		gap := 20 * time.Millisecond
		if i%2 == 1 {
			gap = 40 * time.Millisecond
		}
		ts = ts.Add(gap)
		s.Observe(ts, 500)
	}
	f := s.Features("k")
	if f.GapJitterMs != 20 {
		t.Fatalf("gap jitter = %v, want 20", f.GapJitterMs)
	}
}

func TestReorderClamp(t *testing.T) {
	s := NewStream(Config{})
	s.Observe(t0, 100)
	s.Observe(t0.Add(30*time.Millisecond), 100)
	// A reordered (earlier) arrival must not produce a negative gap or
	// extra frame.
	s.Observe(t0.Add(20*time.Millisecond), 100)
	s.Observe(t0.Add(60*time.Millisecond), 100)
	f := s.Features("k")
	if f.Frames != 3 {
		t.Fatalf("frames = %d, want 3", f.Frames)
	}
	if f.Seconds != 0.06 {
		t.Fatalf("seconds = %v, want 0.06", f.Seconds)
	}
}

func TestEmptyAndSinglePacket(t *testing.T) {
	s := NewStream(Config{})
	f := s.Features("empty")
	if f.Packets != 0 || f.Frames != 0 || f.Media {
		t.Fatalf("empty stream features: %+v", f)
	}
	s.Observe(t0, 900)
	f = s.Features("one")
	if f.Packets != 1 || f.Frames != 1 || f.Seconds != 0 || f.FrameRate != 0 || f.Media {
		t.Fatalf("single-packet features: %+v", f)
	}
}

func TestMediaGate(t *testing.T) {
	// Below MinMediaPackets: not media.
	s := NewStream(Config{})
	feedFrames(s, 10, 1, 100, 30*time.Millisecond)
	if s.Features("k").Media {
		t.Fatal("10 packets must not pass the default 50-packet gate")
	}
	// Enough packets but glacial rate: not media.
	s = NewStream(Config{})
	feedFrames(s, 60, 1, 100, 2*time.Second)
	if s.Features("k").Media {
		t.Fatal("0.5 pps must not pass the default 5 pps gate")
	}
	// Custom gate.
	s = NewStream(Config{MinMediaPackets: 5, MinMediaRate: 1})
	feedFrames(s, 10, 1, 100, 30*time.Millisecond)
	if !s.Features("k").Media {
		t.Fatal("custom gate should admit 10 packets at ~33 pps")
	}
}

func TestChunkedObservationMatchesSingle(t *testing.T) {
	// The accumulator must be chunk-boundary-independent: feeding the
	// same sequence through one accumulator (however the caller batches
	// its Observe calls) always yields identical features. This is the
	// property that makes eviction-mode chunking and cross-shard merges
	// byte-identical to serial.
	mk := func() *Stream { return NewStream(Config{}) }
	a, b := mk(), mk()
	var seq []time.Time
	ts := t0
	for i := 0; i < 200; i++ {
		gap := time.Duration(1+i%40) * time.Millisecond
		if i%37 == 0 {
			gap = 300 * time.Millisecond
		}
		ts = ts.Add(gap)
		seq = append(seq, ts)
	}
	for _, ts := range seq {
		a.Observe(ts, 700)
	}
	for i, ts := range seq {
		b.Observe(ts, 700)
		if i%13 == 0 {
			// Interleave Features calls: finalization must not disturb
			// the accumulator.
			_ = b.Features("k")
		}
	}
	fa, fb := a.Features("k"), b.Features("k")
	if fa != fb {
		t.Fatalf("features diverged:\n a=%+v\n b=%+v", fa, fb)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != nil {
		t.Fatal("no streams must summarize to nil")
	}
	if s := Summarize([]StreamFeatures{{Media: false, FrameRate: 30}}); s != nil {
		t.Fatal("non-media streams must summarize to nil")
	}
	s := Summarize([]StreamFeatures{
		{Media: true, FrameRate: 30, BitrateKbps: 1000, GapJitterMs: 2, Stalls: 1, StallSeconds: 0.3, LongestStallSeconds: 0.3},
		{Media: true, FrameRate: 20, BitrateKbps: 500, GapJitterMs: 5, Stalls: 2, StallSeconds: 0.9, LongestStallSeconds: 0.6},
		{Media: false, FrameRate: 999, BitrateKbps: 999, Stalls: 99},
	})
	if s == nil || s.MediaStreams != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.FrameRate != 25 || s.BitrateKbps != 1500 {
		t.Fatalf("frame rate/bitrate = %v/%v", s.FrameRate, s.BitrateKbps)
	}
	if s.GapJitterMs != 5 || s.Stalls != 3 || s.StallSeconds != 1.2 || s.LongestStallSeconds != 0.6 {
		t.Fatalf("jitter/stalls = %+v", s)
	}
}

func TestSummaryField(t *testing.T) {
	s := &Summary{MediaStreams: 2, FrameRate: 24.5, BitrateKbps: 800,
		GapJitterMs: 3.25, Stalls: 4, StallSeconds: 1.5, LongestStallSeconds: 0.75}
	want := map[string]float64{
		"media_streams": 2, "frame_rate": 24.5, "bitrate_kbps": 800,
		"gap_jitter_ms": 3.25, "stalls": 4, "stall_seconds": 1.5,
		"longest_stall_seconds": 0.75,
	}
	for _, name := range Fields {
		v, ok := s.Field(name)
		if !ok {
			t.Fatalf("Field(%q) not resolved", name)
		}
		if v != want[name] {
			t.Fatalf("Field(%q) = %v, want %v", name, v, want[name])
		}
		if !ValidField(name) {
			t.Fatalf("ValidField(%q) = false", name)
		}
	}
	if _, ok := s.Field("nope"); ok {
		t.Fatal("unknown field resolved")
	}
	if ValidField("nope") {
		t.Fatal("ValidField accepted unknown name")
	}
	var nilSum *Summary
	if _, ok := nilSum.Field("frame_rate"); ok {
		t.Fatal("nil summary resolved a field")
	}
}

func TestPublish(t *testing.T) {
	reg := metrics.NewRegistry()
	s := &Summary{MediaStreams: 3, FrameRate: 29.97, BitrateKbps: 1500.5,
		GapJitterMs: 1.234, Stalls: 2, StallSeconds: 0.8}
	s.Publish(reg, "Zoom")
	snap := reg.Snapshot()
	if g := snap.Gauges[`qoe_frame_rate_milli{app=Zoom}`]; g != 29970 {
		t.Fatalf("frame rate gauge = %d", g)
	}
	if g := snap.Gauges[`qoe_media_streams{app=Zoom}`]; g != 3 {
		t.Fatalf("media streams gauge = %d", g)
	}
	if c := snap.Counters[`qoe_stalls_total{app=Zoom}`]; c != 2 {
		t.Fatalf("stalls counter = %d", c)
	}
	// Nil registry and nil summary are no-ops.
	s.Publish(nil, "Zoom")
	(*Summary)(nil).Publish(reg, "Zoom")
}

func TestDefaultsResolved(t *testing.T) {
	cfg := Config{}.resolved()
	if cfg.FrameGap != DefaultFrameGap || cfg.StallGap != DefaultStallGap ||
		cfg.MinMediaPackets != DefaultMinMediaPackets || cfg.MinMediaRate != DefaultMinMediaRate {
		t.Fatalf("resolved defaults = %+v", cfg)
	}
	custom := Config{FrameGap: time.Millisecond, StallGap: time.Second, MinMediaPackets: 1, MinMediaRate: 0.5}
	if custom.resolved() != custom {
		t.Fatal("explicit config must survive resolution")
	}
}

func TestRound3(t *testing.T) {
	if round3(1.23456) != 1.235 || round3(0) != 0 {
		t.Fatal("round3 broken")
	}
	if math.Signbit(round3(-0.0001)+0) && round3(-0.0001) != 0 {
		t.Fatal("round3 near-zero negative")
	}
}

func TestFeaturesJSONStable(t *testing.T) {
	s := NewStream(Config{})
	feedFrames(s, 60, 2, 1100, 33*time.Millisecond)
	f := s.Features("10.0.0.1:5000-10.0.0.2:6000/udp")
	b1, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(s.Features("10.0.0.1:5000-10.0.0.2:6000/udp"))
	if string(b1) != string(b2) {
		t.Fatal("re-finalized features changed")
	}
}
