package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// Incremental-read tests for the pcapng reader: ReadPacketInto is the
// substrate of the streaming analysis path, so its buffer-reuse
// contract, its behavior on captures truncated mid-block, and its
// handling of Interface Description Blocks appearing between packet
// blocks are pinned here at the record level.

// buildLEBlock assembles a pcapng block little-endian.
func buildLEBlock(typ uint32, body []byte) []byte {
	total := uint32(12 + len(body))
	out := make([]byte, total)
	binary.LittleEndian.PutUint32(out[0:4], typ)
	binary.LittleEndian.PutUint32(out[4:8], total)
	copy(out[8:], body)
	binary.LittleEndian.PutUint32(out[total-4:], total)
	return out
}

func leSHB() []byte {
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	binary.LittleEndian.PutUint64(shb[8:16], ^uint64(0))
	return buildLEBlock(blockSHB, shb)
}

// leIDB builds an IDB; tsresol < 0 omits the option (default µs).
func leIDB(lt LinkType, tsresol int) []byte {
	body := make([]byte, 8)
	binary.LittleEndian.PutUint16(body[0:2], uint16(lt))
	binary.LittleEndian.PutUint32(body[4:8], DefaultSnapLen)
	if tsresol >= 0 {
		opt := make([]byte, 8)
		binary.LittleEndian.PutUint16(opt[0:2], 9) // if_tsresol
		binary.LittleEndian.PutUint16(opt[2:4], 1)
		opt[4] = byte(tsresol)
		body = append(body, opt...)
	}
	return buildLEBlock(blockIDB, body)
}

// leEPB builds an EPB on the given interface with a raw timestamp.
func leEPB(ifID uint32, tsRaw uint64, data []byte) []byte {
	padded := (len(data) + 3) &^ 3
	body := make([]byte, 20+padded)
	binary.LittleEndian.PutUint32(body[0:4], ifID)
	binary.LittleEndian.PutUint32(body[4:8], uint32(tsRaw>>32))
	binary.LittleEndian.PutUint32(body[8:12], uint32(tsRaw))
	binary.LittleEndian.PutUint32(body[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(body[16:20], uint32(len(data)))
	copy(body[20:], data)
	return buildLEBlock(blockEPB, body)
}

// TestNGReadPacketIntoReusesBuffer checks the caller-managed-storage
// contract: the returned Data aliases the caller's buffer, one buffer
// serves the whole stream once grown, and each read overwrites the
// previous record.
func TestNGReadPacketIntoReusesBuffer(t *testing.T) {
	var raw bytes.Buffer
	w := NewNGWriter(&raw, LinkTypeRaw)
	first := bytes.Repeat([]byte{0xAA}, 64)
	second := bytes.Repeat([]byte{0xBB}, 32)
	for i, data := range [][]byte{first, second} {
		if err := w.WritePacket(Packet{Timestamp: time.Unix(int64(1700000000+i), 0).UTC(), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewNGReader(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	p1, _, err := r.ReadPacketInto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Data, first) {
		t.Fatalf("first packet data mismatch")
	}
	if buf == nil {
		t.Fatal("buffer was not written back")
	}
	grownTo := cap(buf)
	p1Alias := p1.Data

	p2, _, err := r.ReadPacketInto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p2.Data, second) {
		t.Fatalf("second packet data mismatch")
	}
	if cap(buf) != grownTo {
		t.Errorf("buffer reallocated for a smaller record: cap %d -> %d", grownTo, cap(buf))
	}
	// The first packet's Data aliased the shared buffer and is now
	// overwritten — the documented "valid until the next read" contract.
	if bytes.Equal(p1Alias, first) {
		t.Error("previous record still intact after the next read; Data is not aliasing the shared buffer")
	}
	if _, _, err := r.ReadPacketInto(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("end = %v, want EOF", err)
	}
}

// TestNGTruncatedMidBlock cuts a valid stream at every interesting
// point inside the final EPB: a cut at a block boundary is a clean EOF,
// while a cut inside the block header, body, or trailer surfaces an
// error instead of silently dropping the record.
func TestNGTruncatedMidBlock(t *testing.T) {
	var full bytes.Buffer
	full.Write(leSHB())
	full.Write(leIDB(LinkTypeRaw, -1))
	full.Write(leEPB(0, 1_700_000_000_000_000, bytes.Repeat([]byte{7}, 40)))
	epbStart := full.Len()
	lastEPB := leEPB(0, 1_700_000_001_000_000, bytes.Repeat([]byte{8}, 40))
	full.Write(lastEPB)

	cuts := []struct {
		name    string
		keep    int // bytes of the last EPB to keep
		wantEOF bool
	}{
		{"at block boundary", 0, true},
		{"inside block header", 5, false},
		{"inside body", 24, false},
		{"inside trailer", len(lastEPB) - 2, false},
	}
	for _, tc := range cuts {
		r, err := NewNGReader(bytes.NewReader(full.Bytes()[:epbStart+tc.keep]))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf []byte
		if _, _, err := r.ReadPacketInto(&buf); err != nil {
			t.Fatalf("%s: first packet: %v", tc.name, err)
		}
		_, _, err = r.ReadPacketInto(&buf)
		if tc.wantEOF {
			if !errors.Is(err, io.EOF) {
				t.Errorf("%s: err = %v, want clean EOF", tc.name, err)
			}
		} else if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: err = %v, want a truncation error", tc.name, err)
		}
	}
}

// TestNGInterfaceInterleaving registers a second interface between
// packet blocks — as multi-interface captures do — and checks each
// packet resolves its own interface's link type and timestamp
// resolution, while LinkType() keeps reporting the first interface.
func TestNGInterfaceInterleaving(t *testing.T) {
	var raw bytes.Buffer
	raw.Write(leSHB())
	raw.Write(leIDB(LinkTypeEthernet, -1)) // if0: Ethernet, µs
	raw.Write(leEPB(0, 2_000_000, []byte{1, 2, 3}))
	raw.Write(leIDB(LinkTypeRaw, 9)) // if1 appears mid-stream: raw IP, ns
	raw.Write(leEPB(1, 1_500_000_000, []byte{4, 5}))
	raw.Write(leEPB(0, 3_000_000, []byte{6}))

	r, err := NewNGReader(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		lt   LinkType
		ts   time.Time
		data []byte
	}{
		{LinkTypeEthernet, time.Unix(2, 0).UTC(), []byte{1, 2, 3}},
		{LinkTypeRaw, time.Unix(1, 500000000).UTC(), []byte{4, 5}},
		{LinkTypeEthernet, time.Unix(3, 0).UTC(), []byte{6}},
	}
	var buf []byte
	for i, w := range want {
		p, lt, err := r.ReadPacketInto(&buf)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if lt != w.lt {
			t.Errorf("packet %d link type = %v, want %v", i, lt, w.lt)
		}
		if !p.Timestamp.Equal(w.ts) {
			t.Errorf("packet %d ts = %v, want %v", i, p.Timestamp, w.ts)
		}
		if !bytes.Equal(p.Data, w.data) {
			t.Errorf("packet %d data = %v, want %v", i, p.Data, w.data)
		}
	}
	if _, _, err := r.ReadPacketInto(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("end = %v, want EOF", err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType() = %v, want first interface's %v", r.LinkType(), LinkTypeEthernet)
	}
}

// TestPCAPReadPacketIntoReusesBuffer pins the same contract on the
// classic-pcap reader.
func TestPCAPReadPacketIntoReusesBuffer(t *testing.T) {
	var raw bytes.Buffer
	w := NewWriter(&raw, LinkTypeRaw)
	big := bytes.Repeat([]byte{0xCC}, 128)
	small := []byte{1, 2, 3}
	for i, data := range [][]byte{big, small} {
		if err := w.WritePacket(Packet{Timestamp: time.Unix(int64(1700000000+i), 0).UTC(), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	p1, err := r.ReadPacketInto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Data, big) {
		t.Fatal("first packet data mismatch")
	}
	grownTo := cap(buf)
	p2, err := r.ReadPacketInto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p2.Data, small) || cap(buf) != grownTo {
		t.Errorf("second read: data ok=%v cap %d -> %d", bytes.Equal(p2.Data, small), grownTo, cap(buf))
	}
	if _, err := r.ReadPacketInto(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("end = %v, want EOF", err)
	}
}
