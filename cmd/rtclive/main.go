// Command rtclive moves captures over the network and runs the
// always-on compliance service: `replay` streams a pcap file to a
// remote collector with original (scaled) timing, `collect` receives
// such a stream, optionally analyzing it on the fly and/or writing it
// back out as a pcap file, and `daemon` runs a collector continuously
// from a declarative config file — epoch-rotated analysis, a persisted
// per-app compliance trend served at /compliance/trend, SIGHUP config
// reload, and graceful SIGTERM drain.
//
// Usage:
//
//	rtclive collect -listen :9898 -out received.pcap -analyze
//	rtclive replay  -pcap traces/000_zoom_wi-fi-p2p.pcap -to host:9898 -speed 50
//	rtclive daemon  -config rtclive.yaml
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/live"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/pipeline"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "replay":
		err = runReplay(os.Args[2:])
	case "collect":
		err = runCollect(os.Args[2:])
	case "daemon":
		err = runDaemon(os.Args[2:])
	case "-version", "--version", "version":
		cmdutil.PrintVersion(os.Stdout, "rtclive")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtclive:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rtclive replay  -pcap FILE -to HOST:PORT [-speed N] [-metrics-addr ADDR]
  rtclive collect -listen ADDR [-out FILE] [-analyze] [-max N] [-idle DUR] [-metrics-addr ADDR] [-trace-out FILE]
  rtclive daemon  -config FILE
  rtclive -version`)
	os.Exit(2)
}

// replayFlags is the replay subcommand's surface (pinned by the golden
// surface test).
func replayFlags() (*flag.FlagSet, *struct {
	pcapPath, to *string
	speed        *float64
	metAddr      *string
}) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	v := &struct {
		pcapPath, to *string
		speed        *float64
		metAddr      *string
	}{
		pcapPath: fs.String("pcap", "", "pcap file to replay"),
		to:       fs.String("to", "", "collector address host:port"),
		speed:    fs.Float64("speed", 10, "time compression factor (<=0: no pacing)"),
		metAddr:  cmdutil.MetricsAddrFlag(fs),
	}
	return fs, v
}

func runReplay(args []string) error {
	fs, v := replayFlags()
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *v.pcapPath == "" || *v.to == "" {
		return fmt.Errorf("replay requires -pcap and -to")
	}
	_, stopMetrics, err := cmdutil.ServeMetrics("rtclive", *v.metAddr)
	if err != nil {
		return err
	}
	defer stopMetrics()

	f, err := os.Open(*v.pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	frames, err := r.ReadAll()
	if err != nil {
		return err
	}

	exp, err := live.Dial(*v.to)
	if err != nil {
		return err
	}
	defer exp.Close()
	exp.Speed = *v.speed
	if *v.speed <= 0 {
		exp.Speed = live.SpeedInstant
	}

	begin := time.Now()
	if err := exp.Replay(context.Background(), frames); err != nil {
		return err
	}
	fmt.Printf("replayed %d frames to %s in %v\n", len(frames), *v.to, time.Since(begin).Round(time.Millisecond))
	return nil
}

// collectVals is the collect subcommand's flag surface.
type collectVals struct {
	listen, out       *string
	analyze           *bool
	workers, shards   *int
	maxFrames         *int
	idle, evict       *time.Duration
	reorder           *int
	metAddr, traceOut *string
}

func collectFlags() (*flag.FlagSet, *collectVals) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	v := &collectVals{
		listen:    fs.String("listen", ":9898", "UDP listen address"),
		out:       fs.String("out", "", "write the received frames to this pcap file"),
		analyze:   fs.Bool("analyze", false, "run the compliance pipeline on the received capture"),
		maxFrames: fs.Int("max", 0, "stop after this many frames (0 = until idle)"),
		idle:      fs.Duration("idle", 3*time.Second, "stop after this long without frames"),
		evict:     fs.Duration("evict", 0, "finalize streams idle this long to bound analysis memory (0 = off)"),
		reorder:   fs.Int("reorder", 256, "reorder-buffer depth for the streaming analysis"),
	}
	v.workers = cmdutil.WorkersFlag(fs)
	v.shards = cmdutil.ShardsFlag(fs)
	v.metAddr = cmdutil.MetricsAddrFlag(fs)
	v.traceOut = cmdutil.TraceOutFlag(fs, "(requires -analyze)")
	return fs, v
}

// config assembles the collect run's pipeline config.
func (v *collectVals) config() pipeline.Config {
	var cfg pipeline.Config
	cfg.Source.Kind = pipeline.SourceLive
	cfg.Source.Label = "live"
	cfg.Source.Listen = *v.listen
	cfg.Source.Idle = pipeline.Duration(*v.idle)
	cfg.Source.MaxFrames = *v.maxFrames
	cfg.Source.Reorder = *v.reorder
	cfg.Exec.Workers = *v.workers
	cfg.Exec.Shards = *v.shards
	cfg.Exec.EvictIdle = pipeline.Duration(*v.evict)
	cfg.Sinks.MetricsAddr = *v.metAddr
	cfg.Sinks.TraceOut = *v.traceOut
	return cfg
}

func runCollect(args []string) error {
	fs, v := collectFlags()
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *v.traceOut != "" && !*v.analyze {
		return fmt.Errorf("-trace-out requires -analyze")
	}
	cfg := v.config()
	if err := cfg.Validate(); err != nil {
		return err
	}
	reg, stopMetrics, err := cmdutil.ServeMetrics("rtclive", cfg.Sinks.MetricsAddr)
	if err != nil {
		return err
	}
	defer stopMetrics()

	col, err := live.Listen(cfg.Source.Listen)
	if err != nil {
		return err
	}
	defer col.Close()
	col.IdleTimeout = cfg.Source.Idle.Std()
	col.Metrics = reg
	fmt.Printf("collecting on %s (idle timeout %v)...\n", col.Addr(), cfg.Source.Idle.Std())

	// The analysis shares the offline pipeline's streaming Analyzer: the
	// call window defaults to the received span, frames are analyzed as
	// they arrive (through a small reorder buffer that undoes UDP
	// reordering on the mirror path), and nothing requires holding the
	// whole capture — unless -out needs the frames for the pcap file.
	runner, err := pipeline.NewRunner(cfg, reg)
	if err != nil {
		return err
	}
	defer runner.Close()
	var sess *pipeline.LiveSession
	if *v.analyze {
		if sess, err = runner.NewLiveSession(); err != nil {
			return err
		}
	}

	received := 0
	if *v.out == "" {
		// Pure streaming: no capture buffer at all. Frames emitted by
		// the reorder buffer are fed to the analyzer in small batches,
		// amortizing the per-feed bookkeeping (each frame is freshly
		// allocated, so batching retains nothing extra).
		feed := func(pkt pcap.Packet) error { return nil }
		if sess != nil {
			feed = sess.Push
		}
		rb := live.NewReorderBuffer(cfg.Source.Reorder, feed)
		received, err = col.Stream(context.Background(), cfg.Source.MaxFrames, rb.Push)
		if err != nil {
			return err
		}
		if err := rb.Flush(); err != nil {
			return err
		}
		if sess != nil {
			if err := sess.Flush(); err != nil {
				return err
			}
		}
	} else {
		frames, err := col.Collect(context.Background(), cfg.Source.MaxFrames)
		if err != nil {
			return err
		}
		received = len(frames)
		// Restore capture order so the pcap file and the analysis see
		// the original stream.
		live.SortByTimestamp(frames)
		f, err := os.Create(*v.out)
		if err != nil {
			return err
		}
		w := pcap.NewWriter(f, pcap.LinkTypeRaw)
		for _, fr := range frames {
			if err := w.WritePacket(fr); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *v.out)
		if sess != nil {
			for _, fr := range frames {
				if err := sess.Push(fr); err != nil {
					return err
				}
			}
			if err := sess.Flush(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("received %d frames (%d decode errors, %d dropped, %d reordered)\n",
		received, col.DecodeErrors, col.Dropped, col.Reordered)
	if received == 0 || sess == nil {
		return runner.FlushTrace(os.Stderr)
	}

	acct := sess.Accounting()
	ca, err := sess.Close()
	if err != nil {
		return err
	}
	if acct.Dropped > 0 {
		fmt.Printf("ingest: %d datagrams dropped under back-pressure (%d analyzed on %d shards)\n",
			acct.Dropped, acct.Analyzed, acct.Shards)
	}
	if err := runner.FlushTrace(os.Stderr); err != nil {
		return err
	}
	if ca.DecodeErrors > 0 {
		fmt.Printf("decode errors: %d undecodable frames in the analysis\n", ca.DecodeErrors)
	}
	if ratio, ok := ca.Stats.VolumeCompliance(); ok {
		fmt.Printf("volume compliance: %.2f%%\n", 100*ratio)
	}
	c, t := ca.Stats.TypeCompliance(dpi.ProtoUnknown)
	fmt.Printf("message types: %d/%d compliant\n", c, t)
	for _, fd := range ca.Findings {
		fmt.Printf("finding: %s: %s\n", fd.Kind, fd.Detail)
	}
	return nil
}

// daemonFlags is the daemon subcommand's surface.
func daemonFlags() (*flag.FlagSet, **string) {
	fs := flag.NewFlagSet("daemon", flag.ExitOnError)
	configPath := cmdutil.ConfigFlag(fs)
	return fs, &configPath
}

// runDaemon runs the always-on compliance service: config file + SIGHUP
// reload + graceful SIGTERM/SIGINT drain. The pipeline.Daemon owns the
// epoch rotation and the /compliance/trend series; this front-end only
// wires signals.
func runDaemon(args []string) error {
	fs, configPath := daemonFlags()
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if **configPath == "" {
		return fmt.Errorf("daemon requires -config")
	}
	d, err := pipeline.NewDaemon(**configPath, os.Stdout)
	if err != nil {
		return err
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case sig := <-sigc:
				switch sig {
				case syscall.SIGHUP:
					fmt.Fprintln(os.Stderr, "rtclive: SIGHUP: reloading config")
					d.Reload()
				default:
					fmt.Fprintf(os.Stderr, "rtclive: %v: draining\n", sig)
					d.Stop()
				}
			case <-done:
				return
			}
		}
	}()
	return d.Run()
}
