// Package qoe is a streaming, header-free QoE estimator: it derives
// experience-level features for each RTC media stream — frame rate,
// delivered bitrate, inter-frame gap jitter, and a stall/freeze
// heuristic — from nothing but datagram sizes and arrival times, per
// "Estimating WebRTC Video QoE Metrics Without Using Application
// Headers" (Sharma et al.). The estimator never parses a payload
// byte, so it works identically on standard RTP, proprietary-header,
// and fully proprietary traffic — exactly the populations the
// compliance pipeline classifies.
//
// The accumulator is strictly streaming (O(1) state per stream) and
// strictly deterministic: features are pure functions of the
// per-stream (timestamp, size) sequence in capture order, so serial,
// worker-parallel, and sharded runs produce bit-identical features —
// the same invariant the rest of the pipeline pins.
//
// Frame segmentation is the packet-burst heuristic from the source
// paper: video encoders emit each frame as a back-to-back burst of
// packets, so an inter-packet gap larger than FrameGap marks a frame
// boundary. On smoothly paced senders every packet is its own "frame"
// and FrameRate degrades gracefully to the packet rate — still a
// meaningful delivery-cadence signal.
package qoe

import (
	"math"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Defaults for Config's zero values.
const (
	// DefaultFrameGap is the inter-packet gap that closes a frame
	// burst. Consecutive packets of one encoded frame leave the sender
	// back-to-back (sub-millisecond on the wire, a few ms after
	// queueing); at 30 fps the next frame is ~33 ms away, so 10 ms
	// separates burst-internal gaps from frame-interval gaps across
	// the usual 15-60 fps range.
	DefaultFrameGap = 10 * time.Millisecond
	// DefaultStallGap is the inter-frame gap counted as a playback
	// stall: four nominal frame intervals at 20 fps. The source
	// paper's freeze detector uses the same order of magnitude.
	DefaultStallGap = 200 * time.Millisecond
	// DefaultMinMediaPackets and DefaultMinMediaRate gate the media
	// heuristic: a stream is "media" when it carried at least this
	// many datagrams at at least this packet rate. STUN keepalives and
	// signaling chatter fall below both.
	DefaultMinMediaPackets = 50
	DefaultMinMediaRate    = 5.0
)

// Config tunes the estimator. The zero value selects the defaults
// above; a nil *Config on core.Options disables estimation entirely at
// zero hot-path cost (one pointer test per datagram), mirroring
// Options.Metrics.
type Config struct {
	// FrameGap is the inter-packet gap that closes a frame burst.
	FrameGap time.Duration
	// StallGap is the inter-frame gap counted as a stall/freeze.
	StallGap time.Duration
	// MinMediaPackets and MinMediaRate gate StreamFeatures.Media.
	MinMediaPackets int
	MinMediaRate    float64
}

// resolved returns cfg with defaults filled in.
func (cfg Config) resolved() Config {
	if cfg.FrameGap <= 0 {
		cfg.FrameGap = DefaultFrameGap
	}
	if cfg.StallGap <= 0 {
		cfg.StallGap = DefaultStallGap
	}
	if cfg.MinMediaPackets <= 0 {
		cfg.MinMediaPackets = DefaultMinMediaPackets
	}
	if cfg.MinMediaRate <= 0 {
		cfg.MinMediaRate = DefaultMinMediaRate
	}
	return cfg
}

// Stream accumulates one RTC stream's QoE evidence. Feed datagrams in
// capture order with Observe; Features finalizes. Not safe for
// concurrent use — the pipeline owns one accumulator per stream on a
// single goroutine, like every other per-stream context.
type Stream struct {
	cfg Config

	packets int
	bytes   int64
	first   time.Time
	last    time.Time

	// Frame segmentation state: frames counts closed-plus-current
	// bursts, frameStart is the current burst's first arrival.
	frames     int
	frameStart time.Time

	// Inter-frame gap statistics. prevGap is the seconds between the
	// previous two frame starts; gapDiffSum accumulates |gap - prevGap|
	// over gapDiffs successive gap pairs (a mean-absolute-deviation
	// jitter, deterministic where an EWMA would be too, but with no
	// decay constant to tune).
	prevGap    float64
	prevGapOK  bool
	gapDiffSum float64
	gapDiffs   int

	stalls   int
	stallSum float64
	longest  float64
}

// NewStream returns an accumulator with cfg's defaults resolved.
func NewStream(cfg Config) *Stream {
	return &Stream{cfg: cfg.resolved()}
}

// Observe folds one datagram (arrival time, transport payload size)
// into the stream's evidence. Timestamps are expected in capture
// order; a reordered (earlier) timestamp is clamped to the previous
// arrival so impaired captures cannot produce negative gaps.
func (s *Stream) Observe(ts time.Time, size int) {
	s.packets++
	s.bytes += int64(size)
	if s.packets == 1 {
		s.first, s.last = ts, ts
		s.frames = 1
		s.frameStart = ts
		return
	}
	if ts.Before(s.last) {
		ts = s.last
	}
	if ts.Sub(s.last) > s.cfg.FrameGap {
		// The burst closed at s.last; a new frame starts at ts.
		gap := ts.Sub(s.frameStart).Seconds()
		if s.prevGapOK {
			s.gapDiffSum += math.Abs(gap - s.prevGap)
			s.gapDiffs++
		}
		s.prevGap, s.prevGapOK = gap, true
		if gap > s.cfg.StallGap.Seconds() {
			s.stalls++
			s.stallSum += gap
			if gap > s.longest {
				s.longest = gap
			}
		}
		s.frames++
		s.frameStart = ts
	}
	s.last = ts
}

// StreamFeatures is the finalized header-free QoE feature vector of
// one stream.
type StreamFeatures struct {
	// Stream is the flow key the features describe.
	Stream string `json:"stream"`
	// Packets, Bytes, and Seconds summarize the observed delivery.
	Packets int     `json:"packets"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// Frames is the number of segmented packet bursts; FrameRate is
	// frames per second over the stream's active span.
	Frames    int     `json:"frames"`
	FrameRate float64 `json:"frame_rate"`
	// BitrateKbps is the delivered transport-payload bitrate.
	BitrateKbps float64 `json:"bitrate_kbps"`
	// GapJitterMs is the mean absolute deviation between successive
	// inter-frame gaps, in milliseconds — delivery-cadence stability.
	GapJitterMs float64 `json:"gap_jitter_ms"`
	// Stalls counts inter-frame gaps above StallGap; StallSeconds sums
	// them and LongestStallSeconds is the worst single gap.
	Stalls              int     `json:"stalls"`
	StallSeconds        float64 `json:"stall_seconds"`
	LongestStallSeconds float64 `json:"longest_stall_seconds"`
	// Media reports whether the stream passed the media-volume gate
	// (Summary aggregates media streams only).
	Media bool `json:"media"`
}

// Features finalizes the accumulated evidence. Safe to call more than
// once; the accumulator stays usable (the daemon's epoch rotation
// never needs that, but chunked eviction finalization does).
func (s *Stream) Features(key string) StreamFeatures {
	f := StreamFeatures{
		Stream:              key,
		Packets:             s.packets,
		Bytes:               s.bytes,
		Frames:              s.frames,
		Stalls:              s.stalls,
		StallSeconds:        round3(s.stallSum),
		LongestStallSeconds: round3(s.longest),
	}
	if s.packets == 0 {
		return f
	}
	dur := s.last.Sub(s.first).Seconds()
	f.Seconds = round3(dur)
	if dur > 0 {
		f.FrameRate = round3(float64(s.frames) / dur)
		f.BitrateKbps = round3(float64(s.bytes) * 8 / dur / 1000)
	}
	if s.gapDiffs > 0 {
		f.GapJitterMs = round3(s.gapDiffSum / float64(s.gapDiffs) * 1000)
	}
	rate := 0.0
	if dur > 0 {
		rate = float64(s.packets) / dur
	}
	f.Media = s.packets >= s.cfg.MinMediaPackets && rate >= s.cfg.MinMediaRate
	return f
}

// round3 rounds to 3 decimals: enough resolution for every feature's
// unit, and it keeps the JSON forms short and stable. Deterministic,
// so the byte-identical invariants hold through it.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// Capture is the per-capture QoE result: one feature vector per RTC
// stream (in the pipeline's deterministic stream order) plus the
// media-stream summary the trend series carries.
type Capture struct {
	Streams []StreamFeatures `json:"streams"`
	Summary *Summary         `json:"summary,omitempty"`
}

// Summary aggregates the media streams of one capture (or daemon
// epoch) — the QoE fields a trend point carries. Nil when the capture
// had no media-gated stream.
type Summary struct {
	// MediaStreams counts the streams aggregated here.
	MediaStreams int `json:"media_streams"`
	// FrameRate is the mean media-stream frame rate; BitrateKbps is
	// the summed delivered bitrate.
	FrameRate   float64 `json:"frame_rate"`
	BitrateKbps float64 `json:"bitrate_kbps"`
	// GapJitterMs is the worst media-stream gap jitter.
	GapJitterMs float64 `json:"gap_jitter_ms"`
	// Stall accounting summed (and worst single stall) across media
	// streams.
	Stalls              int     `json:"stalls"`
	StallSeconds        float64 `json:"stall_seconds"`
	LongestStallSeconds float64 `json:"longest_stall_seconds"`
}

// Summarize folds the media streams of a feature list into a Summary,
// nil when none qualify. Deterministic for a deterministic input
// order.
func Summarize(streams []StreamFeatures) *Summary {
	var sum Summary
	var frSum float64
	for _, f := range streams {
		if !f.Media {
			continue
		}
		sum.MediaStreams++
		frSum += f.FrameRate
		sum.BitrateKbps += f.BitrateKbps
		if f.GapJitterMs > sum.GapJitterMs {
			sum.GapJitterMs = f.GapJitterMs
		}
		sum.Stalls += f.Stalls
		sum.StallSeconds += f.StallSeconds
		if f.LongestStallSeconds > sum.LongestStallSeconds {
			sum.LongestStallSeconds = f.LongestStallSeconds
		}
	}
	if sum.MediaStreams == 0 {
		return nil
	}
	sum.FrameRate = round3(frSum / float64(sum.MediaStreams))
	sum.BitrateKbps = round3(sum.BitrateKbps)
	sum.StallSeconds = round3(sum.StallSeconds)
	return &sum
}

// Fields lists the Summary field names Field resolves — the values
// alert qoe_floor rules can threshold.
var Fields = []string{
	"media_streams", "frame_rate", "bitrate_kbps", "gap_jitter_ms",
	"stalls", "stall_seconds", "longest_stall_seconds",
}

// ValidField reports whether name is a Field entry.
func ValidField(name string) bool {
	for _, f := range Fields {
		if f == name {
			return true
		}
	}
	return false
}

// Field resolves a Summary value by its JSON name. The second return
// is false for an unknown name or a nil summary.
func (s *Summary) Field(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	switch name {
	case "media_streams":
		return float64(s.MediaStreams), true
	case "frame_rate":
		return s.FrameRate, true
	case "bitrate_kbps":
		return s.BitrateKbps, true
	case "gap_jitter_ms":
		return s.GapJitterMs, true
	case "stalls":
		return float64(s.Stalls), true
	case "stall_seconds":
		return s.StallSeconds, true
	case "longest_stall_seconds":
		return s.LongestStallSeconds, true
	}
	return 0, false
}

// Publish exposes the summary as qoe_* series in the metrics registry,
// labelled by app: fractional features in milli-units (gauges carry
// int64), stalls as a monotone counter. A nil registry or summary is a
// no-op, matching the registry's own conventions.
func (s *Summary) Publish(reg *metrics.Registry, app string) {
	if s == nil || reg == nil {
		return
	}
	l := metrics.L("app", app)
	reg.Gauge("qoe_media_streams", l).Set(int64(s.MediaStreams))
	reg.Gauge("qoe_frame_rate_milli", l).Set(int64(math.Round(s.FrameRate * 1000)))
	reg.Gauge("qoe_bitrate_kbps_milli", l).Set(int64(math.Round(s.BitrateKbps * 1000)))
	reg.Gauge("qoe_gap_jitter_us", l).Set(int64(math.Round(s.GapJitterMs * 1000)))
	reg.Gauge("qoe_stall_seconds_milli", l).Set(int64(math.Round(s.StallSeconds * 1000)))
	reg.Counter("qoe_stalls_total", l).Add(uint64(s.Stalls))
}
