package compliance

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
)

func quicTypeKey(h *quicwire.Header) TypeKey {
	label := "short header"
	if h.Long {
		if h.Version == quicwire.VersionNegotiation {
			label = "version negotiation"
		} else {
			label = "long header " + h.Type.String()
		}
	}
	return TypeKey{Protocol: dpi.ProtoQUIC, Label: label}
}

// checkQUIC applies the five criteria to a QUIC packet header. Payloads
// are encrypted by design, so only the invariant and v1 header rules
// apply.
func (s *Session) checkQUIC(m dpi.Message, ts time.Time) Checked {
	h := m.QUIC
	c := Checked{
		Protocol:  dpi.ProtoQUIC,
		Type:      quicTypeKey(h),
		Bytes:     m.Length,
		Timestamp: ts,
	}
	c.Verdict = s.quicVerdict(h)
	return c
}

func (s *Session) quicVerdict(h *quicwire.Header) Verdict {
	// Criterion 1: packet type. Long-header types 0-3 are all defined
	// in v1; Version Negotiation is defined by the invariants; short
	// headers are 1-RTT packets.

	// Criterion 2: header fields.
	if h.Long {
		if h.Version != quicwire.Version1 && h.Version != quicwire.VersionNegotiation {
			return fail(CritHeader, "unknown QUIC version %#08x", h.Version)
		}
		if h.Version == quicwire.Version1 && !h.FixedBit {
			return fail(CritHeader, "fixed bit is zero in a v1 long header")
		}
		if len(h.DCID) > quicwire.MaxCIDLen || len(h.SCID) > quicwire.MaxCIDLen {
			return fail(CritHeader, "connection ID longer than 20 bytes in v1")
		}
	} else if !h.FixedBit {
		return fail(CritHeader, "fixed bit is zero in a short header")
	}

	// Criteria 3-4 do not apply: QUIC headers carry no TLV attributes
	// and the payload is encrypted.

	// Criterion 5: connection-ID consistency across the stream. A short
	// header whose DCID was never introduced by a long header would be
	// flagged, but the DPI already refuses to extract such packets; we
	// record CIDs for completeness.
	if len(h.DCID) > 0 {
		s.quicCIDs[string(h.DCID)] = true
	}
	if len(h.SCID) > 0 {
		s.quicCIDs[string(h.SCID)] = true
	}
	return ok()
}
