// Package interop turns compliance measurements into the
// interoperability assessment of the paper's discussion (§6).
//
// The EU Digital Markets Act requires large RTC platforms to support
// cross-application calls by 2028. The paper argues compliance is the
// practical path there, and that today's deviations mean "each
// application would need to implement bespoke parsers to handle the
// protocol quirks of every other application". This package quantifies
// that: from an application's measured statistics it derives the set of
// adaptation shims a standards-only peer would need to process its
// traffic, and scores pairwise integration effort.
package interop

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/report"
)

// ShimKind classifies an adaptation a receiving implementation needs.
type ShimKind string

// Shim kinds, roughly ordered by engineering weight.
const (
	// ShimHeaderStripper removes a proprietary encapsulation before the
	// standard message (Zoom's SFU header, FaceTime's 0x6000 framing).
	ShimHeaderStripper ShimKind = "proprietary-header-stripper"
	// ShimProprietaryProtocol handles datagrams with no standard
	// message at all (Zoom filler, FaceTime keepalives).
	ShimProprietaryProtocol ShimKind = "fully-proprietary-protocol"
	// ShimTypeRegistry accepts undefined message types (WhatsApp's
	// 0x0800 family).
	ShimTypeRegistry ShimKind = "undefined-type-registry"
	// ShimAttributeTolerance ignores or interprets undefined attributes
	// and extension profiles.
	ShimAttributeTolerance ShimKind = "undefined-attribute-tolerance"
	// ShimValueNormalization fixes up malformed values in defined
	// attributes (bad address families, misplaced attributes).
	ShimValueNormalization ShimKind = "attribute-value-normalization"
	// ShimBehavioralAdapter reworks semantic deviations (keepalive via
	// Binding Requests, Allocate ping-pong, missing SRTCP auth tags,
	// proprietary trailers).
	ShimBehavioralAdapter ShimKind = "behavioral-adapter"
)

// shimWeights approximate relative engineering cost.
var shimWeights = map[ShimKind]float64{
	ShimHeaderStripper:      3,
	ShimProprietaryProtocol: 4,
	ShimTypeRegistry:        2,
	ShimAttributeTolerance:  1,
	ShimValueNormalization:  1.5,
	ShimBehavioralAdapter:   3.5,
}

// Shim is one adaptation requirement with supporting evidence.
type Shim struct {
	Kind ShimKind
	// Evidence lists the message types (or datagram classes) that
	// demand it.
	Evidence []string
	// AffectedShare is the fraction of the app's message units needing
	// this shim.
	AffectedShare float64
}

// Weight returns the shim's effort contribution.
func (s Shim) Weight() float64 {
	return shimWeights[s.Kind] * (0.5 + s.AffectedShare)
}

// Profile is one application's interoperability profile.
type Profile struct {
	App string
	// SpecParseable is the fraction of datagrams a standards-only
	// parser recognizes (standard class).
	SpecParseable float64
	// MessageCompliance is the volume-based compliance ratio.
	MessageCompliance float64
	// Shims lists required adaptations, heaviest first.
	Shims []Shim
}

// EffortScore sums shim weights — the bespoke-parser burden a peer
// takes on to interoperate with this app.
func (p Profile) EffortScore() float64 {
	total := 0.0
	for _, s := range p.Shims {
		total += s.Weight()
	}
	return total
}

// OutOfTheBox is the probability that a random message unit from this
// app is processable by a pure-RFC peer: parseable and compliant.
func (p Profile) OutOfTheBox() float64 {
	return p.SpecParseable * p.MessageCompliance
}

// BuildProfile derives a profile from measured statistics.
func BuildProfile(stats *report.AppStats) Profile {
	prof := Profile{App: stats.App}
	totalDgrams := 0
	for _, n := range stats.Datagrams {
		totalDgrams += n
	}
	if totalDgrams > 0 {
		prof.SpecParseable = float64(stats.Datagrams[dpi.ClassStandard]) / float64(totalDgrams)
	}
	if r, ok := stats.VolumeCompliance(); ok {
		prof.MessageCompliance = r
	}

	units := stats.MessageUnits()
	evid := map[ShimKind][]string{}
	affected := map[ShimKind]int{}

	if n := stats.Datagrams[dpi.ClassProprietaryHeader]; n > 0 {
		evid[ShimHeaderStripper] = append(evid[ShimHeaderStripper], "proprietary-header datagrams")
		affected[ShimHeaderStripper] += n
	}
	if n := stats.Datagrams[dpi.ClassFullyProprietary]; n > 0 {
		evid[ShimProprietaryProtocol] = append(evid[ShimProprietaryProtocol], "fully-proprietary datagrams")
		affected[ShimProprietaryProtocol] += n
	}
	for key, ts := range stats.Types {
		if ts.Compliant() {
			continue
		}
		kind := classify(ts)
		evid[kind] = append(evid[kind], key.String())
		affected[kind] += ts.NonCompliant
	}

	for kind, ev := range evid {
		sort.Strings(ev)
		share := 0.0
		if units > 0 {
			share = float64(affected[kind]) / float64(units)
		}
		prof.Shims = append(prof.Shims, Shim{Kind: kind, Evidence: ev, AffectedShare: share})
	}
	sort.Slice(prof.Shims, func(i, j int) bool {
		if prof.Shims[i].Weight() != prof.Shims[j].Weight() {
			return prof.Shims[i].Weight() > prof.Shims[j].Weight()
		}
		return prof.Shims[i].Kind < prof.Shims[j].Kind
	})
	return prof
}

// classify maps a non-compliant type's dominant criterion to a shim.
func classify(ts *report.TypeStat) ShimKind {
	// Pick the most frequent reason and infer the criterion from its
	// phrasing (reasons are produced by the compliance package).
	best, bestN := "", 0
	for r, n := range ts.Reasons {
		if n > bestN || (n == bestN && r < best) {
			best, bestN = r, n
		}
	}
	switch {
	case strings.Contains(best, "message type"), strings.Contains(best, "packet type"):
		return ShimTypeRegistry
	case strings.Contains(best, "is not defined"), strings.Contains(best, "is not assigned"),
		strings.Contains(best, "profile"), strings.Contains(best, "reserved ID"):
		return ShimAttributeTolerance
	case strings.Contains(best, "invalid"), strings.Contains(best, "not permitted"),
		strings.Contains(best, "request-only"), strings.Contains(best, "address family"),
		strings.Contains(best, "overrun"):
		return ShimValueNormalization
	default:
		return ShimBehavioralAdapter
	}
}

// Assessment scores one directed or mutual pairing.
type Assessment struct {
	A, B string
	// OutOfTheBox is the joint probability both directions process
	// without adaptation.
	OutOfTheBox float64
	// Effort is the combined shim burden of supporting each other.
	Effort float64
	// Shims is the union of both sides' requirements.
	Shims []ShimKind
}

// Pairwise assesses mutual interoperability between two profiles.
func Pairwise(a, b Profile) Assessment {
	kinds := map[ShimKind]bool{}
	for _, s := range a.Shims {
		kinds[s.Kind] = true
	}
	for _, s := range b.Shims {
		kinds[s.Kind] = true
	}
	var union []ShimKind
	for k := range kinds {
		union = append(union, k)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	return Assessment{
		A:           a.App,
		B:           b.App,
		OutOfTheBox: a.OutOfTheBox() * b.OutOfTheBox(),
		Effort:      a.EffortScore() + b.EffortScore(),
		Shims:       union,
	}
}

// Matrix assesses every ordered pair from an aggregate, in app order.
func Matrix(g *report.Aggregate) []Assessment {
	apps := g.Apps()
	profiles := make([]Profile, len(apps))
	for i, s := range apps {
		profiles[i] = BuildProfile(s)
	}
	var out []Assessment
	for i := range profiles {
		for j := range profiles {
			if i == j {
				continue
			}
			out = append(out, Pairwise(profiles[i], profiles[j]))
		}
	}
	return out
}

// Describe renders a profile as text.
func Describe(p Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.1f%% spec-parseable, %.1f%% message compliance, effort score %.1f\n",
		p.App, 100*p.SpecParseable, 100*p.MessageCompliance, p.EffortScore())
	for _, s := range p.Shims {
		fmt.Fprintf(&b, "  needs %-32s (%.1f%% of traffic; e.g. %s)\n",
			string(s.Kind), 100*s.AffectedShare, strings.Join(firstN(s.Evidence, 3), ", "))
	}
	return b.String()
}

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// criterionOf maps a single violation reason to the shim the classifier
// would choose (test helper).
func criterionOf(reason string) ShimKind {
	return classify(&report.TypeStat{NonCompliant: 1, Reasons: map[string]int{reason: 1}})
}
