package dpi

import "testing"

// FuzzInspect checks the engine's structural invariants on arbitrary
// datagrams: no panics, non-overlapping in-bounds message spans, and
// classification consistency.
func FuzzInspect(f *testing.F) {
	f.Add([]byte{0x80, 0x60, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0xaa})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x21, 0x12, 0xa4, 0x42})
	e := NewEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		res := e.Inspect(data, nil)
		end := 0
		for _, m := range res.Messages {
			if m.Offset < end || m.Length <= 0 || m.Offset+m.Length > len(data) {
				t.Fatalf("bad span %d+%d (prev end %d, len %d)", m.Offset, m.Length, end, len(data))
			}
			end = m.Offset + m.Length
		}
		switch res.Class {
		case ClassStandard:
			if len(res.Messages) == 0 || res.Messages[0].Offset != 0 {
				t.Fatal("standard class without offset-0 message")
			}
		case ClassFullyProprietary:
			if len(res.Messages) != 0 {
				t.Fatal("fully proprietary with messages")
			}
		}
		// The strict baseline must never find more than... anything; it
		// just must not panic.
		StrictEngine{}.Inspect(data)
	})
}
