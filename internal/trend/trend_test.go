package trend

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/qoe"
)

func pt(app string, fed uint64) Point {
	v := 0.75
	return Point{
		Time: time.Unix(1700000000, 0).UTC(), App: app, Reason: "epoch",
		Messages: 100, Compliant: 75, VolumeCompliance: &v,
		TypesTotal: 10, TypesCompliant: 8, Datagrams: 120,
		Fed: fed, Analyzed: fed, Dropped: 0,
	}
}

func TestAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(pt("Zoom", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the series must survive the restart.
	s2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pts := s2.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d points after reload, want 3", len(pts))
	}
	if pts[2].Fed != 3 || pts[2].App != "Zoom" {
		t.Fatalf("last point = %+v", pts[2])
	}
	if pts[0].VolumeCompliance == nil || *pts[0].VolumeCompliance != 0.75 {
		t.Fatalf("volume compliance not round-tripped: %+v", pts[0])
	}
	// Appending after a reload extends the same file.
	if err := s2.Append(pt("Zoom", 4)); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Points()); got != 4 {
		t.Fatalf("got %d points, want 4", got)
	}
}

func TestRingBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(pt("Zoom", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.Points()
	if len(pts) != 2 || pts[0].Fed != 3 || pts[1].Fed != 4 {
		t.Fatalf("ring = %+v, want the last two points", pts)
	}
}

func TestOpenRejectsCorruptLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trend.jsonl")
	if err := writeFile(path, "{\"ts\":\"2026-01-01T00:00:00Z\"}\nnot json\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("Open accepted a corrupt trend file")
	}
}

func TestHandlerFilters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Append(pt("Zoom", uint64(i)))
	}
	s.Append(pt("Discord", 9))

	get := func(url string) trendResponse {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		var resp trendResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp
	}

	if got := get("/compliance/trend"); len(got.Points) != 4 {
		t.Fatalf("unfiltered: %d points, want 4", len(got.Points))
	}
	if got := get("/compliance/trend?app=Discord"); len(got.Points) != 1 || got.Points[0].Fed != 9 {
		t.Fatalf("app filter: %+v", got.Points)
	}
	if got := get("/compliance/trend?app=Zoom&last=2"); len(got.Points) != 2 || got.Points[1].Fed != 2 {
		t.Fatalf("last filter: %+v", got.Points)
	}

	req := httptest.NewRequest("GET", "/compliance/trend?last=bogus", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad last parameter: status %d, want 400", rec.Code)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseSince(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	got, err := ParseSince("2026-08-08T10:30:00Z", now)
	if err != nil || !got.Equal(time.Date(2026, 8, 8, 10, 30, 0, 0, time.UTC)) {
		t.Fatalf("RFC3339: %v %v", got, err)
	}
	got, err = ParseSince("90m", now)
	if err != nil || !got.Equal(now.Add(-90*time.Minute)) {
		t.Fatalf("duration: %v %v", got, err)
	}
	for _, bad := range []string{"yesterday", "-5m", ""} {
		if _, err := ParseSince(bad, now); err == nil {
			t.Errorf("ParseSince(%q): expected error", bad)
		}
	}
}

func TestHandlerSinceFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three points spaced one hour apart; pt() pins Time, so shift it.
	for i := 0; i < 3; i++ {
		p := pt("Zoom", uint64(i))
		p.Time = time.Date(2026, 8, 8, 9+i, 0, 0, 0, time.UTC)
		s.Append(p)
	}

	req := httptest.NewRequest("GET", "/compliance/trend?since=2026-08-08T10:00:00Z", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var resp trendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The cutoff is inclusive: the 10:00 and 11:00 points survive.
	if len(resp.Points) != 2 || resp.Points[0].Fed != 1 {
		t.Fatalf("since filter: %+v", resp.Points)
	}

	// Bad since values produce a JSON error body, not text/plain.
	req = httptest.NewRequest("GET", "/compliance/trend?since=tomorrow", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("bad since content type %q", ct)
	}
	var jsonErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &jsonErr); err != nil || jsonErr.Error == "" {
		t.Fatalf("error body %q (%v)", rec.Body.String(), err)
	}
}

func TestPointQoERoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := pt("Zoom", 1)
	p.QoE = &qoe.Summary{
		MediaStreams: 2, FrameRate: 29.97, BitrateKbps: 1500.5,
		GapJitterMs: 1.25, Stalls: 1, StallSeconds: 0.5, LongestStallSeconds: 0.5,
	}
	if err := s.Append(p); err != nil {
		t.Fatal(err)
	}
	// A point without QoE must omit the key entirely.
	if err := s.Append(pt("Zoom", 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if !strings.Contains(lines[0], `"qoe":{`) {
		t.Fatalf("qoe not serialized: %s", lines[0])
	}
	if strings.Contains(lines[1], `"qoe"`) {
		t.Fatalf("qoe key present without data: %s", lines[1])
	}

	s2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pts := s2.Points()
	if pts[0].QoE == nil || pts[0].QoE.FrameRate != 29.97 || pts[0].QoE.Stalls != 1 {
		t.Fatalf("qoe not round-tripped: %+v", pts[0].QoE)
	}
	if pts[1].QoE != nil {
		t.Fatalf("phantom qoe on second point: %+v", pts[1].QoE)
	}
}
