package natsim

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
)

var impairT0 = time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC)

// mkStream builds n evenly spaced UDP datagrams on one 5-tuple with
// distinct payloads (the payload encodes the index).
func mkStream(n int, gap time.Duration) []Datagram {
	src := netip.MustParseAddrPort("192.168.1.10:50000")
	dst := netip.MustParseAddrPort("203.0.113.10:8801")
	out := make([]Datagram, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Datagram{
			At:      impairT0.Add(time.Duration(i) * gap),
			Src:     src,
			Dst:     dst,
			Proto:   layers.IPProtocolUDP,
			Payload: []byte{byte(i >> 8), byte(i), 0xAB},
		})
	}
	return out
}

func TestImpairZeroProfilePassThrough(t *testing.T) {
	in := mkStream(200, time.Millisecond)
	var p Profile
	if p.Active() {
		t.Fatal("zero profile reports Active")
	}
	out, st := p.ImpairWithStats(7, in)
	if !reflect.DeepEqual(out, in) {
		t.Fatal("zero profile changed the stream")
	}
	if st.Dropped != 0 || st.Duplicated != 0 || st.Reordered != 0 || st.Rebound != 0 {
		t.Fatalf("zero profile reported impairment: %+v", st)
	}
}

func TestImpairDeterministic(t *testing.T) {
	in := mkStream(500, time.Millisecond)
	for _, p := range StandardProfiles() {
		a, sa := p.ImpairWithStats(42, in)
		b, sb := p.ImpairWithStats(42, in)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different outputs", p.Name)
		}
		if sa != sb {
			t.Fatalf("%s: same seed produced different stats: %+v vs %+v", p.Name, sa, sb)
		}
	}
}

func TestImpairSeedChangesOutput(t *testing.T) {
	in := mkStream(500, time.Millisecond)
	p, _ := ProfileByName("loss2")
	a := p.Impair(1, in)
	b := p.Impair(2, in)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

func TestImpairInputUnmodified(t *testing.T) {
	in := mkStream(300, time.Millisecond)
	snapshot := make([]Datagram, len(in))
	copy(snapshot, in)
	for _, p := range StandardProfiles() {
		p.Impair(3, in)
	}
	if !reflect.DeepEqual(in, snapshot) {
		t.Fatal("Impair modified its input slice")
	}
}

func TestImpairLossRate(t *testing.T) {
	in := mkStream(20000, 100*time.Microsecond)
	p := Profile{Loss: 0.02}
	_, st := p.ImpairWithStats(11, in)
	rate := float64(st.Dropped) / float64(st.In)
	if rate < 0.01 || rate > 0.03 {
		t.Fatalf("i.i.d. loss rate %.4f outside [0.01, 0.03]", rate)
	}
}

func TestImpairBurstLossIsBursty(t *testing.T) {
	in := mkStream(20000, 100*time.Microsecond)
	ge, _ := ProfileByName("burst5")
	out, st := ge.ImpairWithStats(13, in)
	rate := float64(st.Dropped) / float64(st.In)
	if rate < 0.02 || rate > 0.09 {
		t.Fatalf("burst loss rate %.4f outside [0.02, 0.09]", rate)
	}
	// Burstiness: among dropped indices, the fraction with an adjacent
	// drop must far exceed what i.i.d. loss at the same rate yields.
	kept := make(map[int]bool, len(out))
	for _, d := range out {
		idx := int(d.Payload[0])<<8 | int(d.Payload[1])
		kept[idx] = true
	}
	adjacent, dropped := 0, 0
	for i := range in {
		if kept[i] {
			continue
		}
		dropped++
		if (i > 0 && !kept[i-1]) || (i < len(in)-1 && !kept[i+1]) {
			adjacent++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops")
	}
	adjFrac := float64(adjacent) / float64(dropped)
	// i.i.d. at ~5% would give ~2*rate ≈ 0.1; Gilbert–Elliott runs give
	// far more.
	if adjFrac < 0.3 {
		t.Fatalf("adjacent-drop fraction %.3f too low for burst loss", adjFrac)
	}
}

func TestImpairJitterBoundedReordering(t *testing.T) {
	gap := time.Millisecond
	in := mkStream(5000, gap)
	p := Profile{Jitter: 30 * time.Millisecond}
	out, st := p.ImpairWithStats(17, in)
	if st.Reordered == 0 {
		t.Fatal("30ms jitter over 1ms spacing produced no reordering")
	}
	if st.Out != len(in) {
		t.Fatalf("jitter changed datagram count: %d != %d", st.Out, len(in))
	}
	// Bounded: displacement of any datagram is capped by Jitter/gap.
	maxDisp := int(p.Jitter/gap) + 1
	for outPos, d := range out {
		idx := int(d.Payload[0])<<8 | int(d.Payload[1])
		if disp := idx - outPos; disp > maxDisp || disp < -maxDisp {
			t.Fatalf("datagram %d displaced by %d, bound %d", idx, disp, maxDisp)
		}
	}
	// Output must be time-sorted.
	for i := 1; i < len(out); i++ {
		if out[i].At.Before(out[i-1].At) {
			t.Fatalf("output not sorted at %d", i)
		}
	}
}

func TestImpairDuplication(t *testing.T) {
	in := mkStream(10000, 500*time.Microsecond)
	p := Profile{Dup: 0.03}
	out, st := p.ImpairWithStats(19, in)
	if st.Duplicated == 0 {
		t.Fatal("no duplicates produced")
	}
	rate := float64(st.Duplicated) / float64(st.In)
	if rate < 0.015 || rate > 0.045 {
		t.Fatalf("dup rate %.4f outside [0.015, 0.045]", rate)
	}
	if st.Out != st.In+st.Duplicated {
		t.Fatalf("conservation violated: out %d != in %d + dup %d", st.Out, st.In, st.Duplicated)
	}
	// Each index appears once or twice, never more, with equal payloads.
	count := make(map[int]int)
	for _, d := range out {
		idx := int(d.Payload[0])<<8 | int(d.Payload[1])
		count[idx]++
		if count[idx] > 2 {
			t.Fatalf("index %d delivered %d times", idx, count[idx])
		}
	}
	if len(count) != len(in) {
		t.Fatalf("duplication dropped datagrams: %d indices of %d", len(count), len(in))
	}
	_ = out
}

func TestImpairRebind(t *testing.T) {
	in := mkStream(1000, time.Millisecond)
	p := Profile{Rebind: 2}
	out, st := p.ImpairWithStats(23, in)
	if st.Rebound == 0 {
		t.Fatal("rebind profile rewrote no datagrams")
	}
	// The client (dominant UDP source) keeps its address; ports change
	// after each epoch, and each epoch's port is stable within it.
	ports := make(map[uint16]bool)
	for _, d := range out {
		if d.Src.Addr() != in[0].Src.Addr() {
			t.Fatalf("rebind changed the source address: %v", d.Src)
		}
		ports[d.Src.Port()] = true
	}
	if len(ports) != 3 {
		t.Fatalf("2 rebinds should yield 3 distinct source ports, got %d", len(ports))
	}
	if !ports[in[0].Src.Port()] {
		t.Fatal("pre-rebind traffic lost its original port")
	}
}

func TestImpairTCPUntouched(t *testing.T) {
	in := mkStream(400, time.Millisecond)
	for i := range in {
		if i%4 == 0 {
			in[i].Proto = layers.IPProtocolTCP
			in[i].TCPFlags = layers.TCPAck
		}
	}
	p := Profile{Loss: 0.5, Jitter: 20 * time.Millisecond, Rebind: 1, Dup: 0.2}
	out, _ := p.ImpairWithStats(29, in)
	wantTCP := 0
	for _, d := range in {
		if d.Proto == layers.IPProtocolTCP {
			wantTCP++
		}
	}
	gotTCP := 0
	for _, d := range out {
		if d.Proto != layers.IPProtocolTCP {
			continue
		}
		gotTCP++
		idx := int(d.Payload[0])<<8 | int(d.Payload[1])
		orig := in[idx]
		if d.At != orig.At || d.Src != orig.Src || d.Dst != orig.Dst {
			t.Fatalf("TCP segment %d was impaired: %+v", idx, d)
		}
	}
	if gotTCP != wantTCP {
		t.Fatalf("TCP segment count changed: %d != %d", gotTCP, wantTCP)
	}
}

func TestImpairStatsConservation(t *testing.T) {
	in := mkStream(5000, 500*time.Microsecond)
	for _, p := range StandardProfiles() {
		out, st := p.ImpairWithStats(31, in)
		if st.In != len(in) || st.Out != len(out) {
			t.Fatalf("%s: stats counts wrong: %+v", p.Name, st)
		}
		if st.Out != st.In-st.Dropped+st.Duplicated {
			t.Fatalf("%s: conservation violated: %+v", p.Name, st)
		}
	}
}

func TestImpairEmptyInput(t *testing.T) {
	p, _ := ProfileByName("burst5")
	out, st := p.ImpairWithStats(1, nil)
	if out != nil || st.In != 0 || st.Out != 0 {
		t.Fatalf("empty input: out=%v st=%+v", out, st)
	}
}

func TestImpairStatsPublish(t *testing.T) {
	reg := metrics.NewRegistry()
	st := ImpairStats{In: 100, Out: 97, Dropped: 5, Duplicated: 2, Reordered: 7, Rebound: 3}
	st.Publish(reg, "burst5")
	l := metrics.L("profile", "burst5")
	checks := map[string]uint64{
		"natsim_impair_in_total":         100,
		"natsim_impair_out_total":        97,
		"natsim_impair_dropped_total":    5,
		"natsim_impair_duplicated_total": 2,
		"natsim_impair_reordered_total":  7,
		"natsim_impair_rebound_total":    3,
	}
	for name, want := range checks {
		if got := reg.Counter(name, l).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Nil registry must be a no-op, not a panic.
	st.Publish(nil, "burst5")
}

func TestStandardProfiles(t *testing.T) {
	all := StandardProfiles()
	if len(all) < 6 {
		t.Fatalf("expected ≥6 standard profiles, got %d", len(all))
	}
	names := make(map[string]bool)
	for _, p := range all {
		if p.Name == "" {
			t.Fatal("unnamed standard profile")
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) failed", p.Name)
		}
	}
	if clean, _ := ProfileByName("clean"); clean.Active() {
		t.Fatal("clean profile reports Active")
	}
	if len(AdverseProfiles()) != len(all)-1 {
		t.Fatalf("AdverseProfiles should exclude exactly clean: %d vs %d", len(AdverseProfiles()), len(all))
	}
	if _, ok := ProfileByName("no-such"); ok {
		t.Fatal("ProfileByName resolved a bogus name")
	}
}

// TestRelayConcurrent hammers the Relay from 16 goroutines; run under
// -race this pins the mutex guarding added for the impairment tests.
func TestRelayConcurrent(t *testing.T) {
	r := NewRelay(netip.MustParseAddr("203.0.113.10"))
	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	results := make([][]netip.AddrPort, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				client := netip.AddrPortFrom(netip.MustParseAddr("192.168.1.10"), uint16(50000+i))
				results[g] = append(results[g], r.Allocate(client))
				_ = r.Allocations()
			}
		}(g)
	}
	wg.Wait()
	if n := r.Allocations(); n != perG {
		t.Fatalf("expected %d allocations, got %d", perG, n)
	}
	// Idempotence must hold across goroutines: every goroutine saw the
	// same relayed address for the same client.
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("goroutine %d saw different allocations", g)
		}
	}
}
