// Command rtcbench measures the analyzer's hot-path throughput over
// the internal/bench scenario matrix — every ingestion mode
// (per-packet Feed, pooled FeedBatch, buffered batch, sharded ingest)
// over the relay, P2P, and media-heavy synthetic captures — and writes
// or checks a machine-readable baseline.
//
// Usage:
//
//	rtcbench                                  # print the matrix
//	rtcbench -out BENCH_hotpath.json          # write a baseline
//	rtcbench -baseline BENCH_hotpath.json     # regression gate (CI)
//
// With -baseline, rtcbench exits non-zero when any scenario regresses
// against the committed baseline: ingest time more than 15% slower,
// or allocations up beyond measurement jitter. Each scenario runs
// best-of-N repetitions (-reps) so a noisy neighbor on the CI machine
// reads as a slow repetition that gets discarded, not a regression;
// scenarios that still look regressed are re-measured (up to twice,
// at double the repetition budget) before the gate fails, because
// interference is one-sided — only a real regression survives every
// retry.
//
// The baseline records the host it was measured on. When the current
// machine differs (CPU model, core count, or GOMAXPROCS), timing
// comparisons are demoted to warnings — cross-host wall-clock deltas
// are hardware facts, not regressions — while the allocation gate
// stays hard, since allocs/op is host-independent.
//
// On hosts with 4 or more CPUs, the gate additionally requires the
// sharded tier to scale: sharded4/media-heavy must reach at least 3x
// the throughput of sharded1/media-heavy. Single-core hosts print the
// curve but skip the requirement (there is nothing to scale onto).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/rtc-compliance/rtcc/internal/bench"
	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)

// nsTolerance is the relative ingest-time slowdown tolerated before a
// scenario counts as regressed. 15% sits well above run-to-run jitter
// once best-of-N has discarded interference, and well below the ~2x
// cost of reintroducing a per-packet heap allocation.
const nsTolerance = 0.15

// allocTolerance absorbs allocation-count jitter from runtime
// internals (map growth, pool refill timing) without letting a real
// per-packet allocation through: even one alloc per packet moves
// allocs/op by thousands on these captures.
const allocTolerance = 0.02
const allocSlack = 64

// scalingFloor is the minimum sharded4:sharded1 throughput ratio on
// the media-heavy load, enforced on hosts with at least scalingMinCPU
// CPUs. 3x at 4 shards tolerates the router's serial share (Amdahl)
// while still catching a tier that serializes.
const scalingFloor = 3.0
const scalingMinCPU = 4

// newFlags registers rtcbench's flag surface (pinned by the golden
// surface test).
func newFlags() (fs *flag.FlagSet, out, baseline *string, reps, minIters *int,
	minTime *time.Duration, version *bool) {
	fs = flag.NewFlagSet("rtcbench", flag.ExitOnError)
	out = fs.String("out", "", "write results as JSON to this file")
	baseline = fs.String("baseline", "", "compare against this baseline JSON and exit 1 on regression")
	reps = fs.Int("reps", 3, "repetitions per scenario; the fastest is kept")
	minIters = fs.Int("miniters", 3, "minimum iterations per repetition")
	// 200ms of accumulated ingest per repetition: ingest per
	// iteration runs 0.5-9ms across the matrix, so every cell still
	// gets tens of iterations while the full best-of-3 matrix —
	// whose wall clock is dominated by the untimed Close between
	// iterations — finishes in a couple of minutes instead of ten.
	minTime = fs.Duration("mintime", 200*time.Millisecond, "minimum measured ingest time per repetition")
	version = cmdutil.VersionFlag(fs)
	return
}

func main() {
	fs, out, baseline, reps, minIters, minTime, version := newFlags()
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *version {
		cmdutil.PrintVersion(os.Stdout, "rtcbench")
		return
	}

	host := bench.CurrentHost()
	var results []bench.Result
	scenarioByName := make(map[string]bench.Scenario)
	for _, sc := range bench.Scenarios() {
		scenarioByName[sc.Name] = sc
		p, err := bench.Prepare(sc)
		if err != nil {
			fatalf("prepare %s: %v", sc.Name, err)
		}
		res, err := bench.MeasureBest(p, *reps, *minIters, *minTime)
		if err != nil {
			fatalf("measure %s: %v", sc.Name, err)
		}
		results = append(results, res)
	}
	printTable(results)
	printScaling(results)

	if *out != "" {
		buf, err := json.MarshalIndent(bench.File{Host: host, Results: results}, "", "  ")
		if err != nil {
			fatalf("encode: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(results))
	}

	if *baseline != "" {
		base, baseHost, err := readBaseline(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		// Cross-host comparisons demote timing failures to warnings:
		// a different CPU's wall clock is a hardware fact. Allocation
		// regressions stay hard — allocs/op does not depend on the host.
		sameHost := baseHost.Comparable(host)
		if !sameHost {
			fmt.Printf("warning: baseline host differs (%s, %d CPUs) from this host (%s, %d CPUs); timing regressions reported as warnings only\n",
				orUnknown(baseHost.CPUModel), baseHost.NumCPU, orUnknown(host.CPUModel), host.NumCPU)
		} else if baseHost.GoVersion != host.GoVersion {
			fmt.Printf("warning: baseline measured with %s, this run uses %s; timing still enforced\n",
				baseHost.GoVersion, host.GoVersion)
		}
		// Wall-clock interference is one-sided: a busy neighbor only
		// ever makes a repetition slower. So before declaring a
		// regression, re-measure just the suspect scenarios with an
		// escalated repetition budget — a real regression survives
		// every retry, a noise spike does not.
		regressed := compare(results, base, sameHost)
		for retry := 0; len(regressed) > 0 && retry < 2; retry++ {
			fmt.Printf("re-measuring %d suspect scenario(s) with %d reps\n",
				len(regressed), *reps*2)
			var again []bench.Result
			for _, r := range regressed {
				p, err := bench.Prepare(scenarioByName[r.Name])
				if err != nil {
					fatalf("prepare %s: %v", r.Name, err)
				}
				res, err := bench.MeasureBest(p, *reps*2, *minIters, *minTime)
				if err != nil {
					fatalf("measure %s: %v", r.Name, err)
				}
				again = append(again, res)
			}
			regressed = compare(again, base, sameHost)
		}
		if len(regressed) > 0 {
			fatalf("%d scenario(s) regressed against %s", len(regressed), *baseline)
		}
		if err := checkScaling(results); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("no regression against %s\n", *baseline)
	}
}

// readBaseline parses either baseline format: the current
// {host, results} object or the historical bare result array (whose
// host is unknown and therefore never comparable).
func readBaseline(path string) (map[string]bench.Result, bench.Host, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, bench.Host{}, err
	}
	var file bench.File
	if err := json.Unmarshal(buf, &file); err != nil {
		var list []bench.Result
		if err2 := json.Unmarshal(buf, &list); err2 != nil {
			return nil, bench.Host{}, fmt.Errorf("%s: %w", path, err)
		}
		file.Results = list
	}
	out := make(map[string]bench.Result, len(file.Results))
	for _, r := range file.Results {
		out[r.Name] = r
	}
	return out, file.Host, nil
}

// compare returns the scenarios that regressed. A missing baseline
// entry is informational, not a failure: new scenarios enter the
// baseline on the next -out run. With enforceTiming false (baseline
// from a different host), timing deltas warn instead of failing.
func compare(results []bench.Result, base map[string]bench.Result, enforceTiming bool) []bench.Result {
	var regressed []bench.Result
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("  %-24s no baseline entry (new scenario)\n", r.Name)
			continue
		}
		bad := false
		if r.NsPerOp > b.NsPerOp*(1+nsTolerance) {
			kind, fail := "REGRESSION", true
			if !enforceTiming {
				kind, fail = "warning (cross-host)", false
			}
			fmt.Printf("%s %-24s ingest %.2fms vs baseline %.2fms (>%.0f%% slower)\n",
				kind, r.Name, r.NsPerOp/1e6, b.NsPerOp/1e6, nsTolerance*100)
			bad = bad || fail
		}
		if r.AllocsPerOp > b.AllocsPerOp*(1+allocTolerance)+allocSlack {
			fmt.Printf("REGRESSION %-24s allocs/op %.0f vs baseline %.0f\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
			bad = true
		}
		if bad {
			regressed = append(regressed, r)
		}
	}
	return regressed
}

// scalingRatio extracts the sharded4:sharded1 media-heavy throughput
// ratio; ok is false when either cell is missing.
func scalingRatio(results []bench.Result) (float64, bool) {
	var one, four float64
	for _, r := range results {
		switch r.Name {
		case "sharded1/media-heavy":
			one = r.PktsPerSec
		case "sharded4/media-heavy":
			four = r.PktsPerSec
		}
	}
	if one <= 0 || four <= 0 {
		return 0, false
	}
	return four / one, true
}

// printScaling renders the shard-scaling curve after the main table.
func printScaling(results []bench.Result) {
	if ratio, ok := scalingRatio(results); ok {
		fmt.Printf("shard scaling (media-heavy): sharded4/sharded1 = %.2fx on %d CPU(s)\n",
			ratio, runtime.NumCPU())
	}
}

// checkScaling enforces the scaling floor on hosts parallel enough to
// measure it; smaller hosts report the curve and skip the gate.
func checkScaling(results []bench.Result) error {
	ratio, ok := scalingRatio(results)
	if !ok {
		return nil
	}
	if runtime.NumCPU() < scalingMinCPU {
		fmt.Printf("shard scaling gate skipped: %d CPU(s) < %d (nothing to scale onto)\n",
			runtime.NumCPU(), scalingMinCPU)
		return nil
	}
	if ratio < scalingFloor {
		return fmt.Errorf("shard scaling %.2fx below the %.1fx floor (sharded4 vs sharded1, media-heavy)", ratio, scalingFloor)
	}
	return nil
}

func printTable(results []bench.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tpackets\tingest ms/op\tpkts/sec\tB/op\tallocs/op")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.0f\t%.0f\n",
			r.Name, r.Packets, r.NsPerOp/1e6, r.PktsPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	w.Flush()
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown CPU"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtcbench: "+format+"\n", args...)
	os.Exit(1)
}
