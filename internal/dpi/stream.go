package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// StreamInspector runs Algorithm 1 over the datagrams of one transport
// stream incrementally. Feed advances pass 1 (per-SSRC candidate
// tallies) for each datagram as it arrives and buffers the payload;
// Finalize runs pass 2 over everything buffered since the previous
// Finalize and releases the payload references, so a caller that
// finalizes periodically never holds payload bytes past the DPI stage.
//
// RTP is the one target protocol whose header pattern is weak (any
// version-2 first byte passes), so candidate extraction alone produces
// false positives inside proprietary headers and encrypted payloads.
// The paper's protocol-specific validation resolves this with
// cross-packet heuristics: "valid SSRC ... continuous sequence number
// within the same stream". The inspector implements that literally:
//
//   - Pass 1 collects every RTP candidate at every offset of every
//     datagram and tallies per-SSRC support;
//   - an SSRC is validated when it appears at least twice with at least
//     one sequence-continuous, timestamp-plausible adjacent pair;
//   - Pass 2 re-scans each datagram, accepting strongly-signatured
//     protocols (STUN magic cookie, ChannelData framing, RTCP type
//     range, QUIC) immediately and RTP only for validated SSRCs in
//     sequence order.
//
// Because pass 2 of a datagram consults the validated-SSRC set, a
// single Finalize over the whole stream reproduces the batch
// InspectStream exactly; chunked finalization uses the set as known at
// each chunk boundary (the streaming analyzer's eviction path), which
// is identical unless an SSRC first validates only in a later chunk.
type StreamInspector struct {
	e *Engine
	m engineMetrics
	// scratch is the pass-1 scan context, persistent across Feeds.
	scratch *StreamContext
	// ctx is the pass-2 context, persistent across Finalize calls so a
	// resumed (fed-again) stream continues its sequence state.
	ctx *StreamContext
	// cands tallies RTP candidate sightings per SSRC; validated is the
	// pass-2 acceptance set, grown as candidates gain support.
	cands     map[uint32]*candTally
	validated map[uint32]bool
	// payloads buffers datagrams fed since the last Finalize.
	payloads [][]byte
	// drainedAttempts tracks how many shift attempts have already been
	// recorded, so chunked Finalize calls add only the delta.
	drainedAttempts int
}

// candTally is the incremental form of pass 1's per-SSRC observation
// list: validation only ever compares adjacent sightings, so the last
// sighting plus a count carries the same information.
type candTally struct {
	n       int
	lastSeq uint16
	lastTS  uint32
}

// NewStreamInspector returns an inspector with empty per-stream state.
func (e *Engine) NewStreamInspector() *StreamInspector {
	return &StreamInspector{
		e:         e,
		m:         e.metricsHandles(),
		scratch:   NewStreamContext(),
		cands:     make(map[uint32]*candTally),
		validated: make(map[uint32]bool),
	}
}

// Feed advances pass 1 over one datagram payload and buffers it for the
// next Finalize. The payload is retained by reference until then.
func (si *StreamInspector) Feed(payload []byte) {
	si.payloads = append(si.payloads, payload)
	limit := si.e.MaxOffset
	if limit <= 0 {
		limit = 200
	}
	i := 0
	for i < len(payload) && i <= limit {
		// Strong-signature protocols consume their span so their
		// payloads (e.g. a ChannelData body) are not scanned here;
		// candidate RTP headers advance by one byte because they
		// are not yet trusted.
		if m, ok := matchSTUN(payload[i:], si.scratch); ok {
			i += m.Length
			continue
		}
		if m, ok := matchChannelData(payload[i:], si.scratch); ok {
			i += m.Length
			continue
		}
		if m, ok := matchRTCP(payload[i:], si.scratch); ok {
			i += m.Length
			continue
		}
		b := payload[i:]
		if rtp.LooksLikeHeader(b) && !(b[1] >= 192 && b[1] <= 223) {
			// Decode into the scan context's scratch: the sighting only
			// needs header fields, so nothing escapes the iteration.
			p := &si.scratch.rtpProbe
			if rtp.DecodeInto(p, b) == nil && p.CSRCCount == 0 {
				si.note(p.SSRC, p.SequenceNumber, p.Timestamp)
			}
		}
		i++
	}
}

// note records one pass-1 candidate sighting. An SSRC is validated by
// one adjacent candidate pair whose sequence numbers are continuous AND
// whose timestamps advance plausibly. The timestamp condition matters:
// byte windows that straddle a real RTP header inherit slowly-cycling
// sequence bytes (so sequence continuity alone can be fooled) but their
// inherited timestamp field jumps by 2^24 per packet.
func (si *StreamInspector) note(ssrc uint32, seq uint16, ts uint32) {
	o := si.cands[ssrc]
	if o == nil {
		si.cands[ssrc] = &candTally{n: 1, lastSeq: seq, lastTS: ts}
		return
	}
	if !si.validated[ssrc] && seqClose(o.lastSeq, seq) && tsClose(o.lastTS, ts) {
		si.validated[ssrc] = true
	}
	o.n++
	o.lastSeq = seq
	o.lastTS = ts
}

// Pending reports how many fed datagrams await Finalize.
func (si *StreamInspector) Pending() int { return len(si.payloads) }

// Finalize runs pass 2 over the buffered datagrams with the
// validated-SSRC set as currently known, records the per-datagram
// metrics, releases the payload buffer, and returns one Result per
// buffered datagram in feed order. The inspector remains usable: later
// Feeds start a new chunk that continues the same stream state.
func (si *StreamInspector) Finalize() []Result {
	if si.ctx == nil {
		si.ctx = NewStreamContext()
	}
	si.ctx.validatedSSRC = si.validated
	out := make([]Result, 0, len(si.payloads))
	for _, p := range si.payloads {
		start := si.m.latency.Start()
		r := si.e.Inspect(p, si.ctx)
		si.m.latency.ObserveSince(start)
		si.m.classes[r.Class].Inc()
		for _, msg := range r.Messages {
			if int(msg.Protocol) < len(si.m.messages) {
				si.m.messages[msg.Protocol].Inc()
			}
		}
		out = append(out, r)
	}
	si.m.attempts.Add(uint64(si.ctx.shiftAttempts - si.drainedAttempts))
	si.drainedAttempts = si.ctx.shiftAttempts
	si.payloads = nil
	return out
}

// InspectStream runs Algorithm 1 over all datagrams of one transport
// stream, in capture order, with full two-stage validation: a
// StreamInspector fed every payload and finalized once, which makes the
// batch and streaming paths the same code by construction.
//
// Single-datagram Inspect remains available for stateless use, but the
// pipeline always uses InspectStream or a StreamInspector.
func (e *Engine) InspectStream(payloads [][]byte) []Result {
	si := e.NewStreamInspector()
	for _, p := range payloads {
		si.Feed(p)
	}
	return si.Finalize()
}
