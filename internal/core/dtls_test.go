package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// dtlsCapture generates a capture with the DTLS-SRTP handshake enabled.
func dtlsCapture(t testing.TB, app appsim.App, network appsim.Network, seed uint64) *trace.Capture {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: network, Seed: seed,
		Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
		MediaRate: 8, DTLS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

// TestDTLSHandshakeAnalyzed proves the tentpole's extensibility claim
// end to end: enabling the app-agnostic DTLS-SRTP emission makes DTLS
// messages appear in the analysis — extracted by the registry-driven
// DPI, judged compliant by the DTLS driver, and reported under the DTLS
// family — for every app and a sweep of networks and seeds, with no
// engine edits anywhere.
func TestDTLSHandshakeAnalyzed(t *testing.T) {
	apps := appsim.Apps
	seeds := []uint64{3, 17, 29}
	if testing.Short() {
		apps = apps[:2]
		seeds = seeds[:1]
	}
	for _, app := range apps {
		for _, network := range streamingNetworks {
			for _, seed := range seeds {
				cap := dtlsCapture(t, app, network, seed)
				ca, err := AnalyzeCapture(cap.Input(), Options{Workers: 1})
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", app, network, seed, err)
				}
				ps := ca.Stats.ByProtocol[dpi.ProtoDTLS]
				if ps == nil || ps.Messages == 0 {
					t.Fatalf("%s/%s/%d: no DTLS messages extracted", app, network, seed)
				}
				// The emitted handshake is standards-form: every record
				// must judge compliant.
				if ps.Compliant != ps.Messages {
					t.Errorf("%s/%s/%d: DTLS compliance = %d/%d, want all",
						app, network, seed, ps.Compliant, ps.Messages)
				}
				// 10 records: 2×ClientHello, HelloVerifyRequest,
				// ServerHello, ServerHelloDone, ClientKeyExchange,
				// 2×ChangeCipherSpec, 2×encrypted Finished.
				if ps.Messages != 10 {
					t.Errorf("%s/%s/%d: DTLS messages = %d, want 10",
						app, network, seed, ps.Messages)
				}
			}
		}
	}
}

// TestDTLSRemovalNeedsNoEngineEdits pins the acceptance criterion that
// DTLS rides entirely on the registry: analyzing the same DTLS-bearing
// capture against Registry.Without(proto.DTLS) runs the stock engine,
// checker, and report code with no DTLS handler and produces an
// analysis identical to the full registry's except that the DTLS rows
// vanish — the handshake datagrams fall through to the proprietary
// classes instead of being dropped.
func TestDTLSRemovalNeedsNoEngineEdits(t *testing.T) {
	cap := dtlsCapture(t, appsim.Discord, appsim.WiFiRelay, 7)
	full, err := AnalyzeCapture(cap.Input(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub := proto.Default().Without(proto.DTLS)
	stripped, err := AnalyzeCapture(cap.Input(), Options{Workers: 1, Registry: sub})
	if err != nil {
		t.Fatal(err)
	}

	if full.Stats.ByProtocol[dpi.ProtoDTLS] == nil {
		t.Fatal("full registry extracted no DTLS")
	}
	if ps := stripped.Stats.ByProtocol[dpi.ProtoDTLS]; ps != nil {
		t.Fatalf("stripped registry still extracted DTLS: %+v", ps)
	}
	for _, key := range []dpi.Protocol{dpi.ProtoSTUN, dpi.ProtoRTP, dpi.ProtoRTCP, dpi.ProtoQUIC} {
		if !reflect.DeepEqual(full.Stats.ByProtocol[key], stripped.Stats.ByProtocol[key]) {
			t.Errorf("%v stats changed when DTLS was removed:\nfull:     %+v\nstripped: %+v",
				key, full.Stats.ByProtocol[key], stripped.Stats.ByProtocol[key])
		}
	}
	for key := range full.Stats.Types {
		if key.Protocol == dpi.ProtoDTLS {
			continue
		}
		if !reflect.DeepEqual(full.Stats.Types[key], stripped.Stats.Types[key]) {
			t.Errorf("type %v changed when DTLS was removed", key)
		}
	}
	for key := range stripped.Stats.Types {
		if key.Protocol == dpi.ProtoDTLS {
			t.Errorf("stripped registry judged DTLS type %v", key)
		}
	}
}

// TestDTLSOffMatchesDefault proves the knob is inert when off: a
// capture generated without DTLS analyzes identically whether or not
// the DTLS driver is registered.
func TestDTLSOffMatchesDefault(t *testing.T) {
	cap := streamingCapture(t, appsim.Zoom, appsim.WiFiP2P, 3)
	full, err := AnalyzeCapture(cap.Input(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := AnalyzeCapture(cap.Input(), Options{Workers: 1, Registry: proto.Default().Without(proto.DTLS)})
	if err != nil {
		t.Fatal(err)
	}
	diffAnalyses(t, "dtls-off", full, stripped)
}

// TestDTLSStreamingMatchesBatch extends the differential guarantee to
// DTLS-bearing captures: batch, streaming, and parallel analyses agree.
func TestDTLSStreamingMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		cap := dtlsCapture(t, appsim.GoogleMeet, appsim.Cellular, seed)
		batch, err := BatchAnalyzeCapture(cap.Input(), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := AnalyzeCapture(cap.Input(), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		diffAnalyses(t, "dtls streaming-1", batch, stream)
		par, err := AnalyzeCapture(cap.Input(), Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		diffAnalyses(t, "dtls streaming-8", batch, par)
	}
}
