package appsim

import (
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
)

func groupConfig(app App, n int) GroupCallConfig {
	return GroupCallConfig{
		App: app, Participants: n, Seed: 21,
		Start: testStart, Duration: 6 * time.Second, MediaRate: 15,
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := GenerateGroup(groupConfig(Discord, 3)); err == nil {
		t.Error("Discord group call accepted")
	}
	if _, err := GenerateGroup(groupConfig(Zoom, 2)); err == nil {
		t.Error("2-party group call accepted")
	}
	cfg := groupConfig(Zoom, 3)
	cfg.Duration = 0
	if _, err := GenerateGroup(cfg); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestZoomGroupScalesWithParticipants(t *testing.T) {
	count := func(n int) int {
		call, err := GenerateGroup(groupConfig(Zoom, n))
		if err != nil {
			t.Fatal(err)
		}
		return len(call.Events)
	}
	c3, c6 := count(3), count(6)
	if c6 <= c3+c3/2 {
		t.Errorf("6-party call (%d events) should far exceed 3-party (%d)", c6, c3)
	}
}

func TestZoomGroupSSRCsPerParticipant(t *testing.T) {
	call, err := GenerateGroup(groupConfig(Zoom, 4))
	if err != nil {
		t.Fatal(err)
	}
	ssrcs := make(map[uint32]bool)
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			if m.Protocol == dpi.ProtoRTP {
				ssrcs[m.RTP.SSRC] = true
			}
		}
	}
	// 4 participants x audio+video = 8 distinct SSRCs.
	if len(ssrcs) != 8 {
		t.Errorf("distinct SSRCs = %d, want 8", len(ssrcs))
	}
	if !ssrcs[zoomGroupSSRC(groupConfig(Zoom, 4), 0, false)] {
		t.Error("own audio SSRC missing")
	}
}

// With the deterministic scheme forced into collision, two remote
// participants share an SSRC; the DPI's sequence-continuity validation
// then rejects part of the interleaved traffic — the robustness hazard
// RFC 3550 randomization exists to prevent.
func TestZoomGroupSSRCCollision(t *testing.T) {
	clean, err := GenerateGroup(groupConfig(Zoom, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := groupConfig(Zoom, 5)
	cfg.ForceSSRCCollision = true
	collided, err := GenerateGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	countRTP := func(c *Call) (msgs int, fullyProp int) {
		for _, r := range inspectAll(c) {
			if r.Class == dpi.ClassFullyProprietary {
				fullyProp++
			}
			for _, m := range r.Messages {
				if m.Protocol == dpi.ProtoRTP {
					msgs++
				}
			}
		}
		return
	}
	cleanMsgs, cleanProp := countRTP(clean)
	collMsgs, collProp := countRTP(collided)
	if collMsgs >= cleanMsgs {
		t.Errorf("collision did not reduce extracted RTP: %d vs %d", collMsgs, cleanMsgs)
	}
	if collProp <= cleanProp {
		t.Errorf("collision should push datagrams into unclassifiable: %d vs %d", collProp, cleanProp)
	}
}

func TestMeetGroupChannelDataCompliant(t *testing.T) {
	call, err := GenerateGroup(groupConfig(GoogleMeet, 4))
	if err != nil {
		t.Fatal(err)
	}
	cd, stunMsgs := 0, 0
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			switch m.Protocol {
			case dpi.ProtoChannelData:
				cd++
			case dpi.ProtoSTUN:
				stunMsgs++
			}
		}
	}
	if cd < 100 {
		t.Errorf("ChannelData messages = %d, want many", cd)
	}
	// ChannelBind + per-join CreatePermission pairs.
	if stunMsgs < 2+2*3 {
		t.Errorf("STUN messages = %d", stunMsgs)
	}
}

func TestGroupJoinTimesStaggered(t *testing.T) {
	cfg := groupConfig(Zoom, 6)
	prev := groupJoinTime(cfg, 1)
	if !prev.Equal(cfg.Start) {
		t.Errorf("participant 1 joins at %v, want call start", prev)
	}
	for p := 2; p < 6; p++ {
		jt := groupJoinTime(cfg, p)
		if !jt.After(prev) {
			t.Errorf("participant %d join %v not after previous %v", p, jt, prev)
		}
		if jt.After(cfg.Start.Add(cfg.Duration)) {
			t.Errorf("participant %d joins after call end", p)
		}
		prev = jt
	}
}

func TestZoomGroupJoinFillerBursts(t *testing.T) {
	call, err := GenerateGroup(groupConfig(Zoom, 4))
	if err != nil {
		t.Fatal(err)
	}
	filler := 0
	for _, ev := range call.Events {
		if len(ev.Payload) == 1000 && ev.Payload[0] == 0x01 {
			uniform := true
			for _, b := range ev.Payload {
				if b != 0x01 {
					uniform = false
					break
				}
			}
			if uniform {
				filler++
			}
		}
	}
	// Three joining participants => three bursts of ≥20.
	if filler < 60 {
		t.Errorf("join filler datagrams = %d, want ≥60", filler)
	}
}
