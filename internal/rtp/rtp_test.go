package rtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func basic() *Packet {
	return &Packet{
		PayloadType:    111,
		SequenceNumber: 4242,
		Timestamp:      960000,
		SSRC:           0x11223344,
		Payload:        []byte("opus frame bytes"),
	}
}

func TestBasicRoundTrip(t *testing.T) {
	p := basic()
	p.Marker = true
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || !got.Marker || got.PayloadType != 111 ||
		got.SequenceNumber != 4242 || got.Timestamp != 960000 || got.SSRC != 0x11223344 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.HeaderSize() != HeaderLen {
		t.Errorf("HeaderSize = %d", got.HeaderSize())
	}
}

func TestCSRCRoundTrip(t *testing.T) {
	p := basic()
	p.CSRC = []uint32{1, 2, 0xdeadbeef}
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.CSRCCount != 3 || len(got.CSRC) != 3 || got.CSRC[2] != 0xdeadbeef {
		t.Errorf("CSRC = %v (count %d)", got.CSRC, got.CSRCCount)
	}
	if got.HeaderSize() != HeaderLen+12 {
		t.Errorf("HeaderSize = %d", got.HeaderSize())
	}
}

func TestPaddingRoundTrip(t *testing.T) {
	p := basic()
	p.Padding = true
	p.PaddingLen = 4
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Padding || got.PaddingLen != 4 {
		t.Errorf("padding = %v len %d", got.Padding, got.PaddingLen)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload with padding = %q", got.Payload)
	}
	if len(raw) != HeaderLen+len(p.Payload)+4 {
		t.Errorf("raw len = %d", len(raw))
	}
}

func TestPaddingInvalid(t *testing.T) {
	p := basic()
	raw := p.Encode()
	raw[0] |= 0x20 // padding bit with no padding byte accounting
	raw[len(raw)-1] = 200
	if _, err := Decode(raw); !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized padding accepted: %v", err)
	}
	// Padding bit with zero final byte is invalid too.
	p2 := basic()
	raw2 := p2.Encode()
	raw2[0] |= 0x20
	raw2[len(raw2)-1] = 0
	if _, err := Decode(raw2); err == nil {
		t.Error("zero padding length accepted")
	}
}

func TestOneByteExtensionRoundTrip(t *testing.T) {
	p := basic()
	p.Extension = &Extension{
		Profile: ProfileOneByte,
		Elements: []ExtensionElement{
			{ID: 1, Payload: []byte{0xaa}},
			{ID: 3, Payload: []byte{1, 2, 3, 4}},
		},
	}
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Extension == nil || got.Extension.Profile != ProfileOneByte {
		t.Fatal("extension missing")
	}
	if !got.Extension.ParseOK {
		t.Error("elements should parse")
	}
	if len(got.Extension.Elements) != 2 {
		t.Fatalf("elements = %+v", got.Extension.Elements)
	}
	e0, e1 := got.Extension.Elements[0], got.Extension.Elements[1]
	if e0.ID != 1 || !bytes.Equal(e0.Payload, []byte{0xaa}) {
		t.Errorf("elem 0 = %+v", e0)
	}
	if e1.ID != 3 || !bytes.Equal(e1.Payload, []byte{1, 2, 3, 4}) {
		t.Errorf("elem 1 = %+v", e1)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload corrupted by extension")
	}
}

func TestTwoByteExtensionRoundTrip(t *testing.T) {
	p := basic()
	p.Extension = &Extension{
		Profile: ProfileTwoByteBase | 0x0003,
		Elements: []ExtensionElement{
			{ID: 200, Payload: []byte{}},
			{ID: 7, Payload: bytes.Repeat([]byte{9}, 20)},
		},
	}
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Extension == nil || !got.Extension.ParseOK {
		t.Fatal("two-byte extension did not parse")
	}
	if len(got.Extension.Elements) != 2 {
		t.Fatalf("elements = %+v", got.Extension.Elements)
	}
	if got.Extension.Elements[0].ID != 200 || len(got.Extension.Elements[0].Payload) != 0 {
		t.Errorf("elem 0 = %+v", got.Extension.Elements[0])
	}
	if got.Extension.Elements[1].ID != 7 || len(got.Extension.Elements[1].Payload) != 20 {
		t.Errorf("elem 1 = %+v", got.Extension.Elements[1])
	}
}

// The Discord case: a one-byte-form element with ID=0 and a nonzero
// length nibble must be surfaced as an element, not silently skipped, so
// the compliance layer can flag it.
func TestOneByteIDZeroViolationSurfaced(t *testing.T) {
	p := basic()
	data := []byte{0x02, 0xde, 0xad, 0xbe} // ID=0, len nibble 2 -> 3 bytes
	p.Extension = &Extension{Profile: ProfileOneByte, Data: data}
	raw := p.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Extension.ParseOK || len(got.Extension.Elements) != 1 {
		t.Fatalf("ext = %+v", got.Extension)
	}
	el := got.Extension.Elements[0]
	if el.ID != 0 || !bytes.Equal(el.Payload, []byte{0xde, 0xad, 0xbe}) {
		t.Errorf("elem = %+v", el)
	}
}

func TestOneBytePaddingAndReservedID(t *testing.T) {
	p := basic()
	// padding, elem(ID=5,len=1), padding, reserved ID 15 terminator
	data := []byte{0x00, 0x50, 0x77, 0x00, 0xf0, 0x11, 0x22, 0x33}
	p.Extension = &Extension{Profile: ProfileOneByte, Data: data}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Extension.ParseOK {
		t.Error("ParseOK = false")
	}
	if len(got.Extension.Elements) != 1 || got.Extension.Elements[0].ID != 5 {
		t.Errorf("elements = %+v", got.Extension.Elements)
	}
}

func TestOneByteElementOverrun(t *testing.T) {
	p := basic()
	data := []byte{0x5f, 0x01, 0x02, 0x03} // ID=5 declares 16 bytes, only 3 follow
	p.Extension = &Extension{Profile: ProfileOneByte, Data: data}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Extension.ParseOK {
		t.Error("overrunning element parsed OK")
	}
}

func TestUndefinedProfileKeptRaw(t *testing.T) {
	p := basic()
	p.Extension = &Extension{Profile: 0x8500, Data: []byte{1, 2, 3, 4}}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Extension.Profile != 0x8500 {
		t.Errorf("profile = %#04x", got.Extension.Profile)
	}
	if got.Extension.Elements != nil {
		t.Error("elements parsed for unknown profile")
	}
	if !bytes.Equal(got.Extension.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("data = %v", got.Extension.Data)
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Error("short packet accepted")
	}
	bad := basic().Encode()
	bad[0] = 0x40 | bad[0]&0x3f // version 1
	if _, err := Decode(bad); !errors.Is(err, ErrNotRTP) {
		t.Error("version 1 accepted")
	}
	// CSRC count exceeding buffer.
	short := basic().Encode()[:HeaderLen]
	short[0] |= 0x0f
	if _, err := Decode(short); !errors.Is(err, ErrTruncated) {
		t.Error("CSRC overrun accepted")
	}
	// Extension words exceeding buffer.
	p := basic()
	p.Extension = &Extension{Profile: ProfileOneByte, Data: []byte{0x10, 0xaa, 0, 0}}
	raw := p.Encode()
	raw[HeaderLen+3] = 0xff // extension length words
	if _, err := Decode(raw); !errors.Is(err, ErrTruncated) {
		t.Error("extension overrun accepted")
	}
}

func TestLooksLikeHeader(t *testing.T) {
	ok := basic().Encode()
	if !LooksLikeHeader(ok) {
		t.Error("valid packet rejected")
	}
	if LooksLikeHeader(ok[:8]) {
		t.Error("8 bytes accepted")
	}
	bad := append([]byte{}, ok...)
	bad[0] = 0x00
	if LooksLikeHeader(bad) {
		t.Error("version 0 accepted")
	}
	// Any payload type must be accepted (Peafowl restriction removed).
	pt127 := basic()
	pt127.PayloadType = 127
	if !LooksLikeHeader(pt127.Encode()) {
		t.Error("payload type 127 rejected")
	}
	// Extension bit with truncated extension header.
	p := basic()
	p.Extension = &Extension{Profile: ProfileOneByte, Data: []byte{0x10, 1, 0, 0}}
	raw := p.Encode()
	if !LooksLikeHeader(raw) {
		t.Error("valid extended packet rejected")
	}
	if LooksLikeHeader(raw[:HeaderLen+2]) {
		t.Error("truncated extension accepted")
	}
}

func TestEmptyPayload(t *testing.T) {
	p := basic()
	p.Payload = nil
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v", got.Payload)
	}
}

// Property: encode→decode identity over header fields and payload.
func TestQuickRoundTripIdentity(t *testing.T) {
	f := func(pt uint8, seq uint16, ts, ssrc uint32, marker bool, payload []byte) bool {
		p := &Packet{
			Marker:         marker,
			PayloadType:    pt & 0x7f,
			SequenceNumber: seq,
			Timestamp:      ts,
			SSRC:           ssrc,
			Payload:        payload,
		}
		got, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return got.PayloadType == pt&0x7f && got.SequenceNumber == seq &&
			got.Timestamp == ts && got.SSRC == ssrc && got.Marker == marker &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on arbitrary input.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		_ = LooksLikeHeader(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: extension element round trip for valid one-byte IDs/lengths.
func TestQuickOneByteElements(t *testing.T) {
	f := func(id uint8, payload []byte) bool {
		id = id%14 + 1 // 1..14
		if len(payload) == 0 || len(payload) > 16 {
			return true
		}
		p := basic()
		p.Extension = &Extension{
			Profile:  ProfileOneByte,
			Elements: []ExtensionElement{{ID: id, Payload: payload}},
		}
		got, err := Decode(p.Encode())
		if err != nil || got.Extension == nil || !got.Extension.ParseOK {
			return false
		}
		return len(got.Extension.Elements) == 1 &&
			got.Extension.Elements[0].ID == id &&
			bytes.Equal(got.Extension.Elements[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
