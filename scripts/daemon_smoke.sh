#!/bin/sh
# Daemon smoke: start the rtclive compliance daemon against synthetic
# appsim traffic, scrape /compliance/trend, SIGHUP-reload with a
# changed config, replay more traffic under the new config, and assert
# a clean SIGTERM drain. Everything runs on ephemeral ports parsed
# from the daemon's own startup log, so the smoke is safe to run
# concurrently with anything else on the machine.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

fail() {
    echo "daemon-smoke: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$dir/daemon.log" >&2 || true
    exit 1
}

$GO build -o "$dir" ./cmd/rtclive ./cmd/rtcgen

"$dir/rtcgen" -out "$dir/traces" -app Zoom -network wifi-p2p -duration 5s -runs 1 >/dev/null
pcap=$(ls "$dir"/traces/*.pcap | head -1)

write_config() {
    cat > "$dir/daemon.yaml" <<EOF
source:
  kind: live
  listen: "127.0.0.1:0"
  idle: 200ms
  label: $1
daemon:
  epoch: 1s
  trend_file: $dir/trend.jsonl
sinks:
  metrics_addr: "127.0.0.1:0"
EOF
}
write_config smoke-a

"$dir/rtclive" daemon -config "$dir/daemon.yaml" > "$dir/daemon.log" 2>&1 &
pid=$!

# The daemon logs its ephemeral collector and HTTP addresses at startup.
i=0
until grep -q "daemon: metrics and /compliance/trend" "$dir/daemon.log" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not report its addresses"
    sleep 0.1
done
addr=$(sed -n 's/^daemon: collecting on \([^ ]*\).*/\1/p' "$dir/daemon.log" | head -1)
http=$(sed -n 's|^daemon: metrics and /compliance/trend on http://\([^ ]*\).*|\1|p' "$dir/daemon.log" | head -1)
[ -n "$addr" ] && [ -n "$http" ] || fail "could not parse daemon addresses"

# Replay the capture into the collector and wait for a trend point
# under the first config's label.
"$dir/rtclive" replay -pcap "$pcap" -to "$addr" -speed 0 >/dev/null
i=0
until fetch "http://$http/compliance/trend" 2>/dev/null | grep -q '"app": "smoke-a"'; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point under label smoke-a"
    sleep 0.1
done

# SIGHUP reload with a changed label; the daemon must confirm the
# reload and keep collecting on the same socket.
write_config smoke-b
kill -HUP "$pid"
i=0
until grep -q "daemon: reloaded config from" "$dir/daemon.log"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not confirm the SIGHUP reload"
    sleep 0.1
done

"$dir/rtclive" replay -pcap "$pcap" -to "$addr" -speed 0 >/dev/null
i=0
until fetch "http://$http/compliance/trend?app=smoke-b" 2>/dev/null | grep -q '"app": "smoke-b"'; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point under the reloaded label smoke-b"
    sleep 0.1
done

# SIGTERM must drain cleanly: exit 0 and a conservation line.
kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
grep -q "daemon: drained," "$dir/daemon.log" || fail "daemon did not log the drain accounting"
[ -s "$dir/trend.jsonl" ] || fail "trend file is empty"

echo "daemon-smoke: startup, trend scrape, SIGHUP reload, and SIGTERM drain OK"
