// Package rtcp implements the RTCP wire format: RFC 3550 packet types
// (SR, RR, SDES, BYE, APP), RFC 4585 feedback (RTPFB, PSFB), RFC 3611
// extended reports (XR), compound-packet framing, and the SRTCP trailer
// model from RFC 3711 that the Google Meet compliance case depends on.
//
// A datagram's RTCP region decodes into a sequence of packets via
// DecodeCompound; bytes after the last well-formed packet are returned
// as trailing bytes so the compliance layer can flag proprietary
// trailers (the Discord direction byte).
package rtcp

import (
	"errors"
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// Version is the RTP/RTCP protocol version.
const Version = 2

// HeaderLen is the common 4-byte RTCP header size.
const HeaderLen = 4

// PacketType is the 8-bit RTCP packet type.
type PacketType uint8

// Assigned RTCP packet types.
const (
	TypeSenderReport   PacketType = 200 // RFC 3550
	TypeReceiverReport PacketType = 201 // RFC 3550
	TypeSDES           PacketType = 202 // RFC 3550
	TypeBye            PacketType = 203 // RFC 3550
	TypeApp            PacketType = 204 // RFC 3550
	TypeRTPFB          PacketType = 205 // RFC 4585 transport layer FB
	TypePSFB           PacketType = 206 // RFC 4585 payload-specific FB
	TypeXR             PacketType = 207 // RFC 3611
)

func (t PacketType) String() string {
	switch t {
	case TypeSenderReport:
		return "SR (200)"
	case TypeReceiverReport:
		return "RR (201)"
	case TypeSDES:
		return "SDES (202)"
	case TypeBye:
		return "BYE (203)"
	case TypeApp:
		return "APP (204)"
	case TypeRTPFB:
		return "RTPFB (205)"
	case TypePSFB:
		return "PSFB (206)"
	case TypeXR:
		return "XR (207)"
	default:
		return fmt.Sprintf("RTCP(%d)", uint8(t))
	}
}

// Defined reports whether t is an assigned RTCP packet type.
func Defined(t PacketType) bool {
	return t >= TypeSenderReport && t <= TypeXR
}

// Header is the common RTCP packet header.
type Header struct {
	Version uint8
	Padding bool
	// Count is the 5-bit count field: reception-report count for SR/RR,
	// source count for SDES/BYE, FMT for feedback packets, subtype for
	// APP.
	Count uint8
	Type  PacketType
	// Length is the declared length in 32-bit words minus one.
	Length uint16
}

// ByteLen reports the full packet length in bytes implied by Length.
func (h Header) ByteLen() int { return 4 * (int(h.Length) + 1) }

// ReportBlock is one reception report block (RFC 3550 §6.4.1).
type ReportBlock struct {
	SSRC             uint32
	FractionLost     uint8
	CumulativeLost   uint32 // 24-bit
	HighestSeq       uint32
	Jitter           uint32
	LastSR           uint32
	DelaySinceLastSR uint32
}

// SenderInfo is the SR sender-information section.
type SenderInfo struct {
	NTPTimestamp uint64
	RTPTimestamp uint32
	PacketCount  uint32
	OctetCount   uint32
}

// SenderReport is a decoded SR.
type SenderReport struct {
	SSRC    uint32
	Info    SenderInfo
	Reports []ReportBlock
	// ProfileExt is any profile-specific extension after the report
	// blocks.
	ProfileExt []byte
}

// ReceiverReport is a decoded RR.
type ReceiverReport struct {
	SSRC       uint32
	Reports    []ReportBlock
	ProfileExt []byte
}

// SDESItemType identifies an SDES item.
type SDESItemType uint8

// SDES item types (RFC 3550 §6.5).
const (
	SDESEnd   SDESItemType = 0
	SDESCNAME SDESItemType = 1
	SDESName  SDESItemType = 2
	SDESEmail SDESItemType = 3
	SDESPhone SDESItemType = 4
	SDESLoc   SDESItemType = 5
	SDESTool  SDESItemType = 6
	SDESNote  SDESItemType = 7
	SDESPriv  SDESItemType = 8
)

// SDESItem is one source-description item.
type SDESItem struct {
	Type SDESItemType
	Text string
}

// SDESChunk describes one source.
type SDESChunk struct {
	SSRC  uint32
	Items []SDESItem
}

// SDES is a decoded source-description packet.
type SDES struct {
	Chunks []SDESChunk
}

// Bye is a decoded BYE packet.
type Bye struct {
	SSRCs  []uint32
	Reason string
}

// App is a decoded APP packet.
type App struct {
	Subtype uint8
	SSRC    uint32
	Name    [4]byte
	Data    []byte
}

// Feedback is a decoded RTPFB or PSFB packet (RFC 4585 §6.1).
type Feedback struct {
	FMT        uint8
	SenderSSRC uint32
	MediaSSRC  uint32
	FCI        []byte
}

// RTPFB FMT values (RFC 4585, RFC 8888, TWCC draft as deployed).
const (
	FBNack uint8 = 1
	FBTWCC uint8 = 15
)

// PSFB FMT values.
const (
	FBPLI  uint8 = 1
	FBSLI  uint8 = 2
	FBRPSI uint8 = 3
	FBFIR  uint8 = 4
	FBAFB  uint8 = 15 // application layer (REMB)
)

// XRBlock is one extended-report block (RFC 3611 §3).
type XRBlock struct {
	BlockType    uint8
	TypeSpecific uint8
	// Contents is the block body; its length on the wire is the block
	// length field times four.
	Contents []byte
}

// XR is a decoded extended-report packet.
type XR struct {
	SSRC   uint32
	Blocks []XRBlock
}

// Packet is one decoded RTCP packet. Exactly one of the typed fields is
// populated for defined packet types; undefined types retain only the
// header, Body, and Raw bytes.
type Packet struct {
	Header Header
	// Body is the packet body after the common header, Length-delimited.
	Body []byte
	// Raw is the full encoded packet including header.
	Raw []byte

	SR   *SenderReport
	RR   *ReceiverReport
	SDES *SDES
	BYE  *Bye
	APP  *App
	FB   *Feedback
	XR   *XR
	// ParseOK reports whether the type-specific body parsed cleanly.
	// False for defined types with malformed bodies and for encrypted
	// bodies; undefined types leave it false.
	ParseOK bool
}

// SenderSSRC returns the first SSRC field of the packet, which every
// defined type carries immediately after the header, and false if the
// body is too short.
func (p *Packet) SenderSSRC() (uint32, bool) {
	if len(p.Body) < 4 {
		return 0, false
	}
	return uint32(p.Body[0])<<24 | uint32(p.Body[1])<<16 | uint32(p.Body[2])<<8 | uint32(p.Body[3]), true
}

// Decoding errors.
var (
	ErrNotRTCP   = errors.New("rtcp: not an RTCP packet")
	ErrTruncated = errors.New("rtcp: truncated packet")
)

// LooksLikeHeader reports whether b plausibly begins with an RTCP packet:
// version 2, a packet type in the RTCP range (192-223, covering assigned
// and reserved values), and a declared length that fits.
func LooksLikeHeader(b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	if b[0]>>6 != Version {
		return false
	}
	pt := b[1]
	if pt < 192 || pt > 223 {
		return false
	}
	length := int(uint16(b[2])<<8|uint16(b[3]))*4 + 4
	return length <= len(b)
}

// DecodePacket parses a single RTCP packet from the start of b. Bytes
// past the declared length are ignored.
func DecodePacket(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>6 != Version {
		return nil, fmt.Errorf("%w: version %d", ErrNotRTCP, b[0]>>6)
	}
	h := Header{
		Version: b[0] >> 6,
		Padding: b[0]&0x20 != 0,
		Count:   b[0] & 0x1f,
		Type:    PacketType(b[1]),
		Length:  uint16(b[2])<<8 | uint16(b[3]),
	}
	total := h.ByteLen()
	if total > len(b) {
		return nil, fmt.Errorf("%w: declared %d bytes, have %d", ErrTruncated, total, len(b))
	}
	p := &Packet{Header: h, Raw: b[:total]}
	body := b[HeaderLen:total]
	if h.Padding && len(body) > 0 {
		pad := int(body[len(body)-1])
		if pad > 0 && pad <= len(body) {
			body = body[:len(body)-pad]
		}
	}
	p.Body = body
	p.parseBody()
	return p, nil
}

func (p *Packet) parseBody() {
	switch p.Header.Type {
	case TypeSenderReport:
		p.SR, p.ParseOK = parseSR(p.Body, p.Header.Count)
	case TypeReceiverReport:
		p.RR, p.ParseOK = parseRR(p.Body, p.Header.Count)
	case TypeSDES:
		p.SDES, p.ParseOK = parseSDES(p.Body, p.Header.Count)
	case TypeBye:
		p.BYE, p.ParseOK = parseBye(p.Body, p.Header.Count)
	case TypeApp:
		p.APP, p.ParseOK = parseApp(p.Body, p.Header.Count)
	case TypeRTPFB, TypePSFB:
		p.FB, p.ParseOK = parseFeedback(p.Body, p.Header.Count)
	case TypeXR:
		p.XR, p.ParseOK = parseXR(p.Body)
	}
}

func parseReportBlocks(r *bytesutil.Reader, count uint8) ([]ReportBlock, bool) {
	blocks := make([]ReportBlock, 0, count)
	for i := 0; i < int(count); i++ {
		rb := ReportBlock{
			SSRC:           r.Uint32(),
			FractionLost:   r.Uint8(),
			CumulativeLost: r.Uint24(),
			HighestSeq:     r.Uint32(),
			Jitter:         r.Uint32(),
			LastSR:         r.Uint32(),
		}
		rb.DelaySinceLastSR = r.Uint32()
		if r.Failed() {
			return nil, false
		}
		blocks = append(blocks, rb)
	}
	return blocks, true
}

func parseSR(body []byte, count uint8) (*SenderReport, bool) {
	r := bytesutil.NewReader(body)
	sr := &SenderReport{SSRC: r.Uint32()}
	sr.Info = SenderInfo{
		NTPTimestamp: r.Uint64(),
		RTPTimestamp: r.Uint32(),
		PacketCount:  r.Uint32(),
		OctetCount:   r.Uint32(),
	}
	if r.Failed() {
		return nil, false
	}
	blocks, ok := parseReportBlocks(r, count)
	if !ok {
		return nil, false
	}
	sr.Reports = blocks
	sr.ProfileExt = append([]byte(nil), r.Rest()...)
	return sr, true
}

func parseRR(body []byte, count uint8) (*ReceiverReport, bool) {
	r := bytesutil.NewReader(body)
	rr := &ReceiverReport{SSRC: r.Uint32()}
	if r.Failed() {
		return nil, false
	}
	blocks, ok := parseReportBlocks(r, count)
	if !ok {
		return nil, false
	}
	rr.Reports = blocks
	rr.ProfileExt = append([]byte(nil), r.Rest()...)
	return rr, true
}

func parseSDES(body []byte, count uint8) (*SDES, bool) {
	r := bytesutil.NewReader(body)
	s := &SDES{}
	for i := 0; i < int(count); i++ {
		chunk := SDESChunk{SSRC: r.Uint32()}
		if r.Failed() {
			return nil, false
		}
		for {
			t := SDESItemType(r.Uint8())
			if r.Failed() {
				return nil, false
			}
			if t == SDESEnd {
				// Chunk is padded with zeros to the next 32-bit boundary,
				// counting from the start of the body.
				for r.Offset()%4 != 0 {
					if r.Uint8() != 0 || r.Failed() {
						return nil, false
					}
				}
				break
			}
			n := int(r.Uint8())
			text := r.Bytes(n)
			if r.Failed() {
				return nil, false
			}
			chunk.Items = append(chunk.Items, SDESItem{Type: t, Text: string(text)})
		}
		s.Chunks = append(s.Chunks, chunk)
	}
	return s, r.Remaining() == 0
}

func parseBye(body []byte, count uint8) (*Bye, bool) {
	r := bytesutil.NewReader(body)
	b := &Bye{}
	for i := 0; i < int(count); i++ {
		b.SSRCs = append(b.SSRCs, r.Uint32())
	}
	if r.Failed() {
		return nil, false
	}
	if r.Remaining() > 0 {
		n := int(r.Uint8())
		reason := r.Bytes(n)
		if r.Failed() {
			return nil, false
		}
		b.Reason = string(reason)
	}
	return b, true
}

func parseApp(body []byte, subtype uint8) (*App, bool) {
	r := bytesutil.NewReader(body)
	a := &App{Subtype: subtype, SSRC: r.Uint32()}
	name := r.Bytes(4)
	if r.Failed() {
		return nil, false
	}
	copy(a.Name[:], name)
	a.Data = append([]byte(nil), r.Rest()...)
	return a, true
}

func parseFeedback(body []byte, fmtVal uint8) (*Feedback, bool) {
	r := bytesutil.NewReader(body)
	fb := &Feedback{
		FMT:        fmtVal,
		SenderSSRC: r.Uint32(),
		MediaSSRC:  r.Uint32(),
	}
	if r.Failed() {
		return nil, false
	}
	fb.FCI = append([]byte(nil), r.Rest()...)
	return fb, true
}

func parseXR(body []byte) (*XR, bool) {
	r := bytesutil.NewReader(body)
	x := &XR{SSRC: r.Uint32()}
	if r.Failed() {
		return nil, false
	}
	for r.Remaining() >= 4 {
		bt := r.Uint8()
		ts := r.Uint8()
		words := r.Uint16()
		contents := r.BytesCopy(int(words) * 4)
		if r.Failed() {
			return nil, false
		}
		x.Blocks = append(x.Blocks, XRBlock{BlockType: bt, TypeSpecific: ts, Contents: contents})
	}
	return x, r.Remaining() == 0
}

// DecodeCompound parses a sequence of RTCP packets from b. It returns
// the packets decoded, any trailing bytes after the last well-formed
// packet, and an error only if the very first packet fails to parse.
// Trailing bytes arise from SRTCP trailers and proprietary suffixes; the
// compliance layer interprets them.
func DecodeCompound(b []byte) ([]*Packet, []byte, error) {
	first, err := DecodePacket(b)
	if err != nil {
		return nil, b, err
	}
	pkts := []*Packet{first}
	off := first.Header.ByteLen()
	for off+HeaderLen <= len(b) {
		if !LooksLikeHeader(b[off:]) {
			break
		}
		p, err := DecodePacket(b[off:])
		if err != nil {
			break
		}
		pkts = append(pkts, p)
		off += p.Header.ByteLen()
	}
	return pkts, b[off:], nil
}
