package metrics

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/rtc-compliance/rtcc/internal/buildinfo"
)

// Handler returns an http.Handler exposing the observability surface:
//
//	/metrics        JSON snapshot of the registry; ?format=prom selects
//	                the Prometheus text exposition format instead
//	/debug/vars     expvar (includes the registry when published)
//	/debug/pprof/   net/http/pprof profiles
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, nil)
}

// PromContentType is the Content-Type of the Prometheus text
// exposition format the /metrics?format=prom branch serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// HandlerWith is Handler plus caller routes mounted on the same mux —
// how the compliance daemon serves /compliance/trend from the metrics
// endpoint instead of opening a second listener. Caller patterns must
// not collide with the built-in /metrics and /debug/ prefixes.
func HandlerWith(r *Registry, routes map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		switch format := req.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prom", "prometheus":
			w.Header().Set("Content-Type", PromContentType)
			if err := r.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "metrics: unknown format "+format+" (json or prom)", http.StatusBadRequest)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range routes {
		mux.Handle(pattern, h)
	}
	return mux
}

// Server is a background metrics HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; port 0 for ephemeral), publishes the
// registry to expvar under "rtcc" and the binary's build identity
// under "build_info", and serves Handler(r) in a background goroutine
// until Close or Shutdown.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeWith(addr, r, nil)
}

// ServeWith is Serve with extra routes mounted beside the built-in
// observability surface (see HandlerWith).
func ServeWith(addr string, r *Registry, routes map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	r.PublishExpvar("rtcc")
	publishBuildInfo()
	s := &Server{srv: &http.Server{Handler: HandlerWith(r, routes)}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// publishBuildInfo exposes the build identity as the build_info expvar
// so scrapes are attributable to a commit. Idempotent, matching
// PublishExpvar: a second Serve in one process reuses the first var.
func publishBuildInfo() {
	if expvar.Get("build_info") != nil {
		return
	}
	m := buildinfo.Get().Map()
	v := new(expvar.Map).Init()
	for k, val := range m {
		s := new(expvar.String)
		s.Set(val)
		v.Set(k, s)
	}
	expvar.Publish("build_info", v)
}

// Addr reports the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes.
// Prefer Shutdown on signal paths.
func (s *Server) Close() error { return s.srv.Close() }

// DefaultShutdownTimeout bounds a graceful Shutdown initiated from a
// signal handler.
const DefaultShutdownTimeout = 3 * time.Second

// Shutdown stops accepting new connections and waits for in-flight
// scrapes (a slow /metrics poll, a pprof profile download) to finish,
// up to the context deadline; connections still open then are closed
// hard. A context without a deadline is given DefaultShutdownTimeout.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultShutdownTimeout)
		defer cancel()
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		// Deadline hit with connections still active: fall back to the
		// hard close so the process can exit.
		s.srv.Close()
		return err
	}
	return nil
}
