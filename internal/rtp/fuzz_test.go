package rtp

import (
	"bytes"
	"testing"
)

// FuzzDecode checks panic-freedom and re-encode stability for RTP.
func FuzzDecode(f *testing.F) {
	p := &Packet{PayloadType: 96, SequenceNumber: 7, Timestamp: 100, SSRC: 9, Payload: []byte("media")}
	f.Add(p.Encode())
	pe := &Packet{PayloadType: 96, SSRC: 9, Payload: []byte("x"),
		Extension: &Extension{Profile: ProfileOneByte, Data: []byte{0x10, 1, 0, 0}}}
	f.Add(pe.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		if err != nil {
			return
		}
		if pkt.HeaderSize() > len(data) {
			t.Fatalf("header size %d > input %d", pkt.HeaderSize(), len(data))
		}
		re := pkt.Encode()
		pkt2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if pkt2.SSRC != pkt.SSRC || pkt2.SequenceNumber != pkt.SequenceNumber ||
			pkt2.PayloadType != pkt.PayloadType || !bytes.Equal(pkt2.Payload, pkt.Payload) {
			t.Fatal("re-encode not stable")
		}
	})
}
