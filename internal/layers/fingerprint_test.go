package layers_test

import (
	"net/netip"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// The flow-fingerprint contract (fingerprint.go): wherever both the
// fixed-offset fast path and the decoded slow path produce a
// fingerprint, they produce the same one; and the fingerprint is
// direction-invariant, so both halves of a conversation route to the
// same ingest shard. This file is the differential suite for both
// properties — over every synthesized app corpus, not just
// hand-picked frames.

// fingerprintBoth computes both paths for one frame; agree is false
// only when both produced a value and the values differ.
func fingerprintBoth(t *testing.T, lt pcap.LinkType, frame []byte) (fastOK, slowOK bool) {
	t.Helper()
	fast, fastOK := layers.FlowFingerprint(lt, frame)
	var pkt layers.Packet
	if err := layers.DecodeInto(&pkt, lt, frame); err != nil {
		return fastOK, false
	}
	slow, slowOK := layers.FingerprintPacket(&pkt)
	if fastOK && slowOK && fast != slow {
		t.Errorf("fast %#x != decoded %#x for %d-byte frame", fast, slow, len(frame))
	}
	if fastOK && !slowOK {
		t.Errorf("fast path fingerprinted a frame the decoder rejects (%d bytes)", len(frame))
	}
	return fastOK, slowOK
}

// TestFingerprintDifferentialCorpus sweeps every app's synthetic
// capture — media, STUN/TURN, QUIC, TCP background, undecodable noise
// — and holds the two fingerprint paths to agreement on every frame.
// The fast path must also cover the overwhelming majority of routable
// frames: it exists so the router rarely pays a full decode.
func TestFingerprintDifferentialCorpus(t *testing.T) {
	start := time.Unix(1700000000, 0).UTC()
	for _, app := range appsim.Apps {
		capt, err := trace.Generate(trace.CaptureConfig{
			App: app, Network: appsim.WiFiRelay, Seed: 11,
			Start: start, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
			MediaRate: 8, Background: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fastHits, slowHits := 0, 0
		for _, fr := range capt.Frames() {
			fastOK, slowOK := fingerprintBoth(t, pcap.LinkTypeRaw, fr.Data)
			if fastOK {
				fastHits++
			}
			if slowOK {
				slowHits++
			}
		}
		if slowHits == 0 {
			t.Fatalf("%s: corpus produced no routable frames", app)
		}
		if fastHits*10 < slowHits*9 {
			t.Errorf("%s: fast path covered %d of %d routable frames (<90%%)", app, fastHits, slowHits)
		}
	}
}

// TestFingerprintDirectionInvariance pins the property the sharded
// router depends on: swapping source and destination (addresses and
// ports together) never changes the fingerprint, over UDP and TCP,
// IPv4 and IPv6, and both link framings.
func TestFingerprintDirectionInvariance(t *testing.T) {
	payload := []byte("rtp-ish payload")
	frames := map[string][2][]byte{
		"udp4": {
			layers.EncodeUDPv4(addrA, addrB, 5004, 3478, payload),
			layers.EncodeUDPv4(addrB, addrA, 3478, 5004, payload),
		},
		"udp6": {
			layers.EncodeUDPv6(addr6, addr7, 443, 50000, payload),
			layers.EncodeUDPv6(addr7, addr6, 50000, 443, payload),
		},
		"tcp4": {
			layers.EncodeTCPv4(addrA, addrB, layers.TCP{SrcPort: 443, DstPort: 61000, DataOffset: 5}, payload),
			layers.EncodeTCPv4(addrB, addrA, layers.TCP{SrcPort: 61000, DstPort: 443, DataOffset: 5}, payload),
		},
	}
	for name, pair := range frames {
		a, aok := layers.FlowFingerprint(pcap.LinkTypeRaw, pair[0])
		b, bok := layers.FlowFingerprint(pcap.LinkTypeRaw, pair[1])
		if !aok || !bok {
			t.Fatalf("%s: fast path declined a fixed-header frame", name)
		}
		if a != b {
			t.Errorf("%s: direction changes fingerprint: %#x != %#x", name, a, b)
		}
	}
	// Distinct flows must not collide on these hand-built cases: a
	// port change is a different conversation.
	x, _ := layers.FlowFingerprint(pcap.LinkTypeRaw, layers.EncodeUDPv4(addrA, addrB, 5004, 3478, payload))
	y, _ := layers.FlowFingerprint(pcap.LinkTypeRaw, layers.EncodeUDPv4(addrA, addrB, 5005, 3478, payload))
	if x == y {
		t.Error("different ports produced the same fingerprint")
	}
}

// TestFingerprintDeclines pins the fall-back rule: anything the fast
// path is unsure about — truncation, IPv4 options, unsupported
// transports, empty input — declines rather than guesses.
func TestFingerprintDeclines(t *testing.T) {
	udp := layers.EncodeUDPv4(addrA, addrB, 1000, 2000, []byte("x"))
	cases := map[string][]byte{
		"empty":           nil,
		"one-byte":        {0x45},
		"truncated-ip":    udp[:19],
		"truncated-ports": udp[:22],
		"icmp-proto":      append(append([]byte{}, udp[:9]...), append([]byte{1}, udp[10:]...)...),
	}
	// IPv4 options: bump IHL to 6; the fast path must hand this to the
	// full decoder rather than read ports at the wrong offset.
	opts := append([]byte{}, udp...)
	opts[0] = 0x46
	cases["ipv4-options"] = opts
	for name, frame := range cases {
		if fp, ok := layers.FlowFingerprint(pcap.LinkTypeRaw, frame); ok {
			t.Errorf("%s: fast path fingerprinted (%#x) instead of declining", name, fp)
		}
	}
	if _, ok := layers.FlowFingerprint(pcap.LinkTypeEthernet, udp); ok {
		t.Error("raw-IP bytes fingerprinted under an Ethernet link type")
	}
}

// TestFingerprintEthernetFraming checks the Ethernet offsets against
// the raw framing of the same inner packet.
func TestFingerprintEthernetFraming(t *testing.T) {
	inner := layers.EncodeUDPv4(addrA, addrB, 5004, 3478, []byte("media"))
	eth := make([]byte, 14+len(inner))
	eth[12], eth[13] = 0x08, 0x00 // EtherType IPv4
	copy(eth[14:], inner)
	fe, okE := layers.FlowFingerprint(pcap.LinkTypeEthernet, eth)
	fr, okR := layers.FlowFingerprint(pcap.LinkTypeRaw, inner)
	if !okE || !okR {
		t.Fatal("fast path declined a fixed-header frame")
	}
	if fe != fr {
		t.Errorf("Ethernet framing changed the fingerprint: %#x != %#x", fe, fr)
	}
}

var (
	addrA = netip.MustParseAddr("192.168.1.10")
	addrB = netip.MustParseAddr("203.0.113.7")
	addr6 = netip.MustParseAddr("2001:db8::1")
	addr7 = netip.MustParseAddr("fe80::2")
)
