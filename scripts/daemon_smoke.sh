#!/bin/sh
# Daemon smoke: start the rtclive compliance daemon against synthetic
# appsim traffic, scrape /compliance/trend, inject a compliance
# regression (replay Discord traffic under the same label as compliant
# Zoom traffic) and assert the configured exec-sink alert fires exactly
# once; verify the firing state survives a SIGHUP reload and shows up
# on /compliance/alerts, /healthz, and /metrics?format=prom; then
# SIGHUP-reload with a changed label, replay more traffic under the
# new config, and assert a clean SIGTERM drain. Everything runs on
# ephemeral ports parsed from the daemon's own startup log, so the
# smoke is safe to run concurrently with anything else on the machine.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

fail() {
    echo "daemon-smoke: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$dir/daemon.log" >&2 || true
    echo "--- exec-sink output ---" >&2
    cat "$dir/alerts.out" >&2 || true
    exit 1
}

# fire_lines counts exec-sink deliveries of a given kind (no
# deliveries yet means the sink never ran and the file is absent).
fire_lines() {
    [ -f "$dir/alerts.out" ] || { echo 0; return; }
    grep -c "^$1\.floor$" "$dir/alerts.out" || true
}

$GO build -o "$dir" ./cmd/rtclive ./cmd/rtcgen

"$dir/rtcgen" -out "$dir/traces" -app Zoom -network wifi-p2p -duration 5s -runs 1 >/dev/null
pcap=$(ls "$dir"/traces/*.pcap | head -1)
"$dir/rtcgen" -out "$dir/regress" -app Discord -network wifi-p2p -duration 5s -runs 1 >/dev/null
badpcap=$(ls "$dir"/regress/*.pcap | head -1)

# The alert floor (0.2) sits between Discord's type-compliance rate
# (0) and any Zoom epoch, so swapping the replayed app under the same
# label forces a regression. QoE estimation rides along so the trend
# points carry the header-free media features.
write_config() {
    cat > "$dir/daemon.yaml" <<EOF
source:
  kind: live
  listen: "127.0.0.1:0"
  idle: 200ms
  label: $1
analysis:
  qoe: true
daemon:
  epoch: 1s
  trend_file: $dir/trend.jsonl
sinks:
  metrics_addr: "127.0.0.1:0"
alerts:
  rules:
    floor:
      type: compliance_drop
      min: 0.2
  sinks:
    exec:
      command: "echo \$ALERT_KIND.\$ALERT_RULE >> $dir/alerts.out"
EOF
}
write_config smoke-a

"$dir/rtclive" daemon -config "$dir/daemon.yaml" > "$dir/daemon.log" 2>&1 &
pid=$!

# The daemon logs its ephemeral collector and HTTP addresses at startup.
i=0
until grep -q "daemon: metrics and /compliance/trend" "$dir/daemon.log" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not report its addresses"
    sleep 0.1
done
addr=$(sed -n 's/^daemon: collecting on \([^ ]*\).*/\1/p' "$dir/daemon.log" | head -1)
http=$(sed -n 's|^daemon: metrics and /compliance/trend on http://\([^ ]*\).*|\1|p' "$dir/daemon.log" | head -1)
[ -n "$addr" ] && [ -n "$http" ] || fail "could not parse daemon addresses"

# Replay the compliant capture and wait for a trend point under the
# first config's label. This also arms the alert rule with a healthy
# baseline; nothing may fire yet.
"$dir/rtclive" replay -pcap "$pcap" -to "$addr" -speed 0 >/dev/null
i=0
until fetch "http://$http/compliance/trend" 2>/dev/null | grep -q '"app": "smoke-a"'; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point under label smoke-a"
    sleep 0.1
done
[ "$(fire_lines fire)" = "0" ] || fail "alert fired on compliant traffic"

# The trend points must carry the QoE summary, and the since= filter
# must accept both duration and RFC 3339 forms.
fetch "http://$http/compliance/trend?since=10m" | grep -q '"qoe"' \
    || fail "trend points carry no qoe summary"
fetch "http://$http/compliance/trend?since=2026-01-01T00:00:00Z" >/dev/null \
    || fail "RFC 3339 since= rejected"

# Inject the regression: Discord traffic fails every type check, so
# the same label now breaches the floor and the exec sink must fire
# exactly once.
"$dir/rtclive" replay -pcap "$badpcap" -to "$addr" -speed 0 >/dev/null
i=0
until [ "$(fire_lines fire)" = "1" ]; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "exec-sink alert did not fire on the regression"
    sleep 0.1
done

# A persisting regression is suppressed, not re-fired: replay more
# regressed traffic, wait for its trend points, and assert the sink
# still saw exactly one firing.
points=$(grep -c . "$dir/trend.jsonl")
"$dir/rtclive" replay -pcap "$badpcap" -to "$addr" -speed 0 >/dev/null
i=0
until [ "$(grep -c . "$dir/trend.jsonl")" -gt "$points" ]; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point for the second regression replay"
    sleep 0.1
done
[ "$(fire_lines fire)" = "1" ] || fail "persistent regression re-fired the alert"

# The firing episode is visible on the HTTP surfaces.
fetch "http://$http/compliance/alerts" | grep -q '"firing": 1' \
    || fail "/compliance/alerts does not report the firing episode"
fetch "http://$http/healthz" | grep -q '"status": "ok"' \
    || fail "/healthz is not ok"
fetch "http://$http/metrics?format=prom" | grep -q '^rtcc_alerts_fired_total 1$' \
    || fail "prom exposition missing rtcc_alerts_fired_total 1"

# SIGHUP with an unchanged label: the reload must swap the rules in
# place and keep the firing/debounce state — more regressed traffic
# afterwards must not re-fire.
write_config smoke-a
kill -HUP "$pid"
i=0
until grep -q "daemon: reloaded config from" "$dir/daemon.log"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not confirm the SIGHUP reload"
    sleep 0.1
done
fetch "http://$http/compliance/alerts" | grep -q '"firing": 1' \
    || fail "firing state lost across the SIGHUP reload"
points=$(grep -c . "$dir/trend.jsonl")
"$dir/rtclive" replay -pcap "$badpcap" -to "$addr" -speed 0 >/dev/null
i=0
until [ "$(grep -c . "$dir/trend.jsonl")" -gt "$points" ]; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point after the reload"
    sleep 0.1
done
[ "$(fire_lines fire)" = "1" ] || fail "alert re-fired after the SIGHUP reload"
fetch "http://$http/healthz" | grep -q '"reloads": 1' \
    || fail "/healthz does not count the reload"

# Second SIGHUP reload with a changed label; the daemon must confirm
# the reload and keep collecting on the same socket.
write_config smoke-b
kill -HUP "$pid"
i=0
until [ "$(grep -c "daemon: reloaded config from" "$dir/daemon.log")" -ge 2 ]; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not confirm the second SIGHUP reload"
    sleep 0.1
done

"$dir/rtclive" replay -pcap "$pcap" -to "$addr" -speed 0 >/dev/null
i=0
until fetch "http://$http/compliance/trend?app=smoke-b" 2>/dev/null | grep -q '"app": "smoke-b"'; do
    i=$((i + 1))
    [ "$i" -lt 150 ] || fail "no trend point under the reloaded label smoke-b"
    sleep 0.1
done

# SIGTERM must drain cleanly: exit 0 and a conservation line.
kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
grep -q "daemon: drained," "$dir/daemon.log" || fail "daemon did not log the drain accounting"
[ -s "$dir/trend.jsonl" ] || fail "trend file is empty"

echo "daemon-smoke: startup, trend+qoe scrape, regression alert (exactly once, reload-stable), SIGHUP reloads, and SIGTERM drain OK"
