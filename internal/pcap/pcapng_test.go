package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestNGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf, LinkTypeRaw)
	want := []Packet{
		{Timestamp: time.Unix(1700000000, 123456000).UTC(), Data: []byte{0x45, 1, 2}},
		{Timestamp: time.Unix(1700000001, 0).UTC(), Data: bytes.Repeat([]byte{9}, 100)},
		{Timestamp: time.Unix(1700000002, 999999000).UTC(), Data: []byte{}},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if !IsPCAPNG(buf.Bytes()) {
		t.Fatal("IsPCAPNG rejected written stream")
	}
	r, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, lt, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if lt != LinkTypeRaw {
		t.Errorf("link type = %v", lt)
	}
	if len(got) != len(want) {
		t.Fatalf("packets = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Timestamp.Equal(want[i].Timestamp) {
			t.Errorf("pkt %d ts = %v, want %v", i, got[i].Timestamp, want[i].Timestamp)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("pkt %d data mismatch", i)
		}
	}
}

func TestNGRejectsClassicAndJunk(t *testing.T) {
	var classic bytes.Buffer
	cw := NewWriter(&classic, LinkTypeRaw)
	if err := cw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNGReader(bytes.NewReader(classic.Bytes())); !errors.Is(err, ErrNotPCAPNG) {
		t.Errorf("classic pcap: err = %v", err)
	}
	if _, err := NewNGReader(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("junk accepted")
	}
	if IsPCAPNG(classic.Bytes()) {
		t.Error("IsPCAPNG accepted classic pcap")
	}
}

// buildBEBlock assembles a pcapng block big-endian.
func buildBEBlock(typ uint32, body []byte) []byte {
	total := uint32(12 + len(body))
	out := make([]byte, total)
	binary.BigEndian.PutUint32(out[0:4], typ)
	binary.BigEndian.PutUint32(out[4:8], total)
	copy(out[8:], body)
	binary.BigEndian.PutUint32(out[total-4:], total)
	return out
}

// A big-endian section with a nanosecond-resolution interface must
// parse identically.
func TestNGBigEndianNanosecond(t *testing.T) {
	var buf bytes.Buffer
	shb := make([]byte, 16)
	binary.BigEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.BigEndian.PutUint16(shb[4:6], 1)
	binary.BigEndian.PutUint64(shb[8:16], ^uint64(0))
	buf.Write(buildBEBlock(blockSHB, shb))

	// IDB with if_tsresol = 9 (nanoseconds).
	idb := make([]byte, 8+8)
	binary.BigEndian.PutUint16(idb[0:2], uint16(LinkTypeEthernet))
	binary.BigEndian.PutUint32(idb[4:8], 65535)
	binary.BigEndian.PutUint16(idb[8:10], 9) // if_tsresol
	binary.BigEndian.PutUint16(idb[10:12], 1)
	idb[12] = 9 // 10^-9
	buf.Write(buildBEBlock(blockIDB, idb))

	// EPB at ts = 1.5e9 ns units => 1.5 s.
	data := []byte{0xde, 0xad}
	epb := make([]byte, 20+4)
	tsRaw := uint64(1_500_000_000)
	binary.BigEndian.PutUint32(epb[4:8], uint32(tsRaw>>32))
	binary.BigEndian.PutUint32(epb[8:12], uint32(tsRaw))
	binary.BigEndian.PutUint32(epb[12:16], uint32(len(data)))
	binary.BigEndian.PutUint32(epb[16:20], 9000)
	copy(epb[20:], data)
	buf.Write(buildBEBlock(blockEPB, epb))

	r, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, lt, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if lt != LinkTypeEthernet {
		t.Errorf("link type = %v", lt)
	}
	want := time.Unix(1, 500000000).UTC()
	if !p.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", p.Timestamp, want)
	}
	if p.OrigLen != 9000 || !bytes.Equal(p.Data, data) {
		t.Errorf("packet = %+v", p)
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("end = %v", err)
	}
}

// Unknown block types (name resolution, stats) are skipped.
func TestNGSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// Insert a Name Resolution Block (type 4) by hand, then a packet.
	nrb := make([]byte, 4)
	total := uint32(12 + len(nrb))
	blk := make([]byte, total)
	binary.LittleEndian.PutUint32(blk[0:4], 4)
	binary.LittleEndian.PutUint32(blk[4:8], total)
	binary.LittleEndian.PutUint32(blk[total-4:], total)
	buf.Write(blk)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(2, 0), Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}

	r, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pkts, _, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Errorf("packets = %d, want 2", len(pkts))
	}
}

// A truncated EPB errors cleanly.
func TestNGTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: bytes.Repeat([]byte{7}, 40)}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	r, err := NewNGReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadAll(); err == nil {
		t.Error("truncated stream read cleanly")
	}
}

// EPB referencing an interface that was never described errors.
func TestNGUnknownInterface(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The EPB is the last block; its interface id field is at body
	// offset 0 (block offset 8 from the block start). Find it: SHB(28) +
	// IDB(20) then EPB.
	epbStart := 28 + 20
	binary.LittleEndian.PutUint32(raw[epbStart+8:], 7)
	r, err := NewNGReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err == nil {
		t.Error("unknown interface accepted")
	}
}

func TestPow10(t *testing.T) {
	if pow10(0) != 1 || pow10(6) != 1_000_000 || pow10(9) != 1_000_000_000 {
		t.Error("pow10 wrong")
	}
}
