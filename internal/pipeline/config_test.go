package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeConfig(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFileJSON(t *testing.T) {
	path := writeConfig(t, "p.json", `{
  "source": {"kind": "pcap", "path": "call.pcap", "label": "Zoom"},
  "exec": {"shards": 4, "policy": "drop"},
  "analysis": {"max_offset": 100, "findings": false},
  "daemon": {"epoch": "30s"}
}`)
	var cfg Config
	if err := LoadFile(&cfg, path); err != nil {
		t.Fatal(err)
	}
	if cfg.Source.Kind != SourcePCAP || cfg.Source.Path != "call.pcap" || cfg.Source.Label != "Zoom" {
		t.Fatalf("source = %+v", cfg.Source)
	}
	if cfg.Exec.Shards != 4 || cfg.Exec.Policy != "drop" {
		t.Fatalf("exec = %+v", cfg.Exec)
	}
	if cfg.Analysis.MaxOffset != 100 || cfg.Analysis.FindingsOn() {
		t.Fatalf("analysis = %+v", cfg.Analysis)
	}
	if cfg.Daemon.Epoch.Std() != 30*time.Second {
		t.Fatalf("daemon.epoch = %v", cfg.Daemon.Epoch.Std())
	}
}

func TestLoadFileYAML(t *testing.T) {
	path := writeConfig(t, "p.yaml", `
# daemon config
source:
  kind: live
  listen: "127.0.0.1:0"
  idle: 500ms          # inline comment
  label: mirror
exec:
  shards: 2
  policy: drop
sinks:
  metrics_addr: 127.0.0.1:0
daemon:
  epoch: 2s
  trend_file: trend.jsonl
  trend_keep: 16
`)
	var cfg Config
	if err := LoadFile(&cfg, path); err != nil {
		t.Fatal(err)
	}
	if cfg.Source.Kind != SourceLive || cfg.Source.Listen != "127.0.0.1:0" || cfg.Source.Label != "mirror" {
		t.Fatalf("source = %+v", cfg.Source)
	}
	if cfg.Source.Idle.Std() != 500*time.Millisecond {
		t.Fatalf("idle = %v", cfg.Source.Idle.Std())
	}
	if cfg.Exec.Shards != 2 || cfg.Exec.Policy != "drop" {
		t.Fatalf("exec = %+v", cfg.Exec)
	}
	if cfg.Daemon.Epoch.Std() != 2*time.Second || cfg.Daemon.TrendFile != "trend.jsonl" || cfg.Daemon.TrendKeep != 16 {
		t.Fatalf("daemon = %+v", cfg.Daemon)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLoadFileOverridesOnlyPresentKeys(t *testing.T) {
	// The precedence contract: keys absent from the file keep whatever
	// the flags layered in first.
	path := writeConfig(t, "p.yaml", `
exec:
  shards: 8
`)
	var cfg Config
	cfg.Source.Kind = SourcePCAP
	cfg.Source.Path = "from-flags.pcap"
	cfg.Exec.Workers = 3
	cfg.Exec.Shards = 1
	if err := LoadFile(&cfg, path); err != nil {
		t.Fatal(err)
	}
	if cfg.Exec.Shards != 8 {
		t.Fatalf("file key should override: shards = %d", cfg.Exec.Shards)
	}
	if cfg.Exec.Workers != 3 || cfg.Source.Path != "from-flags.pcap" {
		t.Fatalf("absent keys must not reset: %+v", cfg)
	}
}

func TestLoadFileRejectsUnknownKeys(t *testing.T) {
	for _, tc := range []struct{ name, content string }{
		{"p.json", `{"source": {"kind": "pcap", "path": "x", "typo_key": 1}}`},
		{"p.yaml", "source:\n  kind: pcap\n  path: x\nexcec:\n  shards: 2\n"},
	} {
		var cfg Config
		err := LoadFile(&cfg, writeConfig(t, tc.name, tc.content))
		if err == nil || !strings.Contains(err.Error(), "unknown field") {
			t.Fatalf("%s: want unknown-field error, got %v", tc.name, err)
		}
	}
}

func TestYAMLRejects(t *testing.T) {
	for _, tc := range []struct{ name, content, wantErr string }{
		{"tabs", "source:\n\tkind: pcap\n", "tabs"},
		{"sequence", "apps:\n  - zoom\n", "sequences"},
		{"duplicate", "exec:\n  shards: 1\n  shards: 2\n", "duplicate"},
		{"dedent", "source:\n    kind: live\n   listen: x\n", "indentation"},
	} {
		_, err := parseYAML([]byte(tc.content))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: want %q error, got %v", tc.name, tc.wantErr, err)
		}
	}
}

func TestDurationForms(t *testing.T) {
	var cfg Config
	path := writeConfig(t, "p.json", `{"daemon": {"epoch": 1500000000}}`)
	if err := LoadFile(&cfg, path); err != nil {
		t.Fatal(err)
	}
	if cfg.Daemon.Epoch.Std() != 1500*time.Millisecond {
		t.Fatalf("numeric duration = %v", cfg.Daemon.Epoch.Std())
	}
	var cfg2 Config
	path2 := writeConfig(t, "p2.json", `{"daemon": {"epoch": "2m30s"}}`)
	if err := LoadFile(&cfg2, path2); err != nil {
		t.Fatal(err)
	}
	if cfg2.Daemon.Epoch.Std() != 2*time.Minute+30*time.Second {
		t.Fatalf("string duration = %v", cfg2.Daemon.Epoch.Std())
	}
}

func TestValidateRejectsTraceWithShards(t *testing.T) {
	cfg := Config{}
	cfg.Source.Kind = SourcePCAP
	cfg.Source.Path = "x.pcap"
	cfg.Exec.Shards = 4
	cfg.Sinks.TraceOut = "trace.jsonl"
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "exec.shards") {
		t.Fatalf("want shards/trace rejection, got %v", err)
	}
	cfg.Sinks.TraceOut = ""
	cfg.Sinks.Explain = "Zoom"
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "explain") {
		t.Fatalf("want shards/explain rejection, got %v", err)
	}
	cfg.Exec.Shards = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("serial trace must validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate  func(*Config)
		wantErr string
	}{
		{func(c *Config) {}, "source.kind is required"},
		{func(c *Config) { c.Source.Kind = "udp" }, "unknown source.kind"},
		{func(c *Config) { c.Source.Kind = SourcePCAP }, "requires source.path"},
		{func(c *Config) { c.Source.Kind = SourceLive }, "requires source.listen"},
		{func(c *Config) {
			c.Source.Kind = SourceAppsim
			c.Source.App = "NoSuchApp"
		}, "unknown app"},
		{func(c *Config) {
			c.Source.Kind = SourceAppsim
			c.Source.App = "Zoom"
			c.Source.Network = "dialup"
		}, "unknown network"},
		{func(c *Config) {
			c.Source.Kind = SourcePCAP
			c.Source.Path = "x"
			c.Exec.Policy = "spill"
		}, "unknown exec.policy"},
		{func(c *Config) {
			c.Source.Kind = SourcePCAP
			c.Source.Path = "x"
			c.Sinks.Report = "xml"
		}, "unknown sinks.report"},
		{func(c *Config) {
			c.Source.Kind = SourcePCAP
			c.Source.Path = "x"
			c.Source.Start = "yesterday"
		}, "bad source.start"},
	}
	for i, tc := range cases {
		var cfg Config
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("case %d: want %q, got %v", i, tc.wantErr, err)
		}
	}
}

func TestEffectiveLabel(t *testing.T) {
	s := Source{Kind: SourcePCAP, Path: "/tmp/traces/000_zoom.pcap"}
	if got := s.EffectiveLabel(); got != "000_zoom.pcap" {
		t.Fatalf("pcap label = %q", got)
	}
	s = Source{Kind: SourceLive, Listen: ":0"}
	if got := s.EffectiveLabel(); got != "live" {
		t.Fatalf("live label = %q", got)
	}
	s = Source{Kind: SourceAppsim, App: "Discord"}
	if got := s.EffectiveLabel(); got != "Discord" {
		t.Fatalf("appsim label = %q", got)
	}
	s.Label = "override"
	if got := s.EffectiveLabel(); got != "override" {
		t.Fatalf("explicit label = %q", got)
	}
}

func TestLoadFileAlertsYAML(t *testing.T) {
	path := writeConfig(t, "p.yaml", `
source:
  kind: live
  listen: "127.0.0.1:0"
analysis:
  qoe: true
alerts:
  retries: 2
  backoff: 50ms
  rules:
    floor:
      type: compliance_drop
      min: 0.5
      for_points: 2
      clear_points: 3
    regress:
      type: compliance_drop
      app: Zoom
      drop: 0.3
    fps:
      type: qoe_floor
      field: frame_rate
      min: 15
  sinks:
    webhook:
      url: "http://127.0.0.1:9/hook"
      timeout: 2s
    exec:
      command: "logger alert"
`)
	var cfg Config
	if err := LoadFile(&cfg, path); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !cfg.Analysis.QoE {
		t.Fatal("analysis.qoe not decoded")
	}
	if cfg.Alerts.Retries != 2 || cfg.Alerts.Backoff.Std() != 50*time.Millisecond {
		t.Fatalf("alerts = %+v", cfg.Alerts)
	}
	rules := cfg.Alerts.RuleList()
	if len(rules) != 3 || rules[0].Name != "floor" || rules[1].Name != "fps" || rules[2].Name != "regress" {
		t.Fatalf("rules = %+v", rules)
	}
	floor := rules[0]
	if floor.Min == nil || *floor.Min != 0.5 || floor.ForPoints != 2 || floor.ClearPoints != 3 {
		t.Fatalf("floor rule = %+v", floor)
	}
	regress := rules[2]
	if regress.App != "Zoom" || regress.Drop == nil || *regress.Drop != 0.3 {
		t.Fatalf("regress rule = %+v", regress)
	}
	fps := rules[1]
	if fps.Field != "frame_rate" || fps.Min == nil || *fps.Min != 15 {
		t.Fatalf("fps rule = %+v", fps)
	}
	if cfg.Alerts.Sinks.Webhook.URL != "http://127.0.0.1:9/hook" || cfg.Alerts.Sinks.Webhook.Timeout.Std() != 2*time.Second {
		t.Fatalf("webhook sink = %+v", cfg.Alerts.Sinks.Webhook)
	}
	sinks := cfg.Alerts.BuildSinks(os.Stderr)
	names := make([]string, len(sinks))
	for i, s := range sinks {
		names[i] = s.Name()
	}
	if strings.Join(names, ",") != "log,webhook,exec" {
		t.Fatalf("sinks = %v", names)
	}
}

func TestValidateAlertErrors(t *testing.T) {
	base := "source:\n  kind: live\n  listen: \"127.0.0.1:0\"\n"
	for _, tc := range []struct{ name, content, wantErr string }{
		{
			"bad-rule",
			base + "alerts:\n  rules:\n    r:\n      type: compliance_drop\n",
			"alerts.rules.r",
		},
		{
			"qoe-rule-without-qoe",
			base + "alerts:\n  rules:\n    r:\n      type: qoe_floor\n      field: frame_rate\n      min: 15\n",
			"analysis.qoe",
		},
		{
			"negative-retries",
			base + "alerts:\n  retries: -1\n",
			"retries",
		},
	} {
		var cfg Config
		if err := LoadFile(&cfg, writeConfig(t, tc.name+".yaml", tc.content)); err != nil {
			t.Fatalf("%s: load: %v", tc.name, err)
		}
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: want %q error, got %v", tc.name, tc.wantErr, err)
		}
	}
}
