package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng support: the next-generation capture format Wireshark writes
// by default. The reader handles Section Header Blocks in either byte
// order, multiple Interface Description Blocks with per-interface
// timestamp resolution, Enhanced and Simple Packet Blocks, and skips
// every other block type. The writer emits a minimal single-interface
// section with microsecond resolution.

// pcapng block type codes.
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockSPB = 0x00000003
	blockEPB = 0x00000006
)

// byteOrderMagic is the SHB endianness marker.
const byteOrderMagic = 0x1A2B3C4D

// ErrNotPCAPNG is returned when the stream does not start with a
// Section Header Block.
var ErrNotPCAPNG = errors.New("pcap: not a pcapng stream")

// ngInterface carries per-interface decoding state.
type ngInterface struct {
	linkType LinkType
	// tsUnitsPerSec converts raw timestamps to time (default 1e6).
	tsUnitsPerSec uint64
}

// NGReader parses a pcapng stream.
type NGReader struct {
	r          io.Reader
	bo         binary.ByteOrder
	interfaces []ngInterface
}

// NewNGReader parses the leading Section Header Block and returns a
// reader for the packet blocks that follow.
func NewNGReader(r io.Reader) (*NGReader, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("pcap: read pcapng header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != blockSHB {
		return nil, ErrNotPCAPNG
	}
	ng := &NGReader{r: r}
	if err := ng.readSHBBody(head[:]); err != nil {
		return nil, err
	}
	return ng, nil
}

// readSHBBody consumes the remainder of an SHB whose first 8 bytes
// (type + length) are in head, determining byte order.
func (ng *NGReader) readSHBBody(head []byte) error {
	var bom [4]byte
	if _, err := io.ReadFull(ng.r, bom[:]); err != nil {
		return fmt.Errorf("pcap: read byte-order magic: %w", err)
	}
	switch {
	case binary.LittleEndian.Uint32(bom[:]) == byteOrderMagic:
		ng.bo = binary.LittleEndian
	case binary.BigEndian.Uint32(bom[:]) == byteOrderMagic:
		ng.bo = binary.BigEndian
	default:
		return fmt.Errorf("%w: byte-order magic %x", ErrNotPCAPNG, bom)
	}
	total := ng.bo.Uint32(head[4:8])
	if total < 28 || total%4 != 0 {
		return fmt.Errorf("pcap: SHB length %d invalid", total)
	}
	// Remaining SHB: version(4) + section length(8) + options + trailing
	// length(4). We already consumed 12 of total.
	rest := make([]byte, total-12)
	if _, err := io.ReadFull(ng.r, rest); err != nil {
		return fmt.Errorf("pcap: read SHB: %w", err)
	}
	major := ng.bo.Uint16(rest[0:2])
	if major != 1 {
		return fmt.Errorf("pcap: pcapng major version %d unsupported", major)
	}
	// New section: interface list resets.
	ng.interfaces = ng.interfaces[:0]
	return nil
}

// readBlockInto reads one full block into *buf (grown as needed),
// returning the block type and its body (without type/length framing),
// aliasing *buf. SHBs are consumed in place and return a nil body.
func (ng *NGReader) readBlockInto(buf *[]byte) (uint32, []byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(ng.r, head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: read block header: %w", err)
	}
	typ := ng.bo.Uint32(head[0:4])
	if typ == blockSHB {
		// New section: its body determines (possibly new) byte order.
		if err := ng.readSHBBody(head[:]); err != nil {
			return 0, nil, err
		}
		return blockSHB, nil, nil
	}
	total := ng.bo.Uint32(head[4:8])
	if total < 12 || total%4 != 0 {
		return 0, nil, fmt.Errorf("pcap: block length %d invalid", total)
	}
	need := int(total - 12)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	body := (*buf)[:need]
	if _, err := io.ReadFull(ng.r, body); err != nil {
		return 0, nil, fmt.Errorf("pcap: read block body: %w", err)
	}
	var trail [4]byte
	if _, err := io.ReadFull(ng.r, trail[:]); err != nil {
		return 0, nil, fmt.Errorf("pcap: read block trailer: %w", err)
	}
	if ng.bo.Uint32(trail[:]) != total {
		return 0, nil, fmt.Errorf("pcap: block trailer length mismatch")
	}
	return typ, body, nil
}

// parseIDB registers an interface from an IDB body.
func (ng *NGReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcap: IDB too short")
	}
	iface := ngInterface{
		linkType:      LinkType(ng.bo.Uint16(body[0:2])),
		tsUnitsPerSec: 1_000_000,
	}
	// Options start at offset 8 (linktype 2 + reserved 2 + snaplen 4).
	opts := body[8:]
	for len(opts) >= 4 {
		code := ng.bo.Uint16(opts[0:2])
		olen := int(ng.bo.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if len(opts) < 4+padded {
			break
		}
		val := opts[4 : 4+olen]
		if code == 0 { // opt_endofopt
			break
		}
		if code == 9 && olen >= 1 { // if_tsresol
			v := val[0]
			if v&0x80 != 0 {
				iface.tsUnitsPerSec = 1 << (v & 0x7f)
			} else {
				iface.tsUnitsPerSec = pow10(v)
			}
			if iface.tsUnitsPerSec == 0 {
				iface.tsUnitsPerSec = 1_000_000
			}
		}
		opts = opts[4+padded:]
	}
	ng.interfaces = append(ng.interfaces, iface)
	return nil
}

func pow10(n uint8) uint64 {
	v := uint64(1)
	for i := uint8(0); i < n && i < 19; i++ {
		v *= 10
	}
	return v
}

// LinkType reports the first interface's link type (the common
// single-interface case); LinkTypeRaw if none seen yet.
func (ng *NGReader) LinkType() LinkType {
	if len(ng.interfaces) == 0 {
		return LinkTypeRaw
	}
	return ng.interfaces[0].linkType
}

// ReadPacket returns the next packet, skipping non-packet blocks, or
// io.EOF at end of stream. Each call allocates fresh packet storage.
func (ng *NGReader) ReadPacket() (Packet, LinkType, error) {
	var buf []byte
	return ng.ReadPacketInto(&buf)
}

// ReadPacketInto is ReadPacket with caller-managed storage: blocks are
// read into *buf (grown as needed and written back) and the returned
// Packet's Data aliases it, valid until the next read. Reusing one
// buffer across the whole stream is what keeps the streaming analysis
// path allocation-free per record.
func (ng *NGReader) ReadPacketInto(buf *[]byte) (Packet, LinkType, error) {
	for {
		typ, body, err := ng.readBlockInto(buf)
		if err != nil {
			return Packet{}, 0, err
		}
		switch typ {
		case blockSHB:
			continue
		case blockIDB:
			if err := ng.parseIDB(body); err != nil {
				return Packet{}, 0, err
			}
		case blockEPB:
			if len(body) < 20 {
				return Packet{}, 0, fmt.Errorf("pcap: EPB too short")
			}
			ifID := ng.bo.Uint32(body[0:4])
			if int(ifID) >= len(ng.interfaces) {
				return Packet{}, 0, fmt.Errorf("pcap: EPB references unknown interface %d", ifID)
			}
			iface := ng.interfaces[ifID]
			tsRaw := uint64(ng.bo.Uint32(body[4:8]))<<32 | uint64(ng.bo.Uint32(body[8:12]))
			capLen := ng.bo.Uint32(body[12:16])
			origLen := ng.bo.Uint32(body[16:20])
			if uint64(len(body)) < 20+uint64(capLen) {
				return Packet{}, 0, fmt.Errorf("pcap: EPB capture length %d exceeds block", capLen)
			}
			units := iface.tsUnitsPerSec
			secs := tsRaw / units
			frac := tsRaw % units
			nanos := frac * uint64(time.Second) / units
			return Packet{
				Timestamp: time.Unix(int64(secs), int64(nanos)).UTC(),
				Data:      body[20 : 20+capLen],
				OrigLen:   int(origLen),
			}, iface.linkType, nil
		case blockSPB:
			if len(ng.interfaces) == 0 {
				return Packet{}, 0, fmt.Errorf("pcap: SPB before any IDB")
			}
			if len(body) < 4 {
				return Packet{}, 0, fmt.Errorf("pcap: SPB too short")
			}
			origLen := ng.bo.Uint32(body[0:4])
			capLen := uint32(len(body) - 4)
			if origLen < capLen {
				capLen = origLen
			}
			return Packet{Data: body[4 : 4+capLen], OrigLen: int(origLen)}, ng.interfaces[0].linkType, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

// ReadAll reads every remaining packet; the returned link type is the
// first interface's.
func (ng *NGReader) ReadAll() ([]Packet, LinkType, error) {
	var pkts []Packet
	lt := LinkTypeRaw
	first := true
	for {
		p, plt, err := ng.ReadPacket()
		if errors.Is(err, io.EOF) {
			return pkts, lt, nil
		}
		if err != nil {
			return pkts, lt, err
		}
		if first {
			lt = plt
			first = false
		}
		pkts = append(pkts, p)
	}
}

// NGWriter emits a minimal single-interface pcapng stream with
// microsecond timestamps.
type NGWriter struct {
	w        io.Writer
	linkType LinkType
	started  bool
}

// NewNGWriter returns a pcapng writer for one interface.
func NewNGWriter(w io.Writer, linkType LinkType) *NGWriter {
	return &NGWriter{w: w, linkType: linkType}
}

func (w *NGWriter) writeBlock(typ uint32, body []byte) error {
	total := uint32(12 + len(body))
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:4], typ)
	binary.LittleEndian.PutUint32(buf[4:8], total)
	copy(buf[8:], body)
	binary.LittleEndian.PutUint32(buf[total-4:], total)
	_, err := w.w.Write(buf)
	return err
}

func (w *NGWriter) start() error {
	if w.started {
		return nil
	}
	// SHB: bom + version 1.0 + section length -1.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	binary.LittleEndian.PutUint64(shb[8:16], ^uint64(0))
	if err := w.writeBlock(blockSHB, shb); err != nil {
		return err
	}
	// IDB: linktype + reserved + snaplen (no options: default µs).
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:2], uint16(w.linkType))
	binary.LittleEndian.PutUint32(idb[4:8], DefaultSnapLen)
	if err := w.writeBlock(blockIDB, idb); err != nil {
		return err
	}
	w.started = true
	return nil
}

// WritePacket appends one Enhanced Packet Block.
func (w *NGWriter) WritePacket(pkt Packet) error {
	if err := w.start(); err != nil {
		return err
	}
	padded := (len(pkt.Data) + 3) &^ 3
	body := make([]byte, 20+padded)
	ts := uint64(pkt.Timestamp.UnixMicro())
	binary.LittleEndian.PutUint32(body[4:8], uint32(ts>>32))
	binary.LittleEndian.PutUint32(body[8:12], uint32(ts))
	binary.LittleEndian.PutUint32(body[12:16], uint32(len(pkt.Data)))
	orig := pkt.OrigLen
	if orig < len(pkt.Data) {
		orig = len(pkt.Data)
	}
	binary.LittleEndian.PutUint32(body[16:20], uint32(orig))
	copy(body[20:], pkt.Data)
	return w.writeBlock(blockEPB, body)
}

// IsPCAPNG peeks at the first four bytes to distinguish pcapng from
// classic pcap.
func IsPCAPNG(head []byte) bool {
	return len(head) >= 4 && binary.LittleEndian.Uint32(head[0:4]) == blockSHB
}
