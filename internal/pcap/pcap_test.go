package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	want := []Packet{
		{Timestamp: time.Unix(1700000000, 123456000).UTC(), Data: []byte{0x45, 0x00, 0x01}},
		{Timestamp: time.Unix(1700000001, 999999000).UTC(), Data: []byte{}},
		{Timestamp: time.Unix(1700000002, 0).UTC(), Data: bytes.Repeat([]byte{0xab}, 1500)},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("LinkType = %v, want RAW", r.LinkType())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Timestamp.Equal(want[i].Timestamp) {
			t.Errorf("pkt %d ts = %v, want %v", i, got[i].Timestamp, want[i].Timestamp)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("pkt %d data mismatch (%d vs %d bytes)", i, len(got[i].Data), len(want[i].Data))
		}
		if got[i].OrigLen != len(want[i].Data) {
			t.Errorf("pkt %d origlen = %d, want %d", i, got[i].OrigLen, len(want[i].Data))
		}
	}
}

func TestEmptyFileHasHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil { // idempotent
		t.Fatal(err)
	}
	if buf.Len() != fileHeaderLen {
		t.Fatalf("header-only file is %d bytes, want %d", buf.Len(), fileHeaderLen)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Fatalf("ReadPacket on empty file = %v, want EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, fileHeaderLen)
	if _, err := NewReader(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("want error for truncated header")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("want error for truncated record data")
	}
}

// A big-endian, nanosecond-resolution file (e.g. written by another tool)
// must parse identically.
func TestBigEndianNanosecondFile(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, fileHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:], MagicNanoseconds)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], uint32(LinkTypeEthernet))
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(rec[0:], 1600000000)
	binary.BigEndian.PutUint32(rec[4:], 123456789) // nanoseconds
	binary.BigEndian.PutUint32(rec[8:], 2)
	binary.BigEndian.PutUint32(rec[12:], 9000) // truncated capture
	buf.Write(rec)
	buf.Write([]byte{0xde, 0xad})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet || r.SnapLen() != 65535 {
		t.Errorf("header parse: linktype=%v snaplen=%d", r.LinkType(), r.SnapLen())
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	wantTS := time.Unix(1600000000, 123456789).UTC()
	if !p.Timestamp.Equal(wantTS) {
		t.Errorf("ts = %v, want %v", p.Timestamp, wantTS)
	}
	if p.OrigLen != 9000 || len(p.Data) != 2 {
		t.Errorf("lens: orig=%d cap=%d", p.OrigLen, len(p.Data))
	}
}

func TestLinkTypeString(t *testing.T) {
	cases := map[LinkType]string{
		LinkTypeNull:     "NULL",
		LinkTypeEthernet: "EN10MB",
		LinkTypeRaw:      "RAW",
		LinkType(42):     "LINKTYPE(42)",
	}
	for lt, want := range cases {
		if got := lt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint32(lt), got, want)
		}
	}
}

// Property: any sequence of packets with microsecond-truncated timestamps
// survives a write/read round trip byte-for-byte.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeRaw)
		n := len(payloads)
		if len(secs) < n {
			n = len(secs)
		}
		in := make([]Packet, 0, n)
		for i := 0; i < n; i++ {
			p := Packet{
				Timestamp: time.Unix(int64(secs[i]), int64(i%1000)*1000).UTC(),
				Data:      payloads[i],
			}
			if err := w.WritePacket(p); err != nil {
				return false
			}
			in = append(in, p)
		}
		if err := w.WriteHeader(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		out, err := r.ReadAll()
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !out[i].Timestamp.Equal(in[i].Timestamp) || !bytes.Equal(out[i].Data, in[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
