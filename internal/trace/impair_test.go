package trace

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/natsim"
)

func impairCfg(profile natsim.Profile, seed uint64) CaptureConfig {
	return CaptureConfig{
		App:          appsim.Zoom,
		Network:      appsim.WiFiRelay,
		Seed:         seed,
		Start:        time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC),
		CallDuration: 2 * time.Second,
		PrePost:      3 * time.Second,
		MediaRate:    10,
		Background:   true,
	}
}

// TestImpairedCaptureReproducible pins the acceptance criterion that
// the same seed yields a byte-identical impaired trace: the full pcap
// byte stream, not just event counts.
func TestImpairedCaptureReproducible(t *testing.T) {
	for _, p := range natsim.StandardProfiles() {
		cfg := impairCfg(p, 17)
		cfg.Impair = p
		var bufs [2]bytes.Buffer
		for i := range bufs {
			cap, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if err := cap.WritePCAP(&bufs[i]); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
		}
		if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
			t.Fatalf("%s: same seed produced different pcap bytes", p.Name)
		}
	}
}

// TestImpairSparesBackground checks the impairment stage applies to
// the call traffic only: RTCEvents reflects post-impairment call
// volume, while total events still include the untouched background.
func TestImpairSparesBackground(t *testing.T) {
	clean := impairCfg(natsim.Profile{}, 23)
	cc, err := Generate(clean)
	if err != nil {
		t.Fatal(err)
	}
	lossy := clean
	lossy.Impair = natsim.Profile{Name: "heavy", Loss: 0.3}
	lc, err := Generate(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Impair.Dropped == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	if lc.RTCEvents != cc.RTCEvents-lc.Impair.Dropped {
		t.Fatalf("RTCEvents %d != clean %d - dropped %d", lc.RTCEvents, cc.RTCEvents, lc.Impair.Dropped)
	}
	background := len(cc.Events) - cc.RTCEvents
	if got := len(lc.Events) - lc.RTCEvents; got != background {
		t.Fatalf("background volume changed under impairment: %d != %d", got, background)
	}
}

// TestImpairCleanProfileIdentical checks the named clean profile is a
// true pass-through: its capture matches a config with no profile.
func TestImpairCleanProfileIdentical(t *testing.T) {
	base := impairCfg(natsim.Profile{}, 31)
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	withClean := base
	withClean.Impair, _ = natsim.ProfileByName("clean")
	b, err := Generate(withClean)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.WritePCAP(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePCAP(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("clean profile altered the capture")
	}
}

func TestMatrixForwardsImpairment(t *testing.T) {
	p, _ := natsim.ProfileByName("burst5")
	configs := Matrix(MatrixOptions{
		Runs:         1,
		CallDuration: time.Second,
		PrePost:      time.Second,
		Start:        time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC),
		BaseSeed:     1,
		Apps:         []appsim.App{appsim.Discord},
		Impair:       p,
		Burst:        true,
		BitrateVar:   0.4,
		FrameRate:    24,
	})
	if len(configs) == 0 {
		t.Fatal("empty matrix")
	}
	for _, c := range configs {
		if c.Impair.Name != "burst5" || !c.Burst || c.BitrateVar != 0.4 || c.FrameRate != 24 {
			t.Fatalf("matrix dropped impairment knobs: %+v", c)
		}
	}
}
