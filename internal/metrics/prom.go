package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters (sharded ones folded in)
// as counter families, gauges as gauge families, and histograms as
// histogram families with cumulative buckets, +Inf, _sum, and _count.
// Metric names get an rtcc_ prefix and are sanitized to the Prometheus
// charset; the canonical label set of each instrument (see Name) maps
// onto Prometheus labels. Output is sorted, so consecutive scrapes of
// an idle registry are byte-identical.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	pw := &promWriter{w: w}

	counters := make(map[string][]promSample)
	for name, v := range s.Counters {
		base, labels := splitName(name)
		counters[base] = append(counters[base], promSample{labels: labels, value: float64(v)})
	}
	pw.families(counters, "counter")

	gauges := make(map[string][]promSample)
	for name, v := range s.Gauges {
		base, labels := splitName(name)
		gauges[base] = append(gauges[base], promSample{labels: labels, value: float64(v)})
	}
	pw.families(gauges, "gauge")

	hists := make(map[string][]promHist)
	for name, h := range s.Histograms {
		base, labels := splitName(name)
		hists[base] = append(hists[base], promHist{labels: labels, snap: h})
	}
	pw.histFamilies(hists)
	return pw.err
}

type promSample struct {
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

type promHist struct {
	labels string
	snap   HistogramSnapshot
}

// promWriter accumulates the first write error so the exposition loop
// stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// families emits one # TYPE line per base name (sorted), then the
// family's samples in sorted label order.
func (pw *promWriter) families(fams map[string][]promSample, typ string) {
	for _, base := range sortedKeys(fams) {
		samples := fams[base]
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		pw.printf("# TYPE %s %s\n", promName(base), typ)
		for _, smp := range samples {
			pw.sample(promName(base), smp.labels, smp.value)
		}
	}
}

func (pw *promWriter) histFamilies(fams map[string][]promHist) {
	for _, base := range sortedKeys(fams) {
		hs := fams[base]
		sort.Slice(hs, func(i, j int) bool { return hs[i].labels < hs[j].labels })
		name := promName(base)
		pw.printf("# TYPE %s histogram\n", name)
		for _, h := range hs {
			// Snapshot buckets are per-bucket counts with the overflow
			// bucket last (bound `inf`); Prometheus wants cumulative
			// counts with le="+Inf".
			var cum uint64
			for _, b := range h.snap.Buckets {
				cum += b.Count
				le := strconv.FormatFloat(b.UpperSeconds, 'g', -1, 64)
				if b.UpperSeconds >= inf {
					le = "+Inf"
				}
				pw.sample(name+"_bucket", mergeLabels(h.labels, `le="`+le+`"`), float64(cum))
			}
			pw.sample(name+"_sum", h.labels, h.snap.SumSeconds)
			pw.sample(name+"_count", h.labels, float64(cum))
		}
	}
}

func (pw *promWriter) sample(name, labels string, v float64) {
	pw.printf("%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// splitName splits a canonical registry name ("base{k1=v1,k2=v2}" or
// bare "base") into the base and a rendered Prometheus label block.
// Label values are escaped per the exposition format. (Canonical names
// join labels with "," — a label value containing a comma would
// mis-split here, exactly as it would be ambiguous in the JSON
// snapshot; registry callers use short identifier-like values.)
func splitName(name string) (base, labels string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	base = name[:open]
	inner := name[open+1 : len(name)-1]
	if inner == "" {
		return base, ""
	}
	var parts []string
	for _, kv := range strings.Split(inner, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			// Not a canonical label block; treat the whole name as base.
			return name, ""
		}
		parts = append(parts, promLabelName(k)+`="`+promEscape(v)+`"`)
	}
	return base, "{" + strings.Join(parts, ",") + "}"
}

// mergeLabels appends extra (already rendered `k="v"`) into a rendered
// label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// promName sanitizes a base name into the Prometheus metric-name
// charset and applies the rtcc_ namespace prefix.
func promName(base string) string {
	return "rtcc_" + sanitize(base, true)
}

// promLabelName sanitizes a label name (no leading-digit allowance
// difference matters for our identifier-style names).
func promLabelName(k string) string {
	return sanitize(k, false)
}

func sanitize(s string, allowColon bool) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		case c == ':' && allowColon:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
