package layers

import (
	"encoding/binary"

	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// This file computes direction-invariant flow fingerprints: a 64-bit
// hash of a frame's transport 5-tuple that is identical for both
// directions of a conversation. The sharded ingest router keys shard
// selection on it, so both halves of a stream — and therefore all of a
// flow.Key's packets — land on the same single-writer analyzer shard.
//
// Two paths produce the fingerprint and must agree wherever both
// apply (fingerprint_test.go holds the differential property):
//
//   - FlowFingerprint reads addresses and ports at fixed offsets
//     straight out of the frame, touching only the header bytes the
//     5-tuple needs. It declines (ok=false) anything unusual — IPv4
//     options, non-UDP/TCP transports, truncation — rather than guess.
//   - FingerprintPacket derives the same hash from a fully decoded
//     Packet, serving as the fallback for frames the fast path
//     declined and as the reference the fast path is tested against.

// FNV-1a parameters, shared by both fingerprint paths.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashEndpoint folds one endpoint (network address bytes plus
// transport port) with FNV-1a. Hashing each endpoint separately and
// combining symmetrically is what makes the result direction-invariant.
func hashEndpoint(addr []byte, port uint16) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range addr {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	h ^= uint64(port >> 8)
	h *= fnvPrime64
	h ^= uint64(port & 0xff)
	h *= fnvPrime64
	return h
}

// combineFlow mixes the two endpoint hashes and the transport protocol
// into the final fingerprint. XOR makes the combination symmetric
// (direction-invariant); the splitmix64 finalizer spreads the result so
// `fp % shards` distributes evenly for any shard count.
func combineFlow(proto IPProtocol, a, b uint64) uint64 {
	h := a ^ b
	h ^= uint64(proto) * fnvPrime64
	h ^= h >> 30
	h *= 0xbf58476d1ce4e9b5
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// FlowFingerprint returns the direction-invariant 5-tuple fingerprint
// of a raw frame without building a Packet. ok is false when the frame
// needs the full decoder's judgment (IPv4 options, unsupported link or
// transport types, truncated headers); the caller then falls back to
// DecodeInto plus FingerprintPacket, which yields the identical hash
// for any frame both paths accept.
func FlowFingerprint(linkType pcap.LinkType, data []byte) (uint64, bool) {
	switch linkType {
	case pcap.LinkTypeEthernet:
		if len(data) < 14 {
			return 0, false
		}
		switch binary.BigEndian.Uint16(data[12:14]) {
		case EtherTypeIPv4:
			return fingerprintIPv4(data[14:])
		case EtherTypeIPv6:
			return fingerprintIPv6(data[14:])
		}
		return 0, false
	case pcap.LinkTypeRaw:
		if len(data) == 0 {
			return 0, false
		}
		switch data[0] >> 4 {
		case 4:
			return fingerprintIPv4(data)
		case 6:
			return fingerprintIPv6(data)
		}
		return 0, false
	}
	return 0, false
}

// transportNeed is the minimum transport header length the fast path
// requires per protocol: the full fixed header, matching what
// decodeTransport demands, so the fast path never fingerprints a frame
// whose ports the decoder would reject as truncated.
func transportNeed(proto IPProtocol) int {
	switch proto {
	case IPProtocolUDP:
		return 8
	case IPProtocolTCP:
		return 20
	}
	return -1
}

func fingerprintIPv4(ip []byte) (uint64, bool) {
	// Fixed 20-byte header only: IHL != 5 (options) goes to the full
	// decoder so both paths see identical offsets.
	if len(ip) < 20 || ip[0] != 0x45 {
		return 0, false
	}
	proto := IPProtocol(ip[9])
	need := transportNeed(proto)
	if need < 0 || len(ip) < 20+need {
		return 0, false
	}
	sp := binary.BigEndian.Uint16(ip[20:22])
	dp := binary.BigEndian.Uint16(ip[22:24])
	return combineFlow(proto, hashEndpoint(ip[12:16], sp), hashEndpoint(ip[16:20], dp)), true
}

func fingerprintIPv6(ip []byte) (uint64, bool) {
	// Fixed header with the transport directly behind it; extension
	// headers (never seen in this dataset, and rejected by the full
	// decoder too) fall back.
	if len(ip) < 40 || ip[0]>>4 != 6 {
		return 0, false
	}
	proto := IPProtocol(ip[6])
	need := transportNeed(proto)
	if need < 0 || len(ip) < 40+need {
		return 0, false
	}
	sp := binary.BigEndian.Uint16(ip[40:42])
	dp := binary.BigEndian.Uint16(ip[42:44])
	return combineFlow(proto, hashEndpoint(ip[8:24], sp), hashEndpoint(ip[24:40], dp)), true
}

// FingerprintPacket computes the flow fingerprint from a decoded
// Packet — the slow-path companion of FlowFingerprint and the
// reference it is differentially tested against. ok is false for
// packets without a transport layer.
func FingerprintPacket(p *Packet) (uint64, bool) {
	proto, srcPort, dstPort := p.Transport()
	if proto == 0 {
		return 0, false
	}
	var a, b uint64
	switch {
	case p.IPv4 != nil:
		src4, dst4 := p.IPv4.Src.As4(), p.IPv4.Dst.As4()
		a = hashEndpoint(src4[:], srcPort)
		b = hashEndpoint(dst4[:], dstPort)
	case p.IPv6 != nil:
		src16, dst16 := p.IPv6.Src.As16(), p.IPv6.Dst.As16()
		a = hashEndpoint(src16[:], srcPort)
		b = hashEndpoint(dst16[:], dstPort)
	default:
		return 0, false
	}
	return combineFlow(proto, a, b), true
}
