package buildinfo

import (
	"bytes"
	"runtime/debug"
	"strings"
	"testing"
)

// withBuildInfo swaps the ReadBuildInfo source for one test.
func withBuildInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func fakeInfo() *debug.BuildInfo {
	return &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abc123"},
			{Key: "vcs.time", Value: "2026-08-06T10:00:00Z"},
			{Key: "vcs.modified", Value: "false"},
		},
	}
}

func TestGet(t *testing.T) {
	withBuildInfo(t, fakeInfo(), true)
	got := Get()
	want := Info{Version: "v1.2.3", Revision: "abc123", Time: "2026-08-06T10:00:00Z", Go: "go1.24.0"}
	if got != want {
		t.Errorf("Get() = %+v, want %+v", got, want)
	}
}

func TestGetDirty(t *testing.T) {
	bi := fakeInfo()
	bi.Settings[2].Value = "true"
	withBuildInfo(t, bi, true)
	if got := Get().Revision; got != "abc123+dirty" {
		t.Errorf("dirty revision = %q, want abc123+dirty", got)
	}
}

func TestGetUnavailable(t *testing.T) {
	withBuildInfo(t, nil, false)
	if got := Get(); got != (Info{}) {
		t.Errorf("Get() without build info = %+v, want zero", got)
	}
	if s := (Info{}).String(); s != "unknown" {
		t.Errorf("zero Info String() = %q, want unknown", s)
	}
}

func TestStringAndMap(t *testing.T) {
	i := Info{Version: "v1.2.3", Revision: "abc123", Time: "2026-08-06T10:00:00Z", Go: "go1.24.0"}
	if got := i.String(); got != "v1.2.3 rev abc123 (2026-08-06T10:00:00Z) go1.24.0" {
		t.Errorf("String() = %q", got)
	}
	m := i.Map()
	for k, want := range map[string]string{"version": "v1.2.3", "revision": "abc123", "time": "2026-08-06T10:00:00Z", "go": "go1.24.0"} {
		if m[k] != want {
			t.Errorf("Map()[%q] = %q, want %q", k, m[k], want)
		}
	}
}

func TestPrint(t *testing.T) {
	withBuildInfo(t, fakeInfo(), true)
	var b bytes.Buffer
	Print(&b, "rtccheck")
	if got := b.String(); !strings.HasPrefix(got, "rtccheck v1.2.3") || !strings.HasSuffix(got, "\n") {
		t.Errorf("Print output = %q", got)
	}
}
