package rtcc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
)

func TestFacadeGenerateAnalyze(t *testing.T) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.WhatsApp, Network: rtcc.WiFiRelay, Seed: 3,
		Start: benchStart, CallDuration: 6 * time.Second,
		PrePost: 8 * time.Second, MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rtcc.Analyze(cap, rtcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := res.Stats.VolumeCompliance(); !ok || r <= 0 || r > 1 {
		t.Errorf("volume compliance = %v, %v", r, ok)
	}
	if len(res.Filter.RTC) == 0 {
		t.Error("no RTC streams survived")
	}
}

func TestFacadeAnalyzeFile(t *testing.T) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.Discord, Network: rtcc.Cellular, Seed: 4,
		Start: benchStart, CallDuration: 5 * time.Second,
		PrePost: 6 * time.Second, MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "call.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cap.WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := rtcc.AnalyzeFile(path, cap.CallStart, cap.CallEnd, rtcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Discord's RTCP must be non-compliant through the file path too.
	c, tot := res.Stats.TypeCompliance(rtcc.ProtoRTCP)
	if tot == 0 || c != 0 {
		t.Errorf("Discord RTCP from pcap = %d/%d, want 0/n", c, tot)
	}
}

func TestFacadeAnalyzePCAPDefaultsWindow(t *testing.T) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.Zoom, Network: rtcc.WiFiRelay, Seed: 5,
		Start: benchStart, CallDuration: 5 * time.Second,
		// No background and no pre/post: the capture span IS the call.
		PrePost: 0, MediaRate: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := rtcc.AnalyzePCAP(&buf, "zoom", time.Time{}, time.Time{}, rtcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Filter.RTC) == 0 {
		t.Error("default window dropped all streams")
	}
}

func TestFacadeRenderers(t *testing.T) {
	ma, err := rtcc.RunMatrix(rtcc.MatrixOptions{
		Runs: 1, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
		MediaRate: 10, Start: benchStart, BaseSeed: 77, Background: true,
		Apps: []rtcc.App{rtcc.Zoom, rtcc.Discord},
	}, rtcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"t1": rtcc.RenderTable1(ma.Table1),
		"t2": rtcc.RenderTable2(ma.Aggregate),
		"t3": rtcc.RenderTable3(ma.Aggregate),
		"f4": rtcc.RenderFigure4(ma.Aggregate),
		"f5": rtcc.RenderFigure5(ma.Aggregate),
	} {
		if len(out) < 50 {
			t.Errorf("%s renderer output too short", name)
		}
	}
}
