// Package compliance implements the paper's five-criterion compliance
// model (§4.2). Every message extracted by the DPI engine is checked,
// in order, against:
//
//  1. Message Type Definition — is the type defined in any published
//     revision of the protocol's specification?
//  2. Header Field Validity — do the remaining header fields conform?
//  3. Attribute Type Validity — is every TLV attribute (or header
//     extension, for RTP) a defined type?
//  4. Attribute Value Validity — do defined attributes carry values of
//     the right shape, in message types where they are allowed?
//  5. Syntax and Semantic Integrity — cross-field and cross-message
//     behaviour: transaction pairing, Allocate ping-pong patterns,
//     unbound ChannelData channels, SRTCP trailer structure, repeated
//     same-transaction requests without responses.
//
// Evaluation is strictly sequential: the first failed criterion
// classifies the message as non-compliant and later criteria are not
// evaluated (the paper's cascading-error rule).
package compliance

import (
	"fmt"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Criterion numbers the five checks.
type Criterion int

// The five criteria, in evaluation order.
const (
	CritNone        Criterion = 0 // compliant
	CritMessageType Criterion = 1
	CritHeader      Criterion = 2
	CritAttrType    Criterion = 3
	CritAttrValue   Criterion = 4
	CritSemantics   Criterion = 5
)

func (c Criterion) String() string {
	switch c {
	case CritNone:
		return "compliant"
	case CritMessageType:
		return "message type definition"
	case CritHeader:
		return "header field validity"
	case CritAttrType:
		return "attribute type validity"
	case CritAttrValue:
		return "attribute value validity"
	case CritSemantics:
		return "syntax and semantic integrity"
	}
	return fmt.Sprintf("criterion %d", int(c))
}

// Verdict is the compliance outcome for one message.
type Verdict struct {
	Compliant bool
	// Failed identifies the first criterion violated (CritNone when
	// compliant).
	Failed Criterion
	// Reason is a human-readable explanation of the violation.
	Reason string
}

func ok() Verdict { return Verdict{Compliant: true} }

func fail(c Criterion, format string, args ...any) Verdict {
	return Verdict{Failed: c, Reason: fmt.Sprintf(format, args...)}
}

// TypeKey identifies a message type for the message-type-based metric:
// the protocol family plus the label the paper's tables use (hex STUN
// type, RTP payload type number, RTCP packet type number, QUIC header
// kind, or "ChannelData").
type TypeKey struct {
	Protocol dpi.Protocol
	Label    string
}

func (k TypeKey) String() string { return k.Protocol.String() + " " + k.Label }

// Checked pairs one message with its verdict.
type Checked struct {
	Protocol dpi.Protocol
	Type     TypeKey
	Verdict  Verdict
	// Bytes is the message's encoded size, for volume accounting.
	Bytes int
	// Timestamp is the datagram capture time.
	Timestamp time.Time
}

// Checker holds call-scoped state shared across all streams of one
// analyzed capture: the set of RTP SSRCs observed, used to
// cross-validate RTCP sender SSRCs.
type Checker struct {
	rtpSSRCs map[uint32]bool
	metrics  *checkerMetrics
}

// NewChecker returns a checker for one call capture.
func NewChecker() *Checker {
	return &Checker{rtpSSRCs: make(map[uint32]bool)}
}

// checkerMetrics holds the per-criterion verdict counters, indexed by
// Criterion (fail[CritNone] stays nil).
type checkerMetrics struct {
	pass *metrics.Counter
	fail [CritSemantics + 1]*metrics.Counter
}

// critSlug maps a criterion to its metric label value.
func critSlug(c Criterion) string {
	switch c {
	case CritMessageType:
		return "message_type"
	case CritHeader:
		return "header"
	case CritAttrType:
		return "attr_type"
	case CritAttrValue:
		return "attr_value"
	case CritSemantics:
		return "semantics"
	}
	return "unknown"
}

// SetMetrics attaches a registry: every verdict the checker's sessions
// produce is counted as compliance_pass_total or
// compliance_fail_total{criterion=...}. A nil registry (the default)
// disables counting at zero cost.
func (c *Checker) SetMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	cm := &checkerMetrics{pass: r.Counter("compliance_pass_total")}
	for crit := CritMessageType; crit <= CritSemantics; crit++ {
		cm.fail[crit] = r.Counter("compliance_fail_total", metrics.L("criterion", critSlug(crit)))
	}
	c.metrics = cm
}

// record counts the verdicts of one Check call.
func (c *Checker) record(out []Checked) {
	if c.metrics == nil {
		return
	}
	for _, ch := range out {
		if ch.Verdict.Compliant {
			c.metrics.pass.Inc()
		} else if int(ch.Verdict.Failed) < len(c.metrics.fail) {
			c.metrics.fail[ch.Verdict.Failed].Inc()
		}
	}
}

// Session holds per-stream state for criterion 5. Create one per
// transport stream and feed it messages in capture order.
type Session struct {
	checker *Checker

	// STUN transaction tracking.
	txSeen      map[[12]byte]*txState
	prevReqTx   [12]byte
	havePrevReq bool
	seqTxRun    int
	allocDone   bool // an Allocate success has been observed
	allocReqs   int  // Allocate requests after completion
	boundChans  map[uint16]bool
	srtcpLastIx map[uint32]uint32

	// QUIC connection-ID consistency.
	quicCIDs map[string]bool
}

type txState struct {
	requests  int
	responded bool
	firstSeen time.Time
}

// NewSession returns a per-stream session.
func (c *Checker) NewSession() *Session {
	return &Session{
		checker:     c,
		txSeen:      make(map[[12]byte]*txState),
		boundChans:  make(map[uint16]bool),
		srtcpLastIx: make(map[uint32]uint32),
		quicCIDs:    make(map[string]bool),
	}
}

// repeatThreshold is how many same-transaction requests without any
// response constitute a semantic violation (FaceTime retransmits its
// modified Binding Requests once per second for a minute; genuine STUN
// retransmission uses exponential backoff and stops at Rc=7).
const repeatThreshold = 3

// allocPingPongThreshold is how many post-completion Allocate requests
// on one stream mark the Allocate-as-connectivity-check pattern.
const allocPingPongThreshold = 2

// Check evaluates one extracted message, returning one Checked per
// protocol data unit (an RTCP compound region yields one per RTCP
// packet).
func (s *Session) Check(m dpi.Message, ts time.Time) []Checked {
	out := s.check(m, ts)
	s.checker.record(out)
	return out
}

func (s *Session) check(m dpi.Message, ts time.Time) []Checked {
	switch m.Protocol {
	case dpi.ProtoSTUN:
		return []Checked{s.checkSTUN(m, ts)}
	case dpi.ProtoChannelData:
		return []Checked{s.checkChannelData(m, ts)}
	case dpi.ProtoRTP:
		return []Checked{s.checkRTP(m, ts)}
	case dpi.ProtoRTCP:
		return s.checkRTCP(m, ts)
	case dpi.ProtoQUIC:
		return []Checked{s.checkQUIC(m, ts)}
	}
	return nil
}
