package bufpool

import (
	"bytes"
	"sync"
	"testing"
)

func TestAppendCopiesAndAliasesNothing(t *testing.T) {
	p := New()
	a := p.NewArena()
	src := []byte{1, 2, 3, 4}
	got := a.Append(src)
	if !bytes.Equal(got, src) {
		t.Fatalf("Append = %v, want %v", got, src)
	}
	src[0] = 99
	if got[0] != 1 {
		t.Fatal("Append aliased the source slice")
	}
	if &got[0] == &src[0] {
		t.Fatal("Append returned the source backing array")
	}
}

func TestAppendEmptyIsNonNil(t *testing.T) {
	p := New()
	a := p.NewArena()
	got := a.Append(nil)
	if got == nil {
		t.Fatal("Append(nil) returned a nil slice; the batch decoder convention needs non-nil empty")
	}
	if len(got) != 0 {
		t.Fatalf("Append(nil) length = %d", len(got))
	}
	got2 := a.Append([]byte{})
	if got2 == nil || len(got2) != 0 {
		t.Fatalf("Append(empty) = %v", got2)
	}
}

func TestAppendedSlicesStayDistinct(t *testing.T) {
	p := New()
	a := p.NewArena()
	var out [][]byte
	for i := 0; i < 100; i++ {
		out = append(out, a.Append([]byte{byte(i), byte(i + 1)}))
	}
	for i, b := range out {
		if b[0] != byte(i) || b[1] != byte(i+1) {
			t.Fatalf("slice %d corrupted: %v", i, b)
		}
		if cap(b) != len(b) {
			t.Fatalf("slice %d has spare capacity %d; appends could clobber the neighbour", i, cap(b)-len(b))
		}
	}
}

func TestChunkRollover(t *testing.T) {
	p := New()
	a := p.NewArena()
	big := make([]byte, ChunkSize*2/3)
	for i := range big {
		big[i] = 7
	}
	first := a.Append(big)
	second := a.Append(big) // cannot fit in the first chunk's remainder
	if &first[0] == &second[0] {
		t.Fatal("second append reused the first chunk's base")
	}
	if got := a.Bytes(); got != 2*len(big) {
		t.Fatalf("Bytes = %d, want %d", got, 2*len(big))
	}
	st := p.Stats()
	if st.Gets != 2 {
		t.Fatalf("Gets = %d, want 2", st.Gets)
	}
}

func TestOversizePayload(t *testing.T) {
	p := New()
	a := p.NewArena()
	huge := make([]byte, ChunkSize+1)
	huge[ChunkSize] = 42
	got := a.Append(huge)
	if len(got) != len(huge) || got[ChunkSize] != 42 {
		t.Fatal("oversize append lost data")
	}
	a.Release()
	st := p.Stats()
	if st.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", st.Oversize)
	}
	// The dedicated chunk must not be pooled.
	if st.Puts != 0 {
		t.Fatalf("Puts = %d, want 0 (oversize chunks are dropped)", st.Puts)
	}
}

func TestReleaseRecyclesChunks(t *testing.T) {
	p := New()
	a := p.NewArena()
	a.Append([]byte{1})
	a.Release()
	if a.Bytes() != 0 {
		t.Fatal("Release left bytes behind")
	}
	// Steady state: repeated fill/release cycles are served from the
	// pool without new chunk allocations. (The race detector makes
	// sync.Pool drop random Puts, so the exact assertion only holds
	// without it.)
	before := p.Stats().Misses
	for i := 0; i < 50; i++ {
		a.Append(make([]byte, 1000))
		a.Release()
	}
	st := p.Stats()
	if !raceEnabled && st.Misses != before {
		t.Fatalf("steady-state cycles allocated %d fresh chunks", st.Misses-before)
	}
	if st.Puts == 0 {
		t.Fatal("Release never pooled a chunk")
	}
}

func TestPoisonOnRelease(t *testing.T) {
	prev := EnablePoison(true)
	defer EnablePoison(prev)
	p := New()
	a := p.NewArena()
	got := a.Append([]byte{1, 2, 3})
	a.Release()
	for i, b := range got {
		if b != PoisonByte {
			t.Fatalf("byte %d after release = %#x, want poison %#x", i, b, PoisonByte)
		}
	}
}

func TestAppendSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; allocation count is not exact")
	}
	p := New()
	a := p.NewArena()
	payload := make([]byte, 1200)
	// Warm the pool: one full cycle sizes the chain.
	for i := 0; i < 200; i++ {
		a.Append(payload)
	}
	a.Release()
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		a.Append(payload)
		i++
		if i%50 == 0 {
			a.Release()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Append/Release allocates %.3f allocs/op, want 0", avg)
	}
}

func TestConcurrentArenasShareOnePool(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := p.NewArena()
			for i := 0; i < 500; i++ {
				b := a.Append([]byte{byte(g), byte(i)})
				if b[0] != byte(g) || b[1] != byte(i) {
					t.Errorf("goroutine %d read corrupted append", g)
					return
				}
				if i%20 == 19 {
					a.Release()
				}
			}
			a.Release()
		}(g)
	}
	wg.Wait()
}

func TestGlobalPool(t *testing.T) {
	if Global() == nil || Global() != Global() {
		t.Fatal("Global must return one shared pool")
	}
	a := Global().NewArena()
	b := a.Append([]byte{5})
	if b[0] != 5 {
		t.Fatal("global arena append failed")
	}
	a.Release()
}
