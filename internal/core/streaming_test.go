package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Differential harness for the streaming Analyzer.
//
// The contract under test: the incremental single-pass pipeline
// (AnalyzeCapture and AnalyzePCAP, both built on core.Analyzer) produces
// output byte-identical to the retained batch reference
// (BatchAnalyzeCapture / BatchAnalyzePCAP) across the full experiment
// matrix, for every worker count, with and without payload retention.

// streamingSeeds drives the differential sweep; -short trims it.
var streamingSeeds = []uint64{3, 17, 29, 77, 1234, 98765}

var streamingNetworks = []appsim.Network{appsim.WiFiP2P, appsim.WiFiRelay, appsim.Cellular}

func streamingCapture(t testing.TB, app appsim.App, network appsim.Network, seed uint64) *trace.Capture {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: network, Seed: seed,
		Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
		MediaRate: 8, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

func diffAnalyses(t *testing.T, label string, want, got *CaptureAnalysis) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	t.Errorf("%s: streaming and batch CaptureAnalysis differ", label)
	if !reflect.DeepEqual(want.Filter, got.Filter) {
		t.Errorf("%s: filter results differ\nbatch:     %+v\nstreaming: %+v", label, want.Filter, got.Filter)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: stats differ\nbatch:     %+v\nstreaming: %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Findings, got.Findings) {
		t.Errorf("%s: findings differ\nbatch:     %v\nstreaming: %v", label, want.Findings, got.Findings)
	}
	if !reflect.DeepEqual(want.RTPSSRCs, got.RTPSSRCs) {
		t.Errorf("%s: SSRC sets differ", label)
	}
	if want.Bytes != got.Bytes {
		t.Errorf("%s: bytes %d != %d", label, got.Bytes, want.Bytes)
	}
	if want.DecodeErrors != got.DecodeErrors {
		t.Errorf("%s: decode errors %d != %d", label, got.DecodeErrors, want.DecodeErrors)
	}
}

// TestStreamingBatchEquivalence sweeps the full 6-app × 3-network matrix
// over the seed set and asserts the streaming AnalyzeCapture is deeply
// equal to the batch reference, on the serial path and on the worker
// pool.
func TestStreamingBatchEquivalence(t *testing.T) {
	seeds := streamingSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, app := range appsim.Apps {
		for _, network := range streamingNetworks {
			for _, seed := range seeds {
				cap := streamingCapture(t, app, network, seed)
				in := cap.Input()
				batch, err := BatchAnalyzeCapture(in, Options{Workers: 1})
				if err != nil {
					t.Fatalf("%s/%s seed %d batch: %v", app, network, seed, err)
				}
				for _, workers := range []int{1, 8} {
					streaming, err := AnalyzeCapture(in, Options{Workers: workers})
					if err != nil {
						t.Fatalf("%s/%s seed %d workers=%d: %v", app, network, seed, workers, err)
					}
					diffAnalyses(t, fmt.Sprintf("%s/%s seed %d workers %d", app, network, seed, workers), batch, streaming)
				}
			}
		}
	}
}

func capturePCAPBytes(t testing.TB, cap *trace.Capture) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeRaw)
	for _, fr := range cap.Frames() {
		if err := w.WritePacket(fr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestStreamingPCAPMatchesBatch runs the record-at-a-time pcap path with
// payload retention against the read-everything baseline and requires
// deep equality — including per-packet records — both with an explicit
// call window and with the window defaulted to the capture span.
func TestStreamingPCAPMatchesBatch(t *testing.T) {
	for _, tc := range []struct {
		app     appsim.App
		network appsim.Network
		seed    uint64
	}{
		{appsim.Zoom, appsim.WiFiRelay, 5},
		{appsim.FaceTime, appsim.WiFiP2P, 23},
		{appsim.GoogleMeet, appsim.Cellular, 51},
	} {
		cap := streamingCapture(t, tc.app, tc.network, tc.seed)
		raw := capturePCAPBytes(t, cap)
		for _, window := range []struct {
			name       string
			start, end time.Time
		}{
			{"explicit", cap.CallStart, cap.CallEnd},
			{"defaulted", time.Time{}, time.Time{}},
		} {
			opts := Options{KeepPayloads: true}
			batch, err := BatchAnalyzePCAP(bytes.NewReader(raw), string(tc.app), window.start, window.end, opts)
			if err != nil {
				t.Fatalf("%s %s batch: %v", tc.app, window.name, err)
			}
			streaming, err := AnalyzePCAP(bytes.NewReader(raw), string(tc.app), window.start, window.end, opts)
			if err != nil {
				t.Fatalf("%s %s streaming: %v", tc.app, window.name, err)
			}
			diffAnalyses(t, fmt.Sprintf("%s/%s window=%s", tc.app, tc.network, window.name), batch, streaming)
		}
	}
}

// diffAnalysesSansPayloads compares every externally visible field
// except per-packet records, which the bounded-memory paths discard.
func diffAnalysesSansPayloads(t *testing.T, label string, want, got *CaptureAnalysis) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: stats differ\nbatch:     %+v\nstreaming: %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Findings, got.Findings) {
		t.Errorf("%s: findings differ\nbatch:     %v\nstreaming: %v", label, want.Findings, got.Findings)
	}
	if !reflect.DeepEqual(want.RTPSSRCs, got.RTPSSRCs) {
		t.Errorf("%s: SSRC sets differ", label)
	}
	if want.Bytes != got.Bytes || want.DecodeErrors != got.DecodeErrors {
		t.Errorf("%s: bytes/decode errors differ: %d/%d != %d/%d",
			label, got.Bytes, got.DecodeErrors, want.Bytes, want.DecodeErrors)
	}
	wf, gf := want.Filter, got.Filter
	if wf.RawUDP != gf.RawUDP || wf.RawTCP != gf.RawTCP ||
		wf.Stage1UDP != gf.Stage1UDP || wf.Stage1TCP != gf.Stage1TCP ||
		wf.Stage2UDP != gf.Stage2UDP || wf.Stage2TCP != gf.Stage2TCP ||
		wf.RTCUDP != gf.RTCUDP || wf.RTCTCP != gf.RTCTCP {
		t.Errorf("%s: filter accounting differs\nbatch:     %+v\nstreaming: %+v", label, wf, gf)
	}
	if len(wf.RTC) != len(gf.RTC) || len(wf.Removed) != len(gf.Removed) {
		t.Errorf("%s: stream partitions differ: RTC %d/%d removed %d/%d",
			label, len(gf.RTC), len(wf.RTC), len(gf.Removed), len(wf.Removed))
	}
	if !reflect.DeepEqual(wf.Removed, gf.Removed) {
		t.Errorf("%s: removal attributions differ\nbatch:     %v\nstreaming: %v", label, wf.Removed, gf.Removed)
	}
}

// TestStreamingPCAPDropsPayloads checks the bounded-memory contract: by
// default AnalyzePCAP must not return payload records for any stream,
// while still matching the batch result on every aggregate.
func TestStreamingPCAPDropsPayloads(t *testing.T) {
	cap := streamingCapture(t, appsim.WhatsApp, appsim.WiFiRelay, 31)
	raw := capturePCAPBytes(t, cap)
	batch, err := BatchAnalyzePCAP(bytes.NewReader(raw), "whatsapp", cap.CallStart, cap.CallEnd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := AnalyzePCAP(bytes.NewReader(raw), "whatsapp", cap.CallStart, cap.CallEnd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffAnalysesSansPayloads(t, "whatsapp", batch, streaming)
	for _, s := range streaming.Filter.RTC {
		if len(s.Packets) != 0 {
			t.Fatalf("RTC stream %v retained %d payload records without KeepPayloads", s.Key, len(s.Packets))
		}
	}
	for _, rs := range streaming.Filter.RemovedStreams {
		if len(rs.Packets) != 0 {
			t.Fatalf("removed stream %v retained %d payload records", rs.Key, len(rs.Packets))
		}
	}
}

// TestStreamingPCAPEvictionEquivalence turns on idle-stream eviction —
// chunked DPI finalization and mid-capture buffer release — and checks
// the aggregates still match the batch reference: the RTC streams stay
// continuously active, so chunk boundaries never split an SSRC's
// validation window in these captures.
func TestStreamingPCAPEvictionEquivalence(t *testing.T) {
	for _, tc := range []struct {
		app  appsim.App
		seed uint64
	}{
		{appsim.Zoom, 7},
		{appsim.Discord, 19},
		{appsim.Messenger, 63},
	} {
		cap := streamingCapture(t, tc.app, appsim.WiFiRelay, tc.seed)
		raw := capturePCAPBytes(t, cap)
		batch, err := BatchAnalyzePCAP(bytes.NewReader(raw), string(tc.app), cap.CallStart, cap.CallEnd, Options{})
		if err != nil {
			t.Fatal(err)
		}
		streaming, err := AnalyzePCAP(bytes.NewReader(raw), string(tc.app), cap.CallStart, cap.CallEnd,
			Options{EvictIdle: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		diffAnalysesSansPayloads(t, fmt.Sprintf("%s evicting", tc.app), batch, streaming)
	}
}

// TestAnalyzerMisuse pins the Analyzer's lifecycle and configuration
// errors.
func TestAnalyzerMisuse(t *testing.T) {
	if _, err := NewAnalyzer(AnalyzerConfig{CallStart: t0, CallEnd: t0.Add(-time.Second)}, Options{}); err == nil {
		t.Error("inverted call window accepted")
	}
	if _, err := NewAnalyzer(AnalyzerConfig{KeepPayloads: true, EvictIdle: time.Second}, Options{}); err == nil {
		t.Error("KeepPayloads with EvictIdle accepted")
	}

	cap := streamingCapture(t, appsim.Zoom, appsim.WiFiP2P, 1)
	a, err := NewAnalyzer(AnalyzerConfig{
		Label: "zoom", LinkType: pcap.LinkTypeRaw,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
		KeepPayloads: true, FramesStable: true,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range cap.Frames() {
		if err := a.Feed(fr.Timestamp, fr.Data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Feed(cap.CallEnd, nil); err == nil {
		t.Error("Feed after Close accepted")
	}
	if _, err := a.Close(); err == nil {
		t.Error("second Close accepted")
	}
}

// TestAnalyzerStreamingMetrics checks the streaming instrumentation:
// one feed-latency observation per FeedBatch call (AnalyzePCAP feeds in
// feedBatchSize batches), a matching batch counter, a live-stream gauge
// that returns to zero with a positive high-water mark, and eviction
// activity under an aggressive idle bound.
func TestAnalyzerStreamingMetrics(t *testing.T) {
	cap := streamingCapture(t, appsim.FaceTime, appsim.WiFiRelay, 9)
	raw := capturePCAPBytes(t, cap)
	reg := metrics.NewRegistry()
	if _, err := AnalyzePCAP(bytes.NewReader(raw), "facetime", cap.CallStart, cap.CallEnd,
		Options{EvictIdle: 200 * time.Millisecond, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	feeds := uint64(0)
	for name, h := range snap.Histograms {
		if name == "core_feed_seconds" || len(name) > len("core_feed_seconds") && name[:len("core_feed_seconds")+1] == "core_feed_seconds{" {
			feeds += h.Count
		}
	}
	wantBatches := uint64((len(cap.Frames()) + feedBatchSize - 1) / feedBatchSize)
	if feeds != wantBatches {
		t.Errorf("core_feed_seconds observations = %d, want %d (one per batch of %d)", feeds, wantBatches, feedBatchSize)
	}
	if v := sumCounters(snap, "core_feed_batches_total"); v != wantBatches {
		t.Errorf("core_feed_batches_total = %d, want %d", v, wantBatches)
	}
	if v := snap.Gauges[metrics.Name("core_active_streams", metrics.L("app", "facetime"))]; v != 0 {
		t.Errorf("core_active_streams = %d after Close, want 0", v)
	}
	if v := snap.Gauges[metrics.Name("core_active_streams_peak", metrics.L("app", "facetime"))]; v <= 0 {
		t.Errorf("core_active_streams_peak = %d, want > 0", v)
	}
	if v := sumCounters(snap, "core_evicted_streams_total"); v == 0 {
		t.Error("core_evicted_streams_total = 0 under a 200ms idle bound on a background-heavy capture")
	}
}

// TestStreamingMemoryRatio pins the acceptance criterion for the
// single-pass pcap path: on a large, bulk-traffic-dominated capture —
// the mix the paper's capture hosts actually record — the streaming
// AnalyzePCAP must allocate at least 5x fewer bytes per run than the
// read-everything batch baseline, because it never materializes the
// file: frames pass through one reusable buffer and only
// provisionally-RTC UDP payloads are copied until DPI consumes them.
func TestStreamingMemoryRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark; skipped in -short")
	}
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.Zoom, Network: appsim.WiFiRelay, Seed: 4242,
		Start: t0, CallDuration: 3 * time.Second, PrePost: 60 * time.Second,
		MediaRate: 10, Background: true, BackgroundBulk: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := capturePCAPBytes(t, cap)
	opts := Options{SkipFindings: true}
	run := func(f func(io.Reader, string, time.Time, time.Time, Options) (*CaptureAnalysis, error)) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f(bytes.NewReader(raw), "zoom", cap.CallStart, cap.CallEnd, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.AllocedBytesPerOp())
	}
	streaming := run(AnalyzePCAP)
	batch := run(BatchAnalyzePCAP)
	if streaming <= 0 {
		t.Fatalf("streaming AllocedBytesPerOp = %v", streaming)
	}
	ratio := batch / streaming
	t.Logf("bytes/op: batch %.0f, streaming %.0f, ratio %.1fx (capture %d bytes)",
		batch, streaming, ratio, len(raw))
	if ratio < 5 {
		t.Errorf("streaming AnalyzePCAP allocates only %.1fx fewer bytes/op than batch, want >= 5x", ratio)
	}
}
