// Command rtcreport regenerates the paper's evaluation tables and
// figures by running the synthetic experiment matrix through the full
// analysis pipeline and rendering the aggregates.
//
// Usage:
//
//	rtcreport -all
//	rtcreport -table 3 -figure 4 -runs 3 -duration 20s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/cmdutil"
)

// newFlags registers rtcreport's flag surface (pinned by the golden
// surface test); the shared knobs come from the cmdutil helpers.
func newFlags() (fs *flag.FlagSet, tables, figures *string, all, findings, interopF *bool,
	runs *int, duration *time.Duration, rate *int, seed *uint64,
	workers *int, metAddr *string, version *bool) {
	fs = flag.NewFlagSet("rtcreport", flag.ExitOnError)
	tables = fs.String("table", "", "comma-separated table numbers to render (1-6)")
	figures = fs.String("figure", "", "comma-separated figure numbers to render (3-5)")
	all = fs.Bool("all", false, "render every table and figure")
	findings = fs.Bool("findings", true, "print behavioural findings (§5.3)")
	interopF = fs.Bool("interop", false, "print the §6 interoperability profiles and pairwise matrix")
	runs = fs.Int("runs", 2, "repetitions per app × network cell (paper: 6)")
	duration = fs.Duration("duration", 12*time.Second, "call duration (paper: 5m)")
	rate = fs.Int("rate", 25, "media packets per second per stream")
	seed = fs.Uint64("seed", 1, "base seed")
	workers = cmdutil.WorkersFlag(fs)
	metAddr = cmdutil.MetricsAddrFlag(fs)
	version = cmdutil.VersionFlag(fs)
	return
}

func main() {
	fs, tables, figures, all, findings, interopF, runs, duration, rate, seed, workers, metAddr, version := newFlags()
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *version {
		cmdutil.PrintVersion(os.Stdout, "rtcreport")
		return
	}
	reg, stopMetrics, err := cmdutil.ServeMetrics("rtcreport", *metAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtcreport:", err)
		os.Exit(1)
	}
	defer stopMetrics()

	wantT, err := parseSet(*tables, 1, 6)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtcreport:", err)
		os.Exit(2)
	}
	wantF, err := parseSet(*figures, 3, 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtcreport:", err)
		os.Exit(2)
	}
	if *all || (len(wantT) == 0 && len(wantF) == 0) {
		wantT = map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true}
		wantF = map[int]bool{3: true, 4: true, 5: true}
	}

	fmt.Printf("Running experiment matrix: %d apps x 3 networks x %d runs, %s calls at %d pps\n\n",
		len(rtcc.Apps), *runs, *duration, *rate)
	ma, err := rtcc.RunMatrix(rtcc.MatrixOptions{
		Runs:         *runs,
		CallDuration: *duration,
		PrePost:      10 * time.Second,
		MediaRate:    *rate,
		Start:        time.Unix(1700000000, 0).UTC(),
		BaseSeed:     *seed,
		Background:   true,
	}, rtcc.Options{Workers: *workers, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtcreport:", err)
		os.Exit(1)
	}

	sections := []struct {
		table  bool
		number int
		render func() string
	}{
		{true, 1, func() string { return rtcc.RenderTable1(ma.Table1) }},
		{true, 2, func() string { return rtcc.RenderTable2(ma.Aggregate) }},
		{false, 3, func() string { return rtcc.RenderFigure3(ma.Aggregate) }},
		{false, 4, func() string { return rtcc.RenderFigure4(ma.Aggregate) }},
		{true, 3, func() string { return rtcc.RenderTable3(ma.Aggregate) }},
		{true, 4, func() string { return rtcc.RenderTable4(ma.Aggregate) }},
		{true, 5, func() string { return rtcc.RenderTable5(ma.Aggregate) }},
		{true, 6, func() string { return rtcc.RenderTable6(ma.Aggregate) }},
		{false, 5, func() string { return rtcc.RenderFigure5(ma.Aggregate) }},
	}
	for _, s := range sections {
		want := wantF
		if s.table {
			want = wantT
		}
		if want[s.number] {
			fmt.Println(s.render())
		}
	}

	if *findings && len(ma.Findings) > 0 {
		fmt.Println("Behavioural findings (§5.3):")
		for _, f := range ma.Findings {
			fmt.Printf("  %s\n", f)
		}
	}

	if *interopF {
		fmt.Println("\nInteroperability profiles (§6):")
		for _, stats := range ma.Aggregate.Apps() {
			fmt.Print(rtcc.DescribeInteropProfile(rtcc.BuildInteropProfile(stats)))
		}
		fmt.Println("\nPairwise adaptation effort (mutual, deduplicated):")
		seen := map[string]bool{}
		for _, as := range rtcc.InteropMatrix(ma.Aggregate) {
			key := as.A + "|" + as.B
			if as.B < as.A {
				key = as.B + "|" + as.A
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Printf("  %-28s out-of-the-box %5.1f%%, effort %5.1f, %d shim kinds\n",
				as.A+" <-> "+as.B, 100*as.OutOfTheBox, as.Effort, len(as.Shims))
		}
	}
}

func parseSet(s string, lo, hi int) (map[int]bool, error) {
	out := make(map[int]bool)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < lo || n > hi {
			return nil, fmt.Errorf("invalid number %q (want %d-%d)", part, lo, hi)
		}
		out[n] = true
	}
	return out, nil
}
