package alert

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/qoe"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

func f64(v float64) *float64 { return &v }

var base = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// point builds a trend point with the given type-compliance rate out
// of 20 types.
func point(app string, i int, rate float64) trend.Point {
	return trend.Point{
		Time: base.Add(time.Duration(i) * time.Minute), App: app,
		TypesTotal: 20, TypesCompliant: int(rate * 20),
	}
}

func qoePoint(app string, i int, frameRate float64) trend.Point {
	p := point(app, i, 1)
	p.QoE = &qoe.Summary{MediaStreams: 1, FrameRate: frameRate}
	return p
}

// kinds flattens observed events to "fire"/"resolve" strings.
func kinds(evs []Event) string {
	var out []string
	for _, ev := range evs {
		out = append(out, ev.Kind)
	}
	return strings.Join(out, ",")
}

// TestDebounceHysteresisMatrix is the debounce/hysteresis unit matrix:
// each case drives one rule through a breach/clear sequence and pins
// the exact transition sequence it must produce.
func TestDebounceHysteresisMatrix(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		// rates per point; for qoe_floor cases these are frame rates.
		rates []float64
		qoe   bool
		want  []string // expected event kinds in order, aligned sparsely
	}{
		{
			name:  "min floor fires immediately by default",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5)},
			rates: []float64{0.9, 0.4, 0.9},
			want:  []string{"", "fire", "resolve"},
		},
		{
			name:  "for_points=2 debounces a one-point blip",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5), ForPoints: 2},
			rates: []float64{0.9, 0.4, 0.9, 0.4, 0.4, 0.9},
			want:  []string{"", "", "", "", "fire", "resolve"},
		},
		{
			name:  "clear_points=2 holds through a one-point recovery",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5), ClearPoints: 2},
			rates: []float64{0.4, 0.9, 0.4, 0.9, 0.9},
			want:  []string{"fire", "", "", "", "resolve"},
		},
		{
			name:  "persistent breach fires exactly once",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5)},
			rates: []float64{0.4, 0.4, 0.4, 0.4},
			want:  []string{"fire", "", "", ""},
		},
		{
			name:  "drop fires on regression vs reference",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Drop: f64(0.3)},
			rates: []float64{0.95, 0.9, 0.5, 0.9},
			want:  []string{"", "", "fire", "resolve"},
		},
		{
			name: "frozen reference keeps a persistent regression breaching",
			rule: Rule{Name: "r", Type: TypeComplianceDrop, Drop: f64(0.3)},
			// After the drop to 0.5 the reference must stay 0.9, so the
			// plateau at 0.5 never reads as the new normal.
			rates: []float64{0.9, 0.5, 0.5, 0.5},
			want:  []string{"", "fire", "", ""},
		},
		{
			name:  "first point cannot breach via drop (no reference yet)",
			rule:  Rule{Name: "r", Type: TypeComplianceDrop, Drop: f64(0.1)},
			rates: []float64{0.2, 0.2},
			want:  []string{"", ""},
		},
		{
			name:  "qoe floor min",
			rule:  Rule{Name: "r", Type: TypeQoEFloor, Field: "frame_rate", Min: f64(15)},
			rates: []float64{30, 10, 30},
			qoe:   true,
			want:  []string{"", "fire", "resolve"},
		},
		{
			name:  "qoe ceiling max",
			rule:  Rule{Name: "r", Type: TypeQoEFloor, Field: "frame_rate", Max: f64(60)},
			rates: []float64{30, 90, 30},
			qoe:   true,
			want:  []string{"", "fire", "resolve"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine([]Rule{tc.rule}, nil)
			for i, rate := range tc.rates {
				var p trend.Point
				if tc.qoe {
					p = qoePoint("Zoom", i, rate)
				} else {
					p = point("Zoom", i, rate)
				}
				got := kinds(e.Observe(p))
				if got != tc.want[i] {
					t.Fatalf("point %d (value %v): events %q, want %q", i, rate, got, tc.want[i])
				}
			}
		})
	}
}

func TestPerAppIsolation(t *testing.T) {
	e := NewEngine([]Rule{{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5)}}, nil)
	if evs := e.Observe(point("Zoom", 0, 0.9)); len(evs) != 0 {
		t.Fatalf("unexpected events: %v", evs)
	}
	evs := e.Observe(point("Discord", 1, 0.0))
	if len(evs) != 1 || evs[0].Kind != "fire" || evs[0].App != "Discord" {
		t.Fatalf("events = %v", evs)
	}
	// Zoom staying healthy must not resolve Discord's episode.
	if evs := e.Observe(point("Zoom", 2, 0.9)); len(evs) != 0 {
		t.Fatalf("unexpected events: %v", evs)
	}
	snap := e.Snapshot()
	if snap.Firing != 1 || len(snap.States) != 2 {
		t.Fatalf("snapshot: firing=%d states=%d", snap.Firing, len(snap.States))
	}
}

func TestAppFilterSkipsOtherApps(t *testing.T) {
	e := NewEngine([]Rule{{Name: "r", Type: TypeComplianceDrop, App: "Zoom", Min: f64(0.5)}}, nil)
	if evs := e.Observe(point("Discord", 0, 0.0)); len(evs) != 0 {
		t.Fatalf("rule with app filter evaluated a foreign app: %v", evs)
	}
	if evs := e.Observe(point("Zoom", 1, 0.0)); len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
}

func TestNoEvidencePointsAreSkipped(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "c", Type: TypeComplianceDrop, Min: f64(0.5)},
		{Name: "q", Type: TypeQoEFloor, Field: "frame_rate", Min: f64(15)},
	}, nil)
	// Zero judged types and no QoE summary: nothing evaluates.
	if evs := e.Observe(trend.Point{Time: base, App: "Zoom"}); len(evs) != 0 {
		t.Fatalf("events = %v", evs)
	}
	if n := len(e.Snapshot().States); n != 0 {
		t.Fatalf("states = %d, want 0", n)
	}
	// A firing episode must survive evidence-free points (neither
	// breach nor clear).
	e.Observe(point("Zoom", 1, 0.0))
	e.Observe(trend.Point{Time: base.Add(2 * time.Minute), App: "Zoom"})
	snap := e.Snapshot()
	if snap.Firing != 1 {
		t.Fatal("evidence-free point disturbed the firing state")
	}
}

func TestSwapPreservesFiringState(t *testing.T) {
	rules := []Rule{
		{Name: "keep", Type: TypeComplianceDrop, Min: f64(0.5)},
		{Name: "drop-me", Type: TypeComplianceDrop, Min: f64(0.9)},
	}
	e := NewEngine(rules, nil)
	e.Observe(point("Zoom", 0, 0.2)) // both fire
	if got := e.Snapshot().Firing; got != 2 {
		t.Fatalf("firing = %d, want 2", got)
	}
	// Swap: keep "keep" (state must survive), remove "drop-me", add "new".
	e.Swap([]Rule{
		{Name: "keep", Type: TypeComplianceDrop, Min: f64(0.5)},
		{Name: "new", Type: TypeComplianceDrop, Min: f64(0.5)},
	})
	snap := e.Snapshot()
	if snap.Firing != 1 || len(snap.States) != 1 || snap.States[0].Rule != "keep" || !snap.States[0].Firing {
		t.Fatalf("post-swap snapshot: %+v", snap)
	}
	// The preserved episode must not re-fire on a continued breach…
	if evs := e.Observe(point("Zoom", 1, 0.2)); kinds(evs) != "fire" {
		// only "new" fires; "keep" is already firing
		t.Fatalf("post-swap events: %v", evs)
	}
	// …and must resolve normally.
	evs := e.Observe(point("Zoom", 2, 0.9))
	if len(evs) != 2 || evs[0].Kind != "resolve" || evs[1].Kind != "resolve" {
		t.Fatalf("resolve events: %v", evs)
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	e := NewEngine([]Rule{{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5)}}, reg)
	e.Observe(point("Zoom", 0, 0.9))
	e.Observe(point("Zoom", 1, 0.2)) // fire
	e.Observe(point("Zoom", 2, 0.2)) // suppressed
	e.Observe(point("Zoom", 3, 0.9)) // resolve
	snap := reg.Snapshot()
	if snap.Counters["alerts_evaluated_total"] != 4 {
		t.Fatalf("evaluated = %d", snap.Counters["alerts_evaluated_total"])
	}
	if snap.Counters["alerts_fired_total"] != 1 || snap.Counters["alerts_resolved_total"] != 1 {
		t.Fatalf("fired/resolved = %d/%d", snap.Counters["alerts_fired_total"], snap.Counters["alerts_resolved_total"])
	}
	if snap.Counters["alerts_suppressed_total"] != 1 {
		t.Fatalf("suppressed = %d", snap.Counters["alerts_suppressed_total"])
	}
	if snap.Gauges["alerts_firing"] != 0 {
		t.Fatalf("firing gauge = %d", snap.Gauges["alerts_firing"])
	}
}

func TestValidateMatrix(t *testing.T) {
	bad := []Rule{
		{Name: "a"},                           // no type
		{Name: "b", Type: "bogus"},            // unknown type
		{Name: "c", Type: TypeComplianceDrop}, // no threshold
		{Name: "d", Type: TypeComplianceDrop, Drop: f64(1.5)},
		{Name: "e", Type: TypeComplianceDrop, Min: f64(2)},
		{Name: "f", Type: TypeComplianceDrop, Min: f64(0.5), Max: f64(1)},
		{Name: "g", Type: TypeComplianceDrop, Min: f64(0.5), Field: "frame_rate"},
		{Name: "h", Type: TypeQoEFloor, Min: f64(1)},                         // no field
		{Name: "i", Type: TypeQoEFloor, Field: "bogus", Min: f64(1)},         // unknown field
		{Name: "j", Type: TypeQoEFloor, Field: "frame_rate"},                 // no threshold
		{Name: "k", Type: TypeQoEFloor, Field: "frame_rate", Drop: f64(0.1)}, // wrong knob
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %q: expected validation error", r.Name)
		}
	}
	good := []Rule{
		{Name: "a", Type: TypeComplianceDrop, Drop: f64(0.3)},
		{Name: "b", Type: TypeComplianceDrop, Min: f64(0.8), ForPoints: 3, ClearPoints: 2},
		{Name: "c", Type: TypeQoEFloor, Field: "frame_rate", Min: f64(15)},
		{Name: "d", Type: TypeQoEFloor, Field: "stall_seconds", Max: f64(2)},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %q: unexpected error: %v", r.Name, err)
		}
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	e := NewEngine([]Rule{{Name: "r", Type: TypeComplianceDrop, Min: f64(0.5)}}, nil)
	e.Observe(point("Discord", 0, 0.0))
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/compliance/alerts", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Firing != 1 || len(snap.Rules) != 1 || snap.Rules[0].Name != "r" {
		t.Fatalf("snapshot over HTTP: %+v", snap)
	}
	if len(snap.States) != 1 || !snap.States[0].Firing || snap.States[0].App != "Discord" {
		t.Fatalf("states over HTTP: %+v", snap.States)
	}
}
