package compliance

import (
	"strconv"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// checkRTP applies the five criteria to an RTP message. For RTP the
// paper's "message type" is the payload type, and "attributes" are the
// RFC 8285 header-extension profile and its elements.
func (s *Session) checkRTP(m dpi.Message, ts time.Time) Checked {
	p := m.RTP
	c := Checked{
		Protocol:  dpi.ProtoRTP,
		Type:      TypeKey{Protocol: dpi.ProtoRTP, Label: strconv.Itoa(int(p.PayloadType))},
		Bytes:     m.Length,
		Timestamp: ts,
	}
	s.checker.rtpSSRCs[p.SSRC] = true
	c.Verdict = rtpVerdict(p)
	return c
}

// definedExtProfile reports whether an RTP header-extension profile is
// defined: 0xBEDE (one-byte form) or 0x1000-0x100F (two-byte form) per
// RFC 8285.
func definedExtProfile(profile uint16) bool {
	return profile == rtp.ProfileOneByte ||
		profile&rtp.ProfileTwoByteMask == rtp.ProfileTwoByteBase
}

func rtpVerdict(p *rtp.Packet) Verdict {
	// Criterion 1: payload type. Every value 0-127 is either statically
	// assigned (RFC 3551) or in the dynamic range, so the payload type
	// itself never fails; the version field is the type-bearing header
	// field and the DPI guarantees version 2.

	// Criterion 2: header fields. The CSRC count and padding are
	// structurally verified by the decoder; a padding length that
	// consumed the entire payload would have failed decode.

	// Criterion 3: header extension profile and element IDs.
	if p.Extension != nil {
		ext := p.Extension
		if !definedExtProfile(ext.Profile) {
			// FaceTime's 0x8001/0x8500/0x8D00 and Discord's
			// 0x0084-0xFBD2 profiles.
			return fail(CritAttrType, "header extension profile %#04x is not defined by RFC 8285", ext.Profile)
		}
		for _, el := range ext.Elements {
			if ext.Profile == rtp.ProfileOneByte {
				if el.ID == 0 {
					// Discord's ID=0 elements with payload bytes: an ID
					// of 0 is padding and must not carry a length.
					return fail(CritAttrType, "one-byte extension element with reserved ID 0 carries %d payload bytes", len(el.Payload))
				}
				if el.ID == 15 {
					return fail(CritAttrType, "one-byte extension element uses reserved ID 15")
				}
			}
		}
		// Criterion 4: element structure must parse within the declared
		// extension length.
		if !ext.ParseOK {
			return fail(CritAttrValue, "header extension elements overrun the declared extension length")
		}
	}

	// Criterion 5: sequence continuity is enforced during extraction;
	// no additional per-message semantic rule applies here.
	return ok()
}
