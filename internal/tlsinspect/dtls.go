package tlsinspect

import (
	"errors"
	"fmt"
)

// DTLS record-layer and handshake parsing (RFC 6347 §4.1, RFC 9147
// retains the wire format for the unencrypted flights). The DPI probes
// DTLS-SRTP handshakes with it; like the SNI parser above, no
// cryptography is implemented — encrypted fragments stay opaque.

// DTLS record-layer constants.
const (
	// DTLSRecordHeaderLen is the fixed 13-byte record header: type,
	// version, epoch, 48-bit sequence number, length.
	DTLSRecordHeaderLen = 13
	// DTLSMaxFragmentLen bounds a record fragment (RFC 6347 carries
	// TLS's 2^14 limit forward).
	DTLSMaxFragmentLen = 1 << 14
	// DTLSHandshakeHeaderLen is the 12-byte DTLS handshake header:
	// type, 24-bit length, message sequence, 24-bit fragment offset,
	// 24-bit fragment length.
	DTLSHandshakeHeaderLen = 12
)

// DTLS protocol versions on the wire (one's complement of the TLS
// version, so they cannot collide with TLS records).
const (
	VersionDTLS10 uint16 = 0xfeff
	VersionDTLS12 uint16 = 0xfefd
)

// DTLS content types. The range 20-63 is the DTLS slice of the RFC 7983
// first-byte demultiplexing space; only 20-23 are assigned.
const (
	DTLSTypeChangeCipherSpec uint8 = 20
	DTLSTypeAlert            uint8 = 21
	DTLSTypeHandshake        uint8 = 22
	DTLSTypeApplicationData  uint8 = 23
)

// DTLS handshake message types used by the DTLS-SRTP flights.
const (
	DTLSHandshakeClientHello        uint8 = 1
	DTLSHandshakeServerHello        uint8 = 2
	DTLSHandshakeHelloVerifyRequest uint8 = 3
	DTLSHandshakeCertificate        uint8 = 11
	DTLSHandshakeServerKeyExchange  uint8 = 12
	DTLSHandshakeCertificateRequest uint8 = 13
	DTLSHandshakeServerHelloDone    uint8 = 14
	DTLSHandshakeCertificateVerify  uint8 = 15
	DTLSHandshakeClientKeyExchange  uint8 = 16
	DTLSHandshakeFinished           uint8 = 20
)

// ErrNotDTLS reports a byte region that is not a DTLS record.
var ErrNotDTLS = errors.New("tlsinspect: not a DTLS record")

// DTLSRecord is one parsed record-layer record. Fragment aliases the
// input buffer.
type DTLSRecord struct {
	ContentType    uint8
	Version        uint16
	Epoch          uint16
	SequenceNumber uint64 // 48-bit on the wire
	Fragment       []byte
}

// ByteLen returns the record's encoded size.
func (r *DTLSRecord) ByteLen() int { return DTLSRecordHeaderLen + len(r.Fragment) }

// DTLSDefinedContentType reports whether a record content type is
// assigned (RFC 6347 inherits TLS's 20-23).
func DTLSDefinedContentType(t uint8) bool {
	return t >= DTLSTypeChangeCipherSpec && t <= DTLSTypeApplicationData
}

// DTLSDefinedVersion reports whether v is a published DTLS version.
// DTLS 1.3 reuses 1.2's wire value in the plaintext record header
// (RFC 9147 §4), so 0xfefd covers both.
func DTLSDefinedVersion(v uint16) bool {
	return v == VersionDTLS10 || v == VersionDTLS12
}

// DTLSDefinedHandshakeType reports whether a handshake message type is
// assigned in DTLS 1.0/1.2.
func DTLSDefinedHandshakeType(t uint8) bool {
	switch t {
	case 0, DTLSHandshakeClientHello, DTLSHandshakeServerHello,
		DTLSHandshakeHelloVerifyRequest, DTLSHandshakeCertificate,
		DTLSHandshakeServerKeyExchange, DTLSHandshakeCertificateRequest,
		DTLSHandshakeServerHelloDone, DTLSHandshakeCertificateVerify,
		DTLSHandshakeClientKeyExchange, DTLSHandshakeFinished:
		return true
	}
	return false
}

// DTLSLooksLikeRecord reports whether b plausibly starts a DTLS record:
// an assigned content type and a DTLS version word. This is the cheap
// pre-filter; ParseDTLSRecord enforces the length fields.
func DTLSLooksLikeRecord(b []byte) bool {
	if len(b) < DTLSRecordHeaderLen {
		return false
	}
	if !DTLSDefinedContentType(b[0]) {
		return false
	}
	return DTLSDefinedVersion(uint16(b[1])<<8 | uint16(b[2]))
}

// ParseDTLSRecord parses one record at the start of b, returning it and
// the bytes consumed.
func ParseDTLSRecord(b []byte) (DTLSRecord, int, error) {
	if len(b) < DTLSRecordHeaderLen {
		return DTLSRecord{}, 0, ErrTruncated
	}
	r := DTLSRecord{
		ContentType: b[0],
		Version:     uint16(b[1])<<8 | uint16(b[2]),
		Epoch:       uint16(b[3])<<8 | uint16(b[4]),
		SequenceNumber: uint64(b[5])<<40 | uint64(b[6])<<32 | uint64(b[7])<<24 |
			uint64(b[8])<<16 | uint64(b[9])<<8 | uint64(b[10]),
	}
	if !DTLSDefinedContentType(r.ContentType) || !DTLSDefinedVersion(r.Version) {
		return DTLSRecord{}, 0, ErrNotDTLS
	}
	length := int(b[11])<<8 | int(b[12])
	if length == 0 || length > DTLSMaxFragmentLen {
		return DTLSRecord{}, 0, fmt.Errorf("%w: fragment length %d", ErrNotDTLS, length)
	}
	if DTLSRecordHeaderLen+length > len(b) {
		return DTLSRecord{}, 0, ErrTruncated
	}
	r.Fragment = b[DTLSRecordHeaderLen : DTLSRecordHeaderLen+length]
	return r, DTLSRecordHeaderLen + length, nil
}

// ParseDTLSRecords walks the record chain at the start of b and returns
// the records plus the total bytes consumed. At least one record must
// parse; the walk stops at the first byte that does not start a record.
func ParseDTLSRecords(b []byte) ([]DTLSRecord, int, error) {
	var out []DTLSRecord
	total := 0
	for total < len(b) {
		r, n, err := ParseDTLSRecord(b[total:])
		if err != nil {
			if len(out) == 0 {
				return nil, 0, err
			}
			break
		}
		out = append(out, r)
		total += n
	}
	if len(out) == 0 {
		return nil, 0, ErrNotDTLS
	}
	return out, total, nil
}

// DTLSHandshake is one parsed handshake header plus its fragment body
// (aliasing the record fragment).
type DTLSHandshake struct {
	Type           uint8
	Length         int // full message length across fragments
	MessageSeq     uint16
	FragmentOffset int
	FragmentLength int
	Body           []byte
}

// ParseDTLSHandshake parses the handshake header at the start of a
// plaintext handshake record fragment.
func ParseDTLSHandshake(b []byte) (DTLSHandshake, error) {
	if len(b) < DTLSHandshakeHeaderLen {
		return DTLSHandshake{}, ErrTruncated
	}
	h := DTLSHandshake{
		Type:           b[0],
		Length:         int(b[1])<<16 | int(b[2])<<8 | int(b[3]),
		MessageSeq:     uint16(b[4])<<8 | uint16(b[5]),
		FragmentOffset: int(b[6])<<16 | int(b[7])<<8 | int(b[8]),
		FragmentLength: int(b[9])<<16 | int(b[10])<<8 | int(b[11]),
	}
	if h.FragmentLength > len(b)-DTLSHandshakeHeaderLen {
		return DTLSHandshake{}, ErrTruncated
	}
	if h.FragmentOffset+h.FragmentLength > h.Length {
		return DTLSHandshake{}, fmt.Errorf("%w: fragment %d+%d exceeds message length %d",
			ErrNotDTLS, h.FragmentOffset, h.FragmentLength, h.Length)
	}
	h.Body = b[DTLSHandshakeHeaderLen : DTLSHandshakeHeaderLen+h.FragmentLength]
	return h, nil
}

// BuildDTLSRecord frames a fragment as one DTLS record.
func BuildDTLSRecord(contentType uint8, version, epoch uint16, seq uint64, fragment []byte) []byte {
	w := make([]byte, 0, DTLSRecordHeaderLen+len(fragment))
	w = append(w, contentType, byte(version>>8), byte(version),
		byte(epoch>>8), byte(epoch),
		byte(seq>>40), byte(seq>>32), byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
	w = append(w, byte(len(fragment)>>8), byte(len(fragment)))
	return append(w, fragment...)
}

// BuildDTLSHandshake frames a handshake body as one unfragmented DTLS
// handshake message.
func BuildDTLSHandshake(msgType uint8, messageSeq uint16, body []byte) []byte {
	n := len(body)
	w := make([]byte, 0, DTLSHandshakeHeaderLen+n)
	w = append(w, msgType,
		byte(n>>16), byte(n>>8), byte(n),
		byte(messageSeq>>8), byte(messageSeq),
		0, 0, 0, // fragment offset
		byte(n>>16), byte(n>>8), byte(n))
	return append(w, body...)
}

// BuildDTLSClientHelloBody constructs a minimal DTLS 1.2 ClientHello
// handshake body (which, unlike TLS, carries a cookie field) offering
// the DTLS-SRTP use_srtp extension (RFC 5764) with the
// SRTP_AES128_CM_HMAC_SHA1_80 profile.
func BuildDTLSClientHelloBody(random [32]byte, cookie []byte) []byte {
	w := make([]byte, 0, 96)
	w = append(w, 0xfe, 0xfd) // client_version DTLS 1.2
	w = append(w, random[:]...)
	w = append(w, 0)                  // session_id length
	w = append(w, byte(len(cookie)))  // cookie length
	w = append(w, cookie...)          //
	w = append(w, 0, 4)               // cipher_suites length
	w = append(w, 0xc0, 0x2b)         // ECDHE-ECDSA-AES128-GCM-SHA256
	w = append(w, 0xc0, 0x2f)         // ECDHE-RSA-AES128-GCM-SHA256
	w = append(w, 1, 0)               // null compression
	w = append(w, 0, 9)               // extensions length
	w = append(w, 0, 14, 0, 5)        // use_srtp, length 5
	w = append(w, 0, 2, 0, 1)         // profiles: SRTP_AES128_CM_HMAC_SHA1_80
	w = append(w, 0)                  // MKI length
	return w
}

// BuildDTLSServerHelloBody constructs a minimal DTLS 1.2 ServerHello
// handshake body accepting the use_srtp profile.
func BuildDTLSServerHelloBody(random [32]byte) []byte {
	w := make([]byte, 0, 64)
	w = append(w, 0xfe, 0xfd) // server_version DTLS 1.2
	w = append(w, random[:]...)
	w = append(w, 0)           // session_id length
	w = append(w, 0xc0, 0x2b)  // chosen cipher suite
	w = append(w, 0)           // null compression
	w = append(w, 0, 9)        // extensions length
	w = append(w, 0, 14, 0, 5) // use_srtp, length 5
	w = append(w, 0, 2, 0, 1)  // profile: SRTP_AES128_CM_HMAC_SHA1_80
	w = append(w, 0)           // MKI length
	return w
}
