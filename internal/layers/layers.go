// Package layers decodes and encodes the link, network, and transport
// headers beneath the RTC payloads this repository analyzes.
//
// The design follows gopacket's layered model in miniature: Decode walks
// a frame from the given link type down to the transport payload and
// returns a Packet whose fields expose each recognized layer. Encoding
// is the inverse and is used by the traffic synthesizers. Only the
// protocols that occur in the paper's dataset are implemented: Ethernet,
// IPv4, IPv6 (fixed header), UDP, and TCP.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// IPProtocol is the IPv4 protocol / IPv6 next-header number.
type IPProtocol uint8

// Protocol numbers used in this repository.
const (
	IPProtocolTCP IPProtocol = 6
	IPProtocolUDP IPProtocol = 17
)

func (p IPProtocol) String() string {
	switch p {
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPPROTO(%d)", uint8(p))
	}
}

// EtherType values recognized by the Ethernet decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("layers: truncated packet")
	ErrUnsupported = errors.New("layers: unsupported protocol")
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	SrcMAC    [6]byte
	DstMAC    [6]byte
	EtherType uint16
}

// IPv4 is a decoded IPv4 header (options preserved opaquely).
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Checksum uint16
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
}

// IPv6 is a decoded IPv6 fixed header. Extension headers other than the
// transport payload are not walked; captures in this dataset do not use
// them.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   IPProtocol
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []byte
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// Packet is a decoded frame. Pointer fields are nil for absent layers;
// when present they point into the Packet's own layer storage, so a
// Packet must not be copied by value.
type Packet struct {
	Ethernet *Ethernet
	IPv4     *IPv4
	IPv6     *IPv6
	UDP      *UDP
	TCP      *TCP
	// Payload is the transport payload (UDP datagram payload or TCP
	// segment payload). It aliases the input buffer.
	Payload []byte

	// Layer storage. DecodeInto fills these in place and points the
	// public fields at them, so one Packet — allocated once by the
	// caller or by Decode — serves any number of decodes without
	// per-frame layer allocations.
	eth Ethernet
	ip4 IPv4
	ip6 IPv6
	udp UDP
	tcp TCP
}

// Src returns the network-layer source address, or the zero Addr.
func (p *Packet) Src() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Src
	case p.IPv6 != nil:
		return p.IPv6.Src
	}
	return netip.Addr{}
}

// Dst returns the network-layer destination address, or the zero Addr.
func (p *Packet) Dst() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Dst
	case p.IPv6 != nil:
		return p.IPv6.Dst
	}
	return netip.Addr{}
}

// Transport returns the transport protocol, source port, and destination
// port; proto is 0 if no transport layer was decoded.
func (p *Packet) Transport() (proto IPProtocol, src, dst uint16) {
	switch {
	case p.UDP != nil:
		return IPProtocolUDP, p.UDP.SrcPort, p.UDP.DstPort
	case p.TCP != nil:
		return IPProtocolTCP, p.TCP.SrcPort, p.TCP.DstPort
	}
	return 0, 0, 0
}

// Decode parses data starting at the given link type. Unknown ether
// types or IP protocols return ErrUnsupported with whatever layers were
// decoded before the unknown one.
func Decode(linkType pcap.LinkType, data []byte) (*Packet, error) {
	pkt := &Packet{}
	return pkt, DecodeInto(pkt, linkType, data)
}

// DecodeInto is Decode into a caller-provided Packet, reusing its layer
// storage: after the first call no per-frame allocations occur. Previous
// layer fields are reset. The decoded Payload and Options slices alias
// data; the caller must copy anything retained past the buffer's reuse.
func DecodeInto(pkt *Packet, linkType pcap.LinkType, data []byte) error {
	pkt.Ethernet, pkt.IPv4, pkt.IPv6, pkt.UDP, pkt.TCP, pkt.Payload =
		nil, nil, nil, nil, nil, nil
	switch linkType {
	case pcap.LinkTypeEthernet:
		if len(data) < 14 {
			return fmt.Errorf("%w: ethernet header", ErrTruncated)
		}
		eth := &pkt.eth
		*eth = Ethernet{EtherType: binary.BigEndian.Uint16(data[12:14])}
		copy(eth.DstMAC[:], data[0:6])
		copy(eth.SrcMAC[:], data[6:12])
		pkt.Ethernet = eth
		switch eth.EtherType {
		case EtherTypeIPv4:
			return decodeIPv4(pkt, data[14:])
		case EtherTypeIPv6:
			return decodeIPv6(pkt, data[14:])
		default:
			return fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, eth.EtherType)
		}
	case pcap.LinkTypeRaw:
		if len(data) == 0 {
			return fmt.Errorf("%w: empty raw frame", ErrTruncated)
		}
		switch data[0] >> 4 {
		case 4:
			return decodeIPv4(pkt, data)
		case 6:
			return decodeIPv6(pkt, data)
		default:
			return fmt.Errorf("%w: IP version %d", ErrUnsupported, data[0]>>4)
		}
	default:
		return fmt.Errorf("%w: link type %v", ErrUnsupported, linkType)
	}
}

func decodeIPv4(pkt *Packet, data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("%w: ipv4 header", ErrTruncated)
	}
	if data[0]>>4 != 4 {
		return fmt.Errorf("%w: ipv4 version field %d", ErrUnsupported, data[0]>>4)
	}
	ihl := data[0] & 0x0f
	hdrLen := int(ihl) * 4
	if hdrLen < 20 || len(data) < hdrLen {
		return fmt.Errorf("%w: ipv4 IHL %d", ErrTruncated, ihl)
	}
	ip := &pkt.ip4
	*ip = IPv4{
		IHL:      ihl,
		TOS:      data[1],
		TotalLen: binary.BigEndian.Uint16(data[2:4]),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Flags:    data[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(data[6:8]) & 0x1fff,
		TTL:      data[8],
		Protocol: IPProtocol(data[9]),
		Checksum: binary.BigEndian.Uint16(data[10:12]),
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
	}
	if hdrLen > 20 {
		ip.Options = data[20:hdrLen]
	}
	pkt.IPv4 = ip
	// Honor TotalLen if it is sane, so trailing link-layer padding does
	// not leak into the transport payload.
	body := data[hdrLen:]
	if tl := int(ip.TotalLen); tl >= hdrLen && tl <= len(data) {
		body = data[hdrLen:tl]
	}
	return decodeTransport(pkt, ip.Protocol, body)
}

func decodeIPv6(pkt *Packet, data []byte) error {
	if len(data) < 40 {
		return fmt.Errorf("%w: ipv6 header", ErrTruncated)
	}
	if data[0]>>4 != 6 {
		return fmt.Errorf("%w: ipv6 version field %d", ErrUnsupported, data[0]>>4)
	}
	ip := &pkt.ip6
	*ip = IPv6{
		TrafficClass: data[0]<<4 | data[1]>>4,
		FlowLabel:    binary.BigEndian.Uint32(data[0:4]) & 0x000fffff,
		PayloadLen:   binary.BigEndian.Uint16(data[4:6]),
		NextHeader:   IPProtocol(data[6]),
		HopLimit:     data[7],
		Src:          netip.AddrFrom16([16]byte(data[8:24])),
		Dst:          netip.AddrFrom16([16]byte(data[24:40])),
	}
	pkt.IPv6 = ip
	body := data[40:]
	if pl := int(ip.PayloadLen); pl <= len(body) {
		body = body[:pl]
	}
	return decodeTransport(pkt, ip.NextHeader, body)
}

func decodeTransport(pkt *Packet, proto IPProtocol, data []byte) error {
	switch proto {
	case IPProtocolUDP:
		if len(data) < 8 {
			return fmt.Errorf("%w: udp header", ErrTruncated)
		}
		udp := &pkt.udp
		*udp = UDP{
			SrcPort:  binary.BigEndian.Uint16(data[0:2]),
			DstPort:  binary.BigEndian.Uint16(data[2:4]),
			Length:   binary.BigEndian.Uint16(data[4:6]),
			Checksum: binary.BigEndian.Uint16(data[6:8]),
		}
		pkt.UDP = udp
		payload := data[8:]
		// The UDP length field covers header+payload; trust it when sane.
		if l := int(udp.Length); l >= 8 && l <= len(data) {
			payload = data[8:l]
		}
		pkt.Payload = payload
		return nil
	case IPProtocolTCP:
		if len(data) < 20 {
			return fmt.Errorf("%w: tcp header", ErrTruncated)
		}
		off := data[12] >> 4
		hdrLen := int(off) * 4
		if hdrLen < 20 || len(data) < hdrLen {
			return fmt.Errorf("%w: tcp data offset %d", ErrTruncated, off)
		}
		tcp := &pkt.tcp
		*tcp = TCP{
			SrcPort:    binary.BigEndian.Uint16(data[0:2]),
			DstPort:    binary.BigEndian.Uint16(data[2:4]),
			Seq:        binary.BigEndian.Uint32(data[4:8]),
			Ack:        binary.BigEndian.Uint32(data[8:12]),
			DataOffset: off,
			Flags:      data[13],
			Window:     binary.BigEndian.Uint16(data[14:16]),
			Checksum:   binary.BigEndian.Uint16(data[16:18]),
			Urgent:     binary.BigEndian.Uint16(data[18:20]),
		}
		if hdrLen > 20 {
			tcp.Options = data[20:hdrLen]
		}
		pkt.TCP = tcp
		pkt.Payload = data[hdrLen:]
		return nil
	default:
		return fmt.Errorf("%w: ip protocol %v", ErrUnsupported, proto)
	}
}
