// Package quicwire parses QUIC packet headers per the version-independent
// invariants (RFC 8999) and QUIC version 1 (RFC 9000).
//
// Only header parsing is implemented: the paper's compliance analysis
// inspects header structure (version, fixed bit, long-header type, CID
// lengths, DCID/SCID consistency across messages) and never decrypts
// payloads. FaceTime is the only studied application using QUIC, and all
// its observed QUIC messages were compliant (long-header types 0, 1, 2
// and short-header packets).
package quicwire

import (
	"errors"
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// Version1 is the QUIC version 1 identifier (RFC 9000).
const Version1 uint32 = 0x00000001

// VersionNegotiation is the reserved version value in Version
// Negotiation packets (RFC 8999 §6).
const VersionNegotiation uint32 = 0

// MaxCIDLen is the maximum connection-ID length in QUIC v1 (RFC 9000
// §17.2).
const MaxCIDLen = 20

// LongPacketType is the 2-bit long-header packet type (QUIC v1).
type LongPacketType uint8

// Long-header packet types (RFC 9000 §17.2).
const (
	TypeInitial   LongPacketType = 0
	TypeZeroRTT   LongPacketType = 1
	TypeHandshake LongPacketType = 2
	TypeRetry     LongPacketType = 3
)

func (t LongPacketType) String() string {
	switch t {
	case TypeInitial:
		return "Initial"
	case TypeZeroRTT:
		return "0-RTT"
	case TypeHandshake:
		return "Handshake"
	case TypeRetry:
		return "Retry"
	}
	return fmt.Sprintf("LongType(%d)", uint8(t))
}

// Header is a parsed QUIC packet header, covering both forms.
type Header struct {
	// Long is true for long-header packets.
	Long bool
	// FixedBit is the second most significant bit of the first byte; it
	// must be 1 in v1 packets (RFC 9000 §17) except Version Negotiation.
	FixedBit bool
	// Version is the long-header version field (0 for Version
	// Negotiation; unset for short headers).
	Version uint32
	// Type is the long-header packet type (valid only when Long and
	// Version != 0).
	Type LongPacketType
	DCID []byte
	SCID []byte
	// SupportedVersions lists versions from a Version Negotiation
	// packet.
	SupportedVersions []uint32
	// TokenLen is the Initial packet token length.
	TokenLen uint64
	// PayloadLength is the long-header Length field (packet number +
	// payload bytes), when present.
	PayloadLength uint64
	// HeaderLen is the number of bytes consumed by the parsed header,
	// up to and including the Length field (long) or the first byte plus
	// DCID (short).
	HeaderLen int
}

// Parsing errors.
var (
	ErrNotQUIC   = errors.New("quicwire: not a QUIC packet")
	ErrTruncated = errors.New("quicwire: truncated packet")
)

// Precomposed parse errors. The DPI probes ParseLongInto at candidate
// offsets where rejection is the common case; a fmt.Errorf per attempt
// showed up in the pipeline's allocation profile.
var (
	errShortLong   = fmt.Errorf("%w: shorter than minimal long header", ErrTruncated)
	errShortFirst  = fmt.Errorf("%w: short-header first byte", ErrNotQUIC)
	errBadDCIDLen  = fmt.Errorf("%w: DCID length exceeds v1 maximum", ErrNotQUIC)
	errBadSCIDLen  = fmt.Errorf("%w: SCID length exceeds v1 maximum", ErrNotQUIC)
	errShortCIDs   = fmt.Errorf("%w: connection IDs", ErrTruncated)
	errBadVNList   = fmt.Errorf("%w: version list not a multiple of 4", ErrNotQUIC)
	errShortFields = fmt.Errorf("%w: long header fields", ErrTruncated)
	errBadLength   = fmt.Errorf("%w: length exceeds remaining bytes", ErrTruncated)
)

// ReadVarint decodes a QUIC variable-length integer (RFC 9000 §16) from
// the reader.
func ReadVarint(r *bytesutil.Reader) uint64 {
	b0 := r.Uint8()
	switch b0 >> 6 {
	case 0:
		return uint64(b0 & 0x3f)
	case 1:
		return uint64(b0&0x3f)<<8 | uint64(r.Uint8())
	case 2:
		v := uint64(b0&0x3f) << 24
		v |= uint64(r.Uint8()) << 16
		v |= uint64(r.Uint8()) << 8
		v |= uint64(r.Uint8())
		return v
	default:
		v := uint64(b0&0x3f) << 56
		for shift := 48; shift >= 0; shift -= 8 {
			v |= uint64(r.Uint8()) << shift
		}
		return v
	}
}

// AppendVarint encodes v as a QUIC varint using the smallest form.
func AppendVarint(w *bytesutil.Writer, v uint64) {
	switch {
	case v < 1<<6:
		w.Uint8(uint8(v))
	case v < 1<<14:
		w.Uint16(uint16(v) | 0x4000)
	case v < 1<<30:
		w.Uint32(uint32(v) | 0x8000_0000)
	default:
		w.Uint64(v | 0xc000_0000_0000_0000)
	}
}

// IsLongHeader reports whether b begins with a long-header first byte.
func IsLongHeader(b []byte) bool {
	return len(b) > 0 && b[0]&0x80 != 0
}

// ParseLong parses a long-header packet (including Version Negotiation)
// from the start of b. The returned header's CID slices are fresh
// copies, safe to retain after b is reused.
func ParseLong(b []byte) (*Header, error) {
	h := new(Header)
	if err := ParseLongInto(h, b); err != nil {
		return nil, err
	}
	h.DCID = cloneBytes(h.DCID)
	h.SCID = cloneBytes(h.SCID)
	return h, nil
}

// ParseLongInto is ParseLong into a caller-provided Header, reusing its
// SupportedVersions storage. The DCID and SCID slices alias b: a caller
// that retains the header past b's lifetime must copy them (see
// Header.CloneCIDs). On error *h is partially overwritten.
func ParseLongInto(h *Header, b []byte) error {
	if len(b) < 7 {
		return errShortLong
	}
	if b[0]&0x80 == 0 {
		return errShortFirst
	}
	r := bytesutil.NewReader(b)
	first := r.Uint8()
	*h = Header{
		Long:              true,
		FixedBit:          first&0x40 != 0,
		Version:           r.Uint32(),
		SupportedVersions: h.SupportedVersions[:0],
	}
	dcidLen := int(r.Uint8())
	if dcidLen > MaxCIDLen && h.Version == Version1 {
		return errBadDCIDLen
	}
	h.DCID = r.Bytes(dcidLen)
	scidLen := int(r.Uint8())
	if scidLen > MaxCIDLen && h.Version == Version1 {
		return errBadSCIDLen
	}
	h.SCID = r.Bytes(scidLen)
	if r.Failed() {
		return errShortCIDs
	}
	if h.Version == VersionNegotiation {
		for r.Remaining() >= 4 {
			h.SupportedVersions = append(h.SupportedVersions, r.Uint32())
		}
		if r.Remaining() != 0 {
			return errBadVNList
		}
		if len(h.SupportedVersions) == 0 {
			h.SupportedVersions = nil
		}
		h.HeaderLen = r.Offset()
		return nil
	}
	h.SupportedVersions = nil
	h.Type = LongPacketType(first >> 4 & 0b11)
	switch h.Type {
	case TypeInitial:
		h.TokenLen = ReadVarint(r)
		r.Skip(int(h.TokenLen))
		h.PayloadLength = ReadVarint(r)
	case TypeZeroRTT, TypeHandshake:
		h.PayloadLength = ReadVarint(r)
	case TypeRetry:
		// Retry packets carry a token and integrity tag; no length.
	}
	if r.Failed() {
		return errShortFields
	}
	if h.Type != TypeRetry && h.PayloadLength > uint64(r.Remaining()) {
		return errBadLength
	}
	h.HeaderLen = r.Offset()
	return nil
}

// CloneCIDs replaces the header's DCID and SCID with fresh copies,
// detaching a ParseLongInto result from the input buffer.
func (h *Header) CloneCIDs() {
	h.DCID = cloneBytes(h.DCID)
	h.SCID = cloneBytes(h.SCID)
}

// cloneBytes copies b, preserving nil-ness (a zero-length parse result
// stays a non-nil empty slice, as BytesCopy produced).
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ParseShort parses a short-header packet given the connection-ID length
// negotiated for the path (QUIC short headers do not encode the DCID
// length; the receiver must know it).
func ParseShort(b []byte, cidLen int) (*Header, error) {
	if len(b) < 1+cidLen {
		return nil, fmt.Errorf("%w: %d bytes for cid length %d", ErrTruncated, len(b), cidLen)
	}
	if b[0]&0x80 != 0 {
		return nil, fmt.Errorf("%w: long-header first byte", ErrNotQUIC)
	}
	h := &Header{
		FixedBit:  b[0]&0x40 != 0,
		DCID:      append([]byte(nil), b[1:1+cidLen]...),
		HeaderLen: 1 + cidLen,
	}
	return h, nil
}

// LooksLikeLongHeader reports whether b plausibly begins with a QUIC v1
// (or Version Negotiation) long-header packet. This is the DPI candidate
// pattern: header form bit, a known version, and parseable CIDs.
func LooksLikeLongHeader(b []byte) bool {
	if len(b) < 7 || b[0]&0x80 == 0 {
		return false
	}
	var h Header // stack scratch: only version and fixed bit are read
	if ParseLongInto(&h, b) != nil {
		return false
	}
	if h.Version != Version1 && h.Version != VersionNegotiation {
		return false
	}
	if h.Version == Version1 && !h.FixedBit {
		return false
	}
	return true
}
