package rtcp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sampleSR() *SenderReport {
	return &SenderReport{
		SSRC: 0x01020304,
		Info: SenderInfo{
			NTPTimestamp: 0xe000000012345678,
			RTPTimestamp: 160000,
			PacketCount:  500,
			OctetCount:   80000,
		},
		Reports: []ReportBlock{{
			SSRC:             0x0a0b0c0d,
			FractionLost:     12,
			CumulativeLost:   300,
			HighestSeq:       70000,
			Jitter:           42,
			LastSR:           0x11112222,
			DelaySinceLastSR: 655,
		}},
	}
}

func TestSRRoundTrip(t *testing.T) {
	raw := EncodeSR(sampleSR())
	p, err := DecodePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Type != TypeSenderReport || p.Header.Count != 1 {
		t.Errorf("header = %+v", p.Header)
	}
	if p.Header.ByteLen() != len(raw) {
		t.Errorf("ByteLen = %d, want %d", p.Header.ByteLen(), len(raw))
	}
	if !p.ParseOK || p.SR == nil {
		t.Fatal("SR did not parse")
	}
	want := sampleSR()
	if p.SR.SSRC != want.SSRC || p.SR.Info != want.Info {
		t.Errorf("SR = %+v", p.SR)
	}
	if len(p.SR.Reports) != 1 || p.SR.Reports[0] != want.Reports[0] {
		t.Errorf("reports = %+v", p.SR.Reports)
	}
	if ssrc, ok := p.SenderSSRC(); !ok || ssrc != 0x01020304 {
		t.Errorf("SenderSSRC = %#x, %v", ssrc, ok)
	}
}

func TestRRRoundTrip(t *testing.T) {
	rr := &ReceiverReport{SSRC: 7, Reports: []ReportBlock{{SSRC: 8}, {SSRC: 9}}}
	p, err := DecodePacket(EncodeRR(rr))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.RR == nil || len(p.RR.Reports) != 2 {
		t.Fatalf("RR = %+v", p.RR)
	}
	if p.RR.SSRC != 7 || p.RR.Reports[1].SSRC != 9 {
		t.Errorf("RR = %+v", p.RR)
	}
}

func TestSDESRoundTrip(t *testing.T) {
	s := &SDES{Chunks: []SDESChunk{
		{SSRC: 1, Items: []SDESItem{{Type: SDESCNAME, Text: "user@host.example"}}},
		{SSRC: 2, Items: []SDESItem{{Type: SDESTool, Text: "rtcc"}, {Type: SDESNote, Text: "x"}}},
	}}
	p, err := DecodePacket(EncodeSDES(s))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.SDES == nil || len(p.SDES.Chunks) != 2 {
		t.Fatalf("SDES = %+v", p.SDES)
	}
	c0 := p.SDES.Chunks[0]
	if c0.SSRC != 1 || len(c0.Items) != 1 || c0.Items[0].Text != "user@host.example" {
		t.Errorf("chunk 0 = %+v", c0)
	}
	c1 := p.SDES.Chunks[1]
	if c1.SSRC != 2 || len(c1.Items) != 2 || c1.Items[0].Type != SDESTool {
		t.Errorf("chunk 1 = %+v", c1)
	}
}

func TestByeRoundTrip(t *testing.T) {
	b := &Bye{SSRCs: []uint32{0xaaaa, 0xbbbb}, Reason: "teardown"}
	p, err := DecodePacket(EncodeBye(b))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.BYE == nil {
		t.Fatal("BYE did not parse")
	}
	if len(p.BYE.SSRCs) != 2 || p.BYE.SSRCs[1] != 0xbbbb || p.BYE.Reason != "teardown" {
		t.Errorf("BYE = %+v", p.BYE)
	}
}

func TestAppRoundTrip(t *testing.T) {
	a := &App{Subtype: 3, SSRC: 99, Name: [4]byte{'z', 'o', 'o', 'm'}, Data: []byte{1, 2, 3, 4}}
	p, err := DecodePacket(EncodeApp(a))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.APP == nil {
		t.Fatal("APP did not parse")
	}
	if p.APP.Subtype != 3 || p.APP.SSRC != 99 || string(p.APP.Name[:]) != "zoom" || !bytes.Equal(p.APP.Data, a.Data) {
		t.Errorf("APP = %+v", p.APP)
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	fb := &Feedback{FMT: FBNack, SenderSSRC: 5, MediaSSRC: 6, FCI: []byte{0, 10, 0, 0}}
	p, err := DecodePacket(EncodeFeedback(TypeRTPFB, fb))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.FB == nil {
		t.Fatal("FB did not parse")
	}
	if p.FB.FMT != FBNack || p.FB.SenderSSRC != 5 || p.FB.MediaSSRC != 6 || !bytes.Equal(p.FB.FCI, fb.FCI) {
		t.Errorf("FB = %+v", p.FB)
	}
	// PSFB PLI has empty FCI.
	pli := &Feedback{FMT: FBPLI, SenderSSRC: 1, MediaSSRC: 2}
	p2, err := DecodePacket(EncodeFeedback(TypePSFB, pli))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.ParseOK || p2.FB == nil || len(p2.FB.FCI) != 0 {
		t.Errorf("PLI = %+v", p2.FB)
	}
}

func TestXRRoundTrip(t *testing.T) {
	x := &XR{SSRC: 77, Blocks: []XRBlock{
		{BlockType: 4, TypeSpecific: 0, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8}}, // RRT
		{BlockType: 5, TypeSpecific: 0, Contents: []byte{9, 9, 9, 9}},             // DLRR
	}}
	p, err := DecodePacket(EncodeXR(x))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ParseOK || p.XR == nil || len(p.XR.Blocks) != 2 {
		t.Fatalf("XR = %+v", p.XR)
	}
	if p.XR.SSRC != 77 || p.XR.Blocks[0].BlockType != 4 || len(p.XR.Blocks[0].Contents) != 8 {
		t.Errorf("XR = %+v", p.XR)
	}
}

func TestUndefinedTypeKeptRaw(t *testing.T) {
	raw := EncodeRaw(PacketType(210), 2, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	p, err := DecodePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Type != PacketType(210) || p.ParseOK {
		t.Errorf("packet = %+v", p)
	}
	if len(p.Body) != 8 {
		t.Errorf("body = %v", p.Body)
	}
	if Defined(PacketType(210)) {
		t.Error("210 should be undefined")
	}
	if !Defined(TypeApp) {
		t.Error("204 should be defined")
	}
}

func TestPaddingStripped(t *testing.T) {
	raw := EncodeRaw(TypeApp, 0, []byte{0, 0, 0, 9, 'n', 'a', 'm', 'e', 1, 2, 3, 4})
	// Manually add a padded variant: 4 pad bytes, last byte = 4.
	padded := append(raw[:len(raw)], 0, 0, 0, 4)
	padded[0] |= 0x20
	padded[3] = byte((len(padded))/4 - 1)
	p, err := DecodePacket(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Header.Padding {
		t.Error("padding flag lost")
	}
	if len(p.Body) != 12 {
		t.Errorf("body len = %d, want 12 (padding not stripped)", len(p.Body))
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := DecodePacket([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Error("short packet accepted")
	}
	if _, err := DecodePacket([]byte{0x40, 200, 0, 0}); !errors.Is(err, ErrNotRTCP) {
		t.Error("version 1 accepted")
	}
	if _, err := DecodePacket([]byte{0x80, 200, 0, 9}); !errors.Is(err, ErrTruncated) {
		t.Error("overlong declared length accepted")
	}
}

func TestMalformedBodiesNotParseOK(t *testing.T) {
	// SR that declares one report block but has no room for it.
	raw := EncodeRaw(TypeSenderReport, 1, make([]byte, 24)) // sender info only
	p, err := DecodePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.ParseOK {
		t.Error("truncated SR parsed OK")
	}
	// SDES declaring a chunk with no bytes.
	p2, err := DecodePacket(EncodeRaw(TypeSDES, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if p2.ParseOK {
		t.Error("empty SDES with count=1 parsed OK")
	}
	// Feedback with only 4 body bytes.
	p3, err := DecodePacket(EncodeRaw(TypeRTPFB, 1, []byte{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if p3.ParseOK {
		t.Error("short feedback parsed OK")
	}
}

func TestCompoundRoundTrip(t *testing.T) {
	comp := Compound(
		EncodeSR(sampleSR()),
		EncodeSDES(&SDES{Chunks: []SDESChunk{{SSRC: 1, Items: []SDESItem{{Type: SDESCNAME, Text: "a@b"}}}}}),
		EncodeBye(&Bye{SSRCs: []uint32{1}}),
	)
	pkts, trailing, err := DecodeCompound(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("%d packets", len(pkts))
	}
	if pkts[0].Header.Type != TypeSenderReport || pkts[1].Header.Type != TypeSDES || pkts[2].Header.Type != TypeBye {
		t.Errorf("types = %v %v %v", pkts[0].Header.Type, pkts[1].Header.Type, pkts[2].Header.Type)
	}
	if len(trailing) != 0 {
		t.Errorf("trailing = %v", trailing)
	}
}

// The Discord case: one extra byte after the compound must surface as a
// trailing byte.
func TestCompoundTrailingBytes(t *testing.T) {
	comp := Compound(EncodeSR(sampleSR()))
	comp = append(comp, 0x80) // direction flag
	pkts, trailing, err := DecodeCompound(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("%d packets", len(pkts))
	}
	if !bytes.Equal(trailing, []byte{0x80}) {
		t.Errorf("trailing = %v", trailing)
	}
}

// The SRTCP case: a 14-byte trailer (4-byte E+index, 10-byte auth tag)
// after an encrypted body must surface as trailing bytes.
func TestCompoundSRTCPTrailer(t *testing.T) {
	comp := Compound(EncodeSR(sampleSR()))
	trailer := append([]byte{0x80, 0, 0, 1}, bytes.Repeat([]byte{0xcc}, 10)...)
	comp = append(comp, trailer...)
	pkts, trailing, err := DecodeCompound(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || len(trailing) != 14 {
		t.Errorf("pkts=%d trailing=%d", len(pkts), len(trailing))
	}
}

func TestCompoundFirstPacketInvalid(t *testing.T) {
	if _, _, err := DecodeCompound([]byte{0x00, 0x01, 0x02, 0x03}); err == nil {
		t.Error("junk accepted as compound")
	}
}

func TestLooksLikeHeader(t *testing.T) {
	if !LooksLikeHeader(EncodeSR(sampleSR())) {
		t.Error("valid SR rejected")
	}
	if LooksLikeHeader([]byte{0x80, 100, 0, 0}) {
		t.Error("packet type 100 accepted (outside RTCP range)")
	}
	if LooksLikeHeader([]byte{0x80, 224, 0, 0}) {
		t.Error("packet type 224 accepted")
	}
	if LooksLikeHeader([]byte{0x80, 200, 0, 64}) {
		t.Error("declared length beyond buffer accepted")
	}
	// Reserved-but-in-range types are candidates (undefined types must
	// surface for compliance checking).
	if !LooksLikeHeader([]byte{0x80, 210, 0, 0}) {
		t.Error("in-range undefined type rejected")
	}
}

func TestPacketTypeString(t *testing.T) {
	want := map[PacketType]string{
		TypeSenderReport: "SR (200)", TypeReceiverReport: "RR (201)",
		TypeSDES: "SDES (202)", TypeBye: "BYE (203)", TypeApp: "APP (204)",
		TypeRTPFB: "RTPFB (205)", TypePSFB: "PSFB (206)", TypeXR: "XR (207)",
		PacketType(199): "RTCP(199)",
	}
	for pt, s := range want {
		if pt.String() != s {
			t.Errorf("%d.String() = %q, want %q", uint8(pt), pt.String(), s)
		}
	}
}

// Property: SR encode→decode identity for arbitrary field values.
func TestQuickSRIdentity(t *testing.T) {
	f := func(ssrc uint32, ntp uint64, rtpts, pc, oc uint32) bool {
		sr := &SenderReport{SSRC: ssrc, Info: SenderInfo{ntp, rtpts, pc, oc}}
		p, err := DecodePacket(EncodeSR(sr))
		if err != nil || !p.ParseOK {
			return false
		}
		return p.SR.SSRC == ssrc && p.SR.Info == sr.Info
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DecodePacket and DecodeCompound never panic on arbitrary
// bytes, and every decoded packet's Raw length matches its header.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		if p, err := DecodePacket(b); err == nil {
			if len(p.Raw) != p.Header.ByteLen() {
				return false
			}
		}
		pkts, trailing, _ := DecodeCompound(b)
		total := len(trailing)
		for _, p := range pkts {
			total += p.Header.ByteLen()
		}
		return len(pkts) == 0 || total == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
