package live

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

var t0 = time.Unix(1700000000, 0).UTC()

func TestEncapsulateRoundTrip(t *testing.T) {
	pkt := pcap.Packet{Timestamp: t0.Add(123456 * time.Microsecond), Data: []byte{1, 2, 3, 4}}
	wire := Encapsulate(42, pkt)
	seq, got, err := Decapsulate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || !got.Timestamp.Equal(pkt.Timestamp) || !bytes.Equal(got.Data, pkt.Data) {
		t.Errorf("round trip: seq=%d ts=%v data=%v", seq, got.Timestamp, got.Data)
	}
}

func TestDecapsulateRejects(t *testing.T) {
	if _, _, err := Decapsulate([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
	bad := Encapsulate(1, pcap.Packet{Timestamp: t0, Data: []byte{9}})
	bad[0] = 'X'
	if _, _, err := Decapsulate(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

// Full loop over the loopback interface: generate a capture, replay it
// through a real UDP socket pair, collect it, analyze it, and compare
// against direct in-memory analysis.
func TestLoopbackReplayAnalysis(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.Discord, Network: appsim.WiFiRelay, Seed: 8,
		Start: t0, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
		MediaRate: 10, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()

	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.IdleTimeout = time.Second

	exp, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// Pace the replay 100x faster than real time rather than blasting:
	// even with a large receive buffer, a zero-gap burst can outrun the
	// loopback path.
	exp.Speed = 100

	errc := make(chan error, 1)
	go func() { errc <- exp.Replay(context.Background(), frames) }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := col.Collect(ctx, len(frames))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// Loopback UDP may drop under burst; require the vast majority.
	if len(got) < len(frames)*95/100 {
		t.Fatalf("collected %d of %d frames", len(got), len(frames))
	}
	if col.Dropped != 0 {
		t.Errorf("dropped %d datagrams", col.Dropped)
	}

	live, err := core.AnalyzeCapture(core.CaptureInput{
		Label: "live", LinkType: pcap.LinkTypeRaw, Packets: got,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, core.Options{SkipFindings: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.AnalyzeCapture(core.CaptureInput{
		Label: "direct", LinkType: pcap.LinkTypeRaw, Packets: frames,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, core.Options{SkipFindings: true})
	if err != nil {
		t.Fatal(err)
	}
	lc, lt := live.Stats.TypeCompliance(0)
	dc, dt := direct.Stats.TypeCompliance(0)
	if lc != dc || lt != dt {
		t.Errorf("type compliance differs: live %d/%d vs direct %d/%d", lc, lt, dc, dt)
	}
}

func TestReplayPacing(t *testing.T) {
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.Speed = 10 // 10x faster than real time

	// Three frames spanning 1 second of capture time -> ~100ms replay.
	frames := []pcap.Packet{
		{Timestamp: t0, Data: []byte{1}},
		{Timestamp: t0.Add(500 * time.Millisecond), Data: []byte{2}},
		{Timestamp: t0.Add(time.Second), Data: []byte{3}},
	}
	begin := time.Now()
	if err := exp.Replay(context.Background(), frames); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	if elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("paced replay took %v, want ≈100ms", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	col.IdleTimeout = 500 * time.Millisecond
	got, err := col.Collect(ctx, 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("collected %d, err %v", len(got), err)
	}
}

func TestReplayCancel(t *testing.T) {
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.Speed = 1 // real time: second frame is an hour away

	frames := []pcap.Packet{
		{Timestamp: t0, Data: []byte{1}},
		{Timestamp: t0.Add(time.Hour), Data: []byte{2}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := exp.Replay(ctx, frames); err == nil {
		t.Error("cancelled replay returned nil")
	}
}

func TestCollectorIdleTimeout(t *testing.T) {
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.IdleTimeout = 200 * time.Millisecond
	begin := time.Now()
	got, err := col.Collect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("frames from silence: %d", len(got))
	}
	if time.Since(begin) > 2*time.Second {
		t.Error("idle timeout did not fire promptly")
	}
}

func TestCollectorCountsJunk(t *testing.T) {
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.IdleTimeout = 200 * time.Millisecond

	exp, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// One junk datagram, one real frame.
	if _, err := exp.conn.Write([]byte("junk datagram without magic")); err != nil {
		t.Fatal(err)
	}
	if err := exp.Send(pcap.Packet{Timestamp: t0, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	got, err := col.Collect(context.Background(), 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d frames, err %v", len(got), err)
	}
	if col.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", col.DecodeErrors)
	}
	if col.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (junk is a decode error, not a loss)", col.Dropped)
	}
}

// TestCollectorFilterDropsBeforeCopy checks the Filter hook end to end:
// rejected frames are counted but never delivered, sequence accounting
// still sees them, and the filter observes a zero-copy view.
func TestCollectorFilterDropsBeforeCopy(t *testing.T) {
	col, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.IdleTimeout = 200 * time.Millisecond
	col.Filter = func(pkt pcap.Packet) bool { return len(pkt.Data) > 1 }

	exp, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Send(pcap.Packet{Timestamp: t0, Data: []byte{1}}); err != nil { // filtered
		t.Fatal(err)
	}
	if err := exp.Send(pcap.Packet{Timestamp: t0, Data: []byte{2, 3}}); err != nil { // kept
		t.Fatal(err)
	}
	got, err := col.Collect(context.Background(), 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d frames, err %v", len(got), err)
	}
	if !bytes.Equal(got[0].Data, []byte{2, 3}) {
		t.Errorf("delivered frame = %v, want the unfiltered one", got[0].Data)
	}
	if col.FilteredOut != 1 {
		t.Errorf("FilteredOut = %d, want 1", col.FilteredOut)
	}
	if col.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (a filtered frame is not a loss)", col.Dropped)
	}
}

// TestCollectorDropPathAllocs pins the filter-drop path to zero
// allocations per datagram: a frame the Filter rejects must be judged
// on the zero-copy decapsulation view and discarded without the
// copy-out. Exercised directly on handleDatagram, below the socket.
func TestCollectorDropPathAllocs(t *testing.T) {
	wire := Encapsulate(1, pcap.Packet{Timestamp: t0, Data: bytes.Repeat([]byte{0xab}, 512)})
	col := &Collector{Filter: func(pcap.Packet) bool { return false }}
	var sc streamCounters // inert handles, as with a nil Metrics registry
	fn := func(pcap.Packet) error {
		t.Error("filtered frame delivered")
		return nil
	}
	allocs := testing.AllocsPerRun(1000, func() {
		delivered, err := col.handleDatagram(wire, sc, fn)
		if delivered || err != nil {
			t.Fatalf("handleDatagram = (%v, %v), want dropped", delivered, err)
		}
	})
	if allocs != 0 {
		t.Errorf("filter-drop path allocates %.1f/op, want 0", allocs)
	}
}
