package obs

import "fmt"

// Lint validates an event stream against the trace invariants the
// exporter guarantees, returning one message per violation (empty =
// clean). rtctrace -lint exposes it; the trace-smoke CI step runs it
// over a real rtccheck -trace-out export.
//
// Invariants checked:
//
//   - every kind belongs to the taxonomy;
//   - every event names a span; child spans name a parent that emitted
//     a capture-begin;
//   - per-span sequence numbers are strictly increasing (gaps are
//     legal: they mark sampled-out events);
//   - kind-specific required fields are present (a probe has an
//     outcome, a filtered stream names its rule, a failing verdict
//     has a criterion in 1-5 and a reason, a truncated marker has a
//     positive drop count).
func Lint(events []Event) []string {
	var problems []string
	bad := func(i int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("event %d: %s", i+1, fmt.Sprintf(format, args...)))
	}
	known := make(map[Kind]bool, len(Kinds))
	for _, k := range Kinds {
		known[k] = true
	}
	captures := map[string]bool{}
	for _, ev := range events {
		if ev.Kind == KindCaptureBegin {
			captures[ev.Span] = true
		}
	}
	lastSeq := map[string]uint64{}
	seen := map[string]bool{}
	for i, ev := range events {
		if !known[ev.Kind] {
			bad(i, "unknown kind %q", ev.Kind)
			continue
		}
		if ev.Span == "" {
			bad(i, "%s: empty span", ev.Kind)
			continue
		}
		if ev.Parent != "" && !captures[ev.Parent] {
			bad(i, "%s: parent span %s has no capture-begin", ev.Kind, ev.Parent)
		}
		if seen[ev.Span] && ev.Seq <= lastSeq[ev.Span] {
			bad(i, "%s: span %s seq %d not above %d", ev.Kind, ev.Span, ev.Seq, lastSeq[ev.Span])
		}
		seen[ev.Span] = true
		lastSeq[ev.Span] = ev.Seq

		switch ev.Kind {
		case KindCaptureBegin, KindCaptureEnd:
			if ev.App == "" {
				bad(i, "%s: missing app", ev.Kind)
			}
		case KindStreamAdmitted, KindStreamEvicted, KindStreamReclassified:
			if ev.Stream == "" {
				bad(i, "%s: missing stream", ev.Kind)
			}
		case KindStreamFiltered:
			if ev.Stream == "" {
				bad(i, "%s: missing stream", ev.Kind)
			}
			if ev.Rule == "" {
				bad(i, "%s: missing rule", ev.Kind)
			}
			if ev.Stage != 1 && ev.Stage != 2 {
				bad(i, "%s: stage %d outside 1-2", ev.Kind, ev.Stage)
			}
		case KindProbeAttempt:
			if ev.Outcome != OutcomeMatch && ev.Outcome != OutcomeShift {
				bad(i, "probe: outcome %q not match/shift", ev.Outcome)
			}
			if ev.Outcome == OutcomeMatch && ev.Proto == "" {
				bad(i, "probe: match without protocol")
			}
			if ev.Dgram <= 0 {
				bad(i, "probe: missing datagram ordinal")
			}
		case KindExtraction:
			if ev.Class == "" {
				bad(i, "extraction: missing class")
			}
			if ev.Dgram <= 0 {
				bad(i, "extraction: missing datagram ordinal")
			}
		case KindCriterionVerdict:
			if ev.Criterion < 0 || ev.Criterion > 5 {
				bad(i, "verdict: criterion %d outside 0-5", ev.Criterion)
			}
			if ev.Criterion > 0 && ev.Reason == "" {
				bad(i, "verdict: failing criterion %d without reason", ev.Criterion)
			}
			if ev.MsgType == "" {
				bad(i, "verdict: missing message type")
			}
		case KindFindingEmitted:
			if ev.Rule == "" {
				bad(i, "finding: missing kind")
			}
		case KindTruncated:
			if ev.Dropped <= 0 {
				bad(i, "truncated: non-positive drop count %d", ev.Dropped)
			}
		}
	}
	return problems
}
