package metrics

import "sync/atomic"

// counterShards is the number of independent cells in a ShardedCounter.
// Power of two, sized for the pipeline's worker-pool ceiling; handles
// are assigned round-robin so two workers share a cell only when more
// than counterShards handles are live.
const counterShards = 16

// shard is one cache-line-padded counter cell. The padding keeps
// neighbouring shards out of the same cache line so per-worker
// increments do not false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a monotonically increasing counter split across
// padded per-worker cells, folded at read time. Use it instead of
// Counter for metrics incremented on the per-datagram hot path by many
// workers at once: a plain atomic counter serialises every worker on
// one cache line, a sharded one lets each worker increment its own.
//
// Workers obtain a Handle once (at stream or worker setup) and
// increment through it; Value and Snapshot fold the cells. A nil
// *ShardedCounter hands out inert handles, preserving the package's
// nil-registry zero-cost contract.
type ShardedCounter struct {
	shards [counterShards]shard
	next   atomic.Uint32
}

// Handle returns a view bound to one cell, assigned round-robin.
// Handles are cheap value types; acquire one per worker (or per
// stream) at setup time, not per operation.
func (c *ShardedCounter) Handle() CounterHandle {
	if c == nil {
		return CounterHandle{}
	}
	i := c.next.Add(1) - 1
	return CounterHandle{v: &c.shards[i%counterShards].v}
}

// Add folds n into the first cell. It is for setup-time or cold-path
// adjustments; hot-path callers should hold a Handle.
func (c *ShardedCounter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[0].v.Add(n)
}

// Value folds every cell into the counter's total (0 for nil).
func (c *ShardedCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// CounterHandle is a worker's private view of one ShardedCounter cell.
// The zero value (and any handle from a nil counter) ignores every
// operation, mirroring nil *Counter.
type CounterHandle struct {
	v *atomic.Uint64
}

// Inc adds one.
func (h CounterHandle) Inc() {
	if h.v == nil {
		return
	}
	h.v.Add(1)
}

// Add adds n.
func (h CounterHandle) Add(n uint64) {
	if h.v == nil {
		return
	}
	h.v.Add(n)
}

// Sharded returns (creating on first use) the sharded counter with the
// given name and labels. It shares the counter namespace: Snapshot
// folds it into the counters map under the same canonical name, so a
// metric should be either a Counter or a ShardedCounter, not both.
// Returns nil on a nil registry.
func (r *Registry) Sharded(name string, labels ...Label) *ShardedCounter {
	if r == nil {
		return nil
	}
	key := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sharded == nil {
		r.sharded = make(map[string]*ShardedCounter)
	}
	c, ok := r.sharded[key]
	if !ok {
		c = &ShardedCounter{}
		r.sharded[key] = c
	}
	return c
}
