package appsim

import (
	"encoding/binary"
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// Discord wire behaviour (paper §5.2.2, §5.2.3, §5.3):
//
//   - RTP and RTCP only; no STUN at all (media always rides through
//     Discord's relay infrastructure in every network configuration);
//   - 4.91% of RTP messages carry one-byte-form (0xBEDE) header
//     extensions whose element ID is 0 with a non-zero length;
//   - 2.58% of RTP messages use undefined extension profiles in
//     0x0084-0xFBD2, exclusively on payload type 120;
//   - every RTCP message is encrypted with a proprietary scheme (not
//     SRTCP) and ends with a 3-byte trailer: a 2-byte monotonic counter
//     and a direction byte (0x80 client→server, 0x00 server→client);
//   - ~25% of Transport Layer Feedback (205) messages use sender
//     SSRC 0.
var discordRTPPayloads = []uint8{96, 101, 102, 120}

var discordRTCPTypes = []rtcp.PacketType{
	rtcp.TypeSenderReport, rtcp.TypeReceiverReport, rtcp.TypeApp,
	rtcp.TypeRTPFB, rtcp.TypePSFB,
}

func generateDiscord(e *env) {
	cfg := e.cfg
	caller := netip.AddrPortFrom(e.callerLocal, 50030)
	server := netip.AddrPortFrom(e.serverAddr, 50001) // Discord voice port

	streams := []struct {
		ms  *mediaStream
		out bool
	}{
		{newMediaStream(e.rng, e.rng.Uint32(), 120, 960), true},
		{newMediaStream(e.rng, e.rng.Uint32(), 96, 3000), true},
		{newMediaStream(e.rng, e.rng.Uint32(), 120, 960), false},
		{newMediaStream(e.rng, e.rng.Uint32(), 96, 3000), false},
	}

	rate := cfg.rate()
	interval := time.Second / time.Duration(rate)
	end := cfg.Start.Add(cfg.Duration)
	tick := 0
	ptIdx := 0
	rtcpIdx := 0
	var rtcpCounter uint16 = 1
	fbCount := 0

	for at := cfg.Start; at.Before(end); at = at.Add(interval) {
		for i := range streams {
			st := &streams[i]
			tick++
			src, dst := caller, server
			dirByte := byte(0x80) // client→server
			if !st.out {
				src, dst = server, caller
				dirByte = 0x00
			}

			// RTCP ≈ 7.9/91.4 of media cadence (coprime to the stream count
			// so both directions and all SSRCs emit RTCP).
			if tick%13 == 0 {
				t := discordRTCPTypes[rtcpIdx%len(discordRTCPTypes)]
				rtcpIdx++
				payload := discordRTCP(e, t, st.ms, &fbCount)
				// Proprietary trailer: 2-byte monotonic counter plus the
				// direction byte.
				var trailer [3]byte
				binary.BigEndian.PutUint16(trailer[:2], rtcpCounter)
				rtcpCounter++
				trailer[2] = dirByte
				e.push(at.Add(e.jitter(3)), src, dst, append(payload, trailer[:]...))
				continue
			}

			st.ms.pt = discordRTPPayloads[ptIdx%len(discordRTPPayloads)]
			ptIdx++
			size := 110
			video := i%2 == 1
			if video {
				size = e.mediaSize(at, true, 550+e.rng.IntN(450))
			}

			var ext *rtp.Extension
			switch {
			case tick%39 == 0: // ≈2.58%: undefined profile, pt 120 only
				st.ms.pt = 120
				profile := uint16(0x0084 + e.rng.IntN(0xFBD2-0x0084))
				if profile == rtp.ProfileOneByte || profile&rtp.ProfileTwoByteMask == rtp.ProfileTwoByteBase {
					profile = 0x0085
				}
				ext = &rtp.Extension{Profile: profile, Data: e.rng.Bytes(8)}
			case tick%21 == 7: // ≈4.91%: BEDE with ID=0 and a length
				ext = &rtp.Extension{
					Profile: rtp.ProfileOneByte,
					// First byte 0x02: ID 0, length nibble 2 → 3 payload
					// bytes, violating RFC 8285's padding semantics.
					Data: []byte{0x02, 0xd1, 0xd2, 0xd3, 0x31, 0xee, 0x00, 0x00},
				}
			case tick%5 == 0: // ordinary compliant extension
				ext = &rtp.Extension{
					Profile:  rtp.ProfileOneByte,
					Elements: []rtp.ExtensionElement{{ID: 1, Payload: e.rng.Bytes(3)}},
				}
			}
			e.push(e.mediaAt(at, video, 3), src, dst, st.ms.next(size, ext, false).Encode())

			// Fully proprietary control datagrams ≈0.7%.
			if tick%141 == 0 {
				e.push(at.Add(e.jitter(4)), src, dst, append([]byte{0x13, 0x37}, e.rng.Bytes(20)...))
			}
		}
	}
}

// discordRTCP builds an RTCP packet with a proprietarily encrypted body:
// valid header and SSRC, opaque contents (the paper could not decode NTP
// timestamps and found no SRTCP fields).
func discordRTCP(e *env, t rtcp.PacketType, ms *mediaStream, fbCount *int) []byte {
	switch t {
	case rtcp.TypeSenderReport:
		body := make([]byte, 24)
		binary.BigEndian.PutUint32(body[:4], ms.ssrc)
		copy(body[4:], e.rng.Bytes(20)) // encrypted sender info
		return rtcp.EncodeRaw(t, 0, body)
	case rtcp.TypeReceiverReport:
		body := make([]byte, 4)
		binary.BigEndian.PutUint32(body, ms.ssrc)
		return rtcp.EncodeRaw(t, 0, body)
	case rtcp.TypeApp:
		body := make([]byte, 12)
		binary.BigEndian.PutUint32(body[:4], ms.ssrc)
		copy(body[4:8], "dsco")
		copy(body[8:], e.rng.Bytes(4))
		return rtcp.EncodeRaw(t, 1, body)
	default: // RTPFB / PSFB
		body := make([]byte, 12)
		ssrc := ms.ssrc
		// ~25% of type-205 feedback uses sender SSRC 0 (§5.3).
		if t == rtcp.TypeRTPFB {
			*fbCount++
			if *fbCount%4 == 0 {
				ssrc = 0
			}
		}
		binary.BigEndian.PutUint32(body[:4], ssrc)
		binary.BigEndian.PutUint32(body[4:8], ms.ssrc+1)
		copy(body[8:], e.rng.Bytes(4)) // encrypted FCI
		fmtVal := uint8(15)
		if t == rtcp.TypePSFB {
			fmtVal = 1
		}
		return rtcp.EncodeRaw(t, fmtVal, body)
	}
}
