//go:build !race

package core

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
