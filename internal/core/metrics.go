package core

import (
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// captureMetrics holds the resolved instrument handles for one
// AnalyzeCapture run, labelled by application. The zero value (from a
// nil registry) is inert: every handle is nil and every operation a
// no-op, so the hot path pays only a nil-receiver branch.
type captureMetrics struct {
	frames        *metrics.Counter
	decodeErrors  *metrics.Counter
	packets       *metrics.Counter
	captures      *metrics.Counter
	rtcStreams    *metrics.Counter
	workers       *metrics.Gauge
	streamSeconds *metrics.Histogram
	foldSeconds   *metrics.Histogram
}

func newCaptureMetrics(r *metrics.Registry, app string) captureMetrics {
	if r == nil {
		return captureMetrics{}
	}
	l := metrics.L("app", app)
	return captureMetrics{
		frames:        r.Counter("core_frames_total", l),
		decodeErrors:  r.Counter("core_decode_errors_total", l),
		packets:       r.Counter("core_packets_decoded_total", l),
		captures:      r.Counter("core_captures_total", l),
		rtcStreams:    r.Counter("core_rtc_udp_streams_total", l),
		workers:       r.Gauge("core_workers"),
		streamSeconds: r.Histogram("core_stream_analyze_seconds", nil, l),
		foldSeconds:   r.Histogram("core_fold_seconds", nil, l),
	}
}

// analyzerMetrics instruments the streaming Analyzer, labelled by
// application: the live-stream gauge (with its high-water mark), the
// eviction and reconciliation counters, and the per-feed latency
// histogram. Zero value is inert.
type analyzerMetrics struct {
	active       *metrics.Gauge
	activePeak   *metrics.Gauge
	evicted      *metrics.Counter
	reclassified *metrics.Counter
	feedBatches  *metrics.Counter
	feedSeconds  *metrics.Histogram
}

func newAnalyzerMetrics(r *metrics.Registry, app string) analyzerMetrics {
	if r == nil {
		return analyzerMetrics{}
	}
	l := metrics.L("app", app)
	return analyzerMetrics{
		active:       r.Gauge("core_active_streams", l),
		activePeak:   r.Gauge("core_active_streams_peak", l),
		evicted:      r.Counter("core_evicted_streams_total", l),
		reclassified: r.Counter("core_reclassified_streams_total", l),
		feedBatches:  r.Counter("core_feed_batches_total", l),
		feedSeconds:  r.Histogram("core_feed_seconds", nil, l),
	}
}

// matrixMetrics instruments RunMatrix: per-capture latency and counts
// labelled by app and network, plus the configured worker-pool size.
// Zero value is inert.
type matrixMetrics struct {
	registry *metrics.Registry
	workers  *metrics.Gauge
}

func newMatrixMetrics(r *metrics.Registry) matrixMetrics {
	if r == nil {
		return matrixMetrics{}
	}
	return matrixMetrics{registry: r, workers: r.Gauge("matrix_workers")}
}

// capture returns the per-cell handles for one matrix configuration.
// Resolution happens once per capture (not per packet), so the map
// lookup cost is negligible.
func (m matrixMetrics) capture(cfg trace.CaptureConfig) (*metrics.Counter, *metrics.Histogram) {
	if m.registry == nil {
		return nil, nil
	}
	labels := []metrics.Label{
		metrics.L("app", string(cfg.App)),
		metrics.L("network", cfg.Network.String()),
	}
	return m.registry.Counter("matrix_captures_total", labels...),
		m.registry.Histogram("matrix_capture_seconds", nil, labels...)
}
