package filterpipe

import (
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// TestTraceEmission checks that a traced filter run emits one
// stream-admitted event per surviving stream and one stream-filtered
// event (naming its stage and rule) per removal, in Result order.
func TestTraceEmission(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.GoogleMeet, Network: appsim.WiFiP2P, Seed: 9,
		Start: t0, CallDuration: 8 * time.Second, PrePost: 12 * time.Second,
		MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := buildTable(t, cap)
	buf := obs.NewBuffer(0)
	p := obs.New(buf, "Google Meet", obs.Sampling{}, nil)
	res := Run(table, Config{CallStart: cap.CallStart, CallEnd: cap.CallEnd, Trace: p})

	var admitted, filtered []obs.Event
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case obs.KindStreamAdmitted:
			admitted = append(admitted, ev)
		case obs.KindStreamFiltered:
			filtered = append(filtered, ev)
		}
	}
	if len(admitted) != len(res.RTC) {
		t.Fatalf("admitted events = %d, want %d (one per RTC stream)", len(admitted), len(res.RTC))
	}
	for i, s := range res.RTC {
		if admitted[i].Stream != s.Key.String() {
			t.Errorf("admitted[%d] = %q, want %q (Result order)", i, admitted[i].Stream, s.Key)
		}
	}
	if len(filtered) != len(res.RemovedStreams) {
		t.Fatalf("filtered events = %d, want %d (one per removal)", len(filtered), len(res.RemovedStreams))
	}
	for i, s := range res.RemovedStreams {
		ev := filtered[i]
		if ev.Stream != s.Key.String() {
			t.Errorf("filtered[%d] = %q, want %q", i, ev.Stream, s.Key)
		}
		rm := res.Removed[s.Key]
		if ev.Rule != string(rm.Rule) || ev.Stage != rm.Stage {
			t.Errorf("filtered[%d] rule/stage = %q/%d, want %q/%d", i, ev.Rule, ev.Stage, rm.Rule, rm.Stage)
		}
	}
	if problems := obs.Lint(buf.Events()); len(problems) > 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

// TestTraceDoesNotChangeFiltering pins zero interference at the filter
// layer: a traced run partitions streams exactly like an untraced one.
func TestTraceDoesNotChangeFiltering(t *testing.T) {
	cap, table, plain := generate(t, appsim.WhatsApp, appsim.WiFiRelay)
	traced := Run(table, Config{
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
		Trace: obs.New(obs.NewBuffer(0), "WhatsApp", obs.Sampling{}, nil),
	})
	if len(traced.RTC) != len(plain.RTC) || len(traced.Removed) != len(plain.Removed) {
		t.Fatalf("tracing changed filtering: RTC %d vs %d, removed %d vs %d",
			len(traced.RTC), len(plain.RTC), len(traced.Removed), len(plain.Removed))
	}
}
