package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// StrictEngine is the baseline the paper's custom DPI is built against
// (§4.1): a conventional nDPI/Peafowl-style classifier. It differs from
// Engine in exactly the two ways the paper criticizes:
//
//  1. it matches protocol headers only at byte offset zero, so any
//     message behind a proprietary header is invisible; and
//  2. its parsers enforce the specification strictly — Peafowl's RTP
//     inspector accepts only the statically assigned payload types, and
//     STUN messages must use defined message types — so non-compliant
//     messages are not recognized as their protocol at all.
//
// The benchmark BenchmarkDPI_BaselineComparison and the test suite use
// it to quantify how much of the dataset a conventional DPI misses
// (all of Zoom's media, most of FaceTime's, every undefined STUN type).
type StrictEngine struct{}

// peafowlRTPPayloadTypes mirrors the static payload-type whitelist of
// Peafowl's RTP inspector (RFC 3551 assignments): dynamic types 96-127
// are rejected, which is the restriction §4.1.1 removes.
var peafowlRTPPayloadTypes = map[uint8]bool{
	0: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true,
	9: true, 10: true, 11: true, 12: true, 13: true, 14: true, 15: true,
	16: true, 17: true, 18: true, 25: true, 26: true, 28: true,
	31: true, 32: true, 33: true, 34: true,
}

// Inspect classifies one datagram the conventional way. There is no
// stream state: conventional engines label flows from the first packets
// and do not track per-SSRC continuity.
func (StrictEngine) Inspect(payload []byte) Result {
	if m, ok := strictMatch(payload); ok {
		return Result{Class: ClassStandard, Messages: []Message{m}}
	}
	return Result{Class: ClassFullyProprietary}
}

// InspectStream applies Inspect to each datagram independently.
func (e StrictEngine) InspectStream(payloads [][]byte) []Result {
	out := make([]Result, len(payloads))
	for i, p := range payloads {
		out[i] = e.Inspect(p)
	}
	return out
}

func strictMatch(b []byte) (Message, bool) {
	// STUN: offset zero, magic cookie, and a defined message type.
	if stun.LooksLikeHeader(b) {
		if m, err := stun.Decode(b); err == nil && !m.Classic {
			if _, defined := stun.DefinedMessageType(m.Type); defined {
				return Message{Protocol: ProtoSTUN, Length: m.DecodedLen(), STUN: m}, true
			}
		}
	}
	// ChannelData at offset zero.
	if stun.LooksLikeChannelData(b) {
		if cd, err := stun.DecodeChannelData(b); err == nil && len(b)-cd.DecodedLen() <= 3 {
			return Message{Protocol: ProtoChannelData, Length: cd.DecodedLen(), ChannelData: cd}, true
		}
	}
	// RTCP: offset zero, assigned packet types only, clean compound.
	if rtcp.LooksLikeHeader(b) {
		if pkts, trailing, err := rtcp.DecodeCompound(b); err == nil && len(trailing) == 0 {
			allDefined := true
			length := 0
			for _, p := range pkts {
				if !rtcp.Defined(p.Header.Type) {
					allDefined = false
					break
				}
				length += p.Header.ByteLen()
			}
			if allDefined {
				return Message{Protocol: ProtoRTCP, Length: length, RTCP: pkts}, true
			}
		}
	}
	// RTP: offset zero, whitelisted payload type.
	if rtp.LooksLikeHeader(b) && !(len(b) > 1 && b[1] >= 192 && b[1] <= 223) {
		var probe rtp.Packet
		if rtp.DecodeInto(&probe, b) == nil && peafowlRTPPayloadTypes[probe.PayloadType] {
			p := new(rtp.Packet)
			*p = probe
			return Message{Protocol: ProtoRTP, Length: len(b), RTP: p}, true
		}
	}
	// QUIC: long headers only (short headers need state a stateless
	// classifier does not keep).
	if quicwire.LooksLikeLongHeader(b) {
		if h, err := quicwire.ParseLong(b); err == nil {
			length := len(b)
			if h.Version == quicwire.Version1 && h.Type != quicwire.TypeRetry {
				length = h.HeaderLen + int(h.PayloadLength)
			}
			return Message{Protocol: ProtoQUIC, Length: length, QUIC: h}, true
		}
	}
	return Message{}, false
}
