package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
)

// Table1Row carries the filter-pipeline accounting for one application
// (summed over its captures).
type Table1Row struct {
	App         string
	VolumeBytes int
	RawUDP      flow.Counts
	RawTCP      flow.Counts
	Stage1UDP   flow.Counts
	Stage1TCP   flow.Counts
	Stage2UDP   flow.Counts
	Stage2TCP   flow.Counts
	RTCUDP      flow.Counts
	RTCTCP      flow.Counts
}

func countCell(c flow.Counts) string {
	return fmt.Sprintf("%d | %d", c.Streams, c.Packets)
}

// Table1 renders the traffic-trace and filtering summary.
func Table1(rows []Table1Row) string {
	t := &table{header: []string{
		"Application", "Volume(MB)",
		"Raw UDP s|p", "Raw TCP s|p",
		"S1 UDP s|p", "S2 UDP s|p", "S1 TCP s|p", "S2 TCP s|p",
		"RTC UDP s|p", "RTC TCP s|p",
	}}
	for _, r := range rows {
		t.addRow(r.App,
			fmt.Sprintf("%.1f", float64(r.VolumeBytes)/1e6),
			countCell(r.RawUDP), countCell(r.RawTCP),
			countCell(r.Stage1UDP), countCell(r.Stage2UDP),
			countCell(r.Stage1TCP), countCell(r.Stage2TCP),
			countCell(r.RTCUDP), countCell(r.RTCTCP))
	}
	return "Table 1: Traffic traces and filtering progress (streams | packets)\n" + t.String()
}

// Table2 renders the message distribution by protocol and application.
// Protocol columns come from the registry, restricted to families with
// observed data.
func Table2(g *Aggregate) string {
	fams := g.ActiveFamilies()
	header := []string{"Application"}
	for _, fam := range fams {
		header = append(header, g.FamilyName(fam))
	}
	header = append(header, "Fully Proprietary")
	t := &table{header: header}
	for _, app := range g.Apps() {
		units := app.MessageUnits()
		cells := []string{app.App}
		for _, fam := range fams {
			ps := app.ByProtocol[fam]
			if ps == nil || ps.Messages == 0 {
				cells = append(cells, "N/A")
				continue
			}
			cells = append(cells, pct(ps.Messages, units))
		}
		cells = append(cells, pct(app.Datagrams[dpi.ClassFullyProprietary], units))
		t.addRow(cells...)
	}
	return "Table 2: Message distribution by protocols and applications\n" + t.String()
}

// Figure3 renders the datagram breakdown: standard vs proprietary
// header vs fully proprietary.
func Figure3(g *Aggregate) string {
	t := &table{header: []string{"Application", "Standard", "Proprietary header", "Fully proprietary"}}
	for _, app := range g.Apps() {
		total := 0
		for _, n := range app.Datagrams {
			total += n
		}
		t.addRow(app.App,
			pct(app.Datagrams[dpi.ClassStandard], total),
			pct(app.Datagrams[dpi.ClassProprietaryHeader], total),
			pct(app.Datagrams[dpi.ClassFullyProprietary], total))
	}
	return "Figure 3: Breakdown of datagrams: standard vs proprietary\n" + t.String()
}

// Figure4 renders the volume-based compliance ratios, app-centric then
// protocol-centric.
func Figure4(g *Aggregate) string {
	t := &table{header: []string{"Application", "Compliance by volume"}}
	for _, app := range g.Apps() {
		if r, ok := app.VolumeCompliance(); ok {
			t.addRow(app.App, fmt.Sprintf("%.1f%%", 100*r))
		} else {
			t.addRow(app.App, "N/A")
		}
	}
	t2 := &table{header: []string{"Protocol", "Compliance by volume"}}
	for _, fam := range g.ActiveFamilies() {
		vol, _, _ := g.ProtocolRollup(fam)
		if vol.Messages == 0 {
			t2.addRow(g.FamilyName(fam), "N/A")
			continue
		}
		t2.addRow(g.FamilyName(fam), pct(vol.Compliant, vol.Messages))
	}
	return "Figure 4: Compliance ratio by traffic volume\n" + t.String() + "\n" + t2.String()
}

// Table3 renders the compliance-by-message-type matrix. Protocol
// columns come from the registry, restricted to families with observed
// data.
func Table3(g *Aggregate) string {
	fams := g.ActiveFamilies()
	header := []string{"Application"}
	for _, fam := range fams {
		header = append(header, g.FamilyName(fam))
	}
	header = append(header, "All Protocols")
	t := &table{header: header}
	for _, app := range g.Apps() {
		cells := []string{app.App}
		for _, fam := range fams {
			c, tot := app.TypeCompliance(fam)
			if tot == 0 {
				cells = append(cells, "N/A")
				continue
			}
			cells = append(cells, ratio(c, tot))
		}
		c, tot := app.TypeCompliance(dpi.ProtoUnknown)
		cells = append(cells, ratio(c, tot))
		t.addRow(cells...)
	}
	// Protocol-centric bottom row.
	cells := []string{"All Apps"}
	for _, fam := range fams {
		_, c, tot := g.ProtocolRollup(fam)
		if tot == 0 {
			cells = append(cells, "N/A")
			continue
		}
		cells = append(cells, ratio(c, tot))
	}
	cells = append(cells, "")
	t.addRow(cells...)
	return "Table 3: Protocol compliance ratio by message type\n" + t.String()
}

// typeListTable renders an observed-types table for one protocol family
// (Tables 4, 5, 6).
func typeListTable(g *Aggregate, fam dpi.Protocol, title string) string {
	t := &table{header: []string{"Application", "Compliant Types", "Non-compliant Types"}}
	for _, app := range g.Apps() {
		comp, non := app.TypesOf(fam)
		if len(comp) == 0 && len(non) == 0 {
			continue
		}
		t.addRow(app.App, joinOrDash(comp), joinOrDash(non))
	}
	return title + "\n" + t.String()
}

func joinOrDash(items []string) string {
	if len(items) == 0 {
		return "-"
	}
	return strings.Join(items, ", ")
}

// Table4 renders observed STUN/TURN message types per application.
func Table4(g *Aggregate) string {
	return typeListTable(g, dpi.ProtoSTUN, "Table 4: Observed STUN/TURN message types")
}

// Table5 renders observed RTP payload types per application.
func Table5(g *Aggregate) string {
	return typeListTable(g, dpi.ProtoRTP, "Table 5: Observed RTP message (payload) types")
}

// Table6 renders observed RTCP packet types per application.
func Table6(g *Aggregate) string {
	return typeListTable(g, dpi.ProtoRTCP, "Table 6: Observed RTCP message types")
}

// TypeTables renders one observed-types table per active protocol
// family — the registry-driven generalization of Tables 4-6 that covers
// protocols registered after the paper's set (DTLS) without a dedicated
// renderer.
func TypeTables(g *Aggregate) string {
	var b strings.Builder
	for i, fam := range g.ActiveFamilies() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(typeListTable(g, fam, fmt.Sprintf("Observed %s message types", g.FamilyName(fam))))
	}
	return b.String()
}

// Figure5 renders the type-based compliance ratios, protocol-centric
// and app-centric.
func Figure5(g *Aggregate) string {
	t := &table{header: []string{"Protocol", "Compliant types", "Total types", "Ratio"}}
	for _, fam := range g.ActiveFamilies() {
		_, c, tot := g.ProtocolRollup(fam)
		if tot == 0 {
			t.addRow(g.FamilyName(fam), "0", "0", "N/A")
			continue
		}
		t.addRow(g.FamilyName(fam), fmt.Sprint(c), fmt.Sprint(tot), pct(c, tot))
	}
	t2 := &table{header: []string{"Application", "Compliant types", "Total types", "Ratio"}}
	for _, app := range g.Apps() {
		c, tot := app.TypeCompliance(dpi.ProtoUnknown)
		if tot == 0 {
			t2.addRow(app.App, "0", "0", "N/A")
			continue
		}
		t2.addRow(app.App, fmt.Sprint(c), fmt.Sprint(tot), pct(c, tot))
	}
	return "Figure 5: Compliance ratio by message type\n" + t.String() + "\n" + t2.String()
}

// Violations renders the per-criterion violation tally for every app,
// with the most frequent distinct reasons.
func Violations(g *Aggregate) string {
	var b strings.Builder
	for _, app := range g.Apps() {
		fmt.Fprintf(&b, "%s:\n", app.App)
		for crit := compliance.CritMessageType; crit <= compliance.CritSemantics; crit++ {
			if n := app.Violations[crit]; n > 0 {
				fmt.Fprintf(&b, "  %-32s %d messages\n", crit.String()+":", n)
			}
		}
		// Distinct reasons, most frequent first, capped for readability.
		type rc struct {
			reason string
			count  int
		}
		var reasons []rc
		for _, ts := range app.Types {
			for r, n := range ts.Reasons {
				reasons = append(reasons, rc{r, n})
			}
		}
		sort.Slice(reasons, func(i, j int) bool {
			if reasons[i].count != reasons[j].count {
				return reasons[i].count > reasons[j].count
			}
			return reasons[i].reason < reasons[j].reason
		})
		for i, r := range reasons {
			if i >= 8 {
				break
			}
			fmt.Fprintf(&b, "    %5dx %s\n", r.count, r.reason)
		}
	}
	return b.String()
}
