package appsim

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// Group calls are the paper's declared future work (§2): it studies
// 1-on-1 calls only and notes that group-call compliance is open. This
// extension generates N-party SFU calls for the two conference-first
// applications (Zoom and Google Meet), captured from one participant's
// device, so the unchanged analysis pipeline can be pointed at them:
//
//   - every participant's media transits the SFU (group calls never go
//     P2P), so the capture shows one outgoing audio/video pair and
//     N-1 incoming pairs;
//   - participants join staggered; each join triggers the app's join
//     behaviour (Zoom: a fresh filler burst, the §5.3 rejoin
//     observation generalized; Meet: a CreatePermission refresh);
//   - Zoom's deterministic SSRC assignment (§5.2.2) becomes an actual
//     robustness hazard: with enough participants the fixed scheme
//     produces a collision, which the DPI surfaces as broken sequence
//     continuity on the shared SSRC.
type GroupCallConfig struct {
	// App must be Zoom or GoogleMeet.
	App App
	// Participants counts call members including the captured device
	// (minimum 3).
	Participants int
	Seed         uint64
	Start        time.Time
	Duration     time.Duration
	// MediaRate is the per-stream RTP rate (0 = default 25).
	MediaRate int
	// ForceSSRCCollision makes two remote Zoom participants share an
	// SSRC, demonstrating the RFC 3550 §8 collision hazard of
	// deterministic assignment.
	ForceSSRCCollision bool
}

// GenerateGroup produces a group-call capture from participant 0's
// viewpoint.
func GenerateGroup(cfg GroupCallConfig) (*Call, error) {
	if cfg.App != Zoom && cfg.App != GoogleMeet {
		return nil, fmt.Errorf("appsim: group calls implemented for Zoom and Google Meet, not %q", cfg.App)
	}
	if cfg.Participants < 3 {
		return nil, fmt.Errorf("appsim: group call needs at least 3 participants, got %d", cfg.Participants)
	}
	if cfg.Duration <= 0 || cfg.Start.IsZero() {
		return nil, fmt.Errorf("appsim: group call needs a start time and positive duration")
	}
	call := CallConfig{
		App: cfg.App, Network: WiFiRelay, Seed: cfg.Seed,
		Start: cfg.Start, Duration: cfg.Duration, MediaRate: cfg.MediaRate,
	}
	e := newEnv(call)
	e.mode = ModeRelay // group calls always ride the SFU
	switch cfg.App {
	case Zoom:
		generateZoomGroup(e, cfg)
	case GoogleMeet:
		generateMeetGroup(e, cfg)
	}
	e.generateSignaling()
	return e.finish(), nil
}

// groupJoinTime staggers participant arrivals across the first half of
// the call.
func groupJoinTime(cfg GroupCallConfig, participant int) time.Time {
	if participant <= 1 {
		return cfg.Start
	}
	span := cfg.Duration / 2
	return cfg.Start.Add(time.Duration(participant-1) * span / time.Duration(cfg.Participants))
}

// zoomGroupSSRC assigns SSRCs the way Zoom's deterministic scheme
// would: a fixed base per media kind with a participant offset. With
// ForceSSRCCollision the last participant reuses participant 1's SSRC.
func zoomGroupSSRC(cfg GroupCallConfig, participant int, video bool) uint32 {
	base := uint32(0x1000C01)
	if video {
		base = 0x1000C02
	}
	p := participant
	if cfg.ForceSSRCCollision && participant == cfg.Participants-1 {
		p = 1
	}
	return base + uint32(p)<<8
}

func generateZoomGroup(e *env, cfg GroupCallConfig) {
	call := e.cfg
	caller := netip.AddrPortFrom(e.callerLocal, 50000)
	sfu := netip.AddrPortFrom(e.serverAddr, 8801)
	rate := call.rate()
	interval := time.Second / time.Duration(rate)
	end := call.Start.Add(call.Duration)

	type gstream struct {
		ms      *mediaStream
		mediaID uint32
		out     bool
		video   bool
		from    time.Time
	}
	var streams []gstream
	for p := 0; p < cfg.Participants; p++ {
		join := groupJoinTime(cfg, p)
		for _, video := range []bool{false, true} {
			tsStep := uint32(960)
			if video {
				tsStep = 3000
			}
			ms := newMediaStream(e.rng, zoomGroupSSRC(cfg, p, video), 99, tsStep)
			streams = append(streams, gstream{
				ms:      ms,
				mediaID: 0xB0000000 | uint32(p)<<8,
				out:     p == 0,
				video:   video,
				from:    join,
			})
		}
		// Each join (including rejoins) triggers a filler burst (§5.3
		// generalized): a short ramp on the media 5-tuple.
		if p >= 1 {
			burst := 20 + e.rng.IntN(10)
			for i := 0; i < burst; i++ {
				frac := float64(i) / float64(burst)
				at := join.Add(time.Duration(math.Sqrt(frac) * float64(2*time.Second)))
				payload := make([]byte, 1000)
				for j := range payload {
					payload[j] = 0x01
				}
				e.push(at.Add(e.jitter(2)), caller, sfu, payload)
			}
		}
	}

	tick := 0
	ptIdx := 0
	for at := call.Start; at.Before(end); at = at.Add(interval) {
		for i := range streams {
			st := &streams[i]
			if at.Before(st.from) {
				continue
			}
			tick++
			src, dst := caller, sfu
			dir := byte(zoomDirToServer)
			if !st.out {
				src, dst = sfu, caller
				dir = zoomDirFromServer
			}
			if tick%71 == 0 {
				sr := rtcp.EncodeSR(&rtcp.SenderReport{
					SSRC: st.ms.ssrc,
					Info: rtcp.SenderInfo{NTPTimestamp: ntpTime(at), RTPTimestamp: st.ms.ts, PacketCount: uint32(tick), OctetCount: uint32(tick) * 500},
				})
				sdes := rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: st.ms.ssrc, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "zoom-client"}}}}})
				e.push(at.Add(e.jitter(3)), src, dst, append(zoomHeader(e, dir, zoomTypeRTCP, st.mediaID, false), rtcp.Compound(sr, sdes)...))
				continue
			}
			pt := zoomRTPPayloadTypes[ptIdx%len(zoomRTPPayloadTypes)]
			ptIdx++
			st.ms.pt = pt
			size := 120
			mType := byte(zoomTypeAudio)
			if st.video {
				size = 600 + e.rng.IntN(300)
				mType = zoomTypeVideo
			}
			pkt := st.ms.next(size, nil, false)
			e.push(at.Add(e.jitter(3)), src, dst, append(zoomHeader(e, dir, mType, st.mediaID, false), pkt.Encode()...))
		}
	}
}

func generateMeetGroup(e *env, cfg GroupCallConfig) {
	call := e.cfg
	caller := netip.AddrPortFrom(e.callerLocal, 50040)
	server := netip.AddrPortFrom(e.serverAddr, 3478)
	rate := call.rate()
	interval := time.Second / time.Duration(rate)
	end := call.Start.Add(call.Duration)

	// TURN lifecycle as in 1-on-1 (binds channel 0x4000).
	bind := &stun.Message{Type: stun.TypeChannelBindRequest, TransactionID: e.rng.TxID()}
	bind.Add(stun.AttrChannelNumber, stun.EncodeChannelNumber(0x4000))
	bind.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(netip.AddrPortFrom(e.serverAddr, 49152), bind.TransactionID))
	e.push(call.Start.Add(30*time.Millisecond), caller, server, bind.Encode())
	bindOK := &stun.Message{Type: stun.TypeChannelBindSuccess, TransactionID: bind.TransactionID}
	e.push(call.Start.Add(50*time.Millisecond), server, caller, bindOK.Encode())

	type gstream struct {
		ms    *mediaStream
		out   bool
		video bool
		from  time.Time
	}
	var streams []gstream
	for p := 0; p < cfg.Participants; p++ {
		join := groupJoinTime(cfg, p)
		streams = append(streams,
			gstream{newMediaStream(e.rng, e.rng.Uint32(), 111, 960), p == 0, false, join},
			gstream{newMediaStream(e.rng, e.rng.Uint32(), 96, 3000), p == 0, true, join},
		)
		// Joins refresh permissions toward the new member's relayed
		// address.
		if p >= 1 {
			perm := &stun.Message{Type: stun.TypeCreatePermissionReq, TransactionID: e.rng.TxID()}
			perm.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(netip.AddrPortFrom(e.serverAddr, uint16(49152+p)), perm.TransactionID))
			e.push(join, caller, server, perm.Encode())
			permOK := &stun.Message{Type: stun.TypeCreatePermissionOK, TransactionID: perm.TransactionID}
			e.push(join.Add(15*time.Millisecond), server, caller, permOK.Encode())
		}
	}

	tick := 0
	ptIdx := 0
	for at := call.Start.Add(200 * time.Millisecond); at.Before(end); at = at.Add(interval) {
		for i := range streams {
			st := &streams[i]
			if at.Before(st.from) {
				continue
			}
			tick++
			src, dst := caller, server
			if !st.out {
				src, dst = server, caller
			}
			st.ms.pt = meetRTPPayloads[ptIdx%len(meetRTPPayloads)]
			ptIdx++
			size := 95
			if st.video {
				size = 500 + e.rng.IntN(400)
			}
			pkt := st.ms.next(size, nil, false).Encode()
			cd := &stun.ChannelData{ChannelNumber: 0x4000, Data: pkt}
			e.push(at.Add(e.jitter(3)), src, dst, cd.Encode())
		}
	}
}
