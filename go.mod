module github.com/rtc-compliance/rtcc

go 1.22
