// Interop matrix: quantify the paper's §6 interoperability discussion.
//
// The EU Digital Markets Act requires major RTC platforms to support
// cross-application calls. A receiving implementation built strictly
// from the RFCs can only process the compliant share of a sender's
// traffic; everything else needs bespoke adaptation code ("each
// application would need to implement bespoke parsers to handle the
// protocol quirks of every other application", §6). This example runs
// the experiment matrix, derives per-application interoperability
// profiles — which adaptation shims a pure-RFC peer would need, backed
// by the measured evidence — and scores every pairing.
package main

import (
	"fmt"
	"log"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
)

func main() {
	ma, err := rtcc.RunMatrix(rtcc.MatrixOptions{
		Runs:         1,
		CallDuration: 10 * time.Second,
		PrePost:      8 * time.Second,
		MediaRate:    20,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		BaseSeed:     7,
		Background:   true,
	}, rtcc.Options{SkipFindings: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Per-application interoperability profiles:")
	profiles := map[string]rtcc.InteropProfile{}
	var order []string
	for _, stats := range ma.Aggregate.Apps() {
		p := rtcc.BuildInteropProfile(stats)
		profiles[p.App] = p
		order = append(order, p.App)
		fmt.Print(rtcc.DescribeInteropProfile(p))
	}

	fmt.Println("\nPairwise out-of-the-box interoperability (higher is easier):")
	fmt.Printf("%-12s", "")
	for _, b := range order {
		fmt.Printf("  %-10.10s", b)
	}
	fmt.Println()
	for _, a := range order {
		fmt.Printf("%-12s", a)
		for _, b := range order {
			if a == b {
				fmt.Printf("  %-10s", "-")
				continue
			}
			as := rtcc.InteropPairwise(profiles[a], profiles[b])
			fmt.Printf("  %9.1f%%", 100*as.OutOfTheBox)
		}
		fmt.Println()
	}

	fmt.Println("\nHardest integrations by combined adaptation effort:")
	assessments := rtcc.InteropMatrix(ma.Aggregate)
	// Keep unordered pairs once, find the top 5.
	seen := map[string]bool{}
	type row struct {
		pair   string
		effort float64
		shims  int
	}
	var rows []row
	for _, as := range assessments {
		key := as.A + "|" + as.B
		if as.B < as.A {
			key = as.B + "|" + as.A
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row{as.A + " <-> " + as.B, as.Effort, len(as.Shims)})
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].effort > rows[i].effort {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-28s effort %5.1f (%d shim kinds)\n", r.pair, r.effort, r.shims)
	}
	fmt.Println("\nReading: Zoom and FaceTime dominate the hard pairs because their")
	fmt.Println("traffic hides behind proprietary encapsulations; the standards-")
	fmt.Println("aligned apps (WhatsApp, Messenger, Meet) interoperate almost out")
	fmt.Println("of the box — the paper's §6 argument, measured.")
}
