package dpi

// The engine under test carries no protocol knowledge; tests exercise
// it with the full driver set linked into the default registry.
import (
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)
