package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// sumCounters adds up every counter whose name is base or base{...},
// folding all label combinations together.
func sumCounters(s metrics.Snapshot, base string) uint64 {
	var total uint64
	for name, v := range s.Counters {
		if name == base || strings.HasPrefix(name, base+"{") {
			total += v
		}
	}
	return total
}

// TestMetricsConservation runs six seeded captures through the
// instrumented pipeline and checks the flow-conservation invariants the
// counters must satisfy regardless of scheduling: every input frame is
// accounted for as decoded or a decode error, every decoded packet as a
// stage-1 drop, stage-2 drop, or RTC survivor, every inspected datagram
// carries exactly one classification, and every verdict is a pass or a
// per-criterion failure.
func TestMetricsConservation(t *testing.T) {
	cases := []struct {
		app     appsim.App
		network appsim.Network
		seed    uint64
		garbage int // undecodable frames appended to the capture
	}{
		{appsim.Zoom, appsim.WiFiP2P, 1, 0},
		{appsim.FaceTime, appsim.WiFiRelay, 2, 9},
		{appsim.WhatsApp, appsim.Cellular, 3, 0},
		{appsim.Messenger, appsim.WiFiRelay, 5, 0},
		{appsim.Discord, appsim.WiFiP2P, 8, 4},
		{appsim.GoogleMeet, appsim.Cellular, 13, 0},
	}
	for _, tc := range cases {
		cap, err := trace.Generate(trace.CaptureConfig{
			App: tc.app, Network: tc.network, Seed: tc.seed,
			Start: t0, CallDuration: 3 * time.Second, PrePost: 4 * time.Second,
			MediaRate: 10, Background: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames := cap.Frames()
		for i := 0; i < tc.garbage; i++ {
			frames = append(frames, pcap.Packet{
				Timestamp: cap.CallStart.Add(time.Duration(i) * time.Millisecond),
				Data:      []byte{0xba, 0xad},
			})
		}

		reg := metrics.NewRegistry()
		ca, err := AnalyzeCapture(CaptureInput{
			Label: string(tc.app), LinkType: pcap.LinkTypeRaw, Packets: frames,
			CallStart: cap.CallStart, CallEnd: cap.CallEnd,
		}, Options{Workers: 4, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		name := string(tc.app)

		// Frames in == decoded + decode errors.
		if got := sumCounters(snap, "core_frames_total"); got != uint64(len(frames)) {
			t.Errorf("%s: core_frames_total = %d, want %d", name, got, len(frames))
		}
		if got := sumCounters(snap, "core_decode_errors_total"); got != uint64(ca.DecodeErrors) {
			t.Errorf("%s: core_decode_errors_total = %d, want %d", name, got, ca.DecodeErrors)
		}
		decoded := sumCounters(snap, "core_packets_decoded_total")
		if decoded+uint64(ca.DecodeErrors) != uint64(len(frames)) {
			t.Errorf("%s: decoded %d + decode errors %d != frames %d",
				name, decoded, ca.DecodeErrors, len(frames))
		}

		// Decoded packets == filter input == drops + RTC survivors.
		filterIn := sumCounters(snap, "filter_in_packets_total")
		if filterIn != decoded {
			t.Errorf("%s: filter_in_packets_total = %d, want %d decoded", name, filterIn, decoded)
		}
		removed := sumCounters(snap, "filter_removed_packets_total")
		rtc := sumCounters(snap, "filter_rtc_packets_total")
		if removed+rtc != filterIn {
			t.Errorf("%s: removed %d + rtc %d != filter input %d", name, removed, rtc, filterIn)
		}
		f := ca.Filter
		if want := uint64(f.RTCUDP.Packets + f.RTCTCP.Packets); rtc != want {
			t.Errorf("%s: filter_rtc_packets_total = %d, want %d from analysis", name, rtc, want)
		}
		if got := sumCounters(snap, "core_rtc_udp_streams_total"); got != uint64(f.RTCUDP.Streams) {
			t.Errorf("%s: core_rtc_udp_streams_total = %d, want %d", name, got, f.RTCUDP.Streams)
		}

		// Each inspected datagram carries exactly one classification, and
		// the per-class counters mirror the analysis tallies.
		var datagrams uint64
		for class, n := range ca.Stats.Datagrams {
			datagrams += uint64(n)
			key := map[string]string{
				"fully proprietary":  "fully_proprietary",
				"standard":           "standard",
				"proprietary header": "proprietary_header",
			}[class.String()]
			got := snap.Counters["dpi_datagrams_total{class="+key+"}"]
			if got != uint64(n) {
				t.Errorf("%s: dpi_datagrams_total{class=%s} = %d, want %d", name, key, got, n)
			}
		}
		if got := sumCounters(snap, "dpi_datagrams_total"); got != datagrams {
			t.Errorf("%s: dpi_datagrams_total sum = %d, want %d", name, got, datagrams)
		}
		if h, ok := snap.Histograms["dpi_inspect_seconds"]; ok && h.Count != datagrams {
			t.Errorf("%s: dpi_inspect_seconds count = %d, want %d datagrams", name, h.Count, datagrams)
		}

		// Every verdict is a pass or exactly one per-criterion failure,
		// and the failure tally matches the per-criterion violations.
		var messages, compliant, violations uint64
		for _, ps := range ca.Stats.ByProtocol {
			messages += uint64(ps.Messages)
			compliant += uint64(ps.Compliant)
		}
		for _, n := range ca.Stats.Violations {
			violations += uint64(n)
		}
		pass := sumCounters(snap, "compliance_pass_total")
		fail := sumCounters(snap, "compliance_fail_total")
		if pass != compliant {
			t.Errorf("%s: compliance_pass_total = %d, want %d", name, pass, compliant)
		}
		if fail != messages-compliant {
			t.Errorf("%s: compliance_fail_total = %d, want %d", name, fail, messages-compliant)
		}
		if fail != violations {
			t.Errorf("%s: compliance_fail_total = %d, want %d violations", name, fail, violations)
		}
	}
}

func assertCaptureEqual(t *testing.T, label string, want, got *CaptureAnalysis) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: CaptureAnalysis differs", label)
	}
}

// TestMetricsSchedulingIndependence reruns the capture-level determinism
// check with a registry attached to both the serial and the parallel
// run: the analyses must stay deeply equal (metrics are a write-only
// side channel) and the recorded counter totals and histogram counts
// must be identical across worker counts — only latency values may
// differ.
func TestMetricsSchedulingIndependence(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.Zoom, Network: appsim.WiFiRelay, Seed: 31337,
		Start: t0, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
		MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := CaptureInput{
		Label: "zoom", LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}
	regSerial := metrics.NewRegistry()
	serial, err := AnalyzeCapture(in, Options{Workers: 1, Metrics: regSerial})
	if err != nil {
		t.Fatal(err)
	}
	regParallel := metrics.NewRegistry()
	parallel, err := AnalyzeCapture(in, Options{Workers: 8, Metrics: regParallel})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := AnalyzeCapture(in, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	assertCaptureEqual(t, "serial+metrics vs parallel+metrics", serial, parallel)
	assertCaptureEqual(t, "parallel+metrics vs parallel bare", parallel, bare)

	ss, ps := regSerial.Snapshot(), regParallel.Snapshot()
	if len(ss.Counters) != len(ps.Counters) {
		t.Errorf("counter sets differ: serial %d, parallel %d", len(ss.Counters), len(ps.Counters))
	}
	for name, v := range ss.Counters {
		if pv, ok := ps.Counters[name]; !ok || pv != v {
			t.Errorf("counter %s: serial %d, parallel %d (present %v)", name, v, pv, ok)
		}
	}
	if len(ss.Histograms) != len(ps.Histograms) {
		t.Errorf("histogram sets differ: serial %d, parallel %d", len(ss.Histograms), len(ps.Histograms))
	}
	for name, h := range ss.Histograms {
		if ph, ok := ps.Histograms[name]; !ok || ph.Count != h.Count {
			t.Errorf("histogram %s count: serial %d, parallel %d (present %v)", name, h.Count, ph.Count, ok)
		}
	}
}
