package appsim

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
)

// burster models frame-granular video emission: a camera produces one
// frame per frameDur, the encoder packetizes it, and every packet of
// the frame leaves back-to-back at the frame boundary with only the
// serialization gap between them — the bursting shape that stresses
// jitter buffers and cross-message compliance checks, as opposed to
// the smooth per-packet pacing the emulators use by default.
//
// It draws from its own seeded rng (not the call's main rng) so that
// turning bursting on or off never perturbs the byte content of the
// rest of the capture.
type burster struct {
	rng      *ice.Rand
	frameDur time.Duration
	varFrac  float64

	haveAnchor bool
	anchor     time.Time
	frameIdx   int64
	factor     float64
	pkts       int
}

// burstPacketGap is the per-packet serialization spacing inside one
// frame burst (~1200 bytes at 50 Mbit/s).
const burstPacketGap = 200 * time.Microsecond

func newBurster(cfg CallConfig) *burster {
	fr := cfg.FrameRate
	if fr <= 0 {
		fr = 30
	}
	v := cfg.BitrateVar
	if v <= 0 {
		v = 0.25
	}
	if v > 0.9 {
		v = 0.9
	}
	return &burster{
		rng:      ice.NewRand(cfg.Seed ^ 0x6275727374), // "burst"
		frameDur: time.Second / time.Duration(fr),
		varFrac:  v,
	}
}

// frame advances to the frame containing at, drawing that frame's
// bit-rate factor: a uniform swing of ±varFrac around nominal, with a
// keyframe boost every 30th frame (an I-frame among P-frames).
func (b *burster) frame(at time.Time) int64 {
	if !b.haveAnchor {
		b.haveAnchor = true
		b.anchor = at
	}
	idx := int64(at.Sub(b.anchor) / b.frameDur)
	if idx < 0 {
		idx = 0
	}
	if b.factor == 0 || idx != b.frameIdx {
		b.frameIdx = idx
		b.pkts = 0
		b.factor = 1 + b.varFrac*(2*b.rng.Float64()-1)
		if idx%30 == 0 {
			b.factor *= 2.5
		}
	}
	return idx
}

// size scales a nominal packet size by the bit-rate factor of the
// frame containing at, clamped to stay a plausible RTP payload.
func (b *burster) size(at time.Time, n int) int {
	b.frame(at)
	n = int(float64(n) * b.factor)
	if n < 24 {
		n = 24
	}
	if n > 1350 {
		n = 1350
	}
	return n
}

// at collapses a smoothly-paced emission time onto its frame boundary
// plus the packet's position in the burst.
func (b *burster) at(at time.Time) time.Time {
	idx := b.frame(at)
	t := b.anchor.Add(time.Duration(idx)*b.frameDur + time.Duration(b.pkts)*burstPacketGap)
	b.pkts++
	return t
}

// mediaSize returns the emitted size for one media packet: the nominal
// size, or the frame-scaled size for bursting video.
func (e *env) mediaSize(at time.Time, video bool, size int) int {
	if e.burst != nil && video {
		return e.burst.size(at, size)
	}
	return size
}

// mediaAt returns the emission time for one media packet: the paced
// time plus up to jms milliseconds of jitter, or the frame-burst time
// for bursting video.
func (e *env) mediaAt(at time.Time, video bool, jms int) time.Time {
	if e.burst != nil && video {
		return e.burst.at(at)
	}
	return at.Add(e.jitter(jms))
}
