package ice

import (
	"bytes"
	"net/netip"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/stun"
)

func TestRandDeterministic(t *testing.T) {
	r1, r2 := NewRand(42), NewRand(42)
	if r1.TxID() != r2.TxID() {
		t.Error("same seed produced different txids")
	}
	if !bytes.Equal(r1.Bytes(16), r2.Bytes(16)) {
		t.Error("same seed produced different bytes")
	}
	r3 := NewRand(43)
	if NewRand(42).TxID() == r3.TxID() {
		t.Error("different seeds produced same txid")
	}
}

func agents() (*Agent, *Agent) {
	a := &Agent{Ufrag: "aU", Password: "aPassword0123456789012", Controlling: true, TieBreaker: 0x1122334455667788}
	b := &Agent{Ufrag: "bU", Password: "bPassword0123456789012"}
	return a, b
}

func TestBindingRequestAttributes(t *testing.T) {
	r := NewRand(1)
	a, b := agents()
	m := a.BindingRequest(r, b, 0x6e001eff, true)
	dec, err := stun.Decode(m.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != stun.TypeBindingRequest {
		t.Errorf("type = %v", dec.Type)
	}
	if u := dec.Get(stun.AttrUsername); u == nil || string(u.Value) != "bU:aU" {
		t.Errorf("USERNAME = %v", u)
	}
	if p := dec.Get(stun.AttrPriority); p == nil || len(p.Value) != 4 || p.Value[0] != 0x6e {
		t.Errorf("PRIORITY = %v", p)
	}
	if dec.Get(stun.AttrICEControlling) == nil {
		t.Error("ICE-CONTROLLING missing for controlling agent")
	}
	if dec.Get(stun.AttrUseCandidate) == nil {
		t.Error("USE-CANDIDATE missing")
	}
	if dec.Get(stun.AttrMessageIntegrity) == nil || dec.Get(stun.AttrFingerprint) == nil {
		t.Error("integrity/fingerprint missing")
	}
	if !stun.VerifyFingerprint(dec) {
		t.Error("fingerprint invalid")
	}
	// Controlled agent uses ICE-CONTROLLED and no USE-CANDIDATE.
	m2 := b.BindingRequest(r, a, 1, true)
	if m2.Get(stun.AttrICEControlled) == nil || m2.Get(stun.AttrUseCandidate) != nil {
		t.Error("controlled agent attributes wrong")
	}
}

func TestBindingResponseEchoesTxID(t *testing.T) {
	r := NewRand(2)
	a, b := agents()
	req := a.BindingRequest(r, b, 1, false)
	mapped := netip.MustParseAddrPort("203.0.113.5:50000")
	resp := b.BindingResponse(req, mapped)
	if resp.TransactionID != req.TransactionID {
		t.Error("txid not echoed")
	}
	xa := resp.Get(stun.AttrXORMappedAddress)
	if xa == nil {
		t.Fatal("XOR-MAPPED-ADDRESS missing")
	}
	got, err := stun.DecodeXORAddress(xa.Value, resp.TransactionID)
	if err != nil || got.Addr != mapped.Addr() || got.Port != mapped.Port() {
		t.Errorf("mapped = %+v, %v", got, err)
	}
}

func TestServerBindingExchange(t *testing.T) {
	r := NewRand(3)
	req := ServerBindingRequest(r)
	if req.Type != stun.TypeBindingRequest || !stun.VerifyFingerprint(req) {
		t.Error("server binding request malformed")
	}
	mapped := netip.MustParseAddrPort("198.51.100.1:40000")
	resp := ServerBindingResponse(req, mapped)
	if resp.TransactionID != req.TransactionID {
		t.Error("txid mismatch")
	}
	if resp.Get(stun.AttrXORMappedAddress) == nil || resp.Get(stun.AttrMappedAddress) == nil {
		t.Error("address attributes missing")
	}
}

func TestTURNAllocationSequence(t *testing.T) {
	r := NewRand(4)
	creds := TURNCredentials{Username: "u", Realm: "example.org", Nonce: "n0nce", Password: "pw"}
	relayed := netip.MustParseAddrPort("203.0.113.50:49152")
	mapped := netip.MustParseAddrPort("198.51.100.1:40000")
	peer := netip.MustParseAddrPort("198.51.100.2:40001")
	seq := TURNAllocation(r, creds, relayed, mapped, peer, 0x4000)
	if len(seq) != 8 {
		t.Fatalf("sequence length = %d", len(seq))
	}
	wantTypes := []stun.MessageType{
		stun.TypeAllocateRequest, stun.TypeAllocateError,
		stun.TypeAllocateRequest, stun.TypeAllocateSuccess,
		stun.TypeCreatePermissionReq, stun.TypeCreatePermissionOK,
		stun.TypeChannelBindRequest, stun.TypeChannelBindSuccess,
	}
	wantDir := []bool{true, false, true, false, true, false, true, false}
	for i, ex := range seq {
		if ex.Msg.Type != wantTypes[i] {
			t.Errorf("step %d type = %v, want %v", i, ex.Msg.Type, wantTypes[i])
		}
		if ex.FromClient != wantDir[i] {
			t.Errorf("step %d direction = %v", i, ex.FromClient)
		}
		if _, err := stun.Decode(ex.Msg.Encode()); err != nil {
			t.Errorf("step %d does not re-decode: %v", i, err)
		}
	}
	// Challenge pairs share transaction IDs.
	if seq[0].Msg.TransactionID != seq[1].Msg.TransactionID {
		t.Error("401 txid mismatch")
	}
	if seq[2].Msg.TransactionID != seq[3].Msg.TransactionID {
		t.Error("success txid mismatch")
	}
	// 401 carries ERROR-CODE with 401.
	ec := seq[1].Msg.Get(stun.AttrErrorCode)
	if ec == nil {
		t.Fatal("ERROR-CODE missing")
	}
	code, err := stun.DecodeErrorCode(ec.Value)
	if err != nil || code.Code != 401 {
		t.Errorf("error code = %+v", code)
	}
	// Success carries XOR-RELAYED-ADDRESS decoding to the relayed addr.
	xr := seq[3].Msg.Get(stun.AttrXORRelayedAddress)
	if xr == nil {
		t.Fatal("XOR-RELAYED-ADDRESS missing")
	}
	got, err := stun.DecodeXORAddress(xr.Value, seq[3].Msg.TransactionID)
	if err != nil || got.Port != relayed.Port() {
		t.Errorf("relayed = %+v", got)
	}
	// ChannelBind carries a well-formed CHANNEL-NUMBER.
	cn := seq[6].Msg.Get(stun.AttrChannelNumber)
	if cn == nil || len(cn.Value) != 4 {
		t.Error("CHANNEL-NUMBER malformed")
	}
}

func TestRefreshExchange(t *testing.T) {
	r := NewRand(5)
	seq := RefreshExchange(r, TURNCredentials{Username: "u", Realm: "r", Nonce: "n", Password: "p"})
	if len(seq) != 2 {
		t.Fatalf("len = %d", len(seq))
	}
	if seq[0].Msg.Type != stun.TypeRefreshRequest || seq[1].Msg.Type != stun.TypeRefreshSuccess {
		t.Error("types wrong")
	}
	if seq[0].Msg.TransactionID != seq[1].Msg.TransactionID {
		t.Error("txid mismatch")
	}
}

func TestSendAndDataIndications(t *testing.T) {
	r := NewRand(6)
	peer := netip.MustParseAddrPort("198.51.100.9:1234")
	si := SendIndication(r, peer, []byte("media"))
	if si.Type != stun.TypeSendIndication || si.Get(stun.AttrData) == nil {
		t.Error("send indication malformed")
	}
	di := DataIndication(r, peer, []byte("media"), nil)
	if di.Type != stun.TypeDataIndication {
		t.Error("data indication type wrong")
	}
	if len(di.Attributes) != 2 {
		t.Errorf("data indication attrs = %d, want exactly 2", len(di.Attributes))
	}
	// FaceTime variant with spurious CHANNEL-NUMBER.
	di2 := DataIndication(r, peer, []byte("media"), []stun.Attribute{
		{Type: stun.AttrChannelNumber, Value: []byte{0, 0, 0, 0}},
	})
	if len(di2.Attributes) != 3 {
		t.Error("extra attribute not appended")
	}
}

func TestGoogPing(t *testing.T) {
	r := NewRand(7)
	id := r.TxID()
	req := GoogPing(r, false, id)
	resp := GoogPing(r, true, id)
	if req.Type != stun.MessageType(0x0200) || resp.Type != stun.MessageType(0x0300) {
		t.Errorf("types = %v %v", req.Type, resp.Type)
	}
	if req.TransactionID != resp.TransactionID {
		t.Error("txids differ")
	}
	if _, ok := stun.DefinedMessageType(req.Type); !ok {
		t.Error("GOOG-PING should be registry-defined")
	}
}
