package propheader

import (
	"strings"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/trace"
	"time"
)

func TestTooFewSamples(t *testing.T) {
	rep := Infer([]Sample{{Header: []byte{1}}, {Header: []byte{1}}})
	if rep.Samples != 0 || len(rep.Fields) != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestConstantAndDirection(t *testing.T) {
	var samples []Sample
	for i := 0; i < 10; i++ {
		dir := Direction(i % 2)
		flag := byte(0x00)
		if dir == DirBToA {
			flag = 0x04
		}
		samples = append(samples, Sample{
			Header:    []byte{flag, 0x10, 0xAA, byte(i)},
			Dir:       dir,
			Remainder: 100 + i,
		})
	}
	rep := Infer(samples)
	if rep.Fields[0].Kind != KindDirection {
		t.Errorf("offset 0 = %s, want direction", rep.Fields[0].Kind)
	}
	if rep.Fields[0].PerDirection[DirAToB] != 0x00 || rep.Fields[0].PerDirection[DirBToA] != 0x04 {
		t.Errorf("per-direction = %+v", rep.Fields[0].PerDirection)
	}
	if rep.Fields[1].Kind != KindConstant || rep.Fields[1].Value != 0x10 {
		t.Errorf("offset 1 = %+v", rep.Fields[1])
	}
	if rep.Fields[3].Kind != KindCounter {
		t.Errorf("offset 3 = %s, want counter", rep.Fields[3].Kind)
	}
}

func TestLengthField(t *testing.T) {
	// FaceTime-style: magic 0x60 0x00, 16-bit length covering 4 opaque
	// header bytes plus the payload.
	var samples []Sample
	for i := 0; i < 8; i++ {
		payload := 80 + 13*i
		total := 4 + payload
		samples = append(samples, Sample{
			Header: []byte{
				0x60, 0x00,
				byte(total >> 8), byte(total),
				0xde, 0xad, byte(37 * i), byte(91 * i),
			},
			Dir:       DirAToB,
			Remainder: payload,
		})
	}
	rep := Infer(samples)
	if rep.Fields[0].Kind != KindConstant || rep.Fields[0].Value != 0x60 {
		t.Errorf("offset 0 = %+v", rep.Fields[0])
	}
	if rep.Fields[2].Kind != KindLengthHi || rep.Fields[3].Kind != KindLengthLo {
		t.Errorf("offsets 2,3 = %s,%s, want length field", rep.Fields[2].Kind, rep.Fields[3].Kind)
	}
	// With a fixed header length the field is equivalently "covers the
	// rest of the header plus payload" (4 trailing header bytes).
	if !rep.Fields[2].CoversRest && rep.Fields[2].LengthBias != 4 {
		t.Errorf("length field = %+v, want covers-rest or bias 4", rep.Fields[2])
	}
	out := Describe(rep)
	if !strings.Contains(out, "16-bit length") || !strings.Contains(out, "constant") {
		t.Errorf("describe:\n%s", out)
	}
}

func TestConstantRemainderNotALengthField(t *testing.T) {
	// Identical remainders make any constant pair look like a length;
	// the detector must refuse.
	var samples []Sample
	for i := 0; i < 8; i++ {
		samples = append(samples, Sample{
			Header:    []byte{0x00, 0x64, byte(i), byte(i * 3)},
			Remainder: 90,
		})
	}
	rep := Infer(samples)
	for _, f := range rep.Fields {
		if f.Kind == KindLengthHi || f.Kind == KindLengthLo {
			t.Errorf("offset %d misdetected as length field", f.Offset)
		}
	}
}

func TestVariableLengthHeadersUseCommonPrefix(t *testing.T) {
	samples := []Sample{
		{Header: make([]byte, 24), Remainder: 10},
		{Header: make([]byte, 39), Remainder: 11},
		{Header: make([]byte, 30), Remainder: 12},
		{Header: make([]byte, 26), Remainder: 13},
	}
	rep := Infer(samples)
	if rep.MinLen != 24 || rep.MaxLen != 39 {
		t.Errorf("lens = %d..%d", rep.MinLen, rep.MaxLen)
	}
	if len(rep.Fields) != 24 {
		t.Errorf("fields = %d", len(rep.Fields))
	}
}

// End-to-end: run the inference on real synthetic FaceTime relay
// traffic and rediscover the 0x6000 magic and its length field, as
// §5.3 of the paper did by hand.
func TestInferFaceTimeHeader(t *testing.T) {
	samples := harvest(t, appsim.FaceTime, appsim.WiFiRelay)
	if len(samples) < 50 {
		t.Fatalf("samples = %d", len(samples))
	}
	rep := Infer(samples)
	if rep.Fields[0].Kind != KindConstant || rep.Fields[0].Value != 0x60 {
		t.Errorf("offset 0 = %+v, want constant 0x60", rep.Fields[0])
	}
	if rep.Fields[1].Kind != KindConstant || rep.Fields[1].Value != 0x00 {
		t.Errorf("offset 1 = %+v, want constant 0x00", rep.Fields[1])
	}
	if rep.Fields[2].Kind != KindLengthHi || rep.Fields[3].Kind != KindLengthLo {
		t.Errorf("offsets 2,3 = %s,%s, want 16-bit length", rep.Fields[2].Kind, rep.Fields[3].Kind)
	}
	if rep.MinLen < 8 || rep.MaxLen > 19 {
		t.Errorf("header length range %d-%d, want within 8-19", rep.MinLen, rep.MaxLen)
	}
}

// Likewise for Zoom: the direction byte at offset 0 and the constant
// per-stream media ID must surface.
func TestInferZoomHeader(t *testing.T) {
	samples := harvest(t, appsim.Zoom, appsim.WiFiP2P)
	if len(samples) < 50 {
		t.Fatalf("samples = %d", len(samples))
	}
	rep := Infer(samples)
	if rep.Fields[0].Kind != KindDirection {
		t.Errorf("offset 0 = %s, want direction flag", rep.Fields[0].Kind)
	}
	if rep.Fields[1].Kind != KindConstant {
		t.Errorf("offset 1 = %s, want constant", rep.Fields[1].Kind)
	}
	// Media ID bytes 2-5 are constant within one stream.
	for off := 2; off <= 5; off++ {
		if rep.Fields[off].Kind != KindConstant {
			t.Errorf("offset %d = %s, want constant media ID byte", off, rep.Fields[off].Kind)
		}
	}
}

// harvest runs the DPI over one media stream of a generated call and
// returns its proprietary header samples.
func harvest(t *testing.T, app appsim.App, nw appsim.Network) []Sample {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: nw, Seed: 5,
		Start: time.Unix(1700000000, 0).UTC(), CallDuration: 6 * time.Second,
		PrePost: 2 * time.Second, MediaRate: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := flow.NewTable()
	for _, f := range cap.Frames() {
		pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
		if err != nil {
			continue
		}
		table.Add(f.Timestamp, pkt)
	}
	engine := dpi.NewEngine()
	var best []Sample
	for _, s := range table.Streams() {
		if s.Key.Proto != layers.IPProtocolUDP {
			continue
		}
		payloads := make([][]byte, len(s.Packets))
		for i, p := range s.Packets {
			payloads[i] = p.Payload
		}
		var samples []Sample
		for i, r := range engine.InspectStream(payloads) {
			if r.Class != dpi.ClassProprietaryHeader {
				continue
			}
			dir := DirAToB
			if s.Packets[i].Dir == flow.DirBToA {
				dir = DirBToA
			}
			samples = append(samples, Sample{
				Header:    r.ProprietaryHeader,
				Dir:       dir,
				Remainder: len(payloads[i]) - len(r.ProprietaryHeader),
			})
		}
		if len(samples) > len(best) {
			best = samples
		}
	}
	return best
}
