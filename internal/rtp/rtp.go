// Package rtp implements the RTP wire format (RFC 3550) and the general
// header-extension mechanism (RFC 8285).
//
// As with the STUN codec, decoding is structurally strict but
// semantically permissive: payload types, extension profiles, and
// extension element IDs are parsed whatever their values, because the
// paper's DPI must surface non-compliant messages (FaceTime's 0x8001
// profiles, Discord's ID=0 elements) for the compliance layer to judge.
package rtp

import (
	"errors"
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// Version is the only RTP version in deployment (RFC 3550 §5.1).
const Version = 2

// HeaderLen is the minimal fixed header size.
const HeaderLen = 12

// Well-known extension profile identifiers (RFC 8285).
const (
	// ProfileOneByte marks the one-byte extension element form.
	ProfileOneByte uint16 = 0xBEDE
	// ProfileTwoByteBase is the base of the two-byte form; the low four
	// bits are "appbits" (0x1000-0x100F all select the two-byte form).
	ProfileTwoByteBase uint16 = 0x1000
	// ProfileTwoByteMask extracts the fixed part of two-byte profiles.
	ProfileTwoByteMask uint16 = 0xFFF0
)

// ExtensionElement is one RFC 8285 extension element.
type ExtensionElement struct {
	// ID is the local identifier: 4 bits in the one-byte form (1-14
	// usable, 0 = padding, 15 = reserved), 8 bits in the two-byte form.
	ID uint8
	// Payload is the element data. For one-byte elements the on-wire
	// length field is len(Payload)-1; we store the actual bytes.
	Payload []byte
}

// Extension is a decoded RTP header extension block.
type Extension struct {
	// Profile is the 16-bit "defined by profile" field.
	Profile uint16
	// Data is the raw extension payload (after the 4-byte extension
	// header), length a multiple of 4.
	Data []byte
	// Elements holds the parsed RFC 8285 elements when Profile selects
	// the one- or two-byte form and parsing succeeded; nil otherwise.
	Elements []ExtensionElement
	// ParseOK records whether element parsing succeeded (only
	// meaningful for RFC 8285 profiles).
	ParseOK bool
}

// Packet is one decoded RTP packet.
type Packet struct {
	Version        uint8
	Padding        bool
	PaddingLen     uint8 // last payload byte when Padding is set
	HasExtension   bool
	CSRCCount      uint8
	Marker         bool
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	CSRC           []uint32
	Extension      *Extension
	// Payload is the media payload after padding removal.
	Payload []byte
	// Raw is the full encoded packet.
	Raw []byte
}

// Decoding errors.
var (
	ErrNotRTP    = errors.New("rtp: not an RTP packet")
	ErrTruncated = errors.New("rtp: truncated packet")
)

// Precomposed decode errors. The DPI calls Decode at every candidate
// offset of every datagram, so failures are the common case on that
// path; building a fmt.Errorf per attempt dominated the pipeline's
// allocation profile.
var (
	errShortPacket  = fmt.Errorf("%w: shorter than the fixed header", ErrTruncated)
	errBadVersion   = fmt.Errorf("%w: bad version", ErrNotRTP)
	errShortHeader  = fmt.Errorf("%w: header", ErrTruncated)
	errShortExt     = fmt.Errorf("%w: header extension", ErrTruncated)
	errEmptyPadding = fmt.Errorf("%w: padding bit set on empty payload", ErrTruncated)
	errBadPadding   = fmt.Errorf("%w: padding length exceeds payload", ErrTruncated)
)

// LooksLikeHeader reports whether b plausibly begins with an RTP packet:
// version 2 and enough bytes for the fixed header plus declared CSRCs and
// extension. It does not restrict the payload type (§4.1.1: the Peafowl
// payload-type restriction is deliberately removed).
func LooksLikeHeader(b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	if b[0]>>6 != Version {
		return false
	}
	need := HeaderLen + int(b[0]&0x0f)*4
	if len(b) < need {
		return false
	}
	if b[0]&0x10 != 0 { // extension bit
		if len(b) < need+4 {
			return false
		}
		extWords := int(uint16(b[need+2])<<8 | uint16(b[need+3]))
		if len(b) < need+4+extWords*4 {
			return false
		}
	}
	return true
}

// Decode parses an RTP packet occupying all of b. RTP carries no length
// field, so the packet is assumed to extend to the end of the datagram
// (or to the end of the slice the DPI hands in). The returned packet's
// byte slices (Payload, Raw, extension data and elements) alias b: the
// caller must not mutate b while the packet is in use.
func Decode(b []byte) (*Packet, error) {
	p := new(Packet)
	if err := DecodeInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto is Decode into a caller-provided Packet, reusing its CSRC
// storage. The DPI probes candidate offsets far more often than it
// accepts one, so the probe path decodes into a stack Packet and copies
// to the heap only on acceptance. On error *p is partially overwritten.
func DecodeInto(p *Packet, b []byte) error {
	if len(b) < HeaderLen {
		return errShortPacket
	}
	r := bytesutil.NewReader(b)
	b0 := r.Uint8()
	if b0>>6 != Version {
		return errBadVersion
	}
	b1 := r.Uint8()
	*p = Packet{
		Version:        b0 >> 6,
		Padding:        b0&0x20 != 0,
		HasExtension:   b0&0x10 != 0,
		CSRCCount:      b0 & 0x0f,
		Marker:         b1&0x80 != 0,
		PayloadType:    b1 & 0x7f,
		SequenceNumber: r.Uint16(),
		Timestamp:      r.Uint32(),
		SSRC:           r.Uint32(),
		CSRC:           p.CSRC[:0],
	}
	for i := 0; i < int(p.CSRCCount); i++ {
		p.CSRC = append(p.CSRC, r.Uint32())
	}
	if p.HasExtension {
		profile := r.Uint16()
		words := r.Uint16()
		data := r.Bytes(int(words) * 4)
		if r.Failed() {
			return errShortExt
		}
		ext := &Extension{Profile: profile, Data: data}
		if profile == ProfileOneByte {
			ext.Elements, ext.ParseOK = parseOneByte(data)
		} else if profile&ProfileTwoByteMask == ProfileTwoByteBase {
			ext.Elements, ext.ParseOK = parseTwoByte(data)
		}
		p.Extension = ext
	}
	if err := r.Err(); err != nil {
		return errShortHeader
	}
	payload := r.Rest()
	if p.Padding {
		if len(payload) == 0 {
			return errEmptyPadding
		}
		pl := payload[len(payload)-1]
		if int(pl) > len(payload) || pl == 0 {
			return errBadPadding
		}
		p.PaddingLen = pl
		payload = payload[:len(payload)-int(pl)]
	}
	p.Payload = payload
	p.Raw = b
	return nil
}

// parseOneByte parses one-byte-form extension elements (RFC 8285 §4.2).
// ID=0 bytes are padding; per the RFC an ID of 0 must have no length, so
// a lone zero byte is consumed as padding. To surface Discord's
// violation (ID=0 with a length), a zero ID whose low nibble is nonzero
// is recorded as an element with that payload rather than rejected.
func parseOneByte(data []byte) ([]ExtensionElement, bool) {
	var elems []ExtensionElement
	i := 0
	for i < len(data) {
		b := data[i]
		if b == 0 { // padding byte
			i++
			continue
		}
		id := b >> 4
		length := int(b&0x0f) + 1
		if id == 15 {
			// Reserved: stop processing (RFC 8285 §4.2) but report what
			// was parsed so far.
			return elems, true
		}
		if i+1+length > len(data) {
			return elems, false
		}
		elems = append(elems, ExtensionElement{
			ID:      id,
			Payload: data[i+1 : i+1+length],
		})
		i += 1 + length
	}
	return elems, true
}

// parseTwoByte parses two-byte-form extension elements (RFC 8285 §4.3).
func parseTwoByte(data []byte) ([]ExtensionElement, bool) {
	var elems []ExtensionElement
	i := 0
	for i < len(data) {
		if data[i] == 0 { // padding
			i++
			continue
		}
		if i+2 > len(data) {
			return elems, false
		}
		id := data[i]
		length := int(data[i+1])
		if i+2+length > len(data) {
			return elems, false
		}
		elems = append(elems, ExtensionElement{
			ID:      id,
			Payload: data[i+2 : i+2+length],
		})
		i += 2 + length
	}
	return elems, true
}

// Encode serializes the packet. Version is forced to 2; the CSRC count,
// extension bit, and padding bit are derived from the populated fields.
// If Padding is true, PaddingLen zero bytes (with the count in the final
// byte) are appended.
func (p *Packet) Encode() []byte {
	w := bytesutil.NewWriter(HeaderLen + len(p.Payload) + 16)
	b0 := byte(Version << 6)
	if p.Padding && p.PaddingLen > 0 {
		b0 |= 0x20
	}
	if p.Extension != nil {
		b0 |= 0x10
	}
	b0 |= uint8(len(p.CSRC)) & 0x0f
	w.Uint8(b0)
	b1 := p.PayloadType & 0x7f
	if p.Marker {
		b1 |= 0x80
	}
	w.Uint8(b1)
	w.Uint16(p.SequenceNumber)
	w.Uint32(p.Timestamp)
	w.Uint32(p.SSRC)
	for _, c := range p.CSRC {
		w.Write([]byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)})
	}
	if p.Extension != nil {
		data := p.Extension.Data
		if data == nil && p.Extension.Elements != nil {
			data = encodeElements(p.Extension)
		}
		// Pad the extension payload to a whole number of words.
		padded := append([]byte(nil), data...)
		for len(padded)%4 != 0 {
			padded = append(padded, 0)
		}
		w.Uint16(p.Extension.Profile)
		w.Uint16(uint16(len(padded) / 4))
		w.Write(padded)
	}
	w.Write(p.Payload)
	if p.Padding && p.PaddingLen > 0 {
		w.Zero(int(p.PaddingLen) - 1)
		w.Uint8(p.PaddingLen)
	}
	p.Raw = w.Bytes()
	return p.Raw
}

// encodeElements serializes Elements in the form selected by Profile.
func encodeElements(e *Extension) []byte {
	w := bytesutil.NewWriter(16)
	if e.Profile == ProfileOneByte {
		for _, el := range e.Elements {
			n := len(el.Payload)
			if n == 0 {
				n = 1 // one-byte form cannot express zero-length
			}
			w.Uint8(el.ID<<4 | uint8(n-1)&0x0f)
			w.Write(el.Payload)
		}
	} else {
		for _, el := range e.Elements {
			w.Uint8(el.ID)
			w.Uint8(uint8(len(el.Payload)))
			w.Write(el.Payload)
		}
	}
	return w.Bytes()
}

// HeaderSize reports the byte length of the header (fixed + CSRC +
// extension) of the decoded packet.
func (p *Packet) HeaderSize() int {
	n := HeaderLen + len(p.CSRC)*4
	if p.Extension != nil {
		n += 4 + len(p.Extension.Data)
	}
	return n
}
