// Package quicdrv registers QUIC with the wire-protocol registry: the
// invariants-based long-header prober, the context-gated short-header
// prober (known DCID at the established length), and the header-rule
// compliance judge.
package quicdrv

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
)

func init() {
	proto.Register(handler{})
}

// Precedence orders QUIC after the RTC protocols' stronger fingerprints
// (RFC 7983 would put it at first-byte 128+, but the RTP/RTCP version
// bits overlap) and before the weak classic-STUN and RTP probers.
const Precedence = 40

type handler struct{}

func (handler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.QUIC,
		Name:        "QUIC",
		Slug:        "quic",
		Family:      proto.QUIC,
		Order:       4,
		Fingerprint: "long header: form+fixed bits with version 1 or Version Negotiation; short header: known DCID at the established length",
		Fuzz:        "./internal/quicwire:FuzzParseLong",
	}
}

func (handler) Probers() []proto.Prober {
	return []proto.Prober{{
		Precedence: Precedence,
		// Long headers set the form bit; short headers clear it and set
		// the fixed bit.
		First:    func(b byte) bool { return b&0x80 != 0 || b&0xc0 == 0x40 },
		Validate: match,
	}}
}

// streamState is QUIC's per-stream DPI state: connection IDs introduced
// by long headers, and the DCID length short headers must use.
type streamState struct {
	cids        map[string]bool
	shortCIDLen int
}

func state(st *proto.StreamState) *streamState {
	if v := st.Slot(proto.QUIC); v != nil {
		return v.(*streamState)
	}
	s := &streamState{cids: make(map[string]bool)}
	st.SetSlot(proto.QUIC, s)
	return s
}

// match matches QUIC long headers structurally, and short headers only
// when the stream has established QUIC state (a known DCID at the
// expected length), mirroring the paper's DCID/SCID consistency
// heuristic.
func match(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if quicwire.IsLongHeader(b) {
		// Probe into a stack Header (CIDs aliasing b); most candidate
		// offsets are rejected, so the heap copy waits for acceptance.
		var probe quicwire.Header
		if quicwire.ParseLongInto(&probe, b) != nil {
			return proto.Message{}, false
		}
		if probe.Version != quicwire.Version1 && probe.Version != quicwire.VersionNegotiation {
			return proto.Message{}, false
		}
		if probe.Version == quicwire.Version1 && !probe.FixedBit {
			return proto.Message{}, false
		}
		if probe.Version == quicwire.VersionNegotiation {
			// A real Version Negotiation packet lists at least one
			// nonzero version; all-zero regions of proprietary payloads
			// would otherwise masquerade as VN.
			if len(probe.SupportedVersions) == 0 {
				return proto.Message{}, false
			}
			for _, v := range probe.SupportedVersions {
				if v == 0 {
					return proto.Message{}, false
				}
			}
		}
		length := len(b) // Retry and VN consume the datagram
		if probe.Version == quicwire.Version1 && probe.Type != quicwire.TypeRetry {
			length = probe.HeaderLen + int(probe.PayloadLength)
		}
		qs := state(st)
		if len(probe.DCID) > 0 {
			qs.cids[string(probe.DCID)] = true
			qs.shortCIDLen = len(probe.DCID)
		}
		if len(probe.SCID) > 0 {
			qs.cids[string(probe.SCID)] = true
		}
		h := new(quicwire.Header)
		*h = probe
		h.CloneCIDs()
		return proto.Message{Protocol: proto.QUIC, Length: length, QUIC: h}, true
	}
	// Short header: requires context.
	qs, _ := st.Slot(proto.QUIC).(*streamState)
	if qs == nil || qs.shortCIDLen == 0 || len(b) < 1+qs.shortCIDLen {
		return proto.Message{}, false
	}
	if b[0]&0xc0 != 0x40 { // form 0, fixed bit 1
		return proto.Message{}, false
	}
	h, err := quicwire.ParseShort(b, qs.shortCIDLen)
	if err != nil || !qs.cids[string(h.DCID)] {
		return proto.Message{}, false
	}
	return proto.Message{Protocol: proto.QUIC, Length: len(b), QUIC: h}, true
}

func quicTypeKey(h *quicwire.Header) proto.TypeKey {
	label := "short header"
	if h.Long {
		if h.Version == quicwire.VersionNegotiation {
			label = "version negotiation"
		} else {
			label = "long header " + h.Type.String()
		}
	}
	return proto.TypeKey{Protocol: proto.QUIC, Label: label}
}

// session is QUIC's per-stream compliance state: connection IDs seen in
// judged headers.
type session struct {
	cids map[string]bool
}

func sess(s *proto.Session) *session {
	if v := s.Slot(proto.QUIC); v != nil {
		return v.(*session)
	}
	st := &session{cids: make(map[string]bool)}
	s.SetSlot(proto.QUIC, st)
	return st
}

// Comply applies the five criteria to a QUIC packet header. Payloads
// are encrypted by design, so only the invariant and v1 header rules
// apply.
func (handler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	h := m.QUIC
	c := proto.Checked{
		Protocol:  proto.QUIC,
		Type:      quicTypeKey(h),
		Bytes:     m.Length,
		Timestamp: ts,
	}
	c.Verdict = sess(s).quicVerdict(h)
	return append(dst, c)
}

func (st *session) quicVerdict(h *quicwire.Header) proto.Verdict {
	// Criterion 1: packet type. Long-header types 0-3 are all defined
	// in v1; Version Negotiation is defined by the invariants; short
	// headers are 1-RTT packets.

	// Criterion 2: header fields.
	if h.Long {
		if h.Version != quicwire.Version1 && h.Version != quicwire.VersionNegotiation {
			return proto.Fail(proto.CritHeader, "unknown QUIC version %#08x", h.Version)
		}
		if h.Version == quicwire.Version1 && !h.FixedBit {
			return proto.Fail(proto.CritHeader, "fixed bit is zero in a v1 long header")
		}
		if len(h.DCID) > quicwire.MaxCIDLen || len(h.SCID) > quicwire.MaxCIDLen {
			return proto.Fail(proto.CritHeader, "connection ID longer than 20 bytes in v1")
		}
	} else if !h.FixedBit {
		return proto.Fail(proto.CritHeader, "fixed bit is zero in a short header")
	}

	// Criteria 3-4 do not apply: QUIC headers carry no TLV attributes
	// and the payload is encrypted.

	// Criterion 5: connection-ID consistency across the stream. A short
	// header whose DCID was never introduced by a long header would be
	// flagged, but the DPI already refuses to extract such packets; we
	// record CIDs for completeness.
	if len(h.DCID) > 0 {
		st.cids[string(h.DCID)] = true
	}
	if len(h.SCID) > 0 {
		st.cids[string(h.SCID)] = true
	}
	return proto.Ok()
}
