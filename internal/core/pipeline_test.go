package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/report"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

var t0 = time.Unix(1700000000, 0).UTC()

// runMatrix analyzes a small version of the paper's experiment matrix
// once and caches the result for all assertions.
var matrixResult *MatrixAnalysis

func matrix(t *testing.T) *MatrixAnalysis {
	t.Helper()
	if matrixResult != nil {
		return matrixResult
	}
	ma, err := RunMatrix(trace.MatrixOptions{
		Runs:         2,
		CallDuration: 8 * time.Second,
		PrePost:      10 * time.Second,
		MediaRate:    15,
		Start:        t0,
		BaseSeed:     1000,
		Background:   true,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matrixResult = ma
	return ma
}

func appStats(t *testing.T, app appsim.App) *report.AppStats {
	t.Helper()
	return matrix(t).Aggregate.App(string(app))
}

func TestMatrixShape(t *testing.T) {
	ma := matrix(t)
	if ma.Captures != 6*3*2 {
		t.Errorf("captures = %d, want 36", ma.Captures)
	}
	if len(ma.Table1) != 6 {
		t.Errorf("table1 rows = %d", len(ma.Table1))
	}
}

// Table 3 (paper): per-app type-compliance ratios.
func TestTypeComplianceMatrix(t *testing.T) {
	cases := []struct {
		app       appsim.App
		fam       dpi.Protocol
		compliant int
		total     int
	}{
		{appsim.Zoom, dpi.ProtoSTUN, 0, 2},
		{appsim.Zoom, dpi.ProtoRTCP, 2, 2},
		{appsim.FaceTime, dpi.ProtoSTUN, 0, 4},
		{appsim.FaceTime, dpi.ProtoRTP, 0, 5},
		{appsim.FaceTime, dpi.ProtoQUIC, 4, 4},
		{appsim.WhatsApp, dpi.ProtoSTUN, 1, 10},
		{appsim.WhatsApp, dpi.ProtoRTP, 5, 5},
		{appsim.WhatsApp, dpi.ProtoRTCP, 4, 4},
		{appsim.Messenger, dpi.ProtoSTUN, 11, 18},
		{appsim.Messenger, dpi.ProtoRTP, 5, 5},
		{appsim.Messenger, dpi.ProtoRTCP, 4, 4},
		{appsim.Discord, dpi.ProtoRTP, 0, 4},
		{appsim.Discord, dpi.ProtoRTCP, 0, 5},
		{appsim.GoogleMeet, dpi.ProtoSTUN, 15, 16},
		{appsim.GoogleMeet, dpi.ProtoRTP, 11, 11},
		{appsim.GoogleMeet, dpi.ProtoRTCP, 0, 7},
	}
	for _, tc := range cases {
		s := appStats(t, tc.app)
		c, tot := s.TypeCompliance(tc.fam)
		if c != tc.compliant || tot != tc.total {
			comp, non := s.TypesOf(tc.fam)
			t.Errorf("%s %s: %d/%d, want %d/%d\n  compliant: %v\n  non-compliant: %v",
				tc.app, tc.fam, c, tot, tc.compliant, tc.total, comp, non)
			for key, ts := range s.Types {
				if key.Protocol == tc.fam && !ts.Compliant() {
					for r, n := range ts.Reasons {
						t.Logf("  %s %s: %dx %s", tc.app, key.Label, n, r)
					}
				}
			}
		}
	}
}

// Zoom's RTP payload types must all be compliant and cover Table 5's
// set (53 distinct values as listed in the paper's table).
func TestZoomRTPTypes(t *testing.T) {
	s := appStats(t, appsim.Zoom)
	c, tot := s.TypeCompliance(dpi.ProtoRTP)
	if c != tot {
		t.Errorf("Zoom RTP compliance %d/%d, want all compliant", c, tot)
	}
	if tot != 53 {
		t.Errorf("Zoom RTP types = %d, want 53 (Table 5 list)", tot)
	}
}

// Discord must show no STUN/TURN at all (Table 2: N/A).
func TestDiscordNoSTUN(t *testing.T) {
	s := appStats(t, appsim.Discord)
	if ps := s.ByProtocol[dpi.ProtoSTUN]; ps != nil && ps.Messages > 0 {
		t.Errorf("Discord STUN messages = %d, want none", ps.Messages)
	}
	if ps := s.ByProtocol[dpi.ProtoQUIC]; ps != nil && ps.Messages > 0 {
		t.Errorf("Discord QUIC messages = %d, want none", ps.Messages)
	}
}

// Figure 4 (paper): compliance by traffic volume. FaceTime lowest;
// Zoom and WhatsApp near-perfect; everyone else above 80%.
func TestVolumeCompliance(t *testing.T) {
	get := func(app appsim.App) float64 {
		r, ok := appStats(t, app).VolumeCompliance()
		if !ok {
			t.Fatalf("%s: no messages", app)
		}
		return r
	}
	if r := get(appsim.Zoom); r < 0.99 {
		t.Errorf("Zoom volume compliance = %.3f, want ≥0.99", r)
	}
	// The paper reports ≥95% for WhatsApp and Messenger on 5-minute
	// calls; at this test's 8-second scale the per-call setup bursts
	// (16 0x0801/0x0802 pairs, teardown 0x0800s) weigh ~40x more, so
	// the thresholds here are proportionally lower. The benchmarks use
	// longer calls and approach the paper's values.
	if r := get(appsim.WhatsApp); r < 0.89 {
		t.Errorf("WhatsApp volume compliance = %.3f, want ≥0.89", r)
	}
	if r := get(appsim.Messenger); r < 0.85 {
		t.Errorf("Messenger volume compliance = %.3f, want ≥0.85", r)
	}
	if r := get(appsim.GoogleMeet); r < 0.80 {
		t.Errorf("Meet volume compliance = %.3f, want ≥0.80", r)
	}
	if r := get(appsim.Discord); r < 0.75 || r > 0.95 {
		t.Errorf("Discord volume compliance = %.3f, want mid-range", r)
	}
	ft := get(appsim.FaceTime)
	if ft > 0.10 {
		t.Errorf("FaceTime volume compliance = %.3f, want ≤0.10 (lowest)", ft)
	}
	for _, app := range appsim.Apps {
		if app == appsim.FaceTime {
			continue
		}
		if get(app) <= ft {
			t.Errorf("%s compliance %.3f not above FaceTime's %.3f", app, get(app), ft)
		}
	}
}

// QUIC is the only fully compliant protocol; STUN > RTP > RTCP ordering
// does not hold by volume (the paper's volume ordering is
// QUIC > STUN > RTP > RTCP).
func TestProtocolVolumeCompliance(t *testing.T) {
	ma := matrix(t)
	get := func(fam dpi.Protocol) float64 {
		vol, _, _ := ma.Aggregate.ProtocolRollup(fam)
		if vol.Messages == 0 {
			t.Fatalf("%v: no messages", fam)
		}
		return float64(vol.Compliant) / float64(vol.Messages)
	}
	if q := get(dpi.ProtoQUIC); q != 1.0 {
		t.Errorf("QUIC volume compliance = %.3f, want 1.0", q)
	}
	stun, rtcp := get(dpi.ProtoSTUN), get(dpi.ProtoRTCP)
	if stun <= rtcp {
		t.Errorf("STUN (%.3f) should exceed RTCP (%.3f)", stun, rtcp)
	}
}

// Figure 3 (paper): Zoom has no standard datagrams and ~20% fully
// proprietary; WhatsApp/Messenger/Discord/Meet are almost entirely
// standard; FaceTime sits in between with a large proprietary-header
// share.
func TestDatagramBreakdown(t *testing.T) {
	frac := func(app appsim.App, class dpi.Class) float64 {
		s := appStats(t, app)
		total := 0
		for _, n := range s.Datagrams {
			total += n
		}
		return float64(s.Datagrams[class]) / float64(total)
	}
	if f := frac(appsim.Zoom, dpi.ClassStandard); f > 0.01 {
		t.Errorf("Zoom standard fraction = %.3f, want ≈0", f)
	}
	if f := frac(appsim.Zoom, dpi.ClassFullyProprietary); f < 0.12 || f > 0.30 {
		t.Errorf("Zoom fully proprietary = %.3f, want ≈0.20", f)
	}
	for _, app := range []appsim.App{appsim.WhatsApp, appsim.Messenger, appsim.Discord, appsim.GoogleMeet} {
		if f := frac(app, dpi.ClassStandard); f < 0.90 {
			t.Errorf("%s standard fraction = %.3f, want ≥0.90", app, f)
		}
	}
	if f := frac(appsim.FaceTime, dpi.ClassProprietaryHeader); f < 0.20 {
		t.Errorf("FaceTime proprietary header = %.3f, want substantial", f)
	}
}

// Table 2 (paper): Google Meet has by far the largest STUN/TURN message
// share (19.8%) because relay video rides in ChannelData.
func TestMeetSTUNShare(t *testing.T) {
	s := appStats(t, appsim.GoogleMeet)
	units := s.MessageUnits()
	st := s.ByProtocol[dpi.ProtoSTUN]
	if st == nil {
		t.Fatal("Meet: no STUN messages")
	}
	share := float64(st.Messages) / float64(units)
	if share < 0.10 || share > 0.50 {
		t.Errorf("Meet STUN/TURN share = %.3f, want large (paper: 19.8%%)", share)
	}
	for _, app := range []appsim.App{appsim.Zoom, appsim.WhatsApp, appsim.Messenger} {
		o := appStats(t, app)
		os := o.ByProtocol[dpi.ProtoSTUN]
		if os == nil {
			continue
		}
		if oshare := float64(os.Messages) / float64(o.MessageUnits()); oshare >= share {
			t.Errorf("%s STUN share %.3f not below Meet's %.3f", app, oshare, share)
		}
	}
}

// The behavioural findings of §5.3 must all be detected.
func TestFindings(t *testing.T) {
	ma := matrix(t)
	want := map[string]string{ // kind -> app
		FindingFiller:          string(appsim.Zoom),
		FindingKeepalive:       string(appsim.FaceTime),
		FindingDoubleRTP:       string(appsim.Zoom),
		FindingZeroSSRC:        string(appsim.Discord),
		FindingDirectionByte:   string(appsim.Discord),
		FindingHeaderDirection: string(appsim.Zoom),
		Finding6000Header:      string(appsim.FaceTime),
		FindingSSRCReuse:       string(appsim.Zoom),
	}
	found := make(map[string]map[string]bool)
	for _, f := range ma.Findings {
		if found[f.Kind] == nil {
			found[f.Kind] = make(map[string]bool)
		}
		found[f.Kind][f.App] = true
	}
	for kind, app := range want {
		if !found[kind][app] {
			t.Errorf("finding %q not detected for %s (have %v)", kind, app, found[kind])
		}
	}
	// SSRC reuse must NOT be reported for apps with random SSRCs.
	for _, app := range []appsim.App{appsim.WhatsApp, appsim.Messenger, appsim.Discord, appsim.GoogleMeet, appsim.FaceTime} {
		if found[FindingSSRCReuse][string(app)] {
			t.Errorf("spurious SSRC-reuse finding for %s", app)
		}
	}
}

// Criterion-5 violations must be attributed for the semantic cases.
func TestSemanticViolationsPresent(t *testing.T) {
	for _, app := range []appsim.App{appsim.FaceTime, appsim.GoogleMeet, appsim.Discord} {
		s := appStats(t, app)
		if s.Violations[compliance.CritSemantics] == 0 {
			t.Errorf("%s: no criterion-5 violations recorded", app)
		}
	}
}

// Rendering must produce non-empty output for every table and figure.
func TestRendering(t *testing.T) {
	ma := matrix(t)
	outputs := map[string]string{
		"table1":     report.Table1(ma.Table1),
		"table2":     report.Table2(ma.Aggregate),
		"table3":     report.Table3(ma.Aggregate),
		"table4":     report.Table4(ma.Aggregate),
		"table5":     report.Table5(ma.Aggregate),
		"table6":     report.Table6(ma.Aggregate),
		"figure3":    report.Figure3(ma.Aggregate),
		"figure4":    report.Figure4(ma.Aggregate),
		"figure5":    report.Figure5(ma.Aggregate),
		"violations": report.Violations(ma.Aggregate),
	}
	for name, out := range outputs {
		if len(out) < 80 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
}

// AnalyzePCAP must reproduce the in-memory analysis from a pcap file.
func TestAnalyzePCAPRoundTrip(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.WhatsApp, Network: appsim.WiFiRelay, Seed: 7,
		Start: t0, CallDuration: 6 * time.Second, PrePost: 8 * time.Second,
		MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	fromPCAP, err := AnalyzePCAP(bytes.NewReader(buf.Bytes()), "WhatsApp", cap.CallStart, cap.CallEnd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := AnalyzeCapture(CaptureInput{
		Label: "WhatsApp", LinkType: pcap.LinkTypeRaw,
		Packets: cap.Frames(), CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromPCAP.Filter.RTC) != len(direct.Filter.RTC) {
		t.Errorf("RTC streams: pcap %d vs direct %d", len(fromPCAP.Filter.RTC), len(direct.Filter.RTC))
	}
	v1, _ := fromPCAP.Stats.VolumeCompliance()
	v2, _ := direct.Stats.VolumeCompliance()
	if v1 != v2 {
		t.Errorf("volume compliance: pcap %.4f vs direct %.4f", v1, v2)
	}
}

func TestAnalyzeCaptureValidation(t *testing.T) {
	if _, err := AnalyzeCapture(CaptureInput{CallStart: t0, CallEnd: t0.Add(-time.Second)}, Options{}); err == nil {
		t.Error("inverted window accepted")
	}
	// Undecodable frames only.
	_, err := AnalyzeCapture(CaptureInput{
		LinkType:  pcap.LinkTypeRaw,
		Packets:   []pcap.Packet{{Timestamp: t0, Data: []byte{0xff, 0xff}}},
		CallStart: t0, CallEnd: t0.Add(time.Second),
	}, Options{})
	if err == nil {
		t.Error("capture with zero decodable packets accepted")
	}
}

func TestDedupFindings(t *testing.T) {
	in := []Finding{
		{App: "a", Kind: "k", Count: 1, Detail: "x"},
		{App: "a", Kind: "k", Count: 2},
		{App: "b", Kind: "k", Count: 3},
	}
	out := dedupFindings(in)
	if len(out) != 2 {
		t.Fatalf("deduped to %d", len(out))
	}
	if out[0].Count != 3 || out[0].Detail != "x" {
		t.Errorf("merged = %+v", out[0])
	}
}

// AnalyzePCAP must auto-detect pcapng streams.
func TestAnalyzePCAPNG(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.Zoom, Network: appsim.WiFiRelay, Seed: 71,
		Start: t0, CallDuration: 5 * time.Second, PrePost: 6 * time.Second,
		MediaRate: 15, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewNGWriter(&buf, pcap.LinkTypeRaw)
	for _, f := range cap.Frames() {
		if err := w.WritePacket(f); err != nil {
			t.Fatal(err)
		}
	}
	ng, err := AnalyzePCAP(bytes.NewReader(buf.Bytes()), "zoom-ng", cap.CallStart, cap.CallEnd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := AnalyzeCapture(CaptureInput{
		Label: "zoom", LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc, nt := ng.Stats.TypeCompliance(0)
	dc, dt := direct.Stats.TypeCompliance(0)
	if nc != dc || nt != dt {
		t.Errorf("pcapng %d/%d vs direct %d/%d", nc, nt, dc, dt)
	}
}
