// Command rtcfuzz builds fuzz corpora from RTC captures: it extracts
// the validated protocol messages from a pcap with the DPI engine and
// writes deterministic mutated variants, ready to throw at any RTC
// parser under test. This implements the "foundation for fuzz testing"
// use the paper names for its released framework.
//
// Usage:
//
//	rtcfuzz -pcap traces/000_zoom_wi-fi-p2p.pcap -out corpus/ -n 500
//	rtcfuzz -pcap call.pcap -out corpus/ -strategy truncate,type-swap
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/mutate"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)

// newFlags registers rtcfuzz's flag surface (pinned by the golden
// surface test).
func newFlags() (fs *flag.FlagSet, pcapPath, outDir *string, n *int, seed *uint64,
	strategy *string, keepSeeds, version *bool) {
	fs = flag.NewFlagSet("rtcfuzz", flag.ExitOnError)
	pcapPath = fs.String("pcap", "", "capture to harvest seed messages from")
	outDir = fs.String("out", "corpus", "output directory for corpus files")
	n = fs.Int("n", 200, "number of mutated variants to write")
	seed = fs.Uint64("seed", 1, "mutation seed (corpus is reproducible)")
	strategy = fs.String("strategy", "", "comma-separated strategies (default: all)")
	keepSeeds = fs.Bool("seeds", true, "also write the unmutated seed messages")
	version = cmdutil.VersionFlag(fs)
	return
}

func main() {
	fs, pcapPath, outDir, n, seed, strategy, keepSeeds, version := newFlags()
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if *version {
		cmdutil.PrintVersion(os.Stdout, "rtcfuzz")
		return
	}
	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "rtcfuzz: -pcap is required")
		os.Exit(2)
	}
	if err := run(*pcapPath, *outDir, *n, *seed, *strategy, *keepSeeds); err != nil {
		fmt.Fprintln(os.Stderr, "rtcfuzz:", err)
		os.Exit(1)
	}
}

func run(pcapPath, outDir string, n int, seed uint64, strategy string, keepSeeds bool) error {
	f, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	frames, err := r.ReadAll()
	if err != nil {
		return err
	}

	// Harvest validated messages per stream.
	table := flow.NewTable()
	for _, fr := range frames {
		pkt, err := layers.Decode(r.LinkType(), fr.Data)
		if err != nil {
			continue
		}
		table.Add(fr.Timestamp, pkt)
	}
	engine := dpi.NewEngine()
	var seedMsgs [][]byte
	for _, s := range table.Streams() {
		if s.Key.Proto != layers.IPProtocolUDP {
			continue
		}
		payloads := make([][]byte, len(s.Packets))
		for i, p := range s.Packets {
			payloads[i] = p.Payload
		}
		for i, res := range engine.InspectStream(payloads) {
			for _, m := range res.Messages {
				msg := payloads[i][m.Offset : m.Offset+m.Length]
				seedMsgs = append(seedMsgs, msg)
			}
		}
	}
	if len(seedMsgs) == 0 {
		return fmt.Errorf("no protocol messages found in %s", pcapPath)
	}
	// Deduplicate identical seeds to keep the corpus diverse.
	seen := map[string]bool{}
	var unique [][]byte
	for _, m := range seedMsgs {
		k := string(m)
		if !seen[k] {
			seen[k] = true
			unique = append(unique, m)
		}
	}

	fz := mutate.New(seed)
	if strategy != "" {
		for _, name := range strings.Split(strategy, ",") {
			fz.Allowed = append(fz.Allowed, mutate.Strategy(strings.TrimSpace(name)))
		}
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written := 0
	if keepSeeds {
		for i, m := range unique {
			name := filepath.Join(outDir, fmt.Sprintf("seed_%04d.bin", i))
			if err := os.WriteFile(name, m, 0o644); err != nil {
				return err
			}
			written++
		}
	}
	for i := 0; i < n; i++ {
		m, strat := fz.Mutate(unique[i%len(unique)])
		name := filepath.Join(outDir, fmt.Sprintf("mut_%05d_%s.bin", i, strat))
		if err := os.WriteFile(name, m, 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("harvested %d unique seed messages from %d datagram payloads; wrote %d corpus files to %s\n",
		len(unique), table.PacketCount(), written, outDir)
	return nil
}
