# Build/test entry points, mirrored by .github/workflows/ci.yml.
GO          ?= go
FUZZTIME    ?= 5s
COVER_FLOOR ?= 70
# The natsim impairment stage feeds every adverse-network suite, so it
# carries a higher floor than the observability packages.
COVER_FLOOR_NATSIM ?= 80
# The buffer pool underpins the zero-copy hot path: a regression there
# corrupts payloads silently, so it carries the highest floor.
COVER_FLOOR_BUFPOOL ?= 85
# The sharded ingest tier owns the only cross-goroutine handoff in the
# pipeline; its accounting and merge invariants are all test-enforced.
COVER_FLOOR_INGEST ?= 85
# The QoE estimator and alert engine drive operator-facing paging
# decisions, so their logic (debounce, hysteresis, feature math) must
# stay almost fully unit-covered.
COVER_FLOOR_QOE   ?= 80
COVER_FLOOR_ALERT ?= 80

.PHONY: all vet staticcheck build test race fuzz-smoke cover bench bench-json bench-check proto-list trace-smoke impair-smoke shard-smoke daemon-smoke ci

all: build

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs the pinned staticcheck; local
# runs skip quietly when the binary is absent so `make ci` works in
# minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly against its seed corpus plus a short
# mutation budget. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzInspect -fuzztime=$(FUZZTIME) ./internal/dpi
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChannelData -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCompound -fuzztime=$(FUZZTIME) ./internal/rtcp
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/rtp
	$(GO) test -run='^$$' -fuzz=FuzzParseLong -fuzztime=$(FUZZTIME) ./internal/quicwire
	$(GO) test -run='^$$' -fuzz=FuzzDTLSProbe -fuzztime=$(FUZZTIME) ./internal/proto/dtlsdrv
	$(GO) test -run='^$$' -fuzz=FuzzDecapsulate -fuzztime=$(FUZZTIME) ./internal/live
	$(GO) test -run='^$$' -fuzz=FuzzFeedBatch -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzImpair -fuzztime=$(FUZZTIME) ./internal/natsim

# Per-package coverage table, plus a hard floor on the observability
# packages: internal/metrics and internal/obs must each stay at or
# above $(COVER_FLOOR)%.
cover:
	$(GO) test -cover ./...
	@for pkg in internal/metrics internal/obs; do \
		$(GO) test -coverprofile=coverage.out ./$$pkg || exit 1; \
		$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) -v pkg=$$pkg \
			'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
			 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1; \
	done
	@$(GO) test -coverprofile=coverage.out ./internal/natsim || exit 1; \
	$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR_NATSIM) -v pkg=internal/natsim \
		'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1
	@$(GO) test -coverprofile=coverage.out ./internal/bufpool || exit 1; \
	$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR_BUFPOOL) -v pkg=internal/bufpool \
		'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1
	@$(GO) test -coverprofile=coverage.out ./internal/ingest || exit 1; \
	$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR_INGEST) -v pkg=internal/ingest \
		'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1
	@$(GO) test -coverprofile=coverage.out ./internal/qoe || exit 1; \
	$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR_QOE) -v pkg=internal/qoe \
		'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1
	@$(GO) test -coverprofile=coverage.out ./internal/alert || exit 1; \
	$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR_ALERT) -v pkg=internal/alert \
		'/^total:/ { pct = $$3+0; printf "%s coverage: %s (floor %d%%)\n", pkg, $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }' || exit 1

# End-to-end trace smoke: generate a small capture, export its decision
# trace, and validate the JSONL against the event-schema linter. The
# -explain query must name the failing criterion for the seeded
# non-compliant STUN message.
trace-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/rtcgen -out $$dir -app Zoom -network wifi-p2p -duration 5s -runs 1 >/dev/null && \
	$(GO) run ./cmd/rtccheck -manifest $$dir/manifest.json -trace-out $$dir/trace.jsonl >/dev/null && \
	$(GO) run ./cmd/rtctrace -in $$dir/trace.jsonl -lint && \
	$(GO) run ./cmd/rtctrace -in $$dir/trace.jsonl -explain "Zoom" | grep -q "failed criterion" && \
	echo "trace-smoke: export, lint, and explain OK"

# Reduced impairment matrix under the race detector: -short trims the
# differential suite to 2 apps x 3 profiles x 2 seeds, the same cells
# the CI impair-matrix job runs.
impair-smoke:
	$(GO) test -short -race -count=1 -run 'TestImpair|TestRelayConcurrent|TestBurst|TestRunMatrixPublishesImpairStats' \
		./internal/natsim ./internal/appsim ./internal/trace ./internal/core

# Sharded-ingest smoke under the race detector: the shard-count
# invariance sweep, the accounting semantics, and the race hammer;
# plus the serial streaming differential pinned at GOMAXPROCS=2, where
# scheduler interleavings differ from both the 1-CPU and many-CPU
# shapes.
shard-smoke:
	$(GO) test -short -race -count=1 \
		-run 'TestShardCountInvariance|TestShardInvarianceUnderImpairment|TestShardedPCAPMatchesSerial|TestDropConservation|TestFlushBarrier|TestShardRaceHammer' \
		./internal/ingest
	GOMAXPROCS=2 $(GO) test -short -race -count=1 -run 'TestStreamingBatchEquivalence' ./internal/core

# End-to-end daemon smoke: start the rtclive compliance daemon against
# appsim traffic on ephemeral ports, scrape /compliance/trend,
# SIGHUP-reload with a changed config, and assert a clean SIGTERM
# drain with conservation accounting.
daemon-smoke:
	sh scripts/daemon_smoke.sh

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the hot-path throughput baseline: the scenario matrix
# (Feed / FeedBatch / batch over relay, P2P, and media-heavy loads)
# measured best-of-N and written as BENCH_hotpath.json. Run on a quiet
# machine and commit the result alongside the change that moved it.
bench-json:
	$(GO) run ./cmd/rtcbench -out BENCH_hotpath.json

# Regression gate against the committed baseline: fails on >15% ingest
# slowdown or any allocs/op increase beyond jitter in any scenario.
# When the current host differs from the baseline's recorded host
# (CPU model, core count, GOMAXPROCS), timing regressions demote to
# warnings — hardware deltas are not regressions — while the
# allocation gate stays hard. On hosts with >= 4 CPUs the gate also
# requires sharded4/media-heavy >= 3x sharded1 throughput.
bench-check:
	$(GO) run ./cmd/rtcbench -baseline BENCH_hotpath.json

# List the registered wire protocols: one row per handler with family,
# demultiplexing precedence, fuzz target, and wire fingerprint. The
# registry golden test (protolist_test.go) keeps this listing honest:
# it fails when a registered protocol is missing from the README or
# DESIGN docs or lacks a fuzz-smoke line above.
proto-list:
	$(GO) run ./cmd/rtccheck -protocols

ci: vet staticcheck build race fuzz-smoke cover trace-smoke impair-smoke shard-smoke daemon-smoke bench-check
