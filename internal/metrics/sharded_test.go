package metrics

import (
	"sync"
	"testing"
)

func TestShardedCounterFold(t *testing.T) {
	var c ShardedCounter
	h1 := c.Handle()
	h2 := c.Handle()
	h1.Inc()
	h1.Add(4)
	h2.Add(10)
	c.Add(100)
	if got := c.Value(); got != 115 {
		t.Fatalf("Value = %d, want 115", got)
	}
}

func TestShardedCounterHandlesSpreadCells(t *testing.T) {
	var c ShardedCounter
	h1 := c.Handle()
	h2 := c.Handle()
	if h1.v == h2.v {
		t.Fatal("consecutive handles share a cell")
	}
	// Round-robin wraps: more handles than shards still works.
	for i := 0; i < counterShards*3; i++ {
		h := c.Handle()
		h.Inc()
	}
	if got := c.Value(); got != counterShards*3 {
		t.Fatalf("Value = %d, want %d", got, counterShards*3)
	}
}

func TestShardedCounterNilSafety(t *testing.T) {
	var c *ShardedCounter
	h := c.Handle()
	h.Inc()
	h.Add(5)
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d", got)
	}
	var zero CounterHandle
	zero.Inc()
	zero.Add(3)
}

func TestRegistryShardedNilAndIdentity(t *testing.T) {
	var nilReg *Registry
	if nilReg.Sharded("x") != nil {
		t.Fatal("nil registry must return nil sharded counter")
	}
	r := NewRegistry()
	a := r.Sharded("pkts_total", L("app", "zoom"))
	b := r.Sharded("pkts_total", L("app", "zoom"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if r.Sharded("pkts_total", L("app", "meet")) == a {
		t.Fatal("different labels must return a different counter")
	}
}

func TestSnapshotFoldsShardedIntoCounters(t *testing.T) {
	r := NewRegistry()
	sc := r.Sharded("hot_total", L("stage", "dpi"))
	h := sc.Handle()
	h.Add(41)
	sc.Handle().Inc()
	r.Counter("cold_total").Add(7)
	snap := r.Snapshot()
	if got := snap.Counters["hot_total{stage=dpi}"]; got != 42 {
		t.Fatalf("snapshot hot_total = %d, want 42", got)
	}
	if got := snap.Counters["cold_total"]; got != 7 {
		t.Fatalf("snapshot cold_total = %d, want 7", got)
	}
}

func TestShardedCounterConcurrentFold(t *testing.T) {
	var c ShardedCounter
	const workers, perWorker = 32, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < perWorker; i++ {
				h.Inc()
			}
		}()
	}
	// Fold concurrently with the writers; totals must never exceed the
	// final sum and the final fold must be exact.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if v := c.Value(); v > workers*perWorker {
				t.Errorf("mid-flight fold %d exceeds final total", v)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterHandleZeroAlloc(t *testing.T) {
	var c ShardedCounter
	h := c.Handle()
	if avg := testing.AllocsPerRun(1000, func() { h.Inc() }); avg != 0 {
		t.Fatalf("Handle.Inc allocates %.2f/op", avg)
	}
}
