package quicwire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
	}{
		{0, 1}, {37, 1}, {63, 1},
		{64, 2}, {15293, 2}, {16383, 2},
		{16384, 4}, {494878333, 4}, {1<<30 - 1, 4},
		{1 << 30, 8}, {151288809941952652, 8},
	}
	for _, tc := range cases {
		w := bytesutil.NewWriter(8)
		AppendVarint(w, tc.v)
		if w.Len() != tc.size {
			t.Errorf("varint %d encoded in %d bytes, want %d", tc.v, w.Len(), tc.size)
		}
		r := bytesutil.NewReader(w.Bytes())
		if got := ReadVarint(r); got != tc.v || r.Err() != nil {
			t.Errorf("varint %d decoded as %d (err %v)", tc.v, got, r.Err())
		}
	}
}

// Property: varint encode→decode identity for values below 2^62.
func TestQuickVarintIdentity(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<62 - 1
		w := bytesutil.NewWriter(8)
		AppendVarint(w, v)
		r := bytesutil.NewReader(w.Bytes())
		return ReadVarint(r) == v && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseInitial(t *testing.T) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10}
	token := []byte{0xaa, 0xbb}
	payload := bytes.Repeat([]byte{0xee}, 100)
	pkt := BuildLong(TypeInitial, Version1, dcid, scid, token, payload)
	h, err := ParseLong(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Long || !h.FixedBit || h.Version != Version1 || h.Type != TypeInitial {
		t.Errorf("header = %+v", h)
	}
	if !bytes.Equal(h.DCID, dcid) || !bytes.Equal(h.SCID, scid) {
		t.Errorf("cids = %x %x", h.DCID, h.SCID)
	}
	if h.TokenLen != 2 || h.PayloadLength != 100 {
		t.Errorf("token=%d payload=%d", h.TokenLen, h.PayloadLength)
	}
	if h.HeaderLen+int(h.PayloadLength) != len(pkt) {
		t.Errorf("HeaderLen %d + payload %d != %d", h.HeaderLen, h.PayloadLength, len(pkt))
	}
	if !LooksLikeLongHeader(pkt) {
		t.Error("LooksLikeLongHeader rejected valid Initial")
	}
}

func TestParseHandshakeAndZeroRTT(t *testing.T) {
	for _, typ := range []LongPacketType{TypeZeroRTT, TypeHandshake} {
		pkt := BuildLong(typ, Version1, []byte{1}, []byte{2}, nil, []byte{1, 2, 3})
		h, err := ParseLong(pkt)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if h.Type != typ || h.PayloadLength != 3 {
			t.Errorf("%v: %+v", typ, h)
		}
	}
}

func TestParseRetry(t *testing.T) {
	pkt := BuildLong(TypeRetry, Version1, []byte{1}, []byte{2}, nil, bytes.Repeat([]byte{7}, 24))
	h, err := ParseLong(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeRetry {
		t.Errorf("type = %v", h.Type)
	}
}

func TestParseVersionNegotiation(t *testing.T) {
	pkt := BuildVersionNegotiation([]byte{1, 2}, []byte{3}, []uint32{Version1, 0xff00001d})
	h, err := ParseLong(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != VersionNegotiation {
		t.Errorf("version = %d", h.Version)
	}
	if len(h.SupportedVersions) != 2 || h.SupportedVersions[0] != Version1 {
		t.Errorf("versions = %v", h.SupportedVersions)
	}
	if !LooksLikeLongHeader(pkt) {
		t.Error("VN packet rejected")
	}
	// Ragged version list rejected.
	bad := append(pkt, 0x01)
	if _, err := ParseLong(bad); !errors.Is(err, ErrNotQUIC) {
		t.Errorf("ragged VN err = %v", err)
	}
}

func TestParseShort(t *testing.T) {
	dcid := []byte{5, 6, 7, 8}
	pkt := BuildShort(dcid, []byte("payload"))
	h, err := ParseShort(pkt, len(dcid))
	if err != nil {
		t.Fatal(err)
	}
	if h.Long || !h.FixedBit || !bytes.Equal(h.DCID, dcid) {
		t.Errorf("header = %+v", h)
	}
	if h.HeaderLen != 5 {
		t.Errorf("HeaderLen = %d", h.HeaderLen)
	}
	if _, err := ParseShort(pkt[:3], 4); !errors.Is(err, ErrTruncated) {
		t.Error("truncated short accepted")
	}
	if _, err := ParseShort([]byte{0x80, 1, 2, 3, 4}, 4); !errors.Is(err, ErrNotQUIC) {
		t.Error("long first byte accepted as short")
	}
}

func TestParseLongRejects(t *testing.T) {
	if _, err := ParseLong([]byte{0xc0, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Error("short buffer accepted")
	}
	if _, err := ParseLong(BuildShort([]byte{1, 2, 3, 4}, []byte("pay"))); !errors.Is(err, ErrNotQUIC) {
		t.Error("short-header accepted as long")
	}
	// Oversized DCID in v1.
	bad := []byte{0xc1, 0, 0, 0, 1, 21}
	bad = append(bad, bytes.Repeat([]byte{0}, 30)...)
	if _, err := ParseLong(bad); !errors.Is(err, ErrNotQUIC) {
		t.Errorf("21-byte DCID accepted: %v", err)
	}
	// Declared payload length beyond buffer.
	pkt := BuildLong(TypeHandshake, Version1, []byte{1}, []byte{2}, nil, []byte{1, 2, 3})
	if _, err := ParseLong(pkt[:len(pkt)-2]); !errors.Is(err, ErrTruncated) {
		t.Error("overlong declared payload accepted")
	}
}

func TestLooksLikeLongHeaderRejects(t *testing.T) {
	// Unknown version.
	pkt := BuildLong(TypeInitial, 0xdeadbeef, []byte{1}, []byte{2}, nil, nil)
	if LooksLikeLongHeader(pkt) {
		t.Error("unknown version accepted")
	}
	// Fixed bit cleared.
	pkt2 := BuildLong(TypeInitial, Version1, []byte{1}, []byte{2}, nil, nil)
	pkt2[0] &^= 0x40
	if LooksLikeLongHeader(pkt2) {
		t.Error("cleared fixed bit accepted")
	}
	if LooksLikeLongHeader([]byte{0x40, 1, 2}) {
		t.Error("short header accepted")
	}
}

func TestIsLongHeader(t *testing.T) {
	if !IsLongHeader([]byte{0x80}) || IsLongHeader([]byte{0x7f}) || IsLongHeader(nil) {
		t.Error("IsLongHeader misclassifies")
	}
}

func TestLongTypeString(t *testing.T) {
	want := map[LongPacketType]string{
		TypeInitial: "Initial", TypeZeroRTT: "0-RTT",
		TypeHandshake: "Handshake", TypeRetry: "Retry",
		LongPacketType(9): "LongType(9)",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d = %q want %q", typ, typ.String(), s)
		}
	}
}

// Property: parsing arbitrary bytes never panics.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(b []byte, cidLen uint8) bool {
		_, _ = ParseLong(b)
		_, _ = ParseShort(b, int(cidLen%21))
		_ = LooksLikeLongHeader(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: BuildLong→ParseLong identity on type, version, CIDs.
func TestQuickBuildParseIdentity(t *testing.T) {
	f := func(typSel uint8, dcid, scid []byte, payload []byte) bool {
		if len(dcid) > 20 || len(scid) > 20 || len(payload) > 1200 {
			return true
		}
		typ := LongPacketType(typSel % 3) // Initial, 0RTT, Handshake
		pkt := BuildLong(typ, Version1, dcid, scid, nil, payload)
		h, err := ParseLong(pkt)
		if err != nil {
			return false
		}
		return h.Type == typ && h.Version == Version1 &&
			bytes.Equal(h.DCID, dcid) && bytes.Equal(h.SCID, scid) &&
			h.PayloadLength == uint64(len(payload))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
