//go:build race

package core

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops a random fraction of Puts under -race, so tests
// that pin exact allocation counts on pooled paths must skip.
const raceEnabled = true
