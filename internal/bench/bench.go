// Package bench is the shared harness behind the hot-path benchmark
// suite: it prepares synthetic app captures and drives the analyzer
// through each ingestion mode (per-packet Feed, pooled FeedBatch,
// buffered batch). The root-package BenchmarkHotPath and the rtcbench
// command (make bench-json, CI regression gate) run the same scenarios
// through this package, so the committed BENCH_hotpath.json baseline
// and `go test -bench` measure identical code.
//
// Timing covers the ingestion loop only — the Feed/FeedBatch calls —
// with analyzer construction and Close outside the clock: the hot-path
// comparison is between the ingestion APIs themselves, and Close's
// finalization runs the same code in every mode. Heap counters span
// whole iterations (ingest plus Close): reading MemStats inside each
// iteration would flush the allocator caches and perturb the very
// loop being timed, and the per-stage allocation discipline has its
// own exact gate in TestHotPathAllocs.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/ingest"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	// The harness measures the full engine, so it registers every
	// protocol driver itself: a consumer that forgot the blank import
	// would silently benchmark an empty registry.
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Mode selects how frames reach the analyzer.
type Mode string

const (
	// ModeFeed is the streaming per-packet baseline: one Analyzer.Feed
	// call per frame, no buffer pool.
	ModeFeed Mode = "feed"
	// ModeFeedBatch is the pooled hot path: frames copied through a
	// reused reader ring and delivered in 64-frame FeedBatch calls,
	// payload bytes kept in recycled arena chunks.
	ModeFeedBatch Mode = "feedbatch"
	// ModeBatch is the read-everything baseline: all frames buffered,
	// every per-packet record retained (KeepPayloads + FramesStable).
	ModeBatch Mode = "batch"
	// ModeSharded is the sharded ingest tier: frames routed by flow
	// 5-tuple onto Scenario.Shards single-writer analyzer shards
	// (internal/ingest), FeedBatch-fed like ModeFeedBatch. The clock
	// covers ingestion to quiescence (router + shard drain, via Flush);
	// the cross-shard merge runs in Close, outside the clock, exactly
	// where every other mode finalizes.
	ModeSharded Mode = "sharded"
)

// Scenario is one cell of the hot-path matrix.
type Scenario struct {
	Name    string
	App     appsim.App
	Network appsim.Network
	Mode    Mode
	// MediaRate, Burst, and Background shape the synthetic call (they
	// forward to trace.Generate); the media-heavy cell turns the rate
	// up and the background chatter off so media datagrams dominate.
	MediaRate  int
	Burst      bool
	Background bool
	// CallDuration and PrePost set the call shape: the media-heavy
	// cell uses a longer in-call span and shorter shoulders so the
	// capture is media almost end to end.
	CallDuration time.Duration
	PrePost      time.Duration
	// Shards is the shard count for ModeSharded scenarios (ignored by
	// the serial modes).
	Shards int
}

// Scenarios returns the benchmark matrix: every ingestion mode over a
// relay-heavy pairing, a P2P pairing, and a media-heavy relay load.
// Three cells per mode keep `make bench-json` under a minute while
// covering both traffic shapes (TURN-relayed Zoom, peer-to-peer Meet)
// plus the media-dominated load where per-packet buffer churn is the
// cost that matters — the cell the FeedBatch speedup criterion is
// measured on.
func Scenarios() []Scenario {
	var out []Scenario
	cells := []struct {
		label      string
		app        appsim.App
		net        appsim.Network
		mediaRate  int
		burst      bool
		background bool
		call       time.Duration
		prePost    time.Duration
	}{
		{"relay", appsim.Zoom, appsim.WiFiRelay, 25, false, true, 6 * time.Second, 4 * time.Second},
		{"p2p", appsim.GoogleMeet, appsim.WiFiP2P, 25, false, true, 6 * time.Second, 4 * time.Second},
		{"media-heavy", appsim.Zoom, appsim.WiFiRelay, 120, true, false, 10 * time.Second, 1 * time.Second},
	}
	for _, mode := range []Mode{ModeFeed, ModeFeedBatch, ModeBatch} {
		for _, c := range cells {
			out = append(out, Scenario{
				Name:         fmt.Sprintf("%s/%s", mode, c.label),
				App:          c.app,
				Network:      c.net,
				Mode:         mode,
				MediaRate:    c.mediaRate,
				Burst:        c.burst,
				Background:   c.background,
				CallDuration: c.call,
				PrePost:      c.prePost,
			})
		}
	}
	// The shard-scaling curve: the media-heavy cell (the one dominated
	// by per-packet ingest cost) at 1, 2, and 4 shards. sharded1 is the
	// tier's overhead floor against feedbatch/media-heavy; the
	// sharded4:sharded1 throughput ratio is the scaling criterion
	// rtcbench gates on multi-core hosts.
	mh := cells[2]
	for _, n := range []int{1, 2, 4} {
		out = append(out, Scenario{
			Name:         fmt.Sprintf("sharded%d/%s", n, mh.label),
			App:          mh.app,
			Network:      mh.net,
			Mode:         ModeSharded,
			MediaRate:    mh.mediaRate,
			Burst:        mh.burst,
			Background:   mh.background,
			CallDuration: mh.call,
			PrePost:      mh.prePost,
			Shards:       n,
		})
	}
	return out
}

const feedBatchSize = 64

// Prepared is a scenario with its capture generated and its ingestion
// loop bound, ready to run repeatedly with no per-iteration setup.
type Prepared struct {
	Scenario Scenario
	Packets  int
	Bytes    int64
	frames   []pcap.Packet
	start    time.Time
	end      time.Time
	batch    []core.Datagram
}

// Prepare generates the scenario's capture.
func Prepare(sc Scenario) (*Prepared, error) {
	capt, err := trace.Generate(trace.CaptureConfig{
		App: sc.App, Network: sc.Network, Seed: 97,
		Start:        time.Unix(1700000000, 0).UTC(),
		CallDuration: sc.CallDuration, PrePost: sc.PrePost,
		MediaRate: sc.MediaRate, Burst: sc.Burst,
		Background: sc.Background,
	})
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		Scenario: sc,
		frames:   capt.Frames(),
		start:    capt.CallStart,
		end:      capt.CallEnd,
		batch:    make([]core.Datagram, 0, feedBatchSize),
	}
	p.Packets = len(p.frames)
	for _, f := range p.frames {
		p.Bytes += int64(len(f.Data))
	}
	return p, nil
}

// RunOnce performs one full analysis of the prepared capture in the
// scenario's mode, discards the result, and reports the wall time
// spent inside the ingestion loop. Analyzer construction and Close
// sit outside the measured window.
func (p *Prepared) RunOnce() (time.Duration, error) {
	cfg := core.AnalyzerConfig{
		Label:     string(p.Scenario.App),
		LinkType:  pcap.LinkTypeRaw,
		CallStart: p.start,
		CallEnd:   p.end,
	}
	switch p.Scenario.Mode {
	case ModeFeedBatch:
		cfg.Pool = bufpool.Global()
	case ModeSharded:
		// Same retention discipline as ModeFeedBatch (pooled arena
		// payloads), so the delta against it is purely the routing and
		// queueing cost — and, on multi-core hosts, the shard speedup.
		cfg.Pool = bufpool.Global()
		return p.runSharded(cfg)
	case ModeBatch:
		cfg.KeepPayloads = true
		cfg.FramesStable = true
	}
	a, err := core.NewAnalyzer(cfg, core.Options{SkipFindings: true, Workers: 1})
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	switch p.Scenario.Mode {
	case ModeFeedBatch:
		// Both modes hand the analyzer the same stable capture frames,
		// so each pays exactly its own internal copy: Feed's per-packet
		// make+copy versus FeedBatch's arena append. FeedBatch only
		// requires the frames to stay valid during the call (DESIGN.md
		// §14), which stable buffers trivially satisfy — an upstream
		// reader ring would add a second copy FeedBatch never needs.
		batch := p.batch[:0]
		for _, f := range p.frames {
			batch = append(batch, core.Datagram{Timestamp: f.Timestamp, Frame: f.Data})
			if len(batch) == feedBatchSize {
				if err := a.FeedBatch(batch); err != nil {
					return 0, err
				}
				batch = batch[:0]
			}
		}
		if err := a.FeedBatch(batch); err != nil {
			return 0, err
		}
	default:
		for _, f := range p.frames {
			if err := a.Feed(f.Timestamp, f.Data); err != nil {
				return 0, err
			}
		}
	}
	ingest := time.Since(t0)
	_, err = a.Close()
	return ingest, err
}

// runSharded is the ModeSharded ingestion loop: FeedBatch chunks into
// the sharded tier, then Flush to quiescence inside the clock — the
// ingest number includes draining every shard queue, so a slow shard
// cannot hide behind the router. Close (shard join + merge +
// finalization) stays outside, like every mode's finalization.
func (p *Prepared) runSharded(cfg core.AnalyzerConfig) (time.Duration, error) {
	sa, err := ingest.New(cfg, core.Options{SkipFindings: true, Workers: 1}, ingest.Config{
		Shards: p.Scenario.Shards,
	})
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	batch := p.batch[:0]
	for _, f := range p.frames {
		batch = append(batch, core.Datagram{Timestamp: f.Timestamp, Frame: f.Data})
		if len(batch) == feedBatchSize {
			if err := sa.FeedBatch(batch); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	if err := sa.FeedBatch(batch); err != nil {
		return 0, err
	}
	if err := sa.Flush(); err != nil {
		return 0, err
	}
	d := time.Since(t0)
	_, err = sa.Close()
	return d, err
}

// Result is one scenario's measurement, the unit BENCH_hotpath.json
// records. An "op" is one analysis of the scenario's whole capture:
// NsPerOp and PktsPerSec count only the ingestion loop (the Feed or
// FeedBatch calls), while BytesPerOp and AllocsPerOp cover the whole
// iteration including finalization.
type Result struct {
	Name        string  `json:"name"`
	Packets     int     `json:"packets"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	PktsPerSec  float64 `json:"pkts_per_sec"`
}

// Measure runs the prepared scenario until both minIters iterations
// and minTime of measured ingest work have accumulated, then reports
// per-op ingest time, per-op heap traffic, and packet throughput.
func Measure(p *Prepared, minIters int, minTime time.Duration) (Result, error) {
	// Warm-up iteration: size pools, fault in the capture.
	if _, err := p.RunOnce(); err != nil {
		return Result{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var ingest time.Duration
	iters := 0
	for iters < minIters || ingest < minTime {
		d, err := p.RunOnce()
		if err != nil {
			return Result{}, err
		}
		ingest += d
		iters++
	}
	runtime.ReadMemStats(&ms1)
	return Result{
		Name:        p.Scenario.Name,
		Packets:     p.Packets,
		NsPerOp:     float64(ingest.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		PktsPerSec:  float64(p.Packets*iters) / ingest.Seconds(),
	}, nil
}

// MeasureBest runs Measure reps times and keeps the repetition with
// the lowest per-op ingest time. Wall-clock benchmarks on shared
// machines are one-sided: interference only ever adds time, so the
// fastest repetition is the closest observation of the code's real
// cost. Every scenario gets the same treatment, keeping ratios
// between cells fair.
func MeasureBest(p *Prepared, reps, minIters int, minTime time.Duration) (Result, error) {
	var best Result
	for r := 0; r < reps; r++ {
		res, err := Measure(p, minIters, minTime)
		if err != nil {
			return Result{}, err
		}
		if r == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best, nil
}
