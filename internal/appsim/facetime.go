package appsim

import (
	"encoding/binary"
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// FaceTime wire behaviour (paper §5.2.1, §5.2.2, §5.3):
//
//   - protocols: STUN, TURN, RTP, QUIC — no RTCP;
//   - every RTP message carries one or more header extensions with
//     undefined profile identifiers (0x8001, 0x8500, 0x8D00) across
//     payload types 100, 104, 108, 13, 20;
//   - Binding Requests carry undefined attribute 0x8007 (0x00000009
//     always; 0x00000000 Wi-Fi P2P; 0x00000005 cellular) and repeat the
//     same transaction ID once per second with no response ever seen;
//   - 29.4% of Binding Success Responses carry an ALTERNATE-SERVER with
//     address family 0x00, and all carry undefined attribute 0x8008;
//   - TURN Data Indications include a spurious 4-byte CHANNEL-NUMBER of
//     0x00000000; ChannelData frames ride channels never bound on the
//     stream;
//   - relay mode: 89.2% of datagrams carry a 0x6000 proprietary header
//     (8-19 bytes, 2-byte length of the remainder) before the RTP
//     message; P2P shows fewer than 50 such headers per call;
//   - cellular (always P2P): ~10% of traffic is 36-byte fully
//     proprietary keepalives starting 0xDEADBEEFCAFE with two trailing
//     4-byte counters, at 20 packets per second.
var faceTimeRTPPayloads = []uint8{100, 104, 108, 13, 20}

var faceTimeExtProfiles = []uint16{0x8001, 0x8500, 0x8D00}

// faceTimeHeader builds the 0x6000 relay proprietary header wrapping an
// encoded message. Header length varies 8-19 bytes total.
func faceTimeHeader(e *env, msg []byte) []byte {
	extra := 4 + e.rng.IntN(12) // bytes between the length field and msg
	h := make([]byte, 0, 4+extra+len(msg))
	h = append(h, 0x60, 0x00)
	h = append(h, byte((extra+len(msg))>>8), byte(extra+len(msg)))
	h = append(h, e.rng.Bytes(extra)...)
	return append(h, msg...)
}

func generateFaceTime(e *env) {
	cfg := e.cfg
	relayPhase := e.mode == ModeRelay

	caller := netip.AddrPortFrom(e.callerLocal, 50010)
	peerAddr := e.peer(relayPhase)
	peerPort := uint16(3478)
	if !relayPhase {
		peerPort = 50012
	}
	peer := netip.AddrPortFrom(peerAddr, peerPort)

	// STUN stream: modified Binding Requests repeated with a constant
	// transaction ID, once per second, never answered.
	stunSrc := netip.AddrPortFrom(e.callerLocal, 50011)
	stunDst := netip.AddrPortFrom(e.stunAddr, 3478)
	attr8007 := []byte{0, 0, 0, 9}
	if e.mode == ModeP2P {
		if cfg.Network == Cellular {
			attr8007 = []byte{0, 0, 0, 5}
		} else {
			attr8007 = []byte{0, 0, 0, 0}
		}
	}
	fixedTx := e.rng.TxID()
	repeats := int(cfg.Duration / time.Second)
	if repeats > 60 {
		repeats = 60
	}
	if repeats < 5 {
		repeats = 5
	}
	for i := 0; i < repeats; i++ {
		req := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: fixedTx}
		req.Add(stun.AttrType(0x8007), attr8007)
		at := cfg.Start.Add(time.Duration(i) * cfg.Duration / time.Duration(repeats))
		e.push(at.Add(e.jitter(5)), stunSrc, stunDst, req.Encode())
	}

	// Binding Success Responses from the server on a second STUN
	// exchange: undefined 0x8008 on all, bad ALTERNATE-SERVER family on
	// 29.4%.
	respCount := repeats / 2
	if respCount < 3 {
		respCount = 3
	}
	for i := 0; i < respCount; i++ {
		resp := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: e.rng.TxID()}
		if i*1000 < respCount*294 {
			// family 0x00: encode by hand.
			bad := []byte{0x00, 0x00, 0x0d, 0x96, 203, 0, 113, 22}
			resp.Add(stun.AttrAlternateServer, bad)
		} else {
			resp.Add(stun.AttrAlternateServer, stun.EncodeMappedAddress(netip.AddrPortFrom(e.stunAddr, 3478)))
		}
		resp.Add(stun.AttrType(0x8008), e.rng.Bytes(16))
		at := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(respCount+1))
		e.push(at.Add(e.jitter(5)), stunDst, stunSrc, resp.Encode())
	}

	// TURN stream (relay mode): Data Indications with the spurious
	// CHANNEL-NUMBER, and unbound ChannelData frames.
	if relayPhase {
		turnDst := netip.AddrPortFrom(e.serverAddr, 3478)
		peerMapped := netip.AddrPortFrom(e.calleeAddr, 50012)
		for i := 0; i < 6; i++ {
			at := cfg.Start.Add(time.Duration(i) * cfg.Duration / 6)
			di := ice.DataIndication(e.rng, peerMapped, e.rng.Bytes(40), []stun.Attribute{
				{Type: stun.AttrChannelNumber, Value: []byte{0, 0, 0, 0}},
			})
			e.push(at.Add(e.jitter(5)), turnDst, caller, di.Encode())
			cd := &stun.ChannelData{ChannelNumber: 0x4500, Data: e.rng.Bytes(60)}
			e.push(at.Add(50*time.Millisecond), caller, turnDst, cd.Encode())
		}
	}

	// QUIC stream: a compliant Initial/Handshake exchange plus short
	// headers.
	quicSrc := netip.AddrPortFrom(e.callerLocal, 50013)
	quicDst := netip.AddrPortFrom(e.serverAddr, 443)
	dcid := e.rng.Bytes(8)
	scid := e.rng.Bytes(8)
	qt := cfg.Start.Add(200 * time.Millisecond)
	e.push(qt, quicSrc, quicDst, quicwire.BuildLong(quicwire.TypeInitial, quicwire.Version1, dcid, scid, nil, e.rng.Bytes(1100)))
	e.push(qt.Add(30*time.Millisecond), quicDst, quicSrc, quicwire.BuildLong(quicwire.TypeHandshake, quicwire.Version1, scid, dcid, nil, e.rng.Bytes(900)))
	e.push(qt.Add(40*time.Millisecond), quicSrc, quicDst, quicwire.BuildLong(quicwire.TypeZeroRTT, quicwire.Version1, dcid, scid, nil, e.rng.Bytes(300)))
	for i := 0; i < 8; i++ {
		at := qt.Add(time.Duration(i+2) * cfg.Duration / 12)
		e.push(at, quicSrc, quicDst, quicwire.BuildShort(scid, e.rng.Bytes(80)))
		e.push(at.Add(15*time.Millisecond), quicDst, quicSrc, quicwire.BuildShort(dcid, e.rng.Bytes(80)))
	}

	// Media: RTP with undefined header-extension profiles on every
	// message.
	audioOut := newMediaStream(e.rng, e.rng.Uint32(), 104, 960)
	videoOut := newMediaStream(e.rng, e.rng.Uint32(), 100, 3000)
	audioIn := newMediaStream(e.rng, e.rng.Uint32(), 104, 960)
	videoIn := newMediaStream(e.rng, e.rng.Uint32(), 100, 3000)
	streams := []struct {
		ms    *mediaStream
		out   bool
		video bool
	}{
		{audioOut, true, false}, {videoOut, true, true},
		{audioIn, false, false}, {videoIn, false, true},
	}

	rate := cfg.rate()
	interval := time.Second / time.Duration(rate)
	end := cfg.Start.Add(cfg.Duration)
	tick := 0
	ptIdx := 0
	p2pHeaderBudget := 10 // <50 proprietary headers per P2P call
	for at := cfg.Start; at.Before(end); at = at.Add(interval) {
		for _, st := range streams {
			tick++
			src, dst := caller, peer
			if !st.out {
				src, dst = peer, caller
			}
			pt := faceTimeRTPPayloads[ptIdx%len(faceTimeRTPPayloads)]
			ptIdx++
			st.ms.pt = pt
			size := 100
			if st.video {
				size = e.mediaSize(at, true, 600+e.rng.IntN(400))
			}
			profile := faceTimeExtProfiles[tick%len(faceTimeExtProfiles)]
			ext := &rtp.Extension{Profile: profile, Data: e.rng.Bytes(8)}
			pkt := st.ms.next(size, ext, false).Encode()

			// Relay mode: 89.2% of datagrams behind the 0x6000 header.
			// P2P: a small fixed number per call.
			wrap := false
			if relayPhase {
				wrap = tick%28 != 0 // ≈ 96.4% of media ≈ 89.2% of all datagrams
			} else if p2pHeaderBudget > 0 && tick%97 == 0 {
				wrap = true
				p2pHeaderBudget--
			}
			if wrap {
				pkt = faceTimeHeader(e, pkt)
			}
			e.push(e.mediaAt(at, st.video, 3), src, dst, pkt)
		}
	}

	// Cellular keepalives: 36-byte fully proprietary datagrams at 20
	// packets per second with two increasing counters.
	if cfg.Network == Cellular {
		var c1, c2 uint32 = 1, 100
		ka := netip.AddrPortFrom(e.callerLocal, 50014)
		kaDst := netip.AddrPortFrom(e.calleeAddr, 50014)
		for at := cfg.Start; at.Before(end); at = at.Add(50 * time.Millisecond) {
			payload := make([]byte, 36)
			copy(payload, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE})
			binary.BigEndian.PutUint32(payload[28:], c1)
			binary.BigEndian.PutUint32(payload[32:], c2)
			c1++
			c2 += 3
			e.push(at, ka, kaDst, payload)
		}
	} else {
		// Wi-Fi shows only a trace amount of these keepalives (<1%).
		payload := make([]byte, 36)
		copy(payload, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE})
		binary.BigEndian.PutUint32(payload[28:], 1)
		binary.BigEndian.PutUint32(payload[32:], 100)
		e.push(cfg.Start.Add(cfg.Duration/2), caller, peer, payload)
	}
}
