// Quickstart: generate one synthetic Zoom call over a relay network,
// run the full compliance pipeline on it, and print what the paper's
// methodology finds.
package main

import (
	"fmt"
	"log"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
)

func main() {
	// 1. Generate a 15-second Zoom call on Wi-Fi with hole punching
	// blocked (relay mode), with background phone noise mixed in.
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App:          rtcc.Zoom,
		Network:      rtcc.WiFiRelay,
		Seed:         42,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: 15 * time.Second,
		PrePost:      10 * time.Second,
		Background:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d packets (%s mode call)\n", len(cap.Events), cap.Mode)

	// 2. Analyze: filter unrelated traffic, extract messages with the
	// offset-shifting DPI, judge each against the five criteria.
	res, err := rtcc.Analyze(cap, rtcc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	f := res.Filter
	fmt.Printf("filtering: %d raw streams -> %d RTC streams (removed %d)\n",
		f.RawUDP.Streams+f.RawTCP.Streams,
		len(f.RTC), len(f.RemovedStreams))

	if ratio, ok := res.Stats.VolumeCompliance(); ok {
		fmt.Printf("volume compliance: %.2f%% of extracted messages\n", 100*ratio)
	}
	compliant, total := res.Stats.TypeCompliance(0)
	fmt.Printf("type compliance:   %d of %d observed message types\n", compliant, total)

	for key, ts := range res.Stats.Types {
		if ts.Compliant() {
			continue
		}
		for reason := range ts.Reasons {
			fmt.Printf("  non-compliant %-18s %s\n", key.String()+":", reason)
			break
		}
	}

	for _, finding := range res.Findings {
		fmt.Printf("behavioural finding [%s]: %s\n", finding.Kind, finding.Detail)
	}
}
