package proto

// StreamState carries per-stream validation state across the datagrams
// of one transport stream during pass 2. The exported fields are the
// cross-protocol evidence the paper's heuristics share between
// protocols; everything protocol-private lives in a per-ID slot.
type StreamState struct {
	// SawSTUN records that the stream carried STUN. The ChannelData
	// prober consults it: TURN ChannelData only ever flows on a socket
	// that previously carried the STUN allocation handshake.
	SawSTUN bool
	// ValidatedSSRC, when non-nil, restricts media acceptance to SSRCs
	// that survived the stream-level pass-1 validation. Nil means
	// permissive single-datagram mode. The RTCP prober cross-validates
	// unassigned packet types against it.
	ValidatedSSRC map[uint32]bool
	// Epoch counts pass-2 chunks: the stream inspector bumps it at the
	// start of every Finalize. Drivers that arena-allocate per-message
	// state (the RTP driver's packet slab) key their recycling on it —
	// everything extracted in epoch N is dead once epoch N+1 begins,
	// because the pipeline consumes each Finalize's results before
	// feeding the next chunk (DESIGN.md §14).
	Epoch uint64

	slots [MaxIDs]any
}

// Slot returns the protocol's private per-stream state (nil until the
// protocol's driver stores one with SetSlot).
func (s *StreamState) Slot(id ID) any { return s.slots[id] }

// SetSlot stores a protocol's private per-stream state.
func (s *StreamState) SetSlot(id ID, v any) { s.slots[id] = v }

// ScanState is the pass-1 state of one stream: a scratch StreamState
// for the structural matchers (kept permissive — its ValidatedSSRC
// stays nil) plus the cross-protocol validation evidence under
// construction. The engine hands ValidatedSSRC (the same map object,
// so evidence accumulated after a chunked finalization stays visible)
// to the pass-2 StreamState at each Finalize.
type ScanState struct {
	Scratch StreamState
	// ValidatedSSRC accumulates per-SSRC validation evidence written by
	// weak-signature probers during pass 1.
	ValidatedSSRC map[uint32]bool

	slots [MaxIDs]any
}

// NewScanState returns pass-1 state with an empty validated set.
func NewScanState() *ScanState {
	return &ScanState{ValidatedSSRC: make(map[uint32]bool)}
}

// Slot returns the protocol's private pass-1 state.
func (s *ScanState) Slot(id ID) any { return s.slots[id] }

// SetSlot stores a protocol's private pass-1 state.
func (s *ScanState) SetSlot(id ID, v any) { s.slots[id] = v }
