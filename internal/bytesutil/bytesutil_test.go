package bytesutil

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestReaderSequentialReads(t *testing.T) {
	in := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12}
	r := NewReader(in)
	if got := r.Uint8(); got != 0x01 {
		t.Errorf("Uint8 = %#x, want 0x01", got)
	}
	if got := r.Uint16(); got != 0x0203 {
		t.Errorf("Uint16 = %#x, want 0x0203", got)
	}
	if got := r.Uint24(); got != 0x040506 {
		t.Errorf("Uint24 = %#x, want 0x040506", got)
	}
	if got := r.Uint32(); got != 0x0708090a {
		t.Errorf("Uint32 = %#x, want 0x0708090a", got)
	}
	if got := r.Uint64(); got != 0x0b0c0d0e0f101112 {
		t.Errorf("Uint64 = %#x, want 0x0b0c0d0e0f101112", got)
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v, want nil", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderShortBufferLatches(t *testing.T) {
	r := NewReader([]byte{0xff})
	if got := r.Uint32(); got != 0 {
		t.Errorf("Uint32 past end = %#x, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// After the error latches, in-bounds reads still return zero.
	if got := r.Uint8(); got != 0 {
		t.Errorf("Uint8 after error = %#x, want 0", got)
	}
	if r.Bytes(0) != nil {
		t.Error("Bytes(0) after error should be nil")
	}
}

func TestReaderPeekDoesNotAdvanceOrLatch(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Peek(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("Peek(2) = %v", got)
	}
	if r.Offset() != 0 {
		t.Errorf("Offset after Peek = %d, want 0", r.Offset())
	}
	if got := r.Peek(4); got != nil {
		t.Errorf("Peek(4) = %v, want nil", got)
	}
	if r.Err() != nil {
		t.Errorf("Peek must not latch error, got %v", r.Err())
	}
}

func TestReaderBytesAliasesAndCopyDoesNot(t *testing.T) {
	in := []byte{1, 2, 3, 4}
	r := NewReader(in)
	alias := r.Bytes(2)
	in[0] = 99
	if alias[0] != 99 {
		t.Error("Bytes should alias the input")
	}
	cp := r.BytesCopy(2)
	in[2] = 77
	if cp[0] == 77 {
		t.Error("BytesCopy should not alias the input")
	}
}

func TestReaderSkipAndRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	r.Skip(3)
	if got := r.Rest(); !bytes.Equal(got, []byte{4, 5}) {
		t.Errorf("Rest = %v, want [4 5]", got)
	}
	if r.Offset() != 3 {
		t.Errorf("Offset = %d, want 3", r.Offset())
	}
	r.Skip(10)
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Error("Skip past end should latch error")
	}
	if r.Rest() != nil {
		t.Error("Rest after error should be nil")
	}
}

func TestReaderNegativeRead(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if b := r.Bytes(-1); b != nil {
		t.Error("Bytes(-1) should return nil")
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Error("negative read should latch error")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	w := NewWriter(32)
	w.Uint8(0x01)
	w.Uint16(0x0203)
	w.Uint24(0x040506)
	w.Uint32(0x0708090a)
	w.Uint64(0x0b0c0d0e0f101112)
	w.Write([]byte{0xaa, 0xbb})

	r := NewReader(w.Bytes())
	if r.Uint8() != 0x01 || r.Uint16() != 0x0203 || r.Uint24() != 0x040506 ||
		r.Uint32() != 0x0708090a || r.Uint64() != 0x0b0c0d0e0f101112 {
		t.Fatal("round trip mismatch")
	}
	if !bytes.Equal(r.Bytes(2), []byte{0xaa, 0xbb}) {
		t.Fatal("trailing bytes mismatch")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestWriterSetAndPad(t *testing.T) {
	w := NewWriter(8)
	w.Uint16(0) // placeholder
	w.Write([]byte{1, 2, 3})
	w.SetUint16(0, uint16(w.Len()-2))
	w.Pad(4)
	got := w.Bytes()
	if len(got)%4 != 0 {
		t.Errorf("Pad(4) left length %d", len(got))
	}
	if got[0] != 0 || got[1] != 3 {
		t.Errorf("SetUint16 wrote %v", got[:2])
	}
	w2 := NewWriter(4)
	w2.Uint32(7)
	w2.Pad(4) // already aligned: no-op
	if w2.Len() != 4 {
		t.Errorf("Pad on aligned buffer grew to %d", w2.Len())
	}
}

func TestWriterZero(t *testing.T) {
	w := NewWriter(0)
	w.Zero(5)
	if !bytes.Equal(w.Bytes(), make([]byte, 5)) {
		t.Errorf("Zero(5) = %v", w.Bytes())
	}
}

// Property: for any payload, writing values and reading them back yields
// the same values regardless of surrounding data.
func TestQuickWriteReadIdentity(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, tail []byte) bool {
		w := NewWriter(0)
		w.Uint8(a)
		w.Uint16(b)
		w.Uint32(c)
		w.Uint64(d)
		w.Write(tail)
		r := NewReader(w.Bytes())
		return r.Uint8() == a && r.Uint16() == b && r.Uint32() == c &&
			r.Uint64() == d && bytes.Equal(r.Bytes(len(tail)), tail) &&
			r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a Reader never reads more bytes than the buffer holds, for
// arbitrary interleavings of read sizes.
func TestQuickReaderNeverOverreads(t *testing.T) {
	f := func(buf []byte, sizes []uint8) bool {
		r := NewReader(buf)
		total := 0
		for _, s := range sizes {
			n := int(s % 9)
			before := r.Remaining()
			b := r.Bytes(n)
			if b != nil {
				total += n
				if len(b) != n || before < n {
					return false
				}
			}
		}
		return total <= len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
