package rtcc

import (
	"os"
	"strings"
	"testing"
)

// TestRegisteredProtocolsDocumentedAndFuzzed is the proto-list golden
// test: every protocol registered in the default registry must carry
// complete metadata, appear in the README protocol table and the DESIGN
// architecture notes, and have its declared fuzz target wired into the
// Makefile fuzz-smoke job. Registering a protocol without docs or fuzz
// coverage fails here, not in review.
func TestRegisteredProtocolsDocumentedAndFuzzed(t *testing.T) {
	readFile := func(name string) string {
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return string(b)
	}
	readme := readFile("README.md")
	design := readFile("DESIGN.md")
	var fuzzLines []string
	for _, line := range strings.Split(readFile("Makefile"), "\n") {
		if strings.Contains(line, "-fuzz=") {
			fuzzLines = append(fuzzLines, line)
		}
	}

	metas := Protocols()
	if len(metas) == 0 {
		t.Fatal("no protocols registered")
	}
	for _, m := range metas {
		if m.Fingerprint == "" {
			t.Errorf("%s: empty wire-format fingerprint", m.Name)
		}
		if !strings.Contains(readme, m.Name) {
			t.Errorf("%s: missing from the README protocol table", m.Name)
		}
		if !strings.Contains(design, m.Name) {
			t.Errorf("%s: missing from DESIGN.md", m.Name)
		}
		pkg, target, ok := strings.Cut(m.Fuzz, ":")
		if !ok || pkg == "" || target == "" {
			t.Errorf("%s: fuzz coverage %q is not <package>:<FuzzTarget>", m.Name, m.Fuzz)
			continue
		}
		covered := false
		for _, line := range fuzzLines {
			if strings.Contains(line, target) && strings.Contains(line, pkg) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s: fuzz target %s in %s is not run by the Makefile fuzz-smoke job", m.Name, target, pkg)
		}
	}
}
