package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// traceCapture generates one seeded capture and returns its input.
func traceCapture(t *testing.T, app appsim.App, seed uint64) CaptureInput {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: appsim.WiFiRelay, Seed: seed,
		Start: t0, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
		MediaRate: 12, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return CaptureInput{
		Label: string(app), LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}
}

// traceJSONL analyzes in with the given worker count and returns the
// exported trace bytes.
func traceJSONL(t *testing.T, in CaptureInput, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	if _, err := AnalyzeCapture(in, Options{Workers: workers, Tracer: w}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceSerialParallelIdentical is the trace-layer determinism
// contract: the exported JSONL must be byte-identical between the
// serial and parallel engines for every seed, because spans flush only
// at deterministic pipeline points. Run under -race in CI.
func TestTraceSerialParallelIdentical(t *testing.T) {
	seeds := determinismSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		in := traceCapture(t, appsim.Zoom, seed)
		serial := traceJSONL(t, in, 1)
		if len(serial) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for _, workers := range []int{4, 8} {
			parallel := traceJSONL(t, in, workers)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("seed %d: trace differs between workers=1 and workers=%d", seed, workers)
			}
		}
	}
}

// TestTraceEvictionDeterministic covers the chunked-flush path: with
// idle eviction on, spans flush per chunk during Feed, and the export
// must still be identical across worker counts.
func TestTraceEvictionDeterministic(t *testing.T) {
	in := traceCapture(t, appsim.GoogleMeet, 31337)
	run := func(workers int) []byte {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		a, err := NewAnalyzer(AnalyzerConfig{
			Label: in.Label, LinkType: in.LinkType,
			CallStart: in.CallStart, CallEnd: in.CallEnd,
			FramesStable: true, EvictIdle: 500 * time.Millisecond,
		}, Options{Workers: workers, Tracer: w})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range in.Packets {
			if err := a.Feed(p.Timestamp, p.Data); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	if !strings.Contains(string(serial), `"kind":"stream-evicted"`) {
		t.Fatal("eviction config produced no stream-evicted events")
	}
	if parallel := run(8); !bytes.Equal(serial, parallel) {
		t.Error("eviction-path trace differs between workers=1 and workers=8")
	}
}

// TestTraceLintClean runs the lint invariants over real exports from
// several apps.
func TestTraceLintClean(t *testing.T) {
	for _, app := range []appsim.App{appsim.Zoom, appsim.Discord} {
		in := traceCapture(t, app, 7)
		events, err := obs.ReadJSONL(bytes.NewReader(traceJSONL(t, in, 4)))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if problems := obs.Lint(events); len(problems) > 0 {
			t.Errorf("%s: lint problems: %v", app, problems)
		}
	}
}

// TestExplainNamesCriterionForEveryNonCompliantType is the tentpole
// acceptance check: for any non-compliant message type the analysis
// reports, -explain must name the exact failing criterion (1-5).
func TestExplainNamesCriterionForEveryNonCompliantType(t *testing.T) {
	apps := appsim.Apps
	if testing.Short() {
		apps = apps[:2]
	}
	nonCompliant := 0
	for _, app := range apps {
		in := traceCapture(t, app, 1)
		buf := obs.NewBuffer(0)
		ca, err := AnalyzeCapture(in, Options{Workers: 4, Tracer: buf})
		if err != nil {
			t.Fatal(err)
		}
		events := buf.Events()
		for key, ts := range ca.Stats.Types {
			if ts.Compliant() {
				continue
			}
			nonCompliant++
			out := obs.Explain(events, obs.Query{App: string(app), MsgType: key.Label})
			if !strings.Contains(out, "failed criterion ") {
				t.Errorf("%s type %s: explain does not name the failing criterion:\n%s", app, key.Label, out)
				continue
			}
			// The named criterion must agree with the recorded reason.
			reason := ""
			for r := range ts.Reasons {
				reason = r
				break
			}
			if reason != "" && !strings.Contains(out, reason) {
				t.Errorf("%s type %s: explain omits reason %q:\n%s", app, key.Label, reason, out)
			}
		}
	}
	if nonCompliant == 0 {
		t.Fatal("seeded matrix produced no non-compliant types; acceptance check is vacuous")
	}
}

// TestTraceDoesNotChangeAnalysis pins the zero-interference contract:
// enabling tracing must not alter any analysis output.
func TestTraceDoesNotChangeAnalysis(t *testing.T) {
	in := traceCapture(t, appsim.Zoom, 42)
	plain, err := AnalyzeCapture(in, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := AnalyzeCapture(in, Options{Workers: 4, Tracer: obs.NewBuffer(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Stats, traced.Stats) {
		t.Error("tracing changed analysis stats")
	}
	if !reflect.DeepEqual(plain.Findings, traced.Findings) {
		t.Error("tracing changed findings")
	}
}

// TestTraceMultiCaptureExportLints pins the multi-capture export
// contract: analyzing several captures into one sink produces a
// lint-clean trace as long as the labels are unique per capture, and
// Lint catches the span collisions that duplicate labels cause (span
// IDs are hashed from the label, so reuse restarts sequence numbers
// mid-file). rtccheck's manifest mode relies on both halves: it
// suffixes the app label with the capture file for exactly this
// reason.
func TestTraceMultiCaptureExportLints(t *testing.T) {
	analyze := func(label string, seed uint64, w *obs.JSONLWriter) {
		t.Helper()
		in := traceCapture(t, appsim.Zoom, seed)
		in.Label = label
		if _, err := AnalyzeCapture(in, Options{Workers: 4, Tracer: w}); err != nil {
			t.Fatal(err)
		}
	}
	export := func(labels [2]string) []obs.Event {
		t.Helper()
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		analyze(labels[0], 7, w)
		analyze(labels[1], 42, w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return events
	}

	unique := export([2]string{"Zoom (a.pcap)", "Zoom (b.pcap)"})
	if problems := obs.Lint(unique); len(problems) != 0 {
		t.Errorf("unique labels: lint found %d problems, first: %s", len(problems), problems[0])
	}
	colliding := export([2]string{"Zoom", "Zoom"})
	if problems := obs.Lint(colliding); len(problems) == 0 {
		t.Error("duplicate labels: lint missed the span collision")
	}
}
