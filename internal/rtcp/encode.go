package rtcp

import (
	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// encodeHeader writes a common header; length is patched by finish.
func encodeHeader(w *bytesutil.Writer, count uint8, t PacketType) {
	w.Uint8(Version<<6 | count&0x1f)
	w.Uint8(uint8(t))
	w.Uint16(0) // patched
}

// finish pads the packet to a 32-bit boundary and patches the length
// field (in words minus one) at the packet's start offset.
func finish(w *bytesutil.Writer, start int) {
	w.Pad(4)
	w.SetUint16(start+2, uint16((w.Len()-start)/4-1))
}

func writeReportBlocks(w *bytesutil.Writer, blocks []ReportBlock) {
	for _, rb := range blocks {
		w.Uint32(rb.SSRC)
		w.Uint8(rb.FractionLost)
		w.Uint24(rb.CumulativeLost)
		w.Uint32(rb.HighestSeq)
		w.Uint32(rb.Jitter)
		w.Uint32(rb.LastSR)
		w.Uint32(rb.DelaySinceLastSR)
	}
}

// EncodeSR serializes a sender report.
func EncodeSR(sr *SenderReport) []byte {
	w := bytesutil.NewWriter(64)
	encodeHeader(w, uint8(len(sr.Reports)), TypeSenderReport)
	w.Uint32(sr.SSRC)
	w.Uint64(sr.Info.NTPTimestamp)
	w.Uint32(sr.Info.RTPTimestamp)
	w.Uint32(sr.Info.PacketCount)
	w.Uint32(sr.Info.OctetCount)
	writeReportBlocks(w, sr.Reports)
	w.Write(sr.ProfileExt)
	finish(w, 0)
	return w.Bytes()
}

// EncodeRR serializes a receiver report.
func EncodeRR(rr *ReceiverReport) []byte {
	w := bytesutil.NewWriter(64)
	encodeHeader(w, uint8(len(rr.Reports)), TypeReceiverReport)
	w.Uint32(rr.SSRC)
	writeReportBlocks(w, rr.Reports)
	w.Write(rr.ProfileExt)
	finish(w, 0)
	return w.Bytes()
}

// EncodeSDES serializes a source-description packet.
func EncodeSDES(s *SDES) []byte {
	w := bytesutil.NewWriter(64)
	encodeHeader(w, uint8(len(s.Chunks)), TypeSDES)
	for _, ch := range s.Chunks {
		w.Uint32(ch.SSRC)
		for _, it := range ch.Items {
			w.Uint8(uint8(it.Type))
			w.Uint8(uint8(len(it.Text)))
			w.Write([]byte(it.Text))
		}
		w.Uint8(uint8(SDESEnd))
		w.Pad(4)
	}
	finish(w, 0)
	return w.Bytes()
}

// EncodeBye serializes a BYE packet.
func EncodeBye(b *Bye) []byte {
	w := bytesutil.NewWriter(16)
	encodeHeader(w, uint8(len(b.SSRCs)), TypeBye)
	for _, s := range b.SSRCs {
		w.Uint32(s)
	}
	if b.Reason != "" {
		w.Uint8(uint8(len(b.Reason)))
		w.Write([]byte(b.Reason))
	}
	finish(w, 0)
	return w.Bytes()
}

// EncodeApp serializes an APP packet.
func EncodeApp(a *App) []byte {
	w := bytesutil.NewWriter(16 + len(a.Data))
	encodeHeader(w, a.Subtype, TypeApp)
	w.Uint32(a.SSRC)
	w.Write(a.Name[:])
	w.Write(a.Data)
	finish(w, 0)
	return w.Bytes()
}

// EncodeFeedback serializes an RTPFB or PSFB packet. t must be TypeRTPFB
// or TypePSFB.
func EncodeFeedback(t PacketType, fb *Feedback) []byte {
	w := bytesutil.NewWriter(16 + len(fb.FCI))
	encodeHeader(w, fb.FMT, t)
	w.Uint32(fb.SenderSSRC)
	w.Uint32(fb.MediaSSRC)
	w.Write(fb.FCI)
	finish(w, 0)
	return w.Bytes()
}

// EncodeXR serializes an extended-report packet. Block contents are
// padded to whole words.
func EncodeXR(x *XR) []byte {
	w := bytesutil.NewWriter(32)
	encodeHeader(w, 0, TypeXR)
	w.Uint32(x.SSRC)
	for _, blk := range x.Blocks {
		contents := append([]byte(nil), blk.Contents...)
		for len(contents)%4 != 0 {
			contents = append(contents, 0)
		}
		w.Uint8(blk.BlockType)
		w.Uint8(blk.TypeSpecific)
		w.Uint16(uint16(len(contents) / 4))
		w.Write(contents)
	}
	finish(w, 0)
	return w.Bytes()
}

// EncodeRaw builds an RTCP packet with an arbitrary type, count field,
// and body — used by the traffic synthesizers to produce proprietary or
// malformed packets. The body is padded to a word boundary and the
// length field computed normally.
func EncodeRaw(t PacketType, count uint8, body []byte) []byte {
	w := bytesutil.NewWriter(HeaderLen + len(body))
	encodeHeader(w, count, t)
	w.Write(body)
	finish(w, 0)
	return w.Bytes()
}

// Compound concatenates encoded packets into one compound datagram
// payload.
func Compound(pkts ...[]byte) []byte {
	var total int
	for _, p := range pkts {
		total += len(p)
	}
	out := make([]byte, 0, total)
	for _, p := range pkts {
		out = append(out, p...)
	}
	return out
}
