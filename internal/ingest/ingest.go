// Package ingest is the sharded ingest tier over the streaming
// analyzer: one concurrency story from collector to verdict.
//
// A single-producer router hashes each datagram by its flow 5-tuple
// (direction-invariant, so both halves of a conversation agree) onto N
// single-writer core.Analyzer shards. Each shard is fed through a
// bounded queue of recycled batches via FeedBatch — the same zero-copy
// hot path the serial pipeline uses — and Close reunifies the shard
// states with core.MergeAnalyzers, whose result is byte-identical to
// one serial Analyzer fed the same datagrams in arrival order (see
// DESIGN.md §15 for the ownership, ordering, and merge rules).
//
// Back-pressure is explicit: a full shard queue either stalls the
// producer (Block, the lossless default) or sheds the staged batch
// (Drop), and both outcomes are accounted — per-shard queue-depth
// gauges, drop and back-pressure counters in the metrics registry, and
// a Stats snapshot that conserves datagrams (fed = analyzed + dropped
// once the queues drain).
package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Policy selects what a full shard queue does to the producer.
type Policy uint8

const (
	// Block stalls the producer until the shard drains: lossless, the
	// default, and the right choice for file analysis where the reader
	// can wait.
	Block Policy = iota
	// Drop sheds the staged batch and counts every datagram in it: the
	// live-capture choice, where stalling the producer would drop
	// packets upstream invisibly instead.
	Drop
)

// Config parameterizes the sharded tier. The zero value selects one
// shard per CPU, a queue depth of 8 batches, and 64-datagram batches
// with lossless back-pressure.
type Config struct {
	// Shards is the number of single-writer Analyzer shards; 0 selects
	// one per CPU (GOMAXPROCS). 1 is valid and degenerates to a serial
	// Analyzer behind the same API.
	Shards int
	// QueueDepth bounds each shard's pending batch queue; 0 selects 8.
	// Together with BatchSize it caps the datagrams in flight per
	// shard, which is what makes ingest memory independent of capture
	// size.
	QueueDepth int
	// BatchSize is how many datagrams the router stages per shard
	// before enqueueing; 0 selects 64, matching the serial reader ring.
	BatchSize int
	// Policy selects the back-pressure behavior when a shard queue is
	// full: Block (lossless, default) or Drop.
	Policy Policy
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 8
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 64
}

// batchBuf is one unit of the router→shard queue: a slice of datagrams
// plus (in copy mode) the backing frame bytes. Buffers recycle through
// each shard's free list, so the steady state allocates nothing. A
// non-nil barrier marks a synchronization batch: the worker closes it
// instead of feeding.
type batchBuf struct {
	dgrams  []core.Datagram
	buf     []byte
	offs    []int
	barrier chan struct{}
}

func (b *batchBuf) reset() {
	b.dgrams = b.dgrams[:0]
	b.buf = b.buf[:0]
	b.offs = b.offs[:0]
}

// shard is one single-writer Analyzer with its feeding machinery. Only
// the worker goroutine touches a; the router only touches stage and
// the channels; the counters are atomic for Stats snapshots.
type shard struct {
	a     *core.Analyzer
	queue chan *batchBuf
	free  chan *batchBuf
	stage *batchBuf
	done  chan struct{}
	// err is the worker's first FeedBatch error; the worker keeps
	// draining (and recycling) after an error so the router never
	// deadlocks on a full queue.
	err error

	enqueued     atomic.Uint64
	analyzed     atomic.Uint64
	dropped      atomic.Uint64
	backpressure atomic.Uint64
	pending      atomic.Int64

	m shardMetrics
}

// run is the shard worker: it feeds queued batches to the analyzer in
// arrival order and recycles their buffers. It exits when the router
// closes the queue at Close.
func (sh *shard) run() {
	defer close(sh.done)
	for b := range sh.queue {
		if b.barrier != nil {
			close(b.barrier)
			continue
		}
		n := uint64(len(b.dgrams))
		if sh.err == nil {
			if err := sh.a.FeedBatch(b.dgrams); err != nil {
				sh.err = err
			} else {
				sh.analyzed.Add(n)
				sh.m.analyzed.Add(n)
			}
		}
		sh.pending.Add(-1)
		sh.m.depth.Add(-1)
		b.reset()
		select {
		case sh.free <- b:
		default:
		}
	}
}

// ShardedAnalyzer routes datagrams onto N single-writer Analyzer
// shards and merges their states at Close. It implements
// core.FrameSink, so every capture reader that drives an Analyzer can
// drive it instead. Feed/FeedBatch/Flush/Close are single-producer:
// one goroutine owns ingestion, exactly as with a plain Analyzer (the
// shard workers are an internal concern).
type ShardedAnalyzer struct {
	cfg    Config
	acfg   core.AnalyzerConfig
	shards []*shard
	seq    uint64
	stable bool
	closed bool
	pkt    layers.Packet // decode scratch for the routing slow path
	m      ingestMetrics

	fed atomic.Uint64
}

// New builds the sharded tier: cfg.Shards analyzers constructed from
// acfg (each flipped to ExternalSeq; the router stamps the
// capture-global sequence) and opts. Tracing is disabled — the shards
// would interleave nondeterministically on one sink, the same reason
// RunMatrix does not trace; analyze serially to trace. The returned
// analyzer must be fed from one goroutine.
func New(acfg core.AnalyzerConfig, opts core.Options, cfg Config) (*ShardedAnalyzer, error) {
	if acfg.ExternalSeq {
		return nil, errors.New("ingest: AnalyzerConfig.ExternalSeq is owned by the sharded router")
	}
	opts.Tracer = nil
	n := cfg.shards()
	depth := cfg.queueDepth()
	s := &ShardedAnalyzer{
		cfg:    cfg,
		acfg:   acfg,
		stable: acfg.FramesStable,
		shards: make([]*shard, n),
		m:      newIngestMetrics(opts.Metrics, acfg.Label, n),
	}
	shardCfg := acfg
	shardCfg.ExternalSeq = true
	for i := range s.shards {
		a, err := core.NewAnalyzer(shardCfg, opts)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			a:     a,
			queue: make(chan *batchBuf, depth),
			free:  make(chan *batchBuf, depth+2),
			done:  make(chan struct{}),
			m:     newShardMetrics(opts.Metrics, acfg.Label, i),
		}
		s.shards[i] = sh
		go sh.run()
	}
	return s, nil
}

// route picks the owning shard for a frame. The fast fingerprint reads
// the 5-tuple at fixed offsets; frames it declines are fully decoded,
// and frames without a routable transport (undecodable, or no UDP/TCP
// layer) spread round-robin by arrival — they never form a flow, so
// any deterministic placement preserves the merge invariants (each
// shard still counts them toward frames/decode errors).
func (s *ShardedAnalyzer) route(frame []byte) *shard {
	n := uint64(len(s.shards))
	if fp, ok := layers.FlowFingerprint(s.acfg.LinkType, frame); ok {
		return s.shards[fp%n]
	}
	if err := layers.DecodeInto(&s.pkt, s.acfg.LinkType, frame); err == nil {
		if fp, ok := layers.FingerprintPacket(&s.pkt); ok {
			return s.shards[fp%n]
		}
	}
	return s.shards[s.seq%n]
}

// Feed routes one frame. See FeedBatch for the batched path.
func (s *ShardedAnalyzer) Feed(ts time.Time, frame []byte) error {
	return s.feedOne(ts, frame)
}

// FeedBatch routes a slice of frames onto their owning shards. Unless
// the tier was configured with FramesStable, every frame is copied
// into a staging buffer before FeedBatch returns, so callers may reuse
// their frame buffers between calls — the Analyzer.FeedBatch contract.
func (s *ShardedAnalyzer) FeedBatch(batch []core.Datagram) error {
	if s.closed {
		return errors.New("ingest: Feed after Close")
	}
	for i := range batch {
		if err := s.feedOne(batch[i].Timestamp, batch[i].Frame); err != nil {
			return err
		}
	}
	return nil
}

func (s *ShardedAnalyzer) feedOne(ts time.Time, frame []byte) error {
	if s.closed {
		return errors.New("ingest: Feed after Close")
	}
	s.seq++
	s.fed.Add(1)
	s.m.fed.Inc()
	sh := s.route(frame)
	b := sh.stage
	if b == nil {
		b = s.getBuf(sh)
		sh.stage = b
	}
	if s.stable {
		b.dgrams = append(b.dgrams, core.Datagram{Timestamp: ts, Frame: frame, Seq: s.seq})
	} else {
		// Copy now, materialize the Frame slices at enqueue time: the
		// backing buffer may still grow (and move) while the batch
		// stages.
		b.offs = append(b.offs, len(b.buf))
		b.buf = append(b.buf, frame...)
		b.dgrams = append(b.dgrams, core.Datagram{Timestamp: ts, Seq: s.seq})
	}
	if len(b.dgrams) >= s.cfg.batchSize() {
		s.flushShard(sh)
	}
	return nil
}

// getBuf takes a recycled batch buffer or allocates one. Allocation is
// naturally bounded: per shard at most queueDepth queued + 1 in the
// worker + 1 staging buffers exist, after which the free list always
// has one to give.
func (s *ShardedAnalyzer) getBuf(sh *shard) *batchBuf {
	select {
	case b := <-sh.free:
		return b
	default:
		size := s.cfg.batchSize()
		return &batchBuf{
			dgrams: make([]core.Datagram, 0, size),
			offs:   make([]int, 0, size),
		}
	}
}

// flushShard enqueues the shard's staged batch, applying the
// back-pressure policy when the queue is full.
func (s *ShardedAnalyzer) flushShard(sh *shard) {
	b := sh.stage
	if b == nil || len(b.dgrams) == 0 {
		return
	}
	sh.stage = nil
	if !s.stable {
		for i := range b.dgrams {
			end := len(b.buf)
			if i+1 < len(b.offs) {
				end = b.offs[i+1]
			}
			b.dgrams[i].Frame = b.buf[b.offs[i]:end]
		}
	}
	n := uint64(len(b.dgrams))
	select {
	case sh.queue <- b:
	default:
		if s.cfg.Policy == Drop {
			sh.dropped.Add(n)
			sh.m.dropped.Add(n)
			b.reset()
			select {
			case sh.free <- b:
			default:
			}
			return
		}
		sh.backpressure.Add(1)
		sh.m.backpressure.Inc()
		sh.queue <- b
	}
	sh.enqueued.Add(n)
	sh.pending.Add(1)
	sh.m.depth.Add(1)
}

// Flush pushes all staged batches to their shards and waits until
// every shard has processed everything enqueued so far, then reports
// the first shard error. It does not finalize anything — feeding may
// continue — which is what lets benchmarks time the ingest tier to
// quiescence without timing the merge.
func (s *ShardedAnalyzer) Flush() error {
	if s.closed {
		return errors.New("ingest: Flush after Close")
	}
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
	barriers := make([]chan struct{}, len(s.shards))
	for i, sh := range s.shards {
		barriers[i] = make(chan struct{})
		sh.queue <- &batchBuf{barrier: barriers[i]}
	}
	for _, c := range barriers {
		<-c
	}
	return s.firstErr()
}

func (s *ShardedAnalyzer) firstErr() error {
	for i, sh := range s.shards {
		if sh.err != nil {
			return fmt.Errorf("ingest: shard %d: %w", i, sh.err)
		}
	}
	return nil
}

// Close flushes the remaining staged batches, joins the shard workers,
// and merges the shard states into the capture analysis via
// core.MergeAnalyzers — the same finalization a serial Close runs,
// over the union of the shards' state.
func (s *ShardedAnalyzer) Close() (*core.CaptureAnalysis, error) {
	if s.closed {
		return nil, errors.New("ingest: Close called twice")
	}
	s.closed = true
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	if err := s.firstErr(); err != nil {
		return nil, err
	}
	analyzers := make([]*core.Analyzer, len(s.shards))
	for i, sh := range s.shards {
		analyzers[i] = sh.a
	}
	return core.MergeAnalyzers(analyzers)
}

// ShardStats is one shard's datagram accounting.
type ShardStats struct {
	// Enqueued counts datagrams accepted onto the shard queue;
	// Analyzed counts those its analyzer consumed. They converge as
	// the queue drains (equal after Flush or Close).
	Enqueued, Analyzed uint64
	// Dropped counts datagrams shed by the Drop policy; Backpressure
	// counts producer stalls under Block (events, not datagrams).
	Dropped, Backpressure uint64
	// QueueDepth is the instantaneous number of queued batches.
	QueueDepth int
}

// Stats is a snapshot of the tier's datagram accounting. Conservation
// holds by construction: Fed == Σ Enqueued + Σ Dropped + staged (the
// ≤ BatchSize datagrams per shard not yet flushed), and after Flush or
// Close, Fed == Analyzed + Dropped exactly.
type Stats struct {
	Fed, Analyzed, Dropped, Backpressure uint64
	Shards                               []ShardStats
}

// Stats snapshots the per-shard accounting. Safe to call from any
// goroutine (the counters are atomic), though per-shard numbers are
// only mutually consistent once ingestion is quiescent.
func (s *ShardedAnalyzer) Stats() Stats {
	st := Stats{Fed: s.fed.Load(), Shards: make([]ShardStats, len(s.shards))}
	for i, sh := range s.shards {
		ss := ShardStats{
			Enqueued:     sh.enqueued.Load(),
			Analyzed:     sh.analyzed.Load(),
			Dropped:      sh.dropped.Load(),
			Backpressure: sh.backpressure.Load(),
			QueueDepth:   int(sh.pending.Load()),
		}
		st.Shards[i] = ss
		st.Analyzed += ss.Analyzed
		st.Dropped += ss.Dropped
		st.Backpressure += ss.Backpressure
	}
	return st
}

// ingestMetrics and shardMetrics are the registry handles behind the
// /metrics snapshot: tier-level fed/shards, and per-shard queue-depth
// gauges plus drop and back-pressure counters, labelled app+shard so
// a hot shard is visible in isolation. Zero values (nil registry) are
// inert, the package-wide convention.
type ingestMetrics struct {
	fed    *metrics.Counter
	shards *metrics.Gauge
}

func newIngestMetrics(r *metrics.Registry, app string, n int) ingestMetrics {
	if r == nil {
		return ingestMetrics{}
	}
	l := metrics.L("app", app)
	m := ingestMetrics{
		fed:    r.Counter("ingest_datagrams_fed_total", l),
		shards: r.Gauge("ingest_shards", l),
	}
	m.shards.Set(int64(n))
	return m
}

type shardMetrics struct {
	depth        *metrics.Gauge
	analyzed     *metrics.Counter
	dropped      *metrics.Counter
	backpressure *metrics.Counter
}

func newShardMetrics(r *metrics.Registry, app string, i int) shardMetrics {
	if r == nil {
		return shardMetrics{}
	}
	labels := []metrics.Label{metrics.L("app", app), metrics.L("shard", fmt.Sprint(i))}
	return shardMetrics{
		depth:        r.Gauge("ingest_queue_depth", labels...),
		analyzed:     r.Counter("ingest_datagrams_analyzed_total", labels...),
		dropped:      r.Counter("ingest_datagrams_dropped_total", labels...),
		backpressure: r.Counter("ingest_backpressure_total", labels...),
	}
}
