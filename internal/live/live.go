// Package live moves captures over real sockets: an Exporter replays a
// capture's frames to a UDP endpoint (like a packet broker's
// encapsulated mirror port), and a Collector receives them, rebuilding
// timestamped frames for the analysis pipeline.
//
// Each exported datagram carries one link-layer frame behind a small
// encapsulation header, so the original addresses, ports, and payloads
// survive the trip even though the transport is a plain UDP socket:
//
//	0      4        12      16
//	| "RTCC" | ts µs  | seq   | frame bytes ...
//
// The paper's setup captured on the phone and analyzed offline; this
// package is the online variant — run the collector on the analysis
// host, point an exporter (or a mirror of a real capture) at it, and
// feed each frame straight into the streaming core.Analyzer as it
// arrives (Collector.Stream + ReorderBuffer), or buffer them all with
// Collect for pcap export.
package live

import (
	"container/heap"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// Magic identifies an encapsulated frame datagram.
var Magic = [4]byte{'R', 'T', 'C', 'C'}

// headerLen is the encapsulation header size.
const headerLen = 16

// maxFrame bounds the encapsulated frame size (a full-size UDP payload
// minus the header fits comfortably).
const maxFrame = 64 * 1024

// Encapsulate builds the wire form of one frame.
func Encapsulate(seq uint32, pkt pcap.Packet) []byte {
	buf := make([]byte, headerLen+len(pkt.Data))
	copy(buf[0:4], Magic[:])
	binary.BigEndian.PutUint64(buf[4:12], uint64(pkt.Timestamp.UnixMicro()))
	binary.BigEndian.PutUint32(buf[12:16], seq)
	copy(buf[headerLen:], pkt.Data)
	return buf
}

// Decapsulate parses one encapsulated datagram, copying the frame out
// so the result outlives the receive buffer.
func Decapsulate(b []byte) (seq uint32, pkt pcap.Packet, err error) {
	seq, pkt, err = DecapsulateView(b)
	if err != nil {
		return 0, pcap.Packet{}, err
	}
	data := make([]byte, len(pkt.Data))
	copy(data, pkt.Data)
	pkt.Data = data
	return seq, pkt, nil
}

// DecapsulateView parses one encapsulated datagram without copying:
// the returned packet's Data aliases b and is only valid while b is.
// It is the allocation-free first step the Collector uses to judge a
// frame (sequence accounting, the Filter hook) before paying for the
// copy-out — a dropped frame never allocates.
func DecapsulateView(b []byte) (seq uint32, pkt pcap.Packet, err error) {
	if len(b) < headerLen {
		return 0, pcap.Packet{}, fmt.Errorf("live: datagram too short (%d bytes)", len(b))
	}
	if [4]byte(b[0:4]) != Magic {
		return 0, pcap.Packet{}, errors.New("live: bad magic")
	}
	ts := time.UnixMicro(int64(binary.BigEndian.Uint64(b[4:12]))).UTC()
	seq = binary.BigEndian.Uint32(b[12:16])
	data := b[headerLen:]
	return seq, pcap.Packet{Timestamp: ts, Data: data, OrigLen: len(data)}, nil
}

// Exporter replays frames to a UDP endpoint.
type Exporter struct {
	conn net.Conn
	seq  uint32
	// Speed divides inter-frame gaps: 0 or 1 replays in real time, 10
	// replays ten times faster, and SpeedInstant disables pacing.
	Speed float64
}

// SpeedInstant disables pacing entirely.
const SpeedInstant = -1

// Dial connects an exporter to addr (host:port).
func Dial(addr string) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	return &Exporter{conn: conn, Speed: SpeedInstant}, nil
}

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// Send exports one frame immediately.
func (e *Exporter) Send(pkt pcap.Packet) error {
	if len(pkt.Data) > maxFrame {
		return fmt.Errorf("live: frame of %d bytes exceeds limit", len(pkt.Data))
	}
	e.seq++
	_, err := e.conn.Write(Encapsulate(e.seq, pkt))
	return err
}

// Replay exports every frame, pacing inter-frame gaps by Speed. The
// context cancels a long replay.
func (e *Exporter) Replay(ctx context.Context, frames []pcap.Packet) error {
	var prev time.Time
	for i, f := range frames {
		if e.Speed > 0 && i > 0 {
			gap := f.Timestamp.Sub(prev)
			if gap > 0 {
				scaled := time.Duration(float64(gap) / e.Speed)
				select {
				case <-time.After(scaled):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		prev = f.Timestamp
		if err := e.Send(f); err != nil {
			return err
		}
	}
	return nil
}

// Collector receives encapsulated frames on a UDP socket.
type Collector struct {
	pc net.PacketConn
	// IdleTimeout ends collection after this long without a frame
	// (default 2 s).
	IdleTimeout time.Duration
	// DecodeErrors counts datagrams that could not be decapsulated (bad
	// magic, too short). These are received bytes that carry no frame —
	// the live analogue of CaptureAnalysis.DecodeErrors — and are
	// surfaced rather than silently discarded.
	DecodeErrors int
	// Dropped estimates frames lost in flight, from gaps in the
	// exporter's sequence numbers: a forward jump of k accounts for k-1
	// missing frames, and a late (reordered) arrival of a frame
	// previously counted missing takes one back off.
	Dropped int
	// Reordered counts frames that arrived with a backwards sequence
	// number (UDP reordering on the mirror path).
	Reordered int
	// Filter, when non-nil, judges each frame before the copy-out: it
	// sees a zero-copy view of the decapsulated frame (Data aliases the
	// receive buffer — the filter must not retain it) and a false
	// verdict drops the frame without allocating. Sequence accounting
	// still advances, so loss estimates stay correct under filtering.
	Filter func(pkt pcap.Packet) bool
	// FilteredOut counts frames the Filter rejected.
	FilteredOut int
	// Metrics, when non-nil, mirrors the counters above as
	// live_frames_received_total, live_decode_errors_total,
	// live_frames_reordered_total, live_frames_filtered_total, and the
	// live_frames_dropped gauge (a gauge because a late arrival revises
	// the loss estimate down).
	Metrics *metrics.Registry

	lastSeq uint32
	seenAny bool
}

// streamCounters holds the metric handles Stream resolves once per
// call; the zero value (nil registry) is inert.
type streamCounters struct {
	received   *metrics.Counter
	decodeErrs *metrics.Counter
	dropped    *metrics.Gauge
	reordered  *metrics.Counter
	filtered   *metrics.Counter
}

// SortByTimestamp stable-sorts frames by capture timestamp, restoring
// original capture order after UDP reordering on the mirror path.
func SortByTimestamp(frames []pcap.Packet) {
	sort.SliceStable(frames, func(i, j int) bool {
		return frames[i].Timestamp.Before(frames[j].Timestamp)
	})
}

// Listen binds a collector; addr may use port 0 for an ephemeral port.
func Listen(addr string) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	// Bursty mirrors overflow the default receive buffer long before
	// the collector loop drains it; ask for a few megabytes (best
	// effort — the kernel may clamp it).
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(8 << 20)
	}
	return &Collector{pc: pc, IdleTimeout: 2 * time.Second}, nil
}

// Addr reports the bound address (useful with port 0).
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// Close releases the socket.
func (c *Collector) Close() error { return c.pc.Close() }

// Stream receives frames and hands each one to fn as it arrives, in
// arrival order with its original capture timestamp, until max frames
// have been delivered (0 = unlimited), the idle timeout passes, or the
// context is canceled. Each delivered frame's Data is freshly
// allocated, so fn may retain it — feeding a core.Analyzer (usually
// through a ReorderBuffer, since UDP may reorder the mirror path)
// analyzes the capture without ever buffering it. Frames the Filter
// rejects are dropped before that copy-out, so an uninteresting frame
// costs no allocation at all. Returns the delivered count; a non-nil
// error from fn aborts the stream and is returned as-is.
func (c *Collector) Stream(ctx context.Context, max int, fn func(pcap.Packet) error) (int, error) {
	idle := c.IdleTimeout
	if idle <= 0 {
		idle = 2 * time.Second
	}
	sc := streamCounters{
		received:   c.Metrics.Counter("live_frames_received_total"),
		decodeErrs: c.Metrics.Counter("live_decode_errors_total"),
		dropped:    c.Metrics.Gauge("live_frames_dropped"),
		reordered:  c.Metrics.Counter("live_frames_reordered_total"),
		filtered:   c.Metrics.Counter("live_frames_filtered_total"),
	}
	count := 0
	buf := make([]byte, maxFrame+headerLen)
	for max == 0 || count < max {
		deadline := time.Now().Add(idle)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		if err := c.pc.SetReadDeadline(deadline); err != nil {
			return count, err
		}
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return count, nil // idle end
			}
			if ctx.Err() != nil {
				return count, nil
			}
			return count, err
		}
		delivered, err := c.handleDatagram(buf[:n], sc, fn)
		if delivered {
			count++
		}
		if err != nil {
			return count, err
		}
	}
	return count, nil
}

// handleDatagram processes one received datagram: zero-copy
// decapsulation, sequence accounting, the Filter verdict, and — only
// for frames that survive all three — the copy-out and delivery to fn.
// The decode-error and filter-drop paths never copy the payload; the
// filter-drop path performs no allocation at all (pinned by
// TestCollectorDropPathAllocs).
func (c *Collector) handleDatagram(b []byte, sc streamCounters, fn func(pcap.Packet) error) (delivered bool, err error) {
	seq, pkt, err := DecapsulateView(b)
	if err != nil {
		c.DecodeErrors++
		sc.decodeErrs.Inc()
		return false, nil
	}
	switch {
	case !c.seenAny:
		c.seenAny = true
		c.lastSeq = seq
	case seq > c.lastSeq:
		c.Dropped += int(seq-c.lastSeq) - 1
		c.lastSeq = seq
	default:
		// A backwards (or duplicate-seq) arrival: the frame was
		// counted missing when the gap was observed, so reclaim it.
		c.Reordered++
		sc.reordered.Inc()
		if c.Dropped > 0 {
			c.Dropped--
		}
	}
	sc.dropped.Set(int64(c.Dropped))
	sc.received.Inc()
	if c.Filter != nil && !c.Filter(pkt) {
		c.FilteredOut++
		sc.filtered.Inc()
		return false, nil
	}
	data := make([]byte, len(pkt.Data))
	copy(data, pkt.Data)
	pkt.Data = data
	return true, fn(pkt)
}

// Collect receives frames until max frames arrive (0 = unlimited), the
// idle timeout passes, or the context is canceled. Frames are returned
// in arrival order with their original capture timestamps. It is
// Stream buffering into a slice — use Stream to analyze without
// holding the whole capture.
func (c *Collector) Collect(ctx context.Context, max int) ([]pcap.Packet, error) {
	var frames []pcap.Packet
	_, err := c.Stream(ctx, max, func(pkt pcap.Packet) error {
		frames = append(frames, pkt)
		return nil
	})
	return frames, err
}

// ReorderBuffer restores approximate capture order before delivery: it
// holds up to Depth frames in a min-heap keyed by timestamp (insertion
// order breaks ties, matching SortByTimestamp's stable sort) and emits
// the earliest frame once the buffer is full. Any reordering with
// displacement under Depth is corrected exactly; a deeper displacement
// emits frames slightly out of order, which the Analyzer tolerates the
// same way it tolerates an unsorted capture file.
type ReorderBuffer struct {
	depth int
	emit  func(pcap.Packet) error
	h     frameHeap
	n     uint64
}

// NewReorderBuffer returns a buffer of the given depth (≤ 0 selects
// 256) delivering to emit.
func NewReorderBuffer(depth int, emit func(pcap.Packet) error) *ReorderBuffer {
	if depth <= 0 {
		depth = 256
	}
	return &ReorderBuffer{depth: depth, emit: emit}
}

// Push inserts one frame, emitting the earliest buffered frame when
// the buffer is over depth.
func (rb *ReorderBuffer) Push(pkt pcap.Packet) error {
	heap.Push(&rb.h, frameEntry{pkt: pkt, seq: rb.n})
	rb.n++
	if rb.h.Len() > rb.depth {
		return rb.emit(heap.Pop(&rb.h).(frameEntry).pkt)
	}
	return nil
}

// Flush emits every buffered frame in timestamp order.
func (rb *ReorderBuffer) Flush() error {
	for rb.h.Len() > 0 {
		if err := rb.emit(heap.Pop(&rb.h).(frameEntry).pkt); err != nil {
			return err
		}
	}
	return nil
}

// frameEntry orders frames by (timestamp, arrival) in the heap.
type frameEntry struct {
	pkt pcap.Packet
	seq uint64
}

type frameHeap []frameEntry

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if !h[i].pkt.Timestamp.Equal(h[j].pkt.Timestamp) {
		return h[i].pkt.Timestamp.Before(h[j].pkt.Timestamp)
	}
	return h[i].seq < h[j].seq
}
func (h frameHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x any)        { *h = append(*h, x.(frameEntry)) }
func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
