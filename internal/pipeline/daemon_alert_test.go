package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/alert"
	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// alertDaemonConfig renders a daemon config with an absolute
// compliance floor and an exec sink appending one line per event to
// execFile. min 0.2 sits between Discord's type-compliance rate (0)
// and any Zoom epoch, so swapping the replayed app forces a regression.
func alertDaemonConfig(label, trendFile, execFile string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "source:\n  kind: live\n  listen: \"127.0.0.1:0\"\n  idle: 100ms\n  label: %s\n", label)
	fmt.Fprintf(&b, "exec:\n  shards: 1\n  policy: block\n")
	fmt.Fprintf(&b, "analysis:\n  qoe: true\n")
	fmt.Fprintf(&b, "daemon:\n  epoch: 250ms\n  trend_file: %s\n", trendFile)
	fmt.Fprintf(&b, "sinks:\n  metrics_addr: \"127.0.0.1:0\"\n")
	fmt.Fprintf(&b, "alerts:\n  rules:\n    floor:\n      type: compliance_drop\n      min: 0.2\n")
	fmt.Fprintf(&b, "  sinks:\n    exec:\n      command: \"echo $ALERT_KIND.$ALERT_RULE.$ALERT_APP >> %s\"\n", execFile)
	return b.String()
}

// appFrames is testFrames for an arbitrary app.
func appFrames(t *testing.T, app appsim.App, seed uint64) []pcap.Packet {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App:          app,
		Network:      appsim.WiFiP2P,
		Seed:         seed,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: 2 * time.Second,
		MediaRate:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap.Input().Packets
}

// execLines reads the exec sink's output file (absent file = no events).
func execLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSpace(string(raw)), "\n")
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// waitExecLines blocks until the exec sink has written exactly want
// lines (and complains on overshoot).
func waitExecLines(t *testing.T, path string, want int) []string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if lines := execLines(t, path); len(lines) >= want {
			return lines
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d exec-sink lines, have %v", want, execLines(t, path))
	return nil
}

// TestDaemonAlertLifecycle drives the full alerting path end to end:
// a compliance regression (Zoom replay swapped for Discord under the
// same label) fires the rule exactly once through the exec and log
// sinks, stays suppressed while the regression persists — including
// across a SIGHUP-style reload — is visible on /compliance/alerts,
// /healthz and /metrics?format=prom, and resolves when compliant
// traffic returns.
func TestDaemonAlertLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "daemon.yaml")
	trendPath := filepath.Join(dir, "trend.jsonl")
	execPath := filepath.Join(dir, "alerts.out")
	cfg := alertDaemonConfig("call", trendPath, execPath)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuf{}
	d, errCh := startDaemon(t, cfgPath, out)
	addr := d.Addr()
	api := "http://" + d.MetricsAddr()

	// Healthy traffic: establishes state, no alert.
	fed := feedFrames(t, addr, appFrames(t, appsim.Zoom, 1))
	waitFed(t, d, fed)
	waitLog(t, out, "daemon: epoch closed")
	if lines := execLines(t, execPath); len(lines) != 0 {
		t.Fatalf("alert fired on healthy traffic: %v", lines)
	}

	// Regression: Discord's RTC traffic fails every type check, so the
	// same label now breaches the floor.
	fed += feedFrames(t, addr, appFrames(t, appsim.Discord, 2))
	waitFed(t, d, fed)
	waitLog(t, out, "alert floor firing: app=call type-compliance rate=0.000")
	if lines := waitExecLines(t, execPath, 1); len(lines) != 1 || lines[0] != "fire.floor.call" {
		t.Fatalf("exec sink after fire: %v", lines)
	}

	// The firing episode is visible over HTTP.
	var snap alert.Snapshot
	getJSON(t, api+"/compliance/alerts", &snap)
	if snap.Firing != 1 || len(snap.States) != 1 || !snap.States[0].Firing || snap.States[0].Fires != 1 {
		t.Fatalf("alerts snapshot: %+v", snap)
	}

	// Persisting regression: suppressed, not re-fired. Wait until the
	// rule has actually evaluated more regressed points.
	seen := snap.States[0].Evaluated
	fed += feedFrames(t, addr, appFrames(t, appsim.Discord, 3))
	waitFed(t, d, fed)
	waitEvaluated(t, api, seen)
	if lines := execLines(t, execPath); len(lines) != 1 {
		t.Fatalf("persistent breach re-fired: %v", lines)
	}

	// Reload (the SIGHUP path) must keep the firing state: feeding more
	// regressed traffic afterwards must not re-fire.
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	d.Reload()
	waitLog(t, out, "daemon: reloaded config from")
	fed += feedFrames(t, addr, appFrames(t, appsim.Discord, 4))
	waitFed(t, d, fed)
	getJSON(t, api+"/compliance/alerts", &snap)
	if snap.Firing != 1 || snap.States[0].Fires != 1 {
		t.Fatalf("firing state lost across reload: %+v", snap)
	}
	if lines := execLines(t, execPath); len(lines) != 1 {
		t.Fatalf("reload re-fired the alert: %v", lines)
	}

	// Health endpoint reflects the reload and the block policy.
	var health struct {
		Status     string `json:"status"`
		Epochs     uint64 `json:"epochs"`
		Reloads    uint64 `json:"reloads"`
		LastReload *struct {
			OK bool `json:"ok"`
		} `json:"last_reload"`
		Backpressure struct {
			Policy string `json:"policy"`
			Fed    uint64 `json:"fed"`
		} `json:"backpressure"`
	}
	getJSON(t, api+"/healthz", &health)
	if health.Status != "ok" || health.Reloads != 1 || health.LastReload == nil || !health.LastReload.OK {
		t.Fatalf("healthz: %+v", health)
	}
	if health.Epochs == 0 || health.Backpressure.Policy != "block" || health.Backpressure.Fed != fed {
		t.Fatalf("healthz accounting: %+v", health)
	}

	// Prometheus exposition carries the alert counters.
	resp, err := http.Get(api + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody := readBody(t, resp)
	for _, line := range []string{"rtcc_alerts_fired_total 1", "rtcc_alerts_firing 1", `rtcc_alerts_delivery_ok_total{sink="exec"} 1`} {
		if !strings.Contains(promBody, line+"\n") {
			t.Fatalf("prom exposition missing %q:\n%s", line, promBody)
		}
	}

	// Recovery resolves the episode through the same sinks.
	fed += feedFrames(t, addr, appFrames(t, appsim.Zoom, 5))
	waitFed(t, d, fed)
	waitLog(t, out, "alert floor resolved: app=call")
	if lines := waitExecLines(t, execPath, 2); len(lines) != 2 || lines[1] != "resolve.floor.call" {
		t.Fatalf("exec sink after resolve: %v", lines)
	}
	getJSON(t, api+"/compliance/alerts", &snap)
	if snap.Firing != 0 || snap.States[0].Firing {
		t.Fatalf("episode did not resolve: %+v", snap)
	}

	stopDaemon(t, d, errCh)
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitEvaluated polls /compliance/alerts until the first rule state has
// evaluated a point newer than after.
func waitEvaluated(t *testing.T, api string, after time.Time) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var snap alert.Snapshot
		getJSON(t, api+"/compliance/alerts", &snap)
		if len(snap.States) > 0 && snap.States[0].Evaluated.After(after) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for an evaluation after %v", after)
}
