package core

import (
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Seed-robustness: the Table 3 cells must hold for any seed, not just
// the one the main test uses. Run with -run SeedSweep -count 1; skipped
// in -short mode.
func TestTypeComplianceSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, base := range []uint64{7, 31337, 999999, 424242} {
		ma, err := RunMatrix(trace.MatrixOptions{
			Runs: 1, CallDuration: 8 * time.Second, PrePost: 10 * time.Second,
			MediaRate: 15, Start: t0, BaseSeed: base, Background: true,
		}, Options{SkipFindings: true})
		if err != nil {
			t.Fatal(err)
		}
		check := func(app appsim.App, fam dpi.Protocol, wc, wt int) {
			c, tot := ma.Aggregate.App(string(app)).TypeCompliance(fam)
			if c != wc || tot != wt {
				comp, non := ma.Aggregate.App(string(app)).TypesOf(fam)
				t.Errorf("seed %d: %s %s = %d/%d, want %d/%d (compliant %v, non %v)",
					base, app, fam, c, tot, wc, wt, comp, non)
			}
		}
		check(appsim.Zoom, dpi.ProtoSTUN, 0, 2)
		check(appsim.Zoom, dpi.ProtoRTCP, 2, 2)
		check(appsim.FaceTime, dpi.ProtoSTUN, 0, 4)
		check(appsim.FaceTime, dpi.ProtoRTP, 0, 5)
		check(appsim.FaceTime, dpi.ProtoQUIC, 4, 4)
		check(appsim.WhatsApp, dpi.ProtoSTUN, 1, 10)
		check(appsim.WhatsApp, dpi.ProtoRTCP, 4, 4)
		check(appsim.Messenger, dpi.ProtoSTUN, 11, 18)
		check(appsim.Discord, dpi.ProtoRTP, 0, 4)
		check(appsim.Discord, dpi.ProtoRTCP, 0, 5)
		check(appsim.GoogleMeet, dpi.ProtoSTUN, 15, 16)
		check(appsim.GoogleMeet, dpi.ProtoRTP, 11, 11)
		check(appsim.GoogleMeet, dpi.ProtoRTCP, 0, 7)
	}
}
