package interop

import (
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/report"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

func syntheticStats(app string) *report.AppStats {
	s := report.NewAppStats(app)
	// 80 standard datagrams, 15 behind proprietary headers, 5 fully
	// proprietary.
	for i := 0; i < 80; i++ {
		s.AddDatagram(dpi.ClassStandard)
	}
	for i := 0; i < 15; i++ {
		s.AddDatagram(dpi.ClassProprietaryHeader)
	}
	for i := 0; i < 5; i++ {
		s.AddDatagram(dpi.ClassFullyProprietary)
	}
	add := func(label string, compliant bool, reason string) {
		v := compliance.Verdict{Compliant: true}
		if !compliant {
			v = compliance.Verdict{Failed: compliance.CritAttrType, Reason: reason}
		}
		s.AddChecked(compliance.Checked{
			Protocol: dpi.ProtoRTP,
			Type:     compliance.TypeKey{Protocol: dpi.ProtoRTP, Label: label},
			Verdict:  v, Bytes: 100, Timestamp: time.Unix(0, 0),
		})
	}
	for i := 0; i < 90; i++ {
		add("96", true, "")
	}
	for i := 0; i < 5; i++ {
		add("120", false, "header extension profile 0x8500 is not defined by RFC 8285")
	}
	return s
}

func TestBuildProfile(t *testing.T) {
	p := BuildProfile(syntheticStats("X"))
	if p.SpecParseable != 0.8 {
		t.Errorf("SpecParseable = %v", p.SpecParseable)
	}
	if p.MessageCompliance != 90.0/95.0 {
		t.Errorf("MessageCompliance = %v", p.MessageCompliance)
	}
	kinds := map[ShimKind]bool{}
	for _, s := range p.Shims {
		kinds[s.Kind] = true
	}
	for _, want := range []ShimKind{ShimHeaderStripper, ShimProprietaryProtocol, ShimAttributeTolerance} {
		if !kinds[want] {
			t.Errorf("missing shim %s (have %v)", want, kinds)
		}
	}
	if p.EffortScore() <= 0 {
		t.Error("zero effort score")
	}
	if o := p.OutOfTheBox(); o <= 0 || o >= 1 {
		t.Errorf("OutOfTheBox = %v", o)
	}
}

func TestProfileOfFullyCompliantApp(t *testing.T) {
	s := report.NewAppStats("clean")
	for i := 0; i < 10; i++ {
		s.AddDatagram(dpi.ClassStandard)
		s.AddChecked(compliance.Checked{
			Protocol: dpi.ProtoRTP,
			Type:     compliance.TypeKey{Protocol: dpi.ProtoRTP, Label: "96"},
			Verdict:  compliance.Verdict{Compliant: true}, Bytes: 10,
		})
	}
	p := BuildProfile(s)
	if len(p.Shims) != 0 {
		t.Errorf("clean app needs shims: %+v", p.Shims)
	}
	if p.OutOfTheBox() != 1 {
		t.Errorf("OutOfTheBox = %v, want 1", p.OutOfTheBox())
	}
	if p.EffortScore() != 0 {
		t.Errorf("effort = %v, want 0", p.EffortScore())
	}
}

func TestClassifyReasons(t *testing.T) {
	cases := map[string]ShimKind{
		"message type 0x0801 is not defined in any STUN/TURN specification": ShimTypeRegistry,
		"RTCP packet type 210 is not assigned":                              ShimTypeRegistry,
		"attribute 0x4003 is not defined in any STUN/TURN specification":    ShimAttributeTolerance,
		"header extension profile 0x8500 is not defined by RFC 8285":        ShimAttributeTolerance,
		"attribute CHANNEL-NUMBER has invalid length 2":                     ShimValueNormalization,
		"attribute ALTERNATE-SERVER has invalid address family 0x00":        ShimValueNormalization,
		"request-only attribute PRIORITY present in a success response":     ShimValueNormalization,
		"SRTCP message carries E-flag and index but no authentication tag":  ShimBehavioralAdapter,
		"repeated Allocate requests after successful allocation":            ShimBehavioralAdapter,
	}
	for reason, want := range cases {
		if got := criterionOf(reason); got != want {
			t.Errorf("classify(%q) = %s, want %s", reason, got, want)
		}
	}
}

func TestPairwise(t *testing.T) {
	a := BuildProfile(syntheticStats("A"))
	clean := report.NewAppStats("B")
	clean.AddDatagram(dpi.ClassStandard)
	clean.AddChecked(compliance.Checked{
		Protocol: dpi.ProtoRTP,
		Type:     compliance.TypeKey{Protocol: dpi.ProtoRTP, Label: "96"},
		Verdict:  compliance.Verdict{Compliant: true}, Bytes: 10,
	})
	b := BuildProfile(clean)

	ab := Pairwise(a, b)
	if ab.Effort != a.EffortScore() {
		t.Errorf("effort = %v, want %v (clean peer adds none)", ab.Effort, a.EffortScore())
	}
	if ab.OutOfTheBox != a.OutOfTheBox() {
		t.Errorf("oob = %v, want %v", ab.OutOfTheBox, a.OutOfTheBox())
	}
	if len(ab.Shims) != len(a.Shims) {
		t.Errorf("shim union = %v", ab.Shims)
	}
}

// End-to-end: the measured matrix must rank Zoom/FaceTime pairs as the
// hardest integrations and the standards-heavy apps as the easiest —
// the paper's §6 conclusion.
func TestMatrixRanking(t *testing.T) {
	ma, err := core.RunMatrix(trace.MatrixOptions{
		Runs: 1, CallDuration: 6 * time.Second, PrePost: 6 * time.Second,
		MediaRate: 15, Start: time.Unix(1700000000, 0).UTC(), BaseSeed: 300,
		Background: true,
	}, core.Options{SkipFindings: true})
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[string]Profile{}
	for _, s := range ma.Aggregate.Apps() {
		profiles[s.App] = BuildProfile(s)
	}
	if profiles["Zoom"].OutOfTheBox() >= profiles["WhatsApp"].OutOfTheBox() {
		t.Error("Zoom should be harder out-of-the-box than WhatsApp (proprietary headers)")
	}
	if profiles["FaceTime"].OutOfTheBox() >= profiles["Google Meet"].OutOfTheBox() {
		t.Error("FaceTime should be harder than Meet")
	}
	if profiles["Zoom"].EffortScore() <= profiles["WhatsApp"].EffortScore() {
		t.Error("Zoom effort should exceed WhatsApp effort")
	}
	assessments := Matrix(ma.Aggregate)
	if len(assessments) != 6*5 {
		t.Fatalf("assessments = %d, want 30", len(assessments))
	}
	// Description renders without issue.
	d := Describe(profiles["Zoom"])
	if !strings.Contains(d, "Zoom") || !strings.Contains(d, "needs") {
		t.Errorf("describe:\n%s", d)
	}
}
