package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestName(t *testing.T) {
	tests := []struct {
		base   string
		labels []Label
		want   string
	}{
		{"plain", nil, "plain"},
		{"one", []Label{L("app", "Zoom")}, "one{app=Zoom}"},
		{"sorted", []Label{L("z", "1"), L("a", "2")}, "sorted{a=2,z=1}"},
		{"multi", []Label{L("app", "Meet"), L("network", "cellular"), L("stage", "1")},
			"multi{app=Meet,network=cellular,stage=1}"},
	}
	for _, tt := range tests {
		if got := Name(tt.base, tt.labels...); got != tt.want {
			t.Errorf("Name(%q, %v) = %q, want %q", tt.base, tt.labels, got, tt.want)
		}
	}
}

func TestCounterSemantics(t *testing.T) {
	tests := []struct {
		name string
		ops  func(c *Counter)
		want uint64
	}{
		{"zero value", func(c *Counter) {}, 0},
		{"inc", func(c *Counter) { c.Inc(); c.Inc(); c.Inc() }, 3},
		{"add", func(c *Counter) { c.Add(10); c.Add(0); c.Add(7) }, 17},
		{"mixed", func(c *Counter) { c.Inc(); c.Add(41) }, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var c Counter
			tt.ops(&c)
			if got := c.Value(); got != tt.want {
				t.Errorf("Value() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestGaugeSemantics(t *testing.T) {
	tests := []struct {
		name string
		ops  func(g *Gauge)
		want int64
	}{
		{"zero value", func(g *Gauge) {}, 0},
		{"set", func(g *Gauge) { g.Set(5); g.Set(-3) }, -3},
		{"add", func(g *Gauge) { g.Add(10); g.Add(-4) }, 6},
		{"set then add", func(g *Gauge) { g.Set(100); g.Add(1) }, 101},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var g Gauge
			tt.ops(&g)
			if got := g.Value(); got != tt.want {
				t.Errorf("Value() = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestNilSafety drives every operation through nil receivers and a nil
// registry: nothing may panic, lookups return nil, reads return zero.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", L("a", "b"))
	if c != nil {
		t.Fatal("nil registry returned a counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(2)
	if g != nil || g.Value() != 0 {
		t.Error("nil gauge misbehaved")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(h.Start())
	if h != nil || h.Count() != 0 {
		t.Error("nil histogram misbehaved")
	}
	if !h.Start().IsZero() {
		t.Error("nil histogram Start() should return zero time")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("app", "Zoom"))
	b := r.Counter("hits", L("app", "Zoom"))
	if a != b {
		t.Error("same name+labels resolved to different counters")
	}
	other := r.Counter("hits", L("app", "Meet"))
	if a == other {
		t.Error("different labels resolved to the same counter")
	}
	a.Add(2)
	if b.Value() != 2 || other.Value() != 0 {
		t.Error("counter identity broken")
	}
	// Histogram bounds: first creation wins.
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", []float64{99})
	if h1 != h2 {
		t.Error("same histogram name resolved to different instances")
	}
	if len(h1.bounds) != 2 {
		t.Errorf("histogram bounds = %v, want the first creation's", h1.bounds)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", L("app", "Zoom")).Add(100)
	r.Gauge("workers").Set(8)
	r.Histogram("lat_seconds", []float64{0.001, 0.01}).Observe(0.002)

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["frames_total{app=Zoom}"] != 100 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["workers"] != 8 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	h := snap.Histograms["lat_seconds"]
	if h.Count != 1 || h.Buckets[1].Count != 1 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

// TestCounterHammer is the -race stress test: 64 goroutines increment
// the same labelled counter concurrently; the total must be exact.
func TestCounterHammer(t *testing.T) {
	const goroutines = 64
	const perG = 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine: registry lookup itself must
			// be race-free too.
			c := r.Counter("hammer_total", L("app", "Zoom"), L("stage", "dpi"))
			h := r.Histogram("hammer_seconds", []float64{1e-6, 1e-3, 1})
			g := r.Gauge("hammer_gauge")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(1e-4)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", L("app", "Zoom"), L("stage", "dpi")).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
}
