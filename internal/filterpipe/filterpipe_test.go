package filterpipe

import (
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

var t0 = time.Unix(1700000000, 0).UTC()

// buildTable assembles a flow table from a trace capture.
func buildTable(t *testing.T, cap *trace.Capture) *flow.Table {
	t.Helper()
	table := flow.NewTable()
	for _, f := range cap.Frames() {
		pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
		if err != nil {
			t.Fatal(err)
		}
		table.Add(f.Timestamp, pkt)
	}
	return table
}

func generate(t *testing.T, app appsim.App, network appsim.Network) (*trace.Capture, *flow.Table, *Result) {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App:          app,
		Network:      network,
		Seed:         9,
		Start:        t0,
		CallDuration: 8 * time.Second,
		PrePost:      12 * time.Second,
		MediaRate:    15,
		Background:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := buildTable(t, cap)
	res := Run(table, Config{CallStart: cap.CallStart, CallEnd: cap.CallEnd})
	return cap, table, res
}

func TestPartitionPreserved(t *testing.T) {
	_, table, res := generate(t, appsim.WhatsApp, appsim.WiFiRelay)
	if len(res.RTC)+len(res.RemovedStreams) != table.Len() {
		t.Fatalf("kept %d + removed %d != total %d", len(res.RTC), len(res.RemovedStreams), table.Len())
	}
	kept := res.RTCUDP.Packets + res.RTCTCP.Packets
	removed := res.Stage1UDP.Packets + res.Stage1TCP.Packets + res.Stage2UDP.Packets + res.Stage2TCP.Packets
	if kept+removed != table.PacketCount() {
		t.Fatalf("packet accounting: %d + %d != %d", kept, removed, table.PacketCount())
	}
	if res.RawUDP.Streams+res.RawTCP.Streams != table.Len() {
		t.Fatal("raw stream accounting wrong")
	}
}

func TestEveryRuleFires(t *testing.T) {
	_, _, res := generate(t, appsim.GoogleMeet, appsim.WiFiP2P)
	rules := make(map[Rule]int)
	for _, rm := range res.Removed {
		rules[rm.Rule]++
	}
	for _, want := range []Rule{RuleTimespan, RuleThreeTuple, RuleSNI, RuleLocalIP, RulePort} {
		if rules[want] == 0 {
			t.Errorf("rule %q never fired: %v", want, rules)
		}
	}
}

func TestRTCTrafficSurvives(t *testing.T) {
	for _, app := range appsim.Apps {
		for _, network := range appsim.Networks {
			cap, _, res := generate(t, app, network)
			// Every surviving packet count must equal the RTC ground
			// truth: nothing from the call removed, nothing unrelated
			// kept.
			got := res.RTCUDP.Packets + res.RTCTCP.Packets
			if got != cap.RTCEvents {
				t.Errorf("%s/%s: RTC packets = %d, ground truth %d", app, network, got, cap.RTCEvents)
			}
		}
	}
}

func TestP2PMediaNotRemovedByLocalIPRule(t *testing.T) {
	// Wi-Fi P2P media flows between two private addresses; the local-IP
	// rule must keep it because the pair does not appear pre-call.
	_, _, res := generate(t, appsim.WhatsApp, appsim.WiFiP2P)
	foundP2P := false
	for _, s := range res.RTC {
		a, b := s.Key.A.Addr.String(), s.Key.B.Addr.String()
		if (a == "192.168.1.10" && b == "192.168.1.20") || (a == "192.168.1.20" && b == "192.168.1.10") {
			foundP2P = true
		}
	}
	if !foundP2P {
		t.Error("P2P media stream was filtered out")
	}
}

func TestSignalingTCPKept(t *testing.T) {
	_, _, res := generate(t, appsim.Discord, appsim.WiFiRelay)
	if res.RTCTCP.Streams == 0 {
		t.Error("RTC signaling TCP stream was removed")
	}
}

func TestAPNSRebindingCaughtByThreeTuple(t *testing.T) {
	_, _, res := generate(t, appsim.Zoom, appsim.WiFiRelay)
	found := false
	for key, rm := range res.Removed {
		if rm.Rule == RuleThreeTuple {
			// The APNS destination is 203.0.113.100:5223.
			if key.A.Port == 5223 || key.B.Port == 5223 {
				found = true
			}
		}
	}
	if !found {
		t.Error("in-window APNS stream not removed by the 3-tuple rule")
	}
}

func TestBlocklistedSNIRemoved(t *testing.T) {
	_, _, res := generate(t, appsim.Messenger, appsim.Cellular)
	count := 0
	for _, rm := range res.Removed {
		if rm.Rule == RuleSNI {
			count++
		}
	}
	if count == 0 {
		t.Error("no streams removed by SNI rule")
	}
}

func TestWindowSlackDefault(t *testing.T) {
	cfg := Config{}
	if cfg.Slack() != DefaultWindowSlack {
		t.Error("default slack wrong")
	}
	cfg.WindowSlack = time.Second
	if cfg.Slack() != time.Second {
		t.Error("explicit slack ignored")
	}
	if len(cfg.Blocklist()) == 0 {
		t.Error("default blocklist empty")
	}
	cfg.SNIBlocklist = []string{"x"}
	if len(cfg.Blocklist()) != 1 {
		t.Error("explicit blocklist ignored")
	}
}

func TestMatchesBlocklist(t *testing.T) {
	bl := []string{"web.facebook.com", "example.org"}
	cases := map[string]bool{
		"web.facebook.com":     true,
		"sub.web.facebook.com": true,
		"notfacebook.com":      false,
		"a.example.org":        true,
		"example.org":          true,
		"badexample.org":       false,
	}
	for sni, want := range cases {
		if got := MatchesBlocklist(sni, bl); got != want {
			t.Errorf("MatchesBlocklist(%q) = %v, want %v", sni, got, want)
		}
	}
}

func TestIdempotent(t *testing.T) {
	// Running the filter on the surviving streams only must remove
	// nothing further.
	cap, _, res := generate(t, appsim.FaceTime, appsim.Cellular)
	table2 := flow.NewTable()
	for _, s := range res.RTC {
		for _, p := range s.Packets {
			// Rebuild a decoded packet the quick way: re-encode as UDP
			// or TCP frame and decode it.
			var frame []byte
			if s.Key.Proto == layers.IPProtocolTCP {
				frame = layers.EncodeTCPv4(p.Src.Addr, p.Dst.Addr, layers.TCP{SrcPort: p.Src.Port, DstPort: p.Dst.Port, Flags: p.TCPFlags}, p.Payload)
			} else if p.Src.Addr.Is6() {
				frame = layers.EncodeUDPv6(p.Src.Addr, p.Dst.Addr, p.Src.Port, p.Dst.Port, p.Payload)
			} else {
				frame = layers.EncodeUDPv4(p.Src.Addr, p.Dst.Addr, p.Src.Port, p.Dst.Port, p.Payload)
			}
			pkt, err := layers.Decode(pcap.LinkTypeRaw, frame)
			if err != nil {
				t.Fatal(err)
			}
			table2.Add(p.Timestamp, pkt)
		}
	}
	res2 := Run(table2, Config{CallStart: cap.CallStart, CallEnd: cap.CallEnd})
	if len(res2.RemovedStreams) != 0 {
		for k, rm := range res2.Removed {
			t.Errorf("second pass removed %v: %+v", k, rm)
		}
	}
}
