package proto

// Observation is the per-message evidence a protocol driver reports to
// the behavioural-findings scanners (internal/core). The fields are
// generic across media protocols; a driver fills only what applies.
type Observation struct {
	// MediaMessage marks a media-plane message (RTP); the scanners
	// count media datagrams and multi-message datagrams from it.
	MediaMessage bool
	// SSRC is the message's media stream identifier when HasSSRC is
	// set, feeding the cross-call stream-identifier analyses.
	SSRC    uint32
	HasSSRC bool
	// TrailerByte is the last byte of a short proprietary trailer when
	// HasTrailerByte is set (the direction-correlation finding).
	TrailerByte    byte
	HasTrailerByte bool
	// FeedbackMessages counts feedback-class submessages, and
	// ZeroSSRCFeedback those carrying an all-zero sender identifier.
	FeedbackMessages int
	ZeroSSRCFeedback int
}

// Observer is implemented by handlers whose messages carry evidence for
// the behavioural-findings scanners.
type Observer interface {
	Observe(m Message, o *Observation)
}

// Observe fills an observation for one message by dispatching to the
// registered handler's Observer hook; messages of protocols without one
// leave the observation zero.
func (r *Registry) Observe(m Message, o *Observation) {
	*o = Observation{}
	if int(m.Protocol) < MaxIDs {
		if obs := r.observers[m.Protocol]; obs != nil {
			obs.Observe(m, o)
		}
	}
}
