package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Sink delivers one alert event to one destination. Deliver is called
// from the daemon's epoch loop (never concurrently) and must be safe
// to retry: a returned error means the dispatcher may call it again.
type Sink interface {
	Name() string
	Deliver(Event) error
}

// LogSink writes each event's one-line message to a writer — the
// daemon's stdout in practice, so alert transitions land in the same
// stream as epoch lines.
type LogSink struct {
	Out io.Writer
}

func (s *LogSink) Name() string { return "log" }

func (s *LogSink) Deliver(ev Event) error {
	_, err := fmt.Fprintf(s.Out, "daemon: %s\n", ev.Message)
	return err
}

// DefaultSinkTimeout bounds webhook and exec deliveries when the
// config does not.
const DefaultSinkTimeout = 10 * time.Second

// WebhookSink POSTs the event as a JSON body. Any 2xx response is a
// successful delivery.
type WebhookSink struct {
	URL     string
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil uses a default
	// client with the sink timeout.
	Client *http.Client
}

func (s *WebhookSink) Name() string { return "webhook" }

func (s *WebhookSink) timeout() time.Duration {
	if s.Timeout <= 0 {
		return DefaultSinkTimeout
	}
	return s.Timeout
}

func (s *WebhookSink) Deliver(ev Event) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("alert: webhook: %w", err)
	}
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: s.timeout()}
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("alert: webhook: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("alert: webhook %s: %w", s.URL, err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain for keep-alive
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("alert: webhook %s: status %d", s.URL, resp.StatusCode)
	}
	return nil
}

// ExecSink runs a shell command per event (via /bin/sh -c). The event
// is the command's stdin as JSON, and the key fields are exported as
// ALERT_RULE, ALERT_KIND, ALERT_APP, ALERT_VALUE, and ALERT_MESSAGE
// environment variables for scripts that don't want to parse JSON.
type ExecSink struct {
	Command string
	Timeout time.Duration
}

func (s *ExecSink) Name() string { return "exec" }

func (s *ExecSink) Deliver(ev Event) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("alert: exec: %w", err)
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = DefaultSinkTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, "/bin/sh", "-c", s.Command)
	cmd.Stdin = bytes.NewReader(body)
	cmd.Env = append(cmd.Environ(),
		"ALERT_RULE="+ev.Rule,
		"ALERT_KIND="+ev.Kind,
		"ALERT_APP="+ev.App,
		fmt.Sprintf("ALERT_VALUE=%.6f", ev.Value),
		"ALERT_MESSAGE="+ev.Message,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("alert: exec %q: %w (output: %s)", s.Command, err, bytes.TrimSpace(out))
	}
	return nil
}

// Dispatcher fans each event out to every sink with bounded retry and
// per-sink delivery accounting. A sink that exhausts its retries is
// logged and skipped — one broken webhook must not take the daemon (or
// the other sinks) down with it.
type Dispatcher struct {
	Sinks []Sink
	// Retries is how many re-attempts follow a failed delivery (so a
	// sink is tried 1+Retries times); Backoff sleeps between attempts.
	Retries int
	Backoff time.Duration
	// Log receives delivery-failure lines (nil discards them).
	Log io.Writer

	ok      func(sink string) *metrics.Counter
	failed  func(sink string) *metrics.Counter
	retries func(sink string) *metrics.Counter
}

// NewDispatcher builds a dispatcher over sinks. reg may be nil.
func NewDispatcher(sinks []Sink, retries int, backoff time.Duration, log io.Writer, reg *metrics.Registry) *Dispatcher {
	return &Dispatcher{
		Sinks:   sinks,
		Retries: retries,
		Backoff: backoff,
		Log:     log,
		ok: func(sink string) *metrics.Counter {
			return reg.Counter("alerts_delivery_ok_total", metrics.L("sink", sink))
		},
		failed: func(sink string) *metrics.Counter {
			return reg.Counter("alerts_delivery_failed_total", metrics.L("sink", sink))
		},
		retries: func(sink string) *metrics.Counter {
			return reg.Counter("alerts_delivery_retries_total", metrics.L("sink", sink))
		},
	}
}

// Dispatch delivers one event to every sink. It never returns an
// error: delivery failures are counted, logged, and contained.
func (d *Dispatcher) Dispatch(ev Event) {
	for _, s := range d.Sinks {
		var err error
		for attempt := 0; attempt <= d.Retries; attempt++ {
			if attempt > 0 {
				d.retries(s.Name()).Inc()
				if d.Backoff > 0 {
					time.Sleep(d.Backoff)
				}
			}
			if err = s.Deliver(ev); err == nil {
				break
			}
		}
		if err != nil {
			d.failed(s.Name()).Inc()
			if d.Log != nil {
				fmt.Fprintf(d.Log, "daemon: alert delivery to %s failed after %d attempts: %v\n",
					s.Name(), d.Retries+1, err)
			}
			continue
		}
		d.ok(s.Name()).Inc()
	}
}
