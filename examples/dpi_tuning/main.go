// DPI tuning: reproduce the paper's §4.1.1 offset-limit experiment.
//
// Candidate extraction shifts the scan cursor from byte offset 0 up to
// a limit k. A small k misses messages hidden deep behind proprietary
// headers; a large k costs CPU on every fully proprietary datagram.
// The paper found k=200 recovers the same validated message set as a
// full-payload scan. This example sweeps k over one representative
// trace per application and prints recall and runtime.
package main

import (
	"fmt"
	"log"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

func main() {
	ks := []int{8, 16, 32, 64, 128, 200, 400, 1500}

	for _, app := range rtcc.Apps {
		cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
			App: app, Network: rtcc.WiFiRelay, Seed: 3,
			Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
			CallDuration: 10 * time.Second, PrePost: 2 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		streams := streamPayloads(cap)

		// Reference: full-payload extraction.
		ref := countMessages(streams, 1500)

		fmt.Printf("%s (%d datagrams, reference %d messages):\n", app, datagramCount(streams), ref)
		for _, k := range ks {
			start := time.Now()
			got := countMessages(streams, k)
			elapsed := time.Since(start)
			marker := ""
			if got == ref {
				marker = "  <- full recall"
			}
			fmt.Printf("  k=%-5d %6d messages (%.1f%% recall) in %8v%s\n",
				k, got, 100*float64(got)/float64(max(1, ref)), elapsed.Round(100*time.Microsecond), marker)
		}
		fmt.Println()
	}
	fmt.Println("The paper's k=200 achieves full recall on every application at a")
	fmt.Println("fraction of the full-scan cost on proprietary-heavy traffic (Zoom).")
}

func streamPayloads(cap *rtcc.Capture) [][][]byte {
	table := flow.NewTable()
	for _, f := range cap.Frames() {
		pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
		if err != nil {
			continue
		}
		table.Add(f.Timestamp, pkt)
	}
	var out [][][]byte
	for _, s := range table.Streams() {
		if s.Key.Proto != layers.IPProtocolUDP {
			continue
		}
		payloads := make([][]byte, len(s.Packets))
		for i, p := range s.Packets {
			payloads[i] = p.Payload
		}
		out = append(out, payloads)
	}
	return out
}

func datagramCount(streams [][][]byte) int {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	return n
}

func countMessages(streams [][][]byte, k int) int {
	engine := &dpi.Engine{MaxOffset: k}
	n := 0
	for _, payloads := range streams {
		for _, r := range engine.InspectStream(payloads) {
			n += len(r.Messages)
		}
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
