package appsim

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

var testStart = time.Unix(1700000000, 0).UTC()

func genCall(t *testing.T, app App, n Network, seed uint64) *Call {
	t.Helper()
	call, err := Generate(CallConfig{
		App: app, Network: n, Seed: seed,
		Start: testStart, Duration: 6 * time.Second, MediaRate: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(call.Events) == 0 {
		t.Fatal("no events generated")
	}
	return call
}

// inspectAll groups events into streams by unordered endpoint pair and
// runs the stream-validated DPI over each.
func inspectAll(call *Call) []dpi.Result {
	engine := dpi.NewEngine()
	streams := make(map[string][][]byte)
	var order []string
	for _, ev := range call.Events {
		a, b := ev.Src.String(), ev.Dst.String()
		if b < a {
			a, b = b, a
		}
		key := a + "|" + b
		if _, ok := streams[key]; !ok {
			order = append(order, key)
		}
		streams[key] = append(streams[key], ev.Payload)
	}
	var out []dpi.Result
	for _, key := range order {
		out = append(out, engine.InspectStream(streams[key])...)
	}
	return out
}

func classCounts(results []dpi.Result) map[dpi.Class]int {
	m := make(map[dpi.Class]int)
	for _, r := range results {
		m[r.Class]++
	}
	return m
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(CallConfig{App: Zoom, Start: testStart}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Generate(CallConfig{App: Zoom, Duration: time.Second}); err == nil {
		t.Error("zero start accepted")
	}
	if _, err := Generate(CallConfig{App: App("Skype"), Start: testStart, Duration: time.Second}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, app := range Apps {
		c1 := genCall(t, app, WiFiP2P, 7)
		c2 := genCall(t, app, WiFiP2P, 7)
		if len(c1.Events) != len(c2.Events) {
			t.Fatalf("%s: event counts differ: %d vs %d", app, len(c1.Events), len(c2.Events))
		}
		for i := range c1.Events {
			if !c1.Events[i].At.Equal(c2.Events[i].At) || !bytes.Equal(c1.Events[i].Payload, c2.Events[i].Payload) {
				t.Fatalf("%s: event %d differs", app, i)
			}
		}
		c3 := genCall(t, app, WiFiP2P, 8)
		same := len(c1.Events) == len(c3.Events)
		if same {
			identical := true
			for i := range c1.Events {
				if !bytes.Equal(c1.Events[i].Payload, c3.Events[i].Payload) {
					identical = false
					break
				}
			}
			if identical {
				t.Errorf("%s: different seeds produced identical captures", app)
			}
		}
	}
}

func TestEventsSorted(t *testing.T) {
	for _, app := range Apps {
		call := genCall(t, app, Cellular, 3)
		for i := 1; i < len(call.Events); i++ {
			if call.Events[i].At.Before(call.Events[i-1].At) {
				t.Fatalf("%s: events not sorted at %d", app, i)
			}
		}
	}
}

func TestModeDecisions(t *testing.T) {
	cases := []struct {
		app  App
		net  Network
		want Mode
	}{
		{Zoom, WiFiP2P, ModeP2P},
		{Zoom, WiFiRelay, ModeRelay},
		{Zoom, Cellular, ModeRelay},
		{Discord, WiFiP2P, ModeRelay}, // Discord never does P2P
		{Discord, Cellular, ModeRelay},
		{FaceTime, Cellular, ModeP2P},
		{FaceTime, WiFiRelay, ModeRelay},
		{WhatsApp, Cellular, ModeRelayThenP2P},
		{Messenger, Cellular, ModeRelayThenP2P},
		{GoogleMeet, Cellular, ModeRelayThenP2P},
		{GoogleMeet, WiFiP2P, ModeP2P},
	}
	for _, tc := range cases {
		call := genCall(t, tc.app, tc.net, 1)
		if call.Mode != tc.want {
			t.Errorf("%s on %s: mode = %v, want %v", tc.app, tc.net, call.Mode, tc.want)
		}
	}
}

func TestZoomProprietaryHeaders(t *testing.T) {
	call := genCall(t, Zoom, WiFiRelay, 11)
	results := inspectAll(call)
	counts := classCounts(results)
	if counts[dpi.ClassStandard] != 0 {
		t.Errorf("Zoom relay: %d standard datagrams (all media must sit behind proprietary headers)", counts[dpi.ClassStandard])
	}
	if counts[dpi.ClassProprietaryHeader] == 0 || counts[dpi.ClassFullyProprietary] == 0 {
		t.Errorf("Zoom classes = %v", counts)
	}
	// Fully proprietary ≈ 20%.
	frac := float64(counts[dpi.ClassFullyProprietary]) / float64(len(results))
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("Zoom fully-proprietary fraction = %.3f, want ≈0.20", frac)
	}
}

func TestZoomFillerMessages(t *testing.T) {
	call := genCall(t, Zoom, WiFiRelay, 12)
	filler := 0
	for _, ev := range call.Events {
		if len(ev.Payload) == 1000 && (ev.Payload[0] == 0x01 || ev.Payload[0] == 0x02) {
			uniform := true
			for _, b := range ev.Payload {
				if b != ev.Payload[0] {
					uniform = false
					break
				}
			}
			if uniform {
				filler++
			}
		}
	}
	if filler == 0 {
		t.Fatal("no filler messages")
	}
}

func TestZoomFixedSSRCsAcrossCalls(t *testing.T) {
	ssrcsOf := func(call *Call) map[uint32]bool {
		out := make(map[uint32]bool)
		for _, r := range inspectAll(call) {
			for _, m := range r.Messages {
				if m.Protocol == dpi.ProtoRTP {
					out[m.RTP.SSRC] = true
				}
			}
		}
		return out
	}
	c1 := ssrcsOf(genCall(t, Zoom, Cellular, 21))
	c2 := ssrcsOf(genCall(t, Zoom, Cellular, 99))
	if len(c1) != 4 {
		t.Fatalf("cellular SSRC set = %v, want 4", c1)
	}
	for s := range c1 {
		if !c2[s] {
			t.Errorf("SSRC %#x not reused across calls", s)
		}
	}
	want := zoomSSRCs(Cellular)
	for _, s := range want {
		if !c1[s] {
			t.Errorf("expected cellular SSRC %#x missing", s)
		}
	}
}

func TestZoomDoubleRTPDatagrams(t *testing.T) {
	call := genCall(t, Zoom, WiFiRelay, 13)
	double := 0
	for _, r := range inspectAll(call) {
		rtpCount := 0
		for _, m := range r.Messages {
			if m.Protocol == dpi.ProtoRTP {
				rtpCount++
			}
		}
		if rtpCount == 2 {
			double++
		}
	}
	if double == 0 {
		t.Error("no double-RTP datagrams found")
	}
}

func TestZoomSTUNOnlyInWiFiP2P(t *testing.T) {
	hasSTUN := func(call *Call) bool {
		for _, r := range inspectAll(call) {
			for _, m := range r.Messages {
				if m.Protocol == dpi.ProtoSTUN {
					return true
				}
			}
		}
		return false
	}
	if !hasSTUN(genCall(t, Zoom, WiFiP2P, 14)) {
		t.Error("no STUN in Wi-Fi P2P Zoom call")
	}
	if hasSTUN(genCall(t, Zoom, WiFiRelay, 14)) {
		t.Error("STUN present in relay Zoom call")
	}
	if hasSTUN(genCall(t, Zoom, Cellular, 14)) {
		t.Error("STUN present in cellular Zoom call")
	}
}

func TestFaceTimeRelayHeaders(t *testing.T) {
	call := genCall(t, FaceTime, WiFiRelay, 31)
	prop := 0
	for _, ev := range call.Events {
		if len(ev.Payload) >= 2 && ev.Payload[0] == 0x60 && ev.Payload[1] == 0x00 {
			prop++
		}
	}
	frac := float64(prop) / float64(len(call.Events))
	if frac < 0.6 || frac > 0.98 {
		t.Errorf("FaceTime relay 0x6000 fraction = %.3f (%d/%d), want ≈0.89", frac, prop, len(call.Events))
	}
	// And the DPI must classify them as proprietary headers over RTP.
	results := inspectAll(call)
	propHdr := classCounts(results)[dpi.ClassProprietaryHeader]
	if propHdr < prop/2 {
		t.Errorf("only %d of %d 0x6000 datagrams classified proprietary-header", propHdr, prop)
	}
}

func TestFaceTimeCellularKeepalives(t *testing.T) {
	call := genCall(t, FaceTime, Cellular, 32)
	ka := 0
	for _, ev := range call.Events {
		if len(ev.Payload) == 36 && bytes.HasPrefix(ev.Payload, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE}) {
			ka++
		}
	}
	if ka < 20 {
		t.Errorf("cellular keepalives = %d, want ≥20 (20 pkt/s)", ka)
	}
	wifi := genCall(t, FaceTime, WiFiP2P, 32)
	kaW := 0
	for _, ev := range wifi.Events {
		if len(ev.Payload) == 36 && bytes.HasPrefix(ev.Payload, []byte{0xDE, 0xAD}) {
			kaW++
		}
	}
	if kaW > 3 {
		t.Errorf("Wi-Fi keepalives = %d, want ≈1", kaW)
	}
}

func TestFaceTimeRTPAllHaveUndefinedExtensions(t *testing.T) {
	call := genCall(t, FaceTime, WiFiP2P, 33)
	rtpN, badExt := 0, 0
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			if m.Protocol != dpi.ProtoRTP {
				continue
			}
			rtpN++
			if m.RTP.Extension != nil {
				switch m.RTP.Extension.Profile {
				case 0x8001, 0x8500, 0x8D00:
					badExt++
				}
			}
		}
	}
	if rtpN == 0 || badExt != rtpN {
		t.Errorf("RTP with undefined extensions = %d/%d, want all", badExt, rtpN)
	}
}

func TestFaceTimeQUICPresent(t *testing.T) {
	call := genCall(t, FaceTime, WiFiP2P, 34)
	kinds := make(map[string]bool)
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			if m.Protocol == dpi.ProtoQUIC {
				if m.QUIC.Long {
					kinds["long-"+m.QUIC.Type.String()] = true
				} else {
					kinds["short"] = true
				}
			}
		}
	}
	for _, want := range []string{"long-Initial", "long-Handshake", "long-0-RTT", "short"} {
		if !kinds[want] {
			t.Errorf("QUIC kind %s not observed (have %v)", want, kinds)
		}
	}
}

func TestWhatsAppBurstAndTeardown(t *testing.T) {
	call := genCall(t, WhatsApp, WiFiRelay, 41)
	var n801, n802, n800 int
	for _, ev := range call.Events {
		if !stun.LooksLikeHeader(ev.Payload) {
			continue
		}
		m, err := stun.Decode(ev.Payload)
		if err != nil || m.Classic {
			continue
		}
		switch m.Type {
		case stun.MessageType(0x0801):
			n801++
			if len(ev.Payload) != 500 {
				t.Errorf("0x0801 message is %d bytes, want 500", len(ev.Payload))
			}
			if a := m.Get(stun.AttrType(0x4004)); a == nil {
				t.Error("0x0801 missing attribute 0x4004")
			} else {
				for _, b := range a.Value {
					if b != 0 {
						t.Error("0x4004 not zero-filled")
						break
					}
				}
			}
		case stun.MessageType(0x0802):
			n802++
			if len(ev.Payload) != 40 {
				t.Errorf("0x0802 message is %d bytes, want 40", len(ev.Payload))
			}
		case stun.MessageType(0x0800):
			n800++
			if m.Get(stun.AttrType(0x4000)) == nil || m.Get(stun.AttrXORRelayedAddress) == nil {
				t.Error("0x0800 missing expected attributes")
			}
		}
	}
	if n801 != 16 || n802 != 16 {
		t.Errorf("burst pairs = %d/%d, want 16/16", n801, n802)
	}
	if n800 != 4 {
		t.Errorf("teardown 0x0800 count = %d, want 4", n800)
	}
}

func TestMessengerTeardownCount(t *testing.T) {
	call := genCall(t, Messenger, WiFiRelay, 42)
	n800 := 0
	for _, ev := range call.Events {
		if stun.LooksLikeHeader(ev.Payload) {
			if m, err := stun.Decode(ev.Payload); err == nil && m.Type == stun.MessageType(0x0800) {
				n800++
			}
		}
	}
	if n800 != 6 {
		t.Errorf("Messenger 0x0800 count = %d, want 6", n800)
	}
}

func TestMessengerTURNLifecycleTypes(t *testing.T) {
	call := genCall(t, Messenger, WiFiRelay, 43)
	types := make(map[stun.MessageType]bool)
	sawChannelData := false
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			switch m.Protocol {
			case dpi.ProtoSTUN:
				types[m.STUN.Type] = true
			case dpi.ProtoChannelData:
				sawChannelData = true
			}
		}
	}
	want := []stun.MessageType{
		0x0001, 0x0003, 0x0004, 0x0008, 0x0009, 0x0016, 0x0017,
		0x0101, 0x0103, 0x0104, 0x0108, 0x0109, 0x0113, 0x0118,
		0x0800, 0x0801, 0x0802,
	}
	for _, w := range want {
		if !types[w] {
			t.Errorf("Messenger type %#04x not observed", uint16(w))
		}
	}
	if !sawChannelData {
		t.Error("Messenger ChannelData not observed")
	}
}

func TestDiscordNoSTUNAndTrailers(t *testing.T) {
	for _, n := range Networks {
		call := genCall(t, Discord, n, 51)
		rtcpN, trailered := 0, 0
		zeroSSRC := 0
		for _, r := range inspectAll(call) {
			for _, m := range r.Messages {
				switch m.Protocol {
				case dpi.ProtoSTUN, dpi.ProtoChannelData:
					t.Fatalf("Discord on %s uses STUN", n)
				case dpi.ProtoRTCP:
					rtcpN++
					if len(m.RTCPTrailing) == 3 {
						trailered++
						dir := m.RTCPTrailing[2]
						if dir != 0x00 && dir != 0x80 {
							t.Errorf("direction byte = %#02x", dir)
						}
					}
					for _, p := range m.RTCP {
						if p.Header.Type == 205 {
							if ssrc, ok := p.SenderSSRC(); ok && ssrc == 0 {
								zeroSSRC++
							}
						}
					}
				}
			}
		}
		if rtcpN == 0 || trailered != rtcpN {
			t.Errorf("%s: trailered RTCP = %d/%d, want all", n, trailered, rtcpN)
		}
		if n == WiFiP2P && zeroSSRC == 0 {
			t.Error("no SSRC=0 feedback messages")
		}
	}
}

func TestMeetChannelDataInRelay(t *testing.T) {
	call := genCall(t, GoogleMeet, WiFiRelay, 61)
	cd := 0
	for _, r := range inspectAll(call) {
		for _, m := range r.Messages {
			if m.Protocol == dpi.ProtoChannelData {
				cd++
			}
		}
	}
	if cd < 10 {
		t.Errorf("Meet relay ChannelData = %d, want many", cd)
	}
	p2p := genCall(t, GoogleMeet, WiFiP2P, 61)
	cdP := 0
	for _, r := range inspectAll(p2p) {
		for _, m := range r.Messages {
			if m.Protocol == dpi.ProtoChannelData {
				cdP++
			}
		}
	}
	if cdP != 0 {
		t.Errorf("Meet P2P ChannelData = %d, want 0", cdP)
	}
}

func TestMeetSRTCPTrailers(t *testing.T) {
	trailerLens := func(call *Call) map[int]int {
		out := make(map[int]int)
		for _, r := range inspectAll(call) {
			for _, m := range r.Messages {
				if m.Protocol == dpi.ProtoRTCP {
					out[len(m.RTCPTrailing)]++
				}
			}
		}
		return out
	}
	relay := trailerLens(genCall(t, GoogleMeet, WiFiRelay, 62))
	if relay[4] == 0 {
		t.Errorf("Meet relay Wi-Fi: no 4-byte (tagless) SRTCP trailers: %v", relay)
	}
	if relay[14] != 0 {
		t.Errorf("Meet relay Wi-Fi: unexpected full trailers: %v", relay)
	}
	p2p := trailerLens(genCall(t, GoogleMeet, WiFiP2P, 62))
	if p2p[14] == 0 || p2p[4] != 0 {
		t.Errorf("Meet P2P: trailer lengths = %v, want all 14", p2p)
	}
}

func TestBackgroundTrafficClasses(t *testing.T) {
	cfg := BackgroundConfig{
		Seed:      1,
		PreStart:  testStart,
		CallStart: testStart.Add(60 * time.Second),
		CallEnd:   testStart.Add(120 * time.Second),
		PostEnd:   testStart.Add(180 * time.Second),
		Device:    mustAddr("192.168.1.10"),
		LANPeer:   mustAddr("192.168.1.30"),
	}
	events := GenerateBackground(cfg)
	if len(events) == 0 {
		t.Fatal("no background events")
	}
	var dns, tcp, sni, linkLocal int
	for _, ev := range events {
		if ev.Dst.Port() == 53 {
			dns++
		}
		if ev.Proto == 6 {
			tcp++
		}
		if len(ev.Payload) > 0 && ev.Payload[0] == 22 {
			sni++
		}
		if ev.Src.Addr().Is6() {
			linkLocal++
		}
	}
	if dns == 0 || tcp == 0 || sni == 0 || linkLocal == 0 {
		t.Errorf("classes: dns=%d tcp=%d sni=%d ll=%d", dns, tcp, sni, linkLocal)
	}
}

func TestStringers(t *testing.T) {
	if WiFiP2P.String() != "Wi-Fi P2P" || WiFiRelay.String() != "Wi-Fi relay" || Cellular.String() != "cellular" {
		t.Error("network names")
	}
	if ModeP2P.String() != "P2P" || ModeRelay.String() != "relay" || ModeRelayThenP2P.String() != "relay→P2P" {
		t.Error("mode names")
	}
}
