package core

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// FuzzFeedBatch is the differential fuzzer for the pooled hot path:
// whatever frame bytes and batch sizing the fuzzer invents, the pooled
// FeedBatch analyzer (poison-on-release armed, frames recycled through
// reused reader buffers) must produce exactly the analysis the simple
// unpooled per-packet Feed path produces. Divergence means either a
// batching bug or a pooled buffer read after release.
//
// Frames are encoded as a flat byte stream of [2-byte big-endian
// length][frame bytes] records so the fuzzer can grow, shrink, and
// splice individual frames.

// encodeFuzzFrames packs frames into the fuzz wire format.
func encodeFuzzFrames(frames ...[]byte) []byte {
	var out []byte
	for _, fr := range frames {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(fr)))
		out = append(out, l[:]...)
		out = append(out, fr...)
	}
	return out
}

// decodeFuzzFrames unpacks at most max frames, capping each at 512
// bytes so the fuzzer cannot stall the harness with giant inputs.
func decodeFuzzFrames(data []byte, max int) [][]byte {
	var out [][]byte
	for len(data) >= 2 && len(out) < max {
		n := int(binary.BigEndian.Uint16(data)) % 512
		data = data[2:]
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

func FuzzFeedBatch(f *testing.F) {
	// Seeds: two interleaved synthetic RTP streams, a realistic app
	// capture prefix, and degenerate frames (empty, truncated header).
	var synth [][]byte
	for i := 0; i < 8; i++ {
		synth = append(synth,
			hotRTPFrame(hotSrc, hotDst, 50000, 4444, 0xbeef, uint16(i)),
			hotRTPFrame(hotSrc, hotAlt, 50002, 4446, 0xcafe, uint16(i)))
	}
	f.Add(uint8(4), encodeFuzzFrames(synth...))
	capt := streamingCapture(f, appsim.GoogleMeet, appsim.WiFiRelay, 11)
	var real [][]byte
	for _, fr := range capt.Frames() {
		if real = append(real, fr.Data); len(real) == 48 {
			break
		}
	}
	f.Add(uint8(7), encodeFuzzFrames(real...))
	f.Add(uint8(1), encodeFuzzFrames(nil, []byte{0x45}, synth[0][:12], synth[1]))

	f.Fuzz(func(t *testing.T, batchSize uint8, data []byte) {
		frames := decodeFuzzFrames(data, 256)
		if len(frames) == 0 {
			return
		}
		start := time.Unix(1700000000, 0)
		end := start.Add(time.Hour)
		cfg := AnalyzerConfig{
			Label:     "fuzz",
			LinkType:  pcap.LinkTypeRaw,
			CallStart: start,
			CallEnd:   end,
			EvictIdle: 5 * time.Millisecond,
		}
		ts := func(i int) time.Time { return start.Add(time.Duration(i) * time.Millisecond) }

		// Reference: unpooled, one Feed per frame.
		ref, err := NewAnalyzer(cfg, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, fr := range frames {
			if err := ref.Feed(ts(i), fr); err != nil {
				t.Fatal(err)
			}
		}
		// An analysis-level error (e.g. nothing decodable) is a valid
		// outcome — the pooled path must then fail identically.
		want, wantErr := ref.Close()

		// Subject: pooled FeedBatch at the fuzzed batch size, every
		// frame copied through a reader buffer that the next batch
		// overwrites. Poison armed so a use-after-release diverges.
		defer bufpool.EnablePoison(bufpool.EnablePoison(true))
		pcfg := cfg
		pcfg.Pool = bufpool.Global()
		sub, err := NewAnalyzer(pcfg, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		bs := int(batchSize)%feedBatchSize + 1
		bufs := make([][]byte, bs)
		batch := make([]Datagram, 0, bs)
		for i, fr := range frames {
			slot := &bufs[len(batch)]
			*slot = append((*slot)[:0], fr...)
			batch = append(batch, Datagram{Timestamp: ts(i), Frame: *slot})
			if len(batch) == bs {
				if err := sub.FeedBatch(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if err := sub.FeedBatch(batch); err != nil {
			t.Fatal(err)
		}
		got, gotErr := sub.Close()

		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("pooled FeedBatch error %v, per-packet Feed error %v", gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pooled FeedBatch (batch=%d, %d frames) diverged from per-packet Feed", bs, len(frames))
		}
	})
}
