package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/cmdutil"
)

var update = flag.Bool("update", false, "rewrite the golden flag-surface file")

// TestFlagSurface pins the CLI flag surface: a renamed flag, changed
// default, or dropped flag fails here instead of breaking users. Run
// with -update after an intentional change.
func TestFlagSurface(t *testing.T) {
	fs, _, _, _, _, _, _, _ := newFlags()
	got := cmdutil.FlagSurface(fs)
	golden := filepath.Join("testdata", "flags.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("flag surface changed (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
