// Package appsim synthesizes protocol-accurate RTC traffic for the six
// applications the paper studies: Zoom, FaceTime, WhatsApp, Messenger,
// Discord, and Google Meet.
//
// The paper measures real applications on real phones; this package is
// the substitution substrate (see DESIGN.md): each emulator produces the
// application's wire behaviour — the standard protocol exchanges it
// shares with WebRTC, plus every documented deviation from §5.2/§5.3 of
// the paper, byte-for-byte as described: proprietary headers, undefined
// message and attribute types, filler bursts, fixed SSRC sets, trailer
// bytes, missing SRTCP auth tags, and so on. The analysis pipeline never
// sees generator internals; it must rediscover each behaviour from the
// bytes, exactly as the paper's DPI did.
//
// All randomness is drawn from the per-call seed, so a given CallConfig
// always produces the same capture.
package appsim

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/natsim"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// App identifies one of the six studied applications.
type App string

// The studied applications.
const (
	Zoom       App = "Zoom"
	FaceTime   App = "FaceTime"
	WhatsApp   App = "WhatsApp"
	Messenger  App = "Messenger"
	Discord    App = "Discord"
	GoogleMeet App = "Google Meet"
)

// Apps lists all applications in the paper's table order.
var Apps = []App{Zoom, FaceTime, WhatsApp, Messenger, Discord, GoogleMeet}

// Network is one of the three experiment configurations (§3.1.1).
type Network int

// Experiment network configurations.
const (
	// WiFiP2P is Wi-Fi with UDP hole punching permitted.
	WiFiP2P Network = iota
	// WiFiRelay is Wi-Fi with hole punching blocked at the router.
	WiFiRelay
	// Cellular leaves the transmission mode to the application.
	Cellular
)

func (n Network) String() string {
	switch n {
	case WiFiP2P:
		return "Wi-Fi P2P"
	case WiFiRelay:
		return "Wi-Fi relay"
	case Cellular:
		return "cellular"
	}
	return fmt.Sprintf("Network(%d)", int(n))
}

// Networks lists the three configurations.
var Networks = []Network{WiFiP2P, WiFiRelay, Cellular}

// Mode is the transmission mode a call ended up using.
type Mode int

// Transmission modes.
const (
	ModeP2P Mode = iota
	ModeRelay
	// ModeRelayThenP2P starts relayed and switches to P2P after ~30 s
	// (WhatsApp, Messenger, Google Meet on cellular).
	ModeRelayThenP2P
)

func (m Mode) String() string {
	switch m {
	case ModeP2P:
		return "P2P"
	case ModeRelay:
		return "relay"
	case ModeRelayThenP2P:
		return "relay→P2P"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// CallConfig parameterizes one synthetic 1-on-1 call.
type CallConfig struct {
	App     App
	Network Network
	// Seed drives all randomness for the call.
	Seed uint64
	// Start is the call-initiation time.
	Start time.Time
	// Duration is the call length (the paper used 5 minutes; tests use
	// seconds).
	Duration time.Duration
	// MediaRate is the RTP packet rate per media stream in packets per
	// second; 0 selects the default of 25.
	MediaRate int
	// DTLS emits a DTLS-SRTP key-establishment handshake (RFC 5764)
	// on the primary media 5-tuple before the media starts. Off by
	// default: the six studied apps were not observed doing
	// standards-form DTLS-SRTP, so the knob models a hypothetical
	// standards-compliant application.
	DTLS bool
	// Burst switches video senders from smooth pacing to frame-granular
	// bursting: each video frame's packets leave back-to-back at the
	// frame boundary (a few hundred microseconds apart) instead of being
	// spread across the frame interval, and per-frame sizes vary with
	// the encoder's bit-rate swings. Off by default so existing golden
	// captures are unchanged.
	Burst bool
	// BitrateVar is the encoder bit-rate variance as a fraction of the
	// nominal packet size when Burst is set: each frame scales its
	// packets by a factor drawn from [1-BitrateVar, 1+BitrateVar], with
	// a periodic keyframe boost on top. 0 selects the default of 0.25.
	BitrateVar float64
	// FrameRate is the video frame rate in frames per second when Burst
	// is set; 0 selects the default of 30.
	FrameRate int
}

func (c CallConfig) rate() int {
	if c.MediaRate <= 0 {
		return 25
	}
	return c.MediaRate
}

// Dgram is one packet as observed on the caller device's interface.
// The underlying type lives in internal/natsim so the network-
// impairment stage can transform traffic without importing this
// package (appsim already imports natsim for NAT behaviour).
type Dgram = natsim.Datagram

// Call is one generated call capture.
type Call struct {
	Config CallConfig
	Mode   Mode
	// Events are the datagrams in timestamp order.
	Events []Dgram
	// CallStart and CallEnd delimit the call window (between the
	// pre-call and post-call phases).
	CallStart, CallEnd time.Time
}

// env is the simulated network environment for one call.
type env struct {
	cfg CallConfig
	rng *ice.Rand
	// burst models frame-granular video emission; nil when Burst is off.
	burst *burster

	callerLocal netip.Addr // caller device address
	calleeAddr  netip.Addr // callee as seen by the caller (LAN or public)
	serverAddr  netip.Addr // the app's relay/SFU server
	stunAddr    netip.Addr // the app's STUN server

	relay *natsim.Relay
	mode  Mode

	events []Dgram
}

// Per-app public infrastructure addresses (documentation ranges).
var appServers = map[App]struct{ relay, stun string }{
	Zoom:       {"203.0.113.10", "203.0.113.11"},
	FaceTime:   {"203.0.113.20", "203.0.113.21"},
	WhatsApp:   {"203.0.113.30", "203.0.113.31"},
	Messenger:  {"203.0.113.40", "203.0.113.41"},
	Discord:    {"203.0.113.50", "203.0.113.51"},
	GoogleMeet: {"203.0.113.60", "203.0.113.61"},
}

// newEnv builds the environment and decides the transmission mode the
// way the paper observed it (§3.1.1): Wi-Fi mode follows the router's
// hole-punching policy via the NAT simulation; cellular is
// application-determined.
func newEnv(cfg CallConfig) *env {
	e := &env{cfg: cfg, rng: ice.NewRand(cfg.Seed)}
	if cfg.Burst {
		e.burst = newBurster(cfg)
	}
	srv := appServers[cfg.App]
	e.serverAddr = netip.MustParseAddr(srv.relay)
	e.stunAddr = netip.MustParseAddr(srv.stun)
	e.relay = natsim.NewRelay(e.serverAddr)

	switch cfg.Network {
	case WiFiP2P, WiFiRelay:
		// Both phones share the paper's OpenWRT router LAN.
		e.callerLocal = netip.MustParseAddr("192.168.1.10")
		e.calleeAddr = netip.MustParseAddr("192.168.1.20")
		routerNAT := natsim.NewNAT(netip.MustParseAddr("198.51.100.1"), natsim.EndpointIndependent, natsim.AddressDependent)
		routerNAT.BlockInboundUDP = cfg.Network == WiFiRelay
		a := &natsim.Client{Internal: netip.AddrPortFrom(e.callerLocal, 50000), NAT: routerNAT}
		b := &natsim.Client{Internal: netip.AddrPortFrom(e.calleeAddr, 50002), NAT: routerNAT}
		// Same-LAN peers first try host candidates; the router firewall
		// policy stands in for whether the direct path is usable, as in
		// the paper's setup.
		if natsim.HolePunch(a, b, netip.AddrPortFrom(e.stunAddr, 3478)) && cfg.Network == WiFiP2P {
			e.mode = ModeP2P
		} else {
			e.mode = ModeRelay
		}
	case Cellular:
		// Distinct carrier networks; the app decides (§3.1.1).
		e.callerLocal = netip.MustParseAddr("10.21.5.8")
		e.calleeAddr = netip.MustParseAddr("198.51.100.77") // peer's CGNAT mapping
		switch cfg.App {
		case Zoom, Discord:
			e.mode = ModeRelay
		case FaceTime:
			e.mode = ModeP2P
		default: // WhatsApp, Messenger, Google Meet
			e.mode = ModeRelayThenP2P
		}
	}
	// Apps that never do P2P override the Wi-Fi result.
	if cfg.App == Discord {
		e.mode = ModeRelay
	}
	return e
}

// peer returns the address media flows to in the given mode phase.
func (e *env) peer(relayPhase bool) netip.Addr {
	if relayPhase {
		return e.serverAddr
	}
	return e.calleeAddr
}

// push records a datagram.
func (e *env) push(at time.Time, src, dst netip.AddrPort, payload []byte) {
	e.events = append(e.events, Dgram{At: at, Src: src, Dst: dst, Proto: layers.IPProtocolUDP, Payload: payload})
}

// jitterMS returns a small deterministic jitter in [0, ms) milliseconds.
func (e *env) jitter(ms int) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(e.rng.IntN(ms*1000)) * time.Microsecond
}

// finish sorts events and assembles the Call.
func (e *env) finish() *Call {
	sort.SliceStable(e.events, func(i, j int) bool {
		return e.events[i].At.Before(e.events[j].At)
	})
	return &Call{
		Config:    e.cfg,
		Mode:      e.mode,
		Events:    e.events,
		CallStart: e.cfg.Start,
		CallEnd:   e.cfg.Start.Add(e.cfg.Duration),
	}
}

// mediaStream produces an application's RTP packets for one SSRC with
// SRTP-encrypted payloads and correct sequence/timestamp progression.
type mediaStream struct {
	ssrc    uint32
	pt      uint8
	seq     uint16
	ts      uint32
	tsStep  uint32
	srtpCtx *srtp.Context
	index   uint64
}

func newMediaStream(rng *ice.Rand, ssrc uint32, pt uint8, tsStep uint32) *mediaStream {
	ctx, err := srtp.NewContext(rng.Bytes(srtp.MasterKeyLen), rng.Bytes(srtp.MasterSaltLen))
	if err != nil {
		panic("appsim: srtp context: " + err.Error())
	}
	return &mediaStream{
		ssrc:    ssrc,
		pt:      pt,
		seq:     uint16(rng.Uint32()),
		ts:      rng.Uint32(),
		tsStep:  tsStep,
		srtpCtx: ctx,
	}
}

// next builds the next RTP packet with an encrypted payload of n bytes
// and the given optional extension. marker is set on request.
func (m *mediaStream) next(n int, ext *rtp.Extension, marker bool) *rtp.Packet {
	payload := make([]byte, n)
	m.srtpCtx.EncryptRTPPayload(payload, m.ssrc, m.index)
	m.index++
	p := &rtp.Packet{
		Marker:         marker,
		PayloadType:    m.pt,
		SequenceNumber: m.seq,
		Timestamp:      m.ts,
		SSRC:           m.ssrc,
		Payload:        payload,
		Extension:      ext,
	}
	m.seq++
	m.ts += m.tsStep
	return p
}

// ntpTime converts a wall-clock time to a 64-bit NTP timestamp.
func ntpTime(t time.Time) uint64 {
	const ntpEpochOffset = 2208988800 // seconds between 1900 and 1970
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) * (1 << 32) / 1e9
	return secs<<32 | frac
}

// Generate produces one synthetic call capture for the configuration.
func Generate(cfg CallConfig) (*Call, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("appsim: duration must be positive")
	}
	if cfg.Start.IsZero() {
		return nil, fmt.Errorf("appsim: start time must be set")
	}
	if _, known := appServers[cfg.App]; !known {
		return nil, fmt.Errorf("appsim: unknown app %q", cfg.App)
	}
	e := newEnv(cfg)
	switch cfg.App {
	case Zoom:
		generateZoom(e)
	case FaceTime:
		generateFaceTime(e)
	case WhatsApp:
		generateWhatsApp(e)
	case Messenger:
		generateMessenger(e)
	case Discord:
		generateDiscord(e)
	case GoogleMeet:
		generateMeet(e)
	default:
		return nil, fmt.Errorf("appsim: unknown app %q", cfg.App)
	}
	if cfg.DTLS {
		e.generateDTLSHandshake()
	}
	e.generateSignaling()
	return e.finish(), nil
}

// signalingDomains carries each app's RTC signaling SNI; these are
// call-related TCP flows that the filter pipeline must keep (they form
// the paper's "RTC Traffic TCP" column in Table 1).
var signalingDomains = map[App]string{
	Zoom:       "rtc.zoom.example",
	FaceTime:   "facetime.apple.example",
	WhatsApp:   "sig.whatsapp.example",
	Messenger:  "rtc.messenger.example",
	Discord:    "gateway.discord.example",
	GoogleMeet: "meet.google.example",
}

// generateSignaling emits a short TLS-over-TCP signaling and heartbeat
// flow scoped exactly to the call window.
func (e *env) generateSignaling() {
	cfg := e.cfg
	src := netip.AddrPortFrom(e.callerLocal, 50100)
	dst := netip.AddrPortFrom(e.serverAddr, 443)
	var random [32]byte
	copy(random[:], e.rng.Bytes(32))
	hello := tlsinspect.BuildClientHello(signalingDomains[cfg.App], random)
	at := cfg.Start.Add(10 * time.Millisecond)
	pushSeg := func(ts time.Time, fromCaller bool, flags uint8, payload []byte) {
		s, d := src, dst
		if !fromCaller {
			s, d = dst, src
		}
		e.events = append(e.events, Dgram{At: ts, Src: s, Dst: d, Proto: layers.IPProtocolTCP, Payload: payload, TCPFlags: flags})
	}
	pushSeg(at, true, layers.TCPSyn, nil)
	pushSeg(at.Add(12*time.Millisecond), false, layers.TCPSyn|layers.TCPAck, nil)
	pushSeg(at.Add(20*time.Millisecond), true, layers.TCPPsh|layers.TCPAck, hello)
	pushSeg(at.Add(45*time.Millisecond), false, layers.TCPPsh|layers.TCPAck, e.rng.Bytes(180))
	// Heartbeats through the call.
	hb := int(cfg.Duration / (2 * time.Second))
	if hb < 2 {
		hb = 2
	}
	for i := 0; i < hb; i++ {
		ts := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(hb+1))
		pushSeg(ts, true, layers.TCPPsh|layers.TCPAck, e.rng.Bytes(24))
		pushSeg(ts.Add(20*time.Millisecond), false, layers.TCPAck, nil)
	}
	pushSeg(cfg.Start.Add(cfg.Duration).Add(-30*time.Millisecond), true, layers.TCPFin|layers.TCPAck, nil)
}
