package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/ingest"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/qoe"
	"github.com/rtc-compliance/rtcc/internal/trace"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

// Runner executes one validated Config: it owns the sink plumbing
// (trace file, explain buffer, verdict stream) and routes captures
// through the serial or sharded engine so front-ends stop wiring those
// pieces by hand. A Runner is good for any number of captures (the
// manifest path analyzes a directory through one Runner); Close
// finishes the sinks.
type Runner struct {
	cfg Config
	reg *metrics.Registry

	traceFile  *os.File
	traceJSONL *obs.JSONLWriter
	explain    *obs.Buffer
	tracer     obs.Tracer

	verdictFile *os.File
	verdictW    *bufio.Writer
}

// explainBufferCap selects obs.DefaultBufferCap, matching the
// historical rtccheck explain buffer.
const explainBufferCap = 0

// NewRunner validates cfg and opens its sinks. The registry may be nil
// (metrics off); serving it over HTTP stays with the caller, because
// one process may share a server across runners (or, in the daemon,
// across epochs).
func NewRunner(cfg Config, reg *metrics.Registry) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, reg: reg}
	if cfg.Sinks.TraceOut != "" {
		f, err := os.Create(cfg.Sinks.TraceOut)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		r.traceFile = f
		r.traceJSONL = obs.NewJSONLWriter(f)
	}
	if cfg.Sinks.Explain != "" {
		r.explain = obs.NewBuffer(explainBufferCap)
	}
	// Build the Tee from interface values that are nil when the sink is
	// off — a typed-nil *JSONLWriter would survive Tee's nil filter.
	var sinks []obs.Tracer
	if r.traceJSONL != nil {
		sinks = append(sinks, r.traceJSONL)
	}
	if r.explain != nil {
		sinks = append(sinks, r.explain)
	}
	r.tracer = obs.Tee(sinks...)
	if cfg.Sinks.Verdicts != "" {
		f, err := os.Create(cfg.Sinks.Verdicts)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		r.verdictFile = f
		r.verdictW = bufio.NewWriter(f)
	}
	return r, nil
}

// Config returns the validated configuration.
func (r *Runner) Config() Config { return r.cfg }

// Registry returns the metrics registry (possibly nil).
func (r *Runner) Registry() *metrics.Registry { return r.reg }

// Tracer returns the composed trace sink (nil when untraced).
func (r *Runner) Tracer() obs.Tracer { return r.tracer }

// ExplainEvents returns the buffered explain trace.
func (r *Runner) ExplainEvents() []obs.Event {
	if r.explain == nil {
		return nil
	}
	return r.explain.Events()
}

// Options assembles the engine options the Config describes.
func (r *Runner) Options() core.Options {
	opts := core.Options{
		MaxOffset:    r.cfg.Analysis.MaxOffset,
		Workers:      r.cfg.Exec.Workers,
		SkipFindings: !r.cfg.Analysis.FindingsOn(),
		KeepPayloads: r.cfg.Analysis.KeepPayloads,
		EvictIdle:    r.cfg.Exec.EvictIdle.Std(),
		Metrics:      r.reg,
		Tracer:       r.tracer,
	}
	if r.cfg.Analysis.QoE {
		opts.QoE = &qoe.Config{}
	}
	return opts
}

// Sharded reports whether the sharded ingest tier is selected.
func (r *Runner) Sharded() bool { return r.cfg.Exec.Shards > 1 }

// ShardConfig assembles the ingest-tier configuration.
func (r *Runner) ShardConfig() ingest.Config {
	return ingest.Config{
		Shards:     r.cfg.Exec.Shards,
		QueueDepth: r.cfg.Exec.QueueDepth,
		BatchSize:  r.cfg.Exec.BatchSize,
		Policy:     r.policy(),
	}
}

// policy resolves Exec.Policy (validated earlier).
func (e Exec) policy() (ingest.Policy, error) {
	switch e.Policy {
	case "", "block":
		return ingest.Block, nil
	case "drop":
		return ingest.Drop, nil
	}
	return ingest.Block, fmt.Errorf("pipeline: unknown exec.policy %q (block or drop)", e.Policy)
}

func (r *Runner) policy() ingest.Policy {
	p, _ := r.cfg.Exec.policy()
	return p
}

// AnalyzeReader routes one pcap/pcapng stream through the engine the
// Config selects: the sharded ingest tier when exec.shards > 1, the
// streaming serial path otherwise. Results are byte-identical either
// way (the shard merge is the invariant the ingest tests pin).
func (r *Runner) AnalyzeReader(rd io.Reader, label string, callStart, callEnd time.Time) (*core.CaptureAnalysis, error) {
	if r.Sharded() {
		return ingest.AnalyzePCAP(rd, label, callStart, callEnd, r.Options(), r.ShardConfig())
	}
	return core.AnalyzePCAP(rd, label, callStart, callEnd, r.Options())
}

// AnalyzeInput routes one in-memory capture through the selected
// engine.
func (r *Runner) AnalyzeInput(in core.CaptureInput) (*core.CaptureAnalysis, error) {
	if r.Sharded() {
		return ingest.AnalyzeCapture(in, r.Options(), r.ShardConfig())
	}
	return core.AnalyzeCapture(in, r.Options())
}

// RunOnce executes the configured one-shot source (pcap or appsim) and
// returns its analysis. Live sources run through LiveSession/Daemon
// instead.
func (r *Runner) RunOnce() (*core.CaptureAnalysis, error) {
	switch r.cfg.Source.Kind {
	case SourcePCAP:
		f, err := os.Open(r.cfg.Source.Path)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		defer f.Close()
		start, end, err := r.cfg.Source.Window()
		if err != nil {
			return nil, err
		}
		return r.AnalyzeReader(f, r.cfg.Source.EffectiveLabel(), start, end)
	case SourceAppsim:
		in, err := r.GenerateInput()
		if err != nil {
			return nil, err
		}
		return r.AnalyzeInput(in)
	}
	return nil, fmt.Errorf("pipeline: source.kind %q is not a one-shot source", r.cfg.Source.Kind)
}

// GenerateInput builds the appsim source's synthetic capture.
func (r *Runner) GenerateInput() (core.CaptureInput, error) {
	app, err := ParseApp(r.cfg.Source.App)
	if err != nil {
		return core.CaptureInput{}, fmt.Errorf("pipeline: source.app: %w", err)
	}
	network, err := ParseNetwork(r.cfg.Source.Network)
	if err != nil {
		return core.CaptureInput{}, fmt.Errorf("pipeline: source.network: %w", err)
	}
	dur := r.cfg.Source.CallDuration.Std()
	if dur <= 0 {
		dur = 30 * time.Second
	}
	cap, err := trace.Generate(trace.CaptureConfig{
		App:          app,
		Network:      network,
		Seed:         r.cfg.Source.Seed,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: dur,
		MediaRate:    r.cfg.Source.Rate,
	})
	if err != nil {
		return core.CaptureInput{}, err
	}
	in := cap.Input()
	if r.cfg.Source.Label != "" {
		in.Label = r.cfg.Source.Label
	}
	return in, nil
}

// Accounting is the ingest conservation ledger for one session: every
// datagram fed is either analyzed or (under the drop policy) counted
// as shed — Fed == Analyzed + Dropped always holds after a Flush or
// Close, and the daemon carries the sums across config reloads.
type Accounting struct {
	Fed      uint64
	Analyzed uint64
	Dropped  uint64
	Shards   int
}

// Add folds another session's ledger in (daemon epoch accumulation).
func (a *Accounting) Add(b Accounting) {
	a.Fed += b.Fed
	a.Analyzed += b.Analyzed
	a.Dropped += b.Dropped
	if b.Shards > a.Shards {
		a.Shards = b.Shards
	}
}

// Point summarizes one finished analysis as a trend.Point — the record
// both the JSONL verdict stream and the daemon's /compliance/trend
// series use.
func Point(ts time.Time, reason string, ca *core.CaptureAnalysis, acct Accounting) trend.Point {
	p := trend.Point{
		Time:     ts,
		Reason:   reason,
		Fed:      acct.Fed,
		Analyzed: acct.Analyzed,
		Dropped:  acct.Dropped,
	}
	if ca == nil || ca.Stats == nil {
		return p
	}
	p.App = ca.Stats.App
	for _, ps := range ca.Stats.ByProtocol {
		p.Messages += ps.Messages
		p.Compliant += ps.Compliant
	}
	if ratio, ok := ca.Stats.VolumeCompliance(); ok {
		v := ratio
		p.VolumeCompliance = &v
	}
	p.TypesCompliant, p.TypesTotal = ca.Stats.TypeCompliance(dpi.ProtoUnknown)
	for _, n := range ca.Stats.Datagrams {
		p.Datagrams += n
	}
	if ca.QoE != nil {
		p.QoE = ca.QoE.Summary
	}
	return p
}

// WriteVerdict appends one analysis summary to the JSONL verdict
// stream; a Runner without the sink is a no-op.
func (r *Runner) WriteVerdict(ts time.Time, reason string, ca *core.CaptureAnalysis, acct Accounting) error {
	if r.verdictW == nil {
		return nil
	}
	buf, err := json.Marshal(Point(ts, reason, ca, acct))
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if _, err := r.verdictW.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	return nil
}

// FlushTrace finishes the trace-out export, reporting the path written
// through note (nil to stay quiet). Idempotent.
func (r *Runner) FlushTrace(note io.Writer) error {
	if r.traceJSONL == nil {
		return nil
	}
	if err := r.traceJSONL.Flush(); err != nil {
		r.traceFile.Close()
		r.traceFile, r.traceJSONL = nil, nil
		return err
	}
	if err := r.traceFile.Close(); err != nil {
		r.traceFile, r.traceJSONL = nil, nil
		return err
	}
	if note != nil {
		fmt.Fprintf(note, "trace: wrote %s\n", r.cfg.Sinks.TraceOut)
	}
	r.traceFile, r.traceJSONL = nil, nil
	return nil
}

// Close finishes every sink. Safe to call more than once.
func (r *Runner) Close() error {
	err := r.FlushTrace(nil)
	if r.verdictW != nil {
		if ferr := r.verdictW.Flush(); err == nil {
			err = ferr
		}
		if cerr := r.verdictFile.Close(); err == nil {
			err = cerr
		}
		r.verdictFile, r.verdictW = nil, nil
	}
	return err
}

// LiveSession is one streaming analysis over a live frame source: the
// analyzer (serial or sharded, per the Config), fed through the
// batcher that amortizes per-feed bookkeeping. The daemon runs one
// LiveSession per epoch; one-shot collection runs exactly one.
type LiveSession struct {
	sink      core.FrameSink
	sharded   *ingest.ShardedAnalyzer
	batch     []core.Datagram
	fedSerial uint64
}

// liveBatchCap matches the historical rtclive feed batch size.
const liveBatchCap = 64

// NewLiveSession builds the analyzer for one live session. The live
// path always analyzes raw-IP frames with the call window defaulted to
// the received span; the sharded tier uses the drop policy unless the
// Config names one, because a stalled live producer loses mirror
// packets upstream invisibly while Drop counts every shed datagram.
func (r *Runner) NewLiveSession() (*LiveSession, error) {
	acfg := core.AnalyzerConfig{
		Label:               r.cfg.Source.EffectiveLabel(),
		LinkType:            pcap.LinkTypeRaw,
		DefaultWindowToSpan: true,
		FramesStable:        true, // each decapsulated frame is freshly allocated
		EvictIdle:           r.cfg.Exec.EvictIdle.Std(),
	}
	opts := r.Options()
	opts.EvictIdle = 0 // live eviction rides AnalyzerConfig, not the pcap reader knob
	s := &LiveSession{batch: make([]core.Datagram, 0, liveBatchCap)}
	if r.Sharded() {
		scfg := r.ShardConfig()
		if r.cfg.Exec.Policy == "" {
			scfg.Policy = ingest.Drop
		}
		sh, err := ingest.New(acfg, opts, scfg)
		if err != nil {
			return nil, err
		}
		s.sharded, s.sink = sh, sh
		return s, nil
	}
	a, err := core.NewAnalyzer(acfg, opts)
	if err != nil {
		return nil, err
	}
	s.sink = a
	return s, nil
}

// Push stages one frame, feeding the analyzer in batches.
func (s *LiveSession) Push(pkt pcap.Packet) error {
	s.fedSerial++
	s.batch = append(s.batch, core.Datagram{Timestamp: pkt.Timestamp, Frame: pkt.Data})
	if len(s.batch) == cap(s.batch) {
		return s.flushBatch()
	}
	return nil
}

func (s *LiveSession) flushBatch() error {
	if len(s.batch) == 0 {
		return nil
	}
	err := s.sink.FeedBatch(s.batch)
	s.batch = s.batch[:0]
	return err
}

// Flush drains the staged batch and, on the sharded tier, waits for
// the shard queues to empty so Accounting is conservation-complete.
func (s *LiveSession) Flush() error {
	if err := s.flushBatch(); err != nil {
		return err
	}
	if s.sharded != nil {
		return s.sharded.Flush()
	}
	return nil
}

// Accounting reports the session ledger. On the serial path every fed
// datagram is analyzed inline, so Fed == Analyzed trivially; call
// after Flush (or Close) for exact sharded numbers.
func (s *LiveSession) Accounting() Accounting {
	if s.sharded == nil {
		return Accounting{Fed: s.fedSerial, Analyzed: s.fedSerial, Shards: 1}
	}
	st := s.sharded.Stats()
	return Accounting{Fed: st.Fed, Analyzed: st.Analyzed, Dropped: st.Dropped, Shards: len(st.Shards)}
}

// Close drains and finalizes the session.
func (s *LiveSession) Close() (*core.CaptureAnalysis, error) {
	if err := s.flushBatch(); err != nil {
		return nil, err
	}
	return s.sink.Close()
}
