package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Query selects the decisions to explain: app/stream/msgtype, each an
// optional case-insensitive substring. The empty string matches
// everything at that level.
type Query struct {
	App     string
	Stream  string
	MsgType string
}

// ParseQuery parses the "<app>/<stream>/<msgtype>" form used by
// rtccheck -explain and rtctrace -explain. Trailing components may be
// omitted ("Zoom", "Zoom/udp 10.0", "Zoom//0x0101" are all valid).
func ParseQuery(s string) Query {
	parts := strings.SplitN(s, "/", 3)
	var q Query
	q.App = strings.TrimSpace(parts[0])
	if len(parts) > 1 {
		q.Stream = strings.TrimSpace(parts[1])
	}
	if len(parts) > 2 {
		q.MsgType = strings.TrimSpace(parts[2])
	}
	return q
}

func matches(needle, hay string) bool {
	return needle == "" || strings.Contains(strings.ToLower(hay), strings.ToLower(needle))
}

// streamTrace is the reassembled decision chain of one stream span.
type streamTrace struct {
	app    string
	stream string
	events []Event
}

// Explain replays an event chain and answers why: why a stream was
// filtered (stage + rule), why a datagram classified as it did (the
// probe steps that shifted or matched), and why a message was judged
// non-compliant (the failing criterion 1-5, by number and name, with
// the reason and offending bytes). It renders a human-readable report
// for every stream matching q; when nothing matches it lists what the
// trace contains so the caller can refine the query.
func Explain(events []Event, q Query) string {
	var b strings.Builder

	// Capture span ID → app label.
	apps := map[string]string{}
	for _, ev := range events {
		if ev.Kind == KindCaptureBegin {
			apps[ev.Span] = ev.App
		}
	}
	appOf := func(ev Event) string {
		if ev.Parent != "" {
			return apps[ev.Parent]
		}
		return apps[ev.Span]
	}

	// Group stream-scoped events by span, preserving order; capture-
	// scoped stream events (admitted/filtered/...) are attributed to
	// the stream they name.
	order := []string{}
	traces := map[string]*streamTrace{}
	add := func(key string, ev Event) {
		t := traces[key]
		if t == nil {
			t = &streamTrace{app: appOf(ev), stream: ev.Stream}
			traces[key] = t
			order = append(order, key)
		}
		t.events = append(t.events, ev)
	}
	for _, ev := range events {
		if ev.Stream == "" {
			continue
		}
		// Key by app+stream so identical 5-tuples in different
		// captures stay separate.
		add(appOf(ev)+"\x00"+ev.Stream, ev)
	}

	matched := 0
	for _, key := range order {
		t := traces[key]
		if !matches(q.App, t.app) || !matches(q.Stream, t.stream) {
			continue
		}
		sec := explainStream(t, q.MsgType)
		if sec == "" {
			continue
		}
		matched++
		b.WriteString(sec)
	}

	if matched == 0 {
		b.WriteString("no trace events match the query\n")
		if len(order) > 0 {
			b.WriteString("streams in this trace:\n")
			for _, key := range order {
				t := traces[key]
				fmt.Fprintf(&b, "  %s / %s\n", t.app, t.stream)
			}
		} else {
			b.WriteString("(trace contains no stream-scoped events)\n")
		}
	}
	return b.String()
}

// explainStream renders one stream's decision chain. msgType filters
// the verdict section; when set and no verdict matches, the stream is
// skipped entirely (returns "").
func explainStream(t *streamTrace, msgType string) string {
	var verdicts, failing []Event
	classes := map[string]int{}
	messages := 0
	dgrams := 0
	truncated := 0
	var fate []string
	for _, ev := range t.events {
		switch ev.Kind {
		case KindStreamAdmitted:
			fate = append(fate, "admitted by the two-stage filter as provisional RTC traffic")
		case KindStreamFiltered:
			s := fmt.Sprintf("filtered at stage %d by rule %q", ev.Stage, ev.Rule)
			if ev.Detail != "" {
				s += " (" + ev.Detail + ")"
			}
			fate = append(fate, s)
		case KindStreamEvicted:
			fate = append(fate, "evicted while idle (chunked finalization)")
		case KindStreamReclassified:
			s := "reclassified at close: full-capture filtering removed it"
			if ev.Rule != "" {
				s += fmt.Sprintf(" (stage %d, rule %q)", ev.Stage, ev.Rule)
			}
			fate = append(fate, s)
		case KindExtraction:
			classes[ev.Class]++
			messages += ev.Messages
			if ev.Dgram > dgrams {
				dgrams = ev.Dgram
			}
		case KindCriterionVerdict:
			if !matches(msgType, ev.MsgType) {
				continue
			}
			verdicts = append(verdicts, ev)
			if ev.Criterion > 0 {
				failing = append(failing, ev)
			}
		case KindTruncated:
			truncated += ev.Dropped
		}
	}
	if msgType != "" && len(verdicts) == 0 {
		return ""
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s\n", t.app, t.stream)
	for _, f := range fate {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if len(classes) > 0 {
		keys := make([]string, 0, len(classes))
		for k := range classes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s ×%d", k, classes[k]))
		}
		fmt.Fprintf(&b, "  extraction (%d datagrams traced, %d standard messages): %s\n",
			dgrams, messages, strings.Join(parts, ", "))
	}
	if len(verdicts) > 0 {
		fmt.Fprintf(&b, "  verdicts traced: %d (%d non-compliant)\n", len(verdicts), len(failing))
	}
	for _, ev := range failing {
		fmt.Fprintf(&b, "  NON-COMPLIANT %s message type %s", ev.Proto, ev.MsgType)
		if ev.Dgram > 0 {
			fmt.Fprintf(&b, " (datagram %d, offset %d)", ev.Dgram, ev.Offset)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "    failed criterion %d (%s): %s\n",
			ev.Criterion, CriterionName(ev.Criterion), ev.Reason)
		if ev.Bytes != "" {
			fmt.Fprintf(&b, "    offending bytes: %s\n", ev.Bytes)
		}
		if ev.TS != "" {
			fmt.Fprintf(&b, "    captured at %s\n", ev.TS)
		}
		explainDgram(&b, t.events, ev.Dgram)
	}
	if truncated > 0 {
		fmt.Fprintf(&b, "  note: sampling dropped %d events from this stream (head/tail policy); failing verdicts are always kept\n", truncated)
	}
	b.WriteString("\n")
	return b.String()
}

// explainDgram prints the probe steps traced for one datagram — how
// Algorithm 1 arrived at the message the verdict judged.
func explainDgram(b *strings.Builder, events []Event, dgram int) {
	if dgram <= 0 {
		return
	}
	var probes []Event
	for _, ev := range events {
		if ev.Kind == KindProbeAttempt && ev.Dgram == dgram {
			probes = append(probes, ev)
		}
	}
	if len(probes) == 0 {
		return
	}
	shifts := 0
	for _, p := range probes {
		if p.Outcome == OutcomeShift {
			shifts++
			continue
		}
		fmt.Fprintf(b, "    probe: %s matched at offset %d (first byte 0x%s)", p.Proto, p.Offset, p.First)
		if shifts > 0 {
			fmt.Fprintf(b, " after %d one-byte shifts", shifts)
			shifts = 0
		}
		b.WriteString("\n")
	}
	if shifts > 0 {
		fmt.Fprintf(b, "    probe: %d trailing one-byte shifts without a match\n", shifts)
	}
}

// Summary renders per-capture aggregate statistics of a trace: event
// counts by kind plus stream admission totals. rtctrace's default mode.
func Summary(events []Event) string {
	byKind := map[Kind]int{}
	spans := map[string]bool{}
	apps := map[string]bool{}
	for _, ev := range events {
		byKind[ev.Kind]++
		spans[ev.Span] = true
		if ev.Kind == KindCaptureBegin {
			apps[ev.App] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d events, %d spans, %d captures\n", len(events), len(spans), len(apps))
	for _, k := range Kinds {
		if n := byKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-20s %d\n", k, n)
		}
	}
	return b.String()
}
