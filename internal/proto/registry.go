package proto

import (
	"fmt"
	"sort"
)

// Registry holds a set of protocol handlers and the derived lookup
// structures the engines iterate. Registration happens at init time
// (drivers self-register into the default registry) or explicitly via
// NewRegistry + Register; a registry is read-only once in use.
type Registry struct {
	handlers  [MaxIDs]Handler
	metas     [MaxIDs]*Meta
	accepters [MaxIDs]Accepter
	observers [MaxIDs]Observer
	ids       []ID
	probers   []Prober
	// table and pass1Table index probers by the first payload byte
	// (RFC 7983-style demultiplexing): entry b lists, in precedence
	// order, the probers whose First fingerprint admits byte b. The
	// scan loops consult them so each offset only tries probers whose
	// wire format can start there.
	table      [256][]Prober
	pass1Table [256][]Prober
	// pass1Any[b] reports pass1Table[b] non-empty. The pass-1 scan
	// visits every offset of every datagram, and most first bytes
	// admit no prober at all; a one-byte load settles those offsets
	// without touching the slice table.
	pass1Any [256]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that drivers self-register
// into. Engines use it when no explicit registry is configured.
func Default() *Registry { return defaultRegistry }

// Register adds a handler to the default registry; drivers call it from
// init. It panics on an invalid or duplicate registration.
func Register(h Handler) { defaultRegistry.Register(h) }

// Register adds a handler to the registry. It panics on a duplicate or
// out-of-range ID — registration errors are programming errors.
func (r *Registry) Register(h Handler) {
	m := h.Meta()
	if m.ID == Unknown || int(m.ID) >= MaxIDs {
		panic(fmt.Sprintf("proto: handler %q has invalid ID %d", m.Name, m.ID))
	}
	if r.handlers[m.ID] != nil {
		panic(fmt.Sprintf("proto: duplicate registration for ID %d (%q)", m.ID, m.Name))
	}
	if m.Family == Unknown {
		m.Family = m.ID
	}
	r.handlers[m.ID] = h
	r.metas[m.ID] = &m
	if a, ok := h.(Accepter); ok {
		r.accepters[m.ID] = a
	}
	if o, ok := h.(Observer); ok {
		r.observers[m.ID] = o
	}
	r.ids = append(r.ids, m.ID)
	for _, p := range h.Probers() {
		p.ID = m.ID
		r.probers = append(r.probers, p)
	}
	sort.SliceStable(r.probers, func(i, j int) bool {
		return r.probers[i].Precedence < r.probers[j].Precedence
	})
	r.rebuildTables()
}

// rebuildTables derives the first-byte dispatch tables from the sorted
// prober list.
func (r *Registry) rebuildTables() {
	for b := 0; b < 256; b++ {
		r.table[b] = nil
		r.pass1Table[b] = nil
		for _, p := range r.probers {
			if p.First != nil && !p.First(byte(b)) {
				continue
			}
			r.table[b] = append(r.table[b], p)
			if p.Pass1 && p.Probe != nil {
				r.pass1Table[b] = append(r.pass1Table[b], p)
			}
		}
		r.pass1Any[b] = len(r.pass1Table[b]) > 0
	}
}

// Handler returns the handler registered for an ID (nil when absent).
func (r *Registry) Handler(id ID) Handler {
	if int(id) >= MaxIDs {
		return nil
	}
	return r.handlers[id]
}

// Accepter returns the handler's post-match hook (nil when the handler
// does not implement one, or is absent).
func (r *Registry) Accepter(id ID) Accepter {
	if int(id) >= MaxIDs {
		return nil
	}
	return r.accepters[id]
}

// Meta returns the metadata registered for an ID.
func (r *Registry) Meta(id ID) (Meta, bool) {
	if int(id) >= MaxIDs || r.metas[id] == nil {
		return Meta{}, false
	}
	return *r.metas[id], true
}

// Metas lists registered protocol metadata sorted by report order, then
// ID — a stable enumeration independent of registration order.
func (r *Registry) Metas() []Meta {
	out := make([]Meta, 0, len(r.ids))
	for _, id := range r.ids {
		out = append(out, *r.metas[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Families lists the distinct reporting families in report order — the
// protocol column order of the paper's tables.
func (r *Registry) Families() []ID {
	var out []ID
	seen := [MaxIDs]bool{}
	for _, m := range r.Metas() {
		if !seen[m.Family] {
			seen[m.Family] = true
			out = append(out, m.Family)
		}
	}
	return out
}

// Probers lists every registered prober sorted by demultiplexing
// precedence. Callers must not mutate the returned slice.
func (r *Registry) Probers() []Prober { return r.probers }

// ProbersFor lists, in precedence order, the probers whose wire-format
// fingerprint admits a candidate starting with byte b. Callers must not
// mutate the returned slice.
func (r *Registry) ProbersFor(b byte) []Prober { return r.table[b] }

// Pass1ProbersFor is ProbersFor restricted to the stream-level pass-1
// probers.
func (r *Registry) Pass1ProbersFor(b byte) []Prober { return r.pass1Table[b] }

// Pass1Possible reports whether any pass-1 prober admits first byte b —
// the pass-1 scan's one-load fast path for the common miss.
func (r *Registry) Pass1Possible(b byte) bool { return r.pass1Any[b] }

// Without returns a copy of the registry with the given protocols
// removed — the extensibility proof harness builds the engine against a
// registry without DTLS to show no engine code depends on it.
func (r *Registry) Without(ids ...ID) *Registry {
	drop := [MaxIDs]bool{}
	for _, id := range ids {
		if int(id) < MaxIDs {
			drop[id] = true
		}
	}
	out := NewRegistry()
	for _, id := range r.ids {
		if !drop[id] {
			out.Register(r.handlers[id])
		}
	}
	return out
}
