package bench

import (
	"strings"
	"testing"
	"time"
)

// TestScenarioMatrix pins the shape of the benchmark matrix: every
// serial ingestion mode crossed with every traffic cell, plus the
// shard-scaling curve on the media-heavy cell, unique names
// throughout — media-heavy is the cell both the FeedBatch speedup and
// the shard-scaling criteria are recorded on.
func TestScenarioMatrix(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 12 {
		t.Fatalf("Scenarios() = %d cells, want 12 (3 modes x 3 cells + 3 shard counts)", len(scs))
	}
	seen := map[string]bool{}
	perMode := map[Mode]int{}
	mediaHeavy := 0
	shardCounts := map[int]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		perMode[sc.Mode]++
		if strings.HasSuffix(sc.Name, "/media-heavy") {
			mediaHeavy++
			if sc.Background {
				t.Errorf("%s: media-heavy cell must disable background traffic", sc.Name)
			}
		}
		if sc.Mode == ModeSharded {
			if !strings.HasSuffix(sc.Name, "/media-heavy") {
				t.Errorf("%s: sharded cells measure the media-heavy load only", sc.Name)
			}
			shardCounts[sc.Shards] = true
		}
	}
	for _, m := range []Mode{ModeFeed, ModeFeedBatch, ModeBatch} {
		if perMode[m] != 3 {
			t.Errorf("mode %s has %d cells, want 3", m, perMode[m])
		}
	}
	if mediaHeavy != 6 {
		t.Errorf("media-heavy cells = %d, want one per serial mode plus three shard counts", mediaHeavy)
	}
	for _, n := range []int{1, 2, 4} {
		if !shardCounts[n] {
			t.Errorf("shard-scaling curve missing the %d-shard cell", n)
		}
	}
}

// TestShardedHarnessRuns drives one Measure through the sharded mode:
// the measurement must be coherent and the scenario must analyze the
// same capture as the serial media-heavy cells.
func TestShardedHarnessRuns(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Mode != ModeSharded || sc.Shards != 2 {
			continue
		}
		p, err := Prepare(sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Measure(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Name != sc.Name || res.Packets != p.Packets || res.NsPerOp <= 0 || res.PktsPerSec <= 0 {
			t.Errorf("sharded measurement incoherent: %+v", res)
		}
	}
}

// TestCurrentHost pins the host-metadata record the baseline embeds.
func TestCurrentHost(t *testing.T) {
	h := CurrentHost()
	if h.NumCPU < 1 || h.GOMAXPROCS < 1 || h.GoVersion == "" || h.OS == "" || h.Arch == "" {
		t.Errorf("CurrentHost() incomplete: %+v", h)
	}
	if !h.Comparable(h) {
		t.Error("host not comparable to itself")
	}
	other := h
	other.NumCPU++
	if h.Comparable(other) {
		t.Error("hosts with different CPU counts considered comparable")
	}
}

// TestHarnessRuns drives one full Measure through each ingestion mode
// on the small relay cell: every mode must analyze the identical
// capture and report a coherent measurement.
func TestHarnessRuns(t *testing.T) {
	packets := map[Mode]int{}
	for _, sc := range Scenarios() {
		if !strings.HasSuffix(sc.Name, "/relay") {
			continue
		}
		p, err := Prepare(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if p.Packets == 0 || p.Bytes == 0 {
			t.Fatalf("%s: empty capture (%d packets, %d bytes)", sc.Name, p.Packets, p.Bytes)
		}
		packets[sc.Mode] = p.Packets
		res, err := Measure(p, 2, 0)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Name != sc.Name || res.Packets != p.Packets {
			t.Errorf("%s: result identity %q/%d, want %q/%d", sc.Name, res.Name, res.Packets, sc.Name, p.Packets)
		}
		if res.NsPerOp <= 0 || res.PktsPerSec <= 0 {
			t.Errorf("%s: non-positive measurement %+v", sc.Name, res)
		}
	}
	if packets[ModeFeed] != packets[ModeFeedBatch] || packets[ModeFeed] != packets[ModeBatch] {
		t.Errorf("modes saw different captures: %v", packets)
	}
}

// TestMeasureBestKeepsFastest checks the noise-rejection helper
// returns a result and that repetitions don't change the workload.
func TestMeasureBestKeepsFastest(t *testing.T) {
	sc := Scenarios()[0]
	p, err := Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureBest(p, 2, 1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != sc.Name || res.NsPerOp <= 0 {
		t.Errorf("MeasureBest returned %+v for %s", res, sc.Name)
	}
}
