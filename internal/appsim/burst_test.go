package appsim

import (
	"reflect"
	"testing"
	"time"
)

func burstCfg(app App, burst bool) CallConfig {
	return CallConfig{
		App:      app,
		Network:  WiFiRelay,
		Seed:     9,
		Start:    time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC),
		Duration: 2 * time.Second,
		Burst:    burst,
	}
}

// TestBurstOffUnchanged pins that the burster is inert when disabled:
// the frame-rate and variance knobs must not perturb a non-burst
// capture in any way (the core golden fixtures separately pin that
// non-burst captures are byte-identical to the pre-burst generator).
func TestBurstOffUnchanged(t *testing.T) {
	for _, app := range Apps {
		a, err := Generate(burstCfg(app, false))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		cfg := burstCfg(app, false)
		cfg.BitrateVar = 0.8
		cfg.FrameRate = 5
		b, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("%s: burst knobs leaked into a non-burst capture", app)
		}
	}
}

func TestBurstDeterministic(t *testing.T) {
	for _, app := range Apps {
		a, err := Generate(burstCfg(app, true))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		b, err := Generate(burstCfg(app, true))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("%s: burst generation is not deterministic", app)
		}
	}
}

// TestBurstChangesShape verifies bursting actually reshapes traffic:
// emission times cluster on frame boundaries, so the distinct-
// timestamp count drops sharply versus smooth pacing.
func TestBurstChangesShape(t *testing.T) {
	for _, app := range Apps {
		smooth, err := Generate(burstCfg(app, false))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		bursty, err := Generate(burstCfg(app, true))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if reflect.DeepEqual(smooth.Events, bursty.Events) {
			t.Fatalf("%s: burst flag changed nothing", app)
		}
		if len(bursty.Events) == 0 {
			t.Fatalf("%s: burst run produced no events", app)
		}
	}
}

// TestBurstFrameClustering checks the frame-granular shape directly on
// one app: with a 30fps burster, video emission times land on a small
// set of frame-boundary instants plus sub-millisecond serialization
// offsets, so inter-packet gaps are bimodal — tiny inside a frame,
// roughly a frame interval between frames.
func TestBurstFrameClustering(t *testing.T) {
	cfg := burstCfg(Discord, true)
	call, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Collect gaps over large UDP packets (video-sized).
	var prev time.Time
	var tiny, total int
	for _, ev := range call.Events {
		if len(ev.Payload) < 400 {
			continue
		}
		if !prev.IsZero() {
			gap := ev.At.Sub(prev)
			total++
			if gap < time.Millisecond {
				tiny++
			}
		}
		prev = ev.At
	}
	if total < 20 {
		t.Fatalf("too few video packets to judge: %d", total)
	}
	if frac := float64(tiny) / float64(total); frac < 0.3 {
		t.Fatalf("only %.2f of video gaps are sub-millisecond; bursting not frame-granular", frac)
	}
}

// TestBurstBitrateVariance checks the per-frame size scaling: with a
// large variance the spread of video packet sizes must widen, and the
// keyframe boost must push some packets to the clamp ceiling.
func TestBurstBitrateVariance(t *testing.T) {
	cfg := burstCfg(GoogleMeet, true)
	cfg.BitrateVar = 0.5
	call, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 1<<30, 0
	for _, ev := range call.Events {
		n := len(ev.Payload)
		if n < 400 {
			continue
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min < 300 {
		t.Fatalf("video size spread too narrow for BitrateVar=0.5: min %d max %d", min, max)
	}
}

func TestBurstFrameRateKnob(t *testing.T) {
	slow := burstCfg(FaceTime, true)
	slow.FrameRate = 5
	fast := burstCfg(FaceTime, true)
	fast.FrameRate = 60
	a, err := Generate(slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(fast)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("frame rate knob changed nothing")
	}
}
