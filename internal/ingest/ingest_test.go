package ingest_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/ingest"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/natsim"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Differential harness for the sharded ingest tier.
//
// The contract under test: routing a capture across N single-writer
// Analyzer shards and merging at Close produces output byte-identical
// to one serial Analyzer fed the same frames in the same order — for
// every shard count, every app, and under impairment. DESIGN.md §15
// derives why; this suite enforces it.

var t0 = time.Unix(1700000000, 0).UTC()

// shardCounts is the invariance sweep, including 16 shards — more
// shards than distinct flows in some captures, so empty shards and
// maximally fragmented tables are both exercised.
var shardCounts = []int{1, 2, 4, 16}

var invarianceSeeds = []uint64{3, 17, 29, 1234}

func genCapture(t testing.TB, app appsim.App, network appsim.Network, seed uint64) *trace.Capture {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App: app, Network: network, Seed: seed,
		Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
		MediaRate: 8, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

// requireIdentical asserts the sharded analysis is deeply equal to
// the serial reference — every field, including per-packet records,
// so any downstream rendering of the two is byte-identical.
func requireIdentical(t *testing.T, label string, serial, sharded *core.CaptureAnalysis) {
	t.Helper()
	if reflect.DeepEqual(serial, sharded) {
		return
	}
	t.Errorf("%s: sharded CaptureAnalysis differs from serial", label)
	if !reflect.DeepEqual(serial.Filter, sharded.Filter) {
		t.Errorf("%s: filter results differ\nserial:  %+v\nsharded: %+v", label, serial.Filter, sharded.Filter)
	}
	if !reflect.DeepEqual(serial.Stats, sharded.Stats) {
		t.Errorf("%s: stats differ\nserial:  %+v\nsharded: %+v", label, serial.Stats, sharded.Stats)
	}
	if !reflect.DeepEqual(serial.Findings, sharded.Findings) {
		t.Errorf("%s: findings differ\nserial:  %v\nsharded: %v", label, serial.Findings, sharded.Findings)
	}
	if !reflect.DeepEqual(serial.RTPSSRCs, sharded.RTPSSRCs) {
		t.Errorf("%s: SSRC sets differ", label)
	}
	if serial.Bytes != sharded.Bytes || serial.DecodeErrors != sharded.DecodeErrors {
		t.Errorf("%s: bytes/decode errors differ: %d/%d != %d/%d",
			label, sharded.Bytes, sharded.DecodeErrors, serial.Bytes, serial.DecodeErrors)
	}
}

// TestShardCountInvariance sweeps every app over the seed set and
// asserts the sharded pipeline at 1, 2, 4, and 16 shards is
// byte-identical to the serial AnalyzeCapture reference.
func TestShardCountInvariance(t *testing.T) {
	seeds := invarianceSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, app := range appsim.Apps {
		for _, seed := range seeds {
			cap := genCapture(t, app, appsim.WiFiRelay, seed)
			in := cap.Input()
			serial, err := core.AnalyzeCapture(in, core.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s seed %d serial: %v", app, seed, err)
			}
			for _, n := range shardCounts {
				sharded, err := ingest.AnalyzeCapture(in, core.Options{Workers: 1}, ingest.Config{Shards: n})
				if err != nil {
					t.Fatalf("%s seed %d shards=%d: %v", app, seed, n, err)
				}
				requireIdentical(t, fmt.Sprintf("%s seed %d shards %d", app, seed, n), serial, sharded)
			}
		}
	}
}

// TestShardInvarianceUnderImpairment repeats the invariance check on
// impaired captures: loss, reordering jitter, and NAT rebinding change
// arrival order and flow membership, the exact properties the router
// and merge depend on.
func TestShardInvarianceUnderImpairment(t *testing.T) {
	for _, prof := range natsim.StandardProfiles() {
		cap, err := trace.Generate(trace.CaptureConfig{
			App: appsim.Zoom, Network: appsim.WiFiRelay, Seed: 77,
			Start: t0, CallDuration: 2 * time.Second, PrePost: 3 * time.Second,
			MediaRate: 8, Background: true, Impair: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := cap.Input()
		serial, err := core.AnalyzeCapture(in, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", prof.Name, err)
		}
		for _, n := range []int{2, 4} {
			sharded, err := ingest.AnalyzeCapture(in, core.Options{Workers: 1}, ingest.Config{Shards: n})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", prof.Name, n, err)
			}
			requireIdentical(t, fmt.Sprintf("impair %s shards %d", prof.Name, n), serial, sharded)
		}
	}
}

func capturePCAPBytes(t testing.TB, cap *trace.Capture) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeRaw)
	for _, fr := range cap.Frames() {
		if err := w.WritePacket(fr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestShardedPCAPMatchesSerial checks the streaming pcap entry point:
// the sharded AnalyzePCAP (pooled payloads, copy-at-router) against
// the serial one, with explicit and defaulted call windows.
func TestShardedPCAPMatchesSerial(t *testing.T) {
	cap := genCapture(t, appsim.GoogleMeet, appsim.WiFiP2P, 23)
	raw := capturePCAPBytes(t, cap)
	for _, window := range []struct {
		name       string
		start, end time.Time
	}{
		{"explicit", cap.CallStart, cap.CallEnd},
		{"defaulted", time.Time{}, time.Time{}},
	} {
		serial, err := core.AnalyzePCAP(bytes.NewReader(raw), "meet", window.start, window.end, core.Options{})
		if err != nil {
			t.Fatalf("%s serial: %v", window.name, err)
		}
		for _, n := range []int{2, 4} {
			sharded, err := ingest.AnalyzePCAP(bytes.NewReader(raw), "meet", window.start, window.end,
				core.Options{}, ingest.Config{Shards: n})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", window.name, n, err)
			}
			requireIdentical(t, fmt.Sprintf("pcap window=%s shards=%d", window.name, n), serial, sharded)
		}
	}
}

// feedAll routes a capture's frames through the sharded tier in
// feedBatch-sized chunks, like the capture readers do.
func feedAll(t testing.TB, sa *ingest.ShardedAnalyzer, capt *trace.Capture) {
	t.Helper()
	batch := make([]core.Datagram, 0, 64)
	for _, f := range capt.Frames() {
		batch = append(batch, core.Datagram{Timestamp: f.Timestamp, Frame: f.Data})
		if len(batch) == cap(batch) {
			if err := sa.FeedBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := sa.FeedBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func newSharded(t testing.TB, capt *trace.Capture, cfg ingest.Config, opts core.Options) *ingest.ShardedAnalyzer {
	t.Helper()
	sa, err := ingest.New(core.AnalyzerConfig{
		Label:     string(capt.Config.App),
		LinkType:  pcap.LinkTypeRaw,
		CallStart: capt.CallStart, CallEnd: capt.CallEnd,
		KeepPayloads: true, FramesStable: true,
	}, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

// TestDropConservation pins the accounting semantics: datagrams are
// conserved — fed equals analyzed plus dropped — after Close, under
// both policies; and the lossless Block policy never drops.
func TestDropConservation(t *testing.T) {
	cap := genCapture(t, appsim.Zoom, appsim.WiFiRelay, 42)
	frames := len(cap.Frames())

	t.Run("drop", func(t *testing.T) {
		// A one-deep queue of one-datagram batches makes back-pressure
		// certain; how many drops land depends on worker timing, but
		// conservation must hold regardless.
		sa := newSharded(t, cap, ingest.Config{
			Shards: 2, QueueDepth: 1, BatchSize: 1, Policy: ingest.Drop,
		}, core.Options{Workers: 1})
		feedAll(t, sa, cap)
		if _, err := sa.Close(); err != nil {
			t.Fatal(err)
		}
		st := sa.Stats()
		if st.Fed != uint64(frames) {
			t.Errorf("Fed = %d, want %d", st.Fed, frames)
		}
		if st.Analyzed+st.Dropped != st.Fed {
			t.Errorf("conservation violated: fed %d != analyzed %d + dropped %d",
				st.Fed, st.Analyzed, st.Dropped)
		}
		for i, ss := range st.Shards {
			if ss.Analyzed != ss.Enqueued {
				t.Errorf("shard %d: analyzed %d != enqueued %d after Close", i, ss.Analyzed, ss.Enqueued)
			}
			if ss.QueueDepth != 0 {
				t.Errorf("shard %d: queue depth %d after Close, want 0", i, ss.QueueDepth)
			}
		}
		t.Logf("drop policy: fed %d, analyzed %d, dropped %d", st.Fed, st.Analyzed, st.Dropped)
	})

	t.Run("block", func(t *testing.T) {
		sa := newSharded(t, cap, ingest.Config{
			Shards: 2, QueueDepth: 1, BatchSize: 1, Policy: ingest.Block,
		}, core.Options{Workers: 1})
		feedAll(t, sa, cap)
		if _, err := sa.Close(); err != nil {
			t.Fatal(err)
		}
		st := sa.Stats()
		if st.Dropped != 0 {
			t.Errorf("Block policy dropped %d datagrams", st.Dropped)
		}
		if st.Analyzed != st.Fed || st.Fed != uint64(frames) {
			t.Errorf("lossless accounting: fed %d, analyzed %d, want both %d", st.Fed, st.Analyzed, frames)
		}
		t.Logf("block policy: fed %d, backpressure stalls %d", st.Fed, st.Backpressure)
	})
}

// TestIngestMetrics checks the /metrics surface: tier gauges and
// counters present, per-shard analyzed counters summing to fed under
// the lossless policy, and queue-depth gauges settled to zero.
func TestIngestMetrics(t *testing.T) {
	cap := genCapture(t, appsim.Discord, appsim.WiFiRelay, 7)
	reg := metrics.NewRegistry()
	sa := newSharded(t, cap, ingest.Config{Shards: 4}, core.Options{Workers: 1, Metrics: reg})
	feedAll(t, sa, cap)
	if _, err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	app := string(cap.Config.App)

	fed := snap.Counters[metrics.Name("ingest_datagrams_fed_total", metrics.L("app", app))]
	if fed != uint64(len(cap.Frames())) {
		t.Errorf("ingest_datagrams_fed_total = %d, want %d", fed, len(cap.Frames()))
	}
	if v := snap.Gauges[metrics.Name("ingest_shards", metrics.L("app", app))]; v != 4 {
		t.Errorf("ingest_shards = %d, want 4", v)
	}
	var analyzed, dropped uint64
	for i := 0; i < 4; i++ {
		labels := []metrics.Label{metrics.L("app", app), metrics.L("shard", fmt.Sprint(i))}
		analyzed += snap.Counters[metrics.Name("ingest_datagrams_analyzed_total", labels...)]
		dropped += snap.Counters[metrics.Name("ingest_datagrams_dropped_total", labels...)]
		if d := snap.Gauges[metrics.Name("ingest_queue_depth", labels...)]; d != 0 {
			t.Errorf("shard %d: ingest_queue_depth = %d after Close, want 0", i, d)
		}
	}
	if dropped != 0 {
		t.Errorf("dropped %d under Block policy", dropped)
	}
	if analyzed != fed {
		t.Errorf("per-shard analyzed sum %d != fed %d", analyzed, fed)
	}
}

// TestFlushBarrier checks Flush semantics: after Flush every enqueued
// datagram is analyzed (the barrier really waits), feeding may resume,
// and the final result is still byte-identical to serial.
func TestFlushBarrier(t *testing.T) {
	cap := genCapture(t, appsim.WhatsApp, appsim.WiFiRelay, 31)
	in := cap.Input()
	serial, err := core.AnalyzeCapture(in, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sa := newSharded(t, cap, ingest.Config{Shards: 4}, core.Options{Workers: 1})
	frames := cap.Frames()
	half := len(frames) / 2
	for _, f := range frames[:half] {
		if err := sa.Feed(f.Timestamp, f.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Flush(); err != nil {
		t.Fatal(err)
	}
	st := sa.Stats()
	if st.Analyzed != uint64(half) {
		t.Errorf("after Flush: analyzed %d, want %d (barrier returned early)", st.Analyzed, half)
	}
	for _, f := range frames[half:] {
		if err := sa.Feed(f.Timestamp, f.Data); err != nil {
			t.Fatal(err)
		}
	}
	sharded, err := sa.Close()
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "flush mid-capture", serial, sharded)
}

// TestShardedMisuse pins the lifecycle and configuration errors.
func TestShardedMisuse(t *testing.T) {
	if _, err := ingest.New(core.AnalyzerConfig{ExternalSeq: true}, core.Options{}, ingest.Config{}); err == nil {
		t.Error("caller-set ExternalSeq accepted")
	}
	cap := genCapture(t, appsim.Zoom, appsim.WiFiP2P, 1)
	sa := newSharded(t, cap, ingest.Config{Shards: 2}, core.Options{Workers: 1})
	feedAll(t, sa, cap)
	if _, err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sa.Feed(cap.CallEnd, nil); err == nil {
		t.Error("Feed after Close accepted")
	}
	if err := sa.FeedBatch([]core.Datagram{{}}); err == nil {
		t.Error("FeedBatch after Close accepted")
	}
	if err := sa.Flush(); err == nil {
		t.Error("Flush after Close accepted")
	}
	if _, err := sa.Close(); err == nil {
		t.Error("second Close accepted")
	}
}

// TestShardRaceHammer drives the full tier — router, bounded queues,
// four shard workers, concurrent Stats readers, a mid-stream Flush —
// under load. Run with -race (make shard-smoke, CI), where any
// cross-goroutine ownership violation in the single-writer story
// becomes a hard failure.
func TestShardRaceHammer(t *testing.T) {
	cap := genCapture(t, appsim.Zoom, appsim.WiFiRelay, 31337)
	reg := metrics.NewRegistry()
	sa := newSharded(t, cap, ingest.Config{Shards: 4, QueueDepth: 2, BatchSize: 8},
		core.Options{Workers: 1, Metrics: reg})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sa.Stats()
				_ = reg.Snapshot()
			}
		}
	}()

	frames := cap.Frames()
	rounds := 8
	if testing.Short() {
		rounds = 2
	}
	fed := 0
	for r := 0; r < rounds; r++ {
		for _, f := range frames {
			// Re-feeding the same capture multiplies load without new
			// fixtures; the analysis result is irrelevant here.
			if err := sa.Feed(f.Timestamp.Add(time.Duration(r)*time.Second), f.Data); err != nil {
				t.Fatal(err)
			}
			fed++
		}
		if r == rounds/2 {
			if err := sa.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	st := sa.Stats()
	if st.Fed != uint64(fed) {
		t.Errorf("fed %d, accounted %d", fed, st.Fed)
	}
	if st.Analyzed+st.Dropped != st.Fed {
		t.Errorf("conservation violated: fed %d != analyzed %d + dropped %d", st.Fed, st.Analyzed, st.Dropped)
	}
}
