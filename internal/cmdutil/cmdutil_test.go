package cmdutil

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

func TestPrintVersion(t *testing.T) {
	var b bytes.Buffer
	PrintVersion(&b, "rtctest")
	out := b.String()
	if !strings.HasPrefix(out, "rtctest ") || !strings.HasSuffix(out, "\n") {
		t.Errorf("PrintVersion output = %q", out)
	}
}

func TestServeMetricsDisabled(t *testing.T) {
	reg, stop, err := ServeMetrics("rtctest", "")
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Error("empty addr should yield a nil registry")
	}
	stop() // must be a safe no-op
}

func TestServeMetricsLifecycle(t *testing.T) {
	reg, stop, err := ServeMetrics("rtctest", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("expected a live registry")
	}
	reg.Counter("cmdutil_test_total").Inc()
	// The bound address is not returned directly; reach the server via
	// the registry's expvar publication instead of scraping stderr: the
	// lifecycle contract under test is that stop() shuts the server
	// down without panicking and is idempotent-safe with the signal
	// goroutine.
	stop()
}

func TestServeMetricsBadAddr(t *testing.T) {
	_, _, err := ServeMetrics("rtctest", "256.256.256.256:99999")
	if err == nil {
		t.Fatal("expected bind error")
	}
	// A failed bind must leave no server running.
	if _, err := http.Get("http://127.0.0.1:99999/metrics"); err == nil {
		t.Error("unexpected live server after failed bind")
	}
}
