package core

import (
	"errors"
	"fmt"
	"sort"
)

// MergeAnalyzers folds N fed (but not yet closed) Analyzer shards into
// one capture analysis. It is the cross-shard half of the sharded
// ingest tier (internal/ingest): the router hashes datagrams by flow
// 5-tuple onto single-writer shards, and this merge reunifies their
// state before any cross-stream decision is made.
//
// Requirements, all guaranteed by the sharded router:
//
//   - every shard was built from the same AnalyzerConfig and Options;
//   - each flow key was fed to exactly one shard (a duplicate key is
//     reported as a misrouting error);
//   - the shards ran under ExternalSeq with a capture-global arrival
//     sequence, so the merged stream table can be rebuilt in the exact
//     insertion order a serial analyzer would have used.
//
// The merge constructs a synthetic Analyzer holding the union of the
// shard state — stream table, per-stream pipeline state, 3-tuple
// spans, pre-call address pairs, frame tallies — and then runs the
// very finalize step Close runs. Per-shard online filter verdicts are
// safe to carry over because every online rule is monotone on evidence
// that only grows from shard to union; the final two-stage filter then
// re-judges every stream against the full merged evidence. The result
// is therefore byte-identical to a serial Analyzer fed the same
// datagrams in Seq order — by construction, not by testing alone.
//
// The shards are consumed: their state now belongs to the merged
// analysis and they are marked closed.
func MergeAnalyzers(shards []*Analyzer) (*CaptureAnalysis, error) {
	if len(shards) == 0 {
		return nil, errors.New("core: MergeAnalyzers needs at least one shard")
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("core: MergeAnalyzers: shard %d is nil", i)
		}
		if sh.closed {
			return nil, fmt.Errorf("core: MergeAnalyzers: shard %d already closed", i)
		}
	}
	if len(shards) == 1 {
		// One shard holds the whole capture; its own Close is already
		// the serial path.
		return shards[0].Close()
	}
	base := shards[0]
	if !base.cfg.ExternalSeq {
		return nil, errors.New("core: MergeAnalyzers requires ExternalSeq shards (capture-global arrival order)")
	}
	for i, sh := range shards[1:] {
		c, b := sh.cfg, base.cfg
		if c.Label != b.Label || c.LinkType != b.LinkType ||
			!c.CallStart.Equal(b.CallStart) || !c.CallEnd.Equal(b.CallEnd) ||
			c.DefaultWindowToSpan != b.DefaultWindowToSpan ||
			c.KeepPayloads != b.KeepPayloads || c.ExternalSeq != b.ExternalSeq {
			return nil, fmt.Errorf("core: MergeAnalyzers: shard %d config differs from shard 0", i+1)
		}
	}

	m, err := NewAnalyzer(base.cfg, base.opts)
	if err != nil {
		return nil, err
	}
	m.closed = true
	for _, sh := range shards {
		sh.closed = true // the merge consumes the shard state
		m.frames += sh.frames
		m.decodeErrs += sh.decodeErrs
		if sh.frames == 0 {
			continue
		}
		if m.firstSeq == 0 || sh.firstSeq < m.firstSeq {
			m.firstSeq, m.firstTS = sh.firstSeq, sh.firstTS
		}
		if sh.lastSeq > m.lastSeq {
			m.lastSeq, m.lastTS = sh.lastSeq, sh.lastTS
		}
	}

	// Span union first, so stream absorption can re-point each stream's
	// per-direction span memos at the merged (full-evidence) spans.
	for _, sh := range shards {
		m.table.AbsorbSpans(sh.table)
	}

	// Rebuild the serial insertion order: each stream was created by
	// exactly one datagram, whose capture-global Seq its owning shard
	// recorded as the stream's birth. Sorting the union by birth is
	// exactly the order a serial table would have appended in.
	var states []*streamState
	for _, sh := range shards {
		for _, st := range sh.states {
			states = append(states, st)
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].birth < states[j].birth })
	for _, st := range states {
		if st.s == nil {
			continue
		}
		if err := m.table.AbsorbStream(st.s); err != nil {
			return nil, err
		}
		m.states[st.s.Key] = st
	}

	for _, sh := range shards {
		for pair := range sh.preCallPairs {
			m.preCallPairs[pair] = true
		}
	}
	return m.finalize()
}
