// Package metrics is a dependency-free, concurrency-safe metrics
// registry for the analysis pipeline: atomic counters, gauges, and
// fixed-bucket latency histograms with quantile estimation, addressed
// by a metric name plus optional key=value labels (app, network,
// pipeline stage, drop rule, ...).
//
// The package is built around two properties the pipeline needs:
//
//   - A nil registry costs nothing. Every lookup on a nil *Registry
//     returns a nil instrument, and every operation on a nil
//     instrument is a no-op — a single predictable branch on the hot
//     path. Callers thread an optional *Registry through without
//     guarding call sites.
//
//   - Recording is order-independent. Counters and histogram bucket
//     counts are atomic sums, so a parallel analysis run records
//     exactly the same totals as a serial one regardless of goroutine
//     scheduling; instrumentation cannot perturb the engine's
//     deterministic serial-vs-parallel equality.
//
// Snapshot renders the registry as JSON (served at /metrics) and
// publishes to expvar (served at /debug/vars); see http.go for the
// HTTP endpoint that also mounts net/http/pprof.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Name renders the canonical metric identity: the base name followed
// by the labels sorted by key, as base{k1=v1,k2=v2}. Snapshot maps are
// keyed by this form, so tests and scrapers can reconstruct it.
func Name(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter ignores every operation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge ignores every operation.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds every instrument created through it. A nil *Registry
// is valid and inert: lookups return nil instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	sharded    map[string]*ShardedCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the counter with the given
// name and labels. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name
// and labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the
// given name and labels. buckets lists the upper bounds; nil selects
// DefaultLatencyBuckets. The bounds of an existing histogram are kept —
// the first creation wins. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = newHistogram(buckets)
		r.histograms[key] = h
	}
	return h
}
