// Package stundrv registers the STUN/TURN protocol family with the
// wire-protocol registry: the magic-cookie and classic RFC 3489 probers,
// the TURN ChannelData framing prober, and the five-criterion compliance
// judges, ported intact from the original hardcoded engine.
package stundrv

import (
	"fmt"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

func init() {
	proto.Register(stunHandler{})
	proto.Register(channelDataHandler{})
}

// Demultiplexing precedences of the STUN family's fingerprints. The
// magic cookie is the strongest signature in the pipeline and probes
// first; the cookie-less classic form is weak and probes after QUIC.
const (
	PrecedenceCookie      = 10
	PrecedenceChannelData = 20
	PrecedenceClassic     = 50
)

type stunHandler struct{}

func (stunHandler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.STUN,
		Name:        "STUN/TURN",
		Slug:        "stun",
		Family:      proto.STUN,
		Order:       1,
		Fingerprint: "two zero top bits + RFC 5389 magic cookie 0x2112A442, or classic RFC 3489 header with exact declared length",
		Fuzz:        "./internal/stun:FuzzDecode",
	}
}

func (stunHandler) Probers() []proto.Prober {
	return []proto.Prober{
		{
			Precedence: PrecedenceCookie,
			Pass1:      true,
			First:      stunFirst,
			Probe:      proto.ConsumeProbe(MatchCookie),
			Validate:   MatchCookie,
		},
		{
			Precedence: PrecedenceClassic,
			First:      stunFirst,
			Validate:   matchClassic,
		},
	}
}

// stunFirst is the RFC 7983 first-byte slice shared by both STUN
// probers: the two top bits of the message type word are zero.
func stunFirst(b byte) bool { return b&0xc0 == 0 }

// MatchCookie matches RFC 5389+ STUN: the magic cookie is the
// validation anchor. The message type is deliberately unrestricted
// (§4.1.1) so undefined types like WhatsApp's 0x0801 surface. Exported
// for the RTP driver's strong-second-candidate scan.
func MatchCookie(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if !stun.LooksLikeHeader(b) {
		return proto.Message{}, false
	}
	if len(b) < stun.HeaderLen {
		return proto.Message{}, false
	}
	cookie := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	if cookie != stun.MagicCookie {
		return proto.Message{}, false
	}
	m, err := stun.Decode(b)
	if err != nil {
		return proto.Message{}, false
	}
	st.SawSTUN = true
	return proto.Message{Protocol: proto.STUN, Length: m.DecodedLen(), STUN: m}, true
}

// matchClassic matches RFC 3489 STUN, which lacks the magic cookie.
// Without the cookie the false-positive risk is high, so validation
// requires the declared length to consume the remaining payload exactly
// and the attribute region to walk cleanly; the paper's equivalent is
// its "valid length field" heuristic.
func matchClassic(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if !stun.LooksLikeHeader(b) {
		return proto.Message{}, false
	}
	declared := int(b[2])<<8 | int(b[3])
	if declared != len(b)-stun.HeaderLen {
		return proto.Message{}, false
	}
	m, err := stun.Decode(b)
	if err != nil {
		return proto.Message{}, false
	}
	if !m.Classic {
		return proto.Message{}, false // cookie case handled by MatchCookie
	}
	// Without the magic cookie anchor, only registered methods are
	// plausible: every classic-STUN deployment the paper observed
	// (Zoom's RFC 3489 usage) uses defined methods, while zero-filled
	// or random regions frequently parse as "type 0x0000" messages.
	if _, defined := stun.DefinedMessageType(m.Type); !defined {
		return proto.Message{}, false
	}
	st.SawSTUN = true
	return proto.Message{Protocol: proto.STUN, Length: m.DecodedLen(), STUN: m}, true
}

type channelDataHandler struct{}

func (channelDataHandler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.ChannelData,
		Name:        "ChannelData",
		Slug:        "channel_data",
		Family:      proto.STUN,
		Order:       1,
		Fingerprint: "RFC 8656 channel number 0x4000-0x4FFF with a framed length consuming the payload (≤3 bytes padding)",
		Fuzz:        "./internal/stun:FuzzDecodeChannelData",
	}
}

func (channelDataHandler) Probers() []proto.Prober {
	return []proto.Prober{{
		Precedence: PrecedenceChannelData,
		Pass1:      true,
		// Channel numbers 0x4000-0x4FFF put the first byte in 0x40-0x4F.
		First:    func(b byte) bool { return b >= 0x40 && b <= 0x4f },
		Probe:    proto.ConsumeProbe(matchChannelData),
		Validate: matchChannelData,
	}}
}

// matchChannelData matches TURN ChannelData framing. The channel range
// is restricted to RFC 8656's 0x4000-0x4FFF: the wider RFC 5766 range
// would swallow FaceTime's 0x6000 proprietary header, which the paper
// classifies as proprietary (§5.3).
func matchChannelData(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if len(b) < 4 {
		return proto.Message{}, false
	}
	// TURN ChannelData only ever flows on a socket that previously
	// carried the STUN allocation handshake (RFC 8656 §12). In
	// stream-validated mode, require prior STUN on the stream; this
	// rejects channel-range byte windows inside proprietary payloads.
	if st.ValidatedSSRC != nil && !st.SawSTUN {
		return proto.Message{}, false
	}
	ch := uint16(b[0])<<8 | uint16(b[1])
	if ch < stun.ChannelMin || ch > stun.ChannelMax8656 {
		return proto.Message{}, false
	}
	length := int(b[2])<<8 | int(b[3])
	// Real ChannelData frames carry at least a minimal protocol message
	// (an RTP header is 12 bytes); tiny declared lengths are counter or
	// flag bytes of proprietary payloads that happen to sit in the
	// channel range.
	if length < 12 {
		return proto.Message{}, false
	}
	total := 4 + length
	if total > len(b) {
		return proto.Message{}, false
	}
	// Allow up to 3 bytes of padding after the frame; more implies the
	// length field is not a real ChannelData length.
	if len(b)-total > 3 {
		return proto.Message{}, false
	}
	cd, err := stun.DecodeChannelData(b)
	if err != nil {
		return proto.Message{}, false
	}
	return proto.Message{Protocol: proto.ChannelData, Length: cd.DecodedLen(), ChannelData: cd}, true
}

// session is the STUN family's per-stream criterion-5 state, shared by
// the STUN and ChannelData handlers (ChannelBind requests bind the
// channels ChannelData frames are judged against).
type session struct {
	txSeen      map[[12]byte]*txState
	prevReqTx   [12]byte
	havePrevReq bool
	seqTxRun    int
	allocDone   bool // an Allocate success has been observed
	allocReqs   int  // Allocate requests after completion
	boundChans  map[uint16]bool
}

type txState struct {
	requests  int
	responded bool
	firstSeen time.Time
}

func sess(s *proto.Session) *session {
	if v := s.Slot(proto.STUN); v != nil {
		return v.(*session)
	}
	st := &session{
		txSeen:     make(map[[12]byte]*txState),
		boundChans: make(map[uint16]bool),
	}
	s.SetSlot(proto.STUN, st)
	return st
}

// repeatThreshold is how many same-transaction requests without any
// response constitute a semantic violation (FaceTime retransmits its
// modified Binding Requests once per second for a minute; genuine STUN
// retransmission uses exponential backoff and stops at Rc=7).
const repeatThreshold = 3

// allocPingPongThreshold is how many post-completion Allocate requests
// on one stream mark the Allocate-as-connectivity-check pattern.
const allocPingPongThreshold = 2

func stunTypeKey(t stun.MessageType) proto.TypeKey {
	return proto.TypeKey{Protocol: proto.STUN, Label: fmt.Sprintf("0x%04x", uint16(t))}
}

// Comply applies the five criteria to a STUN/TURN message.
func (stunHandler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	msg := m.STUN
	st := sess(s)
	c := proto.Checked{
		Protocol:  proto.STUN,
		Type:      stunTypeKey(msg.Type),
		Bytes:     m.Length,
		Timestamp: ts,
	}
	st.trackTransaction(msg, ts)
	st.trackChannelBind(msg)
	c.Verdict = st.stunVerdict(msg, ts)
	return append(dst, c)
}

// trackTransaction records request/response pairing state before
// judging, so responses unblock their requests regardless of order of
// evaluation within a datagram.
func (st *session) trackTransaction(msg *stun.Message, ts time.Time) {
	tx, ok := st.txSeen[msg.TransactionID]
	if !ok {
		tx = &txState{firstSeen: ts}
		st.txSeen[msg.TransactionID] = tx
	}
	switch msg.Type.Class() {
	case stun.ClassRequest:
		tx.requests++
	case stun.ClassSuccess, stun.ClassError:
		tx.responded = true
	}
	if msg.Type == stun.TypeAllocateSuccess {
		st.allocDone = true
	}
	if msg.Type == stun.TypeAllocateRequest && st.allocDone {
		st.allocReqs++
	}
}

// trackChannelBind records channels bound on this stream for the
// ChannelData semantic check.
func (st *session) trackChannelBind(msg *stun.Message) {
	if msg.Type != stun.TypeChannelBindRequest {
		return
	}
	if a := msg.Get(stun.AttrChannelNumber); a != nil && len(a.Value) == 4 {
		ch, err := stun.DecodeChannelNumber(a.Value)
		if err == nil {
			st.boundChans[ch] = true
		}
	}
}

func (st *session) stunVerdict(msg *stun.Message, ts time.Time) proto.Verdict {
	// Criterion 1: message type defined in any published revision.
	if _, defined := stun.DefinedMessageType(msg.Type); !defined {
		return proto.Fail(proto.CritMessageType, "message type %v is not defined in any STUN/TURN specification", msg.Type)
	}

	// Criterion 2: header field validity. The magic cookie (or RFC 3489
	// classic form) is structurally established by the DPI; here we
	// check the transaction ID is neither degenerate nor sequential
	// (the paper's example: "a Transaction ID that appears sequential
	// rather than randomly generated").
	if msg.TransactionID == ([12]byte{}) {
		return proto.Fail(proto.CritHeader, "all-zero transaction ID is not a valid random identifier")
	}
	if msg.Type.Class() == stun.ClassRequest {
		if st.havePrevReq && msg.TransactionID == txidSuccessor(st.prevReqTx) {
			st.seqTxRun++
		} else if msg.TransactionID != st.prevReqTx {
			st.seqTxRun = 0
		}
		st.prevReqTx = msg.TransactionID
		st.havePrevReq = true
		if st.seqTxRun >= 2 {
			return proto.Fail(proto.CritHeader, "transaction IDs increase sequentially rather than being randomly generated")
		}
	}

	// Criterion 3: every attribute type must be defined.
	for _, a := range msg.Attributes {
		if _, defined := stun.DefinedAttr(a.Type); !defined {
			return proto.Fail(proto.CritAttrType, "attribute %v is not defined in any STUN/TURN specification", a.Type)
		}
	}

	// Criterion 4: attribute values and placement.
	for _, a := range msg.Attributes {
		if v := checkAttrValue(msg, a); !v.Compliant {
			return v
		}
	}

	// Criterion 5: syntax and semantic integrity.
	return st.stunSemantics(msg, ts)
}

// checkAttrValue validates a defined attribute's value shape and its
// placement in this message type.
func checkAttrValue(msg *stun.Message, a stun.Attribute) proto.Verdict {
	if !stun.AttrLenValid(a.Type, len(a.Value)) {
		return proto.Fail(proto.CritAttrValue, "attribute %v has invalid length %d", a.Type, len(a.Value))
	}
	if stun.AddressBearing(a.Type) {
		if len(a.Value) < 4 {
			return proto.Fail(proto.CritAttrValue, "address attribute %v too short", a.Type)
		}
		fam := a.Value[1]
		switch fam {
		case stun.FamilyIPv4:
			if len(a.Value) != 8 {
				return proto.Fail(proto.CritAttrValue, "attribute %v declares IPv4 but is %d bytes", a.Type, len(a.Value))
			}
		case stun.FamilyIPv6:
			if len(a.Value) != 20 {
				return proto.Fail(proto.CritAttrValue, "attribute %v declares IPv6 but is %d bytes", a.Type, len(a.Value))
			}
		default:
			// The FaceTime ALTERNATE-SERVER case: family 0x00.
			return proto.Fail(proto.CritAttrValue, "attribute %v has invalid address family %#02x", a.Type, fam)
		}
	}
	if a.Type == stun.AttrErrorCode && len(a.Value) >= 4 {
		class := a.Value[2]
		number := a.Value[3]
		if class < 3 || class > 6 || number > 99 {
			return proto.Fail(proto.CritAttrValue, "ERROR-CODE class %d number %d out of range", class, number)
		}
	}
	if a.Type == stun.AttrChannelNumber && len(a.Value) == 4 {
		ch := uint16(a.Value[0])<<8 | uint16(a.Value[1])
		if ch < stun.ChannelMin || ch > stun.ChannelMax5766 {
			// The FaceTime Data-indication case carries 0x0000 here.
			return proto.Fail(proto.CritAttrValue, "CHANNEL-NUMBER value %#04x outside 0x4000-0x7FFF", ch)
		}
	}
	// Placement rules.
	cls := msg.Type.Class()
	if (cls == stun.ClassSuccess || cls == stun.ClassError) && stun.RequestOnly(a.Type) {
		return proto.Fail(proto.CritAttrValue, "request-only attribute %v present in a %v", a.Type, cls)
	}
	if msg.Type == stun.TypeDataIndication && !stun.AllowedInDataIndication(a.Type) {
		return proto.Fail(proto.CritAttrValue, "attribute %v is not permitted in a Data indication", a.Type)
	}
	return proto.Ok()
}

// txidSuccessor returns id incremented by one as a 96-bit big-endian
// integer.
func txidSuccessor(id [12]byte) [12]byte {
	for i := len(id) - 1; i >= 0; i-- {
		id[i]++
		if id[i] != 0 {
			break
		}
	}
	return id
}

// stunSemantics applies the cross-message criterion-5 rules.
func (st *session) stunSemantics(msg *stun.Message, ts time.Time) proto.Verdict {
	tx := st.txSeen[msg.TransactionID]
	if msg.Type.Class() == stun.ClassRequest && tx != nil {
		// Repeated identical-transaction requests with no response ever
		// observed: FaceTime's keepalive-via-Binding-Request pattern.
		// Genuine retransmission backs off and stops; a steady stream of
		// repeats past the threshold with zero responses is repurposing.
		if tx.requests > repeatThreshold && !tx.responded {
			return proto.Fail(proto.CritSemantics, "request repeated %d times with transaction ID %x and no response; Binding/Allocate requests are not keepalives", tx.requests, msg.TransactionID[:4])
		}
	}
	if msg.Type == stun.TypeAllocateRequest && st.allocReqs > allocPingPongThreshold {
		// The Google Meet case: periodic Allocate requests after the
		// allocation already succeeded act as connectivity checks,
		// which Allocate is not intended for (paper §4.2, example 5).
		return proto.Fail(proto.CritSemantics, "repeated Allocate requests after successful allocation form a connectivity-check ping-pong")
	}
	return proto.Ok()
}

// Comply validates a TURN ChannelData frame.
func (channelDataHandler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	cd := m.ChannelData
	st := sess(s)
	c := proto.Checked{
		Protocol:  proto.ChannelData,
		Type:      proto.TypeKey{Protocol: proto.STUN, Label: "ChannelData"},
		Bytes:     m.Length,
		Timestamp: ts,
	}
	switch {
	// Criterion 2: channel number range (the framing itself guarantees
	// 0x4000-0x7FFF; RFC 8656 narrows to 0x4000-0x4FFF but RFC 5766
	// allowed the full range, and the paper accepts any published
	// revision).
	case cd.ChannelNumber < stun.ChannelMin || cd.ChannelNumber > stun.ChannelMax5766:
		c.Verdict = proto.Fail(proto.CritHeader, "channel number %#04x outside any published range", cd.ChannelNumber)
	// Criterion 5: data on a channel never bound with ChannelBind on
	// this stream repurposes the framing (the FaceTime case).
	case !st.boundChans[cd.ChannelNumber]:
		c.Verdict = proto.Fail(proto.CritSemantics, "ChannelData on channel %#04x with no prior ChannelBind on this stream", cd.ChannelNumber)
	default:
		c.Verdict = proto.Ok()
	}
	return append(dst, c)
}
