package appsim

import (
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// Background noise reproduces the unrelated traffic classes the paper's
// two-stage filter removes (§3.2): OS push-notification keepalives with
// NAT-rebound source ports, TLS flows to known non-RTC domains, local
// network management chatter, well-known-port services, and long-lived
// update streams. Each class is crafted to be caught by a specific
// filter stage, and one class (short-lived in-window TLS with a
// blocklisted SNI) deliberately evades stage 1 to exercise stage 2.

// NonRTCDomains is the SNI blocklist derived from the paper's 7.5 hours
// of idle-phone traffic (§3.2.2, examples given in the paper).
var NonRTCDomains = []string{
	"oauth2.googleapis.com",
	"web.facebook.com",
	"api.apple-cloudkit.com",
	"mesu.apple.com",
	"adservice.example-tracker.com",
	"itunes.apple.com",
}

// BackgroundConfig parameterizes the noise generator.
type BackgroundConfig struct {
	Seed uint64
	// PreStart..PostEnd is the full capture window; CallStart..CallEnd
	// is the annotated call window inside it.
	PreStart, CallStart, CallEnd, PostEnd time.Time
	// Device is the phone's address; LANPeer is another device on the
	// same network generating discovery chatter.
	Device  netip.Addr
	LANPeer netip.Addr
	// Bulk approximates how many MTU-sized TCP download segments of
	// unrelated bulk transfer (OS updates, cloud sync) to spread across
	// the capture. Zero disables the component. Bulk flows span both
	// call boundaries, so the timespan filter removes them.
	Bulk int
}

// pushTCP appends a TCP segment event.
func pushTCP(events *[]Dgram, at time.Time, src, dst netip.AddrPort, flags uint8, payload []byte) {
	*events = append(*events, Dgram{At: at, Src: src, Dst: dst, Proto: layers.IPProtocolTCP, Payload: payload, TCPFlags: flags})
}

func pushUDP(events *[]Dgram, at time.Time, src, dst netip.AddrPort, payload []byte) {
	*events = append(*events, Dgram{At: at, Src: src, Dst: dst, Proto: layers.IPProtocolUDP, Payload: payload})
}

// GenerateBackground produces the unrelated-traffic events for one
// experiment capture.
func GenerateBackground(cfg BackgroundConfig) []Dgram {
	rng := ice.NewRand(cfg.Seed ^ 0xbadc0ffee)
	var events []Dgram

	dns := netip.AddrPortFrom(netip.MustParseAddr("192.168.1.1"), 53)
	apns := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.100"), 5223)
	updateSrv := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.101"), 443)
	ssdp := netip.AddrPortFrom(netip.MustParseAddr("239.255.255.250"), 1900)

	total := cfg.PostEnd.Sub(cfg.PreStart)

	// 1. DNS queries scattered across the whole capture (port filter;
	// the in-window ones are what stage 2 must catch).
	for i := 0; i < 12; i++ {
		at := cfg.PreStart.Add(time.Duration(i) * total / 12)
		q := append([]byte{byte(i), 0x01, 0x01, 0x00, 0x00, 0x01}, rng.Bytes(18)...)
		src := netip.AddrPortFrom(cfg.Device, uint16(52000+i))
		pushUDP(&events, at, src, dns, q)
		pushUDP(&events, at.Add(18*time.Millisecond), dns, src, append(q, rng.Bytes(16)...))
	}

	// 2. APNS-style persistent connection: fixed destination 3-tuple,
	// but the source port rebinds mid-call, splitting it into multiple
	// streams. The pre/post streams are caught by stage 1; the
	// call-window stream survives stage 1 and is removed by the 3-tuple
	// timing filter.
	srcPorts := []uint16{49800, 49801, 49802}
	margin := cfg.CallEnd.Sub(cfg.CallStart) / 4
	if margin > 5*time.Second {
		margin = 5 * time.Second
	}
	phases := []struct{ from, to time.Time }{
		{cfg.PreStart, cfg.CallStart.Add(-2 * time.Second)},
		{cfg.CallStart.Add(margin), cfg.CallEnd.Add(-margin)},
		{cfg.CallEnd.Add(2 * time.Second), cfg.PostEnd},
	}
	for pi, ph := range phases {
		if !ph.to.After(ph.from) {
			continue
		}
		src := netip.AddrPortFrom(cfg.Device, srcPorts[pi])
		n := 4
		for i := 0; i < n; i++ {
			at := ph.from.Add(time.Duration(i) * ph.to.Sub(ph.from) / time.Duration(n))
			pushTCP(&events, at, src, apns, layers.TCPPsh|layers.TCPAck, rng.Bytes(40))
			pushTCP(&events, at.Add(30*time.Millisecond), apns, src, layers.TCPAck, nil)
		}
	}

	// 3. Short-lived TLS flows inside the call window with blocklisted
	// SNIs (evade stage 1; removed by the SNI filter).
	for i, domain := range NonRTCDomains {
		if cfg.CallEnd.Sub(cfg.CallStart) < 4*time.Second {
			break
		}
		at := cfg.CallStart.Add(3*time.Second + time.Duration(i)*time.Second/2)
		src := netip.AddrPortFrom(cfg.Device, uint16(51000+i))
		dst := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.110"), 443)
		var random [32]byte
		copy(random[:], rng.Bytes(32))
		pushTCP(&events, at, src, dst, layers.TCPSyn, nil)
		pushTCP(&events, at.Add(10*time.Millisecond), dst, src, layers.TCPSyn|layers.TCPAck, nil)
		pushTCP(&events, at.Add(20*time.Millisecond), src, dst, layers.TCPPsh|layers.TCPAck, tlsinspect.BuildClientHello(domain, random))
		pushTCP(&events, at.Add(60*time.Millisecond), dst, src, layers.TCPPsh|layers.TCPAck, rng.Bytes(120))
		pushTCP(&events, at.Add(90*time.Millisecond), src, dst, layers.TCPFin|layers.TCPAck, nil)
	}

	// 4. Well-known-port services inside the call window (port filter):
	// SSDP and mDNS.
	if cfg.CallEnd.Sub(cfg.CallStart) >= 4*time.Second {
		mdns := netip.AddrPortFrom(netip.MustParseAddr("224.0.0.251"), 5353)
		for i := 0; i < 4; i++ {
			at := cfg.CallStart.Add(time.Duration(i+1) * cfg.CallEnd.Sub(cfg.CallStart) / 6)
			pushUDP(&events, at, netip.AddrPortFrom(cfg.Device, 1900), ssdp, []byte("M-SEARCH * HTTP/1.1\r\n"))
			pushUDP(&events, at.Add(100*time.Millisecond), netip.AddrPortFrom(cfg.LANPeer, 5353), mdns, rng.Bytes(60))
		}
	}

	// 5. LAN discovery between private devices, present in the pre-call
	// phase and inside the call window (local-IP filter: the pair also
	// appears pre-call, distinguishing it from legitimate P2P media).
	// The in-window chatter deliberately uses fresh ports so it forms a
	// new stream that evades both the timespan and 3-tuple filters and
	// must be caught by the local-IP rule (the address *pair* appears
	// pre-call even though the 5-tuple does not).
	pushUDP(&events, cfg.PreStart.Add(5*time.Second),
		netip.AddrPortFrom(cfg.LANPeer, 49500), netip.AddrPortFrom(cfg.Device, 49501), rng.Bytes(32))
	if cfg.CallEnd.Sub(cfg.CallStart) >= 4*time.Second {
		pushUDP(&events, cfg.CallStart.Add(2500*time.Millisecond),
			netip.AddrPortFrom(cfg.LANPeer, 49502), netip.AddrPortFrom(cfg.Device, 49503), rng.Bytes(32))
	}
	// IPv6 link-local chatter with the same pre-call signature.
	ll1 := netip.MustParseAddr("fe80::1")
	ll2 := netip.MustParseAddr("fe80::2")
	pushUDP(&events, cfg.PreStart.Add(8*time.Second),
		netip.AddrPortFrom(ll1, 49600), netip.AddrPortFrom(ll2, 49601), rng.Bytes(48))
	if cfg.CallEnd.Sub(cfg.CallStart) >= 4*time.Second {
		pushUDP(&events, cfg.CallStart.Add(3200*time.Millisecond),
			netip.AddrPortFrom(ll1, 49602), netip.AddrPortFrom(ll2, 49603), rng.Bytes(48))
	}

	// 6. A long-lived OS-update TCP stream spanning the entire capture
	// (stage 1: spans both call boundaries).
	upSrc := netip.AddrPortFrom(cfg.Device, 50900)
	n := 10
	for i := 0; i < n; i++ {
		at := cfg.PreStart.Add(time.Duration(i) * total / time.Duration(n))
		pushTCP(&events, at, upSrc, updateSrv, layers.TCPPsh|layers.TCPAck, rng.Bytes(800))
		pushTCP(&events, at.Add(25*time.Millisecond), updateSrv, upSrc, layers.TCPAck, rng.Bytes(400))
	}

	// 7. Bulk HTTPS downloads. In real captures, unrelated transfers
	// like these dominate the file's byte count; cfg.Bulk scales the
	// component so large-capture scenarios can be simulated. Each flow
	// spans the whole capture, so the timespan filter removes it.
	if cfg.Bulk > 0 {
		flows := cfg.Bulk/400 + 1
		if flows > 8 {
			flows = 8
		}
		per := cfg.Bulk / flows
		for f := 0; f < flows; f++ {
			src := netip.AddrPortFrom(cfg.Device, uint16(50910+f))
			dst := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.120"), uint16(443))
			pushTCP(&events, cfg.PreStart.Add(time.Duration(f)*time.Millisecond), src, dst, layers.TCPSyn, nil)
			for i := 0; i < per; i++ {
				at := cfg.PreStart.Add(time.Duration(f)*time.Millisecond +
					time.Duration(i)*total/time.Duration(per+1))
				pushTCP(&events, at, dst, src, layers.TCPPsh|layers.TCPAck, rng.Bytes(1200))
				if i%8 == 7 {
					pushTCP(&events, at.Add(4*time.Millisecond), src, dst, layers.TCPAck, nil)
				}
			}
		}
	}

	return events
}
