package metrics

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func promBody(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func wantLines(t *testing.T, body string, lines ...string) {
	t.Helper()
	for _, line := range lines {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("exposition missing line %q\n--- got ---\n%s", line, body)
		}
	}
}

func TestWritePromCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_fed_total").Add(12)
	r.Counter("verdicts_total", L("app", "Zoom")).Add(3)
	r.Counter("verdicts_total", L("app", "Discord")).Add(5)
	r.Gauge("shards").Set(4)
	body := promBody(t, r)
	wantLines(t, body,
		"# TYPE rtcc_frames_fed_total counter",
		"rtcc_frames_fed_total 12",
		"# TYPE rtcc_verdicts_total counter",
		`rtcc_verdicts_total{app="Discord"} 5`,
		`rtcc_verdicts_total{app="Zoom"} 3`,
		"# TYPE rtcc_shards gauge",
		"rtcc_shards 4",
	)
	// One TYPE line per family even with several label sets.
	if got := strings.Count(body, "# TYPE rtcc_verdicts_total "); got != 1 {
		t.Fatalf("verdicts_total TYPE lines = %d, want 1", got)
	}
}

func TestWritePromDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("app", "Zoom")).Inc()
	r.Counter("a_total").Inc()
	r.Counter("b_total", L("app", "Discord")).Inc()
	first := promBody(t, r)
	for i := 0; i < 5; i++ {
		if again := promBody(t, r); again != first {
			t.Fatal("consecutive scrapes of an idle registry differ")
		}
	}
	if strings.Index(first, "rtcc_a_total") > strings.Index(first, "rtcc_b_total") {
		t.Fatal("families not sorted by name")
	}
	if strings.Index(first, `app="Discord"`) > strings.Index(first, `app="Zoom"`) {
		t.Fatal("samples not sorted by label set")
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.5)  // bucket le=1
	h.Observe(0.7)  // bucket le=1
	h.Observe(5)    // overflow -> +Inf only
	body := promBody(t, r)
	wantLines(t, body,
		"# TYPE rtcc_lat_seconds histogram",
		`rtcc_lat_seconds_bucket{le="0.1"} 1`,
		`rtcc_lat_seconds_bucket{le="1"} 3`,
		`rtcc_lat_seconds_bucket{le="+Inf"} 4`,
		"rtcc_lat_seconds_count 4",
	)
	if !strings.Contains(body, "rtcc_lat_seconds_sum 6.25") {
		t.Fatalf("missing/incorrect _sum line in:\n%s", body)
	}
}

func TestWritePromHistogramLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("epoch_seconds", []float64{1}, L("shard", "0")).Observe(0.5)
	body := promBody(t, r)
	wantLines(t, body,
		`rtcc_epoch_seconds_bucket{shard="0",le="1"} 1`,
		`rtcc_epoch_seconds_bucket{shard="0",le="+Inf"} 1`,
		`rtcc_epoch_seconds_count{shard="0"} 1`,
	)
}

func TestPromNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird.name-1", L("app", `va"l\ue`)).Inc()
	body := promBody(t, r)
	wantLines(t, body, `rtcc_weird_name_1{app="va\"l\\ue"} 1`)
}

func TestSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"frames_total", "frames_total"},
		{"1bad", "_1bad"},
		{"a.b-c", "a_b_c"},
	}
	for _, c := range cases {
		if got := sanitize(c.in, true); got != c.want {
			t.Errorf("sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMetricsHandlerPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_fed_total").Add(9)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	for _, format := range []string{"prom", "prometheus"} {
		resp, err := http.Get(ts.URL + "/metrics?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		code, body := resp.StatusCode, readAll(t, resp)
		if code != http.StatusOK {
			t.Fatalf("format=%s status %d", format, code)
		}
		if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
			t.Fatalf("format=%s content type %q", format, ct)
		}
		if !strings.Contains(body, "rtcc_frames_fed_total 9") {
			t.Fatalf("format=%s body:\n%s", format, body)
		}
	}

	// JSON stays the default and the explicit json format.
	for _, url := range []string{ts.URL + "/metrics", ts.URL + "/metrics?format=json"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
			t.Fatalf("%s content type %q", url, resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(body, `"frames_fed_total"`) {
			t.Fatalf("%s body:\n%s", url, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml status %d, want 400", resp.StatusCode)
	}
}
