package appsim

import realnetip "net/netip"

// mustAddr parses an address for tests.
func mustAddr(s string) realnetip.Addr { return realnetip.MustParseAddr(s) }
