package live

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// FuzzDecapsulate hammers the encapsulation decoder with arbitrary
// datagrams: it must never panic, and whenever it accepts an input the
// decoded fields must be exactly the ones on the wire.
func FuzzDecapsulate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RTCC"))
	f.Add([]byte("RTCC123456789012"))
	f.Add(Encapsulate(1, pcap.Packet{Timestamp: time.Unix(1700000000, 0).UTC(), Data: []byte{1, 2, 3}}))
	f.Add(Encapsulate(0xffffffff, pcap.Packet{Timestamp: time.Unix(0, 999000).UTC(), Data: make([]byte, 64)}))
	f.Fuzz(func(t *testing.T, b []byte) {
		seq, pkt, err := Decapsulate(b)
		if err != nil {
			return
		}
		if len(b) < headerLen || [4]byte(b[0:4]) != Magic {
			t.Fatalf("accepted datagram without a valid header")
		}
		if want := binary.BigEndian.Uint32(b[12:16]); seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
		if !bytes.Equal(pkt.Data, b[headerLen:]) {
			t.Fatalf("payload differs from wire bytes")
		}
		if pkt.OrigLen != len(b)-headerLen {
			t.Fatalf("OrigLen = %d, want %d", pkt.OrigLen, len(b)-headerLen)
		}
		// The timestamp must round-trip through the microsecond wire
		// encoding for any 64-bit value.
		if got := uint64(pkt.Timestamp.UnixMicro()); got != binary.BigEndian.Uint64(b[4:12]) {
			t.Fatalf("timestamp does not round-trip: %d != %d", got, binary.BigEndian.Uint64(b[4:12]))
		}
	})
}
