package bench

import (
	"bufio"
	"os"
	"runtime"
	"strings"
)

// Host identifies the machine a baseline was measured on. Benchmarks
// are only comparable between like hosts: the regression gate uses
// this record to demote cross-host comparisons to warnings instead of
// failing on hardware differences (satellite S1 of the sharded-ingest
// work, and a long-standing bench-check footgun).
type Host struct {
	// CPUModel is the CPU model string (from /proc/cpuinfo on Linux;
	// empty where unavailable).
	CPUModel string `json:"cpu_model,omitempty"`
	// NumCPU and GOMAXPROCS bound the parallelism the sharded
	// scenarios could use when the baseline was recorded.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	return Host{
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// Comparable reports whether baselines from h transfer to o: same CPU
// model and the same parallelism envelope. Go version differences are
// deliberately excluded — they warrant a warning, not gate demotion.
func (h Host) Comparable(o Host) bool {
	return h.CPUModel == o.CPUModel && h.NumCPU == o.NumCPU && h.GOMAXPROCS == o.GOMAXPROCS
}

// cpuModel best-effort reads the CPU model name; empty when the
// platform doesn't expose /proc/cpuinfo (non-Linux, sandboxes).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// File is the BENCH_hotpath.json format: the host the numbers were
// measured on plus one Result per scenario. rtcbench still reads the
// historical bare-array format (host treated as unknown).
type File struct {
	Host    Host     `json:"host"`
	Results []Result `json:"results"`
}
