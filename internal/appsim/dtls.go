package appsim

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// generateDTLSHandshake emits a DTLS 1.2 key-establishment handshake
// with the use_srtp extension (RFC 5764) on the call's primary media
// 5-tuple, ahead of the media itself — the DTLS-SRTP pattern WebRTC
// stacks use. It is app-agnostic: it finds the earliest caller-sourced
// UDP media datagram the app simulator produced and schedules the
// handshake flights between call start and that first packet, so every
// app emits the same standards-form handshake when the knob is on.
func (e *env) generateDTLSHandshake() {
	var first *Dgram
	for i := range e.events {
		ev := &e.events[i]
		if ev.Proto != layers.IPProtocolUDP || ev.Src.Addr() != e.callerLocal {
			continue
		}
		if first == nil || ev.At.Before(first.At) {
			first = ev
		}
	}
	if first == nil {
		return
	}
	src, dst := first.Src, first.Dst

	// Pack the flights into the gap before the first media packet
	// (clamped so a media stream starting immediately still leaves
	// room; the events are re-sorted on finish).
	gap := first.At.Sub(e.cfg.Start)
	if gap <= 0 {
		gap = time.Millisecond
	}
	step := gap / 8
	if step > 15*time.Millisecond {
		step = 15 * time.Millisecond
	}
	at := e.cfg.Start
	var seq [2]uint64 // per-direction record sequence numbers
	send := func(fromCaller bool, epoch uint16, contentType uint8, fragment []byte) {
		dir := 0
		s, d := src, dst
		if !fromCaller {
			dir, s, d = 1, dst, src
		}
		rec := tlsinspect.BuildDTLSRecord(contentType, tlsinspect.VersionDTLS12, epoch, seq[dir], fragment)
		seq[dir]++
		e.push(at, s, d, rec)
		at = at.Add(step)
	}
	hs := func(fromCaller bool, msgType uint8, messageSeq uint16, body []byte) {
		send(fromCaller, 0, tlsinspect.DTLSTypeHandshake,
			tlsinspect.BuildDTLSHandshake(msgType, messageSeq, body))
	}

	var clientRandom, serverRandom [32]byte
	copy(clientRandom[:], e.rng.Bytes(32))
	copy(serverRandom[:], e.rng.Bytes(32))
	cookie := e.rng.Bytes(16)

	// Flight 1-2: ClientHello, stateless cookie round trip.
	hs(true, tlsinspect.DTLSHandshakeClientHello, 0,
		tlsinspect.BuildDTLSClientHelloBody(clientRandom, nil))
	hs(false, tlsinspect.DTLSHandshakeHelloVerifyRequest, 0, buildHelloVerifyRequest(cookie))
	hs(true, tlsinspect.DTLSHandshakeClientHello, 1,
		tlsinspect.BuildDTLSClientHelloBody(clientRandom, cookie))
	// Flight 4: server parameters.
	hs(false, tlsinspect.DTLSHandshakeServerHello, 1,
		tlsinspect.BuildDTLSServerHelloBody(serverRandom))
	hs(false, tlsinspect.DTLSHandshakeServerHelloDone, 2, nil)
	// Flight 5-6: key exchange, cipher switch, encrypted Finished.
	hs(true, tlsinspect.DTLSHandshakeClientKeyExchange, 2, e.rng.Bytes(33))
	send(true, 0, tlsinspect.DTLSTypeChangeCipherSpec, []byte{1})
	send(true, 1, tlsinspect.DTLSTypeHandshake, e.rng.Bytes(40))
	send(false, 0, tlsinspect.DTLSTypeChangeCipherSpec, []byte{1})
	send(false, 1, tlsinspect.DTLSTypeHandshake, e.rng.Bytes(40))
}

// buildHelloVerifyRequest encodes a HelloVerifyRequest body: server
// version then an opaque cookie (RFC 6347 §4.2.1).
func buildHelloVerifyRequest(cookie []byte) []byte {
	body := make([]byte, 0, 3+len(cookie))
	body = append(body, byte(tlsinspect.VersionDTLS12>>8), byte(tlsinspect.VersionDTLS12&0xff))
	body = append(body, byte(len(cookie)))
	return append(body, cookie...)
}
