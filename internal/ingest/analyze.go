package ingest

import (
	"io"
	"time"

	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// AnalyzeCapture runs the full pipeline over one in-memory capture
// through the sharded tier — the sharded sibling of core.AnalyzeCapture,
// with the same analyzer configuration (frames referenced in place,
// payloads retained) so the two are byte-identical on any input.
func AnalyzeCapture(in core.CaptureInput, opts core.Options, cfg Config) (*core.CaptureAnalysis, error) {
	sa, err := New(core.AnalyzerConfig{
		Label:        in.Label,
		LinkType:     in.LinkType,
		CallStart:    in.CallStart,
		CallEnd:      in.CallEnd,
		KeepPayloads: true,
		FramesStable: true,
	}, opts, cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range in.Packets {
		if err := sa.Feed(p.Timestamp, p.Data); err != nil {
			return nil, err
		}
	}
	return sa.Close()
}

// AnalyzePCAP analyzes a capture stream through the sharded tier — the
// sharded sibling of core.AnalyzePCAP, built on the same StreamCapture
// reading loop with a ShardedAnalyzer as the sink. The analyzer
// configuration matches core.AnalyzePCAP exactly (window defaulting,
// pooled payload buffers unless KeepPayloads), which is what makes the
// two paths byte-identical on any capture.
func AnalyzePCAP(r io.Reader, label string, callStart, callEnd time.Time, opts core.Options, cfg Config) (*core.CaptureAnalysis, error) {
	acfg := core.AnalyzerConfig{
		Label:               label,
		CallStart:           callStart,
		CallEnd:             callEnd,
		DefaultWindowToSpan: true,
		KeepPayloads:        opts.KeepPayloads,
		EvictIdle:           opts.EvictIdle,
	}
	if !opts.KeepPayloads {
		acfg.Pool = bufpool.Global()
	}
	return core.StreamCapture(r, func(lt pcap.LinkType) (core.FrameSink, error) {
		acfg.LinkType = lt
		return New(acfg, opts, cfg)
	})
}
