package compliance

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/ice"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/proto/rtpdrv"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

var t0 = time.Unix(1700000000, 0).UTC()

func newSession() *Session { return NewChecker().NewSession() }

func stunMsg(m *stun.Message) dpi.Message {
	raw := m.Encode()
	return dpi.Message{Protocol: dpi.ProtoSTUN, Length: len(raw), STUN: m}
}

func checkOne(t *testing.T, s *Session, m dpi.Message) Checked {
	t.Helper()
	out := s.Check(m, t0)
	if len(out) != 1 {
		t.Fatalf("Check returned %d results", len(out))
	}
	return out[0]
}

func wantFail(t *testing.T, c Checked, crit Criterion, substr string) {
	t.Helper()
	if c.Verdict.Compliant {
		t.Fatalf("message judged compliant, want failure at %v", crit)
	}
	if c.Verdict.Failed != crit {
		t.Errorf("failed criterion = %v, want %v (reason %q)", c.Verdict.Failed, crit, c.Verdict.Reason)
	}
	if substr != "" && !strings.Contains(c.Verdict.Reason, substr) {
		t.Errorf("reason %q does not mention %q", c.Verdict.Reason, substr)
	}
}

func TestCompliantICEExchange(t *testing.T) {
	r := ice.NewRand(1)
	local := &ice.Agent{Ufrag: "l", Password: "localpasswordlocalpass", Controlling: true, TieBreaker: 7}
	remote := &ice.Agent{Ufrag: "r", Password: "remotepasswordremote"}
	req := local.BindingRequest(r, remote, 100, false)
	resp := remote.BindingResponse(req, netip.MustParseAddrPort("203.0.113.1:4000"))

	s := newSession()
	if c := checkOne(t, s, stunMsg(req)); !c.Verdict.Compliant {
		t.Errorf("binding request non-compliant: %s", c.Verdict.Reason)
	}
	if c := checkOne(t, s, stunMsg(resp)); !c.Verdict.Compliant {
		t.Errorf("binding response non-compliant: %s", c.Verdict.Reason)
	}
}

func TestUndefinedMessageType(t *testing.T) {
	m := &stun.Message{Type: stun.MessageType(0x0801), TransactionID: [12]byte{1}}
	m.Add(stun.AttrType(0x4003), []byte{0xff})
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritMessageType, "0x0801")
	if c.Type.Label != "0x0801" {
		t.Errorf("type label = %q", c.Type.Label)
	}
}

func TestAllZeroTransactionID(t *testing.T) {
	m := &stun.Message{Type: stun.TypeBindingRequest}
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritHeader, "transaction ID")
}

func TestUndefinedAttribute(t *testing.T) {
	// The Zoom case: Binding Request with undefined attribute 0x0101.
	m := &stun.Message{Type: stun.TypeBindingRequest, Classic: true, CookieWord: 0xabc, TransactionID: [12]byte{9}}
	m.Add(stun.AttrType(0x0101), []byte(strings.Repeat("1234567890", 2)))
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritAttrType, "0x0101")
}

func TestBadAddressFamily(t *testing.T) {
	// The FaceTime case: ALTERNATE-SERVER with family 0x00.
	m := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: [12]byte{2}}
	m.Add(stun.AttrAlternateServer, []byte{0, 0x00, 0x0d, 0x96, 1, 2, 3, 4})
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritAttrValue, "address family")
}

func TestWrongFixedAttrLength(t *testing.T) {
	m := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: [12]byte{3}}
	m.Add(stun.AttrReservationToken, []byte{1, 2, 3}) // must be 8
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritAttrValue, "invalid length")
}

func TestPriorityInSuccessResponse(t *testing.T) {
	m := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: [12]byte{4}}
	m.Add(stun.AttrPriority, []byte{0, 0, 0, 1})
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritAttrValue, "request-only")
}

func TestChannelNumberInDataIndication(t *testing.T) {
	// The FaceTime case: Data indication carrying CHANNEL-NUMBER with
	// value 0x00000000.
	r := ice.NewRand(2)
	m := ice.DataIndication(r, netip.MustParseAddrPort("10.0.0.1:5000"), []byte("d"), []stun.Attribute{
		{Type: stun.AttrChannelNumber, Value: []byte{0, 0, 0, 0}},
	})
	c := checkOne(t, newSession(), stunMsg(m))
	// The zero channel number fails the value-range check first.
	wantFail(t, c, CritAttrValue, "CHANNEL-NUMBER")
}

func TestSpuriousAllowedValueChannelNumberInDataIndication(t *testing.T) {
	// Even a range-valid CHANNEL-NUMBER is not permitted in a Data
	// indication.
	r := ice.NewRand(3)
	m := ice.DataIndication(r, netip.MustParseAddrPort("10.0.0.1:5000"), []byte("d"), []stun.Attribute{
		{Type: stun.AttrChannelNumber, Value: []byte{0x40, 0x00, 0, 0}},
	})
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritAttrValue, "not permitted")
}

func TestPlainDataIndicationCompliant(t *testing.T) {
	r := ice.NewRand(4)
	m := ice.DataIndication(r, netip.MustParseAddrPort("10.0.0.1:5000"), []byte("d"), nil)
	c := checkOne(t, newSession(), stunMsg(m))
	if !c.Verdict.Compliant {
		t.Errorf("plain Data indication non-compliant: %s", c.Verdict.Reason)
	}
}

func TestRepeatedRequestWithoutResponse(t *testing.T) {
	// The FaceTime case: same transaction ID once per second, never
	// answered.
	s := newSession()
	id := [12]byte{0xfa, 0xce}
	var last Checked
	for i := 0; i < 6; i++ {
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
		last = checkOne(t, s, stunMsg(m))
	}
	wantFail(t, last, CritSemantics, "no response")
}

func TestRetransmissionWithResponseCompliant(t *testing.T) {
	// A request retransmitted a few times and then answered stays
	// compliant.
	s := newSession()
	id := [12]byte{0x33}
	for i := 0; i < 3; i++ {
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
		if c := checkOne(t, s, stunMsg(m)); !c.Verdict.Compliant {
			t.Fatalf("retransmission %d flagged: %s", i, c.Verdict.Reason)
		}
	}
	resp := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: id}
	resp.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(netip.MustParseAddrPort("1.2.3.4:5"), id))
	if c := checkOne(t, s, stunMsg(resp)); !c.Verdict.Compliant {
		t.Errorf("response flagged: %s", c.Verdict.Reason)
	}
	// Further requests on the answered transaction are fine.
	m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
	checkOne(t, s, stunMsg(m)) // 4th request...
	c := checkOne(t, s, stunMsg(m))
	_ = c // responded transactions never trip the repeat rule below
}

func TestAllocatePingPong(t *testing.T) {
	// The Google Meet case: periodic Allocate requests after the
	// allocation succeeded.
	r := ice.NewRand(5)
	s := newSession()
	creds := ice.TURNCredentials{Username: "u", Realm: "rlm", Nonce: "n", Password: "p"}
	seq := ice.TURNAllocation(r, creds,
		netip.MustParseAddrPort("203.0.113.50:49152"),
		netip.MustParseAddrPort("198.51.100.1:40000"),
		netip.MustParseAddrPort("198.51.100.2:40001"), 0x4000)
	for _, ex := range seq {
		if c := checkOne(t, s, stunMsg(ex.Msg)); !c.Verdict.Compliant {
			t.Fatalf("handshake %v flagged: %s", ex.Msg.Type, c.Verdict.Reason)
		}
	}
	// Now the ping-pong: repeated fresh Allocate requests.
	var last Checked
	for i := 0; i < 5; i++ {
		m := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: r.TxID()}
		m.Add(stun.AttrRequestedTranspt, stun.EncodeRequestedTransport(17))
		last = checkOne(t, s, stunMsg(m))
	}
	wantFail(t, last, CritSemantics, "ping-pong")
}

func TestChannelDataSemantics(t *testing.T) {
	s := newSession()
	cdMsg := func(ch uint16) dpi.Message {
		cd := &stun.ChannelData{ChannelNumber: ch, Data: []byte("media")}
		return dpi.Message{Protocol: dpi.ProtoChannelData, Length: cd.DecodedLen(), ChannelData: cd}
	}
	// Unbound channel: the FaceTime case.
	c := checkOne(t, s, cdMsg(0x4010))
	wantFail(t, c, CritSemantics, "no prior ChannelBind")
	if c.Type.Label != "ChannelData" || c.Type.Protocol != dpi.ProtoSTUN {
		t.Errorf("type key = %+v", c.Type)
	}
	// Bind the channel, then ChannelData is compliant.
	bind := &stun.Message{Type: stun.TypeChannelBindRequest, TransactionID: [12]byte{1}}
	bind.Add(stun.AttrChannelNumber, stun.EncodeChannelNumber(0x4010))
	bind.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(netip.MustParseAddrPort("10.0.0.1:1"), [12]byte{1}))
	checkOne(t, s, stunMsg(bind))
	if c := checkOne(t, s, cdMsg(0x4010)); !c.Verdict.Compliant {
		t.Errorf("bound ChannelData flagged: %s", c.Verdict.Reason)
	}
}

func rtpMsg(p *rtp.Packet) dpi.Message {
	raw := p.Encode()
	return dpi.Message{Protocol: dpi.ProtoRTP, Length: len(raw), RTP: p}
}

func TestRTPCompliant(t *testing.T) {
	p := &rtp.Packet{PayloadType: 111, SequenceNumber: 1, Timestamp: 960, SSRC: 0xaa, Payload: []byte("x")}
	c := checkOne(t, newSession(), rtpMsg(p))
	if !c.Verdict.Compliant {
		t.Errorf("plain RTP flagged: %s", c.Verdict.Reason)
	}
	if c.Type.Label != "111" {
		t.Errorf("label = %q", c.Type.Label)
	}
}

func TestRTPWithCompliantExtension(t *testing.T) {
	p := &rtp.Packet{PayloadType: 96, SSRC: 1, Payload: []byte("x")}
	p.Extension = &rtp.Extension{Profile: rtp.ProfileOneByte, Elements: []rtp.ExtensionElement{{ID: 3, Payload: []byte{1, 2}}}}
	p.Encode()
	dec, err := rtp.Decode(p.Raw)
	if err != nil {
		t.Fatal(err)
	}
	c := checkOne(t, newSession(), rtpMsg(dec))
	if !c.Verdict.Compliant {
		t.Errorf("BEDE extension flagged: %s", c.Verdict.Reason)
	}
}

func TestRTPUndefinedExtensionProfile(t *testing.T) {
	// The FaceTime case: profile 0x8500.
	p := &rtp.Packet{PayloadType: 100, SSRC: 2, Payload: []byte("x")}
	p.Extension = &rtp.Extension{Profile: 0x8500, Data: []byte{1, 2, 3, 4}}
	p.Encode()
	dec, _ := rtp.Decode(p.Raw)
	c := checkOne(t, newSession(), rtpMsg(dec))
	wantFail(t, c, CritAttrType, "0x8500")
}

func TestRTPExtensionIDZeroWithPayload(t *testing.T) {
	// The Discord case: one-byte element ID 0 with a nonzero length.
	p := &rtp.Packet{PayloadType: 120, SSRC: 3, Payload: []byte("x")}
	p.Extension = &rtp.Extension{Profile: rtp.ProfileOneByte, Data: []byte{0x02, 0xaa, 0xbb, 0xcc}}
	p.Encode()
	dec, _ := rtp.Decode(p.Raw)
	c := checkOne(t, newSession(), rtpMsg(dec))
	wantFail(t, c, CritAttrType, "ID 0")
}

func TestRTPExtensionOverrun(t *testing.T) {
	p := &rtp.Packet{PayloadType: 96, SSRC: 4, Payload: []byte("x")}
	p.Extension = &rtp.Extension{Profile: rtp.ProfileOneByte, Data: []byte{0x5f, 1, 2, 3}} // declares 16 bytes
	p.Encode()
	dec, _ := rtp.Decode(p.Raw)
	c := checkOne(t, newSession(), rtpMsg(dec))
	wantFail(t, c, CritAttrValue, "overrun")
}

func rtcpMsg(raws ...[]byte) dpi.Message {
	comp := rtcp.Compound(raws...)
	pkts, trailing, err := rtcp.DecodeCompound(comp)
	if err != nil {
		panic(err)
	}
	return dpi.Message{Protocol: dpi.ProtoRTCP, Length: len(comp), RTCP: pkts, RTCPTrailing: trailing}
}

func validSR() []byte {
	return rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 0x11, Info: rtcp.SenderInfo{NTPTimestamp: 0xe000000000000001, RTPTimestamp: 1, PacketCount: 1, OctetCount: 1}})
}

func TestRTCPCompliantCompound(t *testing.T) {
	sdes := rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: 0x11, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "a@b"}}}}})
	out := newSession().Check(rtcpMsg(validSR(), sdes), t0)
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	for _, c := range out {
		if !c.Verdict.Compliant {
			t.Errorf("%v flagged: %s", c.Type, c.Verdict.Reason)
		}
	}
	if out[0].Type.Label != "200" || out[1].Type.Label != "202" {
		t.Errorf("labels = %q %q", out[0].Type.Label, out[1].Type.Label)
	}
}

func TestRTCPUndefinedType(t *testing.T) {
	raw := rtcp.EncodeRaw(rtcp.PacketType(210), 0, []byte{0, 0, 0, 1})
	c := checkOne(t, newSession(), rtcpMsg(raw))
	wantFail(t, c, CritMessageType, "210")
}

func TestRTCPProprietaryTrailer(t *testing.T) {
	// The Discord case: 3 trailing bytes (counter + direction).
	m := rtcpMsg(validSR())
	m.RTCPTrailing = []byte{0x00, 0x01, 0x80}
	m.Length += 3
	c := checkOne(t, newSession(), m)
	wantFail(t, c, CritSemantics, "undefined trailing bytes")
}

func TestSRTCPMissingAuthTag(t *testing.T) {
	// The Google Meet relay case: 4-byte trailer only.
	m := rtcpMsg(validSR())
	m.RTCPTrailing = []byte{0x80, 0, 0, 1}
	m.Length += 4
	c := checkOne(t, newSession(), m)
	wantFail(t, c, CritSemantics, "authentication tag")
}

func TestSRTCPFullTrailerCompliantAndMonotonic(t *testing.T) {
	s := newSession()
	mk := func(index uint32) dpi.Message {
		m := rtcpMsg(validSR())
		trailer := []byte{byte(0x80 | index>>24), byte(index >> 16), byte(index >> 8), byte(index)}
		trailer = append(trailer, make([]byte, srtp.AuthTagLen)...)
		m.RTCPTrailing = trailer
		m.Length += len(trailer)
		return m
	}
	if c := checkOne(t, s, mk(1)); !c.Verdict.Compliant {
		t.Fatalf("index 1 flagged: %s", c.Verdict.Reason)
	}
	if c := checkOne(t, s, mk(2)); !c.Verdict.Compliant {
		t.Fatalf("index 2 flagged: %s", c.Verdict.Reason)
	}
	// Regressing index violates criterion 5.
	c := checkOne(t, s, mk(2))
	wantFail(t, c, CritSemantics, "does not increase")
}

func TestRTCPBodyChecksSkippedWhenEncrypted(t *testing.T) {
	// An SR with zero NTP timestamp would fail plaintext body checks,
	// but with an SRTCP trailer the body is ciphertext and exempt.
	zeroSR := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 9})
	m := rtcpMsg(zeroSR)
	trailer := append([]byte{0x80, 0, 0, 1}, make([]byte, srtp.AuthTagLen)...)
	m.RTCPTrailing = trailer
	m.Length += len(trailer)
	c := checkOne(t, newSession(), m)
	if !c.Verdict.Compliant {
		t.Errorf("encrypted body judged: %s", c.Verdict.Reason)
	}
	// Without the trailer, the zero NTP timestamp fails criterion 4.
	c2 := checkOne(t, newSession(), rtcpMsg(zeroSR))
	wantFail(t, c2, CritAttrValue, "NTP")
}

func TestSDESUndefinedItemType(t *testing.T) {
	sdes := rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: 1, Items: []rtcp.SDESItem{{Type: 40, Text: "x"}}}}})
	c := checkOne(t, newSession(), rtcpMsg(sdes))
	wantFail(t, c, CritAttrType, "SDES item type 40")
}

func TestFeedbackFMTValidation(t *testing.T) {
	twcc, err := rtcp.EncodeTWCCFCI(rtcp.TWCCFeedback{
		BaseSequence: 1, PacketCount: 1,
		Statuses: []uint8{rtcp.TWCCSmallDelta}, DeltasUS: []int64{250},
	})
	if err != nil {
		t.Fatal(err)
	}
	good := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBTWCC, SenderSSRC: 1, MediaSSRC: 2, FCI: twcc})
	if c := checkOne(t, newSession(), rtcpMsg(good)); !c.Verdict.Compliant {
		t.Errorf("TWCC flagged: %s", c.Verdict.Reason)
	}
	bad := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: 9, SenderSSRC: 1, MediaSSRC: 2})
	c := checkOne(t, newSession(), rtcpMsg(bad))
	wantFail(t, c, CritAttrType, "FMT 9")
	badPS := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: 9, SenderSSRC: 1, MediaSSRC: 2})
	c2 := checkOne(t, newSession(), rtcpMsg(badPS))
	wantFail(t, c2, CritAttrType, "FMT 9")
}

func TestXRBlockTypes(t *testing.T) {
	good := rtcp.EncodeXR(&rtcp.XR{SSRC: 1, Blocks: []rtcp.XRBlock{{BlockType: 4, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}})
	if c := checkOne(t, newSession(), rtcpMsg(good)); !c.Verdict.Compliant {
		t.Errorf("XR RRT flagged: %s", c.Verdict.Reason)
	}
	bad := rtcp.EncodeXR(&rtcp.XR{SSRC: 1, Blocks: []rtcp.XRBlock{{BlockType: 99}}})
	c := checkOne(t, newSession(), rtcpMsg(bad))
	wantFail(t, c, CritAttrType, "XR block type 99")
}

func TestRTCPMalformedBody(t *testing.T) {
	// SR declaring a report block without room for it.
	raw := rtcp.EncodeRaw(rtcp.TypeSenderReport, 1, make([]byte, 24))
	c := checkOne(t, newSession(), rtcpMsg(raw))
	wantFail(t, c, CritHeader, "count/length")
}

func quicMsg(h *quicwire.Header, n int) dpi.Message {
	return dpi.Message{Protocol: dpi.ProtoQUIC, Length: n, QUIC: h}
}

func TestQUICCompliant(t *testing.T) {
	pkt := quicwire.BuildLong(quicwire.TypeInitial, quicwire.Version1, []byte{1, 2}, []byte{3}, nil, []byte{0})
	h, err := quicwire.ParseLong(pkt)
	if err != nil {
		t.Fatal(err)
	}
	c := checkOne(t, newSession(), quicMsg(h, len(pkt)))
	if !c.Verdict.Compliant {
		t.Errorf("Initial flagged: %s", c.Verdict.Reason)
	}
	if c.Type.Label != "long header Initial" {
		t.Errorf("label = %q", c.Type.Label)
	}
	short := &quicwire.Header{FixedBit: true, DCID: []byte{1, 2}}
	c2 := checkOne(t, newSession(), quicMsg(short, 30))
	if !c2.Verdict.Compliant || c2.Type.Label != "short header" {
		t.Errorf("short: %+v", c2)
	}
}

func TestQUICViolations(t *testing.T) {
	badVer := &quicwire.Header{Long: true, FixedBit: true, Version: 0xdead}
	c := checkOne(t, newSession(), quicMsg(badVer, 20))
	wantFail(t, c, CritHeader, "version")

	noFixed := &quicwire.Header{Long: true, Version: quicwire.Version1}
	c2 := checkOne(t, newSession(), quicMsg(noFixed, 20))
	wantFail(t, c2, CritHeader, "fixed bit")

	shortNoFixed := &quicwire.Header{}
	c3 := checkOne(t, newSession(), quicMsg(shortNoFixed, 20))
	wantFail(t, c3, CritHeader, "fixed bit")
}

func TestCriterionStrings(t *testing.T) {
	want := map[Criterion]string{
		CritNone:        "compliant",
		CritMessageType: "message type definition",
		CritHeader:      "header field validity",
		CritAttrType:    "attribute type validity",
		CritAttrValue:   "attribute value validity",
		CritSemantics:   "syntax and semantic integrity",
		Criterion(9):    "criterion 9",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestSequentialEvaluationStopsAtFirstFailure(t *testing.T) {
	// A message violating both criterion 1 (undefined type) and
	// criterion 3 (undefined attribute) reports only criterion 1.
	m := &stun.Message{Type: stun.MessageType(0x0800), TransactionID: [12]byte{1}}
	m.Add(stun.AttrType(0x4000), []byte{1})
	c := checkOne(t, newSession(), stunMsg(m))
	wantFail(t, c, CritMessageType, "")
}

func TestRTPSSRCRecordedOnChecker(t *testing.T) {
	ck := NewChecker()
	s := ck.NewSession()
	p := &rtp.Packet{PayloadType: 96, SSRC: 0x42, Payload: []byte("x")}
	s.Check(rtpMsg(p), t0)
	if !rtpdrv.ObservedSSRCs(ck.Proto())[0x42] {
		t.Error("SSRC not recorded on checker")
	}
}

func TestSequentialTransactionIDs(t *testing.T) {
	s := newSession()
	base := [12]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x10}
	var last Checked
	for i := 0; i < 4; i++ {
		id := base
		id[11] += byte(i)
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
		last = checkOne(t, s, stunMsg(m))
	}
	wantFail(t, last, CritHeader, "sequentially")
}

func TestSequentialTxIDCarryPropagates(t *testing.T) {
	s := newSession()
	ids := [][12]byte{
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff},
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0x00},
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0x01},
	}
	var last Checked
	for _, id := range ids {
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
		last = checkOne(t, s, stunMsg(m))
	}
	wantFail(t, last, CritHeader, "sequentially")
}

func TestRandomTransactionIDsNotFlagged(t *testing.T) {
	r := ice.NewRand(9)
	s := newSession()
	for i := 0; i < 20; i++ {
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: r.TxID()}
		if c := checkOne(t, s, stunMsg(m)); !c.Verdict.Compliant {
			t.Fatalf("random txid flagged: %s", c.Verdict.Reason)
		}
	}
	// Retransmissions (same txid) must not reset into false positives.
	id := r.TxID()
	for i := 0; i < 3; i++ {
		m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: id}
		if c := checkOne(t, s, stunMsg(m)); !c.Verdict.Compliant {
			t.Fatalf("retransmission flagged: %s", c.Verdict.Reason)
		}
	}
}

func TestFeedbackFCIValidation(t *testing.T) {
	// Valid TWCC passes.
	fci, err := rtcp.EncodeTWCCFCI(rtcp.TWCCFeedback{
		BaseSequence: 1, PacketCount: 2,
		Statuses: []uint8{rtcp.TWCCSmallDelta, rtcp.TWCCSmallDelta},
		DeltasUS: []int64{250, 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	good := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBTWCC, SenderSSRC: 1, MediaSSRC: 2, FCI: fci})
	if c := checkOne(t, newSession(), rtcpMsg(good)); !c.Verdict.Compliant {
		t.Errorf("valid TWCC flagged: %s", c.Verdict.Reason)
	}
	// Garbage TWCC FCI fails criterion 4.
	bad := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBTWCC, SenderSSRC: 1, MediaSSRC: 2, FCI: []byte{1, 2, 3}})
	wantFail(t, checkOne(t, newSession(), rtcpMsg(bad)), CritAttrValue, "transport-wide")

	// NACK with no FCI at all fails (a ragged FCI is undetectable for a
	// passive observer: the mandatory 32-bit padding re-aligns it).
	badNack := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBNack, SenderSSRC: 1, MediaSSRC: 2})
	wantFail(t, checkOne(t, newSession(), rtcpMsg(badNack)), CritAttrValue, "NACK")
	goodNack := rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBNack, SenderSSRC: 1, MediaSSRC: 2, FCI: rtcp.EncodeNackFCI([]rtcp.NackPair{{PacketID: 5}})})
	if c := checkOne(t, newSession(), rtcpMsg(goodNack)); !c.Verdict.Compliant {
		t.Errorf("valid NACK flagged: %s", c.Verdict.Reason)
	}

	// PLI with FCI bytes fails.
	badPLI := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBPLI, SenderSSRC: 1, MediaSSRC: 2, FCI: []byte{1, 2, 3, 4}})
	wantFail(t, checkOne(t, newSession(), rtcpMsg(badPLI)), CritAttrValue, "PLI")

	// FIR must be a multiple of 8.
	badFIR := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBFIR, SenderSSRC: 1, MediaSSRC: 2, FCI: []byte{1, 2, 3, 4}})
	wantFail(t, checkOne(t, newSession(), rtcpMsg(badFIR)), CritAttrValue, "FIR")
	goodFIR := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBFIR, SenderSSRC: 1, MediaSSRC: 2, FCI: make([]byte, 8)})
	if c := checkOne(t, newSession(), rtcpMsg(goodFIR)); !c.Verdict.Compliant {
		t.Errorf("valid FIR flagged: %s", c.Verdict.Reason)
	}

	// Malformed REMB fails; valid REMB passes; non-REMB AFB is free-form.
	rembFCI, err := rtcp.EncodeREMBFCI(rtcp.REMB{BitrateBPS: 500000, SSRCs: []uint32{7}})
	if err != nil {
		t.Fatal(err)
	}
	goodREMB := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBAFB, SenderSSRC: 1, FCI: rembFCI})
	if c := checkOne(t, newSession(), rtcpMsg(goodREMB)); !c.Verdict.Compliant {
		t.Errorf("valid REMB flagged: %s", c.Verdict.Reason)
	}
	badREMB := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBAFB, SenderSSRC: 1, FCI: []byte("REMB")})
	wantFail(t, checkOne(t, newSession(), rtcpMsg(badREMB)), CritAttrValue, "REMB")
	freeform := rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBAFB, SenderSSRC: 1, FCI: []byte("app-specific-bytes")})
	if c := checkOne(t, newSession(), rtcpMsg(freeform)); !c.Verdict.Compliant {
		t.Errorf("free-form AFB flagged: %s", c.Verdict.Reason)
	}
}
