package report

import (
	"strings"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// headerOf returns the first line of a rendered table body (the line
// after the title).
func headerOf(rendered string) string {
	lines := strings.Split(rendered, "\n")
	if len(lines) < 2 {
		return ""
	}
	return lines[1]
}

func TestActiveFamiliesStableOrder(t *testing.T) {
	g := NewAggregate()
	a := g.App("AppA")
	// Insert in scrambled order; columns must come out in registry
	// report order regardless.
	a.AddChecked(checked(dpi.ProtoQUIC, "short header", true, "", 10))
	a.AddChecked(checked(dpi.ProtoDTLS, "handshake ClientHello", true, "", 10))
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 10))
	a.AddChecked(checked(dpi.ProtoSTUN, "0x0001", true, "", 10))
	a.AddChecked(checked(dpi.ProtoRTCP, "200", true, "", 10))

	fams := g.ActiveFamilies()
	want := []dpi.Protocol{dpi.ProtoSTUN, dpi.ProtoRTP, dpi.ProtoRTCP, dpi.ProtoQUIC, dpi.ProtoDTLS}
	if len(fams) != len(want) {
		t.Fatalf("families = %v, want %v", fams, want)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Fatalf("families = %v, want %v", fams, want)
		}
	}
	header := headerOf(Table2(g))
	for _, pair := range [][2]string{
		{"STUN/TURN", "RTP"}, {"RTP", "RTCP"}, {"RTCP", "QUIC"}, {"QUIC", "DTLS"},
	} {
		if strings.Index(header, pair[0]) >= strings.Index(header, pair[1]) {
			t.Errorf("header order wrong (%s before %s expected): %q", pair[0], pair[1], header)
		}
	}
}

func TestDTLSRowsRenderWithoutRendererEdits(t *testing.T) {
	g := NewAggregate()
	a := g.App("AppA")
	a.AddChecked(checked(dpi.ProtoDTLS, "handshake ClientHello", true, "", 120))
	a.AddChecked(checked(dpi.ProtoDTLS, "alert", false, "bad level", 7))

	for name, out := range map[string]string{
		"table2":  Table2(g),
		"table3":  Table3(g),
		"figure4": Figure4(g),
		"figure5": Figure5(g),
	} {
		if !strings.Contains(out, "DTLS") {
			t.Errorf("%s missing DTLS column/row:\n%s", name, out)
		}
	}
	tt := TypeTables(g)
	if !strings.Contains(tt, "Observed DTLS message types") ||
		!strings.Contains(tt, "handshake ClientHello") || !strings.Contains(tt, "alert") {
		t.Errorf("type tables missing DTLS types:\n%s", tt)
	}
}

func TestUnregisteredFamilyRendersPlaceholder(t *testing.T) {
	g := NewAggregate()
	a := g.App("AppA")
	// A family ID with no registered handler (e.g. data from a newer
	// binary) must still render, under a stable placeholder name.
	a.AddChecked(checked(dpi.Protocol(9), "X", true, "", 5))
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 5))

	out := Table2(g)
	if !strings.Contains(out, "protocol 9") {
		t.Errorf("table2 dropped unregistered family:\n%s", out)
	}
	// Registered families order before the unregistered extras.
	header := headerOf(out)
	if strings.Index(header, "RTP") >= strings.Index(header, "protocol 9") {
		t.Errorf("unregistered family not sorted last: %q", header)
	}
}

func TestEmptyProtocolColumnsOmitted(t *testing.T) {
	g := NewAggregate()
	a := g.App("AppA")
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 10))

	for name, out := range map[string]string{
		"table2": Table2(g),
		"table3": Table3(g),
	} {
		header := headerOf(out)
		if !strings.Contains(header, "RTP") {
			t.Errorf("%s missing RTP column: %q", name, header)
		}
		for _, absent := range []string{"STUN/TURN", "RTCP", "QUIC", "DTLS"} {
			if strings.Contains(header, absent) {
				t.Errorf("%s renders all-N/A %s column: %q", name, absent, header)
			}
		}
	}
}

func TestAggregateWithRestrictedRegistry(t *testing.T) {
	g := NewAggregateWith(proto.Default().Without(proto.DTLS))
	a := g.App("AppA")
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 10))
	// DTLS data from elsewhere still renders, but under the
	// unregistered-family placeholder since this registry dropped it.
	a.AddChecked(checked(dpi.ProtoDTLS, "alert", true, "", 10))
	out := Table2(g)
	if !strings.Contains(out, "protocol 6") {
		t.Errorf("restricted registry should render DTLS as placeholder:\n%s", out)
	}
	if strings.Contains(headerOf(out), "DTLS") {
		t.Errorf("restricted registry still names DTLS:\n%s", out)
	}
}
