// Package tlsinspect extracts the Server Name Indication from TLS
// ClientHello messages, and builds minimal ClientHello records for the
// traffic synthesizers.
//
// The paper's stage-2 filtering (§3.2.2) inspects the SNI field of TLS
// Client Hello messages to match background TCP streams against a
// blocklist of known non-RTC domains. That is the only piece of TLS
// this repository needs; no handshake logic or cryptography is
// implemented.
package tlsinspect

import (
	"errors"
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// TLS record and handshake constants used by the parser.
const (
	recordTypeHandshake  = 22
	handshakeClientHello = 1
	extensionServerName  = 0
	sniHostName          = 0
)

// Parsing errors.
var (
	ErrNotClientHello = errors.New("tlsinspect: not a TLS ClientHello")
	ErrNoSNI          = errors.New("tlsinspect: no server_name extension")
	ErrTruncated      = errors.New("tlsinspect: truncated record")
)

// SNI extracts the server name from a TLS ClientHello at the start of a
// TCP stream payload. It tolerates the record spanning less than the
// full buffer but not a truncated ClientHello body.
func SNI(b []byte) (string, error) {
	r := bytesutil.NewReader(b)
	if r.Uint8() != recordTypeHandshake {
		return "", ErrNotClientHello
	}
	major := r.Uint8()
	minor := r.Uint8()
	if major != 3 || minor > 4 {
		return "", fmt.Errorf("%w: record version %d.%d", ErrNotClientHello, major, minor)
	}
	recLen := int(r.Uint16())
	if r.Failed() || r.Remaining() < recLen {
		return "", ErrTruncated
	}
	hs := bytesutil.NewReader(r.Bytes(recLen))
	if hs.Uint8() != handshakeClientHello {
		return "", ErrNotClientHello
	}
	bodyLen := int(hs.Uint24())
	if hs.Err() != nil || hs.Remaining() < bodyLen {
		return "", ErrTruncated
	}
	body := bytesutil.NewReader(hs.Bytes(bodyLen))
	body.Skip(2)  // client_version
	body.Skip(32) // random
	sessLen := int(body.Uint8())
	body.Skip(sessLen)
	csLen := int(body.Uint16())
	body.Skip(csLen)
	cmLen := int(body.Uint8())
	body.Skip(cmLen)
	if body.Err() != nil {
		return "", ErrTruncated
	}
	if body.Remaining() < 2 {
		return "", ErrNoSNI // no extensions block at all
	}
	extLen := int(body.Uint16())
	if body.Err() != nil || body.Remaining() < extLen {
		return "", ErrTruncated
	}
	exts := bytesutil.NewReader(body.Bytes(extLen))
	for exts.Remaining() >= 4 {
		extType := exts.Uint16()
		extSize := int(exts.Uint16())
		if exts.Err() != nil || exts.Remaining() < extSize {
			return "", ErrTruncated
		}
		extData := exts.Bytes(extSize)
		if extType != extensionServerName {
			continue
		}
		sni := bytesutil.NewReader(extData)
		listLen := int(sni.Uint16())
		if sni.Err() != nil || sni.Remaining() < listLen {
			return "", ErrTruncated
		}
		list := bytesutil.NewReader(sni.Bytes(listLen))
		for list.Remaining() >= 3 {
			nameType := list.Uint8()
			nameLen := int(list.Uint16())
			name := list.Bytes(nameLen)
			if list.Err() != nil {
				return "", ErrTruncated
			}
			if nameType == sniHostName {
				return string(name), nil
			}
		}
		return "", ErrNoSNI
	}
	return "", ErrNoSNI
}

// BuildClientHello constructs a minimal but well-formed TLS 1.2
// ClientHello record carrying serverName in an SNI extension. random
// seeds the 32-byte ClientRandom deterministically.
func BuildClientHello(serverName string, random [32]byte) []byte {
	// Extensions: server_name only.
	ext := bytesutil.NewWriter(16)
	ext.Uint16(extensionServerName)
	nameLen := len(serverName)
	ext.Uint16(uint16(2 + 1 + 2 + nameLen)) // extension_data length
	ext.Uint16(uint16(1 + 2 + nameLen))     // server_name_list length
	ext.Uint8(sniHostName)
	ext.Uint16(uint16(nameLen))
	ext.Write([]byte(serverName))

	body := bytesutil.NewWriter(64)
	body.Uint16(0x0303) // TLS 1.2
	body.Write(random[:])
	body.Uint8(0)                  // session id
	body.Uint16(4)                 // cipher suites length
	body.Uint16(0x1301)            // TLS_AES_128_GCM_SHA256
	body.Uint16(0xc02f)            // ECDHE-RSA-AES128-GCM-SHA256
	body.Uint8(1)                  // compression methods length
	body.Uint8(0)                  // null compression
	body.Uint16(uint16(ext.Len())) // extensions length
	body.Write(ext.Bytes())

	hs := bytesutil.NewWriter(64)
	hs.Uint8(handshakeClientHello)
	hs.Uint24(uint32(body.Len()))
	hs.Write(body.Bytes())

	rec := bytesutil.NewWriter(64)
	rec.Uint8(recordTypeHandshake)
	rec.Uint8(3)
	rec.Uint8(1) // record version TLS 1.0 per convention
	rec.Uint16(uint16(hs.Len()))
	rec.Write(hs.Bytes())
	return rec.Bytes()
}
