package compliance

import (
	"fmt"
	"time"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

func stunTypeKey(t stun.MessageType) TypeKey {
	return TypeKey{Protocol: dpi.ProtoSTUN, Label: fmt.Sprintf("0x%04x", uint16(t))}
}

// checkSTUN applies the five criteria to a STUN/TURN message.
func (s *Session) checkSTUN(m dpi.Message, ts time.Time) Checked {
	msg := m.STUN
	c := Checked{
		Protocol:  dpi.ProtoSTUN,
		Type:      stunTypeKey(msg.Type),
		Bytes:     m.Length,
		Timestamp: ts,
	}
	s.trackTransaction(msg, ts)
	s.trackChannelBind(msg)
	c.Verdict = s.stunVerdict(msg, ts)
	return c
}

// trackTransaction records request/response pairing state before
// judging, so responses unblock their requests regardless of order of
// evaluation within a datagram.
func (s *Session) trackTransaction(msg *stun.Message, ts time.Time) {
	st, ok := s.txSeen[msg.TransactionID]
	if !ok {
		st = &txState{firstSeen: ts}
		s.txSeen[msg.TransactionID] = st
	}
	switch msg.Type.Class() {
	case stun.ClassRequest:
		st.requests++
	case stun.ClassSuccess, stun.ClassError:
		st.responded = true
	}
	if msg.Type == stun.TypeAllocateSuccess {
		s.allocDone = true
	}
	if msg.Type == stun.TypeAllocateRequest && s.allocDone {
		s.allocReqs++
	}
}

// trackChannelBind records channels bound on this stream for the
// ChannelData semantic check.
func (s *Session) trackChannelBind(msg *stun.Message) {
	if msg.Type != stun.TypeChannelBindRequest {
		return
	}
	if a := msg.Get(stun.AttrChannelNumber); a != nil && len(a.Value) == 4 {
		ch, err := stun.DecodeChannelNumber(a.Value)
		if err == nil {
			s.boundChans[ch] = true
		}
	}
}

func (s *Session) stunVerdict(msg *stun.Message, ts time.Time) Verdict {
	// Criterion 1: message type defined in any published revision.
	if _, defined := stun.DefinedMessageType(msg.Type); !defined {
		return fail(CritMessageType, "message type %v is not defined in any STUN/TURN specification", msg.Type)
	}

	// Criterion 2: header field validity. The magic cookie (or RFC 3489
	// classic form) is structurally established by the DPI; here we
	// check the transaction ID is neither degenerate nor sequential
	// (the paper's example: "a Transaction ID that appears sequential
	// rather than randomly generated").
	if msg.TransactionID == ([12]byte{}) {
		return fail(CritHeader, "all-zero transaction ID is not a valid random identifier")
	}
	if msg.Type.Class() == stun.ClassRequest {
		if s.havePrevReq && msg.TransactionID == txidSuccessor(s.prevReqTx) {
			s.seqTxRun++
		} else if msg.TransactionID != s.prevReqTx {
			s.seqTxRun = 0
		}
		s.prevReqTx = msg.TransactionID
		s.havePrevReq = true
		if s.seqTxRun >= 2 {
			return fail(CritHeader, "transaction IDs increase sequentially rather than being randomly generated")
		}
	}

	// Criterion 3: every attribute type must be defined.
	for _, a := range msg.Attributes {
		if _, defined := stun.DefinedAttr(a.Type); !defined {
			return fail(CritAttrType, "attribute %v is not defined in any STUN/TURN specification", a.Type)
		}
	}

	// Criterion 4: attribute values and placement.
	for _, a := range msg.Attributes {
		if v := checkAttrValue(msg, a); !v.Compliant {
			return v
		}
	}

	// Criterion 5: syntax and semantic integrity.
	return s.stunSemantics(msg, ts)
}

// checkAttrValue validates a defined attribute's value shape and its
// placement in this message type.
func checkAttrValue(msg *stun.Message, a stun.Attribute) Verdict {
	if !stun.AttrLenValid(a.Type, len(a.Value)) {
		return fail(CritAttrValue, "attribute %v has invalid length %d", a.Type, len(a.Value))
	}
	if stun.AddressBearing(a.Type) {
		if len(a.Value) < 4 {
			return fail(CritAttrValue, "address attribute %v too short", a.Type)
		}
		fam := a.Value[1]
		switch fam {
		case stun.FamilyIPv4:
			if len(a.Value) != 8 {
				return fail(CritAttrValue, "attribute %v declares IPv4 but is %d bytes", a.Type, len(a.Value))
			}
		case stun.FamilyIPv6:
			if len(a.Value) != 20 {
				return fail(CritAttrValue, "attribute %v declares IPv6 but is %d bytes", a.Type, len(a.Value))
			}
		default:
			// The FaceTime ALTERNATE-SERVER case: family 0x00.
			return fail(CritAttrValue, "attribute %v has invalid address family %#02x", a.Type, fam)
		}
	}
	if a.Type == stun.AttrErrorCode && len(a.Value) >= 4 {
		class := a.Value[2]
		number := a.Value[3]
		if class < 3 || class > 6 || number > 99 {
			return fail(CritAttrValue, "ERROR-CODE class %d number %d out of range", class, number)
		}
	}
	if a.Type == stun.AttrChannelNumber && len(a.Value) == 4 {
		ch := uint16(a.Value[0])<<8 | uint16(a.Value[1])
		if ch < stun.ChannelMin || ch > stun.ChannelMax5766 {
			// The FaceTime Data-indication case carries 0x0000 here.
			return fail(CritAttrValue, "CHANNEL-NUMBER value %#04x outside 0x4000-0x7FFF", ch)
		}
	}
	// Placement rules.
	cls := msg.Type.Class()
	if (cls == stun.ClassSuccess || cls == stun.ClassError) && stun.RequestOnly(a.Type) {
		return fail(CritAttrValue, "request-only attribute %v present in a %v", a.Type, cls)
	}
	if msg.Type == stun.TypeDataIndication && !stun.AllowedInDataIndication(a.Type) {
		return fail(CritAttrValue, "attribute %v is not permitted in a Data indication", a.Type)
	}
	return ok()
}

// txidSuccessor returns id incremented by one as a 96-bit big-endian
// integer.
func txidSuccessor(id [12]byte) [12]byte {
	for i := len(id) - 1; i >= 0; i-- {
		id[i]++
		if id[i] != 0 {
			break
		}
	}
	return id
}

// stunSemantics applies the cross-message criterion-5 rules.
func (s *Session) stunSemantics(msg *stun.Message, ts time.Time) Verdict {
	st := s.txSeen[msg.TransactionID]
	if msg.Type.Class() == stun.ClassRequest && st != nil {
		// Repeated identical-transaction requests with no response ever
		// observed: FaceTime's keepalive-via-Binding-Request pattern.
		// Genuine retransmission backs off and stops; a steady stream of
		// repeats past the threshold with zero responses is repurposing.
		if st.requests > repeatThreshold && !st.responded {
			return fail(CritSemantics, "request repeated %d times with transaction ID %x and no response; Binding/Allocate requests are not keepalives", st.requests, msg.TransactionID[:4])
		}
	}
	if msg.Type == stun.TypeAllocateRequest && s.allocReqs > allocPingPongThreshold {
		// The Google Meet case: periodic Allocate requests after the
		// allocation already succeeded act as connectivity checks,
		// which Allocate is not intended for (paper §4.2, example 5).
		return fail(CritSemantics, "repeated Allocate requests after successful allocation form a connectivity-check ping-pong")
	}
	return ok()
}

// checkChannelData validates a TURN ChannelData frame.
func (s *Session) checkChannelData(m dpi.Message, ts time.Time) Checked {
	cd := m.ChannelData
	c := Checked{
		Protocol:  dpi.ProtoChannelData,
		Type:      TypeKey{Protocol: dpi.ProtoSTUN, Label: "ChannelData"},
		Bytes:     m.Length,
		Timestamp: ts,
	}
	// Criterion 2: channel number range (the framing itself guarantees
	// 0x4000-0x7FFF; RFC 8656 narrows to 0x4000-0x4FFF but RFC 5766
	// allowed the full range, and the paper accepts any published
	// revision).
	if cd.ChannelNumber < stun.ChannelMin || cd.ChannelNumber > stun.ChannelMax5766 {
		c.Verdict = fail(CritHeader, "channel number %#04x outside any published range", cd.ChannelNumber)
		return c
	}
	// Criterion 5: data on a channel never bound with ChannelBind on
	// this stream repurposes the framing (the FaceTime case).
	if !s.boundChans[cd.ChannelNumber] {
		c.Verdict = fail(CritSemantics, "ChannelData on channel %#04x with no prior ChannelBind on this stream", cd.ChannelNumber)
		return c
	}
	c.Verdict = ok()
	return c
}
