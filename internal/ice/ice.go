// Package ice produces specification-compliant STUN and TURN message
// exchanges: ICE connectivity checks (RFC 8445) and the TURN allocation
// lifecycle (RFC 8656).
//
// The application emulators in internal/appsim use these builders for
// the compliant portions of their traffic — a WebRTC-based app like
// Google Meet emits exactly these exchanges — and then layer their
// documented deviations on top. All randomness is drawn from a seeded
// generator so captures are reproducible.
package ice

import (
	"math/rand/v2"
	"net/netip"

	"github.com/rtc-compliance/rtcc/internal/stun"
)

// Rand is the deterministic random source used across the synthesizers.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// TxID generates a random 96-bit transaction ID.
func (r *Rand) TxID() [12]byte {
	var id [12]byte
	for i := 0; i < 12; i += 4 {
		v := r.Uint32()
		id[i], id[i+1], id[i+2], id[i+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
	return id
}

// Bytes returns n random bytes.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint32())
	}
	return b
}

// Agent holds the ICE credentials and role for one endpoint.
type Agent struct {
	Ufrag       string
	Password    string
	Controlling bool
	TieBreaker  uint64
}

// integrityKey is the short-term-credential HMAC key (the password).
func (a *Agent) integrityKey() []byte { return []byte(a.Password) }

// BindingRequest builds an ICE connectivity-check Binding request from
// the local agent to remote (whose ufrag forms the USERNAME), with
// PRIORITY, role attribute, MESSAGE-INTEGRITY, and FINGERPRINT.
func (a *Agent) BindingRequest(r *Rand, remote *Agent, priority uint32, useCandidate bool) *stun.Message {
	m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: r.TxID()}
	m.Add(stun.AttrUsername, []byte(remote.Ufrag+":"+a.Ufrag))
	var pri [4]byte
	pri[0], pri[1], pri[2], pri[3] = byte(priority>>24), byte(priority>>16), byte(priority>>8), byte(priority)
	m.Add(stun.AttrPriority, pri[:])
	var tb [8]byte
	for i := 0; i < 8; i++ {
		tb[i] = byte(a.TieBreaker >> (56 - 8*i))
	}
	if a.Controlling {
		m.Add(stun.AttrICEControlling, tb[:])
		if useCandidate {
			m.Add(stun.AttrUseCandidate, nil)
		}
	} else {
		m.Add(stun.AttrICEControlled, tb[:])
	}
	stun.AddMessageIntegrity(m, remote.integrityKey())
	stun.AddFingerprint(m)
	return m
}

// BindingResponse builds the success response to a connectivity check,
// echoing the transaction ID and carrying XOR-MAPPED-ADDRESS.
func (a *Agent) BindingResponse(req *stun.Message, mapped netip.AddrPort) *stun.Message {
	m := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: req.TransactionID}
	m.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(mapped, req.TransactionID))
	stun.AddMessageIntegrity(m, a.integrityKey())
	stun.AddFingerprint(m)
	return m
}

// ServerBindingRequest builds a plain (credential-free) Binding request
// to a STUN server, as used for server-reflexive candidate gathering.
func ServerBindingRequest(r *Rand) *stun.Message {
	m := &stun.Message{Type: stun.TypeBindingRequest, TransactionID: r.TxID()}
	stun.AddFingerprint(m)
	return m
}

// ServerBindingResponse builds a STUN server's answer carrying the
// client's reflexive address.
func ServerBindingResponse(req *stun.Message, mapped netip.AddrPort) *stun.Message {
	m := &stun.Message{Type: stun.TypeBindingSuccess, TransactionID: req.TransactionID}
	m.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(mapped, req.TransactionID))
	m.Add(stun.AttrMappedAddress, stun.EncodeMappedAddress(mapped))
	stun.AddFingerprint(m)
	return m
}

// TURNCredentials holds long-term credentials for a TURN allocation.
type TURNCredentials struct {
	Username string
	Realm    string
	Nonce    string
	Password string
}

// Exchange is one STUN message with its direction.
type Exchange struct {
	// FromClient is true for client→server messages.
	FromClient bool
	Msg        *stun.Message
}

// TURNAllocation generates the full RFC 8656 allocation handshake:
// unauthenticated Allocate → 401 with REALM/NONCE → authenticated
// Allocate → success with XOR-RELAYED-ADDRESS, plus a CreatePermission
// and a ChannelBind for the peer.
func TURNAllocation(r *Rand, creds TURNCredentials, relayed, mapped, peer netip.AddrPort, channel uint16) []Exchange {
	var out []Exchange
	key := []byte(creds.Username + ":" + creds.Realm + ":" + creds.Password)

	// 1. Unauthenticated Allocate request.
	req1 := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: r.TxID()}
	req1.Add(stun.AttrRequestedTranspt, stun.EncodeRequestedTransport(17))
	stun.AddFingerprint(req1)
	out = append(out, Exchange{true, req1})

	// 2. 401 challenge.
	err1 := &stun.Message{Type: stun.TypeAllocateError, TransactionID: req1.TransactionID}
	err1.Add(stun.AttrErrorCode, stun.EncodeErrorCode(stun.ErrorCode{Code: 401, Reason: "Unauthorized"}))
	err1.Add(stun.AttrRealm, []byte(creds.Realm))
	err1.Add(stun.AttrNonce, []byte(creds.Nonce))
	stun.AddFingerprint(err1)
	out = append(out, Exchange{false, err1})

	// 3. Authenticated Allocate request.
	req2 := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: r.TxID()}
	req2.Add(stun.AttrRequestedTranspt, stun.EncodeRequestedTransport(17))
	req2.Add(stun.AttrUsername, []byte(creds.Username))
	req2.Add(stun.AttrRealm, []byte(creds.Realm))
	req2.Add(stun.AttrNonce, []byte(creds.Nonce))
	stun.AddMessageIntegrity(req2, key)
	stun.AddFingerprint(req2)
	out = append(out, Exchange{true, req2})

	// 4. Allocate success.
	ok := &stun.Message{Type: stun.TypeAllocateSuccess, TransactionID: req2.TransactionID}
	ok.Add(stun.AttrXORRelayedAddress, stun.EncodeXORAddress(relayed, req2.TransactionID))
	ok.Add(stun.AttrXORMappedAddress, stun.EncodeXORAddress(mapped, req2.TransactionID))
	ok.Add(stun.AttrLifetime, []byte{0x00, 0x00, 0x02, 0x58}) // 600 s
	stun.AddMessageIntegrity(ok, key)
	stun.AddFingerprint(ok)
	out = append(out, Exchange{false, ok})

	// 5. CreatePermission for the peer.
	perm := &stun.Message{Type: stun.TypeCreatePermissionReq, TransactionID: r.TxID()}
	perm.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(peer, perm.TransactionID))
	perm.Add(stun.AttrUsername, []byte(creds.Username))
	perm.Add(stun.AttrRealm, []byte(creds.Realm))
	perm.Add(stun.AttrNonce, []byte(creds.Nonce))
	stun.AddMessageIntegrity(perm, key)
	stun.AddFingerprint(perm)
	out = append(out, Exchange{true, perm})

	permOK := &stun.Message{Type: stun.TypeCreatePermissionOK, TransactionID: perm.TransactionID}
	stun.AddMessageIntegrity(permOK, key)
	stun.AddFingerprint(permOK)
	out = append(out, Exchange{false, permOK})

	// 6. ChannelBind.
	cb := &stun.Message{Type: stun.TypeChannelBindRequest, TransactionID: r.TxID()}
	cb.Add(stun.AttrChannelNumber, stun.EncodeChannelNumber(channel))
	cb.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(peer, cb.TransactionID))
	cb.Add(stun.AttrUsername, []byte(creds.Username))
	cb.Add(stun.AttrRealm, []byte(creds.Realm))
	cb.Add(stun.AttrNonce, []byte(creds.Nonce))
	stun.AddMessageIntegrity(cb, key)
	stun.AddFingerprint(cb)
	out = append(out, Exchange{true, cb})

	cbOK := &stun.Message{Type: stun.TypeChannelBindSuccess, TransactionID: cb.TransactionID}
	stun.AddMessageIntegrity(cbOK, key)
	stun.AddFingerprint(cbOK)
	out = append(out, Exchange{false, cbOK})

	return out
}

// RefreshExchange builds a TURN Refresh request/response pair.
func RefreshExchange(r *Rand, creds TURNCredentials) []Exchange {
	key := []byte(creds.Username + ":" + creds.Realm + ":" + creds.Password)
	req := &stun.Message{Type: stun.TypeRefreshRequest, TransactionID: r.TxID()}
	req.Add(stun.AttrLifetime, []byte{0x00, 0x00, 0x02, 0x58})
	req.Add(stun.AttrUsername, []byte(creds.Username))
	req.Add(stun.AttrRealm, []byte(creds.Realm))
	req.Add(stun.AttrNonce, []byte(creds.Nonce))
	stun.AddMessageIntegrity(req, key)
	stun.AddFingerprint(req)
	resp := &stun.Message{Type: stun.TypeRefreshSuccess, TransactionID: req.TransactionID}
	resp.Add(stun.AttrLifetime, []byte{0x00, 0x00, 0x02, 0x58})
	stun.AddMessageIntegrity(resp, key)
	stun.AddFingerprint(resp)
	return []Exchange{{true, req}, {false, resp}}
}

// SendIndication builds a TURN Send indication carrying data to peer.
func SendIndication(r *Rand, peer netip.AddrPort, data []byte) *stun.Message {
	m := &stun.Message{Type: stun.TypeSendIndication, TransactionID: r.TxID()}
	m.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(peer, m.TransactionID))
	m.Add(stun.AttrData, data)
	return m
}

// DataIndication builds a TURN Data indication delivering data from
// peer. extra, if non-nil, appends additional attributes — used by the
// FaceTime emulator to add its spurious CHANNEL-NUMBER.
func DataIndication(r *Rand, peer netip.AddrPort, data []byte, extra []stun.Attribute) *stun.Message {
	m := &stun.Message{Type: stun.TypeDataIndication, TransactionID: r.TxID()}
	m.Add(stun.AttrXORPeerAddress, stun.EncodeXORAddress(peer, m.TransactionID))
	m.Add(stun.AttrData, data)
	for _, a := range extra {
		m.Add(a.Type, a.Value)
	}
	return m
}

// GoogPing builds the libwebrtc GOOG-PING request (0x0200) or response
// (0x0300) observed in Google Meet traffic.
func GoogPing(r *Rand, response bool, txid [12]byte) *stun.Message {
	t := stun.MessageType(0x0200)
	if response {
		t = stun.MessageType(0x0300)
	}
	m := &stun.Message{Type: t, TransactionID: txid}
	_ = r
	stun.AddFingerprint(m)
	return m
}
