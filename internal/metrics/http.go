package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the observability surface:
//
//	/metrics        JSON snapshot of the registry
//	/debug/vars     expvar (includes the registry when published)
//	/debug/pprof/   net/http/pprof profiles
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a background metrics HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; port 0 for ephemeral), publishes the
// registry to expvar under "rtcc", and serves Handler(r) in a
// background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	r.PublishExpvar("rtcc")
	s := &Server{srv: &http.Server{Handler: Handler(r)}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr reports the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
