package layers

import (
	"encoding/binary"
	"net/netip"
)

// checksum16 computes the Internet checksum over b (RFC 1071).
func checksum16(sum uint32, b []byte) uint32 {
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// EncodeUDPv4 builds a raw-IP (LinkTypeRaw) IPv4+UDP frame carrying
// payload, with valid header and UDP checksums. IPv4-mapped addresses are
// unmapped; src and dst must be IPv4.
func EncodeUDPv4(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) []byte {
	return encodeV4(src, dst, IPProtocolUDP, srcPort, dstPort, payload, nil)
}

// EncodeTCPv4 builds a raw-IP IPv4+TCP frame. seg carries the TCP fields
// to use; its port/option fields are taken as-is and checksums computed.
func EncodeTCPv4(src, dst netip.Addr, seg TCP, payload []byte) []byte {
	return encodeV4(src, dst, IPProtocolTCP, seg.SrcPort, seg.DstPort, payload, &seg)
}

func encodeV4(src, dst netip.Addr, proto IPProtocol, srcPort, dstPort uint16, payload []byte, seg *TCP) []byte {
	s4 := src.Unmap().As4()
	d4 := dst.Unmap().As4()

	var transport []byte
	switch proto {
	case IPProtocolUDP:
		transport = make([]byte, 8+len(payload))
		binary.BigEndian.PutUint16(transport[0:], srcPort)
		binary.BigEndian.PutUint16(transport[2:], dstPort)
		binary.BigEndian.PutUint16(transport[4:], uint16(8+len(payload)))
		copy(transport[8:], payload)
	case IPProtocolTCP:
		optLen := (len(seg.Options) + 3) &^ 3
		hdrLen := 20 + optLen
		transport = make([]byte, hdrLen+len(payload))
		binary.BigEndian.PutUint16(transport[0:], seg.SrcPort)
		binary.BigEndian.PutUint16(transport[2:], seg.DstPort)
		binary.BigEndian.PutUint32(transport[4:], seg.Seq)
		binary.BigEndian.PutUint32(transport[8:], seg.Ack)
		transport[12] = byte(hdrLen/4) << 4
		transport[13] = seg.Flags
		binary.BigEndian.PutUint16(transport[14:], seg.Window)
		binary.BigEndian.PutUint16(transport[18:], seg.Urgent)
		copy(transport[20:], seg.Options)
		copy(transport[hdrLen:], payload)
	}

	// Transport checksum over the IPv4 pseudo-header.
	var pseudo [12]byte
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = byte(proto)
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(transport)))
	ck := foldChecksum(checksum16(checksum16(0, pseudo[:]), transport))
	switch proto {
	case IPProtocolUDP:
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(transport[6:], ck)
	case IPProtocolTCP:
		binary.BigEndian.PutUint16(transport[16:], ck)
	}

	frame := make([]byte, 20+len(transport))
	frame[0] = 0x45
	binary.BigEndian.PutUint16(frame[2:], uint16(len(frame)))
	frame[6] = 0x40 // DF
	frame[8] = 64   // TTL
	frame[9] = byte(proto)
	copy(frame[12:16], s4[:])
	copy(frame[16:20], d4[:])
	binary.BigEndian.PutUint16(frame[10:], foldChecksum(checksum16(0, frame[:20])))
	copy(frame[20:], transport)
	return frame
}

// EncodeUDPv6 builds a raw-IP IPv6+UDP frame carrying payload. src and
// dst must be IPv6 addresses.
func EncodeUDPv6(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) []byte {
	s16 := src.As16()
	d16 := dst.As16()
	udp := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(udp[0:], srcPort)
	binary.BigEndian.PutUint16(udp[2:], dstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(len(udp)))
	copy(udp[8:], payload)

	var pseudo [40]byte
	copy(pseudo[0:16], s16[:])
	copy(pseudo[16:32], d16[:])
	binary.BigEndian.PutUint32(pseudo[32:], uint32(len(udp)))
	pseudo[39] = byte(IPProtocolUDP)
	ck := foldChecksum(checksum16(checksum16(0, pseudo[:]), udp))
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(udp[6:], ck)

	frame := make([]byte, 40+len(udp))
	frame[0] = 0x60
	binary.BigEndian.PutUint16(frame[4:], uint16(len(udp)))
	frame[6] = byte(IPProtocolUDP)
	frame[7] = 64
	copy(frame[8:24], s16[:])
	copy(frame[24:40], d16[:])
	copy(frame[40:], udp)
	return frame
}
