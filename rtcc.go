// Package rtcc is a measurement framework for studying protocol
// compliance in real-time communication (RTC) traffic, reproducing
// "Protocol Compliance in Popular RTC Applications" (IMC 2025).
//
// The framework has two halves:
//
//   - Analysis: given a packet capture of a 1-on-1 call, it groups
//     packets into streams, removes unrelated traffic with the paper's
//     two-stage filter, extracts STUN/TURN, RTP, RTCP, and QUIC
//     messages with an offset-shifting DPI that tolerates proprietary
//     headers, and judges every message against the five-criterion
//     compliance model.
//
//   - Synthesis: protocol-accurate emulators of the six studied
//     applications (Zoom, FaceTime, WhatsApp, Messenger, Discord,
//     Google Meet) regenerate each app's documented wire behaviour,
//     including every deviation from the paper's §5.2/§5.3, over a
//     simulated NAT/relay environment. The emulators stand in for the
//     paper's iPhone testbed; see DESIGN.md for the substitution
//     rationale.
//
// Quick start:
//
//	cap, _ := rtcc.GenerateCapture(rtcc.CaptureConfig{
//	    App: rtcc.Zoom, Network: rtcc.WiFiRelay, Seed: 1,
//	    Start: time.Now(), CallDuration: 10 * time.Second,
//	    PrePost: 5 * time.Second, Background: true,
//	})
//	res, _ := rtcc.Analyze(cap, rtcc.Options{})
//	fmt.Println(res.Stats.VolumeCompliance())
package rtcc

import (
	"io"
	"os"
	"time"

	"github.com/rtc-compliance/rtcc/internal/alert"
	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/ingest"
	"github.com/rtc-compliance/rtcc/internal/interop"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/natsim"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/pipeline"
	"github.com/rtc-compliance/rtcc/internal/proto"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/qoe"
	"github.com/rtc-compliance/rtcc/internal/report"
	"github.com/rtc-compliance/rtcc/internal/trace"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

// MetricsRegistry collects pipeline observability counters, gauges, and
// latency histograms. Assign one to Options.Metrics to instrument an
// analysis run; a nil registry disables collection at zero cost and
// never changes analysis output.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments.
type MetricsSnapshot = metrics.Snapshot

// MetricsServer is a running observability HTTP endpoint.
type MetricsServer = metrics.Server

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ServeMetrics exposes a registry over HTTP: /metrics (JSON snapshot),
// /debug/vars (expvar), and /debug/pprof. Close the returned server
// when done.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	return metrics.Serve(addr, r)
}

// Tracer receives the pipeline's decision trace: per-stream filter
// verdicts, Algorithm 1 probe steps, datagram classifications,
// five-criterion compliance verdicts, and findings. Assign one to
// Options.Tracer to record why each verdict was reached; nil disables
// tracing at zero cost and never changes analysis output.
type Tracer = obs.Tracer

// TraceEvent is one pipeline decision, the unit both trace sinks
// carry and the JSONL export serializes one-per-line.
type TraceEvent = obs.Event

// TraceSampling bounds per-stream trace retention (head/tail; failing
// verdicts always kept). The zero value selects the defaults.
type TraceSampling = obs.Sampling

// TraceBuffer is an in-memory trace sink backing -explain queries.
type TraceBuffer = obs.Buffer

// NewTraceBuffer returns a bounded in-memory trace sink (max <= 0
// selects the default capacity).
func NewTraceBuffer(max int) *TraceBuffer { return obs.NewBuffer(max) }

// NewJSONLTracer returns a trace sink writing one JSON event per line
// to w (the rtccheck -trace-out format). Call Flush before closing w.
func NewJSONLTracer(w io.Writer) *obs.JSONLWriter { return obs.NewJSONLWriter(w) }

// ExplainTrace replays recorded trace events and renders why-answers
// for the streams matching query ("<app>/<stream>/<msgtype>", each
// part an optional substring).
func ExplainTrace(events []TraceEvent, query string) string {
	return obs.Explain(events, obs.ParseQuery(query))
}

// Applications studied by the paper.
const (
	Zoom       = appsim.Zoom
	FaceTime   = appsim.FaceTime
	WhatsApp   = appsim.WhatsApp
	Messenger  = appsim.Messenger
	Discord    = appsim.Discord
	GoogleMeet = appsim.GoogleMeet
)

// App identifies an RTC application.
type App = appsim.App

// Apps lists the six studied applications.
var Apps = appsim.Apps

// Network configurations from the paper's experiment matrix.
const (
	WiFiP2P   = appsim.WiFiP2P
	WiFiRelay = appsim.WiFiRelay
	Cellular  = appsim.Cellular
)

// Network is one of the three experiment network configurations.
type Network = appsim.Network

// Protocol families reported by the framework.
const (
	ProtoSTUN = dpi.ProtoSTUN
	ProtoRTP  = dpi.ProtoRTP
	ProtoRTCP = dpi.ProtoRTCP
	ProtoQUIC = dpi.ProtoQUIC
	ProtoDTLS = dpi.ProtoDTLS
)

// Protocol identifies a protocol family.
type Protocol = dpi.Protocol

// ProtocolRegistry is the pluggable driver set the pipeline runs
// against: every protocol is one registered Handler providing wire
// probers, the five-criterion judge, and report metadata. Assign a
// restricted registry to Options.Registry to analyze with a protocol
// subset; nil selects the default registry with every linked driver.
type ProtocolRegistry = proto.Registry

// ProtocolMeta describes one registered protocol: name, metrics slug,
// reporting family, column order, and wire-format fingerprint.
type ProtocolMeta = proto.Meta

// DefaultRegistry returns the registry holding every protocol driver
// linked into the binary (importing this package links them all).
func DefaultRegistry() *ProtocolRegistry { return proto.Default() }

// Protocols enumerates the supported protocols in report order.
func Protocols() []ProtocolMeta { return proto.Default().Metas() }

// CaptureConfig parameterizes one synthetic experiment capture.
type CaptureConfig = trace.CaptureConfig

// Capture is a synthetic experiment capture (call plus background
// noise) that can be analyzed in memory or written as a pcap file.
type Capture = trace.Capture

// MatrixOptions parameterizes the full 6-app × 3-network experiment
// matrix.
type MatrixOptions = trace.MatrixOptions

// ImpairProfile is a composable network-impairment profile (loss,
// burst loss, jitter with bounded reordering, duplication, mid-call
// NAT rebinding) applied deterministically to a capture's call traffic
// via CaptureConfig.Impair or MatrixOptions.Impair.
type ImpairProfile = natsim.Profile

// ImpairStats is the accounting of one impairment application.
type ImpairStats = natsim.ImpairStats

// ImpairProfiles lists the named standard impairment profiles.
func ImpairProfiles() []ImpairProfile { return natsim.StandardProfiles() }

// ImpairProfileByName resolves a standard impairment profile by name.
func ImpairProfileByName(name string) (ImpairProfile, bool) {
	return natsim.ProfileByName(name)
}

// Options configures an analysis run (DPI offset limit, filter window
// slack, SNI blocklist, worker-pool size). Workers=0 uses every CPU,
// Workers=1 forces the serial path; results are identical either way.
type Options = core.Options

// CaptureAnalysis is the per-capture analysis result: filter
// accounting, per-message statistics, and behavioural findings.
type CaptureAnalysis = core.CaptureAnalysis

// MatrixAnalysis aggregates an entire experiment matrix.
type MatrixAnalysis = core.MatrixAnalysis

// Finding is one behavioural observation (filler messages, proprietary
// keepalives, direction flags, SSRC reuse).
type Finding = core.Finding

// Aggregate holds per-application statistics for report rendering.
type Aggregate = report.Aggregate

// AppStats holds one application's measured statistics.
type AppStats = report.AppStats

// GenerateCapture builds one synthetic capture.
func GenerateCapture(cfg CaptureConfig) (*Capture, error) {
	return trace.Generate(cfg)
}

// GroupCallConfig parameterizes an N-party conference call (the paper's
// future-work extension; Zoom and Google Meet only).
type GroupCallConfig = appsim.GroupCallConfig

// AnalyzeGroupCall generates an N-party group call and runs the full
// pipeline over it.
func AnalyzeGroupCall(cfg GroupCallConfig, opts Options) (*CaptureAnalysis, error) {
	call, err := appsim.GenerateGroup(cfg)
	if err != nil {
		return nil, err
	}
	cap := &trace.Capture{
		Config: trace.CaptureConfig{
			App: cfg.App, Network: appsim.WiFiRelay, Seed: cfg.Seed,
			Start: cfg.Start, CallDuration: cfg.Duration, MediaRate: cfg.MediaRate,
		},
		Mode:      call.Mode,
		Events:    call.Events,
		CallStart: call.CallStart,
		CallEnd:   call.CallEnd,
		RTCEvents: len(call.Events),
	}
	return Analyze(cap, opts)
}

// Matrix expands matrix options into per-call capture configurations.
func Matrix(o MatrixOptions) []CaptureConfig {
	return trace.Matrix(o)
}

// Analyze runs the full pipeline (filter → DPI → compliance) over a
// synthetic capture.
func Analyze(cap *Capture, opts Options) (*CaptureAnalysis, error) {
	return core.AnalyzeCapture(cap.Input(), opts)
}

// AnalyzeSharded runs the same pipeline through the sharded ingest
// tier: identical output to Analyze, computed on scfg.Shards cores.
func AnalyzeSharded(cap *Capture, opts Options, scfg ShardConfig) (*CaptureAnalysis, error) {
	return ingest.AnalyzeCapture(cap.Input(), opts, scfg)
}

// LinkType identifies the layer-2 framing of frames fed to an
// Analyzer.
type LinkType = pcap.LinkType

// Link types accepted by the analyzer. LinkTypeRaw is raw IP with no
// Ethernet header (what Apple RVI captures produce).
const (
	LinkTypeEthernet = pcap.LinkTypeEthernet
	LinkTypeRaw      = pcap.LinkTypeRaw
)

// Analyzer is the incremental analysis engine behind every entry point:
// Feed it one frame at a time and Close it for the CaptureAnalysis.
// Use it directly to analyze a source the wrappers don't cover (a live
// socket, a message queue) without buffering the capture.
type Analyzer = core.Analyzer

// AnalyzerConfig parameterizes an incremental Analyzer.
type AnalyzerConfig = core.AnalyzerConfig

// Datagram is one timestamped link-layer frame, the unit of the
// batched ingestion path: fill a slice and hand it to
// Analyzer.FeedBatch. Frame bytes only need to stay valid for the
// duration of the call (DESIGN.md §14), so readers may reuse their
// buffers between batches.
type Datagram = core.Datagram

// BufferPool recycles packet buffers through the analyzer: assign one
// to AnalyzerConfig.Pool and the ingestion path stores payload bytes
// in pooled arena chunks instead of allocating per packet. See
// DESIGN.md §14 for the ownership rules.
type BufferPool = bufpool.Pool

// GlobalBufferPool returns the process-wide shared buffer pool.
func GlobalBufferPool() *BufferPool { return bufpool.Global() }

// NewAnalyzer returns an incremental analyzer; see Analyzer.
func NewAnalyzer(cfg AnalyzerConfig, opts Options) (*Analyzer, error) {
	return core.NewAnalyzer(cfg, opts)
}

// AnalyzePCAP analyzes a pcap stream. A zero callStart defaults the
// call window to the capture's span.
func AnalyzePCAP(r io.Reader, label string, callStart, callEnd time.Time, opts Options) (*CaptureAnalysis, error) {
	return core.AnalyzePCAP(r, label, callStart, callEnd, opts)
}

// FrameSink is the capture-ingestion contract: both the serial
// Analyzer and the ShardedAnalyzer implement it, so capture readers
// can swap one concurrency story for the other without changes.
type FrameSink = core.FrameSink

// ShardedAnalyzer routes datagrams by flow 5-tuple onto N single-writer
// Analyzer shards fed through bounded queues, and merges the shard
// states at Close. Output is byte-identical to a serial Analyzer fed
// the same frames in the same order, for any shard count (DESIGN.md
// §15). Feed it from one goroutine, exactly like an Analyzer.
type ShardedAnalyzer = ingest.ShardedAnalyzer

// ShardConfig parameterizes the sharded ingest tier (shard count,
// queue depth, batch size, back-pressure policy). The zero value
// selects one shard per CPU with lossless back-pressure.
type ShardConfig = ingest.Config

// ShardPolicy selects what a full shard queue does to the producer:
// ShardBlock stalls it (lossless, default), ShardDrop sheds the staged
// batch and counts every dropped datagram.
type ShardPolicy = ingest.Policy

// Shard back-pressure policies.
const (
	ShardBlock = ingest.Block
	ShardDrop  = ingest.Drop
)

// ShardStats is a snapshot of the sharded tier's datagram accounting
// (fed / analyzed / dropped / back-pressure, per shard and total).
type ShardStats = ingest.Stats

// NewShardedAnalyzer returns a sharded analyzer; see ShardedAnalyzer.
func NewShardedAnalyzer(cfg AnalyzerConfig, opts Options, scfg ShardConfig) (*ShardedAnalyzer, error) {
	return ingest.New(cfg, opts, scfg)
}

// AnalyzePCAPSharded analyzes a pcap stream through the sharded ingest
// tier: same result as AnalyzePCAP, computed on scfg.Shards cores.
func AnalyzePCAPSharded(r io.Reader, label string, callStart, callEnd time.Time, opts Options, scfg ShardConfig) (*CaptureAnalysis, error) {
	return ingest.AnalyzePCAP(r, label, callStart, callEnd, opts, scfg)
}

// MergeAnalyzers folds fed (not yet closed) ExternalSeq Analyzer shards
// into one capture analysis — the cross-shard merge behind
// ShardedAnalyzer.Close, exported for custom sharding arrangements.
func MergeAnalyzers(shards []*Analyzer) (*CaptureAnalysis, error) {
	return core.MergeAnalyzers(shards)
}

// AnalyzeFile analyzes a pcap file.
func AnalyzeFile(path string, callStart, callEnd time.Time, opts Options) (*CaptureAnalysis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.AnalyzePCAP(f, path, callStart, callEnd, opts)
}

// RunMatrix generates and analyzes the whole experiment matrix,
// producing the aggregate behind every paper table and figure. Capture
// generation and analysis run concurrently on Options.Workers
// goroutines (all CPUs by default); results are folded back in
// deterministic config order, so the output is identical to a serial
// run.
func RunMatrix(mopts MatrixOptions, opts Options) (*MatrixAnalysis, error) {
	return core.RunMatrix(mopts, opts)
}

// InteropProfile is one application's interoperability profile (§6):
// spec-parseability, message compliance, and the adaptation shims a
// pure-RFC peer needs to process its traffic.
type InteropProfile = interop.Profile

// InteropAssessment scores one application pairing.
type InteropAssessment = interop.Assessment

// Interoperability analysis functions (§6 of the paper, quantified).
var (
	// BuildInteropProfile derives a profile from measured statistics.
	BuildInteropProfile = interop.BuildProfile
	// InteropPairwise assesses mutual interoperability of two profiles.
	InteropPairwise = interop.Pairwise
	// InteropMatrix assesses every ordered pair from an aggregate.
	InteropMatrix = interop.Matrix
	// DescribeInteropProfile renders a profile as text.
	DescribeInteropProfile = interop.Describe
)

// Report renderers for the paper's tables and figures.
var (
	// RenderTable1 renders traffic-trace and filtering accounting.
	RenderTable1 = report.Table1
	// RenderTable2 renders the message distribution by protocol.
	RenderTable2 = report.Table2
	// RenderTable3 renders the compliance-by-message-type matrix.
	RenderTable3 = report.Table3
	// RenderTable4 renders observed STUN/TURN types per app.
	RenderTable4 = report.Table4
	// RenderTable5 renders observed RTP payload types per app.
	RenderTable5 = report.Table5
	// RenderTable6 renders observed RTCP packet types per app.
	RenderTable6 = report.Table6
	// RenderFigure3 renders the datagram-class breakdown.
	RenderFigure3 = report.Figure3
	// RenderFigure4 renders volume-based compliance ratios.
	RenderFigure4 = report.Figure4
	// RenderFigure5 renders type-based compliance ratios.
	RenderFigure5 = report.Figure5
	// RenderViolations renders the per-criterion violation tally.
	RenderViolations = report.Violations
)

// Declarative pipeline layer. One PipelineConfig — loadable from a
// JSON or YAML file — names the capture source (pcap, live, appsim),
// the execution mode (serial, parallel workers, or flow-hash shards),
// and the sinks (report, decision trace, metrics, JSONL verdicts); a
// PipelineRunner executes it through the serial or sharded engine.
// Every cmd/ entry point, including the rtclive compliance daemon, is
// built on this layer.
type (
	// PipelineConfig is the declarative session description.
	PipelineConfig = pipeline.Config
	// PipelineRunner executes one validated PipelineConfig.
	PipelineRunner = pipeline.Runner
	// ComplianceDaemon is the reloadable always-on service behind
	// `rtclive daemon`: epoch-rotated live analysis with a persisted
	// per-app compliance trend.
	ComplianceDaemon = pipeline.Daemon
	// TrendPoint is one epoch's compliance summary — the record both
	// the daemon's /compliance/trend series and the JSONL verdict
	// stream use.
	TrendPoint = trend.Point
)

// Header-free QoE estimation and compliance alerting. QoEConfig on
// Options (or `analysis.qoe: true` in a pipeline config) estimates
// per-stream media features — frame rate, bitrate, inter-frame gap
// jitter, stalls — from packet timing and sizes alone, deterministic
// across worker and shard counts; AlertRule instances in the daemon
// config page through log/webhook/exec sinks when an app's
// type-compliance regresses between trend points or a QoE floor is
// crossed, with debounce/hysteresis and exactly-once-per-episode
// firing.
type (
	// QoEConfig enables header-free QoE estimation; the zero value
	// uses the default frame/stall gap thresholds and media gates.
	QoEConfig = qoe.Config
	// QoECapture is a capture's QoE result: per-stream features plus
	// the media-stream summary trend points carry.
	QoECapture = qoe.Capture
	// QoEStreamFeatures is one stream's estimated feature vector.
	QoEStreamFeatures = qoe.StreamFeatures
	// QoESummary is the capture-level roll-up over media streams.
	QoESummary = qoe.Summary
	// AlertRule is one declarative alert rule (compliance_drop or
	// qoe_floor) as configured under alerts.rules.
	AlertRule = alert.Rule
	// AlertEvent is one fire/resolve transition delivered to sinks.
	AlertEvent = alert.Event
	// AlertEngine evaluates rules against trend points with per-
	// (rule, app) debounce/hysteresis state.
	AlertEngine = alert.Engine
)

var (
	// NewAlertEngine builds an engine from a rule set; the registry
	// may be nil (alert counters off).
	NewAlertEngine = alert.NewEngine
	// SummarizeQoE rolls per-stream features up into the media-only
	// capture summary (nil when no stream passes the media gate).
	SummarizeQoE = qoe.Summarize
)

var (
	// LoadPipelineConfig layers a JSON or YAML config file over cfg,
	// rejecting unknown keys.
	LoadPipelineConfig = pipeline.LoadFile
	// NewPipelineRunner validates a config and opens its sinks.
	NewPipelineRunner = pipeline.NewRunner
	// NewComplianceDaemon prepares a daemon from a config file path.
	NewComplianceDaemon = pipeline.NewDaemon
)
