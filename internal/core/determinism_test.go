package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

// Differential determinism harness for the concurrent analysis engine.
//
// The contract under test: RunMatrix and AnalyzeCapture produce output
// that is byte-identical for every worker count. Serial (Workers=1) is
// the reference implementation; the parallel paths fan work out over a
// pool and fold partial results back in deterministic input order, and
// any leak of scheduling order or map iteration order into the result
// shows up here as a DeepEqual mismatch.

// determinismSeeds is the seed sweep; -short trims it to keep the race
// run quick.
var determinismSeeds = []uint64{1, 7, 42, 101, 31337, 424242, 999999, 8675309}

func determinismMatrixOptions(seed uint64) trace.MatrixOptions {
	return trace.MatrixOptions{
		Runs:         1,
		CallDuration: 3 * time.Second,
		PrePost:      4 * time.Second,
		MediaRate:    10,
		Start:        t0,
		BaseSeed:     seed,
		Background:   true,
	}
}

// assertMatrixEqual compares every externally visible piece of a
// MatrixAnalysis: aggregate stats, Table 1 rows, ordered findings, and
// the capture count.
func assertMatrixEqual(t *testing.T, label string, want, got *MatrixAnalysis) {
	t.Helper()
	if want.Captures != got.Captures {
		t.Errorf("%s: captures %d != %d", label, got.Captures, want.Captures)
	}
	if !reflect.DeepEqual(want.Table1, got.Table1) {
		t.Errorf("%s: Table 1 rows differ\nserial:   %+v\nparallel: %+v", label, want.Table1, got.Table1)
	}
	if !reflect.DeepEqual(want.Findings, got.Findings) {
		t.Errorf("%s: ordered findings differ\nserial:   %v\nparallel: %v", label, want.Findings, got.Findings)
	}
	if !reflect.DeepEqual(want.Aggregate, got.Aggregate) {
		t.Errorf("%s: aggregates differ", label)
		for _, w := range want.Aggregate.Apps() {
			g := got.Aggregate.App(w.App)
			if !reflect.DeepEqual(w, g) {
				t.Errorf("%s: app %s stats differ\nserial:   %+v\nparallel: %+v", label, w.App, w, g)
			}
		}
	}
}

// TestSerialParallelMatrixEquivalence sweeps seeds through the full
// matrix and asserts the serial and parallel engines agree exactly.
func TestSerialParallelMatrixEquivalence(t *testing.T) {
	seeds := determinismSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		mopts := determinismMatrixOptions(seed)
		serial, err := RunMatrix(mopts, Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{4, 16} {
			parallel, err := RunMatrix(mopts, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			assertMatrixEqual(t, fmt.Sprintf("seed %d workers %d", seed, workers), serial, parallel)
		}
	}
}

// TestSerialParallelCaptureEquivalence checks the stream-level pool
// inside AnalyzeCapture directly: the whole CaptureAnalysis (filter
// accounting, stats, ordered findings, SSRC set, decode errors) must be
// deeply equal between Workers=1 and Workers=N, including for the apps
// whose findings merge across streams (Zoom, FaceTime, Discord).
func TestSerialParallelCaptureEquivalence(t *testing.T) {
	apps := []appsim.App{appsim.Zoom, appsim.FaceTime, appsim.Discord, appsim.GoogleMeet}
	if testing.Short() {
		apps = apps[:2]
	}
	for _, app := range apps {
		cap, err := trace.Generate(trace.CaptureConfig{
			App: app, Network: appsim.WiFiRelay, Seed: 271828,
			Start: t0, CallDuration: 5 * time.Second, PrePost: 6 * time.Second,
			MediaRate: 15, Background: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := CaptureInput{
			Label: string(app), LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
			CallStart: cap.CallStart, CallEnd: cap.CallEnd,
		}
		serial, err := AnalyzeCapture(in, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := AnalyzeCapture(in, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial and parallel CaptureAnalysis differ", app)
			if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
				t.Errorf("%s: stats differ", app)
			}
			if !reflect.DeepEqual(serial.Findings, parallel.Findings) {
				t.Errorf("%s: findings differ\nserial:   %v\nparallel: %v", app, serial.Findings, parallel.Findings)
			}
			if !reflect.DeepEqual(serial.RTPSSRCs, parallel.RTPSSRCs) {
				t.Errorf("%s: SSRC sets differ", app)
			}
		}
	}
}

// TestRunMatrixDeterminism is the golden repeat test: the same seed and
// options run twice must produce deeply equal results, catching any
// map-iteration-order leakage into reports independent of the
// serial/parallel comparison.
func TestRunMatrixDeterminism(t *testing.T) {
	mopts := determinismMatrixOptions(5150)
	opts := Options{Workers: 8}
	first, err := RunMatrix(mopts, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunMatrix(mopts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("two identical RunMatrix runs produced different results")
		assertMatrixEqual(t, "repeat", first, second)
	}
}

// TestDecodeErrorsCounted feeds a capture mixing decodable frames with
// undecodable garbage and checks the dropped-frame count is surfaced.
func TestDecodeErrorsCounted(t *testing.T) {
	cap, err := trace.Generate(trace.CaptureConfig{
		App: appsim.WhatsApp, Network: appsim.WiFiRelay, Seed: 11,
		Start: t0, CallDuration: 4 * time.Second, PrePost: 5 * time.Second,
		MediaRate: 10, Background: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()
	const garbage = 17
	for i := 0; i < garbage; i++ {
		frames = append(frames, pcap.Packet{
			Timestamp: cap.CallStart.Add(time.Duration(i) * time.Millisecond),
			Data:      []byte{0xff, 0xee, 0xdd},
		})
	}
	ca, err := AnalyzeCapture(CaptureInput{
		Label: "mixed", LinkType: pcap.LinkTypeRaw, Packets: frames,
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ca.DecodeErrors != garbage {
		t.Errorf("DecodeErrors = %d, want %d", ca.DecodeErrors, garbage)
	}
	clean, err := AnalyzeCapture(CaptureInput{
		Label: "clean", LinkType: pcap.LinkTypeRaw, Packets: cap.Frames(),
		CallStart: cap.CallStart, CallEnd: cap.CallEnd,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.DecodeErrors != 0 {
		t.Errorf("clean capture DecodeErrors = %d, want 0", clean.DecodeErrors)
	}
}
